# Single source of truth for the commands CI runs; humans run the same
# targets locally.

GO ?= go

.PHONY: build vet fmt test race bench bench-smoke bench-json bench-compare docs-lint fuzz-smoke throughput examples algo-smoke hkd-smoke chaos-smoke cluster-smoke sdk-smoke obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (like CI) when any file needs reformatting; run `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# race covers the packages with concurrency surface (root package: Concurrent,
# Sharded) and the sketch core under them; the full tree under -race takes
# tens of minutes (internal/vswitch alone runs >2 min without it).
race:
	$(GO) test -race -count=1 . ./internal/core ./internal/topk ./internal/streamsummary ./internal/cluster ./internal/collector ./internal/obs ./server ./wire ./client

bench:
	$(GO) test -run - -bench Ingest -benchtime 1s .

# bench-smoke is CI's fast pass over the ingest benchmarks: 10 iterations per
# benchmark just proves the perf paths still run (and report allocs).
bench-smoke:
	$(GO) test -run=NONE -bench=Ingest -benchtime=10x .

# bench-json emits the machine-readable throughput rows used for the BENCH_*
# trend files committed per perf PR. Each run is one standalone JSON document,
# written to its own file so the output stays parseable.
bench-json:
	$(GO) run ./cmd/hkbench -throughput -shards 1 -batch 256 -json > bench-1shard.json
	$(GO) run ./cmd/hkbench -throughput -shards 4 -batch 256 -json > bench-4shard.json
	@echo "wrote bench-1shard.json and bench-4shard.json"

# bench-compare runs the smoke benchmarks against a baseline git ref (BASE,
# default HEAD) in a temporary worktree and diffs the results: benchstat when
# it is installed, a side-by-side dump otherwise. Usage:
#   make bench-compare                 # working tree vs HEAD
#   make bench-compare BASE=HEAD~1     # working tree vs previous commit
# COUNT controls benchmark repetitions (benchstat wants >= 5 for statistics).
BASE ?= HEAD
COUNT ?= 5
bench-compare:
	@set -e; tmp=$$(mktemp -d); \
	trap 'git worktree remove --force "$$tmp/base" >/dev/null 2>&1 || true; rm -rf "$$tmp"' EXIT; \
	git worktree add -q "$$tmp/base" $(BASE); \
	echo "benchmarking $(BASE) ..."; \
	( cd "$$tmp/base" && $(GO) test -run=NONE -bench=Ingest -benchtime=10x -count=$(COUNT) . ) > "$$tmp/old.txt"; \
	echo "benchmarking working tree ..."; \
	$(GO) test -run=NONE -bench=Ingest -benchtime=10x -count=$(COUNT) . > "$$tmp/new.txt"; \
	if command -v benchstat >/dev/null 2>&1; then \
		benchstat "$$tmp/old.txt" "$$tmp/new.txt"; \
	else \
		echo "benchstat not installed; raw results"; \
		echo "== $(BASE) =="; grep ^Benchmark "$$tmp/old.txt"; \
		echo "== working tree =="; grep ^Benchmark "$$tmp/new.txt"; \
	fi

# docs-lint checks that relative links in README.md and doc/*.md resolve and
# that fenced ```go snippets are gofmt-formatted (CI runs this target).
docs-lint:
	$(GO) run ./cmd/doclint

# fuzz-smoke gives the snapshot decoder, the open-addressed store index and
# the ingest wire-frame decoder a short adversarial workout (CI runs this
# target).
fuzz-smoke:
	$(GO) test ./internal/core -run=NONE -fuzz=FuzzDecode -fuzztime=10s
	$(GO) test ./internal/streamsummary -run=NONE -fuzz=FuzzStoreEquivalence -fuzztime=10s
	$(GO) test ./wire -run=NONE -fuzz=FuzzWireDecode -fuzztime=10s
	$(GO) test . -run=NONE -fuzz=FuzzSnapshotRead -fuzztime=10s

throughput:
	$(GO) run ./cmd/hkbench -throughput

# examples builds and runs every program under examples/ (CI runs this
# target, so the README's entry points can never rot).
examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run ./$$d > /dev/null; \
	done; echo "all examples ran"

# hkd-smoke boots the daemon end to end (CI runs this target): build hkd and
# hkbench, start hkd on ephemeral loopback ports with a snapshot file, stream
# a generated trace over the wire protocol, and verify /topk flow-for-flow
# against a twin summarizer replaying the same trace in process (hkbench
# -verify rebuilds the daemon's engine from /config with the same sizing
# hktopk uses, so this is the machine-checked diff against an offline run).
# Then SIGTERM the daemon, restart it from the snapshot, verify the restored
# state, and finally repeat the ingest+verify over UDP against a fresh
# instance.
hkd-smoke:
	@set -e; tmp=$$(mktemp -d); pid=""; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hkd" ./cmd/hkd; \
	$(GO) build -o "$$tmp/hkbench" ./cmd/hkbench; \
	start_hkd() { \
		rm -f "$$tmp/addrs"; \
		"$$tmp/hkd" -listen-tcp 127.0.0.1:0 -listen-udp 127.0.0.1:0 \
			-listen-http 127.0.0.1:0 -addr-file "$$tmp/addrs" -quiet "$$@" & pid=$$!; \
		i=0; while [ ! -f "$$tmp/addrs" ]; do \
			i=$$((i+1)); [ $$i -le 100 ] || { echo "hkd never published addresses"; exit 1; }; \
			sleep 0.1; done; \
		tcp=$$(grep '^tcp=' "$$tmp/addrs" | cut -d= -f2-); \
		udp=$$(grep '^udp=' "$$tmp/addrs" | cut -d= -f2-); \
		http=$$(grep '^http=' "$$tmp/addrs" | cut -d= -f2-); \
	}; \
	stop_hkd() { kill -TERM $$pid; wait $$pid; pid=""; }; \
	echo "== hkd-smoke: TCP ingest + verify"; \
	start_hkd -snapshot "$$tmp/hkd.snap"; \
	"$$tmp/hkbench" -connect "$$tcp" -verify "$$http" -scale 0.002 -batch 256; \
	stop_hkd; \
	echo "== hkd-smoke: SIGHUP writes a snapshot generation without restart"; \
	start_hkd -snapshot "$$tmp/hkd.snap"; \
	gens=$$(ls "$$tmp"/hkd.snap.g* | wc -l); \
	kill -HUP $$pid; \
	i=0; while [ "$$(ls "$$tmp"/hkd.snap.g* | wc -l)" -le "$$gens" ]; do \
		i=$$((i+1)); [ $$i -le 100 ] || { echo "SIGHUP never produced a snapshot"; exit 1; }; \
		sleep 0.1; done; \
	stop_hkd; \
	echo "== hkd-smoke: restart from snapshot + verify restored state"; \
	start_hkd -snapshot "$$tmp/hkd.snap"; \
	"$$tmp/hkbench" -verify "$$http" -scale 0.002 -batch 256; \
	stop_hkd; \
	echo "== hkd-smoke: UDP ingest + verify (fresh instance)"; \
	start_hkd; \
	"$$tmp/hkbench" -connect-udp "$$udp" -verify "$$http" -scale 0.001 -batch 64; \
	stop_hkd; \
	echo "hkd-smoke ok"

# chaos-smoke runs the deterministic fault-injection suite under the race
# detector (CI runs this target): the hkd lifecycle across 24 seeds of
# injected connection resets, torn frames, corrupted bytes, delayed accepts
# and failed snapshot writes — asserting no panics, no goroutine leaks,
# consistent counters, and restore from the newest intact generation.
chaos-smoke:
	$(GO) test -race -count=1 ./internal/chaos
	$(GO) test -race -count=1 ./server -run 'TestChaosSeeds|TestDegraded|TestSnapshotGenerations'

# cluster-smoke boots the fault-tolerant cluster tier end to end (CI runs
# this target): three hkd members with snapshot stores, one hkagg
# aggregator collecting over GET /snapshot, ring-replicated ingest
# (MaxReplica=2) via hkbench -cluster, and the global /topk verified
# flow-for-flow against the trace's exact truth counts at full coverage.
# Then one member is SIGTERMed and the same truth is re-verified with
# -coverage degraded: the single-node-loss guarantee (no true top flow
# drops, counts stay exact) plus observable degradation (coverage < 1).
cluster-smoke:
	@set -e; tmp=$$(mktemp -d); pids=""; \
	trap 'kill $$pids 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hkd" ./cmd/hkd; \
	$(GO) build -o "$$tmp/hkagg" ./cmd/hkagg; \
	$(GO) build -o "$$tmp/hkbench" ./cmd/hkbench; \
	start_node() { \
		rm -f "$$tmp/addrs$$1"; \
		"$$tmp/hkd" -listen-tcp 127.0.0.1:0 -listen-udp 127.0.0.1:0 \
			-listen-http 127.0.0.1:0 -addr-file "$$tmp/addrs$$1" \
			-snapshot "$$tmp/node$$1.hks" -quiet & \
		echo $$! > "$$tmp/pid$$1"; pids="$$pids $$!"; \
	}; \
	wait_file() { \
		j=0; while [ ! -f "$$1" ]; do \
			j=$$((j+1)); [ $$j -le 100 ] || { echo "$$1 never appeared"; exit 1; }; \
			sleep 0.1; done; \
	}; \
	start_node 1; start_node 2; start_node 3; \
	spec=""; members=""; \
	for i in 1 2 3; do \
		wait_file "$$tmp/addrs$$i"; \
		tcp=$$(grep '^tcp=' "$$tmp/addrs$$i" | cut -d= -f2-); \
		http=$$(grep '^http=' "$$tmp/addrs$$i" | cut -d= -f2-); \
		spec="$$spec,$$tcp/$$http"; members="$$members,$$http"; \
	done; \
	spec=$${spec#,}; members=$${members#,}; \
	"$$tmp/hkagg" -nodes "$$members" -listen-http 127.0.0.1:0 \
		-addr-file "$$tmp/aggaddr" -interval 200ms -quiet & \
	pids="$$pids $$!"; \
	wait_file "$$tmp/aggaddr"; \
	agg=$$(grep '^http=' "$$tmp/aggaddr" | cut -d= -f2-); \
	echo "== cluster-smoke: replicated ingest (MaxReplica=2) + verify at full coverage"; \
	"$$tmp/hkbench" -cluster "$$spec" -replicas 2 -verify "$$agg" \
		-coverage full -scale 0.002 -batch 256; \
	echo "== cluster-smoke: kill one member, re-verify degraded"; \
	kill -TERM "$$(cat "$$tmp/pid1")"; wait "$$(cat "$$tmp/pid1")" || true; \
	"$$tmp/hkbench" -cluster "$$spec" -replicas 2 -verify "$$agg" \
		-coverage degraded -verify-only -scale 0.002 -batch 256; \
	echo "cluster-smoke ok"

# sdk-smoke boots the secure multi-tenant serving path end to end (CI runs
# this target): the in-process SDK conformance suite under the race
# detector (TLS auth, tenant isolation, per-tenant audit counters), then
# the real binaries — hkcert generates a self-signed certificate, hkd
# starts with TLS and two tenant tokens, each tenant streams a distinct
# trace through the SDK (hkbench dogfoods it) and is verified
# flow-for-flow against its own twin (any cross-tenant leak would corrupt
# the counts), and a wrong token must be rejected.
sdk-smoke:
	$(GO) test -race -count=1 ./client -run 'TestTLSAuthEndToEnd|TestTenantIsolation'
	@set -e; tmp=$$(mktemp -d); pid=""; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hkd" ./cmd/hkd; \
	$(GO) build -o "$$tmp/hkbench" ./cmd/hkbench; \
	$(GO) build -o "$$tmp/hkcert" ./cmd/hkcert; \
	"$$tmp/hkcert" -cert "$$tmp/cert.pem" -key "$$tmp/key.pem" > /dev/null; \
	printf 'token-a tenant-a\ntoken-b tenant-b\n' > "$$tmp/tokens.txt"; \
	"$$tmp/hkd" -listen-tcp 127.0.0.1:0 -listen-udp '' -listen-http 127.0.0.1:0 \
		-addr-file "$$tmp/addrs" -tls-cert "$$tmp/cert.pem" -tls-key "$$tmp/key.pem" \
		-token-file "$$tmp/tokens.txt" -admin-token sdk-smoke-admin -quiet & pid=$$!; \
	i=0; while [ ! -f "$$tmp/addrs" ]; do \
		i=$$((i+1)); [ $$i -le 100 ] || { echo "hkd never published addresses"; exit 1; }; \
		sleep 0.1; done; \
	tcp=$$(grep '^tcp=' "$$tmp/addrs" | cut -d= -f2-); \
	http=$$(grep '^http=' "$$tmp/addrs" | cut -d= -f2-); \
	echo "== sdk-smoke: tenant-a ingest + verify over TLS"; \
	"$$tmp/hkbench" -connect "$$tcp" -verify "$$http" -token token-a \
		-ca "$$tmp/cert.pem" -seed 101 -scale 0.002 -batch 256; \
	echo "== sdk-smoke: tenant-b ingest + verify over TLS (distinct trace)"; \
	"$$tmp/hkbench" -connect "$$tcp" -verify "$$http" -token token-b \
		-ca "$$tmp/cert.pem" -seed 202 -scale 0.002 -batch 256; \
	echo "== sdk-smoke: re-verify tenant-a after tenant-b (isolation)"; \
	"$$tmp/hkbench" -verify "$$http" -token token-a \
		-ca "$$tmp/cert.pem" -seed 101 -scale 0.002 -batch 256; \
	echo "== sdk-smoke: wrong token must be rejected"; \
	if "$$tmp/hkbench" -verify "$$http" -token wrong -ca "$$tmp/cert.pem" \
		-seed 101 -scale 0.002 2> "$$tmp/err"; then \
		echo "wrong token was accepted"; exit 1; fi; \
	grep -q "unknown or revoked token" "$$tmp/err" || { \
		echo "rejection lacked the typed auth error:"; cat "$$tmp/err"; exit 1; }; \
	echo "sdk-smoke ok"

# obs-smoke exercises the observability layer end to end (CI runs this
# target): boot hkd with the opt-in debug listener and debug-level logs,
# point a one-node hkagg at it, ingest a trace, then assert that /metrics
# exposes the latency histogram families with cumulative buckets
# (+Inf == _count), that /stats carries the latency section, that the
# pprof listener serves a goroutine profile, and that one collect's
# X-Request-Id generated by hkagg appears in both tiers' logs — the
# cross-process tracing contract.
obs-smoke:
	@set -e; tmp=$$(mktemp -d); pids=""; \
	trap 'kill $$pids 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hkd" ./cmd/hkd; \
	$(GO) build -o "$$tmp/hkagg" ./cmd/hkagg; \
	$(GO) build -o "$$tmp/hkbench" ./cmd/hkbench; \
	"$$tmp/hkd" -listen-tcp 127.0.0.1:0 -listen-udp '' -listen-http 127.0.0.1:0 \
		-debug-addr 127.0.0.1:0 -addr-file "$$tmp/addrs" \
		-log-level debug -log-format text 2> "$$tmp/hkd.log" & pids="$$pids $$!"; \
	i=0; while [ ! -f "$$tmp/addrs" ]; do \
		i=$$((i+1)); [ $$i -le 100 ] || { echo "hkd never published addresses"; exit 1; }; \
		sleep 0.1; done; \
	tcp=$$(grep '^tcp=' "$$tmp/addrs" | cut -d= -f2-); \
	http=$$(grep '^http=' "$$tmp/addrs" | cut -d= -f2-); \
	debug=$$(grep '^debug=' "$$tmp/addrs" | cut -d= -f2-); \
	"$$tmp/hkagg" -nodes "$$http" -listen-http 127.0.0.1:0 -addr-file "$$tmp/aggaddr" \
		-interval 200ms -log-level debug -log-format text 2> "$$tmp/hkagg.log" & pids="$$pids $$!"; \
	i=0; while [ ! -f "$$tmp/aggaddr" ]; do \
		i=$$((i+1)); [ $$i -le 100 ] || { echo "hkagg never published its address"; exit 1; }; \
		sleep 0.1; done; \
	echo "== obs-smoke: ingest + send-latency quantiles in the JSON report"; \
	"$$tmp/hkbench" -connect "$$tcp" -verify "$$http" -scale 0.002 -batch 256 -json \
		> "$$tmp/bench.json"; \
	grep -q '"send_latency"' "$$tmp/bench.json" || { \
		echo "hkbench -json lacks send_latency:"; cat "$$tmp/bench.json"; exit 1; }; \
	echo "== obs-smoke: /metrics histogram families, cumulative, +Inf == _count"; \
	curl -fsS "http://$$http/metrics" > "$$tmp/metrics"; \
	for fam in hkd_ingest_batch_seconds hkd_http_request_seconds; do \
		grep -q "^# TYPE $$fam histogram" "$$tmp/metrics" || { \
			echo "missing histogram family $$fam"; exit 1; }; \
	done; \
	awk '/^hkd_ingest_batch_seconds_bucket/ { v=$$NF+0; if (v < prev) { print "non-cumulative bucket: " $$0; bad=1 }; prev=v; inf=v } \
		/^hkd_ingest_batch_seconds_count/ { if ($$NF+0 != inf) { print "+Inf bucket " inf " != _count " $$NF; bad=1 } } \
		END { exit bad }' "$$tmp/metrics"; \
	echo "== obs-smoke: /stats carries the latency section"; \
	curl -fsS "http://$$http/stats" | grep -q '"latency"' || { \
		echo "/stats lacks the latency section"; exit 1; }; \
	echo "== obs-smoke: pprof listener serves a goroutine profile"; \
	curl -fsS "http://$$debug/debug/pprof/goroutine?debug=1" > "$$tmp/goroutines"; \
	grep -q goroutine "$$tmp/goroutines" || { \
		echo "pprof goroutine profile empty"; exit 1; }; \
	echo "== obs-smoke: one request id crosses the hkagg -> hkd boundary"; \
	i=0; rid=""; while [ -z "$$rid" ]; do \
		i=$$((i+1)); [ $$i -le 100 ] || { echo "hkagg never logged a collect"; exit 1; }; \
		rid=$$(grep -o 'msg=collect.*request_id=[0-9a-f]*' "$$tmp/hkagg.log" | head -1 | grep -o 'request_id=[0-9a-f]*' | cut -d= -f2-); \
		sleep 0.1; done; \
	i=0; while ! grep -q "request_id=$$rid" "$$tmp/hkd.log"; do \
		i=$$((i+1)); [ $$i -le 50 ] || { echo "request id $$rid from hkagg.log never reached hkd.log"; exit 1; }; \
		sleep 0.1; done; \
	echo "obs-smoke ok"

# algo-smoke runs the hkbench throughput comparison once per registered
# algorithm at a tiny scale: every engine must construct and ingest under
# all three frontends (CI runs this target).
algo-smoke:
	@set -e; for a in $$($(GO) run ./cmd/hkbench -list-algos); do \
		$(GO) run ./cmd/hkbench -throughput -algo $$a -scale 0.001 -shards 2 -batch 64 > /dev/null; \
		echo "algo $$a ok"; \
	done
