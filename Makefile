# Single source of truth for the commands CI runs; humans run the same
# targets locally.

GO ?= go

.PHONY: build vet fmt test race bench throughput

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (like CI) when any file needs reformatting; run `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# race covers the packages with concurrency surface (root package: Concurrent,
# Sharded) and the sketch core under them; the full tree under -race takes
# tens of minutes (internal/vswitch alone runs >2 min without it).
race:
	$(GO) test -race -count=1 . ./internal/core ./internal/topk ./internal/streamsummary

bench:
	$(GO) test -run - -bench Ingest -benchtime 1s .

throughput:
	$(GO) run ./cmd/hkbench -throughput
