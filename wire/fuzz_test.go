package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireDecode throws arbitrary byte streams at the frame decoder. The
// contract under attack: decoding never panics, every failure matches
// ErrCorrupt (or is a clean io.EOF between frames), and every frame the
// decoder does accept re-encodes to semantically identical records.
func FuzzWireDecode(f *testing.F) {
	seed, _ := AppendFrame(nil, [][]byte{[]byte("flow-a"), []byte("flow-b")}, nil)
	f.Add(seed)
	weighted, _ := AppendFrame(nil, [][]byte{[]byte("w")}, []uint64{1 << 33})
	f.Add(weighted)
	f.Add(append(seed, weighted...))
	f.Add([]byte("HK"))
	f.Add([]byte{})
	tenant, _ := AppendFrameTenant(nil, []byte("tenant-a"), [][]byte{[]byte("flow-a")}, nil)
	f.Add(tenant)
	tenantW, _ := AppendFrameTenant(nil, []byte("b"), [][]byte{[]byte("w")}, []uint64{7})
	f.Add(tenantW)
	defTenant, _ := AppendFrameTenant(nil, nil, [][]byte{[]byte("flow-a")}, nil)
	f.Add(defTenant)
	hello, _ := AppendHello(nil, []byte("secret-token"))
	f.Add(hello)
	f.Add(append(append([]byte{}, hello...), tenant...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			b, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("decode error %v does not match ErrCorrupt", err)
				}
				break
			}
			if b.Weights != nil && len(b.Weights) != 0 && len(b.Weights) != len(b.Keys) {
				t.Fatalf("decoded %d keys but %d weights", len(b.Keys), len(b.Weights))
			}
			if b.IsHello() {
				// An accepted handshake must carry a bounded, non-empty
				// token and re-encode losslessly.
				if len(b.Token) == 0 || len(b.Token) > MaxTokenLen {
					t.Fatalf("accepted hello with token length %d", len(b.Token))
				}
				re, err := AppendHello(nil, b.Token)
				if err != nil {
					t.Fatalf("re-encode of accepted hello failed: %v", err)
				}
				var back Batch
				if err := DecodeDatagram(re, &back); err != nil {
					t.Fatalf("re-decode of re-encoded hello failed: %v", err)
				}
				if !bytes.Equal(back.Token, b.Token) {
					t.Fatal("round trip changed hello token")
				}
				continue
			}
			// Round-trip: an accepted frame must re-encode and decode to
			// the same records (through the v2 encoder when the frame
			// carried a tenant, so the tenant survives too).
			var ws []uint64
			if len(b.Weights) > 0 {
				ws = b.Weights
			}
			var re []byte
			if b.Tenant != nil {
				re, err = AppendFrameTenant(nil, b.Tenant, b.Keys, ws)
			} else {
				re, err = AppendFrame(nil, b.Keys, ws)
			}
			if err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			var back Batch
			if err := DecodeDatagram(re, &back); err != nil {
				t.Fatalf("re-decode of re-encoded frame failed: %v", err)
			}
			if len(back.Keys) != len(b.Keys) {
				t.Fatalf("round trip changed record count: %d vs %d", len(back.Keys), len(b.Keys))
			}
			if !bytes.Equal(back.Tenant, b.Tenant) {
				t.Fatalf("round trip changed tenant: %q vs %q", back.Tenant, b.Tenant)
			}
			for i := range back.Keys {
				if !bytes.Equal(back.Keys[i], b.Keys[i]) {
					t.Fatalf("round trip changed key %d", i)
				}
				if ws != nil && back.Weights[i] != ws[i] {
					t.Fatalf("round trip changed weight %d", i)
				}
			}
		}

		// The datagram entry point must hold the same no-panic, typed-error
		// contract on the raw bytes.
		var b Batch
		if err := DecodeDatagram(data, &b); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeDatagram error %v does not match ErrCorrupt", err)
		}
	})
}
