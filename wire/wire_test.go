package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestRoundTripUnweighted(t *testing.T) {
	keys := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-long-key"), {0x00, 0xff, 0x7f}}
	frame, err := AppendFrame(nil, keys, nil)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	r := NewReader(bytes.NewReader(frame))
	b, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if b.Weights != nil && len(b.Weights) != 0 {
		t.Fatalf("unweighted frame decoded weights %v", b.Weights)
	}
	if len(b.Keys) != len(keys) {
		t.Fatalf("decoded %d keys, want %d", len(b.Keys), len(keys))
	}
	for i := range keys {
		if !bytes.Equal(b.Keys[i], keys[i]) {
			t.Errorf("key %d: got %q want %q", i, b.Keys[i], keys[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestRoundTripWeighted(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	weights := []uint64{1, 1 << 40, 0}
	frame, err := AppendFrame(nil, keys, weights)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	r := NewReader(bytes.NewReader(frame))
	b, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if len(b.Weights) != len(weights) {
		t.Fatalf("decoded %d weights, want %d", len(b.Weights), len(weights))
	}
	for i := range weights {
		if b.Weights[i] != weights[i] {
			t.Errorf("weight %d: got %d want %d", i, b.Weights[i], weights[i])
		}
		if !bytes.Equal(b.Keys[i], keys[i]) {
			t.Errorf("key %d: got %q want %q", i, b.Keys[i], keys[i])
		}
	}
}

func TestMultipleFramesOneStream(t *testing.T) {
	var stream []byte
	var err error
	for i := 0; i < 10; i++ {
		stream, err = AppendFrame(stream, [][]byte{{byte(i)}, {byte(i), byte(i)}}, nil)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
	}
	r := NewReader(bytes.NewReader(stream))
	total := 0
	for {
		b, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		total += b.Records()
	}
	if total != 20 {
		t.Fatalf("decoded %d records, want 20", total)
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	frame, err := AppendFrame(nil, [][]byte{[]byte("x"), []byte("yz")}, []uint64{3, 4})
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	var b Batch
	if err := DecodeDatagram(frame, &b); err != nil {
		t.Fatalf("DecodeDatagram: %v", err)
	}
	if b.Records() != 2 || b.Weights[1] != 4 {
		t.Fatalf("bad decode: %+v", b)
	}
	// A datagram with trailing bytes after the frame is rejected.
	if err := DecodeDatagram(append(frame, 0), &b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing datagram byte: got %v, want ErrCorrupt", err)
	}
}

func TestCorruptInputs(t *testing.T) {
	good, err := AppendFrame(nil, [][]byte{[]byte("key")}, nil)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bad magic", func(f []byte) []byte { f[0] = 'X'; return f }, ErrBadMagic},
		{"bad version", func(f []byte) []byte { f[2] = 99; return f }, ErrBadVersion},
		{"bad type", func(f []byte) []byte { f[3] = 99; return f }, ErrBadType},
		{"oversize", func(f []byte) []byte {
			f[4], f[5], f[6], f[7] = 0xff, 0xff, 0xff, 0xff
			return f
		}, ErrOversize},
		{"truncated payload", func(f []byte) []byte { return f[:len(f)-1] }, ErrCorrupt},
		{"truncated header", func(f []byte) []byte { return f[:4] }, ErrCorrupt},
		{"count ahead of payload", func(f []byte) []byte {
			f[HeaderLen] = 0xff // claim 255 records in a 1-record payload
			return f
		}, ErrCountsAhead},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.mutate(append([]byte(nil), good...))
			_, err := NewReader(bytes.NewReader(f)).Next()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%v does not match ErrCorrupt", err)
			}
		})
	}
}

func TestTrailingPayloadBytes(t *testing.T) {
	frame, err := AppendFrame(nil, [][]byte{[]byte("k")}, nil)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	// Grow the declared length and append a stray byte: records no longer
	// cover the payload.
	frame[4]++
	frame = append(frame, 0xAA)
	_, err = NewReader(bytes.NewReader(frame)).Next()
	if !errors.Is(err, ErrTrailing) {
		t.Fatalf("got %v, want ErrTrailing", err)
	}
}

func TestEncoderBounds(t *testing.T) {
	if _, err := AppendFrame(nil, [][]byte{make([]byte, MaxKeyLen+1)}, nil); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("oversized key: got %v, want ErrKeyTooLong", err)
	}
	if _, err := AppendFrame(nil, [][]byte{[]byte("k")}, []uint64{1, 2}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	big := make([][]byte, 0, 70)
	for i := 0; i < 70; i++ {
		big = append(big, make([]byte, MaxKeyLen))
	}
	if _, err := AppendFrame(nil, big, nil); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversized payload: got %v, want ErrOversize", err)
	}
}

func TestTenantRoundTrip(t *testing.T) {
	keys := [][]byte{[]byte("alpha"), []byte("beta")}
	frame, err := AppendFrameTenant(nil, []byte("tenant-a"), keys, nil)
	if err != nil {
		t.Fatalf("AppendFrameTenant: %v", err)
	}
	r := NewReader(bytes.NewReader(frame))
	b, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if string(b.Tenant) != "tenant-a" {
		t.Fatalf("decoded tenant %q, want tenant-a", b.Tenant)
	}
	if b.IsHello() {
		t.Fatal("batch frame decoded as hello")
	}
	if len(b.Keys) != 2 || !bytes.Equal(b.Keys[0], keys[0]) || !bytes.Equal(b.Keys[1], keys[1]) {
		t.Fatalf("bad keys: %q", b.Keys)
	}

	// Weighted v2, and the datagram entry point.
	frame, err = AppendFrameTenant(nil, []byte("t"), keys, []uint64{3, 1 << 40})
	if err != nil {
		t.Fatalf("AppendFrameTenant weighted: %v", err)
	}
	var d Batch
	if err := DecodeDatagram(frame, &d); err != nil {
		t.Fatalf("DecodeDatagram: %v", err)
	}
	if string(d.Tenant) != "t" || d.Weights[1] != 1<<40 {
		t.Fatalf("bad weighted v2 decode: %+v", d)
	}
}

func TestTenantDefaults(t *testing.T) {
	// A v2 frame with an empty tenant and a v1 frame both decode with a
	// nil Tenant: the default tenant.
	v2, err := AppendFrameTenant(nil, nil, [][]byte{[]byte("k")}, nil)
	if err != nil {
		t.Fatalf("AppendFrameTenant: %v", err)
	}
	v1, err := AppendFrame(nil, [][]byte{[]byte("k")}, nil)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	for name, frame := range map[string][]byte{"v2 empty tenant": v2, "v1": v1} {
		var b Batch
		if err := DecodeDatagram(frame, &b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Tenant != nil {
			t.Fatalf("%s: tenant %q, want nil", name, b.Tenant)
		}
	}
	if _, err := AppendFrameTenant(nil, make([]byte, MaxTenantLen+1), nil, nil); !errors.Is(err, ErrTenantTooLong) {
		t.Fatalf("oversized tenant: got %v, want ErrTenantTooLong", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	frame, err := AppendHello(nil, []byte("secret"))
	if err != nil {
		t.Fatalf("AppendHello: %v", err)
	}
	var b Batch
	if err := DecodeDatagram(frame, &b); err != nil {
		t.Fatalf("DecodeDatagram: %v", err)
	}
	if !b.IsHello() || string(b.Token) != "secret" || b.Records() != 0 {
		t.Fatalf("bad hello decode: %+v", b)
	}
	// Encoder bounds.
	if _, err := AppendHello(nil, nil); !errors.Is(err, ErrBadToken) {
		t.Fatalf("empty token: got %v, want ErrBadToken", err)
	}
	if _, err := AppendHello(nil, make([]byte, MaxTokenLen+1)); !errors.Is(err, ErrBadToken) {
		t.Fatalf("oversized token: got %v, want ErrBadToken", err)
	}
	// A v1 header claiming TypeHello is corrupt, not merely old.
	frame[2] = Version
	if err := DecodeDatagram(frame, &b); !errors.Is(err, ErrBadType) {
		t.Fatalf("v1 hello: got %v, want ErrBadType", err)
	}
}

func TestTenantCorruptInputs(t *testing.T) {
	good, err := AppendFrameTenant(nil, []byte("tenant"), [][]byte{[]byte("key")}, nil)
	if err != nil {
		t.Fatalf("AppendFrameTenant: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"tenant longer than payload", func(f []byte) []byte {
			f[HeaderLen] = 0xff // declares a 255-byte tenant the payload lacks
			return f
		}, ErrTruncated},
		{"truncated inside tenant", func(f []byte) []byte { return f[:HeaderLen+3] }, ErrCorrupt},
		{"count ahead after tenant", func(f []byte) []byte {
			f[HeaderLen+1+6] = 0xff // record-count byte, past the 6-byte tenant
			return f
		}, ErrCountsAhead},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.mutate(append([]byte(nil), good...))
			_, err := NewReader(bytes.NewReader(f)).Next()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
	// Hello with an over-declared token.
	hello, err := AppendHello(nil, []byte("tok"))
	if err != nil {
		t.Fatalf("AppendHello: %v", err)
	}
	hello[HeaderLen] = 0xff
	hello[HeaderLen+1] = 0xff
	var b Batch
	if err := DecodeDatagram(hello, &b); !errors.Is(err, ErrBadToken) {
		t.Fatalf("over-declared token: got %v, want ErrBadToken", err)
	}
}

func TestReaderReusesBuffers(t *testing.T) {
	var stream []byte
	var err error
	keys := [][]byte{bytes.Repeat([]byte("k"), 100)}
	for i := 0; i < 50; i++ {
		stream, err = AppendFrame(stream, keys, nil)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
	}
	r := NewReader(bytes.NewReader(stream))
	// Warm the reader's buffers on the first frame, then the remaining
	// decodes must not allocate.
	if _, err := r.Next(); err != nil {
		t.Fatalf("warmup Next: %v", err)
	}
	allocs := testing.AllocsPerRun(49, func() {
		if _, err := r.Next(); err != nil && err != io.EOF {
			t.Fatalf("Next: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Next allocates %.1f/op, want 0", allocs)
	}

	// The v2 (tenant) decode path holds the same invariant: the tenant is
	// a payload subslice, never a copy.
	stream = stream[:0]
	for i := 0; i < 50; i++ {
		stream, err = AppendFrameTenant(stream, []byte("tenant-a"), keys, nil)
		if err != nil {
			t.Fatalf("AppendFrameTenant: %v", err)
		}
	}
	r = NewReader(bytes.NewReader(stream))
	if _, err := r.Next(); err != nil {
		t.Fatalf("warmup Next: %v", err)
	}
	allocs = testing.AllocsPerRun(49, func() {
		if _, err := r.Next(); err != nil && err != io.EOF {
			t.Fatalf("Next: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state v2 Next allocates %.1f/op, want 0", allocs)
	}
}
