// Package wire defines the hkd ingest wire protocol: a compact,
// length-prefixed, versioned binary framing for batched key/weight arrival
// records, designed so a measurement point can push millions of flow
// arrivals per second over a TCP stream (or one frame per UDP datagram)
// into a Summarizer's AddBatch path.
//
// # Frame layout
//
// Every frame is an 8-byte header followed by a payload:
//
//	offset  size  field
//	0       2     magic "HK" (0x48 0x4B)
//	2       1     protocol version (1 or 2)
//	3       1     frame type
//	4       4     payload length, uint32 little-endian (0 .. MaxPayload)
//	8       n     payload
//
// Two frame types carry arrivals:
//
//	TypeBatch (1): count uint32, then count records of
//	    keyLen uint16 | key bytes
//	  — each record is one unit-weight arrival (one packet).
//
//	TypeWeightedBatch (2): count uint32, then count records of
//	    keyLen uint16 | key bytes | weight uvarint
//	  — each record is a weight-n arrival (n packets, or n bytes when
//	  ranking flows by volume).
//
// All fixed-width integers are little-endian; weights are unsigned
// varints (encoding/binary uvarint) so the common small weights cost one
// byte. Keys are opaque byte strings up to MaxKeyLen bytes.
//
// # Version 2: multi-tenant frames
//
// Version-2 batch frames prefix the payload with the tenant the arrivals
// belong to:
//
//	tenantLen uint8 | tenant bytes | <version-1 payload body>
//
// An empty tenant (tenantLen 0) names the default tenant, so a v2 frame
// with no tenant and a v1 frame mean the same thing; v1 frames remain
// fully supported and always map to the default tenant. Version 2 also
// adds one control frame:
//
//	TypeHello (3): tokenLen uint16 | token bytes (1 .. MaxTokenLen)
//	  — a connection-scoped bearer-token handshake. A daemon running
//	  with token auth requires it as the first frame of every stream
//	  connection and binds the connection to the token's tenant.
//
// # Zero-allocation decode
//
// DecodePayload parses a payload in place: the decoded Batch's Keys are
// subslices of the payload buffer, exactly the [][]byte shape the
// Summarizer.AddBatch scratch wants, so a steady-state reader allocates
// nothing per frame once its record slices have grown to the high-water
// mark. Reader wraps an io.Reader (a TCP connection) with a reusable
// frame buffer and hands out one Batch per call.
//
// Every malformed input — bad magic, unknown version or type, oversized
// declaration, truncated or overrunning records, trailing garbage —
// returns an error matching ErrCorrupt (errors.Is); decoding never
// panics. Frames are validated structurally before any record is
// surfaced, so a consumer never ingests half a frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol versions. Version 1 is the original single-tenant framing;
// version 2 prefixes batch payloads with a tenant id and adds the
// TypeHello auth handshake. Decoders accept both.
const (
	// Version is the original (single-tenant) protocol version.
	Version = 1
	// VersionTenant is the multi-tenant protocol version.
	VersionTenant = 2
)

// Frame types.
const (
	// TypeBatch carries unit-weight arrival records.
	TypeBatch = 1
	// TypeWeightedBatch carries weight-carrying arrival records.
	TypeWeightedBatch = 2
	// TypeHello carries a bearer-token handshake (version 2 only): the
	// first frame of an authenticated stream connection.
	TypeHello = 3
)

// Wire limits. MaxPayload bounds the memory a peer can make a reader
// commit before any record is validated; MaxKeyLen matches the uint16
// record length field. Both are protocol constants: an encoder never
// produces frames beyond them and a decoder rejects frames that declare
// more.
const (
	// HeaderLen is the fixed frame header size in bytes.
	HeaderLen = 8
	// MaxPayload is the largest payload a frame may declare (4 MiB).
	MaxPayload = 4 << 20
	// MaxKeyLen is the largest key one record can carry.
	MaxKeyLen = 1<<16 - 1
	// MaxTenantLen is the largest tenant id a v2 frame can carry,
	// matching its uint8 length field.
	MaxTenantLen = 1<<8 - 1
	// MaxTokenLen bounds the bearer token a TypeHello frame carries; a
	// longer declaration is rejected as corrupt before any buffering.
	MaxTokenLen = 1024
	// MaxFrameLen is the largest complete frame — header plus a maximal
	// payload. Datagram receivers size their read buffers from it: a
	// datagram longer than MaxFrameLen cannot be a valid frame.
	MaxFrameLen = HeaderLen + MaxPayload
)

const (
	magic0 = 'H'
	magic1 = 'K'
)

// ErrCorrupt is the base error for every malformed-frame condition;
// callers branch with errors.Is. The concrete wrapped errors below
// describe the specific violation.
var ErrCorrupt = errors.New("wire: corrupt frame")

// Typed corruption causes, all matching ErrCorrupt via errors.Is.
var (
	ErrBadMagic    = fmt.Errorf("%w: bad magic", ErrCorrupt)
	ErrBadVersion  = fmt.Errorf("%w: unsupported protocol version", ErrCorrupt)
	ErrBadType     = fmt.Errorf("%w: unknown frame type", ErrCorrupt)
	ErrOversize    = fmt.Errorf("%w: declared payload exceeds MaxPayload", ErrCorrupt)
	ErrTruncated   = fmt.Errorf("%w: payload shorter than its records", ErrCorrupt)
	ErrTrailing    = fmt.Errorf("%w: payload longer than its records", ErrCorrupt)
	ErrKeyTooLong  = fmt.Errorf("%w: key exceeds MaxKeyLen", ErrCorrupt)
	ErrBadWeight   = fmt.Errorf("%w: malformed weight varint", ErrCorrupt)
	ErrCountsAhead = fmt.Errorf("%w: record count exceeds payload capacity", ErrCorrupt)
	ErrBadToken    = fmt.Errorf("%w: hello token empty or exceeds MaxTokenLen", ErrCorrupt)
)

// ErrTenantTooLong is an encoder-side error: AppendFrameTenant rejects a
// tenant id longer than MaxTenantLen rather than emit an unframeable id.
var ErrTenantTooLong = errors.New("wire: tenant id exceeds MaxTenantLen")

// Header is a parsed frame header.
type Header struct {
	Version byte
	Type    byte
	// Length is the payload length in bytes.
	Length uint32
}

// ParseHeader validates the 8 fixed header bytes. It checks magic,
// version, type and the payload bound, so a reader can reject a garbage
// stream before committing any payload buffer.
func ParseHeader(b [HeaderLen]byte) (Header, error) {
	if b[0] != magic0 || b[1] != magic1 {
		return Header{}, ErrBadMagic
	}
	h := Header{
		Version: b[2],
		Type:    b[3],
		Length:  binary.LittleEndian.Uint32(b[4:]),
	}
	if h.Version != Version && h.Version != VersionTenant {
		return Header{}, ErrBadVersion
	}
	switch h.Type {
	case TypeBatch, TypeWeightedBatch:
	case TypeHello:
		// The handshake is new in v2; a v1 stream producing type 3 is
		// corrupt, not merely old.
		if h.Version != VersionTenant {
			return Header{}, ErrBadType
		}
	default:
		return Header{}, ErrBadType
	}
	if h.Length > MaxPayload {
		return Header{}, ErrOversize
	}
	return h, nil
}

// Batch is one decoded frame's arrival records. Keys, Tenant and Token
// alias the payload buffer they were decoded from: they are valid until
// the next decode into the same buffer and must not be retained
// (Summarizer ingest paths copy on admission, so handing a Batch
// straight to AddBatch is safe). Weights is nil for a unit-weight frame
// (TypeBatch) and parallel to Keys for a weighted one.
//
// Tenant is the v2 tenant id (nil/empty — including every v1 frame —
// means the default tenant). Token is set only for a decoded TypeHello
// handshake frame, whose Keys and Weights are always empty; IsHello
// distinguishes the two shapes.
type Batch struct {
	Keys    [][]byte
	Weights []uint64
	Tenant  []byte
	Token   []byte
}

// Records returns the number of arrival records in the batch.
func (b *Batch) Records() int { return len(b.Keys) }

// IsHello reports whether the decoded frame was a TypeHello handshake
// (Token carries the bearer token; no arrival records).
func (b *Batch) IsHello() bool { return b.Token != nil }

// reset clears the batch for reuse without releasing capacity.
func (b *Batch) reset() {
	b.Keys = b.Keys[:0]
	b.Weights = b.Weights[:0]
	b.Tenant = nil
	b.Token = nil
}

// DecodePayload parses one frame payload of the given version and type
// into dst, reusing dst's slices. The decoded keys (and tenant/token)
// alias payload. The payload must be exactly the frame's declared
// length: short records return ErrTruncated, leftover bytes return
// ErrTrailing.
func DecodePayload(version, typ byte, payload []byte, dst *Batch) error {
	dst.reset()
	weighted := false
	switch typ {
	case TypeBatch:
	case TypeWeightedBatch:
		weighted = true
	case TypeHello:
		if version != VersionTenant {
			return ErrBadType
		}
		if len(payload) < 2 {
			return ErrTruncated
		}
		tlen := int(binary.LittleEndian.Uint16(payload))
		if tlen == 0 || tlen > MaxTokenLen {
			return ErrBadToken
		}
		if len(payload)-2 < tlen {
			return ErrTruncated
		}
		if len(payload)-2 > tlen {
			return ErrTrailing
		}
		dst.Token = payload[2 : 2+tlen : 2+tlen]
		return nil
	default:
		return ErrBadType
	}
	if version == VersionTenant {
		// v2 batch payloads open with the tenant id; an empty one is the
		// default tenant, same as every v1 frame.
		if len(payload) < 1 {
			return ErrTruncated
		}
		tlen := int(payload[0])
		if len(payload)-1 < tlen {
			return ErrTruncated
		}
		if tlen > 0 {
			dst.Tenant = payload[1 : 1+tlen : 1+tlen]
		}
		payload = payload[1+tlen:]
	}
	if len(payload) < 4 {
		return ErrTruncated
	}
	count := binary.LittleEndian.Uint32(payload)
	payload = payload[4:]
	// Each record is at least 2 bytes of length prefix (+1 weight byte),
	// so a count the remaining bytes cannot possibly back is rejected
	// before any slice growth.
	min := uint64(count) * 2
	if weighted {
		min = uint64(count) * 3
	}
	if min > uint64(len(payload)) {
		return ErrCountsAhead
	}
	for i := uint32(0); i < count; i++ {
		if len(payload) < 2 {
			return ErrTruncated
		}
		klen := int(binary.LittleEndian.Uint16(payload))
		payload = payload[2:]
		if klen > len(payload) {
			return ErrTruncated
		}
		dst.Keys = append(dst.Keys, payload[:klen:klen])
		payload = payload[klen:]
		if weighted {
			w, n := binary.Uvarint(payload)
			if n <= 0 {
				return ErrBadWeight
			}
			payload = payload[n:]
			dst.Weights = append(dst.Weights, w)
		}
	}
	if len(payload) != 0 {
		return ErrTrailing
	}
	return nil
}

// AppendFrame appends one encoded version-1 frame carrying keys (and,
// when weights is non-nil, the parallel per-key weights) to dst and
// returns the extended slice. It is the encoder counterpart of
// Reader/DecodePayload; callers reuse dst across frames for an
// allocation-free send loop. Frames that would violate the protocol
// bounds (key too long, payload past MaxPayload) return an error and
// leave dst unchanged.
func AppendFrame(dst []byte, keys [][]byte, weights []uint64) ([]byte, error) {
	return appendFrame(dst, Version, nil, keys, weights)
}

// AppendFrameTenant appends one encoded version-2 frame carrying the
// tenant id (empty = default tenant) and the arrival records. It is the
// multi-tenant counterpart of AppendFrame.
func AppendFrameTenant(dst []byte, tenant []byte, keys [][]byte, weights []uint64) ([]byte, error) {
	if len(tenant) > MaxTenantLen {
		return dst, ErrTenantTooLong
	}
	return appendFrame(dst, VersionTenant, tenant, keys, weights)
}

func appendFrame(dst []byte, version byte, tenant []byte, keys [][]byte, weights []uint64) ([]byte, error) {
	typ := byte(TypeBatch)
	if weights != nil {
		if len(weights) != len(keys) {
			return dst, fmt.Errorf("wire: %d keys but %d weights", len(keys), len(weights))
		}
		typ = TypeWeightedBatch
	}
	payload := 4
	if version == VersionTenant {
		payload += 1 + len(tenant)
	}
	for i, k := range keys {
		if len(k) > MaxKeyLen {
			return dst, ErrKeyTooLong
		}
		payload += 2 + len(k)
		if weights != nil {
			var tmp [binary.MaxVarintLen64]byte
			payload += binary.PutUvarint(tmp[:], weights[i])
		}
	}
	if payload > MaxPayload {
		return dst, ErrOversize
	}
	base := len(dst)
	dst = append(dst, magic0, magic1, version, typ, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(dst[base+4:], uint32(payload))
	if version == VersionTenant {
		dst = append(dst, byte(len(tenant)))
		dst = append(dst, tenant...)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for i, k := range keys {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(k)))
		dst = append(dst, k...)
		if weights != nil {
			dst = binary.AppendUvarint(dst, weights[i])
		}
	}
	return dst, nil
}

// AppendHello appends one encoded version-2 TypeHello handshake frame
// carrying the bearer token. A daemon running with token auth requires
// it as the first frame of every stream connection.
func AppendHello(dst []byte, token []byte) ([]byte, error) {
	if len(token) == 0 || len(token) > MaxTokenLen {
		return dst, ErrBadToken
	}
	base := len(dst)
	dst = append(dst, magic0, magic1, VersionTenant, TypeHello, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(dst[base+4:], uint32(2+len(token)))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(token)))
	dst = append(dst, token...)
	return dst, nil
}

// Reader decodes a stream of frames from an io.Reader (typically a TCP
// connection). It owns one payload buffer and one Batch, both reused
// across frames, so steady-state reading does not allocate. A Reader is
// not safe for concurrent use.
type Reader struct {
	r     io.Reader
	buf   []byte
	hdr   [HeaderLen]byte // reused so the header read never escapes per call
	batch Batch
}

// NewReader returns a Reader decoding frames from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next reads and decodes the next frame, returning its batch. The batch
// (keys included) is valid only until the following Next call. At clean
// end of stream (between frames) it returns io.EOF; a stream ending
// inside a frame returns an ErrCorrupt-matching error wrapping
// io.ErrUnexpectedEOF; any other malformed input returns its typed
// ErrCorrupt cause.
func (r *Reader) Next() (*Batch, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: reading header: %w", ErrCorrupt, err)
	}
	h, err := ParseHeader(r.hdr)
	if err != nil {
		return nil, err
	}
	if cap(r.buf) < int(h.Length) {
		r.buf = make([]byte, h.Length)
	}
	r.buf = r.buf[:h.Length]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, fmt.Errorf("%w: reading payload: %w", ErrCorrupt, err)
	}
	if err := DecodePayload(h.Version, h.Type, r.buf, &r.batch); err != nil {
		return nil, err
	}
	return &r.batch, nil
}

// DecodeDatagram parses one datagram holding exactly one frame (header
// plus payload, nothing else) into dst — the UDP shape of the protocol.
func DecodeDatagram(dgram []byte, dst *Batch) error {
	if len(dgram) < HeaderLen {
		return ErrTruncated
	}
	var hdr [HeaderLen]byte
	copy(hdr[:], dgram)
	h, err := ParseHeader(hdr)
	if err != nil {
		return err
	}
	if len(dgram)-HeaderLen != int(h.Length) {
		if len(dgram)-HeaderLen < int(h.Length) {
			return ErrTruncated
		}
		return ErrTrailing
	}
	return DecodePayload(h.Version, h.Type, dgram[HeaderLen:], dst)
}
