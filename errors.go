package heavykeeper

import "errors"

// Typed constructor and merge errors. Constructors wrap these with detail
// (the offending value), so callers branch with errors.Is:
//
//	if _, err := heavykeeper.New(k, opts...); errors.Is(err, heavykeeper.ErrInvalidK) { ... }
var (
	// ErrInvalidK is returned when the report size k is < 1.
	ErrInvalidK = errors.New("heavykeeper: k must be >= 1")
	// ErrInvalidMemory is returned for a non-positive WithMemory budget.
	ErrInvalidMemory = errors.New("heavykeeper: memory budget must be positive")
	// ErrInvalidWidth is returned for a WithWidth below 1.
	ErrInvalidWidth = errors.New("heavykeeper: width must be >= 1")
	// ErrInvalidDepth is returned for a WithDepth below 1.
	ErrInvalidDepth = errors.New("heavykeeper: depth must be >= 1")
	// ErrInvalidDecayBase is returned for a WithDecayBase not > 1.
	ErrInvalidDecayBase = errors.New("heavykeeper: decay base must be > 1")
	// ErrInvalidFingerprintBits is returned for WithFingerprintBits outside (0, 32].
	ErrInvalidFingerprintBits = errors.New("heavykeeper: fingerprint bits must be in (0, 32]")
	// ErrInvalidVersion is returned for an unknown WithVersion value.
	ErrInvalidVersion = errors.New("heavykeeper: unknown version")
	// ErrInvalidShards is returned for a WithShards count below 1.
	ErrInvalidShards = errors.New("heavykeeper: shard count must be >= 1")
	// ErrInvalidExpansion is returned for a WithExpansion threshold of 0.
	ErrInvalidExpansion = errors.New("heavykeeper: expansion threshold must be > 0")
	// ErrInvalidWindow is returned for a NewWindow size below 2.
	ErrInvalidWindow = errors.New("heavykeeper: window size must be >= 2")
	// ErrOptionConflict is returned when mutually exclusive options are
	// combined (WithWidth+WithMemory, WithMinHeap+WithMapStore,
	// WithShards+WithConcurrency, or HeavyKeeper-specific options with a
	// non-HeavyKeeper WithAlgorithm).
	ErrOptionConflict = errors.New("heavykeeper: conflicting options")
	// ErrUnknownAlgorithm is returned when WithAlgorithm (or BuildEngine)
	// names an algorithm absent from the registry.
	ErrUnknownAlgorithm = errors.New("heavykeeper: unknown algorithm")
	// ErrMergeMismatch is returned by Merge when the two summarizers are not
	// mergeable into each other: different frontend types, different shard
	// layouts, nil or self arguments, or incompatible sketch configurations.
	ErrMergeMismatch = errors.New("heavykeeper: summarizers not mergeable")
	// ErrMergeUnsupported is returned by Merge when the backing algorithm has
	// no merge operation (most registry engines other than HeavyKeeper).
	ErrMergeUnsupported = errors.New("heavykeeper: algorithm does not support merge")
	// ErrCorrupt is returned by ReadTopK/ReadSummarizer for any malformed,
	// truncated or incompatible snapshot container. Decoding failures wrap
	// it, so callers branch with errors.Is.
	ErrCorrupt = errors.New("heavykeeper: corrupt snapshot")
	// ErrSnapshotUnsupported is returned by WriteTo when the summarizer's
	// backing algorithm has no snapshot format (registry engines other than
	// the HeavyKeeper family).
	ErrSnapshotUnsupported = errors.New("heavykeeper: algorithm does not support snapshots")
)
