package heavykeeper

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(10, 1); !errors.Is(err, ErrInvalidWindow) {
		t.Fatalf("window size 1: got %v, want ErrInvalidWindow", err)
	}
	if _, err := NewWindow(0, 100); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("k 0: got %v, want ErrInvalidK", err)
	}
	if _, err := NewWindow(10, 100, WithAlgorithm("spacesaving")); !errors.Is(err, ErrOptionConflict) {
		t.Fatalf("non-HK algorithm: got %v, want ErrOptionConflict", err)
	}
	if _, err := NewWindow(10, 100, WithShards(4)); !errors.Is(err, ErrOptionConflict) {
		t.Fatalf("WithShards: got %v, want ErrOptionConflict", err)
	}
	if _, err := NewWindow(10, 100, WithConcurrency()); !errors.Is(err, ErrOptionConflict) {
		t.Fatalf("WithConcurrency: got %v, want ErrOptionConflict", err)
	}
}

func TestWindowForgetsOldTraffic(t *testing.T) {
	w := MustNewWindow(5, 1000, WithSeed(9))
	heavy := []byte("early-elephant")
	for i := 0; i < 400; i++ {
		w.Add(heavy)
	}
	if w.Query(heavy) == 0 {
		t.Fatal("fresh elephant not visible")
	}
	// Push two full windows of other traffic past it; the early elephant
	// must be gone from the report and the estimate.
	for i := 0; i < 2000; i++ {
		w.Add(fmt.Appendf(nil, "late-%04d", i%50))
	}
	if got := w.Query(heavy); got != 0 {
		t.Fatalf("elephant older than the window still reports %d", got)
	}
	for _, f := range w.List() {
		if bytes.Equal(f.ID, heavy) {
			t.Fatal("expired elephant still listed")
		}
	}
	if w.Rotations() < 2 {
		t.Fatalf("expected >= 2 rotations, got %d", w.Rotations())
	}
}

func TestWindowBatchMatchesSequential(t *testing.T) {
	seq := MustNewWindow(10, 500, WithSeed(3))
	bat := MustNewWindow(10, 500, WithSeed(3))
	keys := make([][]byte, 0, 3000)
	for i := 0; i < 3000; i++ {
		keys = append(keys, fmt.Appendf(nil, "flow-%03d", i%200))
	}
	for _, k := range keys {
		seq.Add(k)
	}
	// Batches that straddle pane boundaries must rotate identically.
	for lo := 0; lo < len(keys); lo += 171 {
		hi := min(lo+171, len(keys))
		bat.AddBatch(keys[lo:hi])
	}
	if seq.Rotations() != bat.Rotations() {
		t.Fatalf("rotations differ: %d vs %d", seq.Rotations(), bat.Rotations())
	}
	ls, lb := seq.List(), bat.List()
	if len(ls) != len(lb) {
		t.Fatalf("report sizes differ: %d vs %d", len(ls), len(lb))
	}
	for i := range ls {
		if !bytes.Equal(ls[i].ID, lb[i].ID) || ls[i].Count != lb[i].Count {
			t.Fatalf("report[%d]: %q/%d vs %q/%d", i, ls[i].ID, ls[i].Count, lb[i].ID, lb[i].Count)
		}
	}
}

func TestWindowSummarizerSurface(t *testing.T) {
	var s Summarizer = MustNewWindow(5, 100)
	s.AddString("hello")
	s.AddN([]byte("hello"), 3)
	if got := s.Query([]byte("hello")); got != 4 {
		t.Fatalf("Query = %d, want 4", got)
	}
	if s.K() != 5 {
		t.Fatalf("K = %d", s.K())
	}
	if s.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
	if s.Stats().Packets == 0 {
		t.Fatal("Stats.Packets is zero after ingest")
	}
	n := 0
	for range s.All() {
		n++
	}
	if n != 1 {
		t.Fatalf("All yielded %d flows, want 1", n)
	}
	if err := s.Merge(MustNew(5)); !errors.Is(err, ErrMergeUnsupported) {
		t.Fatalf("Merge: got %v, want ErrMergeUnsupported", err)
	}
}

func TestWindowConcurrentUse(t *testing.T) {
	w := MustNewWindow(10, 2048)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w.Add(fmt.Appendf(nil, "g%d-%04d", g, i%64))
				if i%128 == 0 {
					w.List()
					w.Query([]byte("g0-0000"))
				}
			}
		}(g)
	}
	wg.Wait()
	// Retired panes take their counters with them, so Stats covers at most
	// the live panes' share of the 8000 adds — but never zero or more than
	// one full window.
	if p := w.Stats().Packets; p == 0 || p > 2048 {
		t.Fatalf("Packets = %d, want within (0, 2048]", p)
	}
}
