package heavykeeper

import (
	"fmt"
	"sort"
	"sync"
)

// Engine is the algorithm-side contract behind a Summarizer frontend: one
// single-goroutine top-k tracker instance. The three frontends (TopK,
// Concurrent, Sharded) layer identity, locking and shard routing on top of
// it, so any registered algorithm gets all three deployment shapes for free.
//
// The *Hashed methods are the one-hash discipline: KeyHash is the engine's
// single per-key hash, and a caller that already computed it (the sharded
// router, a batched pre-pass) hands it down so the key bytes are traversed
// at most once per packet. Engines that do not hash internally (map-indexed
// trackers) simply ignore the value; Insert must behave exactly like
// InsertHashed(key, KeyHash(key)).
type Engine interface {
	// Name identifies the algorithm (its registry name).
	Name() string
	// KeyHash returns the engine's single per-key hash.
	KeyHash(key []byte) uint64
	// Insert records one packet of flow key.
	Insert(key []byte)
	// InsertHashed is Insert with the key's precomputed KeyHash.
	InsertHashed(key []byte, h uint64)
	// InsertN records a weight-n arrival (n packets, or n bytes when ranking
	// by volume).
	InsertN(key []byte, n uint64)
	// InsertNHashed is InsertN with the key's precomputed KeyHash.
	InsertNHashed(key []byte, h uint64, n uint64)
	// Query returns the engine's current size estimate for key (0 when the
	// flow is unmonitored).
	Query(key []byte) uint64
	// QueryHashed is Query with the key's precomputed KeyHash.
	QueryHashed(key []byte, h uint64) uint64
	// Top returns up to k flows in descending estimated size.
	Top(k int) []Flow
	// MergeFrom folds other into the receiver. Engines without a merge
	// operation return ErrMergeUnsupported regardless of the argument; a
	// mergeable engine handed another algorithm or an incompatible
	// configuration returns ErrMergeMismatch.
	MergeFrom(other Engine) error
	// MemoryBytes is the engine's logical footprint under the paper's §VI-A
	// accounting.
	MemoryBytes() int
	// Stats exposes ingest event counters. Non-sketch engines fill only the
	// fields that apply to them (at least Packets).
	Stats() Stats
}

// BatchEngine is optionally implemented by engines with a batched ingest
// path cheaper than a loop of InsertHashed (the HeavyKeeper engine's
// chunked hash-precompute pipeline). hashes may be nil, in which case the
// engine hashes each key itself — exactly once.
type BatchEngine interface {
	Engine
	InsertBatchHashed(keys [][]byte, hashes []uint64)
}

// EngineConfig is the uniform sizing contract of the algorithm registry:
// every builder receives a report size, a total byte budget and a seed, and
// applies its algorithm's own sizing rule (the paper's §VI-A setup) to fill
// the budget.
type EngineConfig struct {
	// K is the report size. Required.
	K int
	// MemoryBytes is the total byte budget. 0 means DefaultMemory.
	MemoryBytes int
	// Seed makes hashing (and decay, where applicable) deterministic.
	Seed uint64
}

// budget returns the effective byte budget.
func (c EngineConfig) budget() int {
	if c.MemoryBytes == 0 {
		return DefaultMemory
	}
	return c.MemoryBytes
}

// AlgorithmBuilder constructs one engine instance for a configuration.
type AlgorithmBuilder func(cfg EngineConfig) (Engine, error)

// registry is the algorithm table behind WithAlgorithm and BuildEngine.
var registry = struct {
	sync.RWMutex
	m map[string]AlgorithmBuilder
}{m: map[string]AlgorithmBuilder{}}

// RegisterAlgorithm adds (or replaces) a named algorithm. The built-in
// algorithms register themselves at init; user packages can add their own
// engines and select them with WithAlgorithm from any frontend, hkbench and
// hktopk included. Registering with a nil builder panics.
func RegisterAlgorithm(name string, build AlgorithmBuilder) {
	if name == "" || build == nil {
		panic("heavykeeper: RegisterAlgorithm with empty name or nil builder")
	}
	registry.Lock()
	defer registry.Unlock()
	registry.m[name] = build
}

// Algorithms returns the registered algorithm names, sorted.
func Algorithms() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuildEngine constructs a bare engine by registry name — the frontend-free
// entry point used by internal/harness and by callers embedding an
// algorithm into their own machinery. Most users want New(k,
// WithAlgorithm(name)) instead, which wraps the engine in a frontend.
func BuildEngine(name string, cfg EngineConfig) (Engine, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrInvalidK, cfg.K)
	}
	registry.RLock()
	build := registry.m[name]
	registry.RUnlock()
	if build == nil {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownAlgorithm, name, Algorithms())
	}
	return build(cfg)
}
