package heavykeeper

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSnapshotCorpus builds the seed corpus for FuzzSnapshotRead: one
// valid checksummed envelope per frontend kind, a legacy bare container,
// and structured corruptions of each (truncations, bit flips, bad magic)
// so the fuzzer starts at the interesting boundaries instead of having
// to rediscover the format.
func fuzzSnapshotCorpus(f *testing.F) {
	add := func(b []byte) { f.Add(b) }
	for _, opts := range [][]Option{
		nil,
		{WithConcurrency()},
		{WithShards(2)},
		{WithMinHeap()},
	} {
		s := MustNew(5, append([]Option{WithSeed(1), WithMemory(4 << 10)}, opts...)...)
		ingestZipfish(s, 50, 2000)
		var buf bytes.Buffer
		if _, err := WriteSnapshot(&buf, s.(SnapshotWriter)); err != nil {
			f.Fatalf("WriteSnapshot: %v", err)
		}
		raw := buf.Bytes()
		add(raw)
		add(raw[:len(raw)/2])
		add(raw[:len(raw)-4])
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)/3] ^= 0x10
		add(flipped)

		buf.Reset()
		if _, err := s.(SnapshotWriter).WriteTo(&buf); err != nil {
			f.Fatalf("WriteTo: %v", err)
		}
		add(buf.Bytes()) // legacy bare container
	}
	add([]byte("HKC1"))
	add([]byte("HKC1\x00\x00\x00\x00\x00\x00\x00\x00"))
	add([]byte("HKC1\xff\xff\xff\xff"))
	add(nil)
}

// FuzzSnapshotRead holds the checksummed-envelope decoder to its
// contract: never panic, reject every malformed input as ErrCorrupt (or
// ErrSnapshotUnsupported is impossible on read), and restore accepted
// inputs into a summarizer that can re-snapshot itself.
func FuzzSnapshotRead(f *testing.F) {
	fuzzSnapshotCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		sum, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
			return
		}
		// Accepted input: the restored summarizer must be serviceable and
		// re-serializable through the checksummed envelope.
		sum.Add([]byte("fuzz-probe"))
		var buf bytes.Buffer
		if _, err := WriteSnapshot(&buf, sum.(SnapshotWriter)); err != nil {
			t.Fatalf("re-snapshot of accepted input: %v", err)
		}
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-read of re-snapshot: %v", err)
		}
	})
}
