// Benchmarks that regenerate every table and figure of the HeavyKeeper
// paper's evaluation (§VI, Figs 4–36) plus this repository's ablations.
//
// Each BenchmarkFigNN runs the corresponding experiment through the harness
// and logs the resulting table (view with `go test -bench Fig04 -v`); the
// benchmark's wall time is the cost of regenerating that figure. Key series
// are also exported as benchmark metrics so regressions show up in
// benchstat. The workload scale defaults to 0.5% of the paper's packet
// counts so the full suite completes in minutes; set HK_BENCH_SCALE (e.g.
// 0.1 or 1.0) for higher-fidelity runs.
//
// The per-packet hot-path benchmarks live next to their packages (e.g.
// internal/core, internal/topk); this file covers the paper-level
// experiments.
package heavykeeper_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	heavykeeper "repro"
	"repro/internal/gen"
	"repro/internal/harness"
)

func benchScale() float64 {
	if s := os.Getenv("HK_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.005
}

var (
	runnerOnce sync.Once
	runner     *harness.Runner
)

// sharedRunner caches traces and oracles across all figure benchmarks.
func sharedRunner() *harness.Runner {
	runnerOnce.Do(func() {
		runner = harness.NewRunner(harness.RunConfig{Scale: benchScale(), Seed: 31337})
	})
	return runner
}

// benchFigure runs figure id once per b.N iteration and logs the table.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		tab, err := r.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			reportKeySeries(b, tab)
		}
	}
}

// reportKeySeries exports the HeavyKeeper series' last sweep point (the
// most generous setting) and first point (the tightest) as metrics.
func reportKeySeries(b *testing.B, tab *harness.Table) {
	for _, col := range []string{harness.AlgoHK, harness.AlgoHKMinimum} {
		if series := tab.Column(col); series != nil && len(series) > 0 {
			b.ReportMetric(series[0], "HK_first")
			b.ReportMetric(series[len(series)-1], "HK_last")
			return
		}
	}
}

func benchAblation(b *testing.B, id string) {
	b.Helper()
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		tab, err := r.Ablation(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
		}
	}
}

func BenchmarkFig04PrecisionVsMemoryCampus(b *testing.B)   { benchFigure(b, "4") }
func BenchmarkFig05PrecisionVsMemoryCAIDA(b *testing.B)    { benchFigure(b, "5") }
func BenchmarkFig06PrecisionVsKCampus(b *testing.B)        { benchFigure(b, "6") }
func BenchmarkFig07PrecisionVsKCAIDA(b *testing.B)         { benchFigure(b, "7") }
func BenchmarkFig08PrecisionVsSkew(b *testing.B)           { benchFigure(b, "8") }
func BenchmarkFig09AREVsMemoryCampus(b *testing.B)         { benchFigure(b, "9") }
func BenchmarkFig10PrecisionVsMemoryMB(b *testing.B)       { benchFigure(b, "10") }
func BenchmarkFig11AREVsMemoryCAIDA(b *testing.B)          { benchFigure(b, "11") }
func BenchmarkFig12AREVsKCampus(b *testing.B)              { benchFigure(b, "12") }
func BenchmarkFig13AREVsKCAIDA(b *testing.B)               { benchFigure(b, "13") }
func BenchmarkFig14AREVsSkew(b *testing.B)                 { benchFigure(b, "14") }
func BenchmarkFig15AAEVsMemoryCampus(b *testing.B)         { benchFigure(b, "15") }
func BenchmarkFig16AAEVsMemoryCAIDA(b *testing.B)          { benchFigure(b, "16") }
func BenchmarkFig17AAEVsKCampus(b *testing.B)              { benchFigure(b, "17") }
func BenchmarkFig18AAEVsKCAIDA(b *testing.B)               { benchFigure(b, "18") }
func BenchmarkFig19AAEVsSkew(b *testing.B)                 { benchFigure(b, "19") }
func BenchmarkFig20PrecisionRecentWorks(b *testing.B)      { benchFigure(b, "20") }
func BenchmarkFig21ARERecentWorks(b *testing.B)            { benchFigure(b, "21") }
func BenchmarkFig22AAERecentWorks(b *testing.B)            { benchFigure(b, "22") }
func BenchmarkFig23PrecisionParallelVsMin(b *testing.B)    { benchFigure(b, "23") }
func BenchmarkFig24AREParallelVsMin(b *testing.B)          { benchFigure(b, "24") }
func BenchmarkFig25AAEParallelVsMin(b *testing.B)          { benchFigure(b, "25") }
func BenchmarkFig26PrecisionVsKParallelVsMin(b *testing.B) { benchFigure(b, "26") }
func BenchmarkFig27AREVsKParallelVsMin(b *testing.B)       { benchFigure(b, "27") }
func BenchmarkFig28AAEVsKParallelVsMin(b *testing.B)       { benchFigure(b, "28") }
func BenchmarkFig29PrecisionVsSkewVersions(b *testing.B)   { benchFigure(b, "29") }
func BenchmarkFig30AREVsSkewVersions(b *testing.B)         { benchFigure(b, "30") }
func BenchmarkFig31AAEVsSkewVersions(b *testing.B)         { benchFigure(b, "31") }
func BenchmarkFig32PrecisionVsPackets(b *testing.B)        { benchFigure(b, "32") }
func BenchmarkFig33ThroughputVsMemory(b *testing.B)        { benchFigure(b, "33") }
func BenchmarkFig34OVSThroughput(b *testing.B)             { benchFigure(b, "34") }
func BenchmarkFig35ErrorBoundEps16(b *testing.B)           { benchFigure(b, "35") }
func BenchmarkFig36ErrorBoundEps17(b *testing.B)           { benchFigure(b, "36") }

func BenchmarkAblationDecayFunctions(b *testing.B) { benchAblation(b, "decay-functions") }
func BenchmarkAblationDepth(b *testing.B)          { benchAblation(b, "depth") }
func BenchmarkAblationFingerprint(b *testing.B)    { benchAblation(b, "fingerprint-bits") }
func BenchmarkAblationOptimizations(b *testing.B)  { benchAblation(b, "optimizations") }
func BenchmarkAblationStore(b *testing.B)          { benchAblation(b, "store") }
func BenchmarkAblationExpansion(b *testing.B)      { benchAblation(b, "expansion") }

// ---------------------------------------------------------------------------
// Parallel ingest benchmarks: Concurrent's single mutex vs Sharded's
// per-shard locks, per-packet vs batched, across goroutine counts.
//
// Run with: go test -bench Ingest -benchtime 2s .
// The acceptance target for the sharded subsystem is Sharded.AddBatch at
// ≥ 2× the throughput of Concurrent.Add at 8 goroutines.
// ---------------------------------------------------------------------------

var (
	ingestKeysOnce sync.Once
	ingestKeys     [][]byte
)

// sharedIngestKeys is a zipfian key stream (16k distinct draws over ~3k
// flows) shared by all ingest benchmarks.
func sharedIngestKeys() [][]byte {
	ingestKeysOnce.Do(func() {
		tr := gen.MustGenerate(gen.Spec{
			Name: "bench", Packets: 1 << 14, Flows: 3000, Skew: 1.0,
			Kind: gen.IDTwoTuple, Seed: 7,
		})
		ingestKeys = make([][]byte, 0, tr.Len())
		tr.ForEach(func(key []byte) { ingestKeys = append(ingestKeys, key) })
	})
	return ingestKeys
}

// benchIngest runs body via b.RunParallel with exactly g goroutines by
// pinning GOMAXPROCS to g for the duration (RunParallel spawns GOMAXPROCS ×
// parallelism goroutines). Each goroutine walks the shared key stream from
// its own offset.
func benchIngest(b *testing.B, g int, body func(pb *testing.PB, keys [][]byte)) {
	b.Helper()
	keys := sharedIngestKeys()
	prev := runtime.GOMAXPROCS(g)
	defer runtime.GOMAXPROCS(prev)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) { body(pb, keys) })
}

func BenchmarkIngestConcurrentAdd(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			c, err := heavykeeper.NewConcurrent(100)
			if err != nil {
				b.Fatal(err)
			}
			benchIngest(b, g, func(pb *testing.PB, keys [][]byte) {
				i := 0
				for pb.Next() {
					c.Add(keys[i&(len(keys)-1)])
					i++
				}
			})
		})
	}
}

func BenchmarkIngestShardedAdd(b *testing.B) {
	for _, s := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("s=%d/g=%d", s, s), func(b *testing.B) {
			sh, err := heavykeeper.NewSharded(100, heavykeeper.WithShards(s))
			if err != nil {
				b.Fatal(err)
			}
			benchIngest(b, s, func(pb *testing.PB, keys [][]byte) {
				i := 0
				for pb.Next() {
					sh.Add(keys[i&(len(keys)-1)])
					i++
				}
			})
		})
	}
}

// batchedBody drains the stream in contiguous windows of size bs per
// iteration batch; pb.Next is consumed once per packet so ns/op stays
// per-packet comparable with the unbatched benchmarks.
func batchedBody(add func([][]byte), bs int) func(pb *testing.PB, keys [][]byte) {
	return func(pb *testing.PB, keys [][]byte) {
		i := 0
		for {
			n := 0
			for n < bs && pb.Next() {
				n++
			}
			if n == 0 {
				return
			}
			lo := i & (len(keys) - 1)
			if lo+n > len(keys) {
				lo = 0
			}
			add(keys[lo : lo+n])
			i += n
		}
	}
}

func BenchmarkIngestConcurrentAddBatch(b *testing.B) {
	for _, bs := range []int{64, 256} {
		b.Run(fmt.Sprintf("g=8/batch=%d", bs), func(b *testing.B) {
			c, err := heavykeeper.NewConcurrent(100)
			if err != nil {
				b.Fatal(err)
			}
			benchIngest(b, 8, batchedBody(c.AddBatch, bs))
		})
	}
}

func BenchmarkIngestShardedAddBatch(b *testing.B) {
	for _, s := range []int{1, 4, 8} {
		for _, bs := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("s=%d/g=%d/batch=%d", s, s, bs), func(b *testing.B) {
				sh, err := heavykeeper.NewSharded(100, heavykeeper.WithShards(s))
				if err != nil {
					b.Fatal(err)
				}
				benchIngest(b, s, batchedBody(sh.AddBatch, bs))
			})
		}
	}
}

// BenchmarkInsertPerPacket measures the end-to-end per-packet cost of the
// default public-API configuration — the number behind the paper's Mps
// claims, on this machine.
func BenchmarkInsertPerPacket(b *testing.B) {
	for _, name := range []string{harness.AlgoHK, harness.AlgoHKMinimum, harness.AlgoSS, harness.AlgoCM} {
		b.Run(name, func(b *testing.B) {
			a := harness.MustBuild(name, 50*1024, 100, 1)
			keys := make([][]byte, 1<<14)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("flow-%d", i%3000))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Insert(keys[i&(len(keys)-1)])
			}
		})
	}
}
