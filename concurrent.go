package heavykeeper

import "sync"

// Concurrent is a mutex-guarded TopK for multi-goroutine use. HeavyKeeper's
// single-writer hot path is a few dozen nanoseconds, so a plain mutex keeps
// up with millions of packets per second from a handful of goroutines.
// Prefer Sharded when ingest is the bottleneck: it fans flows across
// per-core TopK shards by flow hash, so writers contend on per-shard locks
// instead of this single global one, and its AddBatch takes each shard lock
// once per batch rather than once per packet. Concurrent remains the right
// choice when a single global sketch is required (e.g. for snapshotting one
// mergeable sketch) or when write concurrency is low.
type Concurrent struct {
	mu sync.Mutex
	t  *TopK
}

// NewConcurrent returns a concurrency-safe TopK.
func NewConcurrent(k int, opts ...Option) (*Concurrent, error) {
	t, err := New(k, opts...)
	if err != nil {
		return nil, err
	}
	return &Concurrent{t: t}, nil
}

// Add records one occurrence of flowID.
func (c *Concurrent) Add(flowID []byte) {
	c.mu.Lock()
	c.t.Add(flowID)
	c.mu.Unlock()
}

// AddString is Add for string identifiers.
func (c *Concurrent) AddString(flowID string) {
	c.mu.Lock()
	c.t.AddString(flowID)
	c.mu.Unlock()
}

// AddBatch records one occurrence of every flow identifier in flowIDs,
// taking the lock once for the whole batch and using the batched sketch
// path underneath.
func (c *Concurrent) AddBatch(flowIDs [][]byte) {
	c.mu.Lock()
	c.t.AddBatch(flowIDs)
	c.mu.Unlock()
}

// Query returns the current size estimate for flowID.
func (c *Concurrent) Query(flowID []byte) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Query(flowID)
}

// List returns the current top-k flows in descending estimated size.
func (c *Concurrent) List() []Flow {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.List()
}

// K returns the configured report size.
func (c *Concurrent) K() int { return c.t.K() }

// MemoryBytes returns the logical memory footprint.
func (c *Concurrent) MemoryBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.MemoryBytes()
}
