package heavykeeper

import (
	"fmt"
	"iter"
	"reflect"
	"sync"
)

// Concurrent is a mutex-guarded TopK for multi-goroutine use. HeavyKeeper's
// single-writer hot path is a few dozen nanoseconds, so a plain mutex keeps
// up with millions of packets per second from a handful of goroutines.
// Prefer Sharded when ingest is the bottleneck: it fans flows across
// per-core TopK shards by flow hash, so writers contend on per-shard locks
// instead of this single global one, and its AddBatch takes each shard lock
// once per batch rather than once per packet. Concurrent remains the right
// choice when a single global sketch is required (e.g. for snapshotting one
// mergeable sketch) or when write concurrency is low.
//
// Construct one with New(k, WithConcurrency(), ...).
type Concurrent struct {
	mu sync.Mutex
	t  *TopK
}

// NewConcurrent returns a concurrency-safe TopK.
//
// Deprecated: use New(k, WithConcurrency(), opts...). This wrapper remains
// for compatibility: as before this constructor existed under the unified
// New, a WithShards option is ignored rather than treated as a conflict.
func NewConcurrent(k int, opts ...Option) (*Concurrent, error) {
	cfg, err := parseConfig(k, opts)
	if err != nil {
		return nil, err
	}
	cfg.shards = 0 // historical contract: WithShards is ignored here
	t, err := newTopK(k, cfg)
	if err != nil {
		return nil, err
	}
	return &Concurrent{t: t}, nil
}

// MustNewConcurrent is NewConcurrent that panics on error, for tests and
// examples.
//
// Deprecated: use MustNew(k, WithConcurrency(), opts...).
func MustNewConcurrent(k int, opts ...Option) *Concurrent {
	c, err := NewConcurrent(k, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Synchronized returns a concurrency-safe view of s: a bare *TopK is
// wrapped behind a mutex (the returned Concurrent shares its state);
// every other frontend is already safe for concurrent use and is
// returned unchanged. Servers use it to accept any Summarizer — a
// ReadSummarizer-restored *TopK included — without a data race.
func Synchronized(s Summarizer) Summarizer {
	if t, ok := s.(*TopK); ok {
		return &Concurrent{t: t}
	}
	return s
}

// Add records one occurrence of flowID.
func (c *Concurrent) Add(flowID []byte) {
	c.mu.Lock()
	c.t.Add(flowID)
	c.mu.Unlock()
}

// AddString is Add for string identifiers, without copying the string.
func (c *Concurrent) AddString(flowID string) {
	c.mu.Lock()
	c.t.AddString(flowID)
	c.mu.Unlock()
}

// AddN records a weight-n occurrence of flowID.
func (c *Concurrent) AddN(flowID []byte, n uint64) {
	c.mu.Lock()
	c.t.AddN(flowID, n)
	c.mu.Unlock()
}

// AddBatch records one occurrence of every flow identifier in flowIDs,
// taking the lock once for the whole batch and using the batched sketch
// path underneath.
func (c *Concurrent) AddBatch(flowIDs [][]byte) {
	c.mu.Lock()
	c.t.AddBatch(flowIDs)
	c.mu.Unlock()
}

// Query returns the current size estimate for flowID.
func (c *Concurrent) Query(flowID []byte) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Query(flowID)
}

// List returns the current top-k flows in descending estimated size.
func (c *Concurrent) List() []Flow {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.List()
}

// All returns an iterator over the current top-k flows in descending
// estimated size. The snapshot is taken under the lock when iteration
// starts; the caller consumes it lock-free, so ingest may continue (and
// Add from inside the loop cannot deadlock).
func (c *Concurrent) All() iter.Seq[Flow] {
	return func(yield func(Flow) bool) {
		for _, f := range c.List() {
			if !yield(f) {
				return
			}
		}
	}
}

// Merge folds other into c. other must be a *Concurrent built with the same
// configuration; both sides' locks are held (in a deterministic instance
// order, so concurrent a.Merge(b) and b.Merge(a) cannot deadlock) and
// other is left unmodified.
func (c *Concurrent) Merge(other Summarizer) error {
	o, ok := other.(*Concurrent)
	if !ok || o == nil || o == c {
		return fmt.Errorf("%w: Concurrent cannot merge %T (nil or self included)", ErrMergeMismatch, other)
	}
	first, second := c, o
	if reflect.ValueOf(first).Pointer() > reflect.ValueOf(second).Pointer() {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	return c.t.Merge(o.t)
}

// K returns the configured report size.
func (c *Concurrent) K() int { return c.t.K() }

// MemoryBytes returns the logical memory footprint.
func (c *Concurrent) MemoryBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.MemoryBytes()
}

// Stats exposes the engine's internal event counters.
func (c *Concurrent) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Stats()
}

// StoreIndexStats reports the top-k store's index occupancy and probe
// lengths, exactly as TopK.StoreIndexStats does; all three frontends
// expose the surface uniformly, so monitoring code type-asserts
// StoreIndexReporter once instead of switching on the frontend type.
func (c *Concurrent) StoreIndexStats() (StoreIndexStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.StoreIndexStats()
}
