package heavykeeper

import "sync"

// Concurrent is a mutex-guarded TopK for multi-goroutine use. HeavyKeeper's
// single-writer hot path is a few dozen nanoseconds, so a plain mutex keeps
// up with millions of packets per second; pipelines that need more should
// shard flows across several TopK instances by flow hash instead (each
// shard then reports its own top-k, merged at query time).
type Concurrent struct {
	mu sync.Mutex
	t  *TopK
}

// NewConcurrent returns a concurrency-safe TopK.
func NewConcurrent(k int, opts ...Option) (*Concurrent, error) {
	t, err := New(k, opts...)
	if err != nil {
		return nil, err
	}
	return &Concurrent{t: t}, nil
}

// Add records one occurrence of flowID.
func (c *Concurrent) Add(flowID []byte) {
	c.mu.Lock()
	c.t.Add(flowID)
	c.mu.Unlock()
}

// AddString is Add for string identifiers.
func (c *Concurrent) AddString(flowID string) {
	c.mu.Lock()
	c.t.AddString(flowID)
	c.mu.Unlock()
}

// Query returns the current size estimate for flowID.
func (c *Concurrent) Query(flowID []byte) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Query(flowID)
}

// List returns the current top-k flows in descending estimated size.
func (c *Concurrent) List() []Flow {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.List()
}

// K returns the configured report size.
func (c *Concurrent) K() int { return c.t.K() }

// MemoryBytes returns the logical memory footprint.
func (c *Concurrent) MemoryBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.MemoryBytes()
}
