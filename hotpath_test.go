// Hot-path regression tests: the ingest path performs exactly one key-bytes
// hash per packet and zero heap allocations per operation, across every
// frontend (TopK, Concurrent, Sharded). These pin the PR 2 one-hash /
// packed-layout properties so later work cannot silently regress them.
package heavykeeper_test

import (
	"fmt"
	"testing"

	heavykeeper "repro"
	"repro/internal/hash"
)

// hotKeys returns n distinct flow IDs.
func hotKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("flow-%04d", i))
	}
	return keys
}

// countKeyHashes returns the number of hash.Sum64 invocations fn makes.
func countKeyHashes(fn func()) uint64 {
	var n uint64
	hash.CountCalls(&n)
	defer hash.CountCalls(nil)
	fn()
	return n
}

// TestOneHashPerPacket: every public ingest and query entry point hashes the
// key bytes exactly once per packet — including Sharded, whose router mixes
// the same hash for shard selection instead of hashing again.
func TestOneHashPerPacket(t *testing.T) {
	keys := hotKeys(256)
	k := keys[0]
	ks := string(k)

	tk := heavykeeper.MustNew(100, heavykeeper.WithSeed(1))
	conc, _ := heavykeeper.NewConcurrent(100, heavykeeper.WithSeed(1))
	shrd := heavykeeper.MustNewSharded(100, heavykeeper.WithSeed(1), heavykeeper.WithShards(4))
	// The store layer must ride on the packet's one hash too, whichever
	// top-k structure backs it: the open-addressed Stream-Summary (default)
	// and the open-addressed min-heap probe by the precomputed KeyHash.
	heap := heavykeeper.MustNew(100, heavykeeper.WithSeed(1), heavykeeper.WithMinHeap())

	for name, tc := range map[string]struct {
		fn   func()
		want uint64
	}{
		"TopK.Add":        {func() { tk.Add(k) }, 1},
		"TopK.AddN":       {func() { tk.AddN(k, 3) }, 1},
		"TopK.AddString":  {func() { tk.AddString(ks) }, 1},
		"TopK.Query":      {func() { tk.Query(k) }, 1},
		"TopK.AddBatch":   {func() { tk.AddBatch(keys) }, uint64(len(keys))},
		"Concurrent.Add":  {func() { conc.Add(k) }, 1},
		"Concurrent.AddN": {func() { conc.AddN(k, 3) }, 1},
		"Concurrent.AddString": {
			func() { conc.AddString(ks) }, 1,
		},
		"Concurrent.Query": {func() { conc.Query(k) }, 1},
		"Concurrent.AddBatch": {
			func() { conc.AddBatch(keys) }, uint64(len(keys)),
		},
		"Sharded.Add":       {func() { shrd.Add(k) }, 1},
		"Sharded.AddN":      {func() { shrd.AddN(k, 3) }, 1},
		"Sharded.AddString": {func() { shrd.AddString(ks) }, 1},
		"Sharded.Query":     {func() { shrd.Query(k) }, 1},
		"Sharded.AddBatch": {
			func() { shrd.AddBatch(keys) }, uint64(len(keys)),
		},
		"TopK(MinHeap).Add":      {func() { heap.Add(k) }, 1},
		"TopK(MinHeap).AddN":     {func() { heap.AddN(k, 3) }, 1},
		"TopK(MinHeap).AddBatch": {func() { heap.AddBatch(keys) }, uint64(len(keys))},
	} {
		if got := countKeyHashes(tc.fn); got != tc.want {
			t.Errorf("%s: %d key hashes, want %d", name, got, tc.want)
		}
	}
}

// TestZeroAllocIngest: steady-state Add, AddString, AddBatch and Query
// allocate nothing on any frontend. AddString is pinned explicitly: the
// string entry points share the []byte hot path through a zero-copy view,
// so no []byte(s) conversion is ever materialized. The structures are
// warmed with the exact key set first so the measurement sees increments
// and bucket moves, not first-time admissions (which legitimately
// materialize one string per admitted flow).
func TestZeroAllocIngest(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race (sync.Pool caches are dropped)")
	}
	keys := hotKeys(64)
	k := keys[0]
	ks := string(k)

	tk := heavykeeper.MustNew(100, heavykeeper.WithSeed(1))
	shrd := heavykeeper.MustNewSharded(100, heavykeeper.WithSeed(1), heavykeeper.WithShards(4))
	conc, _ := heavykeeper.NewConcurrent(100, heavykeeper.WithSeed(1))
	heap := heavykeeper.MustNew(100, heavykeeper.WithSeed(1), heavykeeper.WithMinHeap())
	warm := func() {
		for i := 0; i < 50; i++ {
			tk.AddBatch(keys)
			shrd.AddBatch(keys)
			conc.AddBatch(keys)
			heap.AddBatch(keys)
			for _, key := range keys {
				tk.Add(key)
				shrd.Add(key)
				conc.Add(key)
				heap.Add(key)
			}
		}
	}
	warm()

	for name, fn := range map[string]func(){
		"TopK.Add":                func() { tk.Add(k) },
		"TopK.AddString":          func() { tk.AddString(ks) },
		"TopK.AddBatch":           func() { tk.AddBatch(keys) },
		"TopK.Query":              func() { tk.Query(k) },
		"Sharded.Add":             func() { shrd.Add(k) },
		"Sharded.AddString":       func() { shrd.AddString(ks) },
		"Sharded.AddBatch":        func() { shrd.AddBatch(keys) },
		"Sharded.Query":           func() { shrd.Query(k) },
		"Concurrent.Add":          func() { conc.Add(k) },
		"Concurrent.AddString":    func() { conc.AddString(ks) },
		"Concurrent.AddBatch":     func() { conc.AddBatch(keys) },
		"Concurrent.Query":        func() { conc.Query(k) },
		"TopK(MinHeap).Add":       func() { heap.Add(k) },
		"TopK(MinHeap).AddString": func() { heap.AddString(ks) },
		"TopK(MinHeap).AddBatch":  func() { heap.AddBatch(keys) },
	} {
		if avg := testing.AllocsPerRun(100, fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, avg)
		}
	}
}

// TestStoreLayerHashFree pins the store-layer half of the one-hash
// invariant directly: once a flow is resident, the probe-then-update store
// sequence driven by Add/AddBatch performs no key-bytes hashing of its own —
// the single KeyHash counted in TestOneHashPerPacket is computed by the
// sketch and reused by the store index. A second hash here would point at a
// store op that fell off the *Hashed path.
func TestStoreLayerHashFree(t *testing.T) {
	keys := hotKeys(32)
	for name, tk := range map[string]heavykeeper.Summarizer{
		"summary": heavykeeper.MustNew(16, heavykeeper.WithSeed(1)),
		"minheap": heavykeeper.MustNew(16, heavykeeper.WithSeed(1), heavykeeper.WithMinHeap()),
		"mapref":  heavykeeper.MustNew(16, heavykeeper.WithSeed(1), heavykeeper.WithMapStore()),
	} {
		// Warm: with 32 flows on a k=16 store, both store hits (resident
		// flows being updated) and admission/eviction churn happen steadily.
		for i := 0; i < 20; i++ {
			tk.AddBatch(keys)
		}
		for i, key := range keys {
			if got := countKeyHashes(func() { tk.Add(key) }); got != 1 {
				t.Errorf("store=%s: Add(keys[%d]) hashed %d times, want 1", name, i, got)
			}
		}
		if got := countKeyHashes(func() { tk.AddBatch(keys) }); got != uint64(len(keys)) {
			t.Errorf("store=%s: AddBatch hashed %d times, want %d", name, got, len(keys))
		}
	}
}
