// Hot-path regression tests: the ingest path performs exactly one key-bytes
// hash per packet and zero heap allocations per operation, across every
// frontend (TopK, Concurrent, Sharded). These pin the PR 2 one-hash /
// packed-layout properties so later work cannot silently regress them.
package heavykeeper_test

import (
	"fmt"
	"testing"

	heavykeeper "repro"
	"repro/internal/hash"
)

// hotKeys returns n distinct flow IDs.
func hotKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("flow-%04d", i))
	}
	return keys
}

// countKeyHashes returns the number of hash.Sum64 invocations fn makes.
func countKeyHashes(fn func()) uint64 {
	var n uint64
	hash.CountCalls(&n)
	defer hash.CountCalls(nil)
	fn()
	return n
}

// TestOneHashPerPacket: every public ingest and query entry point hashes the
// key bytes exactly once per packet — including Sharded, whose router mixes
// the same hash for shard selection instead of hashing again.
func TestOneHashPerPacket(t *testing.T) {
	keys := hotKeys(256)
	k := keys[0]

	tk := heavykeeper.MustNew(100, heavykeeper.WithSeed(1))
	conc, _ := heavykeeper.NewConcurrent(100, heavykeeper.WithSeed(1))
	shrd := heavykeeper.MustNewSharded(100, heavykeeper.WithSeed(1), heavykeeper.WithShards(4))

	for name, tc := range map[string]struct {
		fn   func()
		want uint64
	}{
		"TopK.Add":         {func() { tk.Add(k) }, 1},
		"TopK.AddN":        {func() { tk.AddN(k, 3) }, 1},
		"TopK.Query":       {func() { tk.Query(k) }, 1},
		"TopK.AddBatch":    {func() { tk.AddBatch(keys) }, uint64(len(keys))},
		"Concurrent.Add":   {func() { conc.Add(k) }, 1},
		"Concurrent.Query": {func() { conc.Query(k) }, 1},
		"Concurrent.AddBatch": {
			func() { conc.AddBatch(keys) }, uint64(len(keys)),
		},
		"Sharded.Add":   {func() { shrd.Add(k) }, 1},
		"Sharded.AddN":  {func() { shrd.AddN(k, 3) }, 1},
		"Sharded.Query": {func() { shrd.Query(k) }, 1},
		"Sharded.AddBatch": {
			func() { shrd.AddBatch(keys) }, uint64(len(keys)),
		},
	} {
		if got := countKeyHashes(tc.fn); got != tc.want {
			t.Errorf("%s: %d key hashes, want %d", name, got, tc.want)
		}
	}
}

// TestZeroAllocIngest: steady-state Add, AddBatch and Query allocate nothing
// on TopK and Sharded. The structures are warmed with the exact key set
// first so the measurement sees increments and bucket moves, not first-time
// admissions (which legitimately materialize one string per admitted flow).
func TestZeroAllocIngest(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race (sync.Pool caches are dropped)")
	}
	keys := hotKeys(64)
	k := keys[0]

	tk := heavykeeper.MustNew(100, heavykeeper.WithSeed(1))
	shrd := heavykeeper.MustNewSharded(100, heavykeeper.WithSeed(1), heavykeeper.WithShards(4))
	warm := func() {
		for i := 0; i < 50; i++ {
			tk.AddBatch(keys)
			shrd.AddBatch(keys)
			for _, key := range keys {
				tk.Add(key)
				shrd.Add(key)
			}
		}
	}
	warm()

	for name, fn := range map[string]func(){
		"TopK.Add":         func() { tk.Add(k) },
		"TopK.AddBatch":    func() { tk.AddBatch(keys) },
		"TopK.Query":       func() { tk.Query(k) },
		"Sharded.Add":      func() { shrd.Add(k) },
		"Sharded.AddBatch": func() { shrd.AddBatch(keys) },
		"Sharded.Query":    func() { shrd.Query(k) },
	} {
		if avg := testing.AllocsPerRun(100, fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, avg)
		}
	}
}
