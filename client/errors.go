package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Sentinel error families mirroring the server's API error taxonomy.
// Every non-2xx API response decodes into an *APIError whose errors.Is
// matches exactly one of these, so callers branch on the family without
// parsing status codes or message text:
//
//	_, err := c.TopK(ctx, 0)
//	if errors.Is(err, client.ErrUnauthorized) { rotateToken() }
var (
	// ErrBadRequest: the request was malformed (bad parameter, invalid
	// reconfig body). Retrying unchanged will not help.
	ErrBadRequest = errors.New("client: bad request")
	// ErrUnauthorized: missing, unknown or revoked bearer token.
	ErrUnauthorized = errors.New("client: unauthorized")
	// ErrForbidden: the token is valid but not scoped to what was asked
	// (another tenant's data, or reconfig without the admin token).
	ErrForbidden = errors.New("client: forbidden")
	// ErrNotFound: unknown tenant or endpoint.
	ErrNotFound = errors.New("client: not found")
	// ErrUnavailable: the server is up but degraded or refusing work;
	// retry after a backoff.
	ErrUnavailable = errors.New("client: unavailable")
	// ErrServer: the server failed internally or answered outside the
	// taxonomy above.
	ErrServer = errors.New("client: server error")
)

// APIError is a non-2xx response from the daemon or aggregator API,
// carrying the machine-readable code the server attached. It unwraps
// (via errors.Is) to the matching sentinel family.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the server's stable error code ("unauthorized",
	// "not_found", ...); empty when the body was not the standard error
	// document (e.g. an older daemon).
	Code string
	// Message is the human-readable server message.
	Message string
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("client: %s (http %d)", e.Message, e.StatusCode)
	}
	return fmt.Sprintf("client: http %d", e.StatusCode)
}

// Is maps the error onto its sentinel family, preferring the server's
// code field and falling back to the HTTP status for responses from
// daemons that predate the error document.
func (e *APIError) Is(target error) bool {
	return target == e.family()
}

func (e *APIError) family() error {
	switch e.Code {
	case "bad_request":
		return ErrBadRequest
	case "unauthorized":
		return ErrUnauthorized
	case "forbidden":
		return ErrForbidden
	case "not_found":
		return ErrNotFound
	case "unavailable":
		return ErrUnavailable
	case "internal", "not_implemented":
		return ErrServer
	}
	switch e.StatusCode {
	case http.StatusBadRequest:
		return ErrBadRequest
	case http.StatusUnauthorized:
		return ErrUnauthorized
	case http.StatusForbidden:
		return ErrForbidden
	case http.StatusNotFound:
		return ErrNotFound
	case http.StatusServiceUnavailable, http.StatusTooManyRequests:
		return ErrUnavailable
	}
	return ErrServer
}

// apiErrorFrom builds the typed error for a non-2xx response, consuming
// (a bounded prefix of) the body.
func apiErrorFrom(resp *http.Response) *APIError {
	e := &APIError{StatusCode: resp.StatusCode}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var doc struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if json.Unmarshal(body, &doc) == nil && (doc.Code != "" || doc.Error != "") {
		e.Code = doc.Code
		e.Message = doc.Error
	} else if msg := strings.TrimSpace(string(body)); msg != "" {
		e.Message = msg
	}
	return e
}
