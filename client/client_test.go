package client_test

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"log/slog"
	"math/big"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	heavykeeper "repro"
	"repro/client"
	"repro/server"
	"repro/wire"
)

// newSum builds the test summarizer shape shared by servers and twins.
func newSum(k int) (heavykeeper.Summarizer, error) {
	return heavykeeper.New(k, heavykeeper.WithConcurrency(),
		heavykeeper.WithSeed(42), heavykeeper.WithMemory(32<<10))
}

// startServer boots an hkd server on ephemeral loopback ports.
func startServer(t *testing.T, mutate ...func(*server.Config)) *server.Server {
	t.Helper()
	sum, err := newSum(20)
	if err != nil {
		t.Fatalf("newSum: %v", err)
	}
	cfg := server.Config{
		Summarizer:    sum,
		NewSummarizer: newSum,
		TCPAddr:       "127.0.0.1:0",
		HTTPAddr:      "127.0.0.1:0",
		Info:          map[string]string{"algo": "heavykeeper", "seed": "42", "mem_bytes": "32768"},
	}
	for _, m := range mutate {
		m(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// keysFor builds n distinct keys under a prefix with a skewed repeat
// pattern, so top-k reports have a stable head.
func keysFor(prefix string, n int) [][]byte {
	var keys [][]byte
	for i := 0; i < n; i++ {
		// Key j appears roughly n/2^j times: heavy head, long tail.
		for j := 0; (1 << j) <= n; j++ {
			if i%(1<<j) == 0 {
				keys = append(keys, fmt.Appendf(nil, "%s-%03d", prefix, j))
			}
		}
	}
	return keys
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestSDKAgainstOpenServer is the quickstart path: ingest through the
// SDK, wait for the drain, and read every query surface back.
func TestSDKAgainstOpenServer(t *testing.T) {
	srv := startServer(t)
	ctx := ctxT(t)

	in, err := client.Dial("tcp", srv.TCPAddr().String(), client.IngestWithSeed(7))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	keys := keysFor("flow", 256)
	if err := in.SendBatch(keys); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if err := in.AddN([]byte("heavy"), 500); err != nil {
		t.Fatalf("AddN: %v", err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := in.Stats()
	want := uint64(len(keys) + 1)
	if st.Records != len(keys)+1 || st.Frames != 2 {
		t.Fatalf("ingest stats = %+v, want %d records in 2 frames", st, want)
	}

	c, err := client.New(srv.HTTPAddr().String())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.WaitForRecords(ctx, want); err != nil {
		t.Fatalf("WaitForRecords: %v", err)
	}

	// The daemon's report must match a twin fed the same arrivals.
	twin, _ := newSum(20)
	twin.AddBatch(keys)
	twin.AddN([]byte("heavy"), 500)
	flows, err := c.TopK(ctx, 0)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	wantFlows := twin.List()
	if len(flows) != len(wantFlows) {
		t.Fatalf("TopK = %d flows, twin has %d", len(flows), len(wantFlows))
	}
	for i := range flows {
		if !bytes.Equal(flows[i].ID, wantFlows[i].ID) || flows[i].Count != wantFlows[i].Count {
			t.Fatalf("TopK[%d] = %q/%d, twin %q/%d", i,
				flows[i].ID, flows[i].Count, wantFlows[i].ID, wantFlows[i].Count)
		}
	}

	if n, err := c.Query(ctx, []byte("heavy")); err != nil || n != twin.Query([]byte("heavy")) {
		t.Fatalf("Query(heavy) = %d, %v; twin %d", n, err, twin.Query([]byte("heavy")))
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.SchemaVersion != server.StatsSchemaVersion {
		t.Fatalf("Stats.SchemaVersion = %d, want %d", stats.SchemaVersion, server.StatsSchemaVersion)
	}
	if stats.Tenant != server.DefaultTenant || stats.K != 20 || stats.Server.Records != want {
		t.Fatalf("Stats = tenant %q k %d records %d", stats.Tenant, stats.K, stats.Server.Records)
	}

	info, err := c.Config(ctx)
	if err != nil || info["k"] != "20" || info["algo"] != "heavykeeper" {
		t.Fatalf("Config = %v, %v", info, err)
	}

	h, err := c.Healthz(ctx)
	if err != nil || !h.OK || h.Status != "ok" || h.SchemaVersion != server.StatsSchemaVersion {
		t.Fatalf("Healthz = %+v, %v", h, err)
	}

	snap, _, err := c.Snapshot(ctx, true)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := heavykeeper.VerifySnapshot(bytes.NewReader(snap)); err != nil {
		t.Fatalf("VerifySnapshot: %v", err)
	}
}

// TestTenantIsolation is the conformance suite for the multi-tenant
// contract: two tenants ingesting disjoint keys concurrently never
// observe each other's flows in /topk, /query, /stats or snapshots.
func TestTenantIsolation(t *testing.T) {
	srv := startServer(t)
	ctx := ctxT(t)

	send := func(tenant, prefix string) uint64 {
		in, err := client.Dial("tcp", srv.TCPAddr().String(),
			client.IngestWithTenant(tenant), client.IngestWithSeed(11))
		if err != nil {
			t.Errorf("Dial(%s): %v", tenant, err)
			return 0
		}
		keys := keysFor(prefix, 512)
		if err := in.SendBatch(keys); err != nil {
			t.Errorf("SendBatch(%s): %v", tenant, err)
		}
		if err := in.Close(); err != nil {
			t.Errorf("Close(%s): %v", tenant, err)
		}
		return uint64(len(keys))
	}
	var wg sync.WaitGroup
	var sentA, sentB uint64
	wg.Add(2)
	go func() { defer wg.Done(); sentA = send("tenant-a", "alpha") }()
	go func() { defer wg.Done(); sentB = send("tenant-b", "beta") }()
	wg.Wait()
	if sentA == 0 || sentB == 0 {
		t.Fatal("sends failed")
	}

	base := srv.HTTPAddr().String()
	ca, _ := client.New(base, client.WithTenant("tenant-a"))
	cb, _ := client.New(base, client.WithTenant("tenant-b"))
	cAll, _ := client.New(base)
	if err := cAll.WaitForRecords(ctx, sentA+sentB); err != nil {
		t.Fatalf("WaitForRecords: %v", err)
	}

	checkOnly := func(name string, c *client.Client, wantPrefix, otherPrefix string) {
		flows, err := c.TopK(ctx, 0)
		if err != nil {
			t.Fatalf("%s TopK: %v", name, err)
		}
		if len(flows) == 0 {
			t.Fatalf("%s TopK empty", name)
		}
		for _, f := range flows {
			if !bytes.HasPrefix(f.ID, []byte(wantPrefix)) {
				t.Fatalf("%s TopK leaked flow %q", name, f.ID)
			}
		}
		// Point queries across the boundary estimate zero.
		if n, err := c.Query(ctx, []byte(otherPrefix+"-000")); err != nil || n != 0 {
			t.Fatalf("%s Query(%s-000) = %d, %v; want 0", name, otherPrefix, n, err)
		}
		// Snapshots are tenant-scoped too.
		snap, _, err := c.Snapshot(ctx, true)
		if err != nil {
			t.Fatalf("%s Snapshot: %v", name, err)
		}
		sum, err := heavykeeper.ReadSnapshot(bytes.NewReader(snap))
		if err != nil {
			t.Fatalf("%s ReadSnapshot: %v", name, err)
		}
		for _, f := range sum.List() {
			if !bytes.HasPrefix(f.ID, []byte(wantPrefix)) {
				t.Fatalf("%s snapshot leaked flow %q", name, f.ID)
			}
		}
	}
	checkOnly("tenant-a", ca, "alpha", "beta")
	checkOnly("tenant-b", cb, "beta", "alpha")

	// The default tenant saw nothing.
	flows, err := cAll.TopK(ctx, 0)
	if err != nil {
		t.Fatalf("default TopK: %v", err)
	}
	if len(flows) != 0 {
		t.Fatalf("default tenant observed %d flows, want 0", len(flows))
	}

	// The audit roster accounts for both tenants' frames and records.
	stats, err := cAll.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	got := map[string]client.TenantStats{}
	for _, ts := range stats.Tenants {
		got[ts.Name] = ts
	}
	if got["tenant-a"].Records != sentA || got["tenant-b"].Records != sentB {
		t.Fatalf("tenant audit = %+v, want %d/%d records", stats.Tenants, sentA, sentB)
	}
	if got["tenant-a"].Frames == 0 || got["tenant-b"].Frames == 0 {
		t.Fatalf("tenant audit missing frames: %+v", stats.Tenants)
	}
}

// writeTestCert generates a self-signed localhost certificate, the
// deployment shape cmd/hkcert produces.
func writeTestCert(t *testing.T) (certFile, keyFile string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatalf("generate key: %v", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "hkd-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1)},
		DNSNames:              []string{"localhost"},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatalf("create cert: %v", err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatalf("marshal key: %v", err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

// TestTLSAuthEndToEnd is the secure serving path: TLS on both
// listeners, tenant tokens on ingest and query, wrong tokens rejected
// with typed errors, audit counters accounting every frame.
func TestTLSAuthEndToEnd(t *testing.T) {
	certFile, keyFile := writeTestCert(t)
	srv := startServer(t, func(cfg *server.Config) {
		cfg.TLSCertFile = certFile
		cfg.TLSKeyFile = keyFile
		cfg.Tokens = map[string]string{
			"token-a": "tenant-a",
			"token-b": "tenant-b",
		}
		cfg.AdminToken = "admin-token"
	})
	if !srv.AuthRequired() {
		t.Fatal("server should require auth")
	}
	ctx := ctxT(t)

	ingest := func(token, prefix string) uint64 {
		in, err := client.Dial("tcp", srv.TCPAddr().String(),
			client.IngestWithToken(token),
			client.IngestWithCACertFile(certFile),
			client.IngestWithSeed(3),
			client.IngestWithMaxRetries(1))
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		keys := keysFor(prefix, 128)
		if err := in.SendBatch(keys); err != nil {
			t.Fatalf("SendBatch(%s): %v", token, err)
		}
		if err := in.Close(); err != nil {
			t.Fatalf("Close(%s): %v", token, err)
		}
		return uint64(len(keys))
	}
	sentA := ingest("token-a", "alpha")
	sentB := ingest("token-b", "beta")

	base := srv.HTTPAddr().String()
	ca, err := client.New(base, client.WithToken("token-a"), client.WithCACertFile(certFile))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	admin, _ := client.New(base, client.WithToken("admin-token"), client.WithCACertFile(certFile))
	if err := admin.WaitForRecords(ctx, sentA+sentB); err != nil {
		t.Fatalf("WaitForRecords: %v", err)
	}

	// Token A sees only tenant A's flows, without naming the tenant.
	flows, err := ca.TopK(ctx, 0)
	if err != nil {
		t.Fatalf("TopK(a): %v", err)
	}
	for _, f := range flows {
		if !bytes.HasPrefix(f.ID, []byte("alpha")) {
			t.Fatalf("token-a observed flow %q", f.ID)
		}
	}

	// Typed rejections: no token, unknown token, cross-tenant scope.
	noAuth, _ := client.New(base, client.WithCACertFile(certFile))
	if _, err := noAuth.TopK(ctx, 0); !errors.Is(err, client.ErrUnauthorized) {
		t.Fatalf("no-token TopK err = %v, want ErrUnauthorized", err)
	}
	bad, _ := client.New(base, client.WithToken("revoked"), client.WithCACertFile(certFile))
	if _, err := bad.TopK(ctx, 0); !errors.Is(err, client.ErrUnauthorized) {
		t.Fatalf("bad-token TopK err = %v, want ErrUnauthorized", err)
	}
	cross, _ := client.New(base, client.WithToken("token-a"),
		client.WithTenant("tenant-b"), client.WithCACertFile(certFile))
	if _, err := cross.TopK(ctx, 0); !errors.Is(err, client.ErrForbidden) {
		t.Fatalf("cross-tenant TopK err = %v, want ErrForbidden", err)
	}
	if _, err := ca.Reconfigure(ctx, client.Reconfig{GrowK: 40}); !errors.Is(err, client.ErrForbidden) {
		t.Fatalf("tenant-token Reconfigure err = %v, want ErrForbidden", err)
	}

	// A wire connection without a hello (or with a bad token) is closed
	// before any frame ingests.
	badIn, err := client.Dial("tcp", srv.TCPAddr().String(),
		client.IngestWithToken("revoked"),
		client.IngestWithCACertFile(certFile),
		client.IngestWithSeed(5),
		client.IngestWithMaxRetries(1))
	if err != nil {
		t.Fatalf("Dial(bad): %v", err)
	}
	badIn.SendBatch(keysFor("gamma", 64)) // may not error: writes race the server-side close
	badIn.Close()

	// The audit counters account for every authenticated frame and only
	// those; the rejected connection contributed auth failures instead.
	stats, err := admin.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	got := map[string]client.TenantStats{}
	for _, ts := range stats.Tenants {
		got[ts.Name] = ts
	}
	if got["tenant-a"].Records != sentA || got["tenant-b"].Records != sentB {
		t.Fatalf("tenant audit = %+v, want %d/%d", stats.Tenants, sentA, sentB)
	}
	if stats.Server.Records != sentA+sentB {
		t.Fatalf("server records = %d, want %d (gamma frames must not ingest)",
			stats.Server.Records, sentA+sentB)
	}
	if stats.Server.AuthFailures == 0 {
		t.Fatal("expected auth failures from the rejected connection and bad tokens")
	}

	// Hot rotation: revoke token-a, grant token-c, through the SDK.
	res, err := admin.Reconfigure(ctx, client.Reconfig{
		AddTokens:    map[string]string{"token-c": "tenant-a"},
		RevokeTokens: []string{"token-a"},
	})
	if err != nil || res.TokensAdded != 1 || res.TokensRevoked != 1 {
		t.Fatalf("Reconfigure = %+v, %v", res, err)
	}
	if _, err := ca.TopK(ctx, 0); !errors.Is(err, client.ErrUnauthorized) {
		t.Fatalf("revoked token err = %v, want ErrUnauthorized", err)
	}
	cc, _ := client.New(base, client.WithToken("token-c"), client.WithCACertFile(certFile))
	if _, err := cc.TopK(ctx, 0); err != nil {
		t.Fatalf("rotated token TopK: %v", err)
	}
}

// TestReconfigureGrowK grows the default tenant's report size through
// the SDK and checks the carried-over estimates.
func TestReconfigureGrowK(t *testing.T) {
	srv := startServer(t)
	ctx := ctxT(t)
	c, _ := client.New(srv.HTTPAddr().String())

	in, err := client.Dial("tcp", srv.TCPAddr().String(), client.IngestWithSeed(13))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := in.AddN([]byte("heavy"), 1000); err != nil {
		t.Fatalf("AddN: %v", err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.WaitForRecords(ctx, 1); err != nil {
		t.Fatalf("WaitForRecords: %v", err)
	}

	res, err := c.Reconfigure(ctx, client.Reconfig{GrowK: 64})
	if err != nil || res.K != 64 {
		t.Fatalf("Reconfigure = %+v, %v", res, err)
	}
	info, err := c.Config(ctx)
	if err != nil || info["k"] != "64" {
		t.Fatalf("Config after grow = %v, %v", info, err)
	}
	if n, err := c.Query(ctx, []byte("heavy")); err != nil || n != 1000 {
		t.Fatalf("Query after grow = %d, %v; want 1000", n, err)
	}
	// Shrinking or matching k is rejected as a bad request.
	if _, err := c.Reconfigure(ctx, client.Reconfig{GrowK: 10}); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("shrink err = %v, want ErrBadRequest", err)
	}
	// Unknown tenants are not admitted by queries.
	ghost, _ := client.New(srv.HTTPAddr().String(), client.WithTenant("never-ingested"))
	if _, err := ghost.TopK(ctx, 0); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown tenant err = %v, want ErrNotFound", err)
	}
}

// TestIngestReconnect proves the resilient sender survives a severed
// connection: the frame that failed is replayed on a fresh connection
// and the resend is accounted.
func TestIngestReconnect(t *testing.T) {
	srv := startServer(t)
	ctx := ctxT(t)

	// A local proxy between SDK and daemon whose first connection is
	// severed after one frame, forcing the sender through its
	// reconnect+replay path against a live backend.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			back, err := net.Dial("tcp", srv.TCPAddr().String())
			if err != nil {
				conn.Close()
				return
			}
			go func(i int, conn, back net.Conn) {
				defer conn.Close()
				defer back.Close()
				if i == 0 {
					// First connection: pass one read through, then sever.
					buf := make([]byte, 4<<10)
					n, _ := conn.Read(buf)
					back.Write(buf[:n])
					time.Sleep(10 * time.Millisecond)
					return
				}
				buf := make([]byte, 32<<10)
				for {
					n, err := conn.Read(buf)
					if n > 0 {
						back.Write(buf[:n])
					}
					if err != nil {
						return
					}
				}
			}(i, conn, back)
		}
	}()

	in, err := client.Dial("tcp", ln.Addr().String(),
		client.IngestWithSeed(17),
		client.IngestWithIOTimeout(time.Second),
		client.IngestWithMaxRetries(5))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	keys := [][]byte{[]byte("r-1"), []byte("r-2")}
	deadline := time.Now().Add(20 * time.Second)
	for in.Stats().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sender never reconnected; stats %+v", in.Stats())
		}
		if err := in.SendBatch(keys); err != nil {
			t.Fatalf("SendBatch: %v", err)
		}
	}
	st := in.Stats()
	if st.ResentFrames == 0 || st.ResentRecords == 0 {
		t.Fatalf("reconnect without resend accounting: %+v", st)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Every frame the sender counted as delivered must eventually land
	// (resends may double-count, so daemon records >= sender records is
	// the only honest bound).
	c, _ := client.New(srv.HTTPAddr().String())
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Server.Records == 0 {
		t.Fatal("no records ingested despite successful sends")
	}
}

// TestIngestBuffering covers the Add/AddN buffered path: frames flush
// at the batch size and on Close, and weights backfill correctly.
func TestIngestBuffering(t *testing.T) {
	srv := startServer(t)
	ctx := ctxT(t)
	in, err := client.Dial("tcp", srv.TCPAddr().String(),
		client.IngestWithBatchSize(4), client.IngestWithSeed(19))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := in.AddString("buf"); err != nil {
			t.Fatalf("AddString: %v", err)
		}
	}
	if err := in.AddN([]byte("buf"), 10); err != nil { // forces the weighted path
		t.Fatalf("AddN: %v", err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c, _ := client.New(srv.HTTPAddr().String())
	if err := c.WaitForRecords(ctx, 6); err != nil {
		t.Fatalf("WaitForRecords: %v", err)
	}
	if n, err := c.QueryString(ctx, "buf"); err != nil || n != 15 {
		t.Fatalf("Query(buf) = %d, %v; want 15", n, err)
	}
}

// TestWireV1Compat pins backward compatibility: a hand-rolled v1 frame
// (no SDK, no tenant) still ingests into the default tenant.
func TestWireV1Compat(t *testing.T) {
	srv := startServer(t)
	ctx := ctxT(t)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.AppendFrame(nil, [][]byte{[]byte("v1-flow")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	c, _ := client.New(srv.HTTPAddr().String())
	if err := c.WaitForRecords(ctx, 1); err != nil {
		t.Fatalf("WaitForRecords: %v", err)
	}
	if n, err := c.QueryString(ctx, "v1-flow"); err != nil || n != 1 {
		t.Fatalf("Query(v1-flow) = %d, %v; want 1", n, err)
	}
}

// TestRequestIDPropagation pins the tracing contract: the SDK stamps an
// X-Request-Id on every request (honoring one pinned via WithRequestID),
// and the server echoes it back on the response.
func TestRequestIDPropagation(t *testing.T) {
	srv := startServer(t)
	ctx := ctxT(t)
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	c, err := client.New(srv.HTTPAddr().String(), client.WithLogger(logger))
	if err != nil {
		t.Fatal(err)
	}

	// Auto-generated ID: the server must echo a non-empty header.
	resp, err := c.Healthz(ctx)
	if err != nil || resp.Status != "ok" {
		t.Fatalf("Healthz = %+v, %v", resp, err)
	}
	logged := buf.String()
	if !strings.Contains(logged, "request_id=") || !strings.Contains(logged, "component=client") {
		t.Fatalf("client debug log missing request_id/component: %q", logged)
	}

	// Pinned ID: WithRequestID carries through to the wire and the echo.
	const pinned = "cafebabe00000001"
	hc := srv.HTTPAddr().String()
	req, err := http.NewRequestWithContext(client.WithRequestID(ctx, pinned),
		http.MethodGet, "http://"+hc+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(client.RequestIDHeader, pinned)
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if got := raw.Header.Get(client.RequestIDHeader); got != pinned {
		t.Fatalf("server echoed request id %q, want %q", got, pinned)
	}

	// And through the SDK path: the pinned ID shows up in the client log.
	buf.Reset()
	if _, err := c.Stats(client.WithRequestID(ctx, pinned)); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if !strings.Contains(buf.String(), "request_id="+pinned) {
		t.Fatalf("client log missing pinned request id: %q", buf.String())
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for concurrent log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}
