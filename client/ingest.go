package client

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/xrand"
	"repro/wire"
)

// Ingest streams arrival batches to an hkd daemon over the binary wire
// protocol, surviving connection death: a failed send closes the
// connection, re-dials with exponential backoff plus jitter (so a fleet
// of restarted collectors doesn't stampede the daemon), replays the
// frame that failed, and accounts for the replay — resends are
// frame-granular and the daemon ingests frames whole, so a replayed
// unacknowledged frame at worst double-counts; the IngestStats counters
// are what let a reader bound that skew.
//
// With a token configured, every (re)established connection opens with
// a wire hello handshake binding it to the token's tenant before any
// batch is sent. With a tenant configured, batch frames carry the v2
// tenant id.
//
// Add/AddN buffer into an internal batch flushed at BatchSize;
// SendBatch/SendWeighted frame and send immediately. An Ingest is safe
// for concurrent use.
type Ingest struct {
	network string
	addr    string
	token   string
	tenant  []byte

	dialTimeout time.Duration
	ioTimeout   time.Duration
	maxRetries  int
	batchSize   int
	tlsConf     *tls.Config

	mu       sync.Mutex
	conn     net.Conn
	jitter   *xrand.SplitMix64
	frame    []byte   // reusable frame encode buffer
	pending  [][]byte // buffered keys (copied) awaiting Flush
	pendingW []uint64 // parallel weights; nil while all pending are unit
	stats    IngestStats
	closed   bool
}

// IngestStats is the sender-side accounting of one Ingest.
type IngestStats struct {
	// Frames/Records/Bytes count successful sends.
	Frames  int
	Records int
	Bytes   int64
	// Reconnects counts successful re-dials after a send failure;
	// ResentFrames/ResentRecords count the frames replayed through them.
	Reconnects    int
	ResentFrames  int
	ResentRecords int
}

// IngestOption configures Dial.
type IngestOption func(*ingestOptions) error

type ingestOptions struct {
	token       string
	tenant      string
	dialTimeout time.Duration
	ioTimeout   time.Duration
	maxRetries  int
	batchSize   int
	seed        uint64
	seedSet     bool
	tlsConf     *tls.Config
	caFile      string
}

// IngestWithToken authenticates the stream: every (re)connect opens
// with a hello frame carrying the token.
func IngestWithToken(token string) IngestOption {
	return func(o *ingestOptions) error {
		if token == "" || len(token) > wire.MaxTokenLen {
			return fmt.Errorf("client: ingest token must be 1..%d bytes", wire.MaxTokenLen)
		}
		o.token = token
		return nil
	}
}

// IngestWithTenant stamps every batch frame with the tenant id (wire
// v2). With a token, the id must match the token's scope — the daemon
// closes the connection otherwise.
func IngestWithTenant(name string) IngestOption {
	return func(o *ingestOptions) error {
		if len(name) > wire.MaxTenantLen {
			return fmt.Errorf("client: tenant id exceeds %d bytes", wire.MaxTenantLen)
		}
		o.tenant = name
		return nil
	}
}

// IngestWithDialTimeout bounds each dial (default 5s).
func IngestWithDialTimeout(d time.Duration) IngestOption {
	return func(o *ingestOptions) error { o.dialTimeout = d; return nil }
}

// IngestWithIOTimeout bounds each frame write (default 5s; negative
// disables).
func IngestWithIOTimeout(d time.Duration) IngestOption {
	return func(o *ingestOptions) error { o.ioTimeout = d; return nil }
}

// IngestWithMaxRetries caps reconnect attempts per failed send (default
// 5; 0 disables reconnection).
func IngestWithMaxRetries(n int) IngestOption {
	return func(o *ingestOptions) error {
		if n < 0 {
			return errors.New("client: max retries must not be negative")
		}
		o.maxRetries = n
		return nil
	}
}

// IngestWithBatchSize sets how many buffered arrivals Add collects
// before flushing a frame (default 256).
func IngestWithBatchSize(n int) IngestOption {
	return func(o *ingestOptions) error {
		if n < 1 {
			return errors.New("client: batch size must be >= 1")
		}
		o.batchSize = n
		return nil
	}
}

// IngestWithSeed fixes the backoff-jitter seed (deterministic tests and
// benchmarks).
func IngestWithSeed(seed uint64) IngestOption {
	return func(o *ingestOptions) error { o.seed = seed; o.seedSet = true; return nil }
}

// IngestWithTLSConfig dials the ingest listener over TLS.
func IngestWithTLSConfig(cfg *tls.Config) IngestOption {
	return func(o *ingestOptions) error { o.tlsConf = cfg; return nil }
}

// IngestWithCACertFile trusts the PEM certificate(s) in path for the
// ingest listener's TLS handshake.
func IngestWithCACertFile(path string) IngestOption {
	return func(o *ingestOptions) error { o.caFile = path; return nil }
}

// Dial returns an Ingest for the daemon's ingest listener. network is
// "tcp" (framed stream, reconnect + hello auth) or "udp" (one frame per
// datagram, fire-and-forget; no TLS, no hello, so it cannot speak to an
// authenticated daemon). The first connection is established lazily on
// the first send, so Dial itself does not block on the network.
func Dial(network, addr string, opts ...IngestOption) (*Ingest, error) {
	o := ingestOptions{
		dialTimeout: 5 * time.Second,
		ioTimeout:   5 * time.Second,
		maxRetries:  5,
		batchSize:   256,
	}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	switch network {
	case "tcp":
	case "udp":
		if o.token != "" {
			return nil, errors.New("client: UDP ingest cannot authenticate (no handshake); use tcp")
		}
		if o.tlsConf != nil || o.caFile != "" {
			return nil, errors.New("client: UDP ingest cannot use TLS; use tcp")
		}
	default:
		return nil, fmt.Errorf("client: unsupported ingest network %q", network)
	}
	tlsConf := o.tlsConf
	if o.caFile != "" {
		var err error
		if tlsConf, err = loadCACert(o.caFile, o.tlsConf); err != nil {
			return nil, err
		}
	}
	if !o.seedSet {
		o.seed = uint64(time.Now().UnixNano())
	}
	return &Ingest{
		network:     network,
		addr:        addr,
		token:       o.token,
		tenant:      []byte(o.tenant),
		dialTimeout: o.dialTimeout,
		ioTimeout:   o.ioTimeout,
		maxRetries:  o.maxRetries,
		batchSize:   o.batchSize,
		tlsConf:     tlsConf,
		jitter:      xrand.NewSplitMix64(o.seed ^ 0x696e67657374), // decorrelate from caller seeds
	}, nil
}

// Add buffers one unit arrival, flushing a frame when the batch fills.
// The key is copied, so the caller may reuse its buffer.
func (in *Ingest) Add(key []byte) error { return in.AddN(key, 1) }

// AddString is Add for string identifiers.
func (in *Ingest) AddString(key string) error { return in.AddN([]byte(key), 1) }

// AddN buffers one weight-n arrival, flushing a frame when the batch
// fills. n = 0 is dropped (a weightless arrival means nothing).
func (in *Ingest) AddN(key []byte, n uint64) error {
	if n == 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return errors.New("client: ingest is closed")
	}
	in.pending = append(in.pending, append([]byte(nil), key...))
	if in.pendingW != nil {
		in.pendingW = append(in.pendingW, n)
	} else if n != 1 {
		// First non-unit weight: backfill units for what's buffered.
		in.pendingW = make([]uint64, len(in.pending))
		for i := range in.pendingW {
			in.pendingW[i] = 1
		}
		in.pendingW[len(in.pendingW)-1] = n
	}
	if len(in.pending) >= in.batchSize {
		return in.flushLocked()
	}
	return nil
}

// Flush frames and sends whatever Add has buffered.
func (in *Ingest) Flush() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return errors.New("client: ingest is closed")
	}
	return in.flushLocked()
}

func (in *Ingest) flushLocked() error {
	if len(in.pending) == 0 {
		return nil
	}
	err := in.sendLocked(in.pending, in.pendingW)
	in.pending = in.pending[:0]
	in.pendingW = nil
	return err
}

// SendBatch frames keys (unit weights) and sends immediately, bypassing
// the Add buffer. The keys are not retained past the call.
func (in *Ingest) SendBatch(keys [][]byte) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return errors.New("client: ingest is closed")
	}
	if err := in.flushLocked(); err != nil {
		return err
	}
	return in.sendLocked(keys, nil)
}

// SendWeighted frames keys with parallel weights and sends immediately.
func (in *Ingest) SendWeighted(keys [][]byte, weights []uint64) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return errors.New("client: ingest is closed")
	}
	if err := in.flushLocked(); err != nil {
		return err
	}
	return in.sendLocked(keys, weights)
}

// sendLocked encodes one frame into the reusable buffer and writes it
// through the resilient path.
func (in *Ingest) sendLocked(keys [][]byte, weights []uint64) error {
	var err error
	if len(in.tenant) > 0 {
		in.frame, err = wire.AppendFrameTenant(in.frame[:0], in.tenant, keys, weights)
	} else {
		in.frame, err = wire.AppendFrame(in.frame[:0], keys, weights)
	}
	if err != nil {
		return err
	}
	if err := in.writeFrameLocked(in.frame, len(keys)); err != nil {
		return err
	}
	in.stats.Frames++
	in.stats.Records += len(keys)
	in.stats.Bytes += int64(len(in.frame))
	return nil
}

// writeFrameLocked writes one frame, reconnecting and replaying it on
// failure. records is the frame's record count, for resend accounting.
func (in *Ingest) writeFrameLocked(frame []byte, records int) error {
	if in.conn == nil {
		if err := in.connectLocked(); err != nil {
			return fmt.Errorf("client: dial %s %s: %w", in.network, in.addr, err)
		}
	}
	if in.writeOnceLocked(frame) == nil {
		return nil
	}
	for attempt := 0; attempt < in.maxRetries; attempt++ {
		time.Sleep(in.backoff(attempt))
		if err := in.connectLocked(); err != nil {
			continue
		}
		in.stats.Reconnects++
		if err := in.writeOnceLocked(frame); err == nil {
			in.stats.ResentFrames++
			in.stats.ResentRecords += records
			return nil
		}
	}
	return fmt.Errorf("client: send to %s failed after %d reconnect attempts", in.addr, in.maxRetries)
}

// connectLocked dials (TLS when configured) and performs the hello
// handshake when a token is set.
func (in *Ingest) connectLocked() error {
	d := net.Dialer{Timeout: in.dialTimeout}
	var conn net.Conn
	var err error
	if in.tlsConf != nil {
		conn, err = tls.DialWithDialer(&d, in.network, in.addr, in.tlsConf)
	} else {
		conn, err = d.Dial(in.network, in.addr)
	}
	if err != nil {
		return err
	}
	in.conn = conn
	if in.token != "" {
		hello, err := wire.AppendHello(nil, []byte(in.token))
		if err != nil {
			conn.Close()
			in.conn = nil
			return err
		}
		if err := in.writeOnceLocked(hello); err != nil {
			return fmt.Errorf("client: hello handshake: %w", err)
		}
	}
	return nil
}

// writeOnceLocked writes frame on the current connection under the IO
// deadline, closing the connection on failure.
func (in *Ingest) writeOnceLocked(frame []byte) error {
	if in.ioTimeout > 0 {
		in.conn.SetWriteDeadline(time.Now().Add(in.ioTimeout))
	}
	if _, err := in.conn.Write(frame); err != nil {
		in.conn.Close()
		in.conn = nil
		return err
	}
	return nil
}

// backoff returns the sleep before reconnect attempt n (0-based):
// 50ms·2ⁿ capped at 2s, jittered ±50%.
func (in *Ingest) backoff(attempt int) time.Duration {
	d := 50 * time.Millisecond << attempt
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	half := uint64(d / 2)
	return time.Duration(half + in.jitter.Next()%(2*half))
}

// Stats returns a copy of the sender-side counters.
func (in *Ingest) Stats() IngestStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Close flushes buffered arrivals and closes the connection. The flush
// error, if any, is returned — arrivals buffered but never delivered
// would otherwise vanish silently.
func (in *Ingest) Close() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return nil
	}
	err := in.flushLocked()
	in.closed = true
	if in.conn != nil {
		in.conn.Close()
		in.conn = nil
	}
	return err
}
