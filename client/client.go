// Package client is the Go SDK for the hkd top-k telemetry daemon and
// the hkagg cluster aggregator: a typed HTTP query client (this file)
// and a resilient wire-protocol ingest client (Ingest) that batches
// arrivals into framed writes with reconnect, exponential backoff and
// resend accounting.
//
// # Quickstart
//
//	c, _ := client.New("127.0.0.1:8080")
//	flows, err := c.TopK(ctx, 10)
//
//	in, _ := client.Dial("tcp", "127.0.0.1:4774")
//	defer in.Close()
//	in.Add([]byte("flow-a"))
//	in.Flush()
//
// # Auth and tenancy
//
// Against an authenticated daemon, construct with WithToken — the HTTP
// client sends it as a bearer token and the ingest client opens every
// connection with a wire hello handshake. Tokens are scoped to one
// tenant; the server routes and isolates accordingly. WithTenant stamps
// ingest frames (and query requests) with an explicit tenant id, which
// must match the token's scope when both are set.
//
// # Errors
//
// API failures are *APIError values that errors.Is-match the sentinel
// families (ErrUnauthorized, ErrNotFound, ...); see errors.go.
package client

import (
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	heavykeeper "repro"
	"repro/internal/obs"
)

// RequestIDHeader is the correlation header the SDK stamps on every
// request (X-Request-Id). The daemon echoes it on the response and
// access-logs it, so one logical operation is greppable across client
// and server logs. Use WithRequestID to pin an explicit ID; otherwise
// each request gets a fresh one.
const RequestIDHeader = obs.RequestIDHeader

// WithRequestID returns a context that makes the SDK stamp the given
// correlation ID instead of generating one — the hkagg collector uses
// it to carry one ID across its whole fan-out.
func WithRequestID(ctx context.Context, id string) context.Context {
	return obs.WithRequestID(ctx, id)
}

// Client queries the HTTP API of one hkd daemon or hkagg aggregator.
// It is safe for concurrent use.
type Client struct {
	base   string
	hc     *http.Client
	token  string
	tenant string
	log    *slog.Logger // component=client
}

// Option configures a Client.
type Option func(*options) error

type options struct {
	hc      *http.Client
	tlsConf *tls.Config
	caFile  string
	timeout time.Duration
	token   string
	tenant  string
	logger  *slog.Logger
}

// WithLogger attaches a structured logger; the client debug-logs every
// request with its request ID, status and duration (component=client).
func WithLogger(l *slog.Logger) Option {
	return func(o *options) error { o.logger = l; return nil }
}

// WithToken authenticates every request with the bearer token.
func WithToken(token string) Option {
	return func(o *options) error { o.token = token; return nil }
}

// WithTenant scopes queries to the named tenant (?tenant=...). Usually
// unnecessary with WithToken — the token already selects the tenant —
// but required to address a non-default tenant on an open server, or a
// specific tenant with the admin token.
func WithTenant(name string) Option {
	return func(o *options) error { o.tenant = name; return nil }
}

// WithHTTPClient substitutes the transport wholesale (custom timeouts,
// fault-injection round-trippers in tests, connection pools). It
// overrides WithTimeout and composes with WithTLSConfig/WithCACertFile
// only if the provided client's transport is left nil.
func WithHTTPClient(hc *http.Client) Option {
	return func(o *options) error { o.hc = hc; return nil }
}

// WithTLSConfig dials the API over TLS with the given configuration and
// switches a scheme-less base address to https.
func WithTLSConfig(cfg *tls.Config) Option {
	return func(o *options) error { o.tlsConf = cfg; return nil }
}

// WithCACertFile trusts the PEM certificate(s) in path for the API's
// TLS handshake — the self-signed deployment shape (hkcert) — and
// switches a scheme-less base address to https.
func WithCACertFile(path string) Option {
	return func(o *options) error { o.caFile = path; return nil }
}

// WithTimeout bounds each request end to end (default 10s; 0 keeps the
// default, negative disables the bound).
func WithTimeout(d time.Duration) Option {
	return func(o *options) error { o.timeout = d; return nil }
}

// loadCACert builds a TLS config trusting the PEM roots in path.
func loadCACert(path string, base *tls.Config) (*tls.Config, error) {
	pem, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("client: read CA cert: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("client: no certificates found in %s", path)
	}
	cfg := &tls.Config{}
	if base != nil {
		cfg = base.Clone()
	}
	cfg.RootCAs = pool
	return cfg, nil
}

// New returns a Client for the API at base: a full URL
// ("https://host:port") or a bare "host:port", which gets http:// (or
// https:// when TLS options are present) prepended.
func New(base string, opts ...Option) (*Client, error) {
	o := options{timeout: 10 * time.Second}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	tlsConf := o.tlsConf
	if o.caFile != "" {
		var err error
		if tlsConf, err = loadCACert(o.caFile, o.tlsConf); err != nil {
			return nil, err
		}
	}
	if !strings.Contains(base, "://") {
		if tlsConf != nil {
			base = "https://" + base
		} else {
			base = "http://" + base
		}
	}
	u, err := url.Parse(base)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base address %q", base)
	}
	hc := o.hc
	if hc == nil {
		hc = &http.Client{}
		if o.timeout > 0 {
			hc.Timeout = o.timeout
		}
	}
	if tlsConf != nil && hc.Transport == nil {
		hc.Transport = &http.Transport{TLSClientConfig: tlsConf}
	}
	return &Client{
		base:   strings.TrimRight(u.String(), "/"),
		hc:     hc,
		token:  o.token,
		tenant: o.tenant,
		log:    obs.Component(o.logger, "client"),
	}, nil
}

// Base returns the resolved base URL the client targets.
func (c *Client) Base() string { return c.base }

// get performs one API GET; 2xx decodes into v (when non-nil), anything
// else becomes a typed *APIError.
func (c *Client) get(ctx context.Context, path string, query url.Values, v any) error {
	resp, err := c.do(ctx, http.MethodGet, path, query, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if v == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// do issues one request with auth and tenant scoping applied, returning
// the response on 2xx and a typed error otherwise.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body io.Reader) (*http.Response, error) {
	if c.tenant != "" {
		if query == nil {
			query = url.Values{}
		}
		query.Set("tenant", c.tenant)
	}
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	id := obs.RequestIDFrom(ctx)
	if id == "" {
		id = obs.NewRequestID()
	}
	req.Header.Set(obs.RequestIDHeader, id)
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.log.Debug("request failed",
			"request_id", id, "method", method, "path", path, "err", err,
			"duration_us", time.Since(start).Microseconds())
		return nil, err
	}
	c.log.Debug("request",
		"request_id", id, "method", method, "path", path, "status", resp.StatusCode,
		"duration_us", time.Since(start).Microseconds())
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		defer resp.Body.Close()
		return nil, apiErrorFrom(resp)
	}
	return resp, nil
}

// TopK returns the daemon's top-n flows in descending estimated count
// (n <= 0 asks for the full configured report).
func (c *Client) TopK(ctx context.Context, n int) ([]heavykeeper.Flow, error) {
	q := url.Values{}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	var doc struct {
		Flows []flowDoc `json:"flows"`
	}
	if err := c.get(ctx, "/topk", q, &doc); err != nil {
		return nil, err
	}
	return decodeFlows(doc.Flows)
}

// flowDoc is the wire shape of one flow: id hex-encoded.
type flowDoc struct {
	ID    string `json:"id"`
	Count uint64 `json:"count"`
}

func decodeFlows(docs []flowDoc) ([]heavykeeper.Flow, error) {
	flows := make([]heavykeeper.Flow, len(docs))
	for i, d := range docs {
		id, err := hex.DecodeString(d.ID)
		if err != nil {
			return nil, fmt.Errorf("client: flow id %q is not hex: %w", d.ID, err)
		}
		flows[i] = heavykeeper.Flow{ID: id, Count: d.Count}
	}
	return flows, nil
}

// GlobalTopK is the aggregator's /topk document: the folded global
// report plus the coverage annotation that distinguishes a complete
// answer from one leaning on stale data.
type GlobalTopK struct {
	Coverage float64            `json:"coverage"`
	Nodes    []json.RawMessage  `json:"nodes"`
	Flows    []heavykeeper.Flow `json:"-"`
}

// GlobalTopK queries an hkagg aggregator for the global top-n (n <= 0
// for the full report) along with its coverage fraction.
func (c *Client) GlobalTopK(ctx context.Context, n int) (*GlobalTopK, error) {
	q := url.Values{}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	var doc struct {
		Coverage float64           `json:"coverage"`
		Nodes    []json.RawMessage `json:"nodes"`
		Flows    []flowDoc         `json:"flows"`
	}
	if err := c.get(ctx, "/topk", q, &doc); err != nil {
		return nil, err
	}
	flows, err := decodeFlows(doc.Flows)
	if err != nil {
		return nil, err
	}
	return &GlobalTopK{Coverage: doc.Coverage, Nodes: doc.Nodes, Flows: flows}, nil
}

// Query returns the point estimate for one flow identifier.
func (c *Client) Query(ctx context.Context, key []byte) (uint64, error) {
	q := url.Values{"id": []string{hex.EncodeToString(key)}}
	var doc flowDoc
	if err := c.get(ctx, "/query", q, &doc); err != nil {
		return 0, err
	}
	return doc.Count, nil
}

// QueryString is Query for string identifiers.
func (c *Client) QueryString(ctx context.Context, key string) (uint64, error) {
	return c.Query(ctx, []byte(key))
}

// ServerCounters mirrors the daemon's /stats server block.
type ServerCounters struct {
	TCPFrames       uint64 `json:"tcp_frames"`
	UDPFrames       uint64 `json:"udp_frames"`
	Records         uint64 `json:"records"`
	TCPBytes        uint64 `json:"tcp_bytes"`
	UDPBytes        uint64 `json:"udp_bytes"`
	DecodeErrors    uint64 `json:"decode_errors"`
	TransportErrors uint64 `json:"transport_errors"`
	ConnsTotal      uint64 `json:"conns_total"`
	ConnsActive     int64  `json:"conns_active"`
	Degraded        bool   `json:"degraded"`
	ShedBatches     uint64 `json:"shed_batches"`
	ShedRecords     uint64 `json:"shed_records"`
	AuthFailures    uint64 `json:"auth_failures"`
	TenantsActive   int    `json:"tenants_active"`
	TenantEvictions uint64 `json:"tenant_evictions"`
	Snapshots       uint64 `json:"snapshots"`
}

// TenantStats is one tenant's audit line in /stats (admin or open
// servers only).
type TenantStats struct {
	Name        string `json:"name"`
	K           int    `json:"k"`
	MemoryBytes int    `json:"memory_bytes"`
	Frames      uint64 `json:"frames"`
	Records     uint64 `json:"records"`
}

// Stats is the daemon's /stats document. SchemaVersion lets the SDK
// evolve decoding against older and newer daemons; fields this struct
// does not model are preserved in Raw.
type Stats struct {
	SchemaVersion int               `json:"schema_version"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Tenant        string            `json:"tenant"`
	K             int               `json:"k"`
	MemoryBytes   int               `json:"memory_bytes"`
	Engine        heavykeeper.Stats `json:"engine"`
	Server        ServerCounters    `json:"server"`
	Tenants       []TenantStats     `json:"tenants,omitempty"`
	Raw           json.RawMessage   `json:"-"`
}

// Stats fetches and decodes /stats.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	resp, err := c.do(ctx, http.MethodGet, "/stats", nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	st := &Stats{Raw: raw}
	if err := json.Unmarshal(raw, st); err != nil {
		return nil, fmt.Errorf("client: decoding /stats: %w", err)
	}
	return st, nil
}

// Config fetches the daemon's construction-parameter echo — enough to
// rebuild a twin summarizer (the hkbench verifier does).
func (c *Client) Config(ctx context.Context) (map[string]string, error) {
	info := map[string]string{}
	if err := c.get(ctx, "/config", nil, &info); err != nil {
		return nil, err
	}
	return info, nil
}

// Health is the /healthz document.
type Health struct {
	SchemaVersion int    `json:"schema_version"`
	Status        string `json:"status"`
	// OK is true when the endpoint answered 200.
	OK bool `json:"-"`
}

// Healthz probes liveness. A degraded daemon (503) is not an error —
// it is alive and answering — so the Health document distinguishes the
// states and err is reserved for transport failures and non-health
// statuses.
func (c *Client) Healthz(ctx context.Context) (*Health, error) {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil, nil)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable {
		h := &Health{Status: "degraded"}
		json.Unmarshal([]byte(apiErr.Message), h)
		return h, nil
	}
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	h := &Health{OK: true, Status: "ok"}
	if err := json.NewDecoder(resp.Body).Decode(h); err != nil && err != io.EOF {
		return nil, fmt.Errorf("client: decoding /healthz: %w", err)
	}
	return h, nil
}

// Snapshot fetches the daemon's CRC-checksummed snapshot envelope. With
// live, the daemon serializes current state on demand instead of
// serving its newest on-disk generation. seq is the generation sequence
// header ("" for live serves). The caller verifies the envelope
// (heavykeeper.VerifySnapshot) before trusting a byte, completing the
// end-to-end integrity check.
func (c *Client) Snapshot(ctx context.Context, live bool) (data []byte, seq string, err error) {
	q := url.Values{}
	if live {
		q.Set("live", "1")
	}
	resp, err := c.do(ctx, http.MethodGet, "/snapshot", q, nil)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	return data, resp.Header.Get("X-Snapshot-Seq"), nil
}

// Reconfig is the hot-reconfiguration request for POST /config; on an
// authenticated daemon it requires the admin token. Zero-valued fields
// are no-ops, so one call can apply any subset.
type Reconfig struct {
	Tenant       string            `json:"tenant,omitempty"`
	GrowK        int               `json:"grow_k,omitempty"`
	RotateEpoch  bool              `json:"rotate_epoch,omitempty"`
	AddTokens    map[string]string `json:"add_tokens,omitempty"`
	RevokeTokens []string          `json:"revoke_tokens,omitempty"`
	EvictTenants []string          `json:"evict_tenants,omitempty"`
}

// ReconfigResult reports what the daemon applied.
type ReconfigResult struct {
	SchemaVersion int      `json:"schema_version"`
	Tenant        string   `json:"tenant,omitempty"`
	K             int      `json:"k,omitempty"`
	Rotated       bool     `json:"rotated,omitempty"`
	TokensAdded   int      `json:"tokens_added,omitempty"`
	TokensRevoked int      `json:"tokens_revoked,omitempty"`
	Evicted       []string `json:"evicted,omitempty"`
}

// Reconfigure applies a hot reconfiguration without restarting the
// daemon: grow k, rotate the epoch, rotate tenant tokens, evict
// tenants.
func (c *Client) Reconfigure(ctx context.Context, r Reconfig) (*ReconfigResult, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/config", nil, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := &ReconfigResult{}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return nil, fmt.Errorf("client: decoding reconfig result: %w", err)
	}
	return out, nil
}

// WaitForRecords polls /stats until the daemon reports at least want
// ingested records, the context expires, or an auth/API error makes
// progress impossible. It is how senders that can outrun the daemon
// wait for the ingest queue to drain. A client scoped to a non-default
// tenant counts that tenant's own records (from its audit line), so two
// tenants draining concurrently never mistake each other's progress for
// their own.
func (c *Client) WaitForRecords(ctx context.Context, want uint64) error {
	for {
		st, err := c.Stats(ctx)
		switch {
		case err == nil && c.records(st) >= want:
			return nil
		case errors.Is(err, ErrUnauthorized) || errors.Is(err, ErrForbidden):
			return err // polling harder will not change the verdict
		}
		select {
		case <-ctx.Done():
			if err != nil {
				return fmt.Errorf("client: waiting for %d records: %w (last error: %v)", want, ctx.Err(), err)
			}
			return fmt.Errorf("client: waiting for %d records: %w", want, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// records extracts the drain counter WaitForRecords watches: the
// requesting tenant's own ingested records when the response is scoped
// to a non-default tenant and carries its audit line, the server-wide
// total otherwise (open single-tenant daemons, the admin token).
func (c *Client) records(st *Stats) uint64 {
	if st.Tenant != "" && st.Tenant != "default" {
		for _, ts := range st.Tenants {
			if ts.Name == st.Tenant {
				return ts.Records
			}
		}
	}
	return st.Server.Records
}
