// Quickstart: find the top-10 flows of a synthetic packet stream with the
// public heavykeeper API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"

	"repro/internal/gen"
)

func main() {
	// Track the 10 largest flows in a 64 KB structure.
	tk, err := heavykeeper.New(10,
		heavykeeper.WithMemory(64<<10),
		heavykeeper.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A skewed workload: 200k packets over 20k flows (5-tuple IDs).
	tr := gen.MustGenerate(gen.Spec{
		Name: "quickstart", Packets: 200_000, Flows: 20_000,
		Skew: 1.1, Kind: gen.IDFiveTuple, Seed: 7,
	})

	tr.ForEach(tk.Add)

	exact := tr.ExactCounts()
	fmt.Println("top-10 flows (estimate vs. exact):")
	rank := 0
	for f := range tk.All() { // streams off the store in descending order
		rank++
		fmt.Printf("  #%-2d %x  est=%-6d true=%d\n",
			rank, f.ID, f.Count, exact[string(f.ID)])
	}
	st := tk.Stats()
	fmt.Printf("\nsketch events: %d packets, %d decays, %d replacements\n",
		st.Packets, st.Decays, st.Replacements)
}
