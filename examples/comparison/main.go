// Comparison: run HeavyKeeper head-to-head against every implemented
// baseline on one workload at one byte budget — a single-row slice of the
// paper's evaluation, useful for getting a feel for the accuracy gap.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	const (
		k      = 100
		budget = 20 * 1024
		seed   = 2024
	)
	tr := gen.MustGenerate(gen.Campus(seed).Scale(0.02))
	oracle := metrics.FromCounts(tr.ExactCounts())
	trueTop := oracle.TopKSet(k)

	algos := []string{
		harness.AlgoHK, harness.AlgoHKMinimum, harness.AlgoSS,
		harness.AlgoLC, harness.AlgoCSS, harness.AlgoCM,
		harness.AlgoElastic, harness.AlgoColdFilter, harness.AlgoCounterTree,
	}

	fmt.Printf("workload: %s (%d packets, %d flows), budget %d KB, k = %d\n\n",
		tr.Spec.Name, tr.Len(), tr.Flows(), budget/1024, k)
	fmt.Printf("%-14s %10s %12s %12s %12s\n", "algorithm", "precision", "ARE", "AAE", "Mps")
	for _, name := range algos {
		a := harness.MustBuild(name, budget, k, seed)
		if cr, ok := a.(harness.CandidateRanker); ok {
			cr.SetCandidates(tr.IDs)
		}
		start := time.Now()
		tr.ForEach(a.Insert)
		mps := float64(tr.Len()) / time.Since(start).Seconds() / 1e6
		rep := a.Top(k)
		fmt.Printf("%-14s %10.3f %12.4g %12.4g %12.2f\n",
			name,
			metrics.Precision(rep, trueTop),
			metrics.ARE(rep, oracle),
			metrics.AAE(rep, oracle),
			mps)
	}
}
