// Algorithms: the same Summarizer surface over every registered engine.
//
// New(k, WithAlgorithm(name)) swaps the backing algorithm without touching
// the caller: the paper's whole competitor zoo (Space-Saving, CSS,
// HeavyGuardian, Frequent, Lossy Counting) runs behind the same interface
// as HeavyKeeper itself, under any frontend (plain, WithConcurrency,
// WithShards). This program replays one skewed stream through each and
// reports recall of the true top-k plus the ingest event counters.
//
//	go run ./examples/algorithms
package main

import (
	"fmt"
	"log"

	"repro"

	"repro/internal/gen"
)

func main() {
	const (
		k    = 20
		mem  = 24 << 10
		seed = 77
	)
	tr := gen.MustGenerate(gen.Spec{
		Name: "algorithms", Packets: 200_000, Flows: 20_000,
		Skew: 1.1, Kind: gen.IDTwoTuple, Seed: 5,
	})
	truth := map[string]bool{}
	for _, i := range tr.TopK(k) {
		truth[string(tr.IDs[i])] = true
	}

	fmt.Printf("workload: %d packets, %d flows; k = %d, %d KB per engine\n\n",
		tr.Len(), tr.Flows(), k, mem>>10)
	fmt.Printf("%-22s %8s %10s %10s\n", "algorithm", "recall", "packets", "bytes")
	for _, name := range heavykeeper.Algorithms() {
		// Every algorithm under the sharded frontend, to show the two are
		// orthogonal; plain New(k, WithAlgorithm(name)) works the same.
		s, err := heavykeeper.New(k,
			heavykeeper.WithAlgorithm(name),
			heavykeeper.WithMemory(mem),
			heavykeeper.WithSeed(seed),
			heavykeeper.WithShards(2),
		)
		if err != nil {
			log.Fatal(err)
		}
		tr.ForEach(s.Add)
		hit := 0
		for f := range s.All() {
			if truth[string(f.ID)] {
				hit++
			}
		}
		fmt.Printf("%-22s %5d/%-2d %10d %10d\n",
			name, hit, k, s.Stats().Packets, s.MemoryBytes())
	}
}
