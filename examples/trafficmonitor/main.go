// Trafficmonitor: periodic top-k reporting on a simulated software switch,
// the deployment pattern of the paper's §VII (OVS) and footnote 2
// (sketches shipped to a collector every measurement period).
//
// A datapath goroutine forwards packets and taps flow IDs into a shared
// ring; the measurement goroutine feeds a HeavyKeeper and emits a top-k
// report at the end of every epoch, then starts a fresh structure — exactly
// how a switch-resident sketch is drained by a collector.
//
//	go run ./examples/trafficmonitor
package main

import (
	"fmt"
	"log"

	"repro"

	"repro/internal/gen"
	"repro/internal/vswitch"
)

const (
	k          = 5
	epochSize  = 100_000 // packets per measurement period
	epochCount = 4
)

func main() {
	tr := gen.MustGenerate(gen.Spec{
		Name: "monitor", Packets: epochSize * epochCount, Flows: 40_000,
		Skew: 1.2, Kind: gen.IDFiveTuple, Seed: 11,
	})

	// The measurement program swaps in a fresh HeavyKeeper per epoch.
	newTracker := func() heavykeeper.Summarizer {
		return heavykeeper.MustNew(k,
			heavykeeper.WithMemory(32<<10),
			heavykeeper.WithVersion(heavykeeper.VersionMinimum),
			heavykeeper.WithSeed(3),
		)
	}
	tk := newTracker()
	seen := 0
	epoch := 1

	report := func() {
		fmt.Printf("epoch %d report (top %d of %d packets):\n", epoch, k, seen)
		for rank, f := range tk.List() {
			fmt.Printf("  #%-2d flow %x  ~%d packets\n", rank+1, f.ID, f.Count)
		}
	}

	insert := func(key []byte) {
		tk.Add(key)
		seen++
		if seen == epochSize {
			report()
			tk = newTracker() // drain to the collector, start a new period
			seen = 0
			epoch++
		}
	}

	pipe, err := vswitch.NewPipeline(4096, insert)
	if err != nil {
		log.Fatal(err)
	}
	pipe.BlockWhenFull = true // lossless tap for the demo
	stats := pipe.Run(tr.Len(), tr.Key)

	fmt.Printf("\nswitch stats: forwarded %d packets at %.2f Mps (%d tapped, %d dropped)\n",
		stats.Forwarded, stats.ThroughputMps(), stats.Tapped, stats.Dropped)
}
