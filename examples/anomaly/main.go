// Anomaly: detect a traffic surge (a DDoS-style event) by comparing top-k
// reports between measurement epochs — one of the §I motivations for fast
// elephant-flow detection.
//
// The stream is normal skewed traffic for two epochs; in the third, an
// attacker flow that was previously invisible surges to the head of the
// distribution. The detector flags any flow that enters the top-k with an
// estimated size far above the previous epoch's estimate for it.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"

	"repro"

	"repro/internal/gen"
	"repro/internal/xrand"
)

const (
	k         = 10
	epochPkts = 150_000
	epochs    = 3
	surgeFrac = 0.25 // attacker's share of epoch-3 traffic
)

func main() {
	background := gen.MustGenerate(gen.Spec{
		Name: "background", Packets: epochPkts * epochs, Flows: 30_000,
		Skew: 1.0, Kind: gen.IDTwoTuple, Seed: 21,
	})
	attacker := []byte{10, 0, 0, 66, 192, 0, 2, 9} // fixed src->dst pair
	rng := xrand.NewXorshift64Star(99)

	prev := map[string]uint64{} // last epoch's estimates
	pos := 0
	for epoch := 1; epoch <= epochs; epoch++ {
		tk := heavykeeper.MustNew(k,
			heavykeeper.WithMemory(32<<10),
			heavykeeper.WithSeed(5),
		)
		for i := 0; i < epochPkts; i++ {
			// During the attack epoch the attacker injects packets.
			if epoch == epochs && rng.Float64() < surgeFrac {
				tk.Add(attacker)
				continue
			}
			tk.Add(background.Key(pos))
			pos++
		}

		fmt.Printf("epoch %d top-%d:\n", epoch, k)
		cur := map[string]uint64{}
		for rank, f := range tk.List() {
			cur[string(f.ID)] = f.Count
			was := prev[string(f.ID)]
			flag := ""
			if epoch > 1 && f.Count > 4*(was+100) {
				flag = "  << ANOMALY: surged from ~" + fmt.Sprint(was)
			}
			fmt.Printf("  #%-2d %x  ~%d%s\n", rank+1, f.ID, f.Count, flag)
		}
		prev = cur
	}
}
