package heavykeeper

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

// patchU32 returns a copy of raw with a little-endian uint32 written at
// offset.
func patchU32(raw []byte, off int, v uint32) []byte {
	out := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(out[off:], v)
	return out
}

// ingestZipfish feeds a deterministic skewed keyset: flow i appears
// roughly n/(i+1) times, so the top of the distribution is stable.
func ingestZipfish(s Summarizer, flows, packets int) {
	for p := 0; p < packets; p++ {
		i := 0
		for r := p; r%2 == 1 && i < flows-1; r /= 2 {
			i++
		}
		s.Add(fmt.Appendf(nil, "flow-%05d", i%flows))
	}
}

func summarizersEqual(t *testing.T, a, b Summarizer, probes [][]byte) {
	t.Helper()
	la, lb := a.List(), b.List()
	if len(la) != len(lb) {
		t.Fatalf("list lengths differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if !bytes.Equal(la[i].ID, lb[i].ID) || la[i].Count != lb[i].Count {
			t.Fatalf("list[%d]: %q/%d vs %q/%d", i, la[i].ID, la[i].Count, lb[i].ID, lb[i].Count)
		}
	}
	for _, p := range probes {
		if qa, qb := a.Query(p), b.Query(p); qa != qb {
			t.Fatalf("query %q: %d vs %d", p, qa, qb)
		}
	}
}

func persistProbes() [][]byte {
	probes := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		probes = append(probes, fmt.Appendf(nil, "flow-%05d", i))
	}
	return probes
}

func TestSnapshotRoundTripFrontends(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"topk", nil},
		{"topk-minimum", []Option{WithVersion(VersionMinimum)}},
		{"topk-heap", []Option{WithMinHeap()}},
		{"topk-mapstore", []Option{WithMapStore()}},
		{"concurrent", []Option{WithConcurrency()}},
		{"sharded", []Option{WithShards(4)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := MustNew(10, append([]Option{WithSeed(7), WithMemory(16 << 10)}, tc.opts...)...)
			ingestZipfish(orig, 500, 20000)

			w, ok := orig.(SnapshotWriter)
			if !ok {
				t.Fatalf("%T does not implement SnapshotWriter", orig)
			}
			var buf bytes.Buffer
			if _, err := w.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			restored, err := ReadSummarizer(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadSummarizer: %v", err)
			}
			if fmt.Sprintf("%T", restored) != fmt.Sprintf("%T", orig) {
				t.Fatalf("restored as %T, wrote a %T", restored, orig)
			}
			probes := persistProbes()
			summarizersEqual(t, orig, restored, probes)

			// The restored summarizer keeps ingesting identically: feed both
			// sides the same continuation and they must stay equal.
			ingestZipfish(orig, 500, 5000)
			ingestZipfish(restored, 500, 5000)
			summarizersEqual(t, orig, restored, probes)
		})
	}
}

func TestReadTopKKindStrict(t *testing.T) {
	c := MustNew(5, WithConcurrency())
	ingestZipfish(c, 50, 1000)
	var buf bytes.Buffer
	if _, err := c.(SnapshotWriter).WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if _, err := ReadTopK(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadTopK on a Concurrent container: got %v, want ErrCorrupt", err)
	}

	tk := MustNew(5)
	ingestZipfish(tk, 50, 1000)
	buf.Reset()
	if _, err := tk.(*TopK).WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadTopK(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTopK: %v", err)
	}
	summarizersEqual(t, tk, got, persistProbes())
}

func TestSnapshotRestoredMetadata(t *testing.T) {
	tk := MustNew(7, WithSeed(3), WithVersion(VersionMinimum)).(*TopK)
	var buf bytes.Buffer
	if _, err := tk.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadTopK(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTopK: %v", err)
	}
	if got.K() != 7 {
		t.Errorf("restored K = %d, want 7", got.K())
	}
	if got.Version() != VersionMinimum {
		t.Errorf("restored Version = %v, want minimum", got.Version())
	}
	if got.Algorithm() != AlgorithmHeavyKeeperMinimum {
		t.Errorf("restored Algorithm = %q", got.Algorithm())
	}
}

func TestSnapshotRestoredMergeable(t *testing.T) {
	a := MustNew(10, WithSeed(11)).(*TopK)
	b := MustNew(10, WithSeed(11)).(*TopK)
	ingestZipfish(a, 200, 8000)
	ingestZipfish(b, 300, 8000)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	ra, err := ReadTopK(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTopK: %v", err)
	}
	// A restored sketch is seed-compatible with its siblings: merging must
	// succeed and match merging the original.
	if err := ra.Merge(b); err != nil {
		t.Fatalf("merge into restored: %v", err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge into original: %v", err)
	}
	summarizersEqual(t, a, ra, persistProbes())
}

func TestSnapshotUnsupportedEngines(t *testing.T) {
	ss := MustNew(10, WithAlgorithm("spacesaving"))
	var buf bytes.Buffer
	if _, err := ss.(*TopK).WriteTo(&buf); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("spacesaving WriteTo: got %v, want ErrSnapshotUnsupported", err)
	}
}

func TestSnapshotCorruptInputs(t *testing.T) {
	tk := MustNew(10, WithSeed(1)).(*TopK)
	ingestZipfish(tk, 100, 4000)
	var buf bytes.Buffer
	if _, err := tk.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	raw := buf.Bytes()

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte{0, 0, 0, 0}, raw[4:]...)},
		{"bad kind", append(append([]byte{}, raw[:4]...), append([]byte{99}, raw[5:]...)...)},
		{"truncated header", raw[:6]},
		{"truncated body", raw[:len(raw)/2]},
		{"truncated mid-entry", raw[:len(raw)-3]},
		// Structural-size fields live at fixed offsets behind the 5-byte
		// container prefix and 4 section bytes: k at 9, d at 13, w at 17.
		// Absurd declarations must come back as ErrCorrupt, never as a
		// giant allocation or a makeslice panic.
		{"huge k", patchU32(raw, 9, 1<<28)},
		{"huge geometry", patchU32(patchU32(raw, 13, 3037000500), 17, 3037000500)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadSummarizer(bytes.NewReader(tc.data)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
}

// snapshotFrameBoundaries parses a WriteSnapshot envelope and returns
// every frame boundary offset: after the magic, after each frame, and
// the end of the terminator.
func snapshotFrameBoundaries(t *testing.T, raw []byte) []int {
	t.Helper()
	if len(raw) < 4 || string(raw[:4]) != "HKC1" {
		t.Fatalf("not a checksummed envelope (%d bytes)", len(raw))
	}
	bounds := []int{4}
	off := 4
	for {
		if off+4 > len(raw) {
			t.Fatalf("envelope ends mid frame header at %d", off)
		}
		length := int(binary.LittleEndian.Uint32(raw[off:]))
		if length == 0 {
			off += 8 // terminator: zero length + stream checksum
			bounds = append(bounds, off)
			break
		}
		off += 4 + length + 4
		bounds = append(bounds, off)
	}
	if off != len(raw) {
		t.Fatalf("envelope has %d bytes after terminator", len(raw)-off)
	}
	return bounds
}

// checksummedFrontends is the frontend-kind matrix the corruption
// fallback tests sweep: every container kind and store variant that can
// appear inside an envelope.
func checksummedFrontends() []struct {
	name string
	opts []Option
} {
	return []struct {
		name string
		opts []Option
	}{
		{"topk", nil},
		{"topk-minimum", []Option{WithVersion(VersionMinimum)}},
		{"topk-heap", []Option{WithMinHeap()}},
		{"topk-mapstore", []Option{WithMapStore()}},
		{"concurrent", []Option{WithConcurrency()}},
		{"sharded", []Option{WithShards(3)}},
	}
}

func TestChecksummedSnapshotRoundTrip(t *testing.T) {
	for _, tc := range checksummedFrontends() {
		t.Run(tc.name, func(t *testing.T) {
			orig := MustNew(10, append([]Option{WithSeed(7), WithMemory(16 << 10)}, tc.opts...)...)
			ingestZipfish(orig, 500, 20000)
			var buf bytes.Buffer
			if _, err := WriteSnapshot(&buf, orig.(SnapshotWriter)); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadSnapshot: %v", err)
			}
			if fmt.Sprintf("%T", restored) != fmt.Sprintf("%T", orig) {
				t.Fatalf("restored as %T, wrote a %T", restored, orig)
			}
			summarizersEqual(t, orig, restored, persistProbes())
		})
	}
}

// TestChecksummedSnapshotCorruptionMatrix is the torn-write sweep: for
// every frontend kind, the envelope is truncated at every frame boundary
// (and one byte either side of each) — every prefix must be rejected as
// ErrCorrupt, never restored and never a panic.
func TestChecksummedSnapshotCorruptionMatrix(t *testing.T) {
	for _, tc := range checksummedFrontends() {
		t.Run(tc.name, func(t *testing.T) {
			orig := MustNew(8, append([]Option{WithSeed(3), WithMemory(8 << 10)}, tc.opts...)...)
			ingestZipfish(orig, 200, 8000)
			var buf bytes.Buffer
			if _, err := WriteSnapshot(&buf, orig.(SnapshotWriter)); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			raw := buf.Bytes()
			cuts := map[int]bool{0: true, 1: true, 3: true}
			for _, b := range snapshotFrameBoundaries(t, raw) {
				for _, cut := range []int{b - 1, b, b + 1} {
					if cut >= 0 && cut < len(raw) {
						cuts[cut] = true
					}
				}
			}
			for cut := range cuts {
				if _, err := ReadSnapshot(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrCorrupt) {
					t.Errorf("truncated at %d/%d: got %v, want ErrCorrupt", cut, len(raw), err)
				}
			}
		})
	}
}

// TestChecksummedSnapshotBitFlips corrupts one byte at a spread of
// offsets; the envelope checksum must catch every flip.
func TestChecksummedSnapshotBitFlips(t *testing.T) {
	orig := MustNew(8, WithSeed(9), WithMemory(8<<10))
	ingestZipfish(orig, 200, 8000)
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, orig.(SnapshotWriter)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	raw := buf.Bytes()
	for off := 0; off < len(raw); off += 37 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at %d/%d restored successfully", off, len(raw))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip at %d: got %v, want ErrCorrupt", off, err)
		}
	}
	// Trailing garbage after a valid terminator is also corruption.
	if _, err := ReadSnapshot(bytes.NewReader(append(append([]byte(nil), raw...), 0xFF))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

// TestReadSnapshotLegacyContainer: a bare WriteTo container (the
// pre-envelope on-disk format) still restores through ReadSnapshot.
func TestReadSnapshotLegacyContainer(t *testing.T) {
	orig := MustNew(10, WithSeed(5), WithConcurrency())
	ingestZipfish(orig, 300, 10000)
	var buf bytes.Buffer
	if _, err := orig.(SnapshotWriter).WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot (legacy): %v", err)
	}
	summarizersEqual(t, orig, restored, persistProbes())
}

// TestVerifySnapshot: the streamed integrity gate must agree with
// ReadSnapshot on every intact envelope, every truncation and every bit
// flip — without decoding the container.
func TestVerifySnapshot(t *testing.T) {
	orig := MustNew(8, WithSeed(21), WithMemory(8<<10))
	ingestZipfish(orig, 200, 8000)
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, orig.(SnapshotWriter)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	raw := buf.Bytes()
	if err := VerifySnapshot(bytes.NewReader(raw)); err != nil {
		t.Fatalf("intact envelope rejected: %v", err)
	}
	for cut := 0; cut < len(raw); cut += 13 {
		if err := VerifySnapshot(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated at %d/%d: got %v, want ErrCorrupt", cut, len(raw), err)
		}
	}
	for off := 0; off < len(raw); off += 29 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x08
		if err := VerifySnapshot(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip at %d/%d: got %v, want ErrCorrupt", off, len(raw), err)
		}
	}
	if err := VerifySnapshot(bytes.NewReader(append(append([]byte(nil), raw...), 0x00))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: got %v, want ErrCorrupt", err)
	}
	// A legacy bare container has no envelope to verify; callers fall back
	// to a full ReadSnapshot for those.
	var bare bytes.Buffer
	if _, err := orig.(SnapshotWriter).WriteTo(&bare); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshot(bytes.NewReader(bare.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bare container: got %v, want ErrCorrupt", err)
	}
}

func TestWriteSnapshotUnsupportedEngine(t *testing.T) {
	ss := MustNew(10, WithAlgorithm("spacesaving"))
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, ss.(SnapshotWriter)); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("got %v, want ErrSnapshotUnsupported", err)
	}
}
