// Interface-conformance suite: every registered algorithm, under every
// frontend (TopK, Concurrent, Sharded), must honor the Summarizer contract
// — top-k recovery on a skewed stream, its estimate discipline (never-over
// for the decay sketches and Misra–Gries, never-under for the Space-Saving
// family and Lossy Counting's upper-bound report), descending List order,
// All ≡ List, batch ≡ sequential ingest, weighted arrivals, uniform
// K/MemoryBytes/Stats, and merge-or-typed-error.
package heavykeeper_test

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"slices"
	"testing"

	heavykeeper "repro"
)

// conformanceProps flags the estimate discipline and merge support of one
// algorithm; everything else in the suite is identical across algorithms.
type conformanceProps struct {
	// neverOver: List counts never exceed the true count (HeavyKeeper's
	// Theorem 2; Misra–Gries decrements; HeavyGuardian's guarded cells).
	neverOver bool
	// neverUnder: List counts never fall below the true count
	// (Space-Saving's admit-all inheritance; Lossy Counting's count+Δ).
	neverUnder bool
	// merges: Merge folds two instances; false expects ErrMergeUnsupported.
	merges bool
	// batch: the engine implements BatchEngine (a chunked staged batch
	// path); false means a plain Engine whose AddBatch falls back to the
	// per-key loop. Either way batch ingest must equal sequential ingest.
	batch bool
	// minRecall is the required recall of the true top-k in List, at the
	// suite's 32 KB budget on its 50k-packet zipfian stream.
	minRecall float64
}

// conformanceAlgos enumerates every built-in algorithm with its discipline.
// A new registry algorithm must be added here (the suite fails if the
// registry and this table drift apart).
var conformanceAlgos = map[string]conformanceProps{
	heavykeeper.AlgorithmHeavyKeeper:        {neverOver: true, merges: true, batch: true, minRecall: 0.85},
	heavykeeper.AlgorithmHeavyKeeperMinimum: {neverOver: true, merges: true, batch: true, minRecall: 0.85},
	heavykeeper.AlgorithmHeavyKeeperBasic:   {neverOver: true, merges: true, batch: true, minRecall: 0.85},
	heavykeeper.AlgorithmSpaceSaving:        {neverUnder: true, batch: true, minRecall: 0.75},
	heavykeeper.AlgorithmCSS:                {neverUnder: true, batch: true, minRecall: 0.75},
	heavykeeper.AlgorithmHeavyGuardian:      {neverOver: true, batch: true, minRecall: 0.75},
	heavykeeper.AlgorithmFrequent:           {neverOver: true, minRecall: 0.75},
	heavykeeper.AlgorithmLossyCounting:      {neverUnder: true, minRecall: 0.75},
}

// conformanceFrontends builds each deployment shape from the same options.
var conformanceFrontends = map[string]func(k int, opts ...heavykeeper.Option) heavykeeper.Summarizer{
	"topk": func(k int, opts ...heavykeeper.Option) heavykeeper.Summarizer {
		return heavykeeper.MustNew(k, opts...)
	},
	"concurrent": func(k int, opts ...heavykeeper.Option) heavykeeper.Summarizer {
		return heavykeeper.MustNew(k, append(opts, heavykeeper.WithConcurrency())...)
	},
	"sharded": func(k int, opts ...heavykeeper.Option) heavykeeper.Summarizer {
		return heavykeeper.MustNew(k, append(opts, heavykeeper.WithShards(4))...)
	},
}

// conformanceOpts is the common configuration: a fixed seed for
// reproducibility and a budget at which every algorithm recovers the head
// of the suite's stream.
func conformanceOpts(algo string) []heavykeeper.Option {
	return []heavykeeper.Option{
		heavykeeper.WithAlgorithm(algo),
		heavykeeper.WithMemory(32 << 10),
		heavykeeper.WithSeed(42),
	}
}

// TestConformanceTableCoversRegistry pins the suite table to the registry:
// a newly registered built-in must declare its discipline here.
func TestConformanceTableCoversRegistry(t *testing.T) {
	for _, name := range heavykeeper.Algorithms() {
		if _, ok := conformanceAlgos[name]; !ok {
			t.Errorf("algorithm %q registered but missing from the conformance table", name)
		}
	}
	if len(conformanceAlgos) < 5 {
		t.Fatalf("conformance table has %d algorithms, want >= 5", len(conformanceAlgos))
	}
}

func TestConformance(t *testing.T) {
	const k = 20
	stream, exact := skewedConformance(50_000, 2_000, 9)
	trueTop := topKSet(exact, k)

	for algo, props := range conformanceAlgos {
		for front, build := range conformanceFrontends {
			t.Run(algo+"/"+front, func(t *testing.T) {
				s := build(k, conformanceOpts(algo)...)
				for _, p := range stream {
					s.Add(p)
				}
				checkReport(t, s, props, exact, trueTop, k)
				checkUniformSurface(t, s, k, uint64(len(stream)))
				checkBatchEquivalence(t, build, k, algo, stream)
				checkWeighted(t, build, k, algo)
				checkMerge(t, build, k, algo, props, stream, trueTop)
			})
		}
	}
}

// TestEngineBatchConformance pins the engine-level batch contract beneath
// the frontends: each algorithm's declared BatchEngine support matches what
// BuildEngine returns, and for batch engines InsertBatchHashed — self-hashing
// (nil hashes) and with caller-precomputed hashes — is bit-identical to a
// loop over Insert: same Top report, same estimates, same event counters
// (the counters also pin one-hash accounting: a batch that hashed twice or
// probed differently would shift them).
func TestEngineBatchConformance(t *testing.T) {
	const k = 20
	stream, exact := skewedConformance(50_000, 2_000, 9)
	cfg := heavykeeper.EngineConfig{K: k, MemoryBytes: 32 << 10, Seed: 42}

	for algo, props := range conformanceAlgos {
		t.Run(algo, func(t *testing.T) {
			mk := func() heavykeeper.Engine {
				e, err := heavykeeper.BuildEngine(algo, cfg)
				if err != nil {
					t.Fatalf("BuildEngine(%q): %v", algo, err)
				}
				return e
			}
			seq := mk()
			_, isBatch := seq.(heavykeeper.BatchEngine)
			if isBatch != props.batch {
				t.Fatalf("BatchEngine support = %v, conformance table says %v", isBatch, props.batch)
			}
			if !isBatch {
				return
			}
			self := mk().(heavykeeper.BatchEngine)
			pre := mk().(heavykeeper.BatchEngine)

			hashes := make([]uint64, len(stream))
			for i, key := range stream {
				hashes[i] = pre.KeyHash(key)
			}
			for _, key := range stream {
				seq.Insert(key)
			}
			for off := 0; off < len(stream); {
				n := 1 + (off*7)%613 // ragged batch sizes, some > any internal chunk
				if off+n > len(stream) {
					n = len(stream) - off
				}
				self.InsertBatchHashed(stream[off:off+n], nil)
				off += n
			}
			pre.InsertBatchHashed(stream, hashes)

			for name, got := range map[string]heavykeeper.Engine{"self-hashing": self, "prehashed": pre} {
				if gs, ss := got.Stats(), seq.Stats(); gs != ss {
					t.Errorf("%s: stats diverge from sequential:\nbatch      %+v\nsequential %+v", name, gs, ss)
				}
				gt, st := got.Top(k), seq.Top(k)
				if len(gt) != len(st) {
					t.Fatalf("%s: Top lengths diverge: %d vs %d", name, len(gt), len(st))
				}
				for i := range gt {
					if !bytes.Equal(gt[i].ID, st[i].ID) || gt[i].Count != st[i].Count {
						t.Fatalf("%s: Top[%d] = %q/%d, sequential %q/%d",
							name, i, gt[i].ID, gt[i].Count, st[i].ID, st[i].Count)
					}
				}
				for f := range exact {
					if a, b := seq.Query([]byte(f)), got.Query([]byte(f)); a != b {
						t.Fatalf("%s: Query(%q) = %d, sequential %d", name, f, b, a)
					}
				}
			}
		})
	}
}

// checkReport verifies recall, order, the estimate discipline, and All≡List.
func checkReport(t *testing.T, s heavykeeper.Summarizer, props conformanceProps,
	exact map[string]uint64, trueTop map[string]bool, k int) {
	t.Helper()
	flows := s.List()
	if len(flows) == 0 || len(flows) > k {
		t.Fatalf("List returned %d flows, want 1..%d", len(flows), k)
	}
	hit := 0
	for i, f := range flows {
		if trueTop[string(f.ID)] {
			hit++
		}
		if i > 0 && f.Count > flows[i-1].Count {
			t.Fatalf("List not descending at %d: %d > %d", i, f.Count, flows[i-1].Count)
		}
		truth := exact[string(f.ID)]
		if props.neverOver && f.Count > truth {
			t.Errorf("flow %q over-estimated: %d > true %d", f.ID, f.Count, truth)
		}
		if props.neverUnder && f.Count < truth {
			t.Errorf("flow %q under-estimated: %d < true %d", f.ID, f.Count, truth)
		}
	}
	if recall := float64(hit) / float64(k); recall < props.minRecall {
		t.Errorf("recall %.2f below %.2f (%d/%d true top flows reported)",
			recall, props.minRecall, hit, k)
	}
	// All yields the same report in the same order, and supports early break.
	var viaAll []heavykeeper.Flow
	for f := range s.All() {
		viaAll = append(viaAll, f)
	}
	if !flowsEqual(flows, viaAll) {
		t.Errorf("All() disagrees with List(): %d vs %d flows", len(viaAll), len(flows))
	}
	n := 0
	for range s.All() {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 && len(flows) >= 3 {
		t.Errorf("All() early break consumed %d flows, want 3", n)
	}
}

// checkUniformSurface pins the drift-prone accessors to one behavior
// everywhere: K echoes the configuration, MemoryBytes is positive, and
// Stats().Packets counts exactly the ingested packets on every frontend.
func checkUniformSurface(t *testing.T, s heavykeeper.Summarizer, k int, packets uint64) {
	t.Helper()
	if s.K() != k {
		t.Errorf("K() = %d want %d", s.K(), k)
	}
	if s.MemoryBytes() <= 0 {
		t.Errorf("MemoryBytes() = %d, want > 0", s.MemoryBytes())
	}
	if got := s.Stats().Packets; got != packets {
		t.Errorf("Stats().Packets = %d want %d", got, packets)
	}
}

// checkBatchEquivalence verifies AddBatch against per-packet Add on two
// identically configured instances: same stream, same report.
func checkBatchEquivalence(t *testing.T, build func(int, ...heavykeeper.Option) heavykeeper.Summarizer,
	k int, algo string, stream [][]byte) {
	t.Helper()
	a := build(k, conformanceOpts(algo)...)
	b := build(k, conformanceOpts(algo)...)
	for _, p := range stream {
		a.Add(p)
	}
	for lo := 0; lo < len(stream); lo += 97 {
		hi := min(lo+97, len(stream))
		b.AddBatch(stream[lo:hi])
	}
	if !flowsEqual(a.List(), b.List()) {
		t.Error("AddBatch diverges from sequential Add")
	}
}

// checkWeighted verifies AddN: a lone weighted arrival reports its exact
// weight on every algorithm (nothing else contests the structure).
func checkWeighted(t *testing.T, build func(int, ...heavykeeper.Option) heavykeeper.Summarizer,
	k int, algo string) {
	t.Helper()
	s := build(k, conformanceOpts(algo)...)
	s.AddN([]byte("weighted-flow"), 100)
	flows := s.List()
	if len(flows) != 1 || string(flows[0].ID) != "weighted-flow" || flows[0].Count != 100 {
		t.Errorf("lone AddN(100) reported %v, want [weighted-flow/100]", flows)
	}
}

// checkMerge verifies the collector pattern where the algorithm supports it
// and the typed error where it does not.
func checkMerge(t *testing.T, build func(int, ...heavykeeper.Option) heavykeeper.Summarizer,
	k int, algo string, props conformanceProps, stream [][]byte, trueTop map[string]bool) {
	t.Helper()
	a := build(k, conformanceOpts(algo)...)
	b := build(k, conformanceOpts(algo)...)
	for i, p := range stream {
		if i%2 == 0 {
			a.Add(p)
		} else {
			b.Add(p)
		}
	}
	err := a.Merge(b)
	if !props.merges {
		if !errors.Is(err, heavykeeper.ErrMergeUnsupported) {
			t.Errorf("Merge error = %v, want ErrMergeUnsupported", err)
		}
		return
	}
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	hit := 0
	for f := range a.All() {
		if trueTop[string(f.ID)] {
			hit++
		}
	}
	if recall := float64(hit) / float64(k); recall < props.minRecall-0.1 {
		t.Errorf("merged recall %.2f too low", recall)
	}
}

// TestMergeMismatchAcrossFrontends pins the typed error for every
// cross-shape merge, nil included.
func TestMergeMismatchAcrossFrontends(t *testing.T) {
	tk := heavykeeper.MustNew(5)
	conc := heavykeeper.MustNew(5, heavykeeper.WithConcurrency())
	shrd := heavykeeper.MustNew(5, heavykeeper.WithShards(2))
	for _, c := range []struct {
		name string
		err  error
	}{
		{"topk<-conc", tk.Merge(conc)},
		{"conc<-sharded", conc.Merge(shrd)},
		{"sharded<-topk", shrd.Merge(tk)},
		{"topk<-nil", tk.Merge(nil)},
		{"conc<-nil", conc.Merge(nil)},
		{"sharded<-nil", shrd.Merge(nil)},
	} {
		if !errors.Is(c.err, heavykeeper.ErrMergeMismatch) {
			t.Errorf("%s: error = %v, want ErrMergeMismatch", c.name, c.err)
		}
	}
	// Same frontend, different algorithm: also a mismatch.
	ss := heavykeeper.MustNew(5, heavykeeper.WithAlgorithm(heavykeeper.AlgorithmSpaceSaving))
	if err := tk.Merge(ss); !errors.Is(err, heavykeeper.ErrMergeMismatch) {
		t.Errorf("heavykeeper<-spacesaving: error = %v, want ErrMergeMismatch", err)
	}
}

// --- helpers ---

// skewedConformance returns a deterministic zipf-ish stream and its exact
// counts (rank r gets weight ~ 1/r^1.2).
func skewedConformance(npkts, nflows int, seed uint64) ([][]byte, map[string]uint64) {
	// A tiny xorshift so the suite needs no internal imports.
	x := seed*2685821657736338717 + 1
	next := func() uint64 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		return x * 2685821657736338717
	}
	cdf := make([]float64, nflows)
	total := 0.0
	for i := range cdf {
		total += 1.0 / math.Pow(float64(i+1), 1.2)
		cdf[i] = total
	}
	stream := make([][]byte, npkts)
	exact := map[string]uint64{}
	for p := range stream {
		u := float64(next()>>11) / (1 << 53) * total
		i, _ := slices.BinarySearch(cdf, u)
		if i >= nflows {
			i = nflows - 1
		}
		key := []byte(fmt.Sprintf("conf-flow-%d", i))
		stream[p] = key
		exact[string(key)]++
	}
	return stream, exact
}

func topKSet(exact map[string]uint64, k int) map[string]bool {
	type kv struct {
		key string
		n   uint64
	}
	all := make([]kv, 0, len(exact))
	for key, n := range exact {
		all = append(all, kv{key, n})
	}
	slices.SortFunc(all, func(a, b kv) int {
		if a.n != b.n {
			if a.n > b.n {
				return -1
			}
			return 1
		}
		return bytes.Compare([]byte(a.key), []byte(b.key))
	})
	set := map[string]bool{}
	for i := 0; i < k && i < len(all); i++ {
		set[all[i].key] = true
	}
	return set
}

func flowsEqual(a, b []heavykeeper.Flow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].ID, b[i].ID) || a[i].Count != b[i].Count {
			return false
		}
	}
	return true
}
