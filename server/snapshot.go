package server

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	heavykeeper "repro"
)

// genStore writes and retains crash-safe snapshot generations. Each
// generation is a separate file next to the configured base path —
// "<base>.g<seq>" — written to a temp file, fsync'd, renamed into place
// and followed by a directory fsync, so a crash at any instant leaves at
// most one torn file and never disturbs older generations. After each
// successful write, generations past the retention count are pruned
// oldest-first.
type genStore struct {
	base string
	keep int

	mu  sync.Mutex
	seq uint64

	// wrap is the fault-injection seam: when set, snapshot bytes flow
	// through wrap(tempFile) so chaos tests can tear a write mid-frame.
	wrap func(io.Writer) io.Writer
}

// newGenStore returns a store rooted at base, resuming the sequence
// counter past any generations already on disk.
func newGenStore(base string, keep int) (*genStore, error) {
	g := &genStore{base: base, keep: keep}
	gens, err := g.generations()
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 {
		g.seq = gens[0].seq
	}
	return g, nil
}

// generation is one on-disk snapshot file.
type generation struct {
	path string
	seq  uint64
}

// generations lists the store's on-disk generations, newest first.
// Files whose suffix doesn't parse as a sequence number are ignored —
// they aren't ours.
func (g *genStore) generations() ([]generation, error) {
	dir := filepath.Dir(g.base)
	prefix := filepath.Base(g.base) + ".g"
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var gens []generation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) {
			continue
		}
		seq, err := strconv.ParseUint(name[len(prefix):], 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, generation{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].seq > gens[j].seq })
	return gens, nil
}

// write persists one new generation. Serialized under mu so concurrent
// callers (periodic loop, SIGHUP, shutdown) can't interleave sequence
// numbers or prune each other's in-flight renames.
func (g *genStore) write(sw heavykeeper.SnapshotWriter) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	dir := filepath.Dir(g.base)
	tmp, err := os.CreateTemp(dir, ".hkd-snap-*")
	if err != nil {
		return fmt.Errorf("server: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var w io.Writer = tmp
	if g.wrap != nil {
		w = g.wrap(tmp)
	}
	if _, err := heavykeeper.WriteSnapshot(w, sw); err != nil {
		tmp.Close()
		return fmt.Errorf("server: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: snapshot close: %w", err)
	}
	g.seq++
	dst := fmt.Sprintf("%s.g%09d", g.base, g.seq)
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("server: snapshot rename: %w", err)
	}
	// The rename is durable only once the directory entry is; without
	// this fsync a crash can lose the rename and resurrect the old view.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("server: snapshot dir sync: %w", err)
	}
	g.prune()
	return nil
}

// newestIntact returns the newest generation whose checksummed envelope
// verifies end to end, for serving to remote readers (GET /snapshot).
// Generations are immutable once renamed into place, so no lock is held:
// a concurrent write only adds newer files, and a concurrent prune of a
// file we already opened leaves our descriptor readable. Returns
// os.ErrNotExist when no generation exists at all, and the newest
// verification failure when files exist but none are intact.
func (g *genStore) newestIntact() (generation, error) {
	gens, err := g.generations()
	if err != nil {
		return generation{}, err
	}
	var firstErr error
	for _, gen := range gens {
		err := func() error {
			f, err := os.Open(gen.path)
			if err != nil {
				return err
			}
			defer f.Close()
			return heavykeeper.VerifySnapshot(f)
		}()
		if err == nil {
			return gen, nil
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", gen.path, err)
		}
	}
	if firstErr == nil {
		firstErr = os.ErrNotExist
	}
	return generation{}, firstErr
}

// prune removes generations past the retention count, oldest first.
// Best-effort: a failed remove leaves an extra file, never loses data.
func (g *genStore) prune() {
	gens, err := g.generations()
	if err != nil {
		return
	}
	for i, gen := range gens {
		if i >= g.keep {
			os.Remove(gen.path)
		}
	}
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadSnapshot restores a summarizer from the snapshot state rooted at
// path: it walks generation files newest to oldest, skipping corrupt or
// torn ones (a crash mid-write must never block restart), then falls
// back to a legacy single-file snapshot at path itself. The restored
// summarizer is wrapped for concurrent serving. Returns (nil, nil) when
// nothing exists to restore, and an error only when snapshot state
// exists but none of it is intact.
func LoadSnapshot(path string) (heavykeeper.Summarizer, error) {
	gens, err := (&genStore{base: path}).generations()
	if err != nil {
		return nil, fmt.Errorf("server: listing snapshot generations: %w", err)
	}
	var firstErr error
	for _, gen := range gens {
		sum, err := readSnapshotFile(gen.path)
		if err == nil {
			return heavykeeper.Synchronized(sum), nil
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", gen.path, err)
		}
	}
	sum, err := readSnapshotFile(path)
	switch {
	case err == nil:
		return heavykeeper.Synchronized(sum), nil
	case errors.Is(err, os.ErrNotExist):
		if firstErr != nil {
			return nil, fmt.Errorf("server: no intact snapshot generation (%d on disk, newest failure: %w)", len(gens), firstErr)
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("server: restoring snapshot %s: %w", path, err)
	}
}

// readSnapshotFile restores one snapshot file (checksummed envelope or
// legacy bare container).
func readSnapshotFile(path string) (heavykeeper.Summarizer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return heavykeeper.ReadSnapshot(f)
}
