package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	heavykeeper "repro"
)

// reconfigRequest is the POST /config body: each field is an optional
// action, applied in the order the fields are declared. Token changes
// take effect for new handshakes and requests immediately; connections
// already bound by a hello stay bound.
type reconfigRequest struct {
	// Tenant scopes GrowK and RotateEpoch ("" = the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// GrowK swaps the tenant's summarizer for one with a larger report
	// size, carrying the current top-k estimates over. Requires
	// Config.NewSummarizer. Estimates are reseeded from the old report,
	// so residual sketch state (non-top-k counters) is not carried.
	GrowK int `json:"grow_k,omitempty"`
	// RotateEpoch forces a pane rotation on a Window summarizer,
	// starting a fresh epoch now.
	RotateEpoch bool `json:"rotate_epoch,omitempty"`
	// AddTokens grants token → tenant-name mappings.
	AddTokens map[string]string `json:"add_tokens,omitempty"`
	// RevokeTokens removes tokens from the table.
	RevokeTokens []string `json:"revoke_tokens,omitempty"`
	// EvictTenants discards the named tenants' state explicitly.
	EvictTenants []string `json:"evict_tenants,omitempty"`
}

// reconfigResponse reports what was applied.
type reconfigResponse struct {
	SchemaVersion int      `json:"schema_version"`
	Tenant        string   `json:"tenant,omitempty"`
	K             int      `json:"k,omitempty"`
	Rotated       bool     `json:"rotated,omitempty"`
	TokensAdded   int      `json:"tokens_added,omitempty"`
	TokensRevoked int      `json:"tokens_revoked,omitempty"`
	Evicted       []string `json:"evicted,omitempty"`
}

// handleReconfig is hot reconfig: grow k, rotate the epoch, rotate
// tenant tokens and evict tenants without restarting the daemon. On an
// authenticated server only the admin token may call it; an open
// (dev/loopback) server accepts it from anyone who can reach the API.
func (s *Server) handleReconfig(w http.ResponseWriter, r *http.Request) {
	if info, authed := r.Context().Value(authCtxKey{}).(authInfo); authed && !info.admin {
		writeError(w, http.StatusForbidden, "forbidden", "reconfig requires the admin token")
		return
	}
	var req reconfigRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	resp := reconfigResponse{SchemaVersion: StatsSchemaVersion}

	if req.GrowK > 0 || req.RotateEpoch {
		t, ok := s.reg.get(req.Tenant)
		if !ok {
			writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown tenant %q", req.Tenant))
			return
		}
		resp.Tenant = t.name
		if req.GrowK > 0 {
			k, err := s.growK(t, req.GrowK)
			if err != nil {
				status, code := http.StatusBadRequest, "bad_request"
				if errors.Is(err, errNoFactory) {
					status, code = http.StatusNotImplemented, "not_implemented"
				}
				writeError(w, status, code, err.Error())
				return
			}
			resp.K = k
			s.tenantLog.Info("k grown", "tenant", t.name, "k", k)
		}
		if req.RotateEpoch {
			win, ok := t.summarizer().(*heavykeeper.Window)
			if !ok {
				writeError(w, http.StatusBadRequest, "bad_request",
					fmt.Sprintf("tenant %q summarizer %T has no epochs to rotate", t.name, t.summarizer()))
				return
			}
			win.Rotate()
			resp.Rotated = true
			s.tenantLog.Info("epoch rotated", "tenant", t.name)
		}
	}

	for tok, tenant := range req.AddTokens {
		if tok == "" || tenant == "" {
			writeError(w, http.StatusBadRequest, "bad_request", "add_tokens entries need a non-empty token and tenant name")
			return
		}
		s.tokens.add(tok, tenant)
		resp.TokensAdded++
	}
	for _, tok := range req.RevokeTokens {
		if s.tokens.revoke(tok) {
			resp.TokensRevoked++
		}
	}
	if resp.TokensAdded > 0 || resp.TokensRevoked > 0 {
		s.tenantLog.Info("tokens rotated",
			"added", resp.TokensAdded, "revoked", resp.TokensRevoked, "live", s.tokens.len())
	}

	for _, name := range req.EvictTenants {
		if err := s.reg.evict(name); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		resp.Evicted = append(resp.Evicted, name)
		s.tenantLog.Info("tenant evicted", "tenant", name)
	}

	writeJSON(w, resp)
}

var errNoFactory = errors.New("server: grow_k requires Config.NewSummarizer")

// growK swaps t's summarizer for one with report size newK, reseeding
// it from the old report. The swap is atomic for readers; frames being
// ingested into the old instance during the window between reseed and
// swap are lost to the new one — grow is a best-effort operational move,
// not a transactional migration.
func (s *Server) growK(t *tenant, newK int) (int, error) {
	if s.cfg.NewSummarizer == nil {
		return 0, errNoFactory
	}
	old := t.summarizer()
	if newK <= old.K() {
		return 0, fmt.Errorf("server: grow_k %d must exceed current k %d", newK, old.K())
	}
	grown, err := s.cfg.NewSummarizer(newK)
	if err != nil {
		return 0, fmt.Errorf("server: grow_k factory: %w", err)
	}
	// Prefer a structural merge (keeps sketch state when shapes allow),
	// fall back to reseeding from the report: the old top-k estimates
	// become exact-count seeds in the grown instance.
	if err := grown.Merge(old); err != nil {
		for _, f := range old.List() {
			grown.AddN(f.ID, f.Count)
		}
	}
	t.setSummarizer(grown)
	return grown.K(), nil
}
