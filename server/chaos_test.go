package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	heavykeeper "repro"
	"repro/internal/chaos"
	"repro/wire"
)

// TestChaosSeeds drives a full daemon lifecycle — faulty accepts, faulty
// client connections, faulty snapshot disk writes, shutdown, restore —
// under deterministic fault injection across many seeds. Every seed must
// satisfy the same invariants:
//
//   - no panic and no goroutine leak after Shutdown;
//   - ingest counters stay consistent (never more records than clients
//     attempted to send);
//   - a final snapshot lands once the injected disk-fault budget is
//     spent, and restore recovers exactly the pre-shutdown state — even
//     with a torn newest generation in the way.
//
// A failing seed reproduces by number: the whole fault schedule flows
// from the seed's Rand.
func TestChaosSeeds(t *testing.T) {
	const seeds = 24
	for seed := uint64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosRun(t, seed)
		})
	}
}

func chaosRun(t *testing.T, seed uint64) {
	time.Sleep(5 * time.Millisecond) // let prior subtests' goroutines exit
	baseline := runtime.NumGoroutine()
	rng := chaos.NewRand(seed ^ 0x6368616f73) // "chaos"

	dir := t.TempDir()
	snap := filepath.Join(dir, "hkd.snap")
	// The first diskFaults snapshot writes hit an injected disk fault
	// (torn or failed at a random byte budget); later writes go through
	// clean, so the run always ends with an intact generation on disk.
	diskFaults := rng.Intn(3)
	diskRng := rng.Split()
	var snapWrites int
	cfg := Config{
		Summarizer: heavykeeper.MustNew(10, heavykeeper.WithConcurrency(),
			heavykeeper.WithSeed(42), heavykeeper.WithMemory(16<<10)),
		TCPAddr:          "127.0.0.1:0",
		HTTPAddr:         "127.0.0.1:0",
		MaxConns:         16,
		IdleTimeout:      500 * time.Millisecond,
		MaxInflight:      2,
		DrainGrace:       200 * time.Millisecond,
		SnapshotPath:     snap,
		SnapshotInterval: time.Hour,
		SnapshotKeep:     3,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	acceptRng := rng.Split()
	srv.tcpListen = func(addr string) (net.Listener, error) {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return chaos.WrapListener(ln, acceptRng, 0.3, time.Millisecond), nil
	}
	srv.snap.wrap = func(w io.Writer) io.Writer {
		snapWrites++
		if snapWrites <= diskFaults {
			return &chaos.Writer{W: w, FailAfter: int64(diskRng.Intn(4096)), Short: diskRng.Bool(0.5)}
		}
		return w
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}

	// Faulty clients: each sends a deterministic keyset through a
	// connection that may stall, reset, tear frames or corrupt bytes.
	const clients = 4
	var wg sync.WaitGroup
	var attempted [clients]int
	for c := 0; c < clients; c++ {
		plan := chaos.ConnPlan{
			StallProb:   rng.Float64() * 0.2,
			PartialProb: rng.Float64() * 0.1,
			ResetProb:   rng.Float64() * 0.1,
			GarbageProb: rng.Float64() * 0.1,
		}
		connRng := rng.Split()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			raw, err := net.Dial("tcp", srv.TCPAddr().String())
			if err != nil {
				return
			}
			conn := chaos.WrapConn(raw, connRng, plan)
			defer conn.Close()
			var frame []byte
			for f := 0; f < 30; f++ {
				keys := make([][]byte, 25)
				for i := range keys {
					// Skewed: low key numbers repeat across frames.
					keys[i] = fmt.Appendf(nil, "c%d-k%03d", c, (f*25+i)%40)
				}
				frame, err = wire.AppendFrame(frame[:0], keys, nil)
				if err != nil {
					t.Errorf("AppendFrame: %v", err)
					return
				}
				if _, err := conn.Write(frame); err != nil {
					return // injected or cascading fault: this client is done
				}
				attempted[c] += len(keys)
			}
		}(c)
	}

	// Mid-run snapshots exercise the disk-fault budget; failures are
	// expected and must never disturb existing generations.
	for i := 0; i < diskFaults+1; i++ {
		srv.Snapshot()
	}
	wg.Wait()

	// Quiesce: all handlers gone and the record counter stable.
	var lastRecords uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st statsDoc
		getJSON(t, srv.HTTPAddr(), "/stats", &st)
		if st.Server.ConnsActive == 0 && st.Server.Records == lastRecords {
			break
		}
		lastRecords = st.Server.Records
		if time.Now().After(deadline) {
			t.Fatalf("ingest never quiesced: %+v", st.Server)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var total int
	for _, n := range attempted {
		total += n
	}
	if lastRecords > uint64(total) {
		t.Fatalf("counted %d records, clients only attempted %d", lastRecords, total)
	}

	want := srv.cfg.Summarizer.List()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The disk-fault budget is spent (mid-run snapshots burned it), so
	// the shutdown snapshot must land.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Simulate a torn write racing the crash: a truncated file as the
	// newest generation. Restore must walk past it.
	gens, err := (&genStore{base: snap}).generations()
	if err != nil || len(gens) == 0 {
		t.Fatalf("no snapshot generations after shutdown (err=%v)", err)
	}
	raw, err := os.ReadFile(gens[0].path)
	if err != nil {
		t.Fatalf("read newest gen: %v", err)
	}
	torn := fmt.Sprintf("%s.g%09d", snap, gens[0].seq+1)
	if err := os.WriteFile(torn, raw[:len(raw)*2/3], 0o644); err != nil {
		t.Fatalf("write torn gen: %v", err)
	}

	restored, err := LoadSnapshot(snap)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	got := restored.List()
	if len(got) != len(want) {
		t.Fatalf("restored %d flows, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].ID, want[i].ID) || got[i].Count != want[i].Count {
			t.Fatalf("restored[%d] = %s/%d, want %s/%d",
				i, got[i].ID, got[i].Count, want[i].ID, want[i].Count)
		}
	}

	http.DefaultClient.CloseIdleConnections()
	if err := chaos.LeakCheck(baseline, 4, 3*time.Second); err != nil {
		t.Fatal(err)
	}
}
