package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	heavykeeper "repro"
)

// DefaultTenant is the name of the implicit tenant every v1 frame (and
// every v2 frame with an empty tenant id) ingests into. It is backed by
// Config.Summarizer and is never evicted.
const DefaultTenant = "default"

// Typed tenancy errors; callers branch with errors.Is.
var (
	// ErrUnknownTenant is returned when a frame or query names a tenant
	// the registry does not hold and cannot admit (no NewSummarizer
	// factory configured).
	ErrUnknownTenant = errors.New("server: unknown tenant")
	// ErrTenantLimit is returned when admitting a tenant would exceed
	// MaxTenants or TenantMemoryBudget and no idle tenant can be evicted
	// to make room.
	ErrTenantLimit = errors.New("server: tenant limit reached")
)

// tenant is one isolated principal: its own summarizer instance plus
// audit counters. The summarizer is held behind an atomic pointer so hot
// reconfig (grow_k) can swap in a larger instance while ingest
// continues; readers never take the registry lock.
type tenant struct {
	name string
	sum  atomic.Pointer[sumBox]

	// Audit counters: every frame that reaches ingest for this tenant is
	// accounted here, whether or not degraded-mode sampling later sheds
	// it — the audit trail answers "who sent what", not "what was kept".
	frames   atomic.Uint64
	records  atomic.Uint64
	lastUsed atomic.Int64 // unix nanos; drives LRU eviction
}

// sumBox wraps the Summarizer interface value so it can live behind an
// atomic.Pointer.
type sumBox struct{ s heavykeeper.Summarizer }

func (t *tenant) summarizer() heavykeeper.Summarizer { return t.sum.Load().s }

func (t *tenant) setSummarizer(s heavykeeper.Summarizer) { t.sum.Store(&sumBox{s: s}) }

func (t *tenant) touch() { t.lastUsed.Store(time.Now().UnixNano()) }

// registry maps tenant names to live tenants, admits new ones through
// the configured factory under a bounded total-memory budget, and evicts
// least-recently-used tenants when the bounds are hit. The default
// tenant is pinned: it is never a candidate for eviction.
type registry struct {
	mu      sync.Mutex
	tenants map[string]*tenant
	def     *tenant
	factory func(k int) (heavykeeper.Summarizer, error)
	defK    int
	maxN    int // live-tenant cap, including the default
	budget  int // total MemoryBytes across dynamic tenants; 0 = unlimited

	admitted  atomic.Uint64
	evictions atomic.Uint64
	rejected  atomic.Uint64
}

func newRegistry(def heavykeeper.Summarizer, factory func(k int) (heavykeeper.Summarizer, error), maxTenants, budget int) *registry {
	d := &tenant{name: DefaultTenant}
	d.setSummarizer(def)
	d.touch()
	return &registry{
		tenants: map[string]*tenant{DefaultTenant: d},
		def:     d,
		factory: factory,
		defK:    def.K(),
		maxN:    maxTenants,
		budget:  budget,
	}
}

// resolve returns the tenant for name, admitting it through the factory
// if it does not exist yet. An empty name is the default tenant. The
// argument is []byte so the ingest hot path resolves known tenants
// without allocating (map lookups on string(b) do not copy).
func (r *registry) resolve(name []byte) (*tenant, error) {
	if len(name) == 0 {
		return r.def, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[string(name)]; ok {
		return t, nil
	}
	return r.admitLocked(string(name))
}

// admitLocked creates and registers a new dynamic tenant, evicting LRU
// tenants as needed to respect MaxTenants and the memory budget.
func (r *registry) admitLocked(name string) (*tenant, error) {
	if r.factory == nil {
		r.rejected.Add(1)
		return nil, fmt.Errorf("%w: %q (no tenant factory configured)", ErrUnknownTenant, name)
	}
	if r.maxN > 0 && len(r.tenants) >= r.maxN && !r.evictLRULocked() {
		r.rejected.Add(1)
		return nil, fmt.Errorf("%w: %d tenants live, cannot admit %q", ErrTenantLimit, len(r.tenants), name)
	}
	sum, err := r.factory(r.defK)
	if err != nil {
		r.rejected.Add(1)
		return nil, fmt.Errorf("server: tenant %q: factory: %w", name, err)
	}
	if r.budget > 0 {
		need := sum.MemoryBytes()
		for r.dynamicMemoryLocked()+need > r.budget {
			if !r.evictLRULocked() {
				r.rejected.Add(1)
				return nil, fmt.Errorf("%w: memory budget %d bytes exhausted, cannot admit %q", ErrTenantLimit, r.budget, name)
			}
		}
	}
	t := &tenant{name: name}
	t.setSummarizer(sum)
	t.touch()
	r.tenants[name] = t
	r.admitted.Add(1)
	return t, nil
}

// dynamicMemoryLocked sums the footprint of every evictable tenant.
func (r *registry) dynamicMemoryLocked() int {
	total := 0
	for _, t := range r.tenants {
		if t != r.def {
			total += t.summarizer().MemoryBytes()
		}
	}
	return total
}

// evictLRULocked removes the least-recently-used dynamic tenant,
// discarding its summarizer. Reports false when nothing is evictable
// (only the pinned default remains).
func (r *registry) evictLRULocked() bool {
	var victim *tenant
	for _, t := range r.tenants {
		if t == r.def {
			continue
		}
		if victim == nil || t.lastUsed.Load() < victim.lastUsed.Load() {
			victim = t
		}
	}
	if victim == nil {
		return false
	}
	delete(r.tenants, victim.name)
	r.evictions.Add(1)
	return true
}

// get returns the tenant for name without admitting it; queries against
// a tenant that never ingested are a 404, not an admission.
func (r *registry) get(name string) (*tenant, bool) {
	if name == "" {
		return r.def, true
	}
	r.mu.Lock()
	t, ok := r.tenants[name]
	r.mu.Unlock()
	return t, ok
}

// evict explicitly removes a named tenant, discarding its state. The
// default tenant cannot be evicted.
func (r *registry) evict(name string) error {
	if name == "" || name == DefaultTenant {
		return errors.New("server: the default tenant cannot be evicted")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	delete(r.tenants, name)
	r.evictions.Add(1)
	return nil
}

// snapshot returns the live tenants sorted by name, for /stats and
// /metrics rendering.
func (r *registry) snapshot() []*tenant {
	r.mu.Lock()
	out := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tenants)
}

// tokenTable is the bearer-token → tenant-name map, mutable at runtime
// (hot rotation via POST /config or SIGHUP token-file reload) under a
// read-mostly lock.
type tokenTable struct {
	mu     sync.RWMutex
	tokens map[string]string
}

func newTokenTable(tokens map[string]string) *tokenTable {
	m := make(map[string]string, len(tokens))
	for tok, tenant := range tokens {
		m[tok] = tenant
	}
	return &tokenTable{tokens: m}
}

// lookup resolves a presented token to its tenant name. The argument is
// []byte so the TCP hello path avoids an allocation.
func (tt *tokenTable) lookup(token []byte) (string, bool) {
	tt.mu.RLock()
	name, ok := tt.tokens[string(token)]
	tt.mu.RUnlock()
	return name, ok
}

func (tt *tokenTable) add(token, tenant string) {
	tt.mu.Lock()
	tt.tokens[token] = tenant
	tt.mu.Unlock()
}

func (tt *tokenTable) revoke(token string) bool {
	tt.mu.Lock()
	_, ok := tt.tokens[token]
	delete(tt.tokens, token)
	tt.mu.Unlock()
	return ok
}

// replace swaps the whole table (SIGHUP token-file reload).
func (tt *tokenTable) replace(tokens map[string]string) {
	m := make(map[string]string, len(tokens))
	for tok, tenant := range tokens {
		m[tok] = tenant
	}
	tt.mu.Lock()
	tt.tokens = m
	tt.mu.Unlock()
}

func (tt *tokenTable) len() int {
	tt.mu.RLock()
	defer tt.mu.RUnlock()
	return len(tt.tokens)
}

// SetTokens atomically replaces the tenant-token table; hkd calls this
// on SIGHUP after re-reading its token file. It does not change whether
// auth is required — a server started with auth stays authenticated even
// if the new table is momentarily empty.
func (s *Server) SetTokens(tokens map[string]string) { s.tokens.replace(tokens) }

// AddToken grants token access to tenant at runtime.
func (s *Server) AddToken(token, tenant string) { s.tokens.add(token, tenant) }

// RevokeToken removes a token at runtime; in-flight connections already
// bound by a hello handshake stay bound (revocation gates new
// handshakes and new HTTP requests).
func (s *Server) RevokeToken(token string) bool { return s.tokens.revoke(token) }
