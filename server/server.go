// Package server implements hkd, the network-facing top-k telemetry
// daemon, as an embeddable component: TCP and UDP ingest listeners
// speaking the wire package's framed binary protocol, an HTTP JSON query
// API with a Prometheus-text /metrics endpoint, and periodic plus
// on-shutdown snapshotting through the heavykeeper package's public
// persistence surface.
//
// The ingest path is the paper's measurement-point deployment shape:
// collectors batch flow arrivals into frames, the daemon decodes each
// frame into the exact [][]byte shape Summarizer.AddBatch wants (keys
// aliasing the connection's reusable frame buffer — the ingest loop
// allocates only when a new flow is admitted), and queries are answered
// from the live structure without stopping ingest. The Summarizer must
// therefore be safe for concurrent use: a Concurrent, Sharded or Window
// frontend, not a bare TopK.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	heavykeeper "repro"
	"repro/wire"
)

// Config configures a Server. Empty listen addresses disable their
// listener; at least one of TCP/UDP/HTTP must be set.
type Config struct {
	// Summarizer receives every decoded arrival. It must be safe for
	// concurrent use (Concurrent, Sharded, Window). Required.
	Summarizer heavykeeper.Summarizer
	// TCPAddr is the stream-ingest listen address (e.g. ":4774" or
	// "127.0.0.1:0" for an ephemeral port).
	TCPAddr string
	// UDPAddr is the datagram-ingest listen address (one frame per
	// datagram).
	UDPAddr string
	// HTTPAddr is the query/metrics API listen address.
	HTTPAddr string
	// SnapshotPath, when set, enables persistence: the summarizer is
	// snapshotted there every SnapshotInterval and on Shutdown. The
	// summarizer must implement heavykeeper.SnapshotWriter.
	SnapshotPath string
	// SnapshotInterval is the periodic snapshot cadence (default 1m;
	// ignored without SnapshotPath).
	SnapshotInterval time.Duration
	// Info is echoed verbatim by the /config endpoint, so a client can
	// rebuild a twin summarizer (the hkbench verifier does).
	Info map[string]string
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// counters is the server's monitoring block; all fields are atomics so
// the ingest paths never take a lock to count.
type counters struct {
	tcpFrames       atomic.Uint64
	udpFrames       atomic.Uint64
	records         atomic.Uint64
	tcpBytes        atomic.Uint64
	udpBytes        atomic.Uint64
	decodeErrors    atomic.Uint64
	transportErrors atomic.Uint64
	connsTotal      atomic.Uint64
	connsActive     atomic.Int64
	snapshots       atomic.Uint64
	snapshotErrs    atomic.Uint64
}

// errProbe is the sentinel the snapshot-capability probe writer returns;
// seeing it back from WriteTo proves the summarizer got past its own
// capability checks and started writing.
var errProbe = errors.New("server: snapshot capability probe")

// probeWriter fails every write with errProbe.
type probeWriter struct{}

func (probeWriter) Write([]byte) (int, error) { return 0, errProbe }

// drainGrace is how long established ingest connections get to finish
// their in-flight frames at shutdown before their reads are deadlined.
const drainGrace = time.Second

// Server is one running hkd instance.
type Server struct {
	cfg     Config
	logf    func(string, ...any)
	started time.Time

	tcpLn  net.Listener
	udpLn  net.PacketConn
	httpLn net.Listener
	httpSv *http.Server

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg       sync.WaitGroup
	stopSnap chan struct{}
	ctr      counters
}

// New validates cfg and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Summarizer == nil {
		return nil, errors.New("server: Config.Summarizer is required")
	}
	// The ingest loops and HTTP handlers touch the summarizer from
	// separate goroutines; a bare TopK has no synchronization at all.
	// Callers that mean it should wrap it (heavykeeper.Synchronized).
	if _, bare := cfg.Summarizer.(*heavykeeper.TopK); bare {
		return nil, errors.New("server: bare *TopK is not safe for concurrent serving; wrap it with heavykeeper.Synchronized")
	}
	if cfg.TCPAddr == "" && cfg.UDPAddr == "" && cfg.HTTPAddr == "" {
		return nil, errors.New("server: no listen address configured")
	}
	if cfg.SnapshotPath != "" {
		// Every frontend type has a WriteTo method, but registry engines
		// reject it at call time — probe once now so a daemon that cannot
		// actually persist fails at startup, not at the first snapshot.
		// The probe writer fails on the first byte, so capability is
		// learned in O(1): a capable summarizer surfaces errProbe, an
		// incapable one its own error before writing anything.
		w, ok := cfg.Summarizer.(heavykeeper.SnapshotWriter)
		if !ok {
			return nil, fmt.Errorf("server: summarizer %T cannot snapshot", cfg.Summarizer)
		}
		if _, err := w.WriteTo(probeWriter{}); err != nil && !errors.Is(err, errProbe) {
			return nil, fmt.Errorf("server: summarizer cannot snapshot: %w", err)
		}
		if cfg.SnapshotInterval <= 0 {
			cfg.SnapshotInterval = time.Minute
		}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		cfg:      cfg,
		logf:     logf,
		conns:    map[net.Conn]struct{}{},
		stopSnap: make(chan struct{}),
	}, nil
}

// Start binds the configured listeners and launches the ingest, API and
// snapshot loops. It returns once everything is listening; use the Addr
// accessors to learn ephemeral ports.
func (s *Server) Start() error {
	s.started = time.Now()
	if s.cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.TCPAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("server: tcp listen: %w", err)
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptLoop()
	}
	if s.cfg.UDPAddr != "" {
		ln, err := net.ListenPacket("udp", s.cfg.UDPAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("server: udp listen: %w", err)
		}
		s.udpLn = ln
		s.wg.Add(1)
		go s.udpLoop()
	}
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("server: http listen: %w", err)
		}
		s.httpLn = ln
		s.httpSv = &http.Server{Handler: s.apiHandler()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.httpSv.Serve(ln); err != nil && err != http.ErrServerClosed {
				s.logf("http serve: %v", err)
			}
		}()
	}
	if s.cfg.SnapshotPath != "" {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	s.logf("hkd listening: tcp=%v udp=%v http=%v", s.TCPAddr(), s.UDPAddr(), s.HTTPAddr())
	return nil
}

// TCPAddr returns the bound stream-ingest address (nil when disabled).
func (s *Server) TCPAddr() net.Addr {
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr()
}

// UDPAddr returns the bound datagram-ingest address (nil when disabled).
func (s *Server) UDPAddr() net.Addr {
	if s.udpLn == nil {
		return nil
	}
	return s.udpLn.LocalAddr()
}

// HTTPAddr returns the bound API address (nil when disabled).
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// acceptLoop accepts stream-ingest connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.ctr.connsTotal.Add(1)
		s.ctr.connsActive.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// track registers conn for shutdown; reports false when shutting down.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn drains one stream-ingest connection: a frame at a time
// through the connection's own wire.Reader (whose buffers are reused, so
// the steady-state loop is allocation-free) into the summarizer's batch
// path. A protocol violation terminates the connection — framing on a
// byte stream cannot resynchronize after corruption.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.ctr.connsActive.Add(-1)
	defer s.untrack(conn)
	defer conn.Close()
	r := wire.NewReader(&countingReader{r: conn, n: &s.ctr.tcpBytes})
	for {
		batch, err := r.Next()
		if err != nil {
			if err != io.EOF {
				// A peer speaking garbage and a peer (or our own shutdown)
				// tearing the transport down are different conditions;
				// keep the protocol-violation metric honest by counting
				// them apart.
				if isTransportError(err) {
					s.ctr.transportErrors.Add(1)
				} else {
					s.ctr.decodeErrors.Add(1)
				}
				s.logf("tcp %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.ctr.tcpFrames.Add(1)
		s.ingest(batch)
	}
}

// isTransportError reports whether err is a connection-level failure
// (reset, force-close, deadline, mid-frame EOF from a crashed peer)
// rather than a protocol violation in bytes that actually arrived.
func isTransportError(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// countingReader feeds bytes drained from one connection into the
// server-wide byte counter.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// udpLoop ingests one frame per datagram until the socket closes.
// Datagrams are independent, so a malformed one is counted and dropped
// without affecting its neighbors.
func (s *Server) udpLoop() {
	defer s.wg.Done()
	buf := make([]byte, wire.HeaderLen+wire.MaxPayload)
	var batch wire.Batch
	for {
		n, _, err := s.udpLn.ReadFrom(buf)
		if err != nil {
			return // socket closed by Shutdown
		}
		if err := wire.DecodeDatagram(buf[:n], &batch); err != nil {
			s.ctr.decodeErrors.Add(1)
			continue
		}
		s.ctr.udpFrames.Add(1)
		s.ctr.udpBytes.Add(uint64(n))
		s.ingest(&batch)
	}
}

// ingest feeds one decoded batch to the summarizer: the batched path for
// unit weights, per-record AddN for weighted frames.
func (s *Server) ingest(b *wire.Batch) {
	if len(b.Weights) == 0 {
		s.cfg.Summarizer.AddBatch(b.Keys)
	} else {
		for i, key := range b.Keys {
			s.cfg.Summarizer.AddN(key, b.Weights[i])
		}
	}
	s.ctr.records.Add(uint64(len(b.Keys)))
}

// snapshotLoop writes periodic snapshots until Shutdown.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Snapshot(); err != nil {
				s.logf("periodic snapshot: %v", err)
			}
		case <-s.stopSnap:
			return
		}
	}
}

// Snapshot writes the summarizer to SnapshotPath atomically (temp file
// in the same directory, then rename), so a crash mid-write never
// clobbers the previous good snapshot.
func (s *Server) Snapshot() error {
	if s.cfg.SnapshotPath == "" {
		return errors.New("server: no snapshot path configured")
	}
	w := s.cfg.Summarizer.(heavykeeper.SnapshotWriter) // checked in New
	tmp, err := os.CreateTemp(filepath.Dir(s.cfg.SnapshotPath), ".hkd-snap-*")
	if err != nil {
		s.ctr.snapshotErrs.Add(1)
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := w.WriteTo(tmp); err != nil {
		tmp.Close()
		s.ctr.snapshotErrs.Add(1)
		return err
	}
	if err := tmp.Close(); err != nil {
		s.ctr.snapshotErrs.Add(1)
		return err
	}
	if err := os.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		s.ctr.snapshotErrs.Add(1)
		return err
	}
	s.ctr.snapshots.Add(1)
	return nil
}

// LoadSnapshot restores a summarizer from a snapshot file written by
// Snapshot (or any heavykeeper WriteTo container). A container holding a
// bare *TopK is wrapped for concurrent use, so the result is always safe
// to serve. A missing file is not an error: it returns (nil, nil) so a
// daemon's first start falls through to fresh construction.
func LoadSnapshot(path string) (heavykeeper.Summarizer, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sum, err := heavykeeper.ReadSummarizer(f)
	if err != nil {
		return nil, fmt.Errorf("server: restoring %s: %w", path, err)
	}
	return heavykeeper.Synchronized(sum), nil
}

// Shutdown stops the server: listeners close immediately (no new
// connections or datagrams), established ingest connections get a short
// read-deadline grace (drainGrace, clipped to ctx's deadline) to finish
// in-flight frames before being force-closed, the HTTP server shuts down
// gracefully, and — when persistence is configured — a final snapshot is
// written. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.stopSnap)
	s.closeListeners()

	// An idle collector connection never drains "naturally" — it just
	// blocks in a read between frame bursts. A short read deadline lets a
	// conn that is mid-burst finish its current frames while an idle one
	// errors out immediately, so routine restarts don't burn the whole
	// grace period.
	s.mu.Lock()
	drainBy := time.Now().Add(drainGrace)
	if dl, ok := ctx.Deadline(); ok && dl.Before(drainBy) {
		drainBy = dl
	}
	for conn := range s.conns {
		conn.SetReadDeadline(drainBy)
	}
	s.mu.Unlock()

	var httpErr error
	if s.httpSv != nil {
		httpErr = s.httpSv.Shutdown(ctx)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Grace expired: sever the stragglers and wait for their handlers.
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}

	var snapErr error
	if s.cfg.SnapshotPath != "" {
		snapErr = s.Snapshot()
	}
	if snapErr != nil {
		return snapErr
	}
	return httpErr
}

// closeListeners closes whichever listeners are open.
func (s *Server) closeListeners() {
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	if s.udpLn != nil {
		s.udpLn.Close()
	}
	if s.httpLn != nil {
		s.httpLn.Close()
	}
}
