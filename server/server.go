// Package server implements hkd, the network-facing top-k telemetry
// daemon, as an embeddable component: TCP and UDP ingest listeners
// speaking the wire package's framed binary protocol, an HTTP JSON query
// API with a Prometheus-text /metrics endpoint, and periodic plus
// on-shutdown snapshotting through the heavykeeper package's public
// persistence surface.
//
// The ingest path is the paper's measurement-point deployment shape:
// collectors batch flow arrivals into frames, the daemon decodes each
// frame into the exact [][]byte shape Summarizer.AddBatch wants (keys
// aliasing the connection's reusable frame buffer — the ingest loop
// allocates only when a new flow is admitted), and queries are answered
// from the live structure without stopping ingest. The Summarizer must
// therefore be safe for concurrent use: a Concurrent, Sharded or Window
// frontend, not a bare TopK.
//
// # Overload resilience
//
// The server survives hostile load the way the sketch survives hostile
// traffic: by degrading gracefully instead of falling over.
//
//   - Admission control: MaxConns caps open stream connections (excess
//     accepts are counted and closed), IdleTimeout evicts silent peers,
//     and MaxInflight bounds concurrently-executing summarizer batch
//     calls — everything past the bound queues, and the queue depth is
//     the overload signal.
//
//   - Graceful degradation: when the ingest queue stays past its high
//     watermark (or the heap passes MemHighWater), the server enters
//     degraded mode and sheds load by probabilistic batch sampling —
//     keep 1 of every ShedKeepOneIn batches and compensate by scaling
//     the kept records' weights, so counts stay unbiased in expectation
//     while sketch-side work drops. This is the same contract as the
//     paper's count-with-exponential-decay: bounded resources, graceful
//     accuracy loss under pressure. Recovery has hysteresis: the queue
//     must stay at the low watermark for RecoveryWindow before the
//     server re-enters exact mode.
//
//   - Crash safety: snapshots are CRC-checksummed (heavykeeper
//     WriteSnapshot) generation files — keep-last-N, fsync'd, renamed
//     into place, directory-synced — and restore walks generations
//     newest to oldest past corrupt or torn files.
package server

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	heavykeeper "repro"
	"repro/internal/obs"
	"repro/wire"
)

// Config configures a Server. Empty listen addresses disable their
// listener; at least one of TCP/UDP/HTTP must be set. The zero value of
// every limit field selects a production-safe default; see each field.
type Config struct {
	// Summarizer receives every decoded arrival. It must be safe for
	// concurrent use (Concurrent, Sharded, Window). Required.
	Summarizer heavykeeper.Summarizer
	// TCPAddr is the stream-ingest listen address (e.g. ":4774" or
	// "127.0.0.1:0" for an ephemeral port).
	TCPAddr string
	// UDPAddr is the datagram-ingest listen address (one frame per
	// datagram).
	UDPAddr string
	// HTTPAddr is the query/metrics API listen address.
	HTTPAddr string

	// MaxConns caps concurrently-open stream-ingest connections; accepts
	// past the cap are counted (hkd_connections_rejected_total) and
	// closed. 0 selects the default (256); negative means unlimited.
	MaxConns int
	// IdleTimeout evicts a stream connection that delivers no complete
	// frame for this long, so stalled or silent peers cannot pin
	// connection slots. 0 disables idle eviction.
	IdleTimeout time.Duration
	// MaxInflight bounds summarizer batch calls executing at once;
	// arrivals past the bound queue, and the queue depth drives the
	// overload detector. 0 selects the default (2×GOMAXPROCS, min 4).
	MaxInflight int
	// DrainGrace is how long established ingest connections get to
	// finish in-flight frames at shutdown before their reads are
	// deadlined. 0 selects the default (1s); values outside [0, 10m]
	// are rejected with ErrInvalidDrainGrace.
	DrainGrace time.Duration

	// OverloadHighWater is the queued-batch depth that trips degraded
	// mode. 0 selects the default (4×MaxInflight, min 8).
	OverloadHighWater int
	// OverloadLowWater is the queue depth treated as recovered; the
	// queue must stay at or below it for RecoveryWindow before degraded
	// mode exits. 0 selects the default (OverloadHighWater/4, min 1).
	OverloadLowWater int
	// MemHighWater is a heap-bytes watermark (runtime HeapAlloc) that
	// also trips degraded mode. 0 disables the memory signal.
	MemHighWater uint64
	// ShedKeepOneIn is the sampling divisor while degraded: 1 of every
	// ShedKeepOneIn batches is kept and its records' weights are scaled
	// by ShedKeepOneIn to compensate, so estimates stay unbiased. 0
	// selects the default (4); 1 disables shedding (degraded mode then
	// only signals, never drops).
	ShedKeepOneIn int
	// RecoveryWindow is the sustained-calm hysteresis before degraded
	// mode exits. 0 selects the default (2s).
	RecoveryWindow time.Duration

	// SnapshotPath, when set, enables persistence: the summarizer is
	// snapshotted every SnapshotInterval and on Shutdown into
	// CRC-checksummed generation files next to this base path. The
	// summarizer must implement heavykeeper.SnapshotWriter.
	SnapshotPath string
	// SnapshotInterval is the periodic snapshot cadence (default 1m;
	// ignored without SnapshotPath).
	SnapshotInterval time.Duration
	// SnapshotKeep is how many snapshot generations to retain (default
	// 3). Older generations are pruned after each successful write.
	SnapshotKeep int

	// NewSummarizer builds the summarizer for a dynamically-admitted
	// tenant with report size k (callers get Config.Summarizer's K). It
	// must return instances that are safe for concurrent use, shaped like
	// the default summarizer so /config describes every tenant. Nil
	// disables dynamic tenants: only the default tenant exists, and v2
	// frames naming any other tenant are rejected.
	NewSummarizer func(k int) (heavykeeper.Summarizer, error)
	// MaxTenants caps live tenants, including the default. Admitting past
	// the cap evicts the least-recently-used dynamic tenant. 0 selects
	// the default (64); negative is rejected with ErrInvalidLimit.
	MaxTenants int
	// TenantMemoryBudget bounds the summed MemoryBytes of all dynamic
	// tenants; admission past the budget evicts LRU tenants until the new
	// one fits. 0 means unlimited.
	TenantMemoryBudget int

	// Tokens maps bearer tokens to tenant names. A non-empty table (or a
	// non-empty AdminToken) switches the server into authenticated mode:
	// HTTP requests need Authorization: Bearer, and TCP ingest
	// connections must open with a wire hello frame carrying a valid
	// token before any batch. Empty leaves the server open
	// (loopback/dev). Tokens are hot-rotated via SetTokens/AddToken/
	// RevokeToken or POST /config.
	Tokens map[string]string
	// AdminToken, when set, authorizes POST /config (hot reconfig) and
	// unscoped queries across tenants. It grants no ingest rights.
	AdminToken string

	// TLSCertFile/TLSKeyFile, when both set, wrap the TCP-ingest and
	// HTTP listeners in TLS. UDP ingest has no TLS framing; under
	// authenticated mode UDP datagrams are dropped anyway (no handshake
	// is possible), so secure deployments simply leave UDPAddr empty.
	TLSCertFile string
	TLSKeyFile  string

	// Info is echoed verbatim by the /config endpoint, so a client can
	// rebuild a twin summarizer (the hkbench verifier does).
	Info map[string]string
	// Logger receives structured operational logs. The server derives
	// component-scoped children (component=server|snapshot|tenant) from
	// it. Nil falls back to Logf; when both are nil logs are discarded.
	Logger *slog.Logger
	// Logf receives printf-style log lines when Logger is nil — the
	// legacy seam the test harnesses hook. Structured records are
	// rendered onto it as "level=... msg=... k=v" lines.
	Logf func(format string, args ...any)
	// RestoreDuration, when positive, is how long the pre-start snapshot
	// restore took (cmd/hkd times LoadSnapshot before the server exists)
	// and is recorded as one observation in the snapshot-load latency
	// histogram so /metrics covers the full snapshot lifecycle.
	RestoreDuration time.Duration
}

// Typed configuration errors; callers branch with errors.Is.
var (
	// ErrInvalidDrainGrace is returned by New for a DrainGrace outside
	// [0, 10m] — a negative grace is meaningless and an hours-long one
	// turns every restart into an outage.
	ErrInvalidDrainGrace = errors.New("server: drain grace must be between 0 and 10m")
	// ErrInvalidLimit is returned by New for a nonsensical admission or
	// shedding limit (negative MaxInflight, watermarks out of order, ...).
	ErrInvalidLimit = errors.New("server: invalid limit")
)

// maxDrainGrace bounds the configurable shutdown drain grace.
const maxDrainGrace = 10 * time.Minute

// counters is the server's monitoring block; all fields are atomics so
// the ingest paths never take a lock to count.
type counters struct {
	tcpFrames       atomic.Uint64
	udpFrames       atomic.Uint64
	records         atomic.Uint64
	tcpBytes        atomic.Uint64
	udpBytes        atomic.Uint64
	decodeErrors    atomic.Uint64
	transportErrors atomic.Uint64
	connsTotal      atomic.Uint64
	connsActive     atomic.Int64
	connsRejected   atomic.Uint64
	idleEvictions   atomic.Uint64
	udpOversized    atomic.Uint64
	udpTruncated    atomic.Uint64
	shedBatches     atomic.Uint64
	shedRecords     atomic.Uint64
	authFailures    atomic.Uint64
	udpAuthDropped  atomic.Uint64
	degradedEntries atomic.Uint64
	degradedExits   atomic.Uint64
	snapshots       atomic.Uint64
	snapshotErrs    atomic.Uint64
	snapshotServes  atomic.Uint64
	snapshotServeEr atomic.Uint64
}

// errProbe is the sentinel the snapshot-capability probe writer returns;
// seeing it back from WriteTo proves the summarizer got past its own
// capability checks and started writing.
var errProbe = errors.New("server: snapshot capability probe")

// probeWriter fails every write with errProbe.
type probeWriter struct{}

func (probeWriter) Write([]byte) (int, error) { return 0, errProbe }

// Server is one running hkd instance.
type Server struct {
	cfg       Config
	log       *slog.Logger // component=server
	snapLog   *slog.Logger // component=snapshot
	tenantLog *slog.Logger // component=tenant (reconfig, token rotation)
	started   time.Time
	obs       *serverObs

	tcpLn  net.Listener
	udpLn  net.PacketConn
	httpLn net.Listener
	httpSv *http.Server

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// Ingest backpressure: sem bounds concurrently-executing summarizer
	// calls; waiting counts arrivals blocked behind it (the queue depth
	// the overload detector watches).
	sem      chan struct{}
	waiting  atomic.Int64
	inflight atomic.Int64

	// Degradation state machine. degraded flips on synchronously when
	// the queue crosses the high watermark (or the monitor sees the
	// memory watermark crossed) and off in the monitor after the queue
	// has stayed at the low watermark for RecoveryWindow. lastOver is
	// the last instant overload was observed (unix nanos); degradedAt
	// is when the current episode began, feeding the dwell histogram.
	degraded   atomic.Bool
	lastOver   atomic.Int64
	degradedAt atomic.Int64
	shedTick   atomic.Uint64

	// Shutdown drain coordination: draining tells serveConn to stop
	// extending idle deadlines; drainBy (unix nanos) is the deadline it
	// re-asserts if it raced a SetReadDeadline against Shutdown.
	draining atomic.Bool
	drainBy  atomic.Int64

	wg       sync.WaitGroup
	stopSnap chan struct{}
	stopMon  chan struct{}
	ctr      counters

	snap *genStore

	// Multi-tenancy: reg holds per-tenant summarizers (the default
	// tenant wraps cfg.Summarizer), tokens is the hot-rotatable bearer
	// table, authRequired is fixed at construction — revoking every
	// token locks the server down, it never silently reopens it.
	reg          *registry
	tokens       *tokenTable
	authRequired bool
	tlsConf      *tls.Config

	// Test seams (package-internal): pollEvery paces the overload
	// monitor; tcpListen lets the chaos harness wrap the accept loop.
	pollEvery time.Duration
	tcpListen func(addr string) (net.Listener, error)
}

// New validates cfg and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Summarizer == nil {
		return nil, errors.New("server: Config.Summarizer is required")
	}
	// The ingest loops and HTTP handlers touch the summarizer from
	// separate goroutines; a bare TopK has no synchronization at all.
	// Callers that mean it should wrap it (heavykeeper.Synchronized).
	if _, bare := cfg.Summarizer.(*heavykeeper.TopK); bare {
		return nil, errors.New("server: bare *TopK is not safe for concurrent serving; wrap it with heavykeeper.Synchronized")
	}
	if cfg.TCPAddr == "" && cfg.UDPAddr == "" && cfg.HTTPAddr == "" {
		return nil, errors.New("server: no listen address configured")
	}
	switch {
	case cfg.DrainGrace == 0:
		cfg.DrainGrace = time.Second
	case cfg.DrainGrace < 0 || cfg.DrainGrace > maxDrainGrace:
		return nil, fmt.Errorf("%w: %v", ErrInvalidDrainGrace, cfg.DrainGrace)
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 256
	}
	switch {
	case cfg.MaxInflight == 0:
		cfg.MaxInflight = max(4, 2*runtime.GOMAXPROCS(0))
	case cfg.MaxInflight < 0:
		return nil, fmt.Errorf("%w: MaxInflight %d", ErrInvalidLimit, cfg.MaxInflight)
	}
	switch {
	case cfg.OverloadHighWater == 0:
		cfg.OverloadHighWater = max(8, 4*cfg.MaxInflight)
	case cfg.OverloadHighWater < 0:
		return nil, fmt.Errorf("%w: OverloadHighWater %d", ErrInvalidLimit, cfg.OverloadHighWater)
	}
	switch {
	case cfg.OverloadLowWater == 0:
		cfg.OverloadLowWater = max(1, cfg.OverloadHighWater/4)
	case cfg.OverloadLowWater < 0:
		return nil, fmt.Errorf("%w: OverloadLowWater %d", ErrInvalidLimit, cfg.OverloadLowWater)
	}
	if cfg.OverloadLowWater >= cfg.OverloadHighWater {
		return nil, fmt.Errorf("%w: OverloadLowWater %d must be below OverloadHighWater %d",
			ErrInvalidLimit, cfg.OverloadLowWater, cfg.OverloadHighWater)
	}
	switch {
	case cfg.ShedKeepOneIn == 0:
		cfg.ShedKeepOneIn = 4
	case cfg.ShedKeepOneIn < 0:
		return nil, fmt.Errorf("%w: ShedKeepOneIn %d", ErrInvalidLimit, cfg.ShedKeepOneIn)
	}
	if cfg.RecoveryWindow == 0 {
		cfg.RecoveryWindow = 2 * time.Second
	}
	if cfg.IdleTimeout < 0 {
		return nil, fmt.Errorf("%w: IdleTimeout %v", ErrInvalidLimit, cfg.IdleTimeout)
	}
	switch {
	case cfg.MaxTenants == 0:
		cfg.MaxTenants = 64
	case cfg.MaxTenants < 0:
		return nil, fmt.Errorf("%w: MaxTenants %d", ErrInvalidLimit, cfg.MaxTenants)
	}
	if cfg.TenantMemoryBudget < 0 {
		return nil, fmt.Errorf("%w: TenantMemoryBudget %d", ErrInvalidLimit, cfg.TenantMemoryBudget)
	}
	for tok, tenant := range cfg.Tokens {
		if tok == "" || tenant == "" {
			return nil, errors.New("server: Tokens entries need a non-empty token and tenant name")
		}
		if len(tok) > wire.MaxTokenLen {
			return nil, fmt.Errorf("server: token for tenant %q exceeds wire.MaxTokenLen", tenant)
		}
		if cfg.AdminToken != "" && tok == cfg.AdminToken {
			return nil, fmt.Errorf("server: tenant token for %q collides with AdminToken", tenant)
		}
		if tenant != DefaultTenant && cfg.NewSummarizer == nil {
			return nil, fmt.Errorf("server: token scoped to tenant %q requires Config.NewSummarizer", tenant)
		}
	}
	if (cfg.TLSCertFile == "") != (cfg.TLSKeyFile == "") {
		return nil, errors.New("server: TLSCertFile and TLSKeyFile must be set together")
	}
	var tlsConf *tls.Config
	if cfg.TLSCertFile != "" {
		cert, err := tls.LoadX509KeyPair(cfg.TLSCertFile, cfg.TLSKeyFile)
		if err != nil {
			return nil, fmt.Errorf("server: load TLS keypair: %w", err)
		}
		tlsConf = &tls.Config{Certificates: []tls.Certificate{cert}}
	}
	var snap *genStore
	if cfg.SnapshotPath != "" {
		// Every frontend type has a WriteTo method, but registry engines
		// reject it at call time — probe once now so a daemon that cannot
		// actually persist fails at startup, not at the first snapshot.
		// The probe writer fails on the first byte, so capability is
		// learned in O(1): a capable summarizer surfaces errProbe, an
		// incapable one its own error before writing anything.
		w, ok := cfg.Summarizer.(heavykeeper.SnapshotWriter)
		if !ok {
			return nil, fmt.Errorf("server: summarizer %T cannot snapshot", cfg.Summarizer)
		}
		if _, err := w.WriteTo(probeWriter{}); err != nil && !errors.Is(err, errProbe) {
			return nil, fmt.Errorf("server: summarizer cannot snapshot: %w", err)
		}
		if cfg.SnapshotInterval <= 0 {
			cfg.SnapshotInterval = time.Minute
		}
		if cfg.SnapshotKeep == 0 {
			cfg.SnapshotKeep = 3
		}
		if cfg.SnapshotKeep < 0 {
			return nil, fmt.Errorf("%w: SnapshotKeep %d", ErrInvalidLimit, cfg.SnapshotKeep)
		}
		var err error
		if snap, err = newGenStore(cfg.SnapshotPath, cfg.SnapshotKeep); err != nil {
			return nil, fmt.Errorf("server: snapshot store: %w", err)
		}
	}
	base := cfg.Logger
	if base == nil {
		base = obs.LogfLogger(cfg.Logf) // discards when Logf is nil too
	}
	sobs := newServerObs()
	if cfg.RestoreDuration > 0 {
		sobs.snapLoad.Observe(cfg.RestoreDuration)
	}
	return &Server{
		cfg:          cfg,
		log:          obs.Component(base, "server"),
		snapLog:      obs.Component(base, "snapshot"),
		tenantLog:    obs.Component(base, "tenant"),
		obs:          sobs,
		conns:        map[net.Conn]struct{}{},
		sem:          make(chan struct{}, cfg.MaxInflight),
		stopSnap:     make(chan struct{}),
		stopMon:      make(chan struct{}),
		snap:         snap,
		reg:          newRegistry(cfg.Summarizer, cfg.NewSummarizer, cfg.MaxTenants, cfg.TenantMemoryBudget),
		tokens:       newTokenTable(cfg.Tokens),
		authRequired: len(cfg.Tokens) > 0 || cfg.AdminToken != "",
		tlsConf:      tlsConf,
		pollEvery:    25 * time.Millisecond,
		tcpListen:    func(addr string) (net.Listener, error) { return net.Listen("tcp", addr) },
	}, nil
}

// AuthRequired reports whether the server was constructed in
// authenticated mode (tenant tokens or an admin token configured).
func (s *Server) AuthRequired() bool { return s.authRequired }

// Start binds the configured listeners and launches the ingest, API,
// overload-monitor and snapshot loops. It returns once everything is
// listening; use the Addr accessors to learn ephemeral ports.
func (s *Server) Start() error {
	s.started = time.Now()
	if s.cfg.TCPAddr != "" {
		ln, err := s.tcpListen(s.cfg.TCPAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("server: tcp listen: %w", err)
		}
		if s.tlsConf != nil {
			ln = tls.NewListener(ln, s.tlsConf)
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptLoop()
	}
	if s.cfg.UDPAddr != "" {
		ln, err := net.ListenPacket("udp", s.cfg.UDPAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("server: udp listen: %w", err)
		}
		s.udpLn = ln
		s.wg.Add(1)
		go s.udpLoop()
	}
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("server: http listen: %w", err)
		}
		if s.tlsConf != nil {
			ln = tls.NewListener(ln, s.tlsConf)
		}
		s.httpLn = ln
		s.httpSv = &http.Server{Handler: s.apiHandler()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.httpSv.Serve(ln); err != nil && err != http.ErrServerClosed {
				s.log.Error("http serve failed", "err", err)
			}
		}()
	}
	if s.cfg.SnapshotPath != "" {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	s.wg.Add(1)
	go s.monitorLoop()
	s.log.Info("listening",
		"tcp", addrString(s.TCPAddr()),
		"udp", addrString(s.UDPAddr()),
		"http", addrString(s.HTTPAddr()))
	return nil
}

// addrString renders a possibly-nil listener address for logging.
func addrString(a net.Addr) string {
	if a == nil {
		return ""
	}
	return a.String()
}

// TCPAddr returns the bound stream-ingest address (nil when disabled).
func (s *Server) TCPAddr() net.Addr {
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr()
}

// UDPAddr returns the bound datagram-ingest address (nil when disabled).
func (s *Server) UDPAddr() net.Addr {
	if s.udpLn == nil {
		return nil
	}
	return s.udpLn.LocalAddr()
}

// HTTPAddr returns the bound API address (nil when disabled).
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Degraded reports whether the server is currently shedding load.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// acceptLoop accepts stream-ingest connections until the listener
// closes, enforcing the MaxConns admission cap.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		if s.cfg.MaxConns > 0 && s.ctr.connsActive.Load() >= int64(s.cfg.MaxConns) {
			s.ctr.connsRejected.Add(1)
			conn.Close()
			continue
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.ctr.connsTotal.Add(1)
		s.ctr.connsActive.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// track registers conn for shutdown; reports false when shutting down.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn drains one stream-ingest connection: a frame at a time
// through the connection's own wire.Reader (whose buffers are reused, so
// the steady-state loop is allocation-free) into the bound tenant's
// summarizer batch path. A protocol violation terminates the connection
// — framing on a byte stream cannot resynchronize after corruption.
// With IdleTimeout configured, a peer that delivers no complete frame
// within the window is evicted, so slow or silent clients cannot pin
// connection slots.
//
// Tenant binding: under authenticated mode the first frame must be a
// hello carrying a valid tenant token; the connection is then bound to
// that tenant and every later frame must either omit the tenant id or
// name the bound one (a mismatch is an auth failure and closes the
// connection — tokens are capabilities scoped to exactly one
// namespace). In open mode frames route by their own tenant id, with
// unnamed and v1 frames landing in the default tenant.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.ctr.connsActive.Add(-1)
	defer s.untrack(conn)
	defer conn.Close()
	var bound *tenant
	r := wire.NewReader(&countingReader{r: conn, n: &s.ctr.tcpBytes})
	for {
		if idle := s.cfg.IdleTimeout; idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
			if s.draining.Load() {
				// Raced Shutdown's drain deadline: re-assert it, so the
				// drain grace always wins over the (longer) idle window.
				conn.SetReadDeadline(time.Unix(0, s.drainBy.Load()))
			}
		}
		batch, err := r.Next()
		if err != nil {
			if err != io.EOF {
				// A peer speaking garbage, a peer (or our own shutdown)
				// tearing the transport down, and an idle peer timing out
				// are different conditions; count them apart so the
				// protocol-violation metric stays honest.
				var ne net.Error
				switch {
				case errors.As(err, &ne) && ne.Timeout() && !s.draining.Load():
					s.ctr.idleEvictions.Add(1)
					s.log.Info("evicting idle connection", "remote", conn.RemoteAddr().String(), "idle", s.cfg.IdleTimeout)
				case isTransportError(err):
					s.ctr.transportErrors.Add(1)
					s.log.Warn("ingest transport error", "remote", conn.RemoteAddr().String(), "err", err)
				default:
					s.ctr.decodeErrors.Add(1)
					s.log.Warn("ingest decode error", "remote", conn.RemoteAddr().String(), "err", err)
				}
			}
			return
		}
		if batch.IsHello() {
			name, ok := s.tokens.lookup(batch.Token)
			if !ok {
				s.ctr.authFailures.Add(1)
				s.log.Warn("hello with unknown token, closing", "remote", conn.RemoteAddr().String())
				return
			}
			t, err := s.reg.resolve([]byte(name))
			if err != nil {
				s.ctr.authFailures.Add(1)
				s.log.Warn("hello tenant resolve failed, closing", "remote", conn.RemoteAddr().String(), "tenant", name, "err", err)
				return
			}
			bound = t
			continue
		}
		var t *tenant
		switch {
		case bound != nil:
			if len(batch.Tenant) != 0 && string(batch.Tenant) != bound.name {
				s.ctr.authFailures.Add(1)
				s.log.Warn("frame for foreign tenant on bound connection, closing",
					"remote", conn.RemoteAddr().String(), "tenant", string(batch.Tenant), "bound", bound.name)
				return
			}
			t = bound
		case s.authRequired:
			s.ctr.authFailures.Add(1)
			s.log.Warn("batch frame before hello on authenticated server, closing", "remote", conn.RemoteAddr().String())
			return
		default:
			if t, err = s.reg.resolve(batch.Tenant); err != nil {
				// Admission failure is a resource decision, not a protocol
				// violation: count it (registry-side) and drop the frame,
				// keeping the connection for frames that do resolve.
				s.log.Warn("tenant admission refused", "remote", conn.RemoteAddr().String(), "err", err)
				continue
			}
		}
		s.ctr.tcpFrames.Add(1)
		s.ingest(t, batch)
	}
}

// isTransportError reports whether err is a connection-level failure
// (reset, force-close, deadline, mid-frame EOF from a crashed peer)
// rather than a protocol violation in bytes that actually arrived.
func isTransportError(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// countingReader feeds bytes drained from one connection into the
// server-wide byte counter.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// udpLoop ingests one frame per datagram until the socket closes.
// Datagrams are independent, so a malformed one is counted and dropped
// without affecting its neighbors. The read buffer is sized one byte
// past the wire protocol's frame bound, so a datagram too large to be a
// valid frame is detected (the kernel would otherwise truncate it
// silently into a plausible-looking decode error) and counted apart
// from decode corruption, as are torn (truncated) datagrams.
func (s *Server) udpLoop() {
	defer s.wg.Done()
	buf := make([]byte, wire.MaxFrameLen+1)
	var batch wire.Batch
	for {
		n, _, err := s.udpLn.ReadFrom(buf)
		if err != nil {
			return // socket closed by Shutdown
		}
		if s.authRequired {
			// Datagrams carry no handshake, so an authenticated server
			// cannot attribute them to a principal; they are dropped and
			// counted rather than laundered into the default tenant.
			s.ctr.udpAuthDropped.Add(1)
			continue
		}
		if n > wire.MaxFrameLen {
			s.ctr.udpOversized.Add(1)
			continue
		}
		if err := wire.DecodeDatagram(buf[:n], &batch); err != nil {
			switch {
			case errors.Is(err, wire.ErrOversize):
				s.ctr.udpOversized.Add(1)
			case errors.Is(err, wire.ErrTruncated):
				s.ctr.udpTruncated.Add(1)
			default:
				s.ctr.decodeErrors.Add(1)
			}
			continue
		}
		if batch.IsHello() {
			// A hello only makes sense on a stream; over UDP it binds
			// nothing and is dropped as a protocol misuse.
			s.ctr.decodeErrors.Add(1)
			continue
		}
		t, err := s.reg.resolve(batch.Tenant)
		if err != nil {
			s.log.Warn("udp tenant admission refused", "err", err)
			continue
		}
		s.ctr.udpFrames.Add(1)
		s.ctr.udpBytes.Add(uint64(n))
		s.ingest(t, &batch)
	}
}

// ingest feeds one decoded batch to t's summarizer through the bounded
// inflight semaphore: the batched path for unit weights, per-record AddN
// for weighted frames. While degraded, batches are sampled — 1 of every
// ShedKeepOneIn is kept with its weights scaled by ShedKeepOneIn, the
// rest are counted and dropped before any summarizer work. Shedding is
// strictly batch-granular: the per-packet hot path under AddBatch is
// never touched. The tenant's audit counters account for every frame
// that reaches this point, shed or kept — the audit trail answers "who
// sent what", not "what survived sampling".
func (s *Server) ingest(t *tenant, b *wire.Batch) {
	t.frames.Add(1)
	t.records.Add(uint64(len(b.Keys)))
	t.touch()
	scale := uint64(1)
	if s.degraded.Load() && s.cfg.ShedKeepOneIn > 1 {
		if !s.keepBatch() {
			s.ctr.shedBatches.Add(1)
			s.ctr.shedRecords.Add(uint64(len(b.Keys)))
			return
		}
		scale = uint64(s.cfg.ShedKeepOneIn)
	}
	sum := t.summarizer()
	// Batch-granular latency: queue wait plus the summarizer call. One
	// clock read and a few atomic adds per batch — the per-key loop
	// under AddBatch stays untouched.
	start := time.Now()
	select {
	case s.sem <- struct{}{}:
	default:
		// Contended: we are the queue. Crossing the high watermark here
		// (rather than waiting for the monitor tick) makes overload entry
		// immediate and deterministic.
		if w := s.waiting.Add(1); w >= int64(s.cfg.OverloadHighWater) {
			s.lastOver.Store(time.Now().UnixNano())
			s.enterDegraded(w)
		}
		s.sem <- struct{}{}
		s.waiting.Add(-1)
	}
	s.inflight.Add(1)
	switch {
	case scale > 1:
		if len(b.Weights) == 0 {
			for _, key := range b.Keys {
				sum.AddN(key, scale)
			}
		} else {
			for i, key := range b.Keys {
				sum.AddN(key, b.Weights[i]*scale)
			}
		}
	case len(b.Weights) == 0:
		sum.AddBatch(b.Keys)
	default:
		for i, key := range b.Keys {
			sum.AddN(key, b.Weights[i])
		}
	}
	s.inflight.Add(-1)
	<-s.sem
	s.obs.ingestBatch.Observe(time.Since(start))
	s.ctr.records.Add(uint64(len(b.Keys)))
}

// keepBatch is the degraded-mode sampling decision: a lock-free
// pseudo-random draw (SplitMix64 finalizer over a global tick) keeping 1
// of every ShedKeepOneIn batches. Deterministic for a given arrival
// order, unbiased across interleavings.
func (s *Server) keepBatch() bool {
	tick := s.shedTick.Add(1)
	return mix64(tick^shedSeed)%uint64(s.cfg.ShedKeepOneIn) == 0
}

// shedSeed decorrelates the shedding draw from the tick sequence.
const shedSeed = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 finalizer: a cheap, high-quality 64-bit mix.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// enterDegraded flips the server into degraded mode once per episode.
func (s *Server) enterDegraded(queue int64) {
	if s.degraded.CompareAndSwap(false, true) {
		s.degradedAt.Store(time.Now().UnixNano())
		s.ctr.degradedEntries.Add(1)
		s.log.Warn("entering degraded mode",
			"queue", queue,
			"high_water", s.cfg.OverloadHighWater,
			"shed", s.cfg.ShedKeepOneIn-1,
			"of", s.cfg.ShedKeepOneIn)
	}
}

// exitDegraded returns the server to exact mode once per episode and
// records how long the episode lasted.
func (s *Server) exitDegraded() {
	if s.degraded.CompareAndSwap(true, false) {
		dwell := time.Duration(0)
		if at := s.degradedAt.Load(); at != 0 {
			dwell = time.Since(time.Unix(0, at))
		}
		s.obs.degradedDwell.Observe(dwell)
		s.ctr.degradedExits.Add(1)
		s.log.Info("recovered, exiting degraded mode", "dwell", dwell)
	}
}

// monitorLoop is the overload state machine's clock: it watches the
// ingest queue depth (and, when configured, the heap watermark), refreshes
// the last-overloaded instant while pressure persists, and exits degraded
// mode after the queue has stayed at the low watermark for RecoveryWindow.
func (s *Server) monitorLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.pollEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopMon:
			return
		case <-t.C:
			now := time.Now()
			w := s.waiting.Load()
			over := w >= int64(s.cfg.OverloadHighWater)
			if !over && s.cfg.MemHighWater > 0 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc >= s.cfg.MemHighWater {
					over = true
					s.log.Warn("heap past watermark", "heap_bytes", ms.HeapAlloc, "watermark", s.cfg.MemHighWater)
				}
			}
			switch {
			case over:
				s.lastOver.Store(now.UnixNano())
				s.enterDegraded(w)
			case s.degraded.Load():
				if w > int64(s.cfg.OverloadLowWater) {
					// Still above the recovery watermark: not calm yet.
					s.lastOver.Store(now.UnixNano())
				} else if now.Sub(time.Unix(0, s.lastOver.Load())) >= s.cfg.RecoveryWindow {
					s.exitDegraded()
				}
			}
		}
	}
}

// snapshotLoop writes periodic snapshots until Shutdown.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Snapshot(); err != nil {
				s.snapLog.Error("periodic snapshot failed", "err", err)
			}
		case <-s.stopSnap:
			return
		}
	}
}

// Snapshot writes the summarizer as a new CRC-checksummed snapshot
// generation (temp file, fsync, rename, directory fsync) and prunes
// generations past SnapshotKeep. A failed write never disturbs existing
// generations, so the newest intact generation always survives. Safe to
// call concurrently and from signal handlers (SIGHUP in hkd).
func (s *Server) Snapshot() error {
	if s.snap == nil {
		return errors.New("server: no snapshot path configured")
	}
	// The default tenant's summarizer, not cfg.Summarizer: grow_k may
	// have swapped in a larger instance since construction. The factory
	// produces instances shaped like the original (probed in New), but a
	// hostile factory could not, so the assertion stays checked.
	w, ok := s.reg.def.summarizer().(heavykeeper.SnapshotWriter)
	if !ok {
		s.ctr.snapshotErrs.Add(1)
		return fmt.Errorf("server: summarizer %T cannot snapshot", s.reg.def.summarizer())
	}
	start := time.Now()
	if err := s.snap.write(w); err != nil {
		s.ctr.snapshotErrs.Add(1)
		return err
	}
	d := time.Since(start)
	s.obs.snapWrite.Observe(d)
	s.ctr.snapshots.Add(1)
	s.snapLog.Debug("snapshot generation written", "duration_us", d.Microseconds())
	return nil
}

// Shutdown stops the server: listeners close immediately (no new
// connections or datagrams), established ingest connections get a short
// read-deadline grace (Config.DrainGrace, clipped to ctx's deadline) to
// finish in-flight frames before being force-closed, the HTTP server
// shuts down gracefully, and — when persistence is configured — a final
// snapshot generation is written. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.stopSnap)
	close(s.stopMon)
	s.closeListeners()

	// An idle collector connection never drains "naturally" — it just
	// blocks in a read between frame bursts. A short read deadline lets a
	// conn that is mid-burst finish its current frames while an idle one
	// errors out immediately, so routine restarts don't burn the whole
	// grace period.
	drainBy := time.Now().Add(s.cfg.DrainGrace)
	if dl, ok := ctx.Deadline(); ok && dl.Before(drainBy) {
		drainBy = dl
	}
	s.drainBy.Store(drainBy.UnixNano())
	s.draining.Store(true)
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(drainBy)
	}
	s.mu.Unlock()

	var httpErr error
	if s.httpSv != nil {
		httpErr = s.httpSv.Shutdown(ctx)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Grace expired: sever the stragglers and wait for their handlers.
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}

	var snapErr error
	if s.snap != nil {
		snapErr = s.Snapshot()
	}
	if snapErr != nil {
		return snapErr
	}
	return httpErr
}

// closeListeners closes whichever listeners are open.
func (s *Server) closeListeners() {
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	if s.udpLn != nil {
		s.udpLn.Close()
	}
	if s.httpLn != nil {
		s.httpLn.Close()
	}
}
