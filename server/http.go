package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	heavykeeper "repro"
	"repro/internal/metrics"
)

// StatsSchemaVersion is the schema_version stamped into the /stats and
// /healthz JSON documents (and mirrored by the aggregator), so SDK
// decoding can evolve without breaking against older daemons.
const StatsSchemaVersion = 2

// The HTTP API. All responses are JSON except /metrics (Prometheus text
// exposition format) and /healthz (plain "ok"). Flow identifiers are
// opaque bytes, so they travel hex-encoded in the id fields.
//
//	GET  /topk?n=K      top-n (default k) flows, descending estimate
//	GET  /query?id=HEX  point estimate for one flow (or ?key=STR raw)
//	GET  /stats         engine + server counters (schema-versioned)
//	GET  /indexstats    open-addressed store index stats (when surfaced)
//	GET  /config        construction parameters (Config.Info echo)
//	POST /config        hot reconfig (grow k, rotate epoch, tokens, tenants)
//	GET  /snapshot      checksummed HKC1 snapshot stream (aggregator pull)
//	GET  /healthz       liveness JSON; 503 + Retry-After while degraded
//	GET  /metrics       Prometheus text
//
// Tenancy and auth: query endpoints accept ?tenant=NAME. On an
// authenticated server every request (except /healthz and /metrics,
// which stay open for probes and scrapes) needs Authorization: Bearer
// with a tenant-scoped token — the token alone selects the tenant, and
// a ?tenant naming anyone else is a 403. The admin token may query any
// tenant and is the only principal allowed to POST /config. Errors are
// JSON documents {"error": ..., "code": ...}; the client SDK maps the
// code field onto its typed error families.
func (s *Server) apiHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topk", s.handleTopK)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /indexstats", s.handleIndexStats)
	mux.HandleFunc("GET /config", s.handleConfig)
	mux.HandleFunc("POST /config", s.handleReconfig)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// withObs sits outermost so every request — including ones auth
	// rejects — gets an echoed X-Request-Id, a latency observation and
	// an access-log line.
	return s.withObs(s.withAuth(mux))
}

// healthzResponse is the /healthz document.
type healthzResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Status        string `json:"status"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// While degraded the daemon is alive and answering but shedding:
	// 503 plus Retry-After gives load balancers and the cluster
	// aggregator's health machine standard semantics, and the body
	// still tells humans (and the SDK) which state they hit.
	if s.degraded.Load() {
		retry := int64(s.cfg.RecoveryWindow / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(retry, 10))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(healthzResponse{SchemaVersion: StatsSchemaVersion, Status: "degraded"})
		return
	}
	writeJSON(w, healthzResponse{SchemaVersion: StatsSchemaVersion, Status: "ok"})
}

// apiError is the JSON error document; Code is machine-readable and
// stable (the SDK switches on it), Error is for humans.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: msg, Code: code})
}

// authInfo is what the auth middleware established about a request.
type authInfo struct {
	tenant string // tenant the bearer token is scoped to ("" for admin)
	admin  bool
}

type authCtxKey struct{}

// withAuth enforces bearer-token auth on every endpoint except /healthz
// and /metrics (liveness probes and scrapers run unauthenticated by
// convention; neither exposes per-flow data beyond what an operator
// dashboard needs). On an open server it is a pass-through.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.authRequired || r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		tok, ok := bearerToken(r)
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="hkd"`)
			writeError(w, http.StatusUnauthorized, "unauthorized", "missing bearer token")
			return
		}
		info := authInfo{}
		switch name, known := s.tokens.lookup([]byte(tok)); {
		case s.cfg.AdminToken != "" && tok == s.cfg.AdminToken:
			info.admin = true
		case known:
			info.tenant = name
		default:
			s.ctr.authFailures.Add(1)
			writeError(w, http.StatusUnauthorized, "unauthorized", "unknown or revoked token")
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), authCtxKey{}, info)))
	})
}

func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return h[len(prefix):], true
}

// requestTenant resolves which tenant a query request addresses,
// combining the ?tenant parameter with what auth established. It writes
// the error response itself and reports ok=false when the request must
// not proceed.
func (s *Server) requestTenant(w http.ResponseWriter, r *http.Request) (*tenant, bool) {
	name := r.URL.Query().Get("tenant")
	if info, authed := r.Context().Value(authCtxKey{}).(authInfo); authed && !info.admin {
		if name != "" && name != info.tenant {
			writeError(w, http.StatusForbidden, "forbidden", "token is not scoped to tenant "+strconv.Quote(name))
			return nil, false
		}
		// Resolve (admitting if needed) rather than get: a tenant whose
		// token is valid may query before its first frame arrives.
		t, err := s.reg.resolve([]byte(info.tenant))
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
			return nil, false
		}
		return t, true
	}
	// Admin or open server: ?tenant selects, default otherwise. Querying
	// a tenant that was never admitted is a 404, not an admission.
	t, ok := s.reg.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown tenant "+strconv.Quote(name))
		return nil, false
	}
	return t, true
}

// flowJSON is one reported flow on the wire: the identifier hex-encoded.
type flowJSON struct {
	ID    string `json:"id"`
	Count uint64 `json:"count"`
}

// topKResponse is the /topk document.
type topKResponse struct {
	K     int        `json:"k"`
	Flows []flowJSON `json:"flows"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	t, ok := s.requestTenant(w, r)
	if !ok {
		return
	}
	t.touch()
	sum := t.summarizer()
	n := sum.K()
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad_request", "n must be a positive integer")
			return
		}
		n = v
	}
	flows := sum.List()
	if len(flows) > n {
		flows = flows[:n]
	}
	resp := topKResponse{K: sum.K(), Flows: make([]flowJSON, len(flows))}
	for i, f := range flows {
		resp.Flows[i] = flowJSON{ID: hex.EncodeToString(f.ID), Count: f.Count}
	}
	writeJSON(w, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, ok := s.requestTenant(w, r)
	if !ok {
		return
	}
	t.touch()
	q := r.URL.Query()
	var key []byte
	switch {
	case q.Get("id") != "":
		b, err := hex.DecodeString(q.Get("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "id must be hex")
			return
		}
		key = b
	case q.Get("key") != "":
		key = []byte(q.Get("key"))
	default:
		writeError(w, http.StatusBadRequest, "bad_request", "provide ?id=HEX or ?key=STRING")
		return
	}
	writeJSON(w, flowJSON{ID: hex.EncodeToString(key), Count: t.summarizer().Query(key)})
}

// handleSnapshot streams the daemon's sketch state as a CRC-checksummed
// HKC1 snapshot envelope — the cluster aggregator's collection surface.
// By default it serves the newest on-disk generation whose checksum
// verifies end to end (integrity-gated with heavykeeper.VerifySnapshot
// before a single byte is shipped, and immutable once renamed into place,
// so serving never holds engine locks for the duration of a network
// write). With ?live=1, or when no intact generation exists (persistence
// disabled, or nothing written yet), it serializes the summarizer now
// into memory and serves that instead. The reader re-verifies the CRC
// chain on its side; together the two checks authenticate the transfer
// end to end.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	t, ok := s.requestTenant(w, r)
	if !ok {
		return
	}
	t.touch()
	live := r.URL.Query().Get("live") != ""
	// On-disk generations hold only the default tenant's state; any other
	// tenant is always serialized live.
	if t != s.reg.def {
		live = true
	}
	if s.snap != nil && !live {
		verifyStart := time.Now()
		gen, err := s.snap.newestIntact()
		s.obs.snapVerify.Observe(time.Since(verifyStart))
		if err == nil {
			f, err := os.Open(gen.path)
			if err == nil {
				defer f.Close()
				if fi, err := f.Stat(); err == nil {
					w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
				}
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set("X-Snapshot-Source", "generation")
				w.Header().Set("X-Snapshot-Seq", strconv.FormatUint(gen.seq, 10))
				if _, err := io.Copy(w, f); err != nil {
					// Client gone or disk fault mid-stream; the truncated
					// body fails the reader's CRC check.
					s.ctr.snapshotServeEr.Add(1)
					return
				}
				s.ctr.snapshotServes.Add(1)
				return
			}
		}
		// No intact generation: fall through to a live serialization.
	}
	sw, ok := t.summarizer().(heavykeeper.SnapshotWriter)
	if !ok {
		s.ctr.snapshotServeEr.Add(1)
		writeError(w, http.StatusNotImplemented, "not_implemented", "summarizer has no snapshot format")
		return
	}
	var buf bytes.Buffer
	if _, err := heavykeeper.WriteSnapshot(&buf, sw); err != nil {
		s.ctr.snapshotServeEr.Add(1)
		if errors.Is(err, heavykeeper.ErrSnapshotUnsupported) {
			writeError(w, http.StatusNotImplemented, "not_implemented", "summarizer has no snapshot format")
			return
		}
		writeError(w, http.StatusInternalServerError, "internal", "snapshot serialization failed")
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snapshot-Source", "live")
	if _, err := buf.WriteTo(w); err != nil {
		s.ctr.snapshotServeEr.Add(1)
		return
	}
	s.ctr.snapshotServes.Add(1)
}

// statsResponse is the /stats document: engine event counters for the
// addressed tenant plus the server's own (global) ingest counters. The
// per-tenant roster appears only for the admin or an open server — a
// tenant-scoped token must not learn who else is being served.
type statsResponse struct {
	SchemaVersion int               `json:"schema_version"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Tenant        string            `json:"tenant"`
	K             int               `json:"k"`
	MemoryBytes   int               `json:"memory_bytes"`
	Engine        heavykeeper.Stats `json:"engine"`
	Server        serverCounters    `json:"server"`
	Latency       *latencyStats     `json:"latency,omitempty"`
	Window        *windowInfo       `json:"window,omitempty"`
	Tenants       []tenantStats     `json:"tenants,omitempty"`
}

// tenantStats is one tenant's audit line in /stats.
type tenantStats struct {
	Name        string `json:"name"`
	K           int    `json:"k"`
	MemoryBytes int    `json:"memory_bytes"`
	Frames      uint64 `json:"frames"`
	Records     uint64 `json:"records"`
}

type serverCounters struct {
	TCPFrames       uint64 `json:"tcp_frames"`
	UDPFrames       uint64 `json:"udp_frames"`
	Records         uint64 `json:"records"`
	TCPBytes        uint64 `json:"tcp_bytes"`
	UDPBytes        uint64 `json:"udp_bytes"`
	DecodeErrors    uint64 `json:"decode_errors"`
	TransportErrors uint64 `json:"transport_errors"`
	ConnsTotal      uint64 `json:"conns_total"`
	ConnsActive     int64  `json:"conns_active"`
	ConnsRejected   uint64 `json:"conns_rejected"`
	IdleEvictions   uint64 `json:"idle_evictions"`
	UDPOversized    uint64 `json:"udp_oversized"`
	UDPTruncated    uint64 `json:"udp_truncated"`
	QueueDepth      int64  `json:"queue_depth"`
	Inflight        int64  `json:"inflight"`
	Degraded        bool   `json:"degraded"`
	DegradedEntries uint64 `json:"degraded_entries"`
	DegradedExits   uint64 `json:"degraded_exits"`
	ShedBatches     uint64 `json:"shed_batches"`
	ShedRecords     uint64 `json:"shed_records"`
	AuthFailures    uint64 `json:"auth_failures"`
	UDPAuthDropped  uint64 `json:"udp_auth_dropped"`
	TenantsActive   int    `json:"tenants_active"`
	TenantsAdmitted uint64 `json:"tenants_admitted"`
	TenantEvictions uint64 `json:"tenant_evictions"`
	TenantRejected  uint64 `json:"tenant_rejected"`
	Snapshots       uint64 `json:"snapshots"`
	SnapshotErrors  uint64 `json:"snapshot_errors"`
	SnapshotServes  uint64 `json:"snapshot_serves"`
	SnapshotServeEr uint64 `json:"snapshot_serve_errors"`
}

// windowInfo reports the epoch shape when the summarizer is a Window.
type windowInfo struct {
	WindowSize int    `json:"window_size"`
	Rotations  uint64 `json:"rotations"`
}

func (s *Server) counterSnapshot() serverCounters {
	return serverCounters{
		TCPFrames:       s.ctr.tcpFrames.Load(),
		UDPFrames:       s.ctr.udpFrames.Load(),
		Records:         s.ctr.records.Load(),
		TCPBytes:        s.ctr.tcpBytes.Load(),
		UDPBytes:        s.ctr.udpBytes.Load(),
		DecodeErrors:    s.ctr.decodeErrors.Load(),
		TransportErrors: s.ctr.transportErrors.Load(),
		ConnsTotal:      s.ctr.connsTotal.Load(),
		ConnsActive:     s.ctr.connsActive.Load(),
		ConnsRejected:   s.ctr.connsRejected.Load(),
		IdleEvictions:   s.ctr.idleEvictions.Load(),
		UDPOversized:    s.ctr.udpOversized.Load(),
		UDPTruncated:    s.ctr.udpTruncated.Load(),
		QueueDepth:      s.waiting.Load(),
		Inflight:        s.inflight.Load(),
		Degraded:        s.degraded.Load(),
		DegradedEntries: s.ctr.degradedEntries.Load(),
		DegradedExits:   s.ctr.degradedExits.Load(),
		ShedBatches:     s.ctr.shedBatches.Load(),
		ShedRecords:     s.ctr.shedRecords.Load(),
		AuthFailures:    s.ctr.authFailures.Load(),
		UDPAuthDropped:  s.ctr.udpAuthDropped.Load(),
		TenantsActive:   s.reg.count(),
		TenantsAdmitted: s.reg.admitted.Load(),
		TenantEvictions: s.reg.evictions.Load(),
		TenantRejected:  s.reg.rejected.Load(),
		Snapshots:       s.ctr.snapshots.Load(),
		SnapshotErrors:  s.ctr.snapshotErrs.Load(),
		SnapshotServes:  s.ctr.snapshotServes.Load(),
		SnapshotServeEr: s.ctr.snapshotServeEr.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.requestTenant(w, r)
	if !ok {
		return
	}
	sum := t.summarizer()
	resp := statsResponse{
		SchemaVersion: StatsSchemaVersion,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Tenant:        t.name,
		K:             sum.K(),
		MemoryBytes:   sum.MemoryBytes(),
		Engine:        sum.Stats(),
		Server:        s.counterSnapshot(),
		Latency:       s.obs.latencyStats(),
	}
	if win, ok := sum.(*heavykeeper.Window); ok {
		resp.Window = &windowInfo{WindowSize: win.WindowSize(), Rotations: win.Rotations()}
	}
	// Open requests and the admin token see the full tenant roster; a
	// tenant-scoped token sees only its own audit line (its existence is
	// no secret to itself, and senders need their own drain progress).
	if info, authed := r.Context().Value(authCtxKey{}).(authInfo); !authed || info.admin {
		for _, tn := range s.reg.snapshot() {
			tsum := tn.summarizer()
			resp.Tenants = append(resp.Tenants, tenantStats{
				Name:        tn.name,
				K:           tsum.K(),
				MemoryBytes: tsum.MemoryBytes(),
				Frames:      tn.frames.Load(),
				Records:     tn.records.Load(),
			})
		}
	} else {
		resp.Tenants = []tenantStats{{
			Name:        t.name,
			K:           sum.K(),
			MemoryBytes: sum.MemoryBytes(),
			Frames:      t.frames.Load(),
			Records:     t.records.Load(),
		}}
	}
	writeJSON(w, resp)
}

// indexStatsResponse is the /indexstats document. Available reports
// whether the configured store surfaces an open-addressed index at all;
// every frontend answers uniformly through StoreIndexReporter, so this
// handler never switches on the concrete summarizer type.
type indexStatsResponse struct {
	Available bool                         `json:"available"`
	Stats     *heavykeeper.StoreIndexStats `json:"stats,omitempty"`
}

func (s *Server) handleIndexStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.requestTenant(w, r)
	if !ok {
		return
	}
	resp := indexStatsResponse{}
	if rep, ok := t.summarizer().(heavykeeper.StoreIndexReporter); ok {
		if st, ok := rep.StoreIndexStats(); ok {
			resp.Available = true
			resp.Stats = &st
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	t, ok := s.requestTenant(w, r)
	if !ok {
		return
	}
	info := map[string]string{}
	for k, v := range s.cfg.Info {
		info[k] = v
	}
	// k reflects the addressed tenant's current summarizer — grow_k may
	// have raised it past the construction-time value in Info.
	info["k"] = strconv.Itoa(t.summarizer().K())
	info["tenant"] = t.name
	writeJSON(w, info)
}

// handleMetrics renders the Prometheus text exposition built on
// internal/metrics.PromText: server ingest counters, engine event
// counters and store index gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	sum := s.reg.def.summarizer()
	ctr := s.counterSnapshot()
	var p metrics.PromText

	p.Gauge("hkd_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
	p.CounterLabeled("hkd_ingest_frames_total", "Wire frames ingested.",
		map[string]string{"transport": "tcp"}, float64(ctr.TCPFrames))
	p.CounterLabeled("hkd_ingest_frames_total", "Wire frames ingested.",
		map[string]string{"transport": "udp"}, float64(ctr.UDPFrames))
	p.CounterLabeled("hkd_ingest_bytes_total", "Wire bytes ingested.",
		map[string]string{"transport": "tcp"}, float64(ctr.TCPBytes))
	p.CounterLabeled("hkd_ingest_bytes_total", "Wire bytes ingested.",
		map[string]string{"transport": "udp"}, float64(ctr.UDPBytes))
	p.Counter("hkd_ingest_records_total", "Arrival records ingested.", float64(ctr.Records))
	p.Counter("hkd_decode_errors_total", "Malformed frames or datagrams rejected.", float64(ctr.DecodeErrors))
	p.Counter("hkd_transport_errors_total", "Ingest connections lost to resets, deadlines or force-close.", float64(ctr.TransportErrors))
	p.CounterLabeled("hkd_udp_dropped_total", "Datagrams dropped before decode.",
		map[string]string{"reason": "oversized"}, float64(ctr.UDPOversized))
	p.CounterLabeled("hkd_udp_dropped_total", "Datagrams dropped before decode.",
		map[string]string{"reason": "truncated"}, float64(ctr.UDPTruncated))
	p.Counter("hkd_connections_total", "Stream-ingest connections accepted.", float64(ctr.ConnsTotal))
	p.Gauge("hkd_connections_active", "Stream-ingest connections open now.", float64(ctr.ConnsActive))
	p.Counter("hkd_connections_rejected_total", "Connections refused at the MaxConns admission cap.", float64(ctr.ConnsRejected))
	p.Counter("hkd_idle_evictions_total", "Stream connections evicted for idling past IdleTimeout.", float64(ctr.IdleEvictions))
	p.Gauge("hkd_ingest_queue_depth", "Batches queued behind the inflight bound right now.", float64(ctr.QueueDepth))
	p.Gauge("hkd_ingest_inflight", "Summarizer batch calls executing right now.", float64(ctr.Inflight))
	degraded := 0.0
	if ctr.Degraded {
		degraded = 1
	}
	p.Gauge("hkd_degraded", "1 while the server is shedding load, else 0.", degraded)
	p.Counter("hkd_degraded_entries_total", "Transitions into degraded mode.", float64(ctr.DegradedEntries))
	p.Counter("hkd_degraded_exits_total", "Recoveries out of degraded mode.", float64(ctr.DegradedExits))
	p.Counter("hkd_shed_batches_total", "Batches dropped by degraded-mode sampling.", float64(ctr.ShedBatches))
	p.Counter("hkd_shed_records_total", "Records inside shed batches.", float64(ctr.ShedRecords))
	p.Counter("hkd_auth_failures_total", "Requests and frames rejected for bad or missing credentials.", float64(ctr.AuthFailures))
	p.Counter("hkd_udp_auth_dropped_total", "Datagrams dropped because authenticated mode cannot attribute them.", float64(ctr.UDPAuthDropped))
	p.Gauge("hkd_tenants_active", "Tenants live in the registry.", float64(ctr.TenantsActive))
	p.Counter("hkd_tenants_admitted_total", "Dynamic tenants admitted.", float64(ctr.TenantsAdmitted))
	p.Counter("hkd_tenant_evictions_total", "Tenants evicted (LRU or explicit).", float64(ctr.TenantEvictions))
	p.Counter("hkd_tenant_rejected_total", "Tenant admissions refused at the limits.", float64(ctr.TenantRejected))
	for _, tn := range s.reg.snapshot() {
		lbl := map[string]string{"tenant": tn.name}
		p.CounterLabeled("hkd_tenant_frames_total", "Wire frames ingested per tenant.", lbl, float64(tn.frames.Load()))
		p.CounterLabeled("hkd_tenant_records_total", "Arrival records ingested per tenant.", lbl, float64(tn.records.Load()))
		p.GaugeLabeled("hkd_tenant_memory_bytes", "Logical summarizer footprint per tenant.", lbl, float64(tn.summarizer().MemoryBytes()))
	}
	p.Counter("hkd_snapshots_total", "Snapshots written.", float64(ctr.Snapshots))
	p.Counter("hkd_snapshot_errors_total", "Snapshot attempts that failed.", float64(ctr.SnapshotErrors))
	p.Counter("hkd_snapshot_serves_total", "GET /snapshot responses streamed successfully.", float64(ctr.SnapshotServes))
	p.Counter("hkd_snapshot_serve_errors_total", "GET /snapshot requests that failed.", float64(ctr.SnapshotServeEr))

	st := sum.Stats()
	p.Counter("hkd_engine_packets_total", "Arrivals the engine processed.", float64(st.Packets))
	p.Counter("hkd_engine_increments_total", "Matching-fingerprint counter increments.", float64(st.Increments))
	p.Counter("hkd_engine_decays_total", "Successful counter decays.", float64(st.Decays))
	p.Counter("hkd_engine_replacements_total", "Bucket ownership replacements.", float64(st.Replacements))
	p.Counter("hkd_engine_expansions_total", "Auto-expansion events.", float64(st.Expansions))
	p.Gauge("hkd_summary_k", "Configured report size.", float64(sum.K()))
	p.Gauge("hkd_summary_memory_bytes", "Logical memory footprint.", float64(sum.MemoryBytes()))

	if r, ok := sum.(heavykeeper.StoreIndexReporter); ok {
		if ix, ok := r.StoreIndexStats(); ok {
			p.Gauge("hkd_store_index_slots", "Store index table size.", float64(ix.TableSize))
			p.Gauge("hkd_store_index_occupied", "Store index live slots.", float64(ix.Occupied))
			p.Gauge("hkd_store_index_max_probe", "Worst current probe displacement.", float64(ix.MaxProbe))
			if ix.TableSize > 0 {
				p.Gauge("hkd_store_index_load", "Store index occupancy fraction (occupied/slots).",
					float64(ix.Occupied)/float64(ix.TableSize))
			}
		}
	}

	s.obs.promHistograms(&p)
	s.obs.promRuntime(&p)

	w.Header().Set("Content-Type", metrics.ContentType)
	p.WriteTo(w)
}
