package server

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	heavykeeper "repro"
	"repro/internal/metrics"
)

// The HTTP API. All responses are JSON except /metrics (Prometheus text
// exposition format) and /healthz (plain "ok"). Flow identifiers are
// opaque bytes, so they travel hex-encoded in the id fields.
//
//	GET /topk?n=K      top-n (default k) flows, descending estimate
//	GET /query?id=HEX  point estimate for one flow (or ?key=STR raw)
//	GET /stats         engine + server counters
//	GET /indexstats    open-addressed store index stats (when surfaced)
//	GET /config        construction parameters (Config.Info echo)
//	GET /snapshot      checksummed HKC1 snapshot stream (aggregator pull)
//	GET /healthz       liveness; 503 + Retry-After while degraded
//	GET /metrics       Prometheus text
func (s *Server) apiHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topk", s.handleTopK)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /indexstats", s.handleIndexStats)
	mux.HandleFunc("GET /config", s.handleConfig)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// While degraded the daemon is alive and answering but shedding:
		// 503 plus Retry-After gives load balancers and the cluster
		// aggregator's health machine standard semantics, and the body
		// still tells humans which state they hit.
		if s.degraded.Load() {
			retry := int64(s.cfg.RecoveryWindow / time.Second)
			if retry < 1 {
				retry = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(retry, 10))
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("degraded\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// flowJSON is one reported flow on the wire: the identifier hex-encoded.
type flowJSON struct {
	ID    string `json:"id"`
	Count uint64 `json:"count"`
}

// topKResponse is the /topk document.
type topKResponse struct {
	K     int        `json:"k"`
	Flows []flowJSON `json:"flows"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	sum := s.cfg.Summarizer
	n := sum.K()
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	flows := sum.List()
	if len(flows) > n {
		flows = flows[:n]
	}
	resp := topKResponse{K: sum.K(), Flows: make([]flowJSON, len(flows))}
	for i, f := range flows {
		resp.Flows[i] = flowJSON{ID: hex.EncodeToString(f.ID), Count: f.Count}
	}
	writeJSON(w, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var key []byte
	switch {
	case q.Get("id") != "":
		b, err := hex.DecodeString(q.Get("id"))
		if err != nil {
			http.Error(w, "id must be hex", http.StatusBadRequest)
			return
		}
		key = b
	case q.Get("key") != "":
		key = []byte(q.Get("key"))
	default:
		http.Error(w, "provide ?id=HEX or ?key=STRING", http.StatusBadRequest)
		return
	}
	writeJSON(w, flowJSON{ID: hex.EncodeToString(key), Count: s.cfg.Summarizer.Query(key)})
}

// handleSnapshot streams the daemon's sketch state as a CRC-checksummed
// HKC1 snapshot envelope — the cluster aggregator's collection surface.
// By default it serves the newest on-disk generation whose checksum
// verifies end to end (integrity-gated with heavykeeper.VerifySnapshot
// before a single byte is shipped, and immutable once renamed into place,
// so serving never holds engine locks for the duration of a network
// write). With ?live=1, or when no intact generation exists (persistence
// disabled, or nothing written yet), it serializes the summarizer now
// into memory and serves that instead. The reader re-verifies the CRC
// chain on its side; together the two checks authenticate the transfer
// end to end.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	live := r.URL.Query().Get("live") != ""
	if s.snap != nil && !live {
		if gen, err := s.snap.newestIntact(); err == nil {
			f, err := os.Open(gen.path)
			if err == nil {
				defer f.Close()
				if fi, err := f.Stat(); err == nil {
					w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
				}
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set("X-Snapshot-Source", "generation")
				w.Header().Set("X-Snapshot-Seq", strconv.FormatUint(gen.seq, 10))
				if _, err := io.Copy(w, f); err != nil {
					// Client gone or disk fault mid-stream; the truncated
					// body fails the reader's CRC check.
					s.ctr.snapshotServeEr.Add(1)
					return
				}
				s.ctr.snapshotServes.Add(1)
				return
			}
		}
		// No intact generation: fall through to a live serialization.
	}
	sw, ok := s.cfg.Summarizer.(heavykeeper.SnapshotWriter)
	if !ok {
		s.ctr.snapshotServeEr.Add(1)
		http.Error(w, "summarizer has no snapshot format", http.StatusNotImplemented)
		return
	}
	var buf bytes.Buffer
	if _, err := heavykeeper.WriteSnapshot(&buf, sw); err != nil {
		s.ctr.snapshotServeEr.Add(1)
		if errors.Is(err, heavykeeper.ErrSnapshotUnsupported) {
			http.Error(w, "summarizer has no snapshot format", http.StatusNotImplemented)
			return
		}
		http.Error(w, "snapshot serialization failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snapshot-Source", "live")
	if _, err := buf.WriteTo(w); err != nil {
		s.ctr.snapshotServeEr.Add(1)
		return
	}
	s.ctr.snapshotServes.Add(1)
}

// statsResponse is the /stats document: engine event counters plus the
// server's own ingest counters.
type statsResponse struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	K             int               `json:"k"`
	MemoryBytes   int               `json:"memory_bytes"`
	Engine        heavykeeper.Stats `json:"engine"`
	Server        serverCounters    `json:"server"`
	Window        *windowInfo       `json:"window,omitempty"`
}

type serverCounters struct {
	TCPFrames       uint64 `json:"tcp_frames"`
	UDPFrames       uint64 `json:"udp_frames"`
	Records         uint64 `json:"records"`
	TCPBytes        uint64 `json:"tcp_bytes"`
	UDPBytes        uint64 `json:"udp_bytes"`
	DecodeErrors    uint64 `json:"decode_errors"`
	TransportErrors uint64 `json:"transport_errors"`
	ConnsTotal      uint64 `json:"conns_total"`
	ConnsActive     int64  `json:"conns_active"`
	ConnsRejected   uint64 `json:"conns_rejected"`
	IdleEvictions   uint64 `json:"idle_evictions"`
	UDPOversized    uint64 `json:"udp_oversized"`
	UDPTruncated    uint64 `json:"udp_truncated"`
	QueueDepth      int64  `json:"queue_depth"`
	Inflight        int64  `json:"inflight"`
	Degraded        bool   `json:"degraded"`
	DegradedEntries uint64 `json:"degraded_entries"`
	DegradedExits   uint64 `json:"degraded_exits"`
	ShedBatches     uint64 `json:"shed_batches"`
	ShedRecords     uint64 `json:"shed_records"`
	Snapshots       uint64 `json:"snapshots"`
	SnapshotErrors  uint64 `json:"snapshot_errors"`
	SnapshotServes  uint64 `json:"snapshot_serves"`
	SnapshotServeEr uint64 `json:"snapshot_serve_errors"`
}

// windowInfo reports the epoch shape when the summarizer is a Window.
type windowInfo struct {
	WindowSize int    `json:"window_size"`
	Rotations  uint64 `json:"rotations"`
}

func (s *Server) counterSnapshot() serverCounters {
	return serverCounters{
		TCPFrames:       s.ctr.tcpFrames.Load(),
		UDPFrames:       s.ctr.udpFrames.Load(),
		Records:         s.ctr.records.Load(),
		TCPBytes:        s.ctr.tcpBytes.Load(),
		UDPBytes:        s.ctr.udpBytes.Load(),
		DecodeErrors:    s.ctr.decodeErrors.Load(),
		TransportErrors: s.ctr.transportErrors.Load(),
		ConnsTotal:      s.ctr.connsTotal.Load(),
		ConnsActive:     s.ctr.connsActive.Load(),
		ConnsRejected:   s.ctr.connsRejected.Load(),
		IdleEvictions:   s.ctr.idleEvictions.Load(),
		UDPOversized:    s.ctr.udpOversized.Load(),
		UDPTruncated:    s.ctr.udpTruncated.Load(),
		QueueDepth:      s.waiting.Load(),
		Inflight:        s.inflight.Load(),
		Degraded:        s.degraded.Load(),
		DegradedEntries: s.ctr.degradedEntries.Load(),
		DegradedExits:   s.ctr.degradedExits.Load(),
		ShedBatches:     s.ctr.shedBatches.Load(),
		ShedRecords:     s.ctr.shedRecords.Load(),
		Snapshots:       s.ctr.snapshots.Load(),
		SnapshotErrors:  s.ctr.snapshotErrs.Load(),
		SnapshotServes:  s.ctr.snapshotServes.Load(),
		SnapshotServeEr: s.ctr.snapshotServeEr.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	sum := s.cfg.Summarizer
	resp := statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		K:             sum.K(),
		MemoryBytes:   sum.MemoryBytes(),
		Engine:        sum.Stats(),
		Server:        s.counterSnapshot(),
	}
	if win, ok := sum.(*heavykeeper.Window); ok {
		resp.Window = &windowInfo{WindowSize: win.WindowSize(), Rotations: win.Rotations()}
	}
	writeJSON(w, resp)
}

// indexStatsResponse is the /indexstats document. Available reports
// whether the configured store surfaces an open-addressed index at all;
// every frontend answers uniformly through StoreIndexReporter, so this
// handler never switches on the concrete summarizer type.
type indexStatsResponse struct {
	Available bool                         `json:"available"`
	Stats     *heavykeeper.StoreIndexStats `json:"stats,omitempty"`
}

func (s *Server) handleIndexStats(w http.ResponseWriter, _ *http.Request) {
	resp := indexStatsResponse{}
	if r, ok := s.cfg.Summarizer.(heavykeeper.StoreIndexReporter); ok {
		if st, ok := r.StoreIndexStats(); ok {
			resp.Available = true
			resp.Stats = &st
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleConfig(w http.ResponseWriter, _ *http.Request) {
	info := map[string]string{}
	for k, v := range s.cfg.Info {
		info[k] = v
	}
	info["k"] = strconv.Itoa(s.cfg.Summarizer.K())
	writeJSON(w, info)
}

// handleMetrics renders the Prometheus text exposition built on
// internal/metrics.PromText: server ingest counters, engine event
// counters and store index gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	sum := s.cfg.Summarizer
	ctr := s.counterSnapshot()
	var p metrics.PromText

	p.Gauge("hkd_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
	p.CounterLabeled("hkd_ingest_frames_total", "Wire frames ingested.",
		map[string]string{"transport": "tcp"}, float64(ctr.TCPFrames))
	p.CounterLabeled("hkd_ingest_frames_total", "Wire frames ingested.",
		map[string]string{"transport": "udp"}, float64(ctr.UDPFrames))
	p.CounterLabeled("hkd_ingest_bytes_total", "Wire bytes ingested.",
		map[string]string{"transport": "tcp"}, float64(ctr.TCPBytes))
	p.CounterLabeled("hkd_ingest_bytes_total", "Wire bytes ingested.",
		map[string]string{"transport": "udp"}, float64(ctr.UDPBytes))
	p.Counter("hkd_ingest_records_total", "Arrival records ingested.", float64(ctr.Records))
	p.Counter("hkd_decode_errors_total", "Malformed frames or datagrams rejected.", float64(ctr.DecodeErrors))
	p.Counter("hkd_transport_errors_total", "Ingest connections lost to resets, deadlines or force-close.", float64(ctr.TransportErrors))
	p.CounterLabeled("hkd_udp_dropped_total", "Datagrams dropped before decode.",
		map[string]string{"reason": "oversized"}, float64(ctr.UDPOversized))
	p.CounterLabeled("hkd_udp_dropped_total", "Datagrams dropped before decode.",
		map[string]string{"reason": "truncated"}, float64(ctr.UDPTruncated))
	p.Counter("hkd_connections_total", "Stream-ingest connections accepted.", float64(ctr.ConnsTotal))
	p.Gauge("hkd_connections_active", "Stream-ingest connections open now.", float64(ctr.ConnsActive))
	p.Counter("hkd_connections_rejected_total", "Connections refused at the MaxConns admission cap.", float64(ctr.ConnsRejected))
	p.Counter("hkd_idle_evictions_total", "Stream connections evicted for idling past IdleTimeout.", float64(ctr.IdleEvictions))
	p.Gauge("hkd_ingest_queue_depth", "Batches queued behind the inflight bound right now.", float64(ctr.QueueDepth))
	p.Gauge("hkd_ingest_inflight", "Summarizer batch calls executing right now.", float64(ctr.Inflight))
	degraded := 0.0
	if ctr.Degraded {
		degraded = 1
	}
	p.Gauge("hkd_degraded", "1 while the server is shedding load, else 0.", degraded)
	p.Counter("hkd_degraded_entries_total", "Transitions into degraded mode.", float64(ctr.DegradedEntries))
	p.Counter("hkd_degraded_exits_total", "Recoveries out of degraded mode.", float64(ctr.DegradedExits))
	p.Counter("hkd_shed_batches_total", "Batches dropped by degraded-mode sampling.", float64(ctr.ShedBatches))
	p.Counter("hkd_shed_records_total", "Records inside shed batches.", float64(ctr.ShedRecords))
	p.Counter("hkd_snapshots_total", "Snapshots written.", float64(ctr.Snapshots))
	p.Counter("hkd_snapshot_errors_total", "Snapshot attempts that failed.", float64(ctr.SnapshotErrors))
	p.Counter("hkd_snapshot_serves_total", "GET /snapshot responses streamed successfully.", float64(ctr.SnapshotServes))
	p.Counter("hkd_snapshot_serve_errors_total", "GET /snapshot requests that failed.", float64(ctr.SnapshotServeEr))

	st := sum.Stats()
	p.Counter("hkd_engine_packets_total", "Arrivals the engine processed.", float64(st.Packets))
	p.Counter("hkd_engine_increments_total", "Matching-fingerprint counter increments.", float64(st.Increments))
	p.Counter("hkd_engine_decays_total", "Successful counter decays.", float64(st.Decays))
	p.Counter("hkd_engine_replacements_total", "Bucket ownership replacements.", float64(st.Replacements))
	p.Counter("hkd_engine_expansions_total", "Auto-expansion events.", float64(st.Expansions))
	p.Gauge("hkd_summary_k", "Configured report size.", float64(sum.K()))
	p.Gauge("hkd_summary_memory_bytes", "Logical memory footprint.", float64(sum.MemoryBytes()))

	if r, ok := sum.(heavykeeper.StoreIndexReporter); ok {
		if ix, ok := r.StoreIndexStats(); ok {
			p.Gauge("hkd_store_index_slots", "Store index table size.", float64(ix.TableSize))
			p.Gauge("hkd_store_index_occupied", "Store index live slots.", float64(ix.Occupied))
			p.Gauge("hkd_store_index_max_probe", "Worst current probe displacement.", float64(ix.MaxProbe))
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.WriteTo(w)
}
