package server

import (
	"bytes"
	"encoding/hex"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"testing"

	heavykeeper "repro"
)

// getSnapshot fetches /snapshot and returns the response for header and
// body inspection.
func getSnapshot(t *testing.T, srv *Server, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/snapshot" + query)
	if err != nil {
		t.Fatalf("GET /snapshot%s: %v", query, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET /snapshot%s body: %v", query, err)
	}
	return resp, body
}

// TestSnapshotEndpointLive: without persistence configured, /snapshot
// serializes the summarizer on demand; the stream must verify as a
// checksummed envelope and restore to the server's exact state.
func TestSnapshotEndpointLive(t *testing.T) {
	srv, _ := startTestServer(t)
	keys := testKeys(512)
	sendTCP(t, srv.TCPAddr(), keys, 64)
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))

	resp, body := getSnapshot(t, srv, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot = %d: %s", resp.StatusCode, body)
	}
	if src := resp.Header.Get("X-Snapshot-Source"); src != "live" {
		t.Errorf("X-Snapshot-Source = %q want live", src)
	}
	if err := heavykeeper.VerifySnapshot(bytes.NewReader(body)); err != nil {
		t.Fatalf("served stream fails verification: %v", err)
	}
	restored, err := heavykeeper.ReadSnapshot(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	var topDoc topKDoc
	getJSON(t, srv.HTTPAddr(), "/topk", &topDoc)
	if len(topDoc.Flows) == 0 {
		t.Fatal("server reports no flows")
	}
	for _, f := range topDoc.Flows {
		key := mustHex(t, f.ID)
		if got := restored.Query(key); got != f.Count {
			t.Errorf("restored count for %q = %d, server says %d", key, got, f.Count)
		}
	}

	// The serve counter is observable.
	var full struct {
		Server struct {
			SnapshotServes uint64 `json:"snapshot_serves"`
		} `json:"server"`
	}
	getJSON(t, srv.HTTPAddr(), "/stats", &full)
	if full.Server.SnapshotServes == 0 {
		t.Error("snapshot_serves counter not incremented")
	}
}

// TestSnapshotEndpointGeneration: with persistence configured, /snapshot
// streams the newest intact on-disk generation (integrity-gated), and
// ?live=1 bypasses the disk for a fresh serialization.
func TestSnapshotEndpointGeneration(t *testing.T) {
	dir := t.TempDir()
	srv, _ := startTestServer(t, func(c *Config) {
		c.SnapshotPath = filepath.Join(dir, "snap")
	})
	keys := testKeys(256)
	sendTCP(t, srv.TCPAddr(), keys, 64)
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))
	if err := srv.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	resp, body := getSnapshot(t, srv, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot = %d: %s", resp.StatusCode, body)
	}
	if src := resp.Header.Get("X-Snapshot-Source"); src != "generation" {
		t.Errorf("X-Snapshot-Source = %q want generation", src)
	}
	if seq := resp.Header.Get("X-Snapshot-Seq"); seq == "" {
		t.Error("missing X-Snapshot-Seq for a generation serve")
	}
	if err := heavykeeper.VerifySnapshot(bytes.NewReader(body)); err != nil {
		t.Fatalf("served generation fails verification: %v", err)
	}
	if _, err := heavykeeper.ReadSnapshot(bytes.NewReader(body)); err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}

	// More ingest after the write: the stored generation is now stale,
	// ?live=1 must reflect the newer counts.
	more := testKeys(256)
	sendTCP(t, srv.TCPAddr(), more, 64)
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)+len(more)))
	respLive, bodyLive := getSnapshot(t, srv, "?live=1")
	if src := respLive.Header.Get("X-Snapshot-Source"); src != "live" {
		t.Errorf("live X-Snapshot-Source = %q", src)
	}
	live, err := heavykeeper.ReadSnapshot(bytes.NewReader(bodyLive))
	if err != nil {
		t.Fatalf("ReadSnapshot(live): %v", err)
	}
	stored, err := heavykeeper.ReadSnapshot(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	probe := []byte("flow-00000")
	if live.Query(probe) <= stored.Query(probe) {
		t.Errorf("live snapshot (%d) not fresher than stored (%d)",
			live.Query(probe), stored.Query(probe))
	}
}

// TestSnapshotEndpointTornGeneration: a corrupted newest generation must
// never be shipped — the handler verifies before serving and falls back
// to the newest intact one.
func TestSnapshotEndpointTornGeneration(t *testing.T) {
	dir := t.TempDir()
	srv, _ := startTestServer(t, func(c *Config) {
		c.SnapshotPath = filepath.Join(dir, "snap")
		c.SnapshotKeep = 4
	})
	keys := testKeys(256)
	sendTCP(t, srv.TCPAddr(), keys, 64)
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))
	if err := srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	intact, err := srv.snap.newestIntact()
	if err != nil {
		t.Fatal(err)
	}
	// Write a newer, torn generation by hand: truncated mid-envelope.
	srv.snap.wrap = func(w io.Writer) io.Writer { return &truncateWriter{w: w, keep: 100} }
	if err := srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	srv.snap.wrap = nil

	resp, body := getSnapshot(t, srv, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot = %d", resp.StatusCode)
	}
	if seq := resp.Header.Get("X-Snapshot-Seq"); seq != strconv.FormatUint(intact.seq, 10) {
		t.Errorf("served generation seq %q, want the intact %d (torn newer one skipped)", seq, intact.seq)
	}
	if err := heavykeeper.VerifySnapshot(bytes.NewReader(body)); err != nil {
		t.Fatalf("served bytes fail verification: %v", err)
	}
}

// truncateWriter passes through the first keep bytes and silently drops
// the rest — a torn write that still renames into place.
type truncateWriter struct {
	w       io.Writer
	keep    int
	written int
}

func (tw *truncateWriter) Write(p []byte) (int, error) {
	n := len(p)
	if tw.written < tw.keep {
		take := min(tw.keep-tw.written, n)
		if _, err := tw.w.Write(p[:take]); err != nil {
			return 0, err
		}
	}
	tw.written += n
	return n, nil
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("hex %q: %v", s, err)
	}
	return b
}
