package server

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestMain promotes the chaos suite's goroutine-leak discipline to every
// server test: whatever the package leaves running after the full run —
// an accept loop that outlived Shutdown, a poller without a stop channel —
// fails the run even when no individual test checked.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	// Idle keep-alive connections from the tests' http.Get calls park a
	// goroutine each; they are the client's, not the server's.
	http.DefaultClient.CloseIdleConnections()
	if err := chaos.LeakCheck(baseline, 4, 5*time.Second); err != nil && code == 0 {
		fmt.Fprintf(os.Stderr, "goroutine leak after test run: %v\n", err)
		code = 1
	}
	os.Exit(code)
}
