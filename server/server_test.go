package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	heavykeeper "repro"
	"repro/wire"
)

// testKeys builds a deterministic skewed keyset: flow i dominates flow
// i+1, so the top of the report is stable across orderings.
func testKeys(n int) [][]byte {
	keys := make([][]byte, 0, n)
	for p := 0; p < n; p++ {
		i := 0
		for r := p; r%2 == 1 && i < 199; r /= 2 {
			i++
		}
		keys = append(keys, fmt.Appendf(nil, "flow-%05d", i))
	}
	return keys
}

// startTestServer builds a Concurrent-backed server on ephemeral
// loopback ports and returns it with a same-configuration twin for
// equivalence checks.
func startTestServer(t *testing.T, opts ...func(*Config)) (*Server, heavykeeper.Summarizer) {
	t.Helper()
	newSum := func() heavykeeper.Summarizer {
		return heavykeeper.MustNew(20, heavykeeper.WithConcurrency(),
			heavykeeper.WithSeed(42), heavykeeper.WithMemory(32<<10))
	}
	cfg := Config{
		Summarizer: newSum(),
		TCPAddr:    "127.0.0.1:0",
		UDPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Info:       map[string]string{"algo": "heavykeeper"},
	}
	for _, o := range opts {
		o(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, newSum()
}

// sendTCP streams keys to addr as wire frames of the given batch size.
func sendTCP(t *testing.T, addr net.Addr, keys [][]byte, batch int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial %v: %v", addr, err)
	}
	defer conn.Close()
	var frame []byte
	for lo := 0; lo < len(keys); lo += batch {
		hi := min(lo+batch, len(keys))
		frame, err = wire.AppendFrame(frame[:0], keys[lo:hi], nil)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
}

// waitRecords polls /stats until the server has ingested want records.
func waitRecords(t *testing.T, httpAddr net.Addr, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st struct {
			Server struct {
				Records uint64 `json:"records"`
			} `json:"server"`
		}
		getJSON(t, httpAddr, "/stats", &st)
		if st.Server.Records >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never reached %d ingested records", want)
}

func getJSON(t *testing.T, addr net.Addr, path string, v any) {
	t.Helper()
	resp, err := http.Get("http://" + addr.String() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", path, err)
	}
}

type topKDoc struct {
	K     int `json:"k"`
	Flows []struct {
		ID    string `json:"id"`
		Count uint64 `json:"count"`
	} `json:"flows"`
}

// assertMatchesTwin checks the server's /topk and /query answers against
// a twin summarizer that ingested the same keys directly.
func assertMatchesTwin(t *testing.T, httpAddr net.Addr, twin heavykeeper.Summarizer) {
	t.Helper()
	var doc topKDoc
	getJSON(t, httpAddr, "/topk", &doc)
	want := twin.List()
	if len(doc.Flows) != len(want) {
		t.Fatalf("/topk has %d flows, twin has %d", len(doc.Flows), len(want))
	}
	for i, f := range doc.Flows {
		wantID := hex.EncodeToString(want[i].ID)
		if f.ID != wantID || f.Count != want[i].Count {
			t.Fatalf("/topk[%d] = %s/%d, twin %s/%d", i, f.ID, f.Count, wantID, want[i].Count)
		}
	}
	for _, probe := range []string{"flow-00000", "flow-00003", "flow-00199", "never-seen"} {
		var q struct {
			Count uint64 `json:"count"`
		}
		getJSON(t, httpAddr, "/query?id="+hex.EncodeToString([]byte(probe)), &q)
		if wantC := twin.Query([]byte(probe)); q.Count != wantC {
			t.Fatalf("/query %s = %d, twin %d", probe, q.Count, wantC)
		}
	}
}

func TestEndToEndTCP(t *testing.T) {
	srv, twin := startTestServer(t)
	keys := testKeys(30000)
	sendTCP(t, srv.TCPAddr(), keys, 256)
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))

	for lo := 0; lo < len(keys); lo += 256 {
		twin.AddBatch(keys[lo:min(lo+256, len(keys))])
	}
	assertMatchesTwin(t, srv.HTTPAddr(), twin)
}

func TestEndToEndUDP(t *testing.T) {
	srv, twin := startTestServer(t)
	keys := testKeys(12800)
	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatalf("dial udp: %v", err)
	}
	defer conn.Close()
	var frame []byte
	const batch = 64
	for lo := 0; lo < len(keys); lo += batch {
		hi := min(lo+batch, len(keys))
		frame, err = wire.AppendFrame(frame[:0], keys[lo:hi], nil)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("udp write: %v", err)
		}
		// Loopback UDP can still overrun the receive buffer; a short
		// breather every few frames keeps the test deterministic.
		if (lo/batch)%8 == 7 {
			time.Sleep(time.Millisecond)
		}
	}
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))

	for lo := 0; lo < len(keys); lo += batch {
		twin.AddBatch(keys[lo:min(lo+batch, len(keys))])
	}
	assertMatchesTwin(t, srv.HTTPAddr(), twin)
}

func TestEndToEndWeightedFrames(t *testing.T) {
	srv, twin := startTestServer(t)
	keys := [][]byte{[]byte("wa"), []byte("wb"), []byte("wc")}
	weights := []uint64{100, 10, 1}
	frame, err := wire.AppendFrame(nil, keys, weights)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.Close()
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))

	for i, k := range keys {
		twin.AddN(k, weights[i])
	}
	assertMatchesTwin(t, srv.HTTPAddr(), twin)
}

func TestMalformedStreamCounted(t *testing.T) {
	srv, _ := startTestServer(t)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	conn.Write([]byte("definitely not a frame header"))
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var st struct {
			Server struct {
				DecodeErrors uint64 `json:"decode_errors"`
			} `json:"server"`
		}
		getJSON(t, srv.HTTPAddr(), "/stats", &st)
		if st.Server.DecodeErrors >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("decode error never counted")
}

func TestHTTPEndpoints(t *testing.T) {
	srv, _ := startTestServer(t)
	sendTCP(t, srv.TCPAddr(), testKeys(1000), 100)
	waitRecords(t, srv.HTTPAddr(), 1000)

	var ix struct {
		Available bool `json:"available"`
		Stats     *struct {
			TableSize int `json:"table_size"`
		} `json:"stats"`
	}
	getJSON(t, srv.HTTPAddr(), "/indexstats", &ix)
	if !ix.Available || ix.Stats == nil || ix.Stats.TableSize == 0 {
		t.Errorf("/indexstats not surfaced for Concurrent: %+v", ix)
	}

	var cfg map[string]string
	getJSON(t, srv.HTTPAddr(), "/config", &cfg)
	if cfg["algo"] != "heavykeeper" || cfg["k"] != "20" {
		t.Errorf("/config = %v", cfg)
	}

	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE hkd_ingest_records_total counter",
		"hkd_ingest_records_total 1000",
		`hkd_ingest_frames_total{transport="tcp"} 10`,
		"hkd_engine_packets_total 1000",
		"# TYPE hkd_store_index_occupied gauge",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get("http://" + srv.HTTPAddr().String() + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", err, resp)
	}
	resp.Body.Close()
}

func TestSnapshotRestartRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "hkd.snap")
	srv, twin := startTestServer(t, func(c *Config) {
		c.SnapshotPath = snap
		c.SnapshotInterval = time.Hour // periodic loop stays quiet; shutdown writes
	})
	keys := testKeys(20000)
	sendTCP(t, srv.TCPAddr(), keys, 256)
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	restored, err := LoadSnapshot(snap)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if restored == nil {
		t.Fatal("snapshot file missing after shutdown")
	}
	srv2, err := New(Config{Summarizer: restored, TCPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New (restart): %v", err)
	}
	if err := srv2.Start(); err != nil {
		t.Fatalf("Start (restart): %v", err)
	}
	defer srv2.Shutdown(context.Background())

	for lo := 0; lo < len(keys); lo += 256 {
		twin.AddBatch(keys[lo:min(lo+256, len(keys))])
	}
	// The restarted daemon answers with the pre-restart counts...
	assertMatchesTwin(t, srv2.HTTPAddr(), twin)
	// ...and keeps ingesting on top of them.
	more := testKeys(5000)
	sendTCP(t, srv2.TCPAddr(), more, 128)
	waitRecords(t, srv2.HTTPAddr(), uint64(len(more)))
	for lo := 0; lo < len(more); lo += 128 {
		twin.AddBatch(more[lo:min(lo+128, len(more))])
	}
	assertMatchesTwin(t, srv2.HTTPAddr(), twin)
}

func TestLoadSnapshotMissingFile(t *testing.T) {
	sum, err := LoadSnapshot(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil || sum != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", sum, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil summarizer accepted")
	}
	if _, err := New(Config{Summarizer: heavykeeper.MustNew(5, heavykeeper.WithConcurrency())}); err == nil {
		t.Error("no listener accepted")
	}
	// A bare TopK has no synchronization; serving it would race.
	if _, err := New(Config{Summarizer: heavykeeper.MustNew(5), TCPAddr: ":0"}); err == nil {
		t.Error("bare *TopK accepted")
	}
	if _, err := New(Config{Summarizer: heavykeeper.Synchronized(heavykeeper.MustNew(5)), TCPAddr: "127.0.0.1:0"}); err != nil {
		t.Errorf("Synchronized-wrapped TopK rejected: %v", err)
	}
	// A registry-engine summarizer cannot back a snapshotting server.
	reg := heavykeeper.MustNew(5, heavykeeper.WithAlgorithm("spacesaving"))
	if _, err := New(Config{Summarizer: reg, TCPAddr: ":0", SnapshotPath: "x"}); err == nil {
		t.Error("snapshot path with snapshot-incapable summarizer accepted")
	}
}
