package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	heavykeeper "repro"
	"repro/wire"
)

// testKeys builds a deterministic skewed keyset: flow i dominates flow
// i+1, so the top of the report is stable across orderings.
func testKeys(n int) [][]byte {
	keys := make([][]byte, 0, n)
	for p := 0; p < n; p++ {
		i := 0
		for r := p; r%2 == 1 && i < 199; r /= 2 {
			i++
		}
		keys = append(keys, fmt.Appendf(nil, "flow-%05d", i))
	}
	return keys
}

// startTestServer builds a Concurrent-backed server on ephemeral
// loopback ports and returns it with a same-configuration twin for
// equivalence checks.
func startTestServer(t *testing.T, opts ...func(*Config)) (*Server, heavykeeper.Summarizer) {
	t.Helper()
	newSum := func() heavykeeper.Summarizer {
		return heavykeeper.MustNew(20, heavykeeper.WithConcurrency(),
			heavykeeper.WithSeed(42), heavykeeper.WithMemory(32<<10))
	}
	cfg := Config{
		Summarizer: newSum(),
		TCPAddr:    "127.0.0.1:0",
		UDPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Info:       map[string]string{"algo": "heavykeeper"},
	}
	for _, o := range opts {
		o(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, newSum()
}

// sendTCP streams keys to addr as wire frames of the given batch size.
func sendTCP(t *testing.T, addr net.Addr, keys [][]byte, batch int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial %v: %v", addr, err)
	}
	defer conn.Close()
	var frame []byte
	for lo := 0; lo < len(keys); lo += batch {
		hi := min(lo+batch, len(keys))
		frame, err = wire.AppendFrame(frame[:0], keys[lo:hi], nil)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
}

// waitRecords polls /stats until the server has ingested want records.
func waitRecords(t *testing.T, httpAddr net.Addr, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st struct {
			Server struct {
				Records uint64 `json:"records"`
			} `json:"server"`
		}
		getJSON(t, httpAddr, "/stats", &st)
		if st.Server.Records >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never reached %d ingested records", want)
}

func getJSON(t *testing.T, addr net.Addr, path string, v any) {
	t.Helper()
	resp, err := http.Get("http://" + addr.String() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", path, err)
	}
}

type topKDoc struct {
	K     int `json:"k"`
	Flows []struct {
		ID    string `json:"id"`
		Count uint64 `json:"count"`
	} `json:"flows"`
}

// assertMatchesTwin checks the server's /topk and /query answers against
// a twin summarizer that ingested the same keys directly.
func assertMatchesTwin(t *testing.T, httpAddr net.Addr, twin heavykeeper.Summarizer) {
	t.Helper()
	var doc topKDoc
	getJSON(t, httpAddr, "/topk", &doc)
	want := twin.List()
	if len(doc.Flows) != len(want) {
		t.Fatalf("/topk has %d flows, twin has %d", len(doc.Flows), len(want))
	}
	for i, f := range doc.Flows {
		wantID := hex.EncodeToString(want[i].ID)
		if f.ID != wantID || f.Count != want[i].Count {
			t.Fatalf("/topk[%d] = %s/%d, twin %s/%d", i, f.ID, f.Count, wantID, want[i].Count)
		}
	}
	for _, probe := range []string{"flow-00000", "flow-00003", "flow-00199", "never-seen"} {
		var q struct {
			Count uint64 `json:"count"`
		}
		getJSON(t, httpAddr, "/query?id="+hex.EncodeToString([]byte(probe)), &q)
		if wantC := twin.Query([]byte(probe)); q.Count != wantC {
			t.Fatalf("/query %s = %d, twin %d", probe, q.Count, wantC)
		}
	}
}

func TestEndToEndTCP(t *testing.T) {
	srv, twin := startTestServer(t)
	keys := testKeys(30000)
	sendTCP(t, srv.TCPAddr(), keys, 256)
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))

	for lo := 0; lo < len(keys); lo += 256 {
		twin.AddBatch(keys[lo:min(lo+256, len(keys))])
	}
	assertMatchesTwin(t, srv.HTTPAddr(), twin)
}

func TestEndToEndUDP(t *testing.T) {
	srv, twin := startTestServer(t)
	keys := testKeys(12800)
	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatalf("dial udp: %v", err)
	}
	defer conn.Close()
	var frame []byte
	const batch = 64
	for lo := 0; lo < len(keys); lo += batch {
		hi := min(lo+batch, len(keys))
		frame, err = wire.AppendFrame(frame[:0], keys[lo:hi], nil)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("udp write: %v", err)
		}
		// Loopback UDP can still overrun the receive buffer; a short
		// breather every few frames keeps the test deterministic.
		if (lo/batch)%8 == 7 {
			time.Sleep(time.Millisecond)
		}
	}
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))

	for lo := 0; lo < len(keys); lo += batch {
		twin.AddBatch(keys[lo:min(lo+batch, len(keys))])
	}
	assertMatchesTwin(t, srv.HTTPAddr(), twin)
}

func TestEndToEndWeightedFrames(t *testing.T) {
	srv, twin := startTestServer(t)
	keys := [][]byte{[]byte("wa"), []byte("wb"), []byte("wc")}
	weights := []uint64{100, 10, 1}
	frame, err := wire.AppendFrame(nil, keys, weights)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.Close()
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))

	for i, k := range keys {
		twin.AddN(k, weights[i])
	}
	assertMatchesTwin(t, srv.HTTPAddr(), twin)
}

func TestMalformedStreamCounted(t *testing.T) {
	srv, _ := startTestServer(t)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	conn.Write([]byte("definitely not a frame header"))
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var st struct {
			Server struct {
				DecodeErrors uint64 `json:"decode_errors"`
			} `json:"server"`
		}
		getJSON(t, srv.HTTPAddr(), "/stats", &st)
		if st.Server.DecodeErrors >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("decode error never counted")
}

func TestHTTPEndpoints(t *testing.T) {
	srv, _ := startTestServer(t)
	sendTCP(t, srv.TCPAddr(), testKeys(1000), 100)
	waitRecords(t, srv.HTTPAddr(), 1000)

	var ix struct {
		Available bool `json:"available"`
		Stats     *struct {
			TableSize int `json:"table_size"`
		} `json:"stats"`
	}
	getJSON(t, srv.HTTPAddr(), "/indexstats", &ix)
	if !ix.Available || ix.Stats == nil || ix.Stats.TableSize == 0 {
		t.Errorf("/indexstats not surfaced for Concurrent: %+v", ix)
	}

	var cfg map[string]string
	getJSON(t, srv.HTTPAddr(), "/config", &cfg)
	if cfg["algo"] != "heavykeeper" || cfg["k"] != "20" {
		t.Errorf("/config = %v", cfg)
	}

	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE hkd_ingest_records_total counter",
		"hkd_ingest_records_total 1000",
		`hkd_ingest_frames_total{transport="tcp"} 10`,
		"hkd_engine_packets_total 1000",
		"# TYPE hkd_store_index_occupied gauge",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get("http://" + srv.HTTPAddr().String() + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", err, resp)
	}
	resp.Body.Close()
}

func TestSnapshotRestartRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "hkd.snap")
	srv, twin := startTestServer(t, func(c *Config) {
		c.SnapshotPath = snap
		c.SnapshotInterval = time.Hour // periodic loop stays quiet; shutdown writes
	})
	keys := testKeys(20000)
	sendTCP(t, srv.TCPAddr(), keys, 256)
	waitRecords(t, srv.HTTPAddr(), uint64(len(keys)))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	restored, err := LoadSnapshot(snap)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if restored == nil {
		t.Fatal("snapshot file missing after shutdown")
	}
	srv2, err := New(Config{Summarizer: restored, TCPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New (restart): %v", err)
	}
	if err := srv2.Start(); err != nil {
		t.Fatalf("Start (restart): %v", err)
	}
	defer srv2.Shutdown(context.Background())

	for lo := 0; lo < len(keys); lo += 256 {
		twin.AddBatch(keys[lo:min(lo+256, len(keys))])
	}
	// The restarted daemon answers with the pre-restart counts...
	assertMatchesTwin(t, srv2.HTTPAddr(), twin)
	// ...and keeps ingesting on top of them.
	more := testKeys(5000)
	sendTCP(t, srv2.TCPAddr(), more, 128)
	waitRecords(t, srv2.HTTPAddr(), uint64(len(more)))
	for lo := 0; lo < len(more); lo += 128 {
		twin.AddBatch(more[lo:min(lo+128, len(more))])
	}
	assertMatchesTwin(t, srv2.HTTPAddr(), twin)
}

func TestLoadSnapshotMissingFile(t *testing.T) {
	sum, err := LoadSnapshot(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil || sum != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", sum, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil summarizer accepted")
	}
	if _, err := New(Config{Summarizer: heavykeeper.MustNew(5, heavykeeper.WithConcurrency())}); err == nil {
		t.Error("no listener accepted")
	}
	// A bare TopK has no synchronization; serving it would race.
	if _, err := New(Config{Summarizer: heavykeeper.MustNew(5), TCPAddr: ":0"}); err == nil {
		t.Error("bare *TopK accepted")
	}
	if _, err := New(Config{Summarizer: heavykeeper.Synchronized(heavykeeper.MustNew(5)), TCPAddr: "127.0.0.1:0"}); err != nil {
		t.Errorf("Synchronized-wrapped TopK rejected: %v", err)
	}
	// A registry-engine summarizer cannot back a snapshotting server.
	reg := heavykeeper.MustNew(5, heavykeeper.WithAlgorithm("spacesaving"))
	if _, err := New(Config{Summarizer: reg, TCPAddr: ":0", SnapshotPath: "x"}); err == nil {
		t.Error("snapshot path with snapshot-incapable summarizer accepted")
	}
}

// getBody fetches a path and returns status and body.
func getBody(t *testing.T, addr net.Addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr.String() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// statsDoc mirrors the /stats server-counter block the resilience tests
// care about.
type statsDoc struct {
	Server struct {
		Records         uint64 `json:"records"`
		ConnsActive     int64  `json:"conns_active"`
		ConnsRejected   uint64 `json:"conns_rejected"`
		IdleEvictions   uint64 `json:"idle_evictions"`
		UDPOversized    uint64 `json:"udp_oversized"`
		UDPTruncated    uint64 `json:"udp_truncated"`
		Degraded        bool   `json:"degraded"`
		DegradedEntries uint64 `json:"degraded_entries"`
		DegradedExits   uint64 `json:"degraded_exits"`
		ShedBatches     uint64 `json:"shed_batches"`
		ShedRecords     uint64 `json:"shed_records"`
	} `json:"server"`
}

// waitStats polls /stats until pred accepts the document.
func waitStats(t *testing.T, addr net.Addr, what string, pred func(statsDoc) bool) statsDoc {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var st statsDoc
	for time.Now().Before(deadline) {
		getJSON(t, addr, "/stats", &st)
		if pred(st) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last stats: %+v", what, st.Server)
	return st
}

func TestDrainGraceValidation(t *testing.T) {
	sum := func() heavykeeper.Summarizer {
		return heavykeeper.MustNew(5, heavykeeper.WithConcurrency())
	}
	for _, grace := range []time.Duration{-time.Second, 11 * time.Minute} {
		_, err := New(Config{Summarizer: sum(), TCPAddr: ":0", DrainGrace: grace})
		if !errors.Is(err, ErrInvalidDrainGrace) {
			t.Errorf("DrainGrace %v: got %v, want ErrInvalidDrainGrace", grace, err)
		}
	}
	for _, bad := range []Config{
		{MaxInflight: -1},
		{OverloadHighWater: -3},
		{OverloadLowWater: 9, OverloadHighWater: 4},
		{ShedKeepOneIn: -2},
		{IdleTimeout: -time.Second},
	} {
		bad.Summarizer = sum()
		bad.TCPAddr = ":0"
		if _, err := New(bad); !errors.Is(err, ErrInvalidLimit) {
			t.Errorf("config %+v: got %v, want ErrInvalidLimit", bad, err)
		}
	}
	if _, err := New(Config{Summarizer: sum(), TCPAddr: "127.0.0.1:0", DrainGrace: 5 * time.Second}); err != nil {
		t.Errorf("valid DrainGrace rejected: %v", err)
	}
}

// TestMaxConnsRejection: the admission cap closes connections past
// MaxConns and counts them, and slots free up when a peer leaves.
func TestMaxConnsRejection(t *testing.T) {
	srv, _ := startTestServer(t, func(c *Config) { c.MaxConns = 2 })
	c1, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	defer c1.Close()
	c2, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c2.Close()
	waitStats(t, srv.HTTPAddr(), "2 active conns", func(st statsDoc) bool {
		return st.Server.ConnsActive == 2
	})

	c3, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatalf("dial 3: %v", err)
	}
	defer c3.Close()
	// The server must close the over-cap connection without serving it.
	c3.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c3.Read(make([]byte, 1)); err == nil {
		t.Fatal("over-cap connection was served")
	}
	waitStats(t, srv.HTTPAddr(), "a rejected conn", func(st statsDoc) bool {
		return st.Server.ConnsRejected >= 1
	})

	// Freeing the slots re-admits new peers: a fresh connection ingests.
	c1.Close()
	c2.Close()
	waitStats(t, srv.HTTPAddr(), "free slots", func(st statsDoc) bool {
		return st.Server.ConnsActive == 0
	})
	sendTCP(t, srv.TCPAddr(), testKeys(64), 64)
	waitRecords(t, srv.HTTPAddr(), 64)
}

// TestIdleEviction: a silent peer is evicted after IdleTimeout and
// counted apart from decode and transport errors; an active peer's
// deadline keeps sliding.
func TestIdleEviction(t *testing.T) {
	srv, _ := startTestServer(t, func(c *Config) { c.IdleTimeout = 300 * time.Millisecond })
	idle, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer idle.Close()

	// An active connection outlives many idle windows: each delivered
	// frame slides its deadline.
	activeDone := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", srv.TCPAddr().String())
		if err != nil {
			activeDone <- err
			return
		}
		defer conn.Close()
		frame, _ := wire.AppendFrame(nil, [][]byte{[]byte("alive")}, nil)
		for i := 0; i < 10; i++ {
			if _, err := conn.Write(frame); err != nil {
				activeDone <- fmt.Errorf("write %d: %w", i, err)
				return
			}
			time.Sleep(50 * time.Millisecond) // well under the idle window
		}
		activeDone <- nil
	}()

	st := waitStats(t, srv.HTTPAddr(), "idle eviction", func(st statsDoc) bool {
		return st.Server.IdleEvictions >= 1
	})
	if st.Server.IdleEvictions != 1 {
		t.Errorf("evictions = %d, want exactly the idle conn", st.Server.IdleEvictions)
	}
	// The evicted side observes the close.
	idle.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Error("idle conn still open after eviction")
	}
	if err := <-activeDone; err != nil {
		t.Fatalf("active conn: %v", err)
	}
	waitRecords(t, srv.HTTPAddr(), 10)
}

// TestUDPDropAccounting: datagrams whose header declares an impossible
// payload and datagrams shorter than their declared records are counted
// apart from generic decode corruption, and neither disturbs ingest.
func TestUDPDropAccounting(t *testing.T) {
	srv, _ := startTestServer(t)
	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatalf("dial udp: %v", err)
	}
	defer conn.Close()

	// Header declaring a payload past MaxPayload: oversized.
	over := []byte{'H', 'K', 1, 1, 0xff, 0xff, 0xff, 0xff}
	if _, err := conn.Write(over); err != nil {
		t.Fatalf("oversized write: %v", err)
	}
	// Valid header, payload cut short: truncated.
	valid, err := wire.AppendFrame(nil, [][]byte{[]byte("whole-frame-key")}, nil)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	if _, err := conn.Write(valid[:len(valid)-4]); err != nil {
		t.Fatalf("truncated write: %v", err)
	}
	// A healthy frame still lands.
	if _, err := conn.Write(valid); err != nil {
		t.Fatalf("valid write: %v", err)
	}

	st := waitStats(t, srv.HTTPAddr(), "udp drop counters", func(st statsDoc) bool {
		return st.Server.UDPOversized >= 1 && st.Server.UDPTruncated >= 1 && st.Server.Records >= 1
	})
	if st.Server.UDPOversized != 1 || st.Server.UDPTruncated != 1 {
		t.Errorf("drops = %d oversized / %d truncated, want 1/1", st.Server.UDPOversized, st.Server.UDPTruncated)
	}

	_, body := getBody(t, srv.HTTPAddr(), "/metrics")
	for _, want := range []string{
		`hkd_udp_dropped_total{reason="oversized"} 1`,
		`hkd_udp_dropped_total{reason="truncated"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// slowSummarizer delays every mutation, so a test can pile up the ingest
// queue on demand.
type slowSummarizer struct {
	heavykeeper.Summarizer
	delay time.Duration
}

func (s *slowSummarizer) AddBatch(keys [][]byte) {
	time.Sleep(s.delay)
	s.Summarizer.AddBatch(keys)
}

func (s *slowSummarizer) AddN(key []byte, n uint64) {
	time.Sleep(s.delay)
	s.Summarizer.AddN(key, n)
}

// TestDegradedEntryAndRecovery drives the server into overload with a
// deliberately slow summarizer and many concurrent senders, watches it
// enter degraded mode (healthz flips, shedding starts, entry counted),
// then stops the load and watches hysteresis bring it back to exact
// mode.
func TestDegradedEntryAndRecovery(t *testing.T) {
	srv, _ := startTestServer(t, func(c *Config) {
		c.Summarizer = &slowSummarizer{Summarizer: c.Summarizer, delay: 2 * time.Millisecond}
		c.MaxInflight = 1
		c.OverloadHighWater = 3
		c.OverloadLowWater = 1
		c.ShedKeepOneIn = 2
		c.RecoveryWindow = 100 * time.Millisecond
	})

	// Senders flood until torn down. The teardown is an RST (SetLinger 0),
	// discarding the many megabytes of frames the kernel buffered during
	// the flood — the test is about the overload episode, not about
	// patiently draining its backlog at the slow summarizer's pace.
	var senders sync.WaitGroup
	var mu sync.Mutex
	var conns []*net.TCPConn
	stopSenders := func() {
		mu.Lock()
		for _, c := range conns {
			c.SetLinger(0)
			c.Close()
		}
		conns = nil
		mu.Unlock()
		// Sever the server side too: each handler stops at its next frame
		// read instead of grinding through kernel-buffered backlog first.
		srv.mu.Lock()
		for c := range srv.conns {
			c.Close()
		}
		srv.mu.Unlock()
		senders.Wait()
	}
	defer stopSenders()
	for i := 0; i < 8; i++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			conn, err := net.Dial("tcp", srv.TCPAddr().String())
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn.(*net.TCPConn))
			mu.Unlock()
			frame, _ := wire.AppendFrame(nil, testKeys(20), nil)
			for {
				if _, err := conn.Write(frame); err != nil {
					return
				}
			}
		}()
	}

	waitStats(t, srv.HTTPAddr(), "degraded entry", func(st statsDoc) bool {
		return st.Server.DegradedEntries >= 1
	})
	// Degraded health is standard HTTP semantics: 503 with Retry-After,
	// body unchanged so humans still see which state they hit.
	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	healthBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz while degraded = %d want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("/healthz while degraded missing Retry-After")
	}
	var health healthzResponse
	if err := json.Unmarshal(healthBody, &health); err != nil || health.Status != "degraded" || health.SchemaVersion != StatsSchemaVersion {
		t.Errorf("/healthz while degraded = %q (err %v)", healthBody, err)
	}
	if _, body := getBody(t, srv.HTTPAddr(), "/metrics"); !strings.Contains(body, "hkd_degraded 1") {
		t.Errorf("/metrics while degraded missing hkd_degraded 1")
	}
	// Give the shedder a few batches to sample while still overloaded.
	waitStats(t, srv.HTTPAddr(), "shed batches", func(st statsDoc) bool {
		return st.Server.ShedBatches >= 1
	})

	stopSenders()
	st := waitStats(t, srv.HTTPAddr(), "recovery", func(st statsDoc) bool {
		return !st.Server.Degraded && st.Server.DegradedExits >= 1
	})
	if st.Server.ShedRecords == 0 {
		t.Error("shed batches counted but no shed records")
	}
	if code, body := getBody(t, srv.HTTPAddr(), "/healthz"); code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/healthz after recovery = %d %q", code, body)
	}
	// Post-recovery ingest is exact again: a fresh batch must land whole.
	before := st.Server.Records
	sendTCP(t, srv.TCPAddr(), testKeys(128), 128)
	waitStats(t, srv.HTTPAddr(), "post-recovery ingest", func(st statsDoc) bool {
		return st.Server.Records >= before+128
	})
}

// TestSnapshotGenerations: Snapshot writes retained, pruned generation
// files; LoadSnapshot restores the newest and walks past a corrupt
// newest generation to the next intact one.
func TestSnapshotGenerations(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "hkd.snap")
	srv, _ := startTestServer(t, func(c *Config) {
		c.SnapshotPath = snap
		c.SnapshotInterval = time.Hour
		c.SnapshotKeep = 2
	})

	sendTCP(t, srv.TCPAddr(), testKeys(1000), 100)
	waitRecords(t, srv.HTTPAddr(), 1000)
	stateA := srv.cfg.Summarizer.List()
	for i := 0; i < 3; i++ {
		if err := srv.Snapshot(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	sendTCP(t, srv.TCPAddr(), testKeys(5000), 100)
	waitRecords(t, srv.HTTPAddr(), 6000)
	stateB := srv.cfg.Summarizer.List()
	if err := srv.Snapshot(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}

	gens, err := (&genStore{base: snap}).generations()
	if err != nil {
		t.Fatalf("generations: %v", err)
	}
	if len(gens) != 2 {
		t.Fatalf("retention kept %d generations, want 2", len(gens))
	}
	if gens[0].seq <= gens[1].seq {
		t.Fatalf("generations not newest-first: %+v", gens)
	}

	assertRestores := func(want []heavykeeper.Flow) {
		t.Helper()
		restored, err := LoadSnapshot(snap)
		if err != nil {
			t.Fatalf("LoadSnapshot: %v", err)
		}
		got := restored.List()
		if len(got) != len(want) {
			t.Fatalf("restored %d flows, want %d", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].ID, want[i].ID) || got[i].Count != want[i].Count {
				t.Fatalf("restored[%d] = %s/%d, want %s/%d",
					i, got[i].ID, got[i].Count, want[i].ID, want[i].Count)
			}
		}
	}
	// Newest generation intact: restore sees stateB.
	assertRestores(stateB)

	// Tear the newest generation mid-file: restore walks to the previous
	// one, which holds stateA.
	raw, err := os.ReadFile(gens[0].path)
	if err != nil {
		t.Fatalf("read newest gen: %v", err)
	}
	if err := os.WriteFile(gens[0].path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatalf("truncate newest gen: %v", err)
	}
	assertRestores(stateA)

	// Every generation corrupt and no legacy file: restore must fail
	// loudly rather than start empty.
	if err := os.WriteFile(gens[1].path, raw[:8], 0o644); err != nil {
		t.Fatalf("truncate older gen: %v", err)
	}
	if _, err := LoadSnapshot(snap); err == nil {
		t.Fatal("all-corrupt snapshot state restored silently")
	}
}
