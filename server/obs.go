package server

import (
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// serverObs is the server's latency-histogram block plus the runtime
// sampler behind /metrics. Histograms are recorded at batch, request or
// snapshot granularity only — never inside the per-key sketch hot path,
// which keeps the one-hash / zero-alloc invariants intact.
type serverObs struct {
	ingestBatch   obs.Histogram // queue wait + summarizer call, per kept batch
	snapWrite     obs.Histogram // generation write (temp+fsync+rename)
	snapVerify    obs.Histogram // newest-intact CRC walk on GET /snapshot
	snapLoad      obs.Histogram // restore-on-start (recorded once via Config.RestoreDuration)
	degradedDwell obs.Histogram // time spent in each degraded episode
	routes        map[string]*obs.Histogram
	runtime       *obs.RuntimeSampler
}

// httpRoutes is the fixed route-label set: one histogram series per
// entry plus "other" for unmatched paths, so label cardinality is
// bounded no matter what clients request.
var httpRoutes = []string{"topk", "query", "stats", "indexstats", "config", "snapshot", "healthz", "metrics", "other"}

func newServerObs() *serverObs {
	o := &serverObs{
		routes:  make(map[string]*obs.Histogram, len(httpRoutes)),
		runtime: obs.NewRuntimeSampler(),
	}
	for _, r := range httpRoutes {
		o.routes[r] = &obs.Histogram{}
	}
	return o
}

// route returns the histogram for a request path. The map is read-only
// after construction, so lookups are safe without locking.
func (o *serverObs) route(path string) *obs.Histogram {
	name := "other"
	if len(path) > 1 {
		if h, ok := o.routes[path[1:]]; ok {
			return h
		}
	}
	return o.routes[name]
}

// withObs is the outermost HTTP middleware: it assigns or echoes the
// X-Request-Id header, records per-route latency, and access-logs every
// request (debug level) with the correlation ID — including requests
// the auth middleware rejects, which is exactly when an operator greps
// for them.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(obs.WithRequestID(r.Context(), id)))
		d := time.Since(start)
		s.obs.route(r.URL.Path).Observe(d)
		s.log.Debug("http request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_us", d.Microseconds())
	})
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// latencySummary is one histogram rendered for the /stats latency
// section: count plus interpolated quantiles in seconds.
type latencySummary struct {
	Count uint64  `json:"count"`
	MeanS float64 `json:"mean_s"`
	P50S  float64 `json:"p50_s"`
	P90S  float64 `json:"p90_s"`
	P99S  float64 `json:"p99_s"`
	MaxS  float64 `json:"max_s"`
}

func summarizeHist(sn obs.HistSnapshot) latencySummary {
	return latencySummary{
		Count: sn.Count,
		MeanS: sn.Mean().Seconds(),
		P50S:  sn.Quantile(0.50).Seconds(),
		P90S:  sn.Quantile(0.90).Seconds(),
		P99S:  sn.Quantile(0.99).Seconds(),
		MaxS:  sn.MaxDuration().Seconds(),
	}
}

// latencyStats is the /stats "latency" section.
type latencyStats struct {
	IngestBatch    latencySummary `json:"ingest_batch"`
	HTTP           latencySummary `json:"http"`
	SnapshotWrite  latencySummary `json:"snapshot_write"`
	SnapshotVerify latencySummary `json:"snapshot_verify"`
	SnapshotLoad   latencySummary `json:"snapshot_load"`
	DegradedDwell  latencySummary `json:"degraded_dwell"`
}

func (o *serverObs) latencyStats() *latencyStats {
	var httpAll obs.HistSnapshot
	for _, h := range o.routes {
		httpAll.Merge(h.Snapshot())
	}
	return &latencyStats{
		IngestBatch:    summarizeHist(o.ingestBatch.Snapshot()),
		HTTP:           summarizeHist(httpAll),
		SnapshotWrite:  summarizeHist(o.snapWrite.Snapshot()),
		SnapshotVerify: summarizeHist(o.snapVerify.Snapshot()),
		SnapshotLoad:   summarizeHist(o.snapLoad.Snapshot()),
		DegradedDwell:  summarizeHist(o.degradedDwell.Snapshot()),
	}
}

// promHistograms renders every latency family into the /metrics page.
func (o *serverObs) promHistograms(p *metrics.PromText) {
	bounds := obs.PromBounds()
	hist := func(name, help string, labels map[string]string, h *obs.Histogram) {
		sn := h.Snapshot()
		p.Histogram(name, help, labels, bounds, sn.PromCumulative(), sn.SumSeconds(), sn.Count)
	}
	hist("hkd_ingest_batch_seconds", "Per-batch ingest latency: queue wait plus summarizer call.", nil, &o.ingestBatch)
	for _, r := range httpRoutes {
		hist("hkd_http_request_seconds", "HTTP request latency by route.",
			map[string]string{"route": r}, o.routes[r])
	}
	hist("hkd_snapshot_write_seconds", "Snapshot generation write duration.", nil, &o.snapWrite)
	hist("hkd_snapshot_verify_seconds", "Snapshot newest-intact verification duration.", nil, &o.snapVerify)
	hist("hkd_snapshot_load_seconds", "Restore-on-start snapshot load duration.", nil, &o.snapLoad)
	hist("hkd_degraded_dwell_seconds", "Time spent inside each degraded-mode episode.", nil, &o.degradedDwell)
}

// promRuntime renders the runtime-telemetry sample.
func (o *serverObs) promRuntime(p *metrics.PromText) {
	rt := o.runtime.Sample()
	p.Gauge("hkd_goroutines", "Live goroutines.", float64(rt.Goroutines))
	p.Gauge("hkd_heap_bytes", "Bytes of live heap objects.", float64(rt.HeapBytes))
	p.Gauge("hkd_runtime_memory_bytes", "Total bytes mapped by the Go runtime.", float64(rt.RuntimeBytes))
	p.Counter("hkd_gc_cycles_total", "Completed GC cycles.", float64(rt.GCCycles))
	p.Counter("hkd_gc_pauses_total", "Stop-the-world GC pauses.", float64(rt.GCPauses))
	p.Counter("hkd_gc_pause_seconds_total", "Approximate total stop-the-world pause time (bucket midpoints).", rt.GCPauseTotal.Seconds())
}
