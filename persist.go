package heavykeeper

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/topk"
)

// Snapshot container format. Every frontend snapshot is a small framed
// container around one or more tracker sections (internal/topk snapshot
// format, which itself embeds the sketch's v3 frame):
//
//	u32  magic "HKS1"
//	u8   kind: 1 = TopK, 2 = Concurrent, 3 = Sharded
//	     kind 1, 2: one tracker section
//	     kind 3:    u32 shard count | u64 shard seed | u32 k |
//	                one tracker section per shard
//
// WriteTo on a frontend emits the container; ReadSummarizer rebuilds the
// frontend it describes (ReadTopK insists on kind 1). Only tracker-backed
// summarizers — the HeavyKeeper algorithm family — serialize; registry
// engines return ErrSnapshotUnsupported. All decode failures match
// ErrCorrupt via errors.Is and never panic.
//
// This is the restart-recovery surface the hkd daemon uses: snapshot
// periodically and on shutdown, restore on start, and the daemon resumes
// with the counts it had.
const (
	snapshotMagic = uint32('H')<<24 | uint32('K')<<16 | uint32('S')<<8 | '1'

	snapKindTopK       = 1
	snapKindConcurrent = 2
	snapKindSharded    = 3

	// maxSnapshotShards bounds the shard count a container may declare;
	// real deployments run one shard per core.
	maxSnapshotShards = 1 << 16
)

// SnapshotWriter is implemented by every summarizer with a snapshot
// format: TopK, Concurrent and Sharded over the HeavyKeeper algorithm
// family. WriteTo emits a container ReadSummarizer rebuilds; a
// registry-engine summarizer implements the interface but returns
// ErrSnapshotUnsupported at call time.
type SnapshotWriter interface {
	WriteTo(w io.Writer) (int64, error)
}

// Compile-time checks: the three frontends expose the snapshot surface.
var (
	_ SnapshotWriter = (*TopK)(nil)
	_ SnapshotWriter = (*Concurrent)(nil)
	_ SnapshotWriter = (*Sharded)(nil)
)

// WriteTo serializes the TopK — sketch buckets, hash seeds, structural
// configuration and current top-k candidates — so ReadTopK (or
// ReadSummarizer) can rebuild it without out-of-band configuration.
// Registry-engine TopKs return ErrSnapshotUnsupported: only the
// HeavyKeeper tracker family has a defined snapshot format.
func (t *TopK) WriteTo(w io.Writer) (int64, error) {
	return writeContainer(w, snapKindTopK, t)
}

// WriteTo serializes the Concurrent under its lock; ingest may resume as
// soon as it returns. See TopK.WriteTo for the format contract.
func (c *Concurrent) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeContainer(w, snapKindConcurrent, c.t)
}

// WriteTo serializes the Sharded, taking shard locks one at a time — under
// concurrent ingest the snapshot is per-shard consistent and slightly
// time-smeared across shards, exactly like List. See TopK.WriteTo for the
// format contract.
func (s *Sharded) WriteTo(w io.Writer) (int64, error) {
	var n int64
	head := []any{snapshotMagic, uint8(snapKindSharded),
		uint32(len(s.shards)), s.shardSeed, uint32(s.k)}
	for _, v := range head {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return n, err
		}
		n += int64(binary.Size(v))
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		tr, err := trackerOf(sh.t)
		if err == nil {
			var wn int64
			wn, err = tr.WriteTo(w)
			n += wn
		}
		sh.mu.Unlock()
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// writeContainer emits the magic, a kind byte and one tracker section.
func writeContainer(w io.Writer, kind uint8, t *TopK) (int64, error) {
	tr, err := trackerOf(t)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, v := range []any{snapshotMagic, kind} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return n, err
		}
		n += int64(binary.Size(v))
	}
	wn, err := tr.WriteTo(w)
	return n + wn, err
}

// trackerOf returns t's HeavyKeeper tracker, or ErrSnapshotUnsupported
// for a registry-engine TopK.
func trackerOf(t *TopK) (*topk.Tracker, error) {
	if t.t == nil {
		return nil, fmt.Errorf("%w: algorithm %q", ErrSnapshotUnsupported, t.eng.Name())
	}
	return t.t, nil
}

// ReadTopK rebuilds a *TopK from a TopK.WriteTo container. A container
// holding a different frontend kind is rejected (use ReadSummarizer for
// kind-dispatched restore); any malformed input matches ErrCorrupt.
func ReadTopK(r io.Reader) (*TopK, error) {
	s, err := ReadSummarizer(r)
	if err != nil {
		return nil, err
	}
	t, ok := s.(*TopK)
	if !ok {
		return nil, fmt.Errorf("%w: container holds a %T, not a *TopK", ErrCorrupt, s)
	}
	return t, nil
}

// ReadSummarizer rebuilds the summarizer a WriteTo container describes —
// a *TopK, *Concurrent or *Sharded, fully operational with the writer's
// sketch contents, top-k candidates and configuration (ingest event
// counters restart at zero). Any malformed, truncated or oversized input
// returns an error matching ErrCorrupt; decoding never panics.
func ReadSummarizer(r io.Reader) (Summarizer, error) {
	var magic uint32
	var kind uint8
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad container magic %#x", ErrCorrupt, magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	switch kind {
	case snapKindTopK:
		t, err := readTopKSection(r)
		if err != nil {
			return nil, err
		}
		return t, nil
	case snapKindConcurrent:
		t, err := readTopKSection(r)
		if err != nil {
			return nil, err
		}
		return &Concurrent{t: t}, nil
	case snapKindSharded:
		return readShardedSections(r)
	default:
		return nil, fmt.Errorf("%w: unknown container kind %d", ErrCorrupt, kind)
	}
}

// readTopKSection restores one tracker section as a *TopK.
func readTopKSection(r io.Reader) (*TopK, error) {
	tr, err := topk.ReadTracker(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return &TopK{t: tr, cfg: configFromTrackerOptions(tr.Options()), k: tr.K()}, nil
}

// readShardedSections restores a sharded container.
func readShardedSections(r io.Reader) (*Sharded, error) {
	var shards, k uint32
	var shardSeed uint64
	for _, step := range []func() error{
		func() error { return binary.Read(r, binary.LittleEndian, &shards) },
		func() error { return binary.Read(r, binary.LittleEndian, &shardSeed) },
		func() error { return binary.Read(r, binary.LittleEndian, &k) },
	} {
		if err := step(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
	}
	if shards == 0 || shards > maxSnapshotShards || k == 0 {
		return nil, fmt.Errorf("%w: implausible shard header (%d shards, k %d)", ErrCorrupt, shards, k)
	}
	s := &Sharded{
		shards:    make([]shard, shards),
		shardSeed: shardSeed,
		k:         int(k),
	}
	for i := range s.shards {
		t, err := readTopKSection(r)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if t.k != int(k) {
			return nil, fmt.Errorf("%w: shard %d has k %d, container says %d", ErrCorrupt, i, t.k, k)
		}
		s.shards[i].t = t
	}
	return s, nil
}

// configFromTrackerOptions reconstructs the frontend-level config a
// restored tracker implies, so Version, Algorithm and option-sensitive
// behavior report correctly on a restored TopK.
func configFromTrackerOptions(o topk.Options) config {
	cfg := defaultConfig()
	cfg.width = o.Sketch.W
	cfg.depth = o.Sketch.D
	if o.Sketch.B != 0 {
		cfg.decayBase = o.Sketch.B
	}
	if o.Sketch.FingerprintBits != 0 {
		cfg.fingerprintBits = o.Sketch.FingerprintBits
	}
	cfg.seed = o.Sketch.Seed
	cfg.expandThreshold = o.Sketch.ExpandThreshold
	cfg.maxArrays = o.Sketch.MaxArrays
	switch o.Version {
	case topk.Minimum:
		cfg.version = VersionMinimum
	case topk.Basic:
		cfg.version = VersionBasic
	default:
		cfg.version = VersionParallel
	}
	cfg.versionSet = true
	switch o.Store {
	case topk.StoreHeap:
		cfg.useHeap = true
	case topk.StoreSummaryRef:
		cfg.useMapStore = true
	}
	return cfg
}

// Checksummed snapshot envelope. WriteTo containers are byte-exact but
// carry no integrity protection: a torn write (crash mid-rename on a
// filesystem without atomic rename, a short disk write, a truncated
// copy) can leave a prefix that still decodes far enough to restore a
// silently wrong summarizer. WriteSnapshot wraps the container in a
// CRC-checksummed framed envelope so ReadSnapshot detects any
// truncation or corruption before a single container byte is trusted:
//
//	u8[4]  magic "HKC1"
//	frames, each:
//	    u32  chunk length (1 .. maxSnapshotChunk)
//	    n    chunk bytes (container payload)
//	    u32  CRC-32C (Castagnoli) of the chunk bytes
//	terminator:
//	    u32  0
//	    u32  CRC-32C of the whole payload stream
//
// All integers are little-endian. The whole-stream checksum in the
// terminator catches frame splicing and reordering that per-frame
// checksums alone would miss; bytes after the terminator are rejected.
// ReadSnapshot also accepts a bare legacy container (no envelope), so
// snapshots written before the envelope existed keep restoring.
const (
	// snapshotChunkSize is the chunk granularity WriteSnapshot emits; a
	// torn tail costs at most one chunk of re-checksummed reads to detect.
	snapshotChunkSize = 256 << 10
	// maxSnapshotChunk bounds the chunk length a frame may declare, so a
	// corrupt length field can never force a giant allocation.
	maxSnapshotChunk = 4 << 20
)

// crcTable is the Castagnoli polynomial table shared by the snapshot
// envelope writer and reader (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// envelopeMagic identifies a checksummed snapshot envelope.
var envelopeMagic = [4]byte{'H', 'K', 'C', '1'}

// WriteSnapshot serializes s through its WriteTo container inside a
// CRC-checksummed framed envelope (format above) and returns the bytes
// written. It is the crash-safe counterpart of calling WriteTo directly:
// ReadSnapshot refuses any truncated or corrupted result instead of
// restoring from a plausible-looking prefix. Summarizers without a
// snapshot format return ErrSnapshotUnsupported, as WriteTo does.
func WriteSnapshot(w io.Writer, s SnapshotWriter) (int64, error) {
	cw := &chunkedWriter{w: w, crc: crc32.Checksum(nil, crcTable)}
	n, err := w.Write(envelopeMagic[:])
	cw.written += int64(n)
	if err != nil {
		return cw.written, err
	}
	if _, err := s.WriteTo(cw); err != nil {
		return cw.written, err
	}
	if err := cw.finish(); err != nil {
		return cw.written, err
	}
	return cw.written, nil
}

// chunkedWriter buffers container bytes into fixed-size checksummed
// frames and tracks the whole-stream CRC for the terminator.
type chunkedWriter struct {
	w       io.Writer
	buf     []byte
	crc     uint32 // running CRC-32C over every payload byte
	written int64
}

func (cw *chunkedWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		room := snapshotChunkSize - len(cw.buf)
		if room == 0 {
			if err := cw.flush(); err != nil {
				return total - len(p), err
			}
			room = snapshotChunkSize
		}
		take := min(room, len(p))
		cw.buf = append(cw.buf, p[:take]...)
		p = p[take:]
	}
	return total, nil
}

// flush emits the buffered bytes as one checksummed frame.
func (cw *chunkedWriter) flush() error {
	if len(cw.buf) == 0 {
		return nil
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(cw.buf)))
	for _, b := range [][]byte{hdr[:], cw.buf} {
		n, err := cw.w.Write(b)
		cw.written += int64(n)
		if err != nil {
			return err
		}
	}
	sum := crc32.Checksum(cw.buf, crcTable)
	binary.LittleEndian.PutUint32(hdr[:], sum)
	n, err := cw.w.Write(hdr[:])
	cw.written += int64(n)
	if err != nil {
		return err
	}
	cw.crc = crc32.Update(cw.crc, crcTable, cw.buf)
	cw.buf = cw.buf[:0]
	return nil
}

// finish flushes the tail chunk and writes the terminator frame.
func (cw *chunkedWriter) finish() error {
	if err := cw.flush(); err != nil {
		return err
	}
	var term [8]byte
	binary.LittleEndian.PutUint32(term[4:], cw.crc)
	n, err := cw.w.Write(term[:])
	cw.written += int64(n)
	return err
}

// VerifySnapshot checks a WriteSnapshot envelope end to end — magic, every
// frame checksum, the whole-stream checksum, the terminator and the absence
// of trailing bytes — without decoding the container or holding more than
// one chunk in memory. It is the integrity gate a server runs before
// streaming a stored snapshot to a remote reader (the cluster aggregator's
// GET /snapshot path): a torn or corrupted generation fails here, in
// constant memory, instead of being shipped and rejected at the far end.
// A legacy bare container (no envelope) fails verification; callers that
// still accept those fall back to a full ReadSnapshot. All failures match
// ErrCorrupt.
func VerifySnapshot(r io.Reader) error {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return fmt.Errorf("%w: reading envelope magic: %w", ErrCorrupt, err)
	}
	if head != envelopeMagic {
		return fmt.Errorf("%w: not a checksummed snapshot envelope", ErrCorrupt)
	}
	crc := crc32.Checksum(nil, crcTable)
	var word [4]byte
	var chunk []byte
	for {
		if _, err := io.ReadFull(r, word[:]); err != nil {
			return fmt.Errorf("%w: reading frame length: %w", ErrCorrupt, err)
		}
		length := binary.LittleEndian.Uint32(word[:])
		if length == 0 {
			if _, err := io.ReadFull(r, word[:]); err != nil {
				return fmt.Errorf("%w: reading stream checksum: %w", ErrCorrupt, err)
			}
			if got := binary.LittleEndian.Uint32(word[:]); got != crc {
				return fmt.Errorf("%w: stream checksum mismatch (%#x != %#x)", ErrCorrupt, got, crc)
			}
			if n, _ := r.Read(word[:1]); n != 0 {
				return fmt.Errorf("%w: trailing bytes after terminator", ErrCorrupt)
			}
			return nil
		}
		if length > maxSnapshotChunk {
			return fmt.Errorf("%w: frame declares %d bytes (max %d)", ErrCorrupt, length, maxSnapshotChunk)
		}
		if cap(chunk) < int(length) {
			chunk = make([]byte, length)
		}
		chunk = chunk[:length]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return fmt.Errorf("%w: reading frame payload: %w", ErrCorrupt, err)
		}
		if _, err := io.ReadFull(r, word[:]); err != nil {
			return fmt.Errorf("%w: reading frame checksum: %w", ErrCorrupt, err)
		}
		if got := binary.LittleEndian.Uint32(word[:]); got != crc32.Checksum(chunk, crcTable) {
			return fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
		}
		crc = crc32.Update(crc, crcTable, chunk)
	}
}

// ReadSnapshot restores a summarizer from a WriteSnapshot envelope. Every
// frame checksum, the whole-stream checksum, the terminator and the
// absence of trailing bytes are verified before the container is decoded,
// so a torn or corrupted snapshot is rejected (ErrCorrupt) rather than
// partially restored. A stream that does not start with the envelope
// magic is decoded as a bare legacy WriteTo container.
func ReadSnapshot(r io.Reader) (Summarizer, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("%w: reading envelope magic: %w", ErrCorrupt, err)
	}
	if head != envelopeMagic {
		// Legacy bare container: re-prepend the sniffed bytes.
		return ReadSummarizer(io.MultiReader(bytes.NewReader(head[:]), r))
	}
	var payload bytes.Buffer
	crc := crc32.Checksum(nil, crcTable)
	var word [4]byte
	for {
		if _, err := io.ReadFull(r, word[:]); err != nil {
			return nil, fmt.Errorf("%w: reading frame length: %w", ErrCorrupt, err)
		}
		length := binary.LittleEndian.Uint32(word[:])
		if length == 0 {
			// Terminator: whole-stream CRC, then clean EOF.
			if _, err := io.ReadFull(r, word[:]); err != nil {
				return nil, fmt.Errorf("%w: reading stream checksum: %w", ErrCorrupt, err)
			}
			if got := binary.LittleEndian.Uint32(word[:]); got != crc {
				return nil, fmt.Errorf("%w: stream checksum mismatch (%#x != %#x)", ErrCorrupt, got, crc)
			}
			if n, _ := r.Read(word[:1]); n != 0 {
				return nil, fmt.Errorf("%w: trailing bytes after terminator", ErrCorrupt)
			}
			break
		}
		if length > maxSnapshotChunk {
			return nil, fmt.Errorf("%w: frame declares %d bytes (max %d)", ErrCorrupt, length, maxSnapshotChunk)
		}
		chunkStart := payload.Len()
		if _, err := io.CopyN(&payload, r, int64(length)); err != nil {
			return nil, fmt.Errorf("%w: reading frame payload: %w", ErrCorrupt, err)
		}
		chunk := payload.Bytes()[chunkStart:]
		if _, err := io.ReadFull(r, word[:]); err != nil {
			return nil, fmt.Errorf("%w: reading frame checksum: %w", ErrCorrupt, err)
		}
		if got := binary.LittleEndian.Uint32(word[:]); got != crc32.Checksum(chunk, crcTable) {
			return nil, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
		}
		crc = crc32.Update(crc, crcTable, chunk)
	}
	body := bytes.NewReader(payload.Bytes())
	sum, err := ReadSummarizer(body)
	if err != nil {
		return nil, err
	}
	if body.Len() != 0 {
		return nil, fmt.Errorf("%w: %d bytes after container end", ErrCorrupt, body.Len())
	}
	return sum, nil
}
