// Package heavykeeper finds the top-k elephant flows in a packet or item
// stream using the HeavyKeeper sketch (Yang, Zhang, Li, Gong, Uhlig, Chen,
// Li — USENIX ATC 2018 / IEEE-ACM ToN).
//
// HeavyKeeper keeps d small bucket arrays of (fingerprint, counter) pairs
// and applies count-with-exponential-decay: a packet that collides with a
// resident flow decays the resident's counter with probability b^-C, so
// mouse flows wash out while elephant flows become effectively permanent.
// A k-entry summary on top yields the top-k report. The structure uses a
// fixed, small memory budget (tens of KB for 99%+ precision on
// 10M-packet traces) with constant per-packet work.
//
// Quick start:
//
//	tk, err := heavykeeper.New(100, heavykeeper.WithMemory(64<<10))
//	if err != nil { ... }
//	for _, pkt := range packets {
//	    tk.Add(pkt.FlowID)
//	}
//	for _, f := range tk.List() {
//	    fmt.Printf("%x %d\n", f.ID, f.Count)
//	}
//
// A TopK is not safe for concurrent use. NewConcurrent wraps one behind a
// single mutex for modest multi-goroutine loads; NewSharded fans flows
// across per-core shards by flow hash, with per-shard locks and a batched
// ingest path (AddBatch), for pipelines that need to scale with cores.
package heavykeeper

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/streamsummary"
	"repro/internal/topk"
)

// Version selects the insertion discipline described in the paper.
type Version int

const (
	// VersionParallel is the Hardware Parallel version (paper §III-E):
	// per-array operations are independent, suiting hardware pipelines.
	// This is the default.
	VersionParallel Version = iota
	// VersionMinimum is the Software Minimum version (paper §IV): at most
	// one bucket changes per packet, improving accuracy under tight memory
	// at the cost of the parallel property.
	VersionMinimum
	// VersionBasic is the unoptimized basic version (paper §III-C), kept
	// for completeness and ablations.
	VersionBasic
)

// String implements fmt.Stringer.
func (v Version) String() string {
	switch v {
	case VersionParallel:
		return "parallel"
	case VersionMinimum:
		return "minimum"
	case VersionBasic:
		return "basic"
	default:
		return fmt.Sprintf("Version(%d)", int(v))
	}
}

// Flow is one reported flow.
type Flow struct {
	// ID is the flow identifier as supplied to Add.
	ID []byte
	// Count is the estimated flow size. HeavyKeeper estimates never exceed
	// the true size (paper Theorem 2), barring the rare fingerprint
	// collision, which the admission filter suppresses.
	Count uint64
}

// config collects the options.
type config struct {
	memoryBytes     int
	width           int
	depth           int
	decayBase       float64
	fingerprintBits uint
	version         Version
	seed            uint64
	useHeap         bool
	useMapStore     bool
	expandThreshold uint64
	maxArrays       int
	shards          int
}

// Option configures New.
type Option func(*config) error

// WithMemory sizes the structure from a total byte budget: k summary
// entries plus bucket arrays filling the remainder, the sizing used in the
// paper's evaluation. Mutually exclusive with WithWidth.
func WithMemory(bytes int) Option {
	return func(c *config) error {
		if bytes < 1 {
			return fmt.Errorf("heavykeeper: memory budget %d must be positive", bytes)
		}
		c.memoryBytes = bytes
		return nil
	}
}

// WithWidth sets the bucket count per array directly.
func WithWidth(w int) Option {
	return func(c *config) error {
		if w < 1 {
			return fmt.Errorf("heavykeeper: width %d must be >= 1", w)
		}
		c.width = w
		return nil
	}
}

// WithDepth sets the number of bucket arrays d (default 2).
func WithDepth(d int) Option {
	return func(c *config) error {
		if d < 1 {
			return fmt.Errorf("heavykeeper: depth %d must be >= 1", d)
		}
		c.depth = d
		return nil
	}
}

// WithDecayBase sets the exponential decay base b (default 1.08). Larger
// bases evict residents more aggressively.
func WithDecayBase(b float64) Option {
	return func(c *config) error {
		if b <= 1 {
			return fmt.Errorf("heavykeeper: decay base %v must be > 1", b)
		}
		c.decayBase = b
		return nil
	}
}

// WithFingerprintBits sets the fingerprint width (default 16).
func WithFingerprintBits(bits uint) Option {
	return func(c *config) error {
		if bits == 0 || bits > 32 {
			return fmt.Errorf("heavykeeper: fingerprint bits %d out of (0, 32]", bits)
		}
		c.fingerprintBits = bits
		return nil
	}
}

// WithVersion selects the insertion discipline (default VersionParallel).
func WithVersion(v Version) Option {
	return func(c *config) error {
		switch v {
		case VersionParallel, VersionMinimum, VersionBasic:
			c.version = v
			return nil
		default:
			return fmt.Errorf("heavykeeper: unknown version %d", int(v))
		}
	}
}

// WithSeed makes hashing and decay deterministic for reproducible runs.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithMinHeap stores the top-k candidates in a binary min-heap instead of
// the default Stream-Summary (paper §III-C uses Stream-Summary for O(1)
// updates; the heap trades that for lower constant memory).
func WithMinHeap() Option {
	return func(c *config) error {
		c.useHeap = true
		return nil
	}
}

// WithMapStore stores the top-k candidates in the retained map-indexed
// Stream-Summary instead of the default open-addressed one. The two are
// behaviorally identical — the map variant exists as a differential-testing
// reference and as hkbench's -store=map baseline, so the index swap stays
// measurable; there is no reason to choose it in production.
func WithMapStore() Option {
	return func(c *config) error {
		c.useMapStore = true
		return nil
	}
}

// WithExpansion enables the paper's §III-F auto-expansion: after threshold
// arrivals that found every mapped bucket saturated by a large counter, an
// additional bucket array is appended (up to maxArrays; 0 = unlimited).
func WithExpansion(threshold uint64, maxArrays int) Option {
	return func(c *config) error {
		if threshold == 0 {
			return errors.New("heavykeeper: expansion threshold must be > 0")
		}
		c.expandThreshold = threshold
		c.maxArrays = maxArrays
		return nil
	}
}

// WithShards sets the shard count for NewSharded (default: GOMAXPROCS at
// construction time). It is ignored by New and NewConcurrent.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("heavykeeper: shard count %d must be >= 1", n)
		}
		c.shards = n
		return nil
	}
}

// DefaultMemory is the byte budget used when neither WithMemory nor
// WithWidth is given: 64 KB, comfortably above the paper's highest-accuracy
// operating point for k = 100 on 10M-packet traces.
const DefaultMemory = 64 << 10

// TopK tracks the k largest flows of a stream.
type TopK struct {
	t   *topk.Tracker
	cfg config
	k   int
}

// New returns a TopK tracking the k largest flows.
func New(k int, opts ...Option) (*TopK, error) {
	cfg, err := parseConfig(k, opts)
	if err != nil {
		return nil, err
	}
	return newTopK(k, cfg)
}

// parseConfig validates k and folds the options into a config.
func parseConfig(k int, opts []Option) (config, error) {
	if k < 1 {
		return config{}, fmt.Errorf("heavykeeper: k = %d, must be >= 1", k)
	}
	cfg := config{
		depth:           core.DefaultD,
		decayBase:       core.DefaultB,
		fingerprintBits: core.DefaultFingerprintBits,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return config{}, err
		}
	}
	if cfg.width != 0 && cfg.memoryBytes != 0 {
		return config{}, errors.New("heavykeeper: WithWidth and WithMemory are mutually exclusive")
	}
	if cfg.useHeap && cfg.useMapStore {
		return config{}, errors.New("heavykeeper: WithMinHeap and WithMapStore are mutually exclusive")
	}
	return cfg, nil
}

// sizeWidth converts the config's byte budget into a per-array bucket count:
// k summary entries plus bucket arrays filling the remainder, the sizing
// used in the paper's evaluation.
func sizeWidth(k int, cfg config) int {
	if cfg.width != 0 {
		return cfg.width
	}
	budget := cfg.memoryBytes
	if budget == 0 {
		budget = DefaultMemory
	}
	rest := budget - k*streamsummary.BytesPerEntry
	bucketBytes := core.BucketBytes(cfg.fingerprintBits, core.DefaultCounterBits)
	width := int(float64(rest) / (float64(cfg.depth) * bucketBytes))
	if width < 1 {
		width = 1
	}
	return width
}

// newTopK builds a TopK from a parsed config.
func newTopK(k int, cfg config) (*TopK, error) {
	width := sizeWidth(k, cfg)
	var v topk.Version
	switch cfg.version {
	case VersionParallel:
		v = topk.Parallel
	case VersionMinimum:
		v = topk.Minimum
	case VersionBasic:
		v = topk.Basic
	}
	store := topk.StoreSummary
	if cfg.useHeap {
		store = topk.StoreHeap
	} else if cfg.useMapStore {
		store = topk.StoreSummaryRef
	}
	tr, err := topk.New(topk.Options{
		K:       k,
		Version: v,
		Store:   store,
		Sketch: core.Config{
			D:               cfg.depth,
			W:               width,
			B:               cfg.decayBase,
			FingerprintBits: cfg.fingerprintBits,
			Seed:            cfg.seed,
			ExpandThreshold: cfg.expandThreshold,
			MaxArrays:       cfg.maxArrays,
		},
	})
	if err != nil {
		return nil, err
	}
	return &TopK{t: tr, cfg: cfg, k: k}, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(k int, opts ...Option) *TopK {
	t, err := New(k, opts...)
	if err != nil {
		panic(err)
	}
	return t
}

// Add records one occurrence of flowID (one packet of the flow).
func (t *TopK) Add(flowID []byte) { t.t.Insert(flowID) }

// keyHash returns the single per-key hash the structure derives everything
// from; Sharded computes it once per packet for routing and hands it down
// through the *hashed entry points so the key bytes are never hashed twice.
func (t *TopK) keyHash(flowID []byte) uint64 { return t.t.KeyHash(flowID) }

// addHashed, addNHashed, addBatchHashed and queryHashed are the
// precomputed-hash twins of Add/AddN/AddBatch/Query, for the sharded router.
func (t *TopK) addHashed(flowID []byte, h uint64)            { t.t.InsertHashed(flowID, h) }
func (t *TopK) addNHashed(flowID []byte, h uint64, n uint64) { t.t.InsertNHashed(flowID, h, n) }
func (t *TopK) addBatchHashed(flowIDs [][]byte, hashes []uint64) {
	t.t.InsertBatchHashed(flowIDs, hashes)
}
func (t *TopK) queryHashed(flowID []byte, h uint64) uint64 { return t.t.QueryHashed(flowID, h) }

// AddString is Add for string identifiers.
func (t *TopK) AddString(flowID string) { t.t.Insert([]byte(flowID)) }

// AddBatch records one occurrence of every flow identifier in flowIDs,
// equivalently to calling Add on each in order but cheaper: fingerprints and
// bucket indexes are precomputed for a chunk of identifiers at a time in
// tight per-array loops, amortizing hash setup and bounds checks. Use it
// whenever arrivals are already buffered (NIC batches, channel drains,
// Sharded ingest).
func (t *TopK) AddBatch(flowIDs [][]byte) { t.t.InsertBatch(flowIDs) }

// Merge folds other into t. Both must have been built with the same
// configuration — including WithSeed — so their sketches are bucket-
// compatible; the per-bucket merge rule is documented in internal/core.
// This is the paper's footnote-2 collector pattern: measurement points each
// sketch their share of the traffic and a collector folds the snapshots.
// other is left unmodified; neither may be in concurrent use during Merge.
func (t *TopK) Merge(other *TopK) error {
	if other == nil {
		return errors.New("heavykeeper: cannot merge with nil")
	}
	return t.t.MergeFrom(other.t)
}

// AddN records a weight-n occurrence of flowID — n packets at once, or n
// bytes when ranking flows by volume instead of packet count. Weighted
// updates are this implementation's extension to the paper (its §III-F
// notes the original cannot support them); see internal/topk.InsertN for
// the admission-rule consequence.
func (t *TopK) AddN(flowID []byte, n uint64) { t.t.InsertN(flowID, n) }

// Query returns the sketch's current size estimate for flowID. A flow held
// in no bucket reports 0 — "it is a mouse flow" (paper §III-B).
func (t *TopK) Query(flowID []byte) uint64 { return t.t.Query(flowID) }

// List returns the current top-k flows in descending estimated size.
func (t *TopK) List() []Flow {
	entries := t.t.Top()
	out := make([]Flow, len(entries))
	for i, e := range entries {
		out[i] = Flow{ID: []byte(e.Key), Count: e.Count}
	}
	return out
}

// K returns the configured report size.
func (t *TopK) K() int { return t.k }

// Version returns the configured insertion discipline.
func (t *TopK) Version() Version { return t.cfg.version }

// MemoryBytes returns the structure's logical memory footprint.
func (t *TopK) MemoryBytes() int { return t.t.MemoryBytes() }

// Stats exposes the sketch's internal event counters (decays, replacements,
// expansions), useful for monitoring and tuning.
func (t *TopK) Stats() core.Stats { return t.t.Sketch().Stats() }

// StoreIndexStats describes the open-addressed key index of the top-k store
// at a point in time; hkbench reports it so index pressure stays observable.
type StoreIndexStats struct {
	// Capacity is the store's entry capacity (k); TableSize the index size.
	Capacity  int `json:"capacity"`
	TableSize int `json:"table_size"`
	// Occupied is the number of live index slots.
	Occupied int `json:"occupied"`
	// MaxProbe is the largest current displacement of any entry from its
	// home slot.
	MaxProbe int `json:"max_probe"`
	// ProbeHist[d] counts entries displaced exactly d slots from home; the
	// last bin also absorbs anything beyond it.
	ProbeHist []int `json:"probe_hist"`
}

// StoreIndexStats reports the top-k store's index occupancy and probe
// lengths. ok is false when no stats are surfaced for the configured store:
// WithMapStore has no open-addressed index at all, and WithMinHeap's index
// (the heap has one too) is not currently reported.
func (t *TopK) StoreIndexStats() (st StoreIndexStats, ok bool) {
	is, ok := t.t.StoreIndexStats()
	if !ok {
		return StoreIndexStats{}, false
	}
	return StoreIndexStats{
		Capacity:  is.Capacity,
		TableSize: is.TableSize,
		Occupied:  is.Occupied,
		MaxProbe:  is.MaxProbe,
		ProbeHist: is.ProbeHist,
	}, true
}
