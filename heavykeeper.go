// Package heavykeeper finds the top-k elephant flows in a packet or item
// stream using the HeavyKeeper sketch (Yang, Zhang, Li, Gong, Uhlig, Chen,
// Li — USENIX ATC 2018 / IEEE-ACM ToN).
//
// HeavyKeeper keeps d small bucket arrays of (fingerprint, counter) pairs
// and applies count-with-exponential-decay: a packet that collides with a
// resident flow decays the resident's counter with probability b^-C, so
// mouse flows wash out while elephant flows become effectively permanent.
// A k-entry summary on top yields the top-k report. The structure uses a
// fixed, small memory budget (tens of KB for 99%+ precision on
// 10M-packet traces) with constant per-packet work.
//
// Quick start:
//
//	tk, err := heavykeeper.New(100, heavykeeper.WithMemory(64<<10))
//	if err != nil { ... }
//	for _, pkt := range packets {
//	    tk.Add(pkt.FlowID)
//	}
//	for f := range tk.All() {
//	    fmt.Printf("%x %d\n", f.ID, f.Count)
//	}
//
// New returns a Summarizer; every deployment shape implements that one
// interface. A plain *TopK is not safe for concurrent use;
// WithConcurrency wraps one behind a single mutex for modest
// multi-goroutine loads; WithShards fans flows across per-core shards by
// flow hash, with per-shard locks and a batched ingest path (AddBatch),
// for pipelines that need to scale with cores.
//
// The backing algorithm is pluggable: WithAlgorithm selects any engine in
// the registry (Space-Saving, CSS, HeavyGuardian, Frequent, Lossy Counting,
// or a user-registered one) behind the same Summarizer surface, with
// HeavyKeeper the default.
package heavykeeper

import (
	"fmt"
	"iter"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/streamsummary"
	"repro/internal/topk"
)

// Version selects the insertion discipline described in the paper.
type Version int

const (
	// VersionParallel is the Hardware Parallel version (paper §III-E):
	// per-array operations are independent, suiting hardware pipelines.
	// This is the default.
	VersionParallel Version = iota
	// VersionMinimum is the Software Minimum version (paper §IV): at most
	// one bucket changes per packet, improving accuracy under tight memory
	// at the cost of the parallel property.
	VersionMinimum
	// VersionBasic is the unoptimized basic version (paper §III-C), kept
	// for completeness and ablations.
	VersionBasic
)

// String implements fmt.Stringer.
func (v Version) String() string {
	switch v {
	case VersionParallel:
		return "parallel"
	case VersionMinimum:
		return "minimum"
	case VersionBasic:
		return "basic"
	default:
		return fmt.Sprintf("Version(%d)", int(v))
	}
}

// Flow is one reported flow.
type Flow struct {
	// ID is the flow identifier as supplied to Add.
	ID []byte
	// Count is the estimated flow size. HeavyKeeper estimates never exceed
	// the true size (paper Theorem 2), barring the rare fingerprint
	// collision, which the admission filter suppresses. Other algorithms
	// carry their own estimate disciplines (Space-Saving never
	// under-estimates, Frequent never over-estimates, ...).
	Count uint64
}

// config collects the options.
type config struct {
	memoryBytes     int
	width           int
	depth           int
	decayBase       float64
	fingerprintBits uint
	version         Version
	versionSet      bool
	seed            uint64
	useHeap         bool
	useMapStore     bool
	expandThreshold uint64
	maxArrays       int
	shards          int
	concurrent      bool
	algorithm       string
	// hkOnly names the HeavyKeeper-specific options that were given, so a
	// non-HeavyKeeper WithAlgorithm can reject them instead of silently
	// ignoring knobs that do not exist on the selected engine.
	hkOnly []string
}

// defaultConfig returns the config New starts from before options apply.
func defaultConfig() config {
	return config{
		depth:           core.DefaultD,
		decayBase:       core.DefaultB,
		fingerprintBits: core.DefaultFingerprintBits,
	}
}

// Option configures New.
type Option func(*config) error

// WithMemory sizes the structure from a total byte budget: k summary
// entries plus bucket arrays filling the remainder, the sizing used in the
// paper's evaluation. Mutually exclusive with WithWidth. For registry
// algorithms the budget feeds the engine's own §VI-A sizing rule.
func WithMemory(bytes int) Option {
	return func(c *config) error {
		if bytes < 1 {
			return fmt.Errorf("%w: got %d", ErrInvalidMemory, bytes)
		}
		c.memoryBytes = bytes
		return nil
	}
}

// WithWidth sets the bucket count per array directly.
func WithWidth(w int) Option {
	return func(c *config) error {
		if w < 1 {
			return fmt.Errorf("%w: got %d", ErrInvalidWidth, w)
		}
		c.width = w
		c.hkOnly = append(c.hkOnly, "WithWidth")
		return nil
	}
}

// WithDepth sets the number of bucket arrays d (default 2).
func WithDepth(d int) Option {
	return func(c *config) error {
		if d < 1 {
			return fmt.Errorf("%w: got %d", ErrInvalidDepth, d)
		}
		c.depth = d
		c.hkOnly = append(c.hkOnly, "WithDepth")
		return nil
	}
}

// WithDecayBase sets the exponential decay base b (default 1.08). Larger
// bases evict residents more aggressively.
func WithDecayBase(b float64) Option {
	return func(c *config) error {
		if b <= 1 {
			return fmt.Errorf("%w: got %v", ErrInvalidDecayBase, b)
		}
		c.decayBase = b
		c.hkOnly = append(c.hkOnly, "WithDecayBase")
		return nil
	}
}

// WithFingerprintBits sets the fingerprint width (default 16).
func WithFingerprintBits(bits uint) Option {
	return func(c *config) error {
		if bits == 0 || bits > 32 {
			return fmt.Errorf("%w: got %d", ErrInvalidFingerprintBits, bits)
		}
		c.fingerprintBits = bits
		c.hkOnly = append(c.hkOnly, "WithFingerprintBits")
		return nil
	}
}

// WithVersion selects the insertion discipline (default VersionParallel).
func WithVersion(v Version) Option {
	return func(c *config) error {
		switch v {
		case VersionParallel, VersionMinimum, VersionBasic:
			c.version = v
			c.versionSet = true
			c.hkOnly = append(c.hkOnly, "WithVersion")
			return nil
		default:
			return fmt.Errorf("%w: got %d", ErrInvalidVersion, int(v))
		}
	}
}

// WithSeed makes hashing and decay deterministic for reproducible runs.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithMinHeap stores the top-k candidates in a binary min-heap instead of
// the default Stream-Summary (paper §III-C uses Stream-Summary for O(1)
// updates; the heap trades that for lower constant memory).
func WithMinHeap() Option {
	return func(c *config) error {
		c.useHeap = true
		c.hkOnly = append(c.hkOnly, "WithMinHeap")
		return nil
	}
}

// WithMapStore stores the top-k candidates in the retained map-indexed
// Stream-Summary instead of the default open-addressed one. The two are
// behaviorally identical — the map variant exists as a differential-testing
// reference and as hkbench's -store=map baseline, so the index swap stays
// measurable; there is no reason to choose it in production.
func WithMapStore() Option {
	return func(c *config) error {
		c.useMapStore = true
		c.hkOnly = append(c.hkOnly, "WithMapStore")
		return nil
	}
}

// WithExpansion enables the paper's §III-F auto-expansion: after threshold
// arrivals that found every mapped bucket saturated by a large counter, an
// additional bucket array is appended (up to maxArrays; 0 = unlimited).
func WithExpansion(threshold uint64, maxArrays int) Option {
	return func(c *config) error {
		if threshold == 0 {
			return ErrInvalidExpansion
		}
		c.expandThreshold = threshold
		c.maxArrays = maxArrays
		c.hkOnly = append(c.hkOnly, "WithExpansion")
		return nil
	}
}

// WithShards makes New return a *Sharded with n per-core shards. Mutually
// exclusive with WithConcurrency. (Under the deprecated NewSharded
// constructor it sets the shard count, defaulting to GOMAXPROCS.)
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: got %d", ErrInvalidShards, n)
		}
		c.shards = n
		return nil
	}
}

// WithConcurrency makes New return a *Concurrent: the structure behind a
// single mutex, safe for modest multi-goroutine loads. Mutually exclusive
// with WithShards, which scales further via per-shard locks.
func WithConcurrency() Option {
	return func(c *config) error {
		c.concurrent = true
		return nil
	}
}

// WithAlgorithm selects the backing algorithm by registry name (default
// "heavykeeper"). Any registered engine works under any frontend; see
// Algorithms for the available names and RegisterAlgorithm to add one.
// HeavyKeeper-specific options (WithWidth, WithDepth, WithDecayBase,
// WithFingerprintBits, WithVersion, WithMinHeap, WithMapStore,
// WithExpansion) conflict with non-HeavyKeeper algorithms.
func WithAlgorithm(name string) Option {
	return func(c *config) error {
		if name == "" {
			return fmt.Errorf("%w: empty name", ErrUnknownAlgorithm)
		}
		c.algorithm = name
		return nil
	}
}

// DefaultMemory is the byte budget used when neither WithMemory nor
// WithWidth is given: 64 KB, comfortably above the paper's highest-accuracy
// operating point for k = 100 on 10M-packet traces.
const DefaultMemory = 64 << 10

// TopK tracks the k largest flows of a stream. It is the single-goroutine
// frontend of the package; New returns one unless WithConcurrency or
// WithShards asks for a synchronized shape.
type TopK struct {
	// Exactly one of t and eng is non-nil: t carries the HeavyKeeper engine
	// on its devirtualized hot path, eng carries a registry engine.
	t   *topk.Tracker
	eng Engine
	cfg config
	k   int
}

// parseConfig validates k and folds the options into a config.
func parseConfig(k int, opts []Option) (config, error) {
	if k < 1 {
		return config{}, fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return config{}, err
		}
	}
	if cfg.width != 0 && cfg.memoryBytes != 0 {
		return config{}, fmt.Errorf("%w: WithWidth and WithMemory are mutually exclusive", ErrOptionConflict)
	}
	if cfg.useHeap && cfg.useMapStore {
		return config{}, fmt.Errorf("%w: WithMinHeap and WithMapStore are mutually exclusive", ErrOptionConflict)
	}
	if cfg.shards != 0 && cfg.concurrent {
		return config{}, fmt.Errorf("%w: WithShards and WithConcurrency are mutually exclusive", ErrOptionConflict)
	}
	if !isHeavyKeeperAlgorithm(cfg.algorithm) && len(cfg.hkOnly) > 0 {
		return config{}, fmt.Errorf("%w: %v do not apply to algorithm %q",
			ErrOptionConflict, cfg.hkOnly, cfg.algorithm)
	}
	// The versioned algorithm names carry their discipline; an explicit
	// WithVersion that disagrees is a conflict, never a silent override.
	if cfg.versionSet {
		versioned := map[string]Version{
			AlgorithmHeavyKeeperMinimum: VersionMinimum,
			AlgorithmHeavyKeeperBasic:   VersionBasic,
		}
		if v, ok := versioned[cfg.algorithm]; ok && v != cfg.version {
			return config{}, fmt.Errorf("%w: WithVersion(%v) vs WithAlgorithm(%q)",
				ErrOptionConflict, cfg.version, cfg.algorithm)
		}
	}
	return cfg, nil
}

// isHeavyKeeperAlgorithm reports whether name selects the native tracker
// path (the empty name is the default HeavyKeeper).
func isHeavyKeeperAlgorithm(name string) bool {
	switch name {
	case "", AlgorithmHeavyKeeper, AlgorithmHeavyKeeperMinimum, AlgorithmHeavyKeeperBasic:
		return true
	}
	return false
}

// sizeWidth converts the config's byte budget into a per-array bucket count:
// k summary entries plus bucket arrays filling the remainder, the sizing
// used in the paper's evaluation.
func sizeWidth(k int, cfg config) int {
	if cfg.width != 0 {
		return cfg.width
	}
	budget := cfg.memoryBytes
	if budget == 0 {
		budget = DefaultMemory
	}
	rest := budget - k*streamsummary.BytesPerEntry
	bucketBytes := core.BucketBytes(cfg.fingerprintBits, core.DefaultCounterBits)
	width := int(float64(rest) / (float64(cfg.depth) * bucketBytes))
	if width < 1 {
		width = 1
	}
	return width
}

// trackerOptions translates a parsed config into the internal tracker
// options; newTracker and the windowed wrapper share it so one
// translation rule covers both deployment shapes.
func trackerOptions(k int, cfg config) topk.Options {
	width := sizeWidth(k, cfg)
	var v topk.Version
	switch cfg.version {
	case VersionParallel:
		v = topk.Parallel
	case VersionMinimum:
		v = topk.Minimum
	case VersionBasic:
		v = topk.Basic
	}
	store := topk.StoreSummary
	if cfg.useHeap {
		store = topk.StoreHeap
	} else if cfg.useMapStore {
		store = topk.StoreSummaryRef
	}
	return topk.Options{
		K:       k,
		Version: v,
		Store:   store,
		Sketch: core.Config{
			D:               cfg.depth,
			W:               width,
			B:               cfg.decayBase,
			FingerprintBits: cfg.fingerprintBits,
			Seed:            cfg.seed,
			ExpandThreshold: cfg.expandThreshold,
			MaxArrays:       cfg.maxArrays,
		},
	}
}

// newTracker builds the HeavyKeeper tracker a parsed config describes.
func newTracker(k int, cfg config) (*topk.Tracker, error) {
	return topk.New(trackerOptions(k, cfg))
}

// applyVersionedAlgorithm folds a versioned HeavyKeeper algorithm name
// into the config's insertion discipline; newTopK and NewWindow share it
// so the name-to-discipline rule cannot drift between deployment shapes.
func applyVersionedAlgorithm(cfg *config) {
	switch cfg.algorithm {
	case AlgorithmHeavyKeeperMinimum:
		cfg.version = VersionMinimum
	case AlgorithmHeavyKeeperBasic:
		cfg.version = VersionBasic
	}
}

// newTopK builds a TopK from a parsed config: the devirtualized HeavyKeeper
// tracker for the default algorithm, a registry engine otherwise.
func newTopK(k int, cfg config) (*TopK, error) {
	applyVersionedAlgorithm(&cfg)
	if isHeavyKeeperAlgorithm(cfg.algorithm) {
		tr, err := newTracker(k, cfg)
		if err != nil {
			return nil, err
		}
		return &TopK{t: tr, cfg: cfg, k: k}, nil
	}
	eng, err := BuildEngine(cfg.algorithm, EngineConfig{
		K:           k,
		MemoryBytes: cfg.memoryBytes,
		Seed:        cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	return &TopK{eng: eng, cfg: cfg, k: k}, nil
}

// Add records one occurrence of flowID (one packet of the flow).
func (t *TopK) Add(flowID []byte) {
	if t.t != nil {
		t.t.Insert(flowID)
		return
	}
	t.eng.Insert(flowID)
}

// keyHash returns the single per-key hash the structure derives everything
// from; Sharded computes it once per packet for routing and hands it down
// through the *hashed entry points so the key bytes are never hashed twice.
func (t *TopK) keyHash(flowID []byte) uint64 {
	if t.t != nil {
		return t.t.KeyHash(flowID)
	}
	return t.eng.KeyHash(flowID)
}

// addHashed, addNHashed, addBatchHashed and queryHashed are the
// precomputed-hash twins of Add/AddN/AddBatch/Query, for the sharded router.
func (t *TopK) addHashed(flowID []byte, h uint64) {
	if t.t != nil {
		t.t.InsertHashed(flowID, h)
		return
	}
	t.eng.InsertHashed(flowID, h)
}

func (t *TopK) addNHashed(flowID []byte, h uint64, n uint64) {
	if t.t != nil {
		t.t.InsertNHashed(flowID, h, n)
		return
	}
	t.eng.InsertNHashed(flowID, h, n)
}

func (t *TopK) addBatchHashed(flowIDs [][]byte, hashes []uint64) {
	if t.t != nil {
		t.t.InsertBatchHashed(flowIDs, hashes)
		return
	}
	if b, ok := t.eng.(BatchEngine); ok {
		b.InsertBatchHashed(flowIDs, hashes)
		return
	}
	for i, id := range flowIDs {
		t.eng.InsertHashed(id, hashes[i])
	}
}

func (t *TopK) queryHashed(flowID []byte, h uint64) uint64 {
	if t.t != nil {
		return t.t.QueryHashed(flowID, h)
	}
	return t.eng.QueryHashed(flowID, h)
}

// AddString is Add for string identifiers. The string is not copied: the
// ingest path reads the bytes once and materializes its own copy only on
// actual admission of a new flow, so the hot path stays allocation-free.
func (t *TopK) AddString(flowID string) { t.Add(bytesOf(flowID)) }

// AddBatch records one occurrence of every flow identifier in flowIDs,
// equivalently to calling Add on each in order but cheaper: fingerprints and
// bucket indexes are precomputed for a chunk of identifiers at a time in
// tight per-array loops, amortizing hash setup and bounds checks. Use it
// whenever arrivals are already buffered (NIC batches, channel drains,
// Sharded ingest). Registry engines without a batched path fall back to a
// per-key loop.
func (t *TopK) AddBatch(flowIDs [][]byte) {
	if t.t != nil {
		t.t.InsertBatch(flowIDs)
		return
	}
	if b, ok := t.eng.(BatchEngine); ok {
		b.InsertBatchHashed(flowIDs, nil)
		return
	}
	for _, id := range flowIDs {
		t.eng.Insert(id)
	}
}

// Merge folds other into t. other must be a *TopK built with the same
// configuration — same algorithm, and for HeavyKeeper the same sketch
// options including WithSeed, so their sketches are bucket-compatible; the
// per-bucket merge rule is documented in internal/core. This is the paper's
// footnote-2 collector pattern: measurement points each sketch their share
// of the traffic and a collector folds the snapshots. other is left
// unmodified; neither may be in concurrent use during Merge. Engines
// without a merge operation return ErrMergeUnsupported.
func (t *TopK) Merge(other Summarizer) error {
	o, ok := other.(*TopK)
	if !ok || o == nil {
		return fmt.Errorf("%w: TopK cannot merge %T", ErrMergeMismatch, other)
	}
	if t.t != nil {
		if o.t == nil {
			return fmt.Errorf("%w: heavykeeper vs %s", ErrMergeMismatch, o.eng.Name())
		}
		if err := t.t.MergeFrom(o.t); err != nil {
			return fmt.Errorf("%w: %v", ErrMergeMismatch, err)
		}
		return nil
	}
	if o.eng == nil {
		return fmt.Errorf("%w: %s vs heavykeeper", ErrMergeMismatch, t.eng.Name())
	}
	return t.eng.MergeFrom(o.eng)
}

// AddN records a weight-n occurrence of flowID — n packets at once, or n
// bytes when ranking flows by volume instead of packet count. Weighted
// updates are this implementation's extension to the paper (its §III-F
// notes the original cannot support them); see internal/topk.InsertN for
// the admission-rule consequence.
func (t *TopK) AddN(flowID []byte, n uint64) {
	if t.t != nil {
		t.t.InsertN(flowID, n)
		return
	}
	t.eng.InsertN(flowID, n)
}

// Query returns the current size estimate for flowID. A flow held nowhere
// reports 0 — "it is a mouse flow" (paper §III-B).
func (t *TopK) Query(flowID []byte) uint64 {
	if t.t != nil {
		return t.t.Query(flowID)
	}
	return t.eng.Query(flowID)
}

// List returns the current top-k flows in descending estimated size.
func (t *TopK) List() []Flow {
	if t.t == nil {
		return t.eng.Top(t.k)
	}
	entries := t.t.Top()
	out := make([]Flow, len(entries))
	for i, e := range entries {
		out[i] = Flow{ID: []byte(e.Key), Count: e.Count}
	}
	return out
}

// All returns an iterator over the current top-k flows in descending
// estimated size. With the default store it streams straight off the
// Stream-Summary's bucket list — no slice is materialized, and breaking
// early costs nothing. The TopK must not be mutated while the iterator is
// consumed (it is single-goroutine anyway).
func (t *TopK) All() iter.Seq[Flow] {
	if t.t == nil {
		return yieldFlows(t.eng.Top(t.k))
	}
	return func(yield func(Flow) bool) {
		for e := range t.t.All() {
			if !yield(Flow{ID: []byte(e.Key), Count: e.Count}) {
				return
			}
		}
	}
}

// topEntries is List in the collector's report shape, for Sharded's merge.
func (t *TopK) topEntries() []metrics.Entry {
	if t.t != nil {
		top := t.t.Top()
		rep := make([]metrics.Entry, len(top))
		for i, e := range top {
			rep[i] = metrics.Entry{Key: e.Key, Count: e.Count}
		}
		return rep
	}
	top := t.eng.Top(t.k)
	rep := make([]metrics.Entry, len(top))
	for i, f := range top {
		rep[i] = metrics.Entry{Key: string(f.ID), Count: f.Count}
	}
	return rep
}

// K returns the configured report size.
func (t *TopK) K() int { return t.k }

// Version returns the configured insertion discipline. It is meaningful for
// the HeavyKeeper algorithm only; registry engines report the default.
func (t *TopK) Version() Version { return t.cfg.version }

// Algorithm returns the backing algorithm's registry name.
func (t *TopK) Algorithm() string {
	if t.t != nil {
		switch t.cfg.version {
		case VersionMinimum:
			return AlgorithmHeavyKeeperMinimum
		case VersionBasic:
			return AlgorithmHeavyKeeperBasic
		}
		return AlgorithmHeavyKeeper
	}
	return t.eng.Name()
}

// MemoryBytes returns the structure's logical memory footprint.
func (t *TopK) MemoryBytes() int {
	if t.t != nil {
		return t.t.MemoryBytes()
	}
	return t.eng.MemoryBytes()
}

// Stats exposes the engine's internal event counters (decays, replacements,
// expansions for sketch engines; at least Packets for all), useful for
// monitoring and tuning.
func (t *TopK) Stats() Stats {
	if t.t != nil {
		return t.t.Sketch().Stats()
	}
	return t.eng.Stats()
}

// StoreIndexStats describes the open-addressed key index of the top-k store
// at a point in time; hkbench reports it so index pressure stays observable.
type StoreIndexStats struct {
	// Capacity is the store's entry capacity (k); TableSize the index size.
	Capacity  int `json:"capacity"`
	TableSize int `json:"table_size"`
	// Occupied is the number of live index slots.
	Occupied int `json:"occupied"`
	// MaxProbe is the largest current displacement of any entry from its
	// home slot.
	MaxProbe int `json:"max_probe"`
	// ProbeHist[d] counts entries displaced exactly d slots from home; the
	// last bin also absorbs anything beyond it.
	ProbeHist []int `json:"probe_hist"`
}

// StoreIndexStats reports the top-k store's index occupancy and probe
// lengths. ok is false when no stats are surfaced for the configured store:
// WithMapStore has no open-addressed index at all, WithMinHeap's index (the
// heap has one too) is not currently reported, and registry engines manage
// their own stores.
func (t *TopK) StoreIndexStats() (st StoreIndexStats, ok bool) {
	if t.t == nil {
		return StoreIndexStats{}, false
	}
	is, ok := t.t.StoreIndexStats()
	if !ok {
		return StoreIndexStats{}, false
	}
	return StoreIndexStats{
		Capacity:  is.Capacity,
		TableSize: is.TableSize,
		Occupied:  is.Occupied,
		MaxProbe:  is.MaxProbe,
		ProbeHist: is.ProbeHist,
	}, true
}
