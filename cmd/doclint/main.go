// Command doclint keeps the repository's markdown documentation honest.
// It checks, for README.md and every file under doc/:
//
//   - that relative markdown links resolve to files that exist in the
//     repository (external http/https/mailto links and pure #anchors are
//     skipped), so code moves cannot silently strand the docs; and
//   - that fenced ```go code blocks are gofmt-formatted. Snippets that are
//     deliberate fragments (not parseable as a file, declaration list or
//     statement list) are skipped — the check gates style, not
//     compilability, which `make examples` covers for the runnable paths.
//
// Exit status is non-zero if any check fails; CI runs this via
// `make docs-lint`.
package main

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links are not used in this repository's docs.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	files := []string{filepath.Join(root, "README.md")}
	docGlob, _ := filepath.Glob(filepath.Join(root, "doc", "*.md"))
	sort.Strings(docGlob)
	files = append(files, docGlob...)

	fails := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			fails++
			continue
		}
		fails += checkLinks(root, f, string(data))
		fails += checkGoFences(f, string(data))
	}
	if fails > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", fails)
		os.Exit(1)
	}
	fmt.Printf("doclint: %d file(s) clean\n", len(files))
}

// checkLinks verifies every relative link target in file exists on disk,
// resolved against the file's own directory (the way a markdown renderer
// resolves it).
func checkLinks(root, file, text string) int {
	fails := 0
	for _, line := range strings.Split(text, "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" { // pure in-page anchor
				continue
			}
			p := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(p); err != nil {
				fmt.Fprintf(os.Stderr, "%s: broken link %q (resolved %s)\n", file, m[1], p)
				fails++
			}
		}
	}
	return fails
}

// checkGoFences gofmt-checks every ```go fenced block that parses. The
// fence content is compared after trimming trailing whitespace so a
// missing final newline inside a fence is not an error.
func checkGoFences(file, text string) int {
	fails := 0
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		j := start
		for j < len(lines) && strings.TrimSpace(lines[j]) != "```" {
			j++
		}
		if j == len(lines) {
			fmt.Fprintf(os.Stderr, "%s:%d: unterminated ```go fence\n", file, i+1)
			return fails + 1
		}
		src := strings.Join(lines[start:j], "\n")
		formatted, err := format.Source([]byte(src))
		if err == nil && strings.TrimRight(string(formatted), "\n") != strings.TrimRight(src, "\n") {
			fmt.Fprintf(os.Stderr, "%s:%d: go snippet is not gofmt-formatted\n", file, start+1)
			fails++
		}
		i = j
	}
	return fails
}
