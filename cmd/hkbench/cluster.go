// hkbench cluster mode: ring-replicated fan-out ingest across several hkd
// nodes, plus truth-based verification of the hkagg global answer. Every
// key in the trace is routed through the same consistent-hash ring the
// deployment documents (internal/cluster.Ring) to MaxReplica nodes, so
// each replica of a flow observes all of that flow's packets — the
// topology under which the aggregator's Max fold is exact and any single
// node death leaves every flow covered by a surviving replica.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	"repro/client"
	"repro/internal/cluster"
	"repro/internal/gen"
)

// clusterNode is one -cluster entry: the TCP ingest address, optionally
// followed by "/httpAddr" for drain-waiting against the node's /stats.
type clusterNode struct {
	name string // full entry, the ring identity
	tcp  string
	http string
}

// clusterReport is the -json document of one cluster-mode run.
type clusterReport struct {
	Nodes          int     `json:"nodes"`
	Replicas       int     `json:"replicas"`
	Packets        int     `json:"packets"`
	SentRecords    int     `json:"sent_records"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Coverage       float64 `json:"coverage,omitempty"`
	Verified       *bool   `json:"verified,omitempty"`
}

// parseClusterNodes splits the -cluster flag.
func parseClusterNodes(spec string) ([]clusterNode, error) {
	var nodes []clusterNode
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		n := clusterNode{name: entry, tcp: entry}
		if i := strings.IndexByte(entry, '/'); i >= 0 {
			n.tcp, n.http = entry[:i], entry[i+1:]
		}
		if n.tcp == "" {
			return nil, fmt.Errorf("hkbench: -cluster entry %q has no TCP address", entry)
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("hkbench: -cluster lists no nodes")
	}
	return nodes, nil
}

// runCluster replicates the trace across the ring and optionally verifies
// the aggregator's global /topk against exact truth counts computed from
// the trace itself. coverageWant gates verification on the aggregator's
// coverage annotation: "full" waits for coverage == 1, "degraded" for
// coverage < 1 (the kill-one-node smoke), "any" verifies immediately.
// verifyOnly skips the ingest and drain phases but still routes the trace
// to recompute the same truth counts — the re-check after a node kill,
// when the cluster already holds exactly one copy of the trace.
func runCluster(spec, verifyAddr, coverageWant string, auth clientAuth, replicas, repeat, batch int, scale float64, seed uint64, dialTimeout, ioTimeout time.Duration, maxRetries int, jsonOut, verifyOnly bool, log *slog.Logger) error {
	if batch < 1 || repeat < 1 {
		return fmt.Errorf("hkbench: -batch and -repeat must be >= 1")
	}
	switch coverageWant {
	case "full", "degraded", "any":
	default:
		return fmt.Errorf("hkbench: -coverage must be full, degraded or any, got %q", coverageWant)
	}
	nodes, err := parseClusterNodes(spec)
	if err != nil {
		return err
	}
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.name
	}
	ring, err := cluster.NewRing(cluster.RingConfig{MaxReplica: replicas, Seed: seed}, names)
	if err != nil {
		return err
	}

	tr, err := gen.Generate(gen.Synthetic(1.0, seed).Scale(scale))
	if err != nil {
		return err
	}
	// Route once: per-node key lists plus the exact whole-trace truth.
	truth := map[string]uint64{}
	perNode := make([][][]byte, len(nodes))
	var locs [8]int
	tr.ForEach(func(key []byte) {
		truth[string(key)] += uint64(repeat)
		for _, n := range ring.Locations(locs[:0], key) {
			perNode[n] = append(perNode[n], key)
		}
	})

	report := clusterReport{Nodes: len(nodes), Replicas: ring.Replicas(), Packets: tr.Len() * repeat}
	if !verifyOnly {
		start := time.Now()
		for i, n := range nodes {
			in, err := client.Dial("tcp", n.tcp,
				auth.ingestOpts(seed^uint64(i+1), dialTimeout, ioTimeout, maxRetries)...)
			if err != nil {
				return fmt.Errorf("hkbench: node %s: %w", n.name, err)
			}
			err = sendReplicated(in, perNode[i], repeat, batch)
			if cerr := in.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("hkbench: node %s: %w", n.name, err)
			}
			report.SentRecords += len(perNode[i]) * repeat
		}
		report.ElapsedSeconds = time.Since(start).Seconds()

		// Drain: wait until every node that exposes an HTTP API has
		// ingested its share, so the aggregator's next collection sees
		// complete state.
		for i, n := range nodes {
			if n.http == "" {
				continue
			}
			api, err := auth.queryClient(n.http)
			if err != nil {
				return fmt.Errorf("hkbench: node %s: %w", n.name, err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			err = api.WaitForRecords(ctx, uint64(len(perNode[i])*repeat))
			cancel()
			if err != nil {
				return fmt.Errorf("hkbench: node %s: %w", n.name, err)
			}
		}
	}

	if verifyAddr != "" {
		api, err := auth.queryClient(verifyAddr)
		if err != nil {
			return fmt.Errorf("hkbench: %w", err)
		}
		ok, coverage, err := verifyAgainstAggregator(api, coverageWant, truth, log)
		if err != nil {
			return err
		}
		report.Coverage = coverage
		report.Verified = &ok
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		if !verifyOnly {
			fmt.Printf("replicated %d packets x%d replicas across %d nodes in %.2fs\n",
				report.Packets, report.Replicas, report.Nodes, report.ElapsedSeconds)
		}
		if report.Verified != nil {
			fmt.Printf("aggregator coverage %.2f\n", report.Coverage)
		}
	}
	if report.Verified != nil && !*report.Verified {
		return fmt.Errorf("hkbench: aggregator global top-k does not match the trace truth")
	}
	if report.Verified != nil && !jsonOut {
		fmt.Println("aggregator /topk matches the trace truth")
	}
	return nil
}

// sendReplicated streams one node's routed keys, repeat times, in frames
// of batch records, through the SDK's reconnecting sender.
func sendReplicated(in *client.Ingest, keys [][]byte, repeat, batch int) error {
	for r := 0; r < repeat; r++ {
		for lo := 0; lo < len(keys); lo += batch {
			hi := min(lo+batch, len(keys))
			if err := in.SendBatch(keys[lo:hi]); err != nil {
				return err
			}
		}
	}
	return nil
}

// verifyAgainstAggregator polls the aggregator's /topk until its coverage
// annotation satisfies want, then checks the global answer against the
// exact truth: every true top flow (with a safety margin above the k
// boundary) must be reported, no reported count may exceed its truth
// (HeavyKeeper never over-estimates absent fingerprint collisions), and
// elephants must come within 10%.
func verifyAgainstAggregator(api *client.Client, want string, truth map[string]uint64, log *slog.Logger) (bool, float64, error) {
	var doc *client.GlobalTopK
	deadline := time.Now().Add(60 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		d, err := api.GlobalTopK(ctx, 0)
		cancel()
		if err == nil {
			doc = d
			switch want {
			case "full":
				if doc.Coverage == 1 && len(doc.Flows) > 0 {
					goto settled
				}
			case "degraded":
				if doc.Coverage < 1 && len(doc.Flows) > 0 {
					goto settled
				}
			default:
				goto settled
			}
		}
		if time.Now().After(deadline) {
			coverage := 0.0
			if doc != nil {
				coverage = doc.Coverage
			}
			return false, coverage, fmt.Errorf("hkbench: aggregator never reached coverage=%s (last %.2f, err %v)", want, coverage, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
settled:

	got := map[string]uint64{}
	for _, f := range doc.Flows {
		got[string(f.ID)] = f.Count
	}

	// True flows by descending count; assert the clear top above the k
	// boundary (a 4/3 count margin keeps the check insensitive to ties
	// and sketch noise at the tail).
	type fc struct {
		key   string
		count uint64
	}
	exact := make([]fc, 0, len(truth))
	for k, c := range truth {
		exact = append(exact, fc{k, c})
	}
	sort.Slice(exact, func(i, j int) bool {
		if exact[i].count != exact[j].count {
			return exact[i].count > exact[j].count
		}
		return exact[i].key < exact[j].key
	})
	k := len(doc.Flows)
	if k == 0 {
		log.Warn("aggregator reports no flows")
		return false, doc.Coverage, nil
	}
	var boundary uint64
	if k < len(exact) {
		boundary = exact[k].count
	}
	ok := true
	for rank, f := range exact {
		if rank >= k || f.count < boundary+(boundary+2)/3 {
			break
		}
		rep, present := got[f.key]
		if !present {
			log.Warn("true top flow missing from global top-k", "flow", f.key, "rank", rank+1, "count", f.count)
			ok = false
			continue
		}
		if rep > f.count {
			log.Warn("flow over-estimated", "flow", f.key, "reported", rep, "true", f.count)
			ok = false
		}
		if float64(rep) < 0.9*float64(f.count) {
			log.Warn("flow under-estimated below 90% of truth", "flow", f.key, "reported", rep, "true", f.count)
			ok = false
		}
	}
	return ok, doc.Coverage, nil
}
