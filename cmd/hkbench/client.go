// hkbench client mode: a load generator and verifier for the hkd daemon.
// It replays a generated trace through the SDK's resilient ingest client
// (TCP stream or UDP datagrams), measures achieved ingest throughput, and
// optionally verifies the daemon's /topk report against a twin summarizer
// built from the daemon's own /config and fed the same trace directly —
// the wire path and the in-process path must agree flow for flow.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"time"

	heavykeeper "repro"
	"repro/client"
	"repro/internal/gen"
	"repro/internal/obs"
)

// clientReport is the -json document of one client-mode run.
type clientReport struct {
	Transport      string  `json:"transport"`
	Packets        int     `json:"packets"`
	Frames         int     `json:"frames"`
	Bytes          int64   `json:"bytes"`
	Batch          int     `json:"batch"`
	Repeat         int     `json:"repeat"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Mpps           float64 `json:"mpps"`
	// DrainSeconds/DrainMpps measure from first send until the daemon
	// reports every record ingested (only with -verify): the daemon-side
	// ingest rate, which is the honest number when the sender outruns it.
	DrainSeconds float64 `json:"drain_seconds,omitempty"`
	DrainMpps    float64 `json:"drain_mpps,omitempty"`
	// Reconnects counts successful re-dials after a send failure;
	// ResentFrames/ResentRecords count the frames replayed through them.
	// Resends are frame-granular and the daemon ingests frames whole, so
	// replaying an unacknowledged frame at worst double-counts it — the
	// accounting here is what lets a reader judge that skew.
	Reconnects    int   `json:"reconnects,omitempty"`
	ResentFrames  int   `json:"resent_frames,omitempty"`
	ResentRecords int   `json:"resent_records,omitempty"`
	Verified      *bool `json:"verified,omitempty"`
	// SendLatency summarizes per-frame SendBatch round-trip-to-socket
	// latency (queue + serialize + write, not daemon processing).
	SendLatency *sendLatency `json:"send_latency,omitempty"`
}

// sendLatency is the per-frame send-latency quantile summary.
type sendLatency struct {
	Count uint64  `json:"count"`
	P50S  float64 `json:"p50_s"`
	P90S  float64 `json:"p90_s"`
	P99S  float64 `json:"p99_s"`
	MaxS  float64 `json:"max_s"`
}

// clientAuth bundles the credential flags shared by client and cluster
// mode: a tenant-scoped bearer token, an explicit tenant id for open
// daemons, and a CA file for TLS-terminated listeners.
type clientAuth struct {
	token  string
	tenant string
	caFile string
}

// ingestOpts translates the auth bundle plus the resilience flags into
// SDK dial options.
func (a clientAuth) ingestOpts(seed uint64, dialTimeout, ioTimeout time.Duration, maxRetries int) []client.IngestOption {
	opts := []client.IngestOption{
		client.IngestWithSeed(seed ^ 0x726574727973), // decorrelate from the trace seed
		client.IngestWithDialTimeout(dialTimeout),
		client.IngestWithIOTimeout(ioTimeout),
		client.IngestWithMaxRetries(maxRetries),
	}
	if a.token != "" {
		opts = append(opts, client.IngestWithToken(a.token))
	}
	if a.tenant != "" {
		opts = append(opts, client.IngestWithTenant(a.tenant))
	}
	if a.caFile != "" {
		opts = append(opts, client.IngestWithCACertFile(a.caFile))
	}
	return opts
}

// queryClient builds the SDK HTTP client for the daemon's API.
func (a clientAuth) queryClient(addr string) (*client.Client, error) {
	var opts []client.Option
	if a.token != "" {
		opts = append(opts, client.WithToken(a.token))
	}
	if a.tenant != "" {
		opts = append(opts, client.WithTenant(a.tenant))
	}
	if a.caFile != "" {
		opts = append(opts, client.WithCACertFile(a.caFile))
	}
	return client.New(addr, opts...)
}

// runClient sends the trace to connect (TCP) or connectUDP, then — when
// verifyAddr names the daemon's HTTP API — checks the daemon's report
// against a local twin. With an empty connect address it verifies only,
// which is how a restarted daemon's restored state is checked.
func runClient(connect, connectUDP, verifyAddr string, auth clientAuth, rate, repeat, batch int, scale float64, seed uint64, dialTimeout, ioTimeout time.Duration, maxRetries int, jsonOut bool, log *slog.Logger) error {
	if batch < 1 || repeat < 1 {
		return fmt.Errorf("hkbench: -batch and -repeat must be >= 1")
	}
	if maxRetries < 0 || dialTimeout < 0 || ioTimeout < 0 {
		return fmt.Errorf("hkbench: -max-retries, -dial-timeout and -io-timeout must not be negative")
	}
	tr, err := gen.Generate(gen.Synthetic(1.0, seed).Scale(scale))
	if err != nil {
		return err
	}
	keys := make([][]byte, 0, tr.Len())
	tr.ForEach(func(key []byte) { keys = append(keys, key) })

	report := clientReport{Transport: "none", Batch: batch, Repeat: repeat}
	ingestOpts := auth.ingestOpts(seed, dialTimeout, ioTimeout, maxRetries)
	start := time.Now()
	switch {
	case connect != "":
		report.Transport = "tcp"
		in, err := client.Dial("tcp", connect, ingestOpts...)
		if err != nil {
			return fmt.Errorf("hkbench: %w", err)
		}
		err = sendTrace(&report, keys, rate, repeat, batch, in, false)
		if cerr := in.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	case connectUDP != "":
		report.Transport = "udp"
		in, err := client.Dial("udp", connectUDP, ingestOpts...)
		if err != nil {
			return fmt.Errorf("hkbench: %w", err)
		}
		err = sendTrace(&report, keys, rate, repeat, batch, in, true)
		if cerr := in.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	if verifyAddr != "" {
		api, err := auth.queryClient(verifyAddr)
		if err != nil {
			return fmt.Errorf("hkbench: %w", err)
		}
		if report.Transport != "none" {
			// The sender can outrun the daemon; wait until every record is
			// ingested and report the daemon-side drain rate alongside the
			// send rate.
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			err := api.WaitForRecords(ctx, uint64(report.Packets))
			cancel()
			if err != nil {
				return fmt.Errorf("hkbench: %w", err)
			}
			report.DrainSeconds = time.Since(start).Seconds()
			if report.DrainSeconds > 0 {
				report.DrainMpps = float64(report.Packets) / report.DrainSeconds / 1e6
			}
		}
		if report.ResentFrames > 0 {
			// A resent frame may have been ingested twice (the failed send
			// could have delivered it before erroring), so an exact twin
			// comparison is no longer meaningful. The resend counters in
			// the report bound the skew.
			log.Warn("skipping strict verify: frames were resent after reconnects",
				"resent_frames", report.ResentFrames, "resent_records", report.ResentRecords)
		} else {
			ok, err := verifyAgainstDaemon(api, keys, repeat, batch)
			if err != nil {
				return err
			}
			report.Verified = &ok
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else if report.Transport != "none" {
		fmt.Printf("sent %d packets in %d frames (%d bytes) over %s in %.2fs: %.2f Mpps\n",
			report.Packets, report.Frames, report.Bytes, report.Transport,
			report.ElapsedSeconds, report.Mpps)
		if report.Reconnects > 0 {
			fmt.Printf("reconnected %d times, resent %d frames (%d records)\n",
				report.Reconnects, report.ResentFrames, report.ResentRecords)
		}
		if report.DrainMpps > 0 {
			fmt.Printf("daemon drained all records in %.2fs: %.2f Mpps ingested\n",
				report.DrainSeconds, report.DrainMpps)
		}
		if sl := report.SendLatency; sl != nil {
			fmt.Printf("send latency over %d frames: p50 %.0fus p90 %.0fus p99 %.0fus max %.0fus\n",
				sl.Count, sl.P50S*1e6, sl.P90S*1e6, sl.P99S*1e6, sl.MaxS*1e6)
		}
	}
	if report.Verified != nil {
		if !*report.Verified {
			return fmt.Errorf("hkbench: daemon report does not match the local twin")
		}
		if !jsonOut {
			fmt.Println("daemon /topk matches the local twin")
		}
	}
	return nil
}

// sendTrace streams the trace repeat times in frames of batch keys
// through the SDK's resilient sender. rate > 0 caps the frame rate. UDP
// sends self-throttle lightly even unlimited, so loopback smoke runs
// don't overrun the receive buffer.
func sendTrace(report *clientReport, keys [][]byte, rate, repeat, batch int, in *client.Ingest, udp bool) error {
	var tick *time.Ticker
	if rate > 0 {
		tick = time.NewTicker(time.Second / time.Duration(rate))
		defer tick.Stop()
	}
	var lat obs.Histogram
	start := time.Now()
	frames := 0
	for r := 0; r < repeat; r++ {
		for lo := 0; lo < len(keys); lo += batch {
			hi := min(lo+batch, len(keys))
			if tick != nil {
				<-tick.C
			}
			sendStart := time.Now()
			if err := in.SendBatch(keys[lo:hi]); err != nil {
				return err
			}
			lat.Observe(time.Since(sendStart))
			frames++
			if udp && frames%8 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
		}
		report.Packets += len(keys)
	}
	report.ElapsedSeconds = time.Since(start).Seconds()
	if sn := lat.Snapshot(); sn.Count > 0 {
		report.SendLatency = &sendLatency{
			Count: sn.Count,
			P50S:  sn.Quantile(0.50).Seconds(),
			P90S:  sn.Quantile(0.90).Seconds(),
			P99S:  sn.Quantile(0.99).Seconds(),
			MaxS:  sn.MaxDuration().Seconds(),
		}
	}
	if report.ElapsedSeconds > 0 {
		report.Mpps = float64(report.Packets) / report.ElapsedSeconds / 1e6
	}
	st := in.Stats()
	report.Frames = st.Frames
	report.Bytes = st.Bytes
	report.Reconnects = st.Reconnects
	report.ResentFrames = st.ResentFrames
	report.ResentRecords = st.ResentRecords
	return nil
}

// verifyAgainstDaemon builds a twin summarizer from the daemon's /config,
// replays the same trace into it directly, and compares the daemon's
// /topk report flow for flow. The caller has already waited for the
// stream to drain. Over UDP, delivery on loopback is expected to be
// complete; any datagram loss shows up here as a count mismatch.
func verifyAgainstDaemon(api *client.Client, keys [][]byte, repeat, batch int) (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	info, err := api.Config(ctx)
	if err != nil {
		return false, fmt.Errorf("hkbench: fetching daemon config: %w", err)
	}
	twin, err := twinFromConfig(info)
	if err != nil {
		return false, err
	}
	for r := 0; r < repeat; r++ {
		for lo := 0; lo < len(keys); lo += batch {
			hi := min(lo+batch, len(keys))
			twin.AddBatch(keys[lo:hi])
		}
	}

	flows, err := api.TopK(ctx, 0)
	if err != nil {
		return false, fmt.Errorf("hkbench: fetching daemon topk: %w", err)
	}
	want := twin.List()
	if len(flows) != len(want) {
		fmt.Printf("verify: daemon reports %d flows, twin %d\n", len(flows), len(want))
		return false, nil
	}
	for i, f := range flows {
		if !bytes.Equal(f.ID, want[i].ID) || f.Count != want[i].Count {
			fmt.Printf("verify: rank %d: daemon %q/%d, twin %q/%d\n",
				i+1, f.ID, f.Count, want[i].ID, want[i].Count)
			return false, nil
		}
	}
	return true, nil
}

// twinFromConfig rebuilds the daemon's summarizer shape from its /config
// echo, so wire-fed daemon and directly-fed twin are bit-compatible.
func twinFromConfig(info map[string]string) (heavykeeper.Summarizer, error) {
	atoi := func(key string, def int) int {
		v, err := strconv.Atoi(info[key])
		if err != nil {
			return def
		}
		return v
	}
	k := atoi("k", 100)
	seed, _ := strconv.ParseUint(info["seed"], 10, 64)
	algo := info["algo"]
	if algo == "" {
		algo = heavykeeper.AlgorithmHeavyKeeper
	}
	opts := []heavykeeper.Option{
		heavykeeper.WithAlgorithm(algo),
		heavykeeper.WithSeed(seed),
	}
	if mem := atoi("mem_bytes", 0); mem > 0 {
		opts = append(opts, heavykeeper.WithMemory(mem))
	}
	if epoch := atoi("epoch", 0); epoch != 0 {
		return heavykeeper.NewWindow(k, epoch, opts...)
	}
	if shards := atoi("shards", 0); shards > 0 {
		opts = append(opts, heavykeeper.WithShards(shards))
	}
	return heavykeeper.New(k, opts...)
}
