// hkbench client mode: a load generator and verifier for the hkd daemon.
// It replays a generated trace over the binary wire protocol (TCP stream
// or UDP datagrams), measures achieved ingest throughput, and optionally
// verifies the daemon's /topk report against a twin summarizer built
// from the daemon's own /config and fed the same trace directly — the
// wire path and the in-process path must agree flow for flow.
package main

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	heavykeeper "repro"
	"repro/internal/gen"
	"repro/internal/xrand"
	"repro/wire"
)

// clientReport is the -json document of one client-mode run.
type clientReport struct {
	Transport      string  `json:"transport"`
	Packets        int     `json:"packets"`
	Frames         int     `json:"frames"`
	Bytes          int64   `json:"bytes"`
	Batch          int     `json:"batch"`
	Repeat         int     `json:"repeat"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Mpps           float64 `json:"mpps"`
	// DrainSeconds/DrainMpps measure from first send until the daemon
	// reports every record ingested (only with -verify): the daemon-side
	// ingest rate, which is the honest number when the sender outruns it.
	DrainSeconds float64 `json:"drain_seconds,omitempty"`
	DrainMpps    float64 `json:"drain_mpps,omitempty"`
	// Reconnects counts successful re-dials after a send failure;
	// ResentFrames/ResentRecords count the frames replayed through them.
	// Resends are frame-granular and the daemon ingests frames whole, so
	// replaying an unacknowledged frame at worst double-counts it — the
	// accounting here is what lets a reader judge that skew.
	Reconnects    int   `json:"reconnects,omitempty"`
	ResentFrames  int   `json:"resent_frames,omitempty"`
	ResentRecords int   `json:"resent_records,omitempty"`
	Verified      *bool `json:"verified,omitempty"`
}

// runClient sends the trace to connect (TCP) or connectUDP, then — when
// verifyAddr names the daemon's HTTP API — checks the daemon's report
// against a local twin. With an empty connect address it verifies only,
// which is how a restarted daemon's restored state is checked.
func runClient(connect, connectUDP, verifyAddr string, rate, repeat, batch int, scale float64, seed uint64, dialTimeout, ioTimeout time.Duration, maxRetries int, jsonOut bool) error {
	if batch < 1 || repeat < 1 {
		return fmt.Errorf("hkbench: -batch and -repeat must be >= 1")
	}
	if maxRetries < 0 || dialTimeout < 0 || ioTimeout < 0 {
		return fmt.Errorf("hkbench: -max-retries, -dial-timeout and -io-timeout must not be negative")
	}
	tr, err := gen.Generate(gen.Synthetic(1.0, seed).Scale(scale))
	if err != nil {
		return err
	}
	keys := make([][]byte, 0, tr.Len())
	tr.ForEach(func(key []byte) { keys = append(keys, key) })

	report := clientReport{Transport: "none", Batch: batch, Repeat: repeat}
	dialer := net.Dialer{Timeout: dialTimeout}
	sender := &resilientSender{
		report:     &report,
		ioTimeout:  ioTimeout,
		maxRetries: maxRetries,
		jitter:     xrand.NewSplitMix64(seed ^ 0x726574727973), // decorrelate from the trace seed
	}
	start := time.Now()
	switch {
	case connect != "":
		report.Transport = "tcp"
		sender.dial = func() (net.Conn, error) { return dialer.Dial("tcp", connect) }
		err = sendTrace(&report, keys, rate, repeat, batch, sender, false)
	case connectUDP != "":
		report.Transport = "udp"
		sender.dial = func() (net.Conn, error) { return dialer.Dial("udp", connectUDP) }
		err = sendTrace(&report, keys, rate, repeat, batch, sender, true)
	}
	if err != nil {
		return err
	}

	if verifyAddr != "" {
		base := verifyAddr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		if report.Transport != "none" {
			// The sender can outrun the daemon; wait until every record is
			// ingested and report the daemon-side drain rate alongside the
			// send rate.
			if err := waitForRecords(base, uint64(report.Packets)); err != nil {
				return err
			}
			report.DrainSeconds = time.Since(start).Seconds()
			if report.DrainSeconds > 0 {
				report.DrainMpps = float64(report.Packets) / report.DrainSeconds / 1e6
			}
		}
		if report.ResentFrames > 0 {
			// A resent frame may have been ingested twice (the failed send
			// could have delivered it before erroring), so an exact twin
			// comparison is no longer meaningful. The resend counters in
			// the report bound the skew.
			fmt.Fprintf(os.Stderr, "hkbench: skipping strict verify: %d frames (%d records) were resent after reconnects\n",
				report.ResentFrames, report.ResentRecords)
		} else {
			ok, err := verifyAgainstDaemon(base, keys, repeat, batch)
			if err != nil {
				return err
			}
			report.Verified = &ok
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else if report.Transport != "none" {
		fmt.Printf("sent %d packets in %d frames (%d bytes) over %s in %.2fs: %.2f Mpps\n",
			report.Packets, report.Frames, report.Bytes, report.Transport,
			report.ElapsedSeconds, report.Mpps)
		if report.Reconnects > 0 {
			fmt.Printf("reconnected %d times, resent %d frames (%d records)\n",
				report.Reconnects, report.ResentFrames, report.ResentRecords)
		}
		if report.DrainMpps > 0 {
			fmt.Printf("daemon drained all records in %.2fs: %.2f Mpps ingested\n",
				report.DrainSeconds, report.DrainMpps)
		}
	}
	if report.Verified != nil {
		if !*report.Verified {
			return fmt.Errorf("hkbench: daemon report does not match the local twin")
		}
		if !jsonOut {
			fmt.Println("daemon /topk matches the local twin")
		}
	}
	return nil
}

// resilientSender owns the client's connection and survives its death:
// a failed send closes the connection, re-dials with exponential backoff
// plus jitter (so a fleet of restarted clients doesn't stampede the
// daemon), replays the frame that failed, and accounts for the replay.
type resilientSender struct {
	report     *clientReport
	dial       func() (net.Conn, error)
	ioTimeout  time.Duration
	maxRetries int
	jitter     *xrand.SplitMix64
	conn       net.Conn
}

// backoff returns the sleep before reconnect attempt n (0-based):
// 50ms·2ⁿ capped at 2s, jittered ±50%.
func (s *resilientSender) backoff(attempt int) time.Duration {
	d := 50 * time.Millisecond << attempt
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	half := uint64(d / 2)
	return time.Duration(half + s.jitter.Next()%(2*half))
}

// send writes one frame, reconnecting and replaying it on failure.
// records is the frame's record count, used only for resend accounting.
func (s *resilientSender) send(frame []byte, records int) error {
	var err error
	if s.conn == nil {
		if s.conn, err = s.dial(); err != nil {
			return fmt.Errorf("hkbench: dial: %w", err)
		}
	}
	if s.writeOnce(frame) == nil {
		return nil
	}
	for attempt := 0; attempt < s.maxRetries; attempt++ {
		time.Sleep(s.backoff(attempt))
		conn, err := s.dial()
		if err != nil {
			continue
		}
		s.conn = conn
		s.report.Reconnects++
		if err := s.writeOnce(frame); err == nil {
			s.report.ResentFrames++
			s.report.ResentRecords += records
			return nil
		}
	}
	return fmt.Errorf("hkbench: send failed after %d reconnect attempts", s.maxRetries)
}

// writeOnce writes the frame on the current connection under the IO
// deadline, closing the connection on failure.
func (s *resilientSender) writeOnce(frame []byte) error {
	if s.ioTimeout > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(s.ioTimeout))
	}
	if _, err := s.conn.Write(frame); err != nil {
		s.conn.Close()
		s.conn = nil
		return err
	}
	return nil
}

func (s *resilientSender) close() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// sendTrace streams the trace repeat times in frames of batch keys
// through the resilient sender. rate > 0 caps the frame rate. UDP sends
// self-throttle lightly even unlimited, so loopback smoke runs don't
// overrun the receive buffer.
func sendTrace(report *clientReport, keys [][]byte, rate, repeat, batch int, sender *resilientSender, udp bool) error {
	defer sender.close()
	var tick *time.Ticker
	if rate > 0 {
		tick = time.NewTicker(time.Second / time.Duration(rate))
		defer tick.Stop()
	}
	var frame []byte
	var err error
	start := time.Now()
	for r := 0; r < repeat; r++ {
		for lo := 0; lo < len(keys); lo += batch {
			hi := lo + batch
			if hi > len(keys) {
				hi = len(keys)
			}
			frame, err = wire.AppendFrame(frame[:0], keys[lo:hi], nil)
			if err != nil {
				return err
			}
			if tick != nil {
				<-tick.C
			}
			if err := sender.send(frame, hi-lo); err != nil {
				return err
			}
			report.Frames++
			report.Bytes += int64(len(frame))
			if udp && report.Frames%8 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
		}
		report.Packets += len(keys)
	}
	report.ElapsedSeconds = time.Since(start).Seconds()
	if report.ElapsedSeconds > 0 {
		report.Mpps = float64(report.Packets) / report.ElapsedSeconds / 1e6
	}
	return nil
}

// verifyAgainstDaemon builds a twin summarizer from the daemon's /config,
// replays the same trace into it directly, and compares the daemon's
// /topk report flow for flow. The caller has already waited for the
// stream to drain. Over UDP, delivery on loopback is expected to be
// complete; any datagram loss shows up here as a count mismatch.
func verifyAgainstDaemon(base string, keys [][]byte, repeat, batch int) (bool, error) {
	var info map[string]string
	if err := getJSON(base+"/config", &info); err != nil {
		return false, fmt.Errorf("hkbench: fetching daemon config: %w", err)
	}
	twin, err := twinFromConfig(info)
	if err != nil {
		return false, err
	}
	for r := 0; r < repeat; r++ {
		for lo := 0; lo < len(keys); lo += batch {
			hi := lo + batch
			if hi > len(keys) {
				hi = len(keys)
			}
			twin.AddBatch(keys[lo:hi])
		}
	}

	var doc struct {
		Flows []struct {
			ID    string `json:"id"`
			Count uint64 `json:"count"`
		} `json:"flows"`
	}
	if err := getJSON(base+"/topk", &doc); err != nil {
		return false, fmt.Errorf("hkbench: fetching daemon topk: %w", err)
	}
	want := twin.List()
	if len(doc.Flows) != len(want) {
		fmt.Printf("verify: daemon reports %d flows, twin %d\n", len(doc.Flows), len(want))
		return false, nil
	}
	for i, f := range doc.Flows {
		wantID := hex.EncodeToString(want[i].ID)
		if f.ID != wantID || f.Count != want[i].Count {
			fmt.Printf("verify: rank %d: daemon %s/%d, twin %s/%d\n",
				i+1, f.ID, f.Count, wantID, want[i].Count)
			return false, nil
		}
	}
	return true, nil
}

// twinFromConfig rebuilds the daemon's summarizer shape from its /config
// echo, so wire-fed daemon and directly-fed twin are bit-compatible.
func twinFromConfig(info map[string]string) (heavykeeper.Summarizer, error) {
	atoi := func(key string, def int) int {
		v, err := strconv.Atoi(info[key])
		if err != nil {
			return def
		}
		return v
	}
	k := atoi("k", 100)
	seed, _ := strconv.ParseUint(info["seed"], 10, 64)
	algo := info["algo"]
	if algo == "" {
		algo = heavykeeper.AlgorithmHeavyKeeper
	}
	opts := []heavykeeper.Option{
		heavykeeper.WithAlgorithm(algo),
		heavykeeper.WithSeed(seed),
	}
	if mem := atoi("mem_bytes", 0); mem > 0 {
		opts = append(opts, heavykeeper.WithMemory(mem))
	}
	if epoch := atoi("epoch", 0); epoch != 0 {
		return heavykeeper.NewWindow(k, epoch, opts...)
	}
	if shards := atoi("shards", 0); shards > 0 {
		opts = append(opts, heavykeeper.WithShards(shards))
	}
	return heavykeeper.New(k, opts...)
}

// waitForRecords polls the daemon's /stats until it has ingested want
// records (or 60s pass).
func waitForRecords(base string, want uint64) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st struct {
			Server struct {
				Records uint64 `json:"records"`
			} `json:"server"`
		}
		if err := getJSON(base+"/stats", &st); err == nil && st.Server.Records >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("hkbench: daemon never reported %d ingested records", want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
