// Command hkbench regenerates the HeavyKeeper paper's evaluation figures
// (Figs 4–36) as text tables, plus this repository's ablation studies.
//
// Usage:
//
//	hkbench -figure 4              # one figure
//	hkbench -figure all            # every figure (takes a while)
//	hkbench -figure ablations      # the repository's extra ablations
//	hkbench -figure 8 -scale 0.1   # closer to paper-scale workloads
//	hkbench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		figure = flag.String("figure", "", "figure number (4-36), 'all', 'ablations', or an ablation name")
		scale  = flag.Float64("scale", 0.02, "scale factor on the paper's packet/flow counts (1.0 = full)")
		seed   = flag.Uint64("seed", 31337, "seed")
		list   = flag.Bool("list", false, "list available figures")
	)
	flag.Parse()

	if *list {
		fmt.Println("paper figures:")
		for _, id := range harness.FigureIDs() {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("ablations:")
		for _, id := range harness.AblationIDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}
	if *figure == "" {
		fmt.Fprintln(os.Stderr, "hkbench: -figure is required (-list to enumerate)")
		os.Exit(1)
	}

	r := harness.NewRunner(harness.RunConfig{Scale: *scale, Seed: *seed})
	fmt.Printf("scale %.3g, seed %d\n\n", r.Config().Scale, r.Config().Seed)

	var ids []string
	switch *figure {
	case "all":
		ids = harness.FigureIDs()
	case "ablations":
		ids = harness.AblationIDs()
	default:
		ids = []string{*figure}
	}
	for _, id := range ids {
		tab, err := run(r, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(tab)
	}
}

func run(r *harness.Runner, id string) (*harness.Table, error) {
	if tab, err := r.Figure(id); err == nil {
		return tab, nil
	}
	return r.Ablation(id)
}
