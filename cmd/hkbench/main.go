// Command hkbench regenerates the HeavyKeeper paper's evaluation figures
// (Figs 4–36) as text tables, plus this repository's ablation studies and an
// ingest-throughput comparison of the concurrency frontends.
//
// Usage:
//
//	hkbench -figure 4              # one figure
//	hkbench -figure all            # every figure (takes a while)
//	hkbench -figure ablations      # the repository's extra ablations
//	hkbench -figure 8 -scale 0.1   # closer to paper-scale workloads
//	hkbench -throughput -shards 8 -batch 256   # TopK vs Concurrent vs Sharded
//	hkbench -throughput -algo spacesaving      # same comparison, another engine
//	hkbench -throughput -json                  # machine-readable results
//	hkbench -throughput -cpuprofile cpu.pprof  # attach pprof evidence
//	hkbench -list
//	hkbench -list-algos            # registered algorithm names, one per line
//
// Client mode drives a running hkd daemon over the wire protocol:
//
//	hkbench -connect 127.0.0.1:4774 -batch 256            # TCP load generator
//	hkbench -connect-udp 127.0.0.1:4774 -rate 5000        # UDP, capped frames/s
//	hkbench -connect HOST:4774 -verify HOST:8474          # send, then check /topk
//	hkbench -verify HOST:8474 -scale 0.02                 # verify only (restart check)
//	hkbench -connect HOST:4774 -repeat 16 -json           # >= 10M keys, JSON report
//
// Cluster mode replicates the trace across several hkd nodes through a
// consistent-hash ring and verifies the hkagg global answer against the
// trace's exact truth counts:
//
//	hkbench -cluster H1:4774/H1:8474,H2:4774/H2:8474,H3:4774/H3:8474 \
//	        -replicas 2 -verify AGG:8574 -coverage full
//	hkbench -cluster ...same spec... -verify AGG:8574 \
//	        -coverage degraded -verify-only             # after killing a node
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	heavykeeper "repro"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

// run carries main's body so that deferred profile writers execute before
// the process exits, even on error paths (os.Exit in main would skip them,
// truncating the CPU profile and dropping the heap profile).
func run() int {
	var (
		figure     = flag.String("figure", "", "figure number (4-36), 'all', 'ablations', or an ablation name")
		scale      = flag.Float64("scale", 0.02, "scale factor on the paper's packet/flow counts (1.0 = full)")
		seed       = flag.Uint64("seed", 31337, "seed")
		list       = flag.Bool("list", false, "list available figures")
		throughput = flag.Bool("throughput", false, "run the ingest throughput comparison instead of a figure")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "shard count (and writer goroutines) for -throughput")
		batch      = flag.Int("batch", 256, "batch size for the batched ingest variants of -throughput")
		algo       = flag.String("algo", heavykeeper.AlgorithmHeavyKeeper, "registered algorithm backing the -throughput frontends (-list-algos to enumerate)")
		listAlgos  = flag.Bool("list-algos", false, "list registered algorithm names, one per line")
		store      = flag.String("store", "open", "top-k store index for -throughput: open (open-addressed) or map (retained reference)")
		jsonOut    = flag.Bool("json", false, "emit -throughput results as JSON (for BENCH_*.json trend files)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		connect    = flag.String("connect", "", "client mode: stream the trace to this hkd TCP ingest address")
		connectUDP = flag.String("connect-udp", "", "client mode: send the trace to this hkd UDP ingest address")
		verify     = flag.String("verify", "", "client mode: after sending (or alone), verify this hkd HTTP API against a local twin")
		rate       = flag.Int("rate", 0, "client mode: cap on frames per second (0 = unlimited)")
		repeat     = flag.Int("repeat", 1, "client mode: times to replay the trace (scale total keys sent)")
		dialTO     = flag.Duration("dial-timeout", 5*time.Second, "client mode: per-dial timeout")
		ioTO       = flag.Duration("io-timeout", 10*time.Second, "client mode: per-frame write deadline (0 disables)")
		maxRetries = flag.Int("max-retries", 3, "client mode: reconnect attempts after a failed send (0 disables resend)")
		token      = flag.String("token", "", "client/cluster mode: tenant-scoped bearer token for authenticated daemons (hello on ingest, Bearer on queries)")
		tenant     = flag.String("tenant", "", "client/cluster mode: tenant id stamped on ingest frames and query requests (open daemons; with -token it must match the token's scope)")
		caCert     = flag.String("ca", "", "client/cluster mode: PEM CA certificate file to trust for TLS daemons")
		clusterTo  = flag.String("cluster", "", "cluster mode: comma-separated hkd nodes (TCPADDR or TCPADDR/HTTPADDR), ring-replicated fan-out ingest")
		replicas   = flag.Int("replicas", 2, "cluster mode: ring replicas per flow (MaxReplica)")
		coverage   = flag.String("coverage", "any", "cluster mode: coverage the aggregator must report before -verify (full, degraded, any)")
		verifyOnly = flag.Bool("verify-only", false, "cluster mode: skip ingest, only verify the aggregator against the trace truth (post-kill re-check)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log encoding: text or json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(*logLevel, *logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hkbench:", err)
		return 2
	}
	blog := obs.Component(logger, "bench")

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hkbench: ", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hkbench: ", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hkbench: ", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hkbench: ", err)
			}
		}()
	}

	if *listAlgos {
		for _, name := range heavykeeper.Algorithms() {
			fmt.Println(name)
		}
		return 0
	}

	auth := clientAuth{token: *token, tenant: *tenant, caFile: *caCert}

	if *clusterTo != "" {
		if *connect != "" || *connectUDP != "" {
			fmt.Fprintln(os.Stderr, "hkbench: -cluster and -connect/-connect-udp are mutually exclusive")
			return 1
		}
		if err := runCluster(*clusterTo, *verify, *coverage, auth, *replicas, *repeat, *batch, *scale, *seed, *dialTO, *ioTO, *maxRetries, *jsonOut, *verifyOnly, blog); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *connect != "" || *connectUDP != "" || *verify != "" {
		if *connect != "" && *connectUDP != "" {
			fmt.Fprintln(os.Stderr, "hkbench: -connect and -connect-udp are mutually exclusive")
			return 1
		}
		if err := runClient(*connect, *connectUDP, *verify, auth, *rate, *repeat, *batch, *scale, *seed, *dialTO, *ioTO, *maxRetries, *jsonOut, blog); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *throughput {
		if err := runThroughput(*shards, *batch, *scale, *seed, *algo, *store, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *list {
		fmt.Println("paper figures:")
		for _, id := range harness.FigureIDs() {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("ablations:")
		for _, id := range harness.AblationIDs() {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("algorithms (for -algo):")
		for _, name := range heavykeeper.Algorithms() {
			fmt.Printf("  %s\n", name)
		}
		return 0
	}
	if *figure == "" {
		fmt.Fprintln(os.Stderr, "hkbench: -figure is required (-list to enumerate)")
		return 1
	}

	r := harness.NewRunner(harness.RunConfig{Scale: *scale, Seed: *seed})
	fmt.Printf("scale %.3g, seed %d\n\n", r.Config().Scale, r.Config().Seed)

	var ids []string
	switch *figure {
	case "all":
		ids = harness.FigureIDs()
	case "ablations":
		ids = harness.AblationIDs()
	default:
		ids = []string{*figure}
	}
	for _, id := range ids {
		tab, err := runFigure(r, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(tab)
	}
	return 0
}

func runFigure(r *harness.Runner, id string) (*harness.Table, error) {
	if tab, err := r.Figure(id); err == nil {
		return tab, nil
	}
	return r.Ablation(id)
}

// throughputResult is one -throughput row, as emitted by -json.
type throughputResult struct {
	Name       string  `json:"name"`
	Goroutines int     `json:"goroutines"`
	Mpps       float64 `json:"mpps"`
	Speedup    float64 `json:"speedup_vs_concurrent_add,omitempty"`
}

// storeIndexReport is the -json rendering of one frontend's store-index
// occupancy and probe-length histogram after the timed ingest.
type storeIndexReport struct {
	Source    string  `json:"source"`
	Capacity  int     `json:"capacity"`
	TableSize int     `json:"table_size"`
	Occupied  int     `json:"occupied"`
	Load      float64 `json:"load"`
	MaxProbe  int     `json:"max_probe"`
	ProbeHist []int   `json:"probe_hist"`
}

// throughputReport is the -json document for one -throughput invocation.
type throughputReport struct {
	Packets    int                `json:"packets"`
	Flows      int                `json:"flows"`
	Shards     int                `json:"shards"`
	Batch      int                `json:"batch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Algo       string             `json:"algo"`
	Store      string             `json:"store"`
	Results    []throughputResult `json:"results"`
	StoreIndex []storeIndexReport `json:"store_index,omitempty"`
}

// runThroughput measures ingest throughput (Mpps) of the three concurrency
// frontends on one zipfian trace: a single TopK (sequential baseline),
// Concurrent with g writer goroutines (per-packet and batched), and Sharded
// with s shards and s writers (per-packet and batched). The speedup column
// is relative to per-packet Concurrent, the paper-era default. algo selects
// the backing engine from the public registry, so every registered
// algorithm gets the same three-frontend comparison. store selects the
// top-k store index: "open" (the open-addressed default) or "map" (the
// retained reference), making the PR 3 index swap measurable from the CLI.
func runThroughput(shards, batch int, scale float64, seed uint64, algo, store string, jsonOut bool) error {
	if shards < 1 || batch < 1 {
		return fmt.Errorf("hkbench: -shards and -batch must be >= 1")
	}
	opts := []heavykeeper.Option{heavykeeper.WithAlgorithm(algo)}
	switch store {
	case "open":
	case "map":
		opts = append(opts, heavykeeper.WithMapStore())
	default:
		return fmt.Errorf("hkbench: -store must be open or map, got %q", store)
	}
	tr, err := gen.Generate(gen.Synthetic(1.0, seed).Scale(scale))
	if err != nil {
		return err
	}
	keys := make([][]byte, 0, tr.Len())
	tr.ForEach(func(key []byte) { keys = append(keys, key) })
	report := throughputReport{
		Packets: len(keys), Flows: tr.Flows(), Shards: shards, Batch: batch,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Algo: algo, Store: store,
	}
	if !jsonOut {
		fmt.Printf("throughput: %d packets, %d flows, %d shards/goroutines, batch %d, algo %s, store %s, GOMAXPROCS %d\n\n",
			len(keys), tr.Flows(), shards, batch, algo, store, runtime.GOMAXPROCS(0))
	}

	const k = 100
	newSummarizer := func(extra ...heavykeeper.Option) (heavykeeper.Summarizer, error) {
		return heavykeeper.New(k, append(append([]heavykeeper.Option{}, opts...), extra...)...)
	}
	// Untimed warmup so the first timed variant doesn't pay the page-in of
	// the trace; it also validates the flag combination once up front.
	warm, err := newSummarizer()
	if err != nil {
		return fmt.Errorf("hkbench: %w", err)
	}
	for _, key := range keys {
		warm.Add(key)
	}

	must := func(extra ...heavykeeper.Option) heavykeeper.Summarizer {
		s, err := newSummarizer(extra...)
		if err != nil {
			panic(err)
		}
		return s
	}
	single := must()
	singleB := must()
	conc := must(heavykeeper.WithConcurrency())
	concB := must(heavykeeper.WithConcurrency())
	shrd := must(heavykeeper.WithShards(shards))
	shrdB := must(heavykeeper.WithShards(shards))

	var base float64
	for _, c := range []struct {
		name string
		g    int
		run  func(part [][]byte)
	}{
		{"TopK.Add (sequential)", 1, func(p [][]byte) {
			for _, key := range p {
				single.Add(key)
			}
		}},
		{"TopK.AddBatch (sequential)", 1, func(p [][]byte) { drainBatches(p, batch, singleB.AddBatch) }},
		{"Concurrent.Add", shards, func(p [][]byte) {
			for _, key := range p {
				conc.Add(key)
			}
		}},
		{"Concurrent.AddBatch", shards, func(p [][]byte) { drainBatches(p, batch, concB.AddBatch) }},
		{"Sharded.Add", shards, func(p [][]byte) {
			for _, key := range p {
				shrd.Add(key)
			}
		}},
		{"Sharded.AddBatch", shards, func(p [][]byte) { drainBatches(p, batch, shrdB.AddBatch) }},
	} {
		elapsed := timeParallel(keys, c.g, c.run)
		mpps := float64(len(keys)) / elapsed.Seconds() / 1e6
		if c.name == "Concurrent.Add" {
			base = mpps
		}
		res := throughputResult{Name: c.name, Goroutines: c.g, Mpps: mpps}
		if base > 0 {
			res.Speedup = mpps / base
		}
		report.Results = append(report.Results, res)
		if !jsonOut {
			speedup := "      -"
			if base > 0 {
				speedup = fmt.Sprintf("%6.2fx", res.Speedup)
			}
			fmt.Printf("%-24s %2d goroutines  %8.2f Mpps  %s\n", c.name, c.g, mpps, speedup)
		}
	}
	for _, src := range []struct {
		name string
		s    heavykeeper.Summarizer
	}{{"TopK", single}, {"Sharded.AddBatch", shrdB}} {
		if r, ok := src.s.(heavykeeper.StoreIndexReporter); ok {
			if st, ok := r.StoreIndexStats(); ok {
				report.StoreIndex = append(report.StoreIndex, indexReport(src.name, st))
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	for _, st := range report.StoreIndex {
		fmt.Printf("\n%s store index: %d/%d slots (load %.2f), max probe %d, probe hist %v\n",
			st.Source, st.Occupied, st.TableSize, st.Load, st.MaxProbe, st.ProbeHist)
	}
	return nil
}

// indexReport converts store index stats into the -json shape.
func indexReport(source string, st heavykeeper.StoreIndexStats) storeIndexReport {
	load := 0.0
	if st.TableSize > 0 {
		load = float64(st.Occupied) / float64(st.TableSize)
	}
	return storeIndexReport{
		Source:    source,
		Capacity:  st.Capacity,
		TableSize: st.TableSize,
		Occupied:  st.Occupied,
		Load:      load,
		MaxProbe:  st.MaxProbe,
		ProbeHist: st.ProbeHist,
	}
}

// timeParallel splits keys into g contiguous parts and runs fn on each from
// its own goroutine, returning the wall time.
func timeParallel(keys [][]byte, g int, fn func(part [][]byte)) time.Duration {
	var wg sync.WaitGroup
	per := (len(keys) + g - 1) / g
	start := time.Now()
	for i := 0; i < g; i++ {
		lo := i * per
		hi := lo + per
		if lo >= len(keys) {
			break
		}
		if hi > len(keys) {
			hi = len(keys)
		}
		wg.Add(1)
		go func(part [][]byte) {
			defer wg.Done()
			fn(part)
		}(keys[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}

// drainBatches feeds part to add in batches of size batch.
func drainBatches(part [][]byte, batch int, add func([][]byte)) {
	for lo := 0; lo < len(part); lo += batch {
		hi := lo + batch
		if hi > len(part) {
			hi = len(part)
		}
		add(part[lo:hi])
	}
}
