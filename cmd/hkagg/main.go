// Command hkagg is the cluster aggregator: it maintains a member list of
// hkd nodes, pulls their sketch state over the CRC-authenticated GET
// /snapshot endpoint on a per-node collection loop (timeout, exponential
// backoff with jitter, three-state health machine), and serves the global
// top-k with failure-aware annotations — a coverage fraction and per-node
// staleness — so callers can tell a complete answer from a degraded one.
//
// Usage:
//
//	hkagg -nodes 10.0.0.1:8474,10.0.0.2:8474,10.0.0.3:8474
//	hkagg -nodes ... -policy max            # ring-replicated ingest (default)
//	hkagg -nodes ... -policy sum            # partitioned ingest, sketch fold
//	hkagg -nodes ... -live=false            # fold on-disk generations only
//	hkagg -listen-http 127.0.0.1:0 -addr-file /tmp/hkagg.addr
//
// Policy must match the ingest topology: with hkbench -cluster (every
// flow replicated to its ring replica set) each member holds a full count
// for the flows it owns, so -policy max reconstructs exact global counts
// and tolerates any single node's death; with disjoint per-node traffic,
// -policy sum folds the raw same-seed sketches instead. See
// doc/cluster.md for the topology and the staleness/coverage contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/collector"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nodesFlag  = flag.String("nodes", "", "comma-separated hkd members (host:port or http://host:port); required")
		listenHTTP = flag.String("listen-http", ":8574", "global query/metrics API listen address")
		policy     = flag.String("policy", "max", "fold policy: max (replicated ingest) or sum (partitioned ingest)")
		interval   = flag.Duration("interval", cluster.DefaultInterval, "per-node collection cadence while healthy")
		timeout    = flag.Duration("timeout", cluster.DefaultTimeout, "one snapshot fetch end to end")
		live       = flag.Bool("live", true, "request on-demand snapshots (?live=1) instead of newest on-disk generations")
		seed       = flag.Uint64("seed", 31337, "backoff jitter seed")
		addrFile   = flag.String("addr-file", "", "write the bound HTTP address to this file (for ephemeral ports)")
		token      = flag.String("token", "", "bearer token for snapshot fetches from auth-protected hkd members")
		caCert     = flag.String("ca", "", "PEM CA certificate file to trust for TLS hkd members")
		quiet      = flag.Bool("quiet", false, "suppress operational logging")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log encoding: text or json")
		debugAddr  = flag.String("debug-addr", "", "opt-in debug listener (net/http/pprof) address ('' disables)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(*logLevel, *logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hkagg:", err)
		return 2
	}
	if *quiet {
		logger = obs.Discard()
	}
	log := obs.Component(logger, "main")

	if *nodesFlag == "" {
		fmt.Fprintln(os.Stderr, "hkagg: -nodes is required")
		return 2
	}
	var nodes []string
	for _, n := range strings.Split(*nodesFlag, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	var pol collector.Policy
	switch *policy {
	case "max":
		pol = collector.Max
	case "sum":
		pol = collector.Sum
	default:
		fmt.Fprintf(os.Stderr, "hkagg: -policy must be max or sum, got %q\n", *policy)
		return 2
	}

	agg, err := cluster.New(cluster.Config{
		Nodes:      nodes,
		Policy:     pol,
		Interval:   *interval,
		Timeout:    *timeout,
		Live:       *live,
		Seed:       *seed,
		Token:      *token,
		CACertFile: *caCert,
		Logger:     logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hkagg:", err)
		return 1
	}
	log.Info("starting",
		"nodes", len(nodes), "policy", *policy, "interval", interval.String(),
		"timeout", timeout.String(), "live", *live, "http", *listenHTTP,
		"debug", *debugAddr, "auth", *token != "", "tls", *caCert != "")
	agg.Start()
	defer agg.Stop()

	var debugLn net.Listener
	if *debugAddr != "" {
		debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hkagg: debug listener:", err)
			return 1
		}
		debugSrv := &http.Server{Handler: obs.DebugHandler()}
		go func() {
			if err := debugSrv.Serve(debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
				log.Error("debug listener failed", "err", err)
			}
		}()
		log.Info("debug listener up", "addr", debugLn.Addr().String())
		defer debugLn.Close()
	}

	ln, err := net.Listen("tcp", *listenHTTP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hkagg:", err)
		return 1
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, ln.Addr()); err != nil {
			fmt.Fprintln(os.Stderr, "hkagg:", err)
			return 1
		}
	}
	httpSrv := &http.Server{Handler: agg.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	log.Info("serving global top-k", "addr", ln.Addr().String(), "members", len(nodes))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "hkagg:", err)
		return 1
	}
	log.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hkagg: shutdown:", err)
		return 1
	}
	return 0
}

// writeAddrFile publishes the bound address atomically (temp + rename) so
// a polling reader never sees a partial file.
func writeAddrFile(path string, addr net.Addr) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte("http="+addr.String()+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
