// Command hktopk replays a packet trace through one of the implemented
// top-k algorithms and reports the found flows with their accuracy against
// ground truth.
//
// Usage:
//
//	hktopk -trace campus.hktr -algo HeavyKeeper -k 100 -mem 50
//	hktopk -dataset caida -scale 0.02 -algo SS -k 100 -mem 20
//	hktopk -dataset zipf -algo spacesaving        # registry names work too
//	hktopk -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	heavykeeper "repro"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/trace"
)

var algoNames = []string{
	harness.AlgoHK, harness.AlgoHKMinimum, harness.AlgoHKBasic,
	harness.AlgoSS, harness.AlgoLC, harness.AlgoCSS, harness.AlgoCM,
	harness.AlgoFrequent, harness.AlgoElastic, harness.AlgoColdFilter,
	harness.AlgoCounterTree, harness.AlgoGuardian,
}

// printAlgos lists the paper legend names plus the public registry names
// (both are accepted by -algo; the registry includes user-registered
// engines).
func printAlgos() {
	for _, n := range algoNames {
		fmt.Println(n)
	}
	for _, n := range heavykeeper.Algorithms() {
		fmt.Println(n)
	}
}

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file from hkgen")
		dataset   = flag.String("dataset", "", "generate on the fly: campus, caida, or zipf")
		skew      = flag.Float64("skew", 1.0, "zipf skew (zipf dataset only)")
		scale     = flag.Float64("scale", 0.02, "scale for on-the-fly generation")
		algo      = flag.String("algo", harness.AlgoHK, "algorithm name (-list to enumerate)")
		k         = flag.Int("k", 100, "report size")
		memKB     = flag.Int("mem", 50, "memory budget in KB")
		seed      = flag.Uint64("seed", 31337, "seed")
		show      = flag.Int("show", 10, "how many reported flows to print")
		list      = flag.Bool("list", false, "list available algorithms")
	)
	flag.Parse()

	if *list {
		printAlgos()
		return
	}

	tr := loadTrace(*tracePath, *dataset, *skew, *scale, *seed)
	a, err := harness.Build(*algo, *memKB*1024, *k, *seed)
	if err != nil {
		fatal(err.Error())
	}
	if cr, ok := a.(harness.CandidateRanker); ok {
		cr.SetCandidates(tr.IDs)
	}

	start := time.Now()
	tr.ForEach(a.Insert)
	elapsed := time.Since(start)

	reported := a.Top(*k)
	oracle := metrics.FromCounts(tr.ExactCounts())
	trueTop := oracle.TopKSet(*k)

	fmt.Printf("algorithm:  %s\n", a.Name())
	fmt.Printf("memory:     %d KB budget (%d bytes used)\n", *memKB, a.MemoryBytes())
	fmt.Printf("trace:      %s, %d packets, %d flows\n", tr.Spec.Name, tr.Len(), tr.Flows())
	fmt.Printf("throughput: %.2f Mps\n", float64(tr.Len())/elapsed.Seconds()/1e6)
	fmt.Printf("precision:  %.4f\n", metrics.Precision(reported, trueTop))
	fmt.Printf("ARE:        %.6g\n", metrics.ARE(reported, oracle))
	fmt.Printf("AAE:        %.6g\n", metrics.AAE(reported, oracle))
	fmt.Printf("top %d reported flows:\n", *show)
	for i, e := range reported {
		if i >= *show {
			break
		}
		mark := " "
		if trueTop[e.Key] {
			mark = "*"
		}
		fmt.Printf("  %s #%-3d %x  est=%-8d true=%d\n", mark, i+1, e.Key, e.Count, oracle.Count(e.Key))
	}
	fmt.Println("(* = member of the true top-k)")
}

func loadTrace(path, dataset string, skew, scale float64, seed uint64) *gen.Trace {
	if path != "" {
		tr, err := trace.ReadFile(path)
		if err != nil {
			fatal(err.Error())
		}
		return tr
	}
	if dataset == "" {
		fatal("hktopk: provide -trace FILE or -dataset NAME")
	}
	var spec gen.Spec
	switch dataset {
	case "campus":
		spec = gen.Campus(seed)
	case "caida":
		spec = gen.CAIDA(seed)
	case "zipf":
		spec = gen.Synthetic(skew, seed)
	default:
		fatal(fmt.Sprintf("hktopk: unknown dataset %q", dataset))
	}
	tr, err := gen.Generate(spec.Scale(scale))
	if err != nil {
		fatal(err.Error())
	}
	return tr
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
