// Command hkd is the network-facing top-k telemetry daemon: it ingests
// flow arrivals over the binary wire protocol (TCP stream or one frame
// per UDP datagram), serves top-k/point queries and Prometheus metrics
// over HTTP, and survives restarts through snapshot persistence.
//
// Usage:
//
//	hkd                                   # defaults: tcp+udp :4774, http :8474
//	hkd -k 200 -mem 128 -shards 8        # sharded engine, 128 KB budget
//	hkd -algo spacesaving                # any registry algorithm (no snapshots)
//	hkd -epoch 10000000                  # windowed reports over the last ~10M items
//	hkd -snapshot /var/lib/hkd.snap -snapshot-interval 30s
//	hkd -listen-tcp 127.0.0.1:0 -addr-file /tmp/hkd.addrs   # ephemeral ports
//	hkd -tls-cert cert.pem -tls-key key.pem \
//	    -token-file tokens.txt -admin-token S3CRET           # multi-tenant TLS
//	hkd -log-level debug -log-format json                    # structured logs
//	hkd -debug-addr 127.0.0.1:6060                           # opt-in pprof listener
//
// With -snapshot, state is restored at startup from the newest intact
// snapshot generation rooted at the path, written periodically, on
// SIGHUP (checkpoint without restart), and once more on graceful
// shutdown (SIGINT/SIGTERM), so a restarted daemon resumes with the
// counts it had even after a crash mid-write. Snapshots cover the
// HeavyKeeper algorithm family; registry engines and -epoch windows run
// in-memory only.
//
// Under sustained overload the daemon degrades gracefully instead of
// falling over: -max-conns, -idle-timeout and -max-inflight bound
// admission, and past the queue (or -mem-highwater) watermark it sheds
// load by weighted batch sampling. See doc/operations.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	heavykeeper "repro"
	"repro/internal/obs"
	"repro/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listenTCP  = flag.String("listen-tcp", ":4774", "stream-ingest listen address ('' disables)")
		listenUDP  = flag.String("listen-udp", ":4774", "datagram-ingest listen address ('' disables)")
		listenHTTP = flag.String("listen-http", ":8474", "query/metrics API listen address ('' disables)")
		algo       = flag.String("algo", heavykeeper.AlgorithmHeavyKeeper, "registered algorithm backing the daemon")
		k          = flag.Int("k", 100, "report size")
		memKB      = flag.Int("mem", 64, "memory budget in KB")
		seed       = flag.Uint64("seed", 31337, "hash/decay seed (deterministic across restarts)")
		shards     = flag.Int("shards", 0, "per-core engine shards (0 = single engine behind one mutex)")
		epoch      = flag.Int("epoch", 0, "report over approximately the last N items instead of the whole stream (two-pane window; 0 = cumulative)")
		snapshot   = flag.String("snapshot", "", "snapshot base path: restored at start (newest intact generation), written periodically, on SIGHUP and on shutdown")
		snapEvery  = flag.Duration("snapshot-interval", time.Minute, "periodic snapshot cadence")
		snapKeep   = flag.Int("snapshot-keep", 3, "snapshot generations to retain")
		addrFile   = flag.String("addr-file", "", "write the bound listener addresses to this file (for ephemeral ports)")
		drainGrace = flag.Duration("drain-grace", time.Second, "how long established connections get to finish in-flight frames at shutdown (0..10m)")
		maxConns   = flag.Int("max-conns", 256, "stream-ingest connection cap (-1 = unlimited)")
		idleAfter  = flag.Duration("idle-timeout", 0, "evict stream connections idle for this long (0 disables)")
		maxInfl    = flag.Int("max-inflight", 0, "concurrent summarizer batch calls (0 = 2 per core)")
		memHigh    = flag.Int("mem-highwater", 0, "heap megabytes that trigger degraded load shedding (0 disables)")
		tlsCert    = flag.String("tls-cert", "", "PEM certificate file; with -tls-key, serves TCP ingest and the HTTP API over TLS")
		tlsKey     = flag.String("tls-key", "", "PEM private key file for -tls-cert")
		tokenFile  = flag.String("token-file", "", "tenant token file ('token tenant' per line, # comments); enables auth and is re-read on SIGHUP")
		adminToken = flag.String("admin-token", "", "bearer token granting cross-tenant queries and POST /config (enables auth)")
		maxTenants = flag.Int("max-tenants", 0, "dynamically admitted tenant cap (0 = server default)")
		tenantMem  = flag.Int("tenant-mem", 0, "total KB budget across dynamically admitted tenants, LRU-evicted past it (0 = unlimited)")
		quiet      = flag.Bool("quiet", false, "suppress operational logging")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log encoding: text or json")
		debugAddr  = flag.String("debug-addr", "", "opt-in debug listener (net/http/pprof) address ('' disables)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(*logLevel, *logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hkd:", err)
		return 2
	}
	if *quiet {
		logger = obs.Discard()
	}
	log := obs.Component(logger, "main")

	sum, restored, restoreDur, err := buildSummarizer(*algo, *k, *memKB, *seed, *shards, *epoch, *snapshot, log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hkd:", err)
		return 1
	}

	// /config is the contract hkbench -verify rebuilds its twin from, so it
	// must describe the summarizer actually serving — which after a restore
	// is the snapshot's construction config, not this invocation's flags.
	// The construction config rides in an .info sidecar written next to
	// the snapshot on fresh start; a restore reads it back, so a restart
	// with different flags still reports (and serves) the original shape.
	info := map[string]string{
		"algo":      *algo,
		"mem_bytes": strconv.Itoa(*memKB * 1024),
		"seed":      strconv.FormatUint(*seed, 10),
		"shards":    strconv.Itoa(*shards),
		"epoch":     strconv.Itoa(*epoch),
	}
	if *snapshot != "" {
		if restored {
			saved, err := readInfoSidecar(*snapshot + ".info")
			if err != nil {
				log.Warn("no usable config sidecar; /config reports this invocation's flags", "err", err)
				// The structural shape at least is derivable from the
				// restored summarizer itself.
				if sh, ok := sum.(*heavykeeper.Sharded); ok {
					info["shards"] = strconv.Itoa(sh.Shards())
				} else {
					info["shards"] = "0"
				}
			} else {
				info = saved
			}
		} else if err := writeInfoSidecar(*snapshot+".info", info); err != nil {
			fmt.Fprintln(os.Stderr, "hkd:", err)
			return 1
		}
	}
	info["restored"] = strconv.FormatBool(restored)
	if *memHigh < 0 {
		fmt.Fprintln(os.Stderr, "hkd: -mem-highwater must not be negative")
		return 1
	}
	tokens := map[string]string{}
	if *tokenFile != "" {
		if tokens, err = loadTokenFile(*tokenFile); err != nil {
			fmt.Fprintln(os.Stderr, "hkd:", err)
			return 1
		}
		log.Info("tenant tokens loaded", "count", len(tokens), "path", *tokenFile)
	}

	// One structured line carries the whole effective configuration, so a
	// log scrape can always reconstruct how a given daemon was launched.
	log.Info("starting",
		"algo", *algo, "k", *k, "mem_kb", *memKB, "seed", *seed,
		"shards", *shards, "epoch", *epoch,
		"snapshot", *snapshot, "restored", restored,
		"tcp", *listenTCP, "udp", *listenUDP, "http", *listenHTTP,
		"debug", *debugAddr, "max_conns", *maxConns, "max_inflight", *maxInfl,
		"mem_highwater_mb", *memHigh, "auth", *tokenFile != "" || *adminToken != "",
		"tls", *tlsCert != "")

	srv, err := server.New(server.Config{
		Summarizer:         sum,
		NewSummarizer:      tenantFactory(*algo, *memKB, *seed, *shards, *epoch),
		MaxTenants:         *maxTenants,
		TenantMemoryBudget: *tenantMem * 1024,
		Tokens:             tokens,
		AdminToken:         *adminToken,
		TLSCertFile:        *tlsCert,
		TLSKeyFile:         *tlsKey,
		TCPAddr:            *listenTCP,
		UDPAddr:            *listenUDP,
		HTTPAddr:           *listenHTTP,
		MaxConns:           *maxConns,
		IdleTimeout:        *idleAfter,
		MaxInflight:        *maxInfl,
		DrainGrace:         *drainGrace,
		MemHighWater:       uint64(*memHigh) << 20,
		SnapshotPath:       *snapshot,
		SnapshotInterval:   *snapEvery,
		SnapshotKeep:       *snapKeep,
		Info:               info,
		Logger:             logger,
		RestoreDuration:    restoreDur,
	})
	if err != nil {
		if errors.Is(err, server.ErrInvalidDrainGrace) {
			fmt.Fprintln(os.Stderr, "hkd: -drain-grace:", err)
			return 2
		}
		fmt.Fprintln(os.Stderr, "hkd:", err)
		return 1
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "hkd:", err)
		return 1
	}

	// The debug listener is opt-in and separate from the API port so pprof
	// never rides on an operator-exposed address by accident.
	var debugLn net.Listener
	if *debugAddr != "" {
		debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hkd: debug listener:", err)
			srv.Shutdown(context.Background())
			return 1
		}
		debugSrv := &http.Server{Handler: obs.DebugHandler()}
		go func() {
			if err := debugSrv.Serve(debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
				log.Error("debug listener failed", "err", err)
			}
		}()
		log.Info("debug listener up", "addr", debugLn.Addr().String())
		defer debugLn.Close()
	}

	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, srv, debugLn); err != nil {
			fmt.Fprintln(os.Stderr, "hkd:", err)
			srv.Shutdown(context.Background())
			return 1
		}
	}

	// SIGHUP = "checkpoint and reload": operators snapshot before risky
	// moments (deploys, migrations) and rotate tenant tokens, both
	// without bouncing the daemon.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if *tokenFile != "" {
				if tokens, err := loadTokenFile(*tokenFile); err != nil {
					log.Warn("SIGHUP token reload failed, keeping previous tokens", "err", err)
				} else {
					srv.SetTokens(tokens)
					log.Info("SIGHUP tokens reloaded", "count", len(tokens))
				}
			}
			if *snapshot == "" {
				if *tokenFile == "" {
					log.Info("SIGHUP ignored: no -snapshot path or -token-file configured")
				}
				continue
			}
			if err := srv.Snapshot(); err != nil {
				log.Error("SIGHUP snapshot failed", "err", err)
			} else {
				log.Info("SIGHUP snapshot written")
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hkd: shutdown:", err)
		return 1
	}
	return 0
}

// buildSummarizer restores from the snapshot when one exists (restored
// reports which and restoreDur how long the load took), otherwise
// constructs the summarizer the flags describe.
func buildSummarizer(algo string, k, memKB int, seed uint64, shards, epoch int, snapshot string, log *slog.Logger) (sum heavykeeper.Summarizer, restored bool, restoreDur time.Duration, err error) {
	if snapshot != "" && epoch != 0 {
		return nil, false, 0, fmt.Errorf("-snapshot and -epoch are mutually exclusive (windowed state expires within one window)")
	}
	if snapshot != "" {
		start := time.Now()
		sum, err := server.LoadSnapshot(snapshot)
		if err != nil {
			return nil, false, 0, err
		}
		if sum != nil {
			restoreDur = time.Since(start)
			log.Info("state restored",
				"path", snapshot, "k", sum.K(), "bytes", sum.MemoryBytes(),
				"duration_ms", restoreDur.Milliseconds())
			return sum, true, restoreDur, nil
		}
	}
	opts := []heavykeeper.Option{
		heavykeeper.WithAlgorithm(algo),
		heavykeeper.WithMemory(memKB * 1024),
		heavykeeper.WithSeed(seed),
	}
	if epoch != 0 {
		sum, err := heavykeeper.NewWindow(k, epoch, opts...)
		return sum, false, 0, err
	}
	if shards > 0 {
		opts = append(opts, heavykeeper.WithShards(shards))
	} else {
		opts = append(opts, heavykeeper.WithConcurrency())
	}
	sum, err = heavykeeper.New(k, opts...)
	return sum, false, 0, err
}

// tenantFactory builds the per-tenant summarizer constructor: every
// dynamically admitted tenant gets the same engine shape as the default
// (algorithm, memory budget, seed, sharding, windowing), differing only
// in k, which hot reconfiguration may grow per tenant.
func tenantFactory(algo string, memKB int, seed uint64, shards, epoch int) func(k int) (heavykeeper.Summarizer, error) {
	return func(k int) (heavykeeper.Summarizer, error) {
		opts := []heavykeeper.Option{
			heavykeeper.WithAlgorithm(algo),
			heavykeeper.WithMemory(memKB * 1024),
			heavykeeper.WithSeed(seed),
		}
		if epoch != 0 {
			return heavykeeper.NewWindow(k, epoch, opts...)
		}
		if shards > 0 {
			opts = append(opts, heavykeeper.WithShards(shards))
		} else {
			opts = append(opts, heavykeeper.WithConcurrency())
		}
		return heavykeeper.New(k, opts...)
	}
}

// loadTokenFile parses a tenant token file: one "token tenant" pair per
// line (any whitespace between), blank lines and #-comments ignored.
func loadTokenFile(path string) (map[string]string, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tokens := map[string]string{}
	for i, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'token tenant', got %q", path, i+1, line)
		}
		if _, dup := tokens[fields[0]]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate token", path, i+1)
		}
		tokens[fields[0]] = fields[1]
	}
	return tokens, nil
}

// writeInfoSidecar records the construction config next to the snapshot
// (atomically), so a restarted daemon's /config describes the restored
// state rather than whatever flags the restart happened to use.
func writeInfoSidecar(path string, info map[string]string) error {
	body, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readInfoSidecar loads the construction config written by a previous run.
func readInfoSidecar(path string) (map[string]string, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var info map[string]string
	if err := json.Unmarshal(body, &info); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return info, nil
}

// writeAddrFile publishes the bound addresses atomically (temp + rename)
// so a polling reader never sees a partial file.
func writeAddrFile(path string, srv *server.Server, debugLn net.Listener) error {
	var body string
	if a := srv.TCPAddr(); a != nil {
		body += "tcp=" + a.String() + "\n"
	}
	if a := srv.UDPAddr(); a != nil {
		body += "udp=" + a.String() + "\n"
	}
	if a := srv.HTTPAddr(); a != nil {
		body += "http=" + a.String() + "\n"
	}
	if debugLn != nil {
		body += "debug=" + debugLn.Addr().String() + "\n"
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
