// Command hkcert generates a self-signed TLS certificate for hkd's
// -tls-cert/-tls-key flags and the SDK's CA-file options — the
// batteries-included deployment shape for lab and smoke-test clusters
// where a real CA is overkill. Clients trust the certificate file itself
// (hkbench -ca, hkagg -ca, client.WithCACertFile), so no system trust
// store changes are needed.
//
// Usage:
//
//	hkcert -cert cert.pem -key key.pem
//	hkcert -hosts 127.0.0.1,localhost,10.0.0.7 -days 90
//
// Production deployments should use certificates from a real CA instead.
package main

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"flag"
	"fmt"
	"math/big"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		certOut = flag.String("cert", "cert.pem", "certificate output path (PEM)")
		keyOut  = flag.String("key", "key.pem", "private key output path (PEM, mode 0600)")
		hosts   = flag.String("hosts", "127.0.0.1,localhost", "comma-separated SANs: IP addresses and DNS names the certificate is valid for")
		days    = flag.Int("days", 365, "validity period in days")
		cn      = flag.String("cn", "hkd", "certificate common name")
	)
	flag.Parse()

	if *days < 1 {
		fmt.Fprintln(os.Stderr, "hkcert: -days must be >= 1")
		return 2
	}
	tmpl := x509.Certificate{
		Subject:   pkix.Name{CommonName: *cn},
		NotBefore: time.Now().Add(-time.Hour), // tolerate clock skew on fresh hosts
		NotAfter:  time.Now().Add(time.Duration(*days) * 24 * time.Hour),
		KeyUsage:  x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage: []x509.ExtKeyUsage{
			x509.ExtKeyUsageServerAuth,
		},
		// IsCA lets clients pin the certificate file itself as a root.
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	for _, h := range strings.Split(*hosts, ",") {
		h = strings.TrimSpace(h)
		if h == "" {
			continue
		}
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	if len(tmpl.IPAddresses) == 0 && len(tmpl.DNSNames) == 0 {
		fmt.Fprintln(os.Stderr, "hkcert: -hosts lists no usable IPs or DNS names")
		return 2
	}

	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hkcert:", err)
		return 1
	}
	tmpl.SerialNumber = serial

	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hkcert:", err)
		return 1
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hkcert:", err)
		return 1
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hkcert:", err)
		return 1
	}

	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	if err := os.WriteFile(*certOut, certPEM, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hkcert:", err)
		return 1
	}
	if err := os.WriteFile(*keyOut, keyPEM, 0o600); err != nil {
		fmt.Fprintln(os.Stderr, "hkcert:", err)
		return 1
	}
	fmt.Printf("wrote %s and %s (CN=%s, %d days, hosts %s)\n", *certOut, *keyOut, *cn, *days, *hosts)
	return 0
}
