// Command hkgen generates the synthetic packet traces of the HeavyKeeper
// reproduction (campus, CAIDA and Zipf workloads; see DESIGN.md §3) and
// writes them in the binary trace format read by hktopk and hkbench.
//
// Usage:
//
//	hkgen -dataset campus -scale 0.1 -out campus.hktr
//	hkgen -dataset zipf -skew 1.8 -scale 0.05 -out zipf18.hktr
//	hkgen -info -in campus.hktr
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/trace"
)

func main() {
	var (
		dataset = flag.String("dataset", "campus", "workload: campus, caida, or zipf")
		skew    = flag.Float64("skew", 1.0, "zipf skew (zipf dataset only)")
		scale   = flag.Float64("scale", 0.02, "scale factor on the paper's packet/flow counts")
		seed    = flag.Uint64("seed", 31337, "generation seed")
		out     = flag.String("out", "", "output trace file (required unless -info)")
		info    = flag.Bool("info", false, "print statistics of an existing trace instead of generating")
		in      = flag.String("in", "", "input trace file for -info")
		topN    = flag.Int("top", 10, "number of head flows to show with -info")
	)
	flag.Parse()

	if *info {
		if *in == "" {
			fatal("hkgen: -info requires -in")
		}
		showInfo(*in, *topN)
		return
	}
	if *out == "" {
		fatal("hkgen: -out is required")
	}

	var spec gen.Spec
	switch *dataset {
	case "campus":
		spec = gen.Campus(*seed)
	case "caida":
		spec = gen.CAIDA(*seed)
	case "zipf":
		spec = gen.Synthetic(*skew, *seed)
	default:
		fatal(fmt.Sprintf("hkgen: unknown dataset %q (want campus, caida, or zipf)", *dataset))
	}
	spec = spec.Scale(*scale)
	fmt.Fprintf(os.Stderr, "generating %s: %d packets, %d flows, skew %.2f\n",
		spec.Name, spec.Packets, spec.Flows, spec.Skew)
	tr, err := gen.Generate(spec)
	if err != nil {
		fatal(err.Error())
	}
	if err := trace.WriteFile(*out, tr); err != nil {
		fatal(err.Error())
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func showInfo(path string, topN int) {
	tr, err := trace.ReadFile(path)
	if err != nil {
		fatal(err.Error())
	}
	fmt.Printf("name:    %s\n", tr.Spec.Name)
	fmt.Printf("packets: %d\n", tr.Len())
	fmt.Printf("flows:   %d\n", tr.Flows())
	fmt.Printf("skew:    %.2f\n", tr.Spec.Skew)
	fmt.Printf("id kind: %d bytes\n", tr.Spec.Kind.Size())
	fmt.Printf("top %d flows:\n", topN)
	for rank, i := range tr.TopK(topN) {
		fmt.Printf("  #%-3d %x  %d packets\n", rank+1, tr.IDs[i], tr.Count(i))
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
