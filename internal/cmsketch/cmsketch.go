// Package cmsketch implements the Count-Min sketch (Cormode & Muthukrishnan,
// "An improved data stream summary: the count-min sketch and its
// applications", J. Algorithms 2005) and the count-all top-k strategy built
// on it, the first baseline family in the HeavyKeeper paper (§II-B).
//
// The count-all strategy records every packet in the sketch, retrieves the
// estimate n̂ for the packet's flow, and maintains a min-heap of the k flows
// with the largest estimates. Because all flows share one pool of counters,
// mouse flows inherit the counts of elephants they collide with, which is
// the inaccuracy HeavyKeeper is designed to avoid.
package cmsketch

import (
	"fmt"

	"repro/internal/hash"
	"repro/internal/minheap"
)

// Config parameterizes a Sketch.
type Config struct {
	// D is the number of counter arrays. The paper's evaluation uses 3.
	D int
	// W is the number of counters per array. Required.
	W int
	// CounterBits is the counter width for memory accounting and
	// saturation (<= 32). Default 32.
	CounterBits uint
	// Conservative enables conservative update (only the minimal counters
	// are incremented), an accuracy refinement used by several systems built
	// on CM; off by default to match the classic baseline.
	Conservative bool
	// Seed makes hashing deterministic.
	Seed uint64
}

func (c *Config) setDefaults() error {
	if c.D == 0 {
		c.D = 3
	}
	if c.D < 1 {
		return fmt.Errorf("cmsketch: D = %d, must be >= 1", c.D)
	}
	if c.W < 1 {
		return fmt.Errorf("cmsketch: W = %d, must be >= 1", c.W)
	}
	if c.CounterBits == 0 {
		c.CounterBits = 32
	}
	if c.CounterBits > 32 {
		return fmt.Errorf("cmsketch: CounterBits = %d, must be <= 32", c.CounterBits)
	}
	return nil
}

// Sketch is a Count-Min sketch.
type Sketch struct {
	cfg    Config
	rows   [][]uint32
	family *hash.Family
	maxC   uint32
}

// New returns a Count-Min sketch for the given configuration.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	s := &Sketch{
		cfg:    cfg,
		rows:   make([][]uint32, cfg.D),
		family: hash.NewFamily(cfg.Seed, cfg.D),
		maxC:   uint32((uint64(1) << cfg.CounterBits) - 1),
	}
	for j := range s.rows {
		s.rows[j] = make([]uint32, cfg.W)
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Sketch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Insert records one packet of flow key and returns the post-insertion
// estimate (the minimum of the flow's counters).
func (s *Sketch) Insert(key []byte) uint32 {
	if s.cfg.Conservative {
		return s.insertConservative(key)
	}
	est := s.maxC
	for j := range s.rows {
		c := &s.rows[j][s.family.Index(j, key, s.cfg.W)]
		if *c < s.maxC {
			*c++
		}
		if *c < est {
			est = *c
		}
	}
	return est
}

func (s *Sketch) insertConservative(key []byte) uint32 {
	// Conservative update: raise only counters equal to the current
	// minimum, to min+1.
	idx := make([]int, len(s.rows))
	est := s.maxC
	for j := range s.rows {
		idx[j] = s.family.Index(j, key, s.cfg.W)
		if c := s.rows[j][idx[j]]; c < est {
			est = c
		}
	}
	if est >= s.maxC {
		return est
	}
	target := est + 1
	for j := range s.rows {
		if s.rows[j][idx[j]] < target {
			s.rows[j][idx[j]] = target
		}
	}
	return target
}

// Estimate returns the current estimate for key without inserting.
func (s *Sketch) Estimate(key []byte) uint32 {
	est := s.maxC
	for j := range s.rows {
		if c := s.rows[j][s.family.Index(j, key, s.cfg.W)]; c < est {
			est = c
		}
	}
	return est
}

// MemoryBytes returns the sketch's logical footprint (counters only).
func (s *Sketch) MemoryBytes() int {
	bits := int(s.cfg.CounterBits) * s.cfg.W * s.cfg.D
	return (bits + 7) / 8
}

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	for j := range s.rows {
		clear(s.rows[j])
	}
}

// TopK is the count-all strategy: a CM sketch plus a min-heap of the k
// largest estimated flows (§II-B).
type TopK struct {
	sk   *Sketch
	heap *minheap.Heap
	k    int
}

// NewTopK builds the count-all pipeline.
func NewTopK(k int, cfg Config) (*TopK, error) {
	if k < 1 {
		return nil, fmt.Errorf("cmsketch: k = %d, must be >= 1", k)
	}
	sk, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &TopK{sk: sk, heap: minheap.New(k), k: k}, nil
}

// MustNewTopK is NewTopK that panics on error.
func MustNewTopK(k int, cfg Config) *TopK {
	t, err := NewTopK(k, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Insert records one packet of flow key and refreshes the heap.
func (t *TopK) Insert(key []byte) {
	est := uint64(t.sk.Insert(key))
	ks := string(key)
	switch {
	case t.heap.Contains(ks):
		t.heap.UpdateMax(ks, est)
	case !t.heap.Full():
		t.heap.Insert(ks, est)
	case est > t.heap.MinCount():
		t.heap.Insert(ks, est) // evicts the root
	}
}

// Entry is one reported flow.
type Entry struct {
	Key   string
	Count uint64
}

// Top returns the current top-k flows in descending estimated size.
func (t *TopK) Top() []Entry {
	items := t.heap.Top(t.k)
	out := make([]Entry, len(items))
	for i, e := range items {
		out[i] = Entry{Key: e.Key, Count: e.Count}
	}
	return out
}

// Estimate returns the sketch estimate for key.
func (t *TopK) Estimate(key []byte) uint64 { return uint64(t.sk.Estimate(key)) }

// MemoryBytes reports sketch plus heap memory under the paper's accounting.
func (t *TopK) MemoryBytes() int {
	return t.sk.MemoryBytes() + t.k*minheap.BytesPerEntry
}
