package cmsketch

import (
	"fmt"
	"testing"

	"repro/internal/streamtest"
)

func key(i int) []byte { return []byte(fmt.Sprintf("flow-%d", i)) }

func TestConfigValidation(t *testing.T) {
	for i, cfg := range []Config{{W: 0}, {W: 10, D: -1}, {W: 10, CounterBits: 64}} {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewTopK(0, Config{W: 10}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestNeverUnderestimates(t *testing.T) {
	// Count-Min's defining guarantee: estimate >= true count.
	s := MustNew(Config{W: 64, Seed: 1})
	truth := map[int]uint32{}
	for i := 0; i < 20000; i++ {
		f := i % 300
		truth[f]++
		s.Insert(key(f))
	}
	for f, n := range truth {
		if got := s.Estimate(key(f)); got < n {
			t.Errorf("flow %d: estimate %d < true %d", f, got, n)
		}
	}
}

func TestExactWhenNoCollisions(t *testing.T) {
	s := MustNew(Config{W: 4096, Seed: 2})
	for i := 0; i < 1000; i++ {
		s.Insert(key(7))
	}
	if got := s.Estimate(key(7)); got != 1000 {
		t.Errorf("estimate = %d want 1000", got)
	}
	if got := s.Estimate(key(8)); got != 0 {
		t.Errorf("estimate of absent flow = %d want 0", got)
	}
}

func TestConservativeNoWorse(t *testing.T) {
	plain := MustNew(Config{W: 32, Seed: 3})
	cons := MustNew(Config{W: 32, Seed: 3, Conservative: true})
	truth := map[int]uint32{}
	for i := 0; i < 30000; i++ {
		f := i % 200
		truth[f]++
		plain.Insert(key(f))
		cons.Insert(key(f))
	}
	var errPlain, errCons uint64
	for f, n := range truth {
		ep := plain.Estimate(key(f))
		ec := cons.Estimate(key(f))
		if ec < n {
			t.Errorf("conservative underestimates flow %d: %d < %d", f, ec, n)
		}
		errPlain += uint64(ep - n)
		errCons += uint64(ec - n)
	}
	if errCons > errPlain {
		t.Errorf("conservative error %d > plain error %d", errCons, errPlain)
	}
}

func TestCounterSaturation(t *testing.T) {
	s := MustNew(Config{W: 16, CounterBits: 4, Seed: 1})
	for i := 0; i < 100; i++ {
		s.Insert(key(1))
	}
	if got := s.Estimate(key(1)); got != 15 {
		t.Errorf("saturated estimate = %d want 15", got)
	}
}

func TestReset(t *testing.T) {
	s := MustNew(Config{W: 32, Seed: 1})
	s.Insert(key(1))
	s.Reset()
	if got := s.Estimate(key(1)); got != 0 {
		t.Errorf("estimate after Reset = %d want 0", got)
	}
}

func TestMemoryBytes(t *testing.T) {
	s := MustNew(Config{W: 1000, D: 3, CounterBits: 32})
	if got := s.MemoryBytes(); got != 12000 {
		t.Errorf("MemoryBytes = %d want 12000", got)
	}
}

func TestTopKFindsElephants(t *testing.T) {
	st := streamtest.Zipf(150000, 5000, 1.0, 42)
	tk := MustNewTopK(20, Config{W: 2048, Seed: 7})
	for _, p := range st.Packets {
		tk.Insert(p)
	}
	var rep []streamtest.Reported
	for _, e := range tk.Top() {
		rep = append(rep, streamtest.Reported{Key: e.Key, Count: e.Count})
	}
	if p := streamtest.Precision(rep, st.TrueTop(20)); p < 0.8 {
		t.Errorf("precision = %v, want >= 0.8 with generous memory", p)
	}
}

func TestTopKOverestimatesUnderPressure(t *testing.T) {
	// The count-all failure mode the paper describes: with few counters,
	// reported sizes over-estimate badly (mice absorb elephants' counts).
	st := streamtest.Zipf(100000, 20000, 1.0, 11)
	tk := MustNewTopK(50, Config{W: 64, Seed: 5})
	for _, p := range st.Packets {
		tk.Insert(p)
	}
	var rep []streamtest.Reported
	for _, e := range tk.Top() {
		rep = append(rep, streamtest.Reported{Key: e.Key, Count: e.Count})
	}
	if are := st.ARE(rep); are < 0.5 {
		t.Logf("note: ARE under pressure = %v (expected large); not a failure", are)
	}
	over := 0
	for _, e := range rep {
		if e.Count > st.Exact[e.Key] {
			over++
		}
	}
	if over == 0 {
		t.Error("expected over-estimation under counter pressure, found none")
	}
}

func TestTopKMemoryBytes(t *testing.T) {
	tk := MustNewTopK(100, Config{W: 1000, D: 3, CounterBits: 32})
	want := 12000 + 100*32
	if got := tk.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d want %d", got, want)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := MustNew(Config{W: 4096, Seed: 1})
	keys := make([][]byte, 1<<12)
	for i := range keys {
		keys[i] = key(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(keys[i&(len(keys)-1)])
	}
}

func BenchmarkTopKInsert(b *testing.B) {
	tk := MustNewTopK(100, Config{W: 4096, Seed: 1})
	keys := make([][]byte, 1<<12)
	for i := range keys {
		keys[i] = key(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Insert(keys[i&(len(keys)-1)])
	}
}
