// Package harness runs the HeavyKeeper paper's evaluation (§VI): it builds
// every algorithm at a given byte budget, replays a workload, scores the
// output with the §VI-B metrics, and renders each figure of the paper as a
// text table. cmd/hkbench and the repository-level benchmarks are thin
// wrappers around this package.
package harness

import (
	"fmt"

	heavykeeper "repro"
	"repro/internal/cmsketch"
	"repro/internal/coldfilter"
	"repro/internal/countertree"
	"repro/internal/elastic"
	"repro/internal/metrics"
)

// Algo is the uniform harness view of a top-k algorithm.
type Algo interface {
	// Name identifies the algorithm in tables.
	Name() string
	// Insert records one packet.
	Insert(key []byte)
	// Top reports up to k flows in descending estimated size.
	Top(k int) []metrics.Entry
	// MemoryBytes is the algorithm's logical footprint.
	MemoryBytes() int
}

// CandidateRanker is implemented by estimator-only algorithms (Counter
// Tree) that rank a candidate universe instead of tracking IDs themselves.
type CandidateRanker interface {
	SetCandidates(candidates [][]byte)
}

// Names of the available algorithms, as used in the paper's legends.
const (
	AlgoHK          = "HeavyKeeper"   // Hardware Parallel version (§VI-C default)
	AlgoHKMinimum   = "HK-Minimum"    // Software Minimum version
	AlgoHKBasic     = "HK-Basic"      // basic version, no optimizations
	AlgoSS          = "SS"            // Space-Saving
	AlgoLC          = "LC"            // Lossy Counting
	AlgoCSS         = "CSS"           // Compact Space-Saving
	AlgoCM          = "CM Sketch"     // Count-Min + min-heap (count-all)
	AlgoFrequent    = "Frequent"      // Misra–Gries
	AlgoElastic     = "Elastic"       // Elastic sketch
	AlgoColdFilter  = "ColdFilter"    // Cold Filter + Space-Saving
	AlgoCounterTree = "Counter Tree"  // Counter Tree estimator
	AlgoGuardian    = "HeavyGuardian" // HeavyGuardian (extension)
)

// registryName maps the paper legend names onto the public algorithm
// registry. Everything the registry covers builds through it — the harness
// no longer keeps its own constructor table for those algorithms — while
// the paper-only estimators (CM, Elastic, ColdFilter, Counter Tree) stay
// local below.
var registryName = map[string]string{
	AlgoHK:        heavykeeper.AlgorithmHeavyKeeper,
	AlgoHKMinimum: heavykeeper.AlgorithmHeavyKeeperMinimum,
	AlgoHKBasic:   heavykeeper.AlgorithmHeavyKeeperBasic,
	AlgoSS:        heavykeeper.AlgorithmSpaceSaving,
	AlgoLC:        heavykeeper.AlgorithmLossyCounting,
	AlgoCSS:       heavykeeper.AlgorithmCSS,
	AlgoFrequent:  heavykeeper.AlgorithmFrequent,
	AlgoGuardian:  heavykeeper.AlgorithmHeavyGuardian,
}

// Build constructs algorithm name with the given byte budget, report size k
// and seed, applying the paper's §VI-A sizing rules. name is a paper legend
// name (AlgoHK, AlgoSS, ...) or any public registry name ("spacesaving",
// "css", a user-registered engine, ...), so hktopk -algo accepts both.
func Build(name string, budget, k int, seed uint64) (Algo, error) {
	if budget < 64 {
		return nil, fmt.Errorf("harness: budget %dB too small", budget)
	}
	if k < 1 {
		return nil, fmt.Errorf("harness: k = %d, must be >= 1", k)
	}
	switch name {
	case AlgoCM:
		// §VI-A: heap of size k; 3 arrays; width from the remaining memory.
		rest := budget - k*32
		if rest < 12 {
			rest = 12
		}
		w := rest / (3 * 4)
		if w < 1 {
			w = 1
		}
		t, err := cmsketch.NewTopK(k, cmsketch.Config{D: 3, W: w, Seed: seed})
		if err != nil {
			return nil, err
		}
		return cmAlgo{t}, nil
	case AlgoElastic:
		e, err := elastic.FromBytes(budget, seed)
		if err != nil {
			return nil, err
		}
		return elasticAlgo{e}, nil
	case AlgoColdFilter:
		f, err := coldfilter.FromBytes(budget, seed)
		if err != nil {
			return nil, err
		}
		return coldAlgo{f}, nil
	case AlgoCounterTree:
		t, err := countertree.FromBytes(budget, seed)
		if err != nil {
			return nil, err
		}
		return &ctAlgo{t: t}, nil
	}
	reg, ok := registryName[name]
	if !ok {
		reg = name // allow registry names (and user registrations) directly
	}
	eng, err := heavykeeper.BuildEngine(reg, heavykeeper.EngineConfig{
		K: k, MemoryBytes: budget, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: unknown algorithm %q: %w", name, err)
	}
	return engineAlgo{name: name, eng: eng}, nil
}

// MustBuild is Build that panics on error.
func MustBuild(name string, budget, k int, seed uint64) Algo {
	a, err := Build(name, budget, k, seed)
	if err != nil {
		panic(err)
	}
	return a
}

// --- adapters ---

// engineAlgo adapts a public registry engine to the harness view, keeping
// the display name the caller built it under (paper legend or registry).
type engineAlgo struct {
	name string
	eng  heavykeeper.Engine
}

func (a engineAlgo) Name() string      { return a.name }
func (a engineAlgo) Insert(key []byte) { a.eng.Insert(key) }
func (a engineAlgo) MemoryBytes() int  { return a.eng.MemoryBytes() }
func (a engineAlgo) Top(k int) []metrics.Entry {
	top := a.eng.Top(k)
	return convert(len(top), func(i int) (string, uint64) { return string(top[i].ID), top[i].Count })
}

type cmAlgo struct{ t *cmsketch.TopK }

func (a cmAlgo) Name() string      { return AlgoCM }
func (a cmAlgo) Insert(key []byte) { a.t.Insert(key) }
func (a cmAlgo) MemoryBytes() int  { return a.t.MemoryBytes() }
func (a cmAlgo) Top(k int) []metrics.Entry {
	top := a.t.Top()
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

type elasticAlgo struct{ e *elastic.Sketch }

func (a elasticAlgo) Name() string      { return AlgoElastic }
func (a elasticAlgo) Insert(key []byte) { a.e.Insert(key) }
func (a elasticAlgo) MemoryBytes() int  { return a.e.MemoryBytes() }
func (a elasticAlgo) Top(k int) []metrics.Entry {
	top := a.e.Top(k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

type coldAlgo struct{ f *coldfilter.Filter }

func (a coldAlgo) Name() string      { return AlgoColdFilter }
func (a coldAlgo) Insert(key []byte) { a.f.Insert(key) }
func (a coldAlgo) MemoryBytes() int  { return a.f.MemoryBytes() }
func (a coldAlgo) Top(k int) []metrics.Entry {
	top := a.f.Top(k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

// ctAlgo adapts Counter Tree, which estimates sizes but stores no IDs; the
// harness supplies the candidate universe before reporting.
type ctAlgo struct {
	t          *countertree.Tree
	candidates [][]byte
}

func (a *ctAlgo) Name() string                      { return AlgoCounterTree }
func (a *ctAlgo) Insert(key []byte)                 { a.t.Insert(key) }
func (a *ctAlgo) MemoryBytes() int                  { return a.t.MemoryBytes() }
func (a *ctAlgo) SetCandidates(candidates [][]byte) { a.candidates = candidates }
func (a *ctAlgo) Top(k int) []metrics.Entry {
	top := a.t.TopOf(a.candidates, k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

func convert(n int, at func(i int) (string, uint64)) []metrics.Entry {
	out := make([]metrics.Entry, n)
	for i := range out {
		k, c := at(i)
		out[i] = metrics.Entry{Key: k, Count: c}
	}
	return out
}
