// Package harness runs the HeavyKeeper paper's evaluation (§VI): it builds
// every algorithm at a given byte budget, replays a workload, scores the
// output with the §VI-B metrics, and renders each figure of the paper as a
// text table. cmd/hkbench and the repository-level benchmarks are thin
// wrappers around this package.
package harness

import (
	"fmt"

	"repro/internal/cmsketch"
	"repro/internal/coldfilter"
	"repro/internal/core"
	"repro/internal/countertree"
	"repro/internal/css"
	"repro/internal/elastic"
	"repro/internal/frequent"
	"repro/internal/heavyguardian"
	"repro/internal/lossycounting"
	"repro/internal/metrics"
	"repro/internal/spacesaving"
	"repro/internal/streamsummary"
	"repro/internal/topk"
)

// Algo is the uniform harness view of a top-k algorithm.
type Algo interface {
	// Name identifies the algorithm in tables.
	Name() string
	// Insert records one packet.
	Insert(key []byte)
	// Top reports up to k flows in descending estimated size.
	Top(k int) []metrics.Entry
	// MemoryBytes is the algorithm's logical footprint.
	MemoryBytes() int
}

// CandidateRanker is implemented by estimator-only algorithms (Counter
// Tree) that rank a candidate universe instead of tracking IDs themselves.
type CandidateRanker interface {
	SetCandidates(candidates [][]byte)
}

// Names of the available algorithms, as used in the paper's legends.
const (
	AlgoHK          = "HeavyKeeper"   // Hardware Parallel version (§VI-C default)
	AlgoHKMinimum   = "HK-Minimum"    // Software Minimum version
	AlgoHKBasic     = "HK-Basic"      // basic version, no optimizations
	AlgoSS          = "SS"            // Space-Saving
	AlgoLC          = "LC"            // Lossy Counting
	AlgoCSS         = "CSS"           // Compact Space-Saving
	AlgoCM          = "CM Sketch"     // Count-Min + min-heap (count-all)
	AlgoFrequent    = "Frequent"      // Misra–Gries
	AlgoElastic     = "Elastic"       // Elastic sketch
	AlgoColdFilter  = "ColdFilter"    // Cold Filter + Space-Saving
	AlgoCounterTree = "Counter Tree"  // Counter Tree estimator
	AlgoGuardian    = "HeavyGuardian" // HeavyGuardian (extension)
)

// Build constructs algorithm name with the given byte budget, report size k
// and seed, applying the paper's §VI-A sizing rules.
func Build(name string, budget, k int, seed uint64) (Algo, error) {
	if budget < 64 {
		return nil, fmt.Errorf("harness: budget %dB too small", budget)
	}
	if k < 1 {
		return nil, fmt.Errorf("harness: k = %d, must be >= 1", k)
	}
	switch name {
	case AlgoHK:
		return buildHK(name, topk.Parallel, budget, k, seed)
	case AlgoHKMinimum:
		return buildHK(name, topk.Minimum, budget, k, seed)
	case AlgoHKBasic:
		return buildHK(name, topk.Basic, budget, k, seed)
	case AlgoSS:
		ss, err := spacesaving.FromBytes(budget)
		if err != nil {
			return nil, err
		}
		return ssAlgo{ss}, nil
	case AlgoLC:
		lc, err := lossycounting.FromBytes(budget)
		if err != nil {
			return nil, err
		}
		return lcAlgo{lc}, nil
	case AlgoCSS:
		c, err := css.FromBytes(budget, seed)
		if err != nil {
			return nil, err
		}
		return cssAlgo{c}, nil
	case AlgoCM:
		// §VI-A: heap of size k; 3 arrays; width from the remaining memory.
		rest := budget - k*32
		if rest < 12 {
			rest = 12
		}
		w := rest / (3 * 4)
		if w < 1 {
			w = 1
		}
		t, err := cmsketch.NewTopK(k, cmsketch.Config{D: 3, W: w, Seed: seed})
		if err != nil {
			return nil, err
		}
		return cmAlgo{t}, nil
	case AlgoFrequent:
		f, err := frequent.FromBytes(budget)
		if err != nil {
			return nil, err
		}
		return freqAlgo{f}, nil
	case AlgoElastic:
		e, err := elastic.FromBytes(budget, seed)
		if err != nil {
			return nil, err
		}
		return elasticAlgo{e}, nil
	case AlgoColdFilter:
		f, err := coldfilter.FromBytes(budget, seed)
		if err != nil {
			return nil, err
		}
		return coldAlgo{f}, nil
	case AlgoCounterTree:
		t, err := countertree.FromBytes(budget, seed)
		if err != nil {
			return nil, err
		}
		return &ctAlgo{t: t}, nil
	case AlgoGuardian:
		g, err := heavyguardian.FromBytes(budget, seed)
		if err != nil {
			return nil, err
		}
		return hgAlgo{g}, nil
	default:
		return nil, fmt.Errorf("harness: unknown algorithm %q", name)
	}
}

// MustBuild is Build that panics on error.
func MustBuild(name string, budget, k int, seed uint64) Algo {
	a, err := Build(name, budget, k, seed)
	if err != nil {
		panic(err)
	}
	return a
}

// buildHK applies the paper's sizing: the Stream-Summary holds exactly k
// entries, HeavyKeeper takes the remaining bytes with d = 2 arrays, 16-bit
// fingerprints and 32-bit counters (see EXPERIMENTS.md on the counter-width
// deviation from the paper's 16 bits).
func buildHK(name string, v topk.Version, budget, k int, seed uint64) (Algo, error) {
	rest := budget - k*streamsummary.BytesPerEntry
	bucketBytes := core.BucketBytes(16, 32)
	w := int(float64(rest) / (2 * bucketBytes))
	if w < 1 {
		w = 1
	}
	tr, err := topk.New(topk.Options{
		K:       k,
		Version: v,
		Store:   topk.StoreSummary,
		Sketch:  core.Config{D: 2, W: w, Seed: seed, FingerprintBits: 16, CounterBits: 32},
	})
	if err != nil {
		return nil, err
	}
	return hkAlgo{name: name, t: tr}, nil
}

// --- adapters ---

type hkAlgo struct {
	name string
	t    *topk.Tracker
}

func (a hkAlgo) Name() string      { return a.name }
func (a hkAlgo) Insert(key []byte) { a.t.Insert(key) }
func (a hkAlgo) MemoryBytes() int  { return a.t.MemoryBytes() }
func (a hkAlgo) Top(k int) []metrics.Entry {
	top := a.t.Top()
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

type ssAlgo struct{ s *spacesaving.SpaceSaving }

func (a ssAlgo) Name() string      { return AlgoSS }
func (a ssAlgo) Insert(key []byte) { a.s.Insert(key) }
func (a ssAlgo) MemoryBytes() int  { return a.s.MemoryBytes() }
func (a ssAlgo) Top(k int) []metrics.Entry {
	top := a.s.Top(k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

type lcAlgo struct{ l *lossycounting.LossyCounting }

func (a lcAlgo) Name() string      { return AlgoLC }
func (a lcAlgo) Insert(key []byte) { a.l.Insert(key) }
func (a lcAlgo) MemoryBytes() int {
	// Lossy Counting's live footprint fluctuates; report the sized budget
	// (1/ε entries) that FromBytes provisioned.
	return int(1/a.l.Epsilon()) * lossycounting.BytesPerEntry
}
func (a lcAlgo) Top(k int) []metrics.Entry {
	top := a.l.Top(k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

type cssAlgo struct{ c *css.CSS }

func (a cssAlgo) Name() string      { return AlgoCSS }
func (a cssAlgo) Insert(key []byte) { a.c.Insert(key) }
func (a cssAlgo) MemoryBytes() int  { return a.c.MemoryBytes() }
func (a cssAlgo) Top(k int) []metrics.Entry {
	top := a.c.Top(k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

type cmAlgo struct{ t *cmsketch.TopK }

func (a cmAlgo) Name() string      { return AlgoCM }
func (a cmAlgo) Insert(key []byte) { a.t.Insert(key) }
func (a cmAlgo) MemoryBytes() int  { return a.t.MemoryBytes() }
func (a cmAlgo) Top(k int) []metrics.Entry {
	top := a.t.Top()
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

type freqAlgo struct{ f *frequent.Frequent }

func (a freqAlgo) Name() string      { return AlgoFrequent }
func (a freqAlgo) Insert(key []byte) { a.f.Insert(key) }
func (a freqAlgo) MemoryBytes() int  { return a.f.MemoryBytes() }
func (a freqAlgo) Top(k int) []metrics.Entry {
	top := a.f.Top(k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

type elasticAlgo struct{ e *elastic.Sketch }

func (a elasticAlgo) Name() string      { return AlgoElastic }
func (a elasticAlgo) Insert(key []byte) { a.e.Insert(key) }
func (a elasticAlgo) MemoryBytes() int  { return a.e.MemoryBytes() }
func (a elasticAlgo) Top(k int) []metrics.Entry {
	top := a.e.Top(k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

type coldAlgo struct{ f *coldfilter.Filter }

func (a coldAlgo) Name() string      { return AlgoColdFilter }
func (a coldAlgo) Insert(key []byte) { a.f.Insert(key) }
func (a coldAlgo) MemoryBytes() int  { return a.f.MemoryBytes() }
func (a coldAlgo) Top(k int) []metrics.Entry {
	top := a.f.Top(k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

// ctAlgo adapts Counter Tree, which estimates sizes but stores no IDs; the
// harness supplies the candidate universe before reporting.
type ctAlgo struct {
	t          *countertree.Tree
	candidates [][]byte
}

func (a *ctAlgo) Name() string                      { return AlgoCounterTree }
func (a *ctAlgo) Insert(key []byte)                 { a.t.Insert(key) }
func (a *ctAlgo) MemoryBytes() int                  { return a.t.MemoryBytes() }
func (a *ctAlgo) SetCandidates(candidates [][]byte) { a.candidates = candidates }
func (a *ctAlgo) Top(k int) []metrics.Entry {
	top := a.t.TopOf(a.candidates, k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

type hgAlgo struct{ g *heavyguardian.Guardian }

func (a hgAlgo) Name() string      { return AlgoGuardian }
func (a hgAlgo) Insert(key []byte) { a.g.Insert(key) }
func (a hgAlgo) MemoryBytes() int  { return a.g.MemoryBytes() }
func (a hgAlgo) Top(k int) []metrics.Entry {
	top := a.g.Top(k)
	return convert(len(top), func(i int) (string, uint64) { return top[i].Key, top[i].Count })
}

func convert(n int, at func(i int) (string, uint64)) []metrics.Entry {
	out := make([]metrics.Entry, n)
	for i := range out {
		k, c := at(i)
		out[i] = metrics.Entry{Key: k, Count: c}
	}
	return out
}
