package harness

import "repro/internal/xrand"

// shuffler wraps the repository PRNG for the ablation streams.
type shuffler struct{ rng *xrand.Xorshift64Star }

func newShuffler(seed uint64) *shuffler {
	return &shuffler{rng: xrand.NewXorshift64Star(seed ^ 0xfeedface)}
}

// shuffle permutes the whole slice.
func (s *shuffler) shuffle(b [][]byte) {
	s.rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
}

// shufflePart permutes b[from:] in place, leaving the prefix untouched —
// used to randomize a late arrival phase without disturbing the early one.
func (s *shuffler) shufflePart(b [][]byte, from int) {
	tail := b[from:]
	s.rng.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
}
