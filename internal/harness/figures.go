package harness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/vswitch"
)

// RunConfig controls a reproduction run.
type RunConfig struct {
	// Scale multiplies the paper's packet/flow counts (10M–32M packets).
	// The default 0.02 gives 200k–640k packet runs that finish in seconds
	// while preserving distribution shape; use 1.0 for full fidelity.
	Scale float64
	// Seed drives workload generation and all algorithm randomness.
	Seed uint64
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Scale == 0 {
		c.Scale = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 31337
	}
	return c
}

// Runner executes figures, caching generated traces and oracles across
// figures so `-figure all` does not regenerate the same workload dozens of
// times.
type Runner struct {
	cfg     RunConfig
	traces  map[string]*gen.Trace
	oracles map[string]*metrics.Oracle
}

// NewRunner returns a Runner for the given config.
func NewRunner(cfg RunConfig) *Runner {
	return &Runner{
		cfg:     cfg.withDefaults(),
		traces:  make(map[string]*gen.Trace),
		oracles: make(map[string]*metrics.Oracle),
	}
}

// Config returns the runner's effective configuration.
func (r *Runner) Config() RunConfig { return r.cfg }

func (r *Runner) trace(spec gen.Spec) *gen.Trace {
	spec = spec.Scale(r.cfg.Scale)
	key := fmt.Sprintf("%s/%d/%d/%v", spec.Name, spec.Packets, spec.Flows, spec.Skew)
	if t, ok := r.traces[key]; ok {
		return t
	}
	t := gen.MustGenerate(spec)
	r.traces[key] = t
	return t
}

func (r *Runner) oracle(t *gen.Trace) *metrics.Oracle {
	key := fmt.Sprintf("%s/%d/%d/%v", t.Spec.Name, t.Spec.Packets, t.Spec.Flows, t.Spec.Skew)
	if o, ok := r.oracles[key]; ok {
		return o
	}
	o := metrics.FromCounts(t.ExactCounts())
	r.oracles[key] = o
	return o
}

// scores holds one algorithm run's metrics.
type scores struct {
	precision float64
	are       float64
	aae       float64
}

// evaluate replays tr through a fresh build of algo and scores the report.
func (r *Runner) evaluate(t *gen.Trace, algoName string, budget, k int) scores {
	a := MustBuild(algoName, budget, k, r.cfg.Seed)
	if cr, ok := a.(CandidateRanker); ok {
		cr.SetCandidates(t.IDs)
	}
	t.ForEach(a.Insert)
	reported := a.Top(k)
	o := r.oracle(t)
	return scores{
		precision: metrics.PrecisionAtK(reported, o, k),
		are:       metrics.ARE(reported, o),
		aae:       metrics.AAE(reported, o),
	}
}

// metricKind selects which score a sweep reports.
type metricKind int

const (
	mPrecision metricKind = iota
	mARE
	mAAE
)

func (m metricKind) name() string {
	switch m {
	case mPrecision:
		return "Precision"
	case mARE:
		return "ARE"
	default:
		return "AAE"
	}
}

func (m metricKind) of(s scores) float64 {
	switch m {
	case mPrecision:
		return s.precision
	case mARE:
		return s.are
	default:
		return s.aae
	}
}

// classicAlgos is the §VI-C/D comparison set.
var classicAlgos = []string{AlgoSS, AlgoLC, AlgoCSS, AlgoCM, AlgoHK}

// recentAlgos is the §VI-E comparison set.
var recentAlgos = []string{AlgoCounterTree, AlgoColdFilter, AlgoElastic, AlgoHK}

// versionAlgos is the §VI-G comparison set.
var versionAlgos = []string{AlgoHK, AlgoHKMinimum}

// memKB returns the paper's 10–50 KB sweep in bytes.
var memSweepKB = []int{10, 20, 30, 40, 50}

// memorySweep runs metric m over the memory sweep for the given algorithms.
func (r *Runner) memorySweep(title string, t *gen.Trace, algos []string, kbs []int, k int, m metricKind) *Table {
	tab := NewTable(title, "Memory (KB)", algos)
	for _, kb := range kbs {
		row := make([]float64, len(algos))
		for i, a := range algos {
			row[i] = m.of(r.evaluate(t, a, kb*1024, k))
		}
		tab.AddRow(fmt.Sprintf("%d", kb), row)
	}
	return tab
}

// kSweep runs metric m over a k sweep at a fixed budget.
func (r *Runner) kSweep(title string, t *gen.Trace, algos []string, ks []int, budget int, m metricKind) *Table {
	tab := NewTable(title, "k", algos)
	for _, k := range ks {
		row := make([]float64, len(algos))
		for i, a := range algos {
			row[i] = m.of(r.evaluate(t, a, budget, k))
		}
		tab.AddRow(fmt.Sprintf("%d", k), row)
	}
	return tab
}

// skewSweep runs metric m over synthetic datasets of varying skew.
func (r *Runner) skewSweep(title string, algos []string, skews []float64, budget, k int, m metricKind) *Table {
	tab := NewTable(title, "Skewness", algos)
	for _, skew := range skews {
		t := r.trace(gen.Synthetic(skew, r.cfg.Seed))
		row := make([]float64, len(algos))
		for i, a := range algos {
			row[i] = m.of(r.evaluate(t, a, budget, k))
		}
		tab.AddRow(fmt.Sprintf("%.1f", skew), row)
	}
	return tab
}

var skewSweepVals = []float64{0.6, 1.2, 1.8, 2.4, 3.0}
var kSweepVals = []int{200, 400, 600, 800, 1000}

// Figure runs one of the paper's figures by number and returns its table.
func (r *Runner) Figure(id string) (*Table, error) {
	campus := func() *gen.Trace { return r.trace(gen.Campus(r.cfg.Seed)) }
	caida := func() *gen.Trace { return r.trace(gen.CAIDA(r.cfg.Seed)) }
	switch id {
	case "4":
		return r.memorySweep("Fig 4: Precision vs memory size (Campus)", campus(), classicAlgos, memSweepKB, 100, mPrecision), nil
	case "5":
		return r.memorySweep("Fig 5: Precision vs memory size (CAIDA)", caida(), classicAlgos, memSweepKB, 100, mPrecision), nil
	case "6":
		return r.kSweep("Fig 6: Precision vs k (Campus)", campus(), classicAlgos, kSweepVals, 100*1024, mPrecision), nil
	case "7":
		return r.kSweep("Fig 7: Precision vs k (CAIDA)", caida(), classicAlgos, kSweepVals, 100*1024, mPrecision), nil
	case "8":
		return r.skewSweep("Fig 8: Precision vs skewness (Synthetic)", classicAlgos, skewSweepVals, 100*1024, 1000, mPrecision), nil
	case "9":
		return r.memorySweep("Fig 9: ARE vs memory size (Campus)", campus(), classicAlgos, memSweepKB, 100, mARE), nil
	case "10":
		return r.memorySweep("Fig 10: Precision vs memory size, MB scale (Campus)", campus(), classicAlgos, []int{1024, 2048, 3072, 4096, 5120}, 100, mPrecision), nil
	case "11":
		return r.memorySweep("Fig 11: ARE vs memory size (CAIDA)", caida(), classicAlgos, memSweepKB, 100, mARE), nil
	case "12":
		return r.kSweep("Fig 12: ARE vs k (Campus)", campus(), classicAlgos, kSweepVals, 100*1024, mARE), nil
	case "13":
		return r.kSweep("Fig 13: ARE vs k (CAIDA)", caida(), classicAlgos, kSweepVals, 100*1024, mARE), nil
	case "14":
		return r.skewSweep("Fig 14: ARE vs skewness (Synthetic)", classicAlgos, skewSweepVals, 100*1024, 1000, mARE), nil
	case "15":
		return r.memorySweep("Fig 15: AAE vs memory size (Campus)", campus(), classicAlgos, memSweepKB, 100, mAAE), nil
	case "16":
		return r.memorySweep("Fig 16: AAE vs memory size (CAIDA)", caida(), classicAlgos, memSweepKB, 100, mAAE), nil
	case "17":
		return r.kSweep("Fig 17: AAE vs k (Campus)", campus(), classicAlgos, kSweepVals, 100*1024, mAAE), nil
	case "18":
		return r.kSweep("Fig 18: AAE vs k (CAIDA)", caida(), classicAlgos, kSweepVals, 100*1024, mAAE), nil
	case "19":
		return r.skewSweep("Fig 19: AAE vs skewness (Synthetic)", classicAlgos, skewSweepVals, 100*1024, 1000, mAAE), nil
	case "20":
		return r.memorySweep("Fig 20: Precision vs memory size, recent works (Campus)", campus(), recentAlgos, memSweepKB, 100, mPrecision), nil
	case "21":
		return r.memorySweep("Fig 21: ARE vs memory size, recent works (Campus)", campus(), recentAlgos, memSweepKB, 100, mARE), nil
	case "22":
		return r.memorySweep("Fig 22: AAE vs memory size, recent works (Campus)", campus(), recentAlgos, memSweepKB, 100, mAAE), nil
	case "23":
		return r.memorySweep("Fig 23: Precision vs memory size, Parallel vs Minimum (Campus)", campus(), versionAlgos, []int{6, 7, 8, 9, 10}, 100, mPrecision), nil
	case "24":
		return r.memorySweep("Fig 24: ARE vs memory size, Parallel vs Minimum (Campus)", campus(), versionAlgos, []int{6, 7, 8, 9, 10}, 100, mARE), nil
	case "25":
		return r.memorySweep("Fig 25: AAE vs memory size, Parallel vs Minimum (Campus)", campus(), versionAlgos, []int{6, 7, 8, 9, 10}, 100, mAAE), nil
	case "26":
		return r.kSweep("Fig 26: Precision vs k, Parallel vs Minimum (Campus)", campus(), versionAlgos, []int{100, 200, 300, 400, 500}, 30*1024, mPrecision), nil
	case "27":
		return r.kSweep("Fig 27: ARE vs k, Parallel vs Minimum (Campus)", campus(), versionAlgos, []int{100, 200, 300, 400, 500}, 30*1024, mARE), nil
	case "28":
		return r.kSweep("Fig 28: AAE vs k, Parallel vs Minimum (Campus)", campus(), versionAlgos, []int{100, 200, 300, 400, 500}, 30*1024, mAAE), nil
	case "29":
		return r.skewSweep("Fig 29: Precision vs skewness, Parallel vs Minimum", versionAlgos, skewSweepVals, 10*1024, 100, mPrecision), nil
	case "30":
		return r.skewSweep("Fig 30: ARE vs skewness, Parallel vs Minimum", versionAlgos, skewSweepVals, 10*1024, 100, mARE), nil
	case "31":
		return r.skewSweep("Fig 31: AAE vs skewness, Parallel vs Minimum", versionAlgos, skewSweepVals, 10*1024, 100, mAAE), nil
	case "32":
		return r.figure32(), nil
	case "33":
		return r.figure33(), nil
	case "34":
		return r.figure34(), nil
	case "35":
		return r.figureBound("Fig 35: (ε,δ)-counting, ε=2^-16", 16), nil
	case "36":
		return r.figureBound("Fig 36: (ε,δ)-counting, ε=2^-17", 17), nil
	default:
		return nil, fmt.Errorf("harness: unknown figure %q", id)
	}
}

// FigureIDs lists every reproducible figure in order.
func FigureIDs() []string {
	out := make([]string, 0, 33)
	for i := 4; i <= 36; i++ {
		out = append(out, fmt.Sprintf("%d", i))
	}
	return out
}

// figure32 is "Precision vs number of packets": a long stream evaluated at
// ten checkpoints with k=1000 and 100 KB. The flow population drifts over
// the stream (each tenth rotates the popularity ranking by 2% of the
// universe), modelling the churn of a real long capture; this is why the
// paper observes precision slowly eroding as the packet count grows.
func (r *Runner) figure32() *Table {
	const k = 1000
	spec := gen.Spec{
		Name:    "bigdata",
		Packets: 100_000_000,
		Flows:   10_000_000,
		Skew:    1.0,
		Kind:    gen.IDWord,
		Seed:    r.cfg.Seed,
	}
	t := r.trace(spec)
	a := MustBuild(AlgoHK, 100*1024, k, r.cfg.Seed)
	tab := NewTable("Fig 32: Precision vs # of packets (HeavyKeeper, k=1000, 100KB)", "Packets (x10^7 scaled)", []string{AlgoHK})

	exact := make(map[uint32]uint64, t.Flows())
	checkpoints := 10
	per := t.Len() / checkpoints
	flows := uint32(t.Flows())
	pos := 0
	for cp := 1; cp <= checkpoints; cp++ {
		end := cp * per
		if cp == checkpoints {
			end = t.Len()
		}
		// Popularity drift: checkpoint cp sees the rank ordering rotated.
		shift := uint32(cp-1) * (flows / 50)
		for ; pos < end; pos++ {
			idx := (t.Seq[pos] + shift) % flows
			exact[idx]++
			a.Insert(t.IDs[idx])
		}
		// Exact top-k of the prefix.
		type kv struct {
			idx uint32
			c   uint64
		}
		all := make([]kv, 0, len(exact))
		for idx, c := range exact {
			all = append(all, kv{idx, c})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].c != all[j].c {
				return all[i].c > all[j].c
			}
			return all[i].idx < all[j].idx
		})
		trueTop := make(map[string]bool, k)
		for i := 0; i < k && i < len(all); i++ {
			trueTop[string(t.IDs[all[i].idx])] = true
		}
		p := metrics.Precision(a.Top(k), trueTop)
		tab.AddRow(fmt.Sprintf("%d", cp), []float64{p})
	}
	return tab
}

// figure33 is "Throughput vs memory size" on the campus workload.
func (r *Runner) figure33() *Table {
	algos := []string{AlgoSS, AlgoLC, AlgoCM, AlgoHK, AlgoHKMinimum}
	t := r.trace(gen.Campus(r.cfg.Seed))
	tab := NewTable("Fig 33: Throughput (Mps) vs memory size (Campus, k=100)", "Memory (KB)", algos)
	for _, kb := range memSweepKB {
		row := make([]float64, len(algos))
		for i, name := range algos {
			a := MustBuild(name, kb*1024, 100, r.cfg.Seed)
			row[i] = metrics.ThroughputN(t.Len(), t.Key, a.Insert)
		}
		tab.AddRow(fmt.Sprintf("%d", kb), row)
	}
	return tab
}

// figure34 is the OVS deployment experiment: forwarding throughput of the
// simulated switch with each measurement algorithm attached (50 KB budget),
// plus the no-measurement baseline.
func (r *Runner) figure34() *Table {
	t := r.trace(gen.Campus(r.cfg.Seed))
	names := []string{"OVS", AlgoHK, AlgoHKMinimum, AlgoCM, AlgoSS, AlgoLC}
	tab := NewTable("Fig 34: Throughput (Mps) on the simulated OVS platform (50KB)", "Algorithm", []string{"Throughput"})
	for _, name := range names {
		var insert func(key []byte)
		if name != "OVS" {
			a := MustBuild(name, 50*1024, 100, r.cfg.Seed)
			insert = a.Insert
		}
		p := vswitch.MustNewPipeline(4096, insert)
		p.BlockWhenFull = true
		stats := p.Run(t.Len(), t.Key)
		tab.AddRow(name, []float64{stats.ThroughputMps()})
	}
	return tab
}

// figureBound reproduces the appendix validation (Figs 35–36): the
// theoretical (ε,δ) bound of the basic version, Pr{n_i − n̂_i > ⌈εN⌉} ≤
// 1/(ε·w·n_i·(b−1)), against the empirically observed exceedance frequency
// over the elephant flows. ε is scaled inversely with the trace size so
// ⌈εN⌉ matches the paper's absolute packet threshold (see EXPERIMENTS.md).
func (r *Runner) figureBound(title string, epsPow int) *Table {
	t := r.trace(gen.Campus(r.cfg.Seed))
	n := float64(t.Len())
	eps := math.Ldexp(1, -epsPow) * (10_000_000 / n)
	epsN := math.Ceil(eps * n)

	const b = core.DefaultB
	const elephants = 500
	top := t.TopK(elephants)

	tab := NewTable(title, "Memory (KB)", []string{"Theoretical bound", "Empirical probability"})
	for _, kb := range []int{20, 40, 60, 80, 100} {
		w := kb * 1024 / (2 * 6) // d=2 arrays, 6B buckets
		sk := core.MustNew(core.Config{D: 2, W: w, Seed: r.cfg.Seed, FingerprintBits: 16, CounterBits: 32})
		t.ForEach(func(key []byte) { sk.InsertBasic(key) })

		exceed := 0
		var boundSum float64
		for _, fi := range top {
			ni := float64(t.Count(fi))
			est := float64(sk.Query(t.IDs[fi]))
			if ni-est > epsN {
				exceed++
			}
			bound := 1 / (eps * float64(w) * ni * (b - 1))
			if bound > 1 {
				bound = 1
			}
			boundSum += bound
		}
		tab.AddRow(fmt.Sprintf("%d", kb), []float64{
			boundSum / float64(len(top)),
			float64(exceed) / float64(len(top)),
		})
	}
	return tab
}
