package harness

import (
	"fmt"
	"strings"
)

// Table is one experiment's result grid, rendered as aligned text. Rows are
// sweep points (memory sizes, k values, skews); columns are algorithms or
// metrics — the same layout as the paper's figures read as tables.
type Table struct {
	// Title identifies the experiment, e.g. "Fig 4: Precision vs memory (campus)".
	Title string
	// XLabel names the sweep variable, e.g. "Memory (KB)".
	XLabel string
	// Columns are the series names.
	Columns []string
	// XS are the sweep values, one per row.
	XS []string
	// Cells[r][c] is the value of series c at sweep point r.
	Cells [][]float64
	// Format renders one cell; default "%.4g".
	Format string
}

// NewTable allocates a table with the given shape.
func NewTable(title, xlabel string, columns []string) *Table {
	return &Table{Title: title, XLabel: xlabel, Columns: columns}
}

// AddRow appends one sweep point.
func (t *Table) AddRow(x string, values []float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row has %d values for %d columns", len(values), len(t.Columns)))
	}
	t.XS = append(t.XS, x)
	row := make([]float64, len(values))
	copy(row, values)
	t.Cells = append(t.Cells, row)
}

// String renders the table.
func (t *Table) String() string {
	format := t.Format
	if format == "" {
		format = "%.4g"
	}
	headers := append([]string{t.XLabel}, t.Columns...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	rendered := make([][]string, len(t.XS))
	for r := range t.XS {
		row := make([]string, len(headers))
		row[0] = t.XS[r]
		for c, v := range t.Cells[r] {
			row[c+1] = fmt.Sprintf(format, v)
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		rendered[r] = row
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := len(headers) - 1
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range rendered {
		writeRow(row)
	}
	return b.String()
}

// Column returns the named series, or nil if absent.
func (t *Table) Column(name string) []float64 {
	for c, n := range t.Columns {
		if n == name {
			out := make([]float64, len(t.Cells))
			for r := range t.Cells {
				out[r] = t.Cells[r][c]
			}
			return out
		}
	}
	return nil
}
