package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/streamsummary"
	"repro/internal/topk"
)

// Ablation runs one of the repository's design-choice studies — experiments
// beyond the paper's figures that quantify the decisions DESIGN.md calls
// out (decay function, array count, fingerprint width, the two
// optimizations, top-k store, auto-expansion).
func (r *Runner) Ablation(id string) (*Table, error) {
	switch id {
	case "decay-functions":
		return r.ablationDecay(), nil
	case "depth":
		return r.ablationDepth(), nil
	case "fingerprint-bits":
		return r.ablationFingerprint(), nil
	case "optimizations":
		return r.ablationOptimizations(), nil
	case "store":
		return r.ablationStore(), nil
	case "expansion":
		return r.ablationExpansion(), nil
	default:
		return nil, fmt.Errorf("harness: unknown ablation %q", id)
	}
}

// AblationIDs lists the available ablations.
func AblationIDs() []string {
	return []string{
		"decay-functions", "depth", "fingerprint-bits",
		"optimizations", "store", "expansion",
	}
}

// evalTracker replays t through tr and scores the report against the
// cached oracle.
func (r *Runner) evalTracker(t *gen.Trace, tr *topk.Tracker, k int) scores {
	t.ForEach(tr.Insert)
	top := tr.Top()
	reported := make([]metrics.Entry, len(top))
	for i, e := range top {
		reported[i] = metrics.Entry{Key: e.Key, Count: e.Count}
	}
	o := r.oracle(t)
	return scores{
		precision: metrics.PrecisionAtK(reported, o, k),
		are:       metrics.ARE(reported, o),
		aae:       metrics.AAE(reported, o),
	}
}

// hkWidth converts a byte budget to the sketch width used by the paper
// sizing (k summary entries + d arrays of 6-byte buckets).
func hkWidth(budget, k, d int) int {
	rest := budget - k*streamsummary.BytesPerEntry
	w := int(float64(rest) / (float64(d) * core.BucketBytes(16, 32)))
	if w < 1 {
		w = 1
	}
	return w
}

// ablationDecay compares the three decay functions of §III-B at a tight
// budget; the paper states "the performances are similar with different
// decay functions".
func (r *Runner) ablationDecay() *Table {
	t := r.trace(gen.Campus(r.cfg.Seed))
	const k, budget = 100, 15 * 1024
	funcs := []struct {
		name string
		f    core.DecayFunc
	}{
		{"exp b^-C (b=1.08)", core.ExpDecay(1.08)},
		{"poly C^-b (b=1.08)", core.PolyDecay(1.08)},
		{"sigmoid (scale=8)", core.SigmoidDecay(8)},
	}
	tab := NewTable("Ablation: decay functions (Campus, 15KB, k=100)", "Decay", []string{"Precision", "ARE", "AAE"})
	for _, fn := range funcs {
		tr := topk.MustNew(topk.Options{
			K: k, Version: topk.Parallel,
			Sketch: core.Config{D: 2, W: hkWidth(budget, k, 2), Seed: r.cfg.Seed, Decay: fn.f},
		})
		s := r.evalTracker(t, tr, k)
		tab.AddRow(fn.name, []float64{s.precision, s.are, s.aae})
	}
	return tab
}

// ablationDepth sweeps the array count d at fixed total memory: more arrays
// mean more chances to dodge collisions but proportionally narrower arrays.
func (r *Runner) ablationDepth() *Table {
	t := r.trace(gen.Campus(r.cfg.Seed))
	const k, budget = 100, 20 * 1024
	tab := NewTable("Ablation: number of arrays d at 20KB (Campus, k=100)", "d", []string{"Precision", "ARE"})
	for _, d := range []int{1, 2, 3, 4} {
		tr := topk.MustNew(topk.Options{
			K: k, Version: topk.Parallel,
			Sketch: core.Config{D: d, W: hkWidth(budget, k, d), Seed: r.cfg.Seed},
		})
		s := r.evalTracker(t, tr, k)
		tab.AddRow(fmt.Sprintf("%d", d), []float64{s.precision, s.are})
	}
	return tab
}

// ablationFingerprint sweeps fingerprint width at fixed total memory:
// narrower fingerprints buy more buckets but suffer more collisions.
func (r *Runner) ablationFingerprint() *Table {
	t := r.trace(gen.Campus(r.cfg.Seed))
	const k, budget = 100, 20 * 1024
	tab := NewTable("Ablation: fingerprint width at 20KB (Campus, k=100)", "Bits", []string{"Precision", "ARE"})
	for _, bits := range []uint{8, 12, 16, 24} {
		rest := budget - k*streamsummary.BytesPerEntry
		w := int(float64(rest) / (2 * core.BucketBytes(bits, 32)))
		if w < 1 {
			w = 1
		}
		tr := topk.MustNew(topk.Options{
			K: k, Version: topk.Parallel,
			Sketch: core.Config{D: 2, W: w, FingerprintBits: bits, Seed: r.cfg.Seed},
		})
		s := r.evalTracker(t, tr, k)
		tab.AddRow(fmt.Sprintf("%d", bits), []float64{s.precision, s.are})
	}
	return tab
}

// ablationOptimizations toggles Optimization I (collision detection) and
// II (selective increment) on the Parallel version. The sketch uses 6-bit
// fingerprints so that fingerprint collisions — the failure mode the
// optimizations target — actually occur at this workload size; with the
// default 16 bits collisions are so rare that all variants coincide.
func (r *Runner) ablationOptimizations() *Table {
	t := r.trace(gen.Campus(r.cfg.Seed))
	const k, budget = 100, 15 * 1024
	variants := []struct {
		name        string
		optI, optII bool
	}{
		{"both on", true, true},
		{"no Opt I", false, true},
		{"no Opt II", true, false},
		{"both off", false, false},
	}
	tab := NewTable("Ablation: Optimizations I & II (Campus, 15KB, k=100, 6-bit fingerprints)", "Variant", []string{"Precision", "ARE", "AAE"})
	for _, v := range variants {
		tr := topk.MustNew(topk.Options{
			K: k, Version: topk.Parallel,
			DisableOptI:  !v.optI,
			DisableOptII: !v.optII,
			Sketch:       core.Config{D: 2, W: hkWidth(budget, k, 2), FingerprintBits: 6, Seed: r.cfg.Seed},
		})
		s := r.evalTracker(t, tr, k)
		tab.AddRow(v.name, []float64{s.precision, s.are, s.aae})
	}
	return tab
}

// ablationStore compares the Stream-Summary store against the min-heap
// store on accuracy and throughput.
func (r *Runner) ablationStore() *Table {
	t := r.trace(gen.Campus(r.cfg.Seed))
	const k, budget = 100, 30 * 1024
	tab := NewTable("Ablation: top-k store (Campus, 30KB, k=100)", "Store", []string{"Precision", "Throughput (Mps)"})
	for _, st := range []struct {
		name string
		kind topk.StoreKind
	}{
		{"Stream-Summary", topk.StoreSummary},
		{"Min-heap", topk.StoreHeap},
	} {
		tr := topk.MustNew(topk.Options{
			K: k, Version: topk.Parallel, Store: st.kind,
			Sketch: core.Config{D: 2, W: hkWidth(budget, k, 2), Seed: r.cfg.Seed},
		})
		mps := metrics.ThroughputN(t.Len(), t.Key, tr.Insert)
		top := tr.Top()
		reported := make([]metrics.Entry, len(top))
		for i, e := range top {
			reported[i] = metrics.Entry{Key: e.Key, Count: e.Count}
		}
		p := metrics.Precision(reported, r.oracle(t).TopKSet(k))
		tab.AddRow(st.name, []float64{p, mps})
	}
	return tab
}

// ablationExpansion builds the §III-F worst case — elephants arriving after
// every bucket is saturated — and measures how auto-expansion recovers the
// late arrivals.
func (r *Runner) ablationExpansion() *Table {
	const k = 100
	const early, late = 50, 50
	const perElephant = 2000
	const mice = 100000

	// Two-phase stream: early elephants + mice fill and saturate the
	// sketch, then late elephants arrive.
	var stream [][]byte
	exact := map[string]uint64{}
	add := func(key string, n int) {
		for i := 0; i < n; i++ {
			stream = append(stream, []byte(key))
		}
		exact[key] += uint64(n)
	}
	for e := 0; e < early; e++ {
		add(fmt.Sprintf("early-%d", e), perElephant)
	}
	for m := 0; m < mice; m++ {
		add(fmt.Sprintf("mouse-%d", m), 1)
	}
	// Shuffle phase one deterministically.
	rng := newShuffler(r.cfg.Seed)
	rng.shuffle(stream)
	phase1 := len(stream)
	for e := 0; e < late; e++ {
		add(fmt.Sprintf("late-%d", e), perElephant)
	}
	rng.shufflePart(stream, phase1)

	o := metrics.FromCounts(exact)
	trueTop := o.TopKSet(k)

	tab := NewTable("Ablation: §III-F auto-expansion with late-arriving elephants", "Expansion", []string{"Precision", "Arrays", "Late flows found"})
	for _, enabled := range []bool{false, true} {
		cfg := core.Config{D: 2, W: 96, Seed: r.cfg.Seed, LargeC: 50}
		if enabled {
			cfg.ExpandThreshold = 500
			cfg.MaxArrays = 6
		}
		tr := topk.MustNew(topk.Options{K: k, Version: topk.Parallel, Sketch: cfg})
		for _, p := range stream {
			tr.Insert(p)
		}
		top := tr.Top()
		reported := make([]metrics.Entry, len(top))
		lateFound := 0
		for i, e := range top {
			reported[i] = metrics.Entry{Key: e.Key, Count: e.Count}
			if len(e.Key) > 5 && e.Key[:5] == "late-" {
				lateFound++
			}
		}
		name := "off"
		if enabled {
			name = "on"
		}
		tab.AddRow(name, []float64{
			metrics.Precision(reported, trueTop),
			float64(tr.Sketch().D()),
			float64(lateFound),
		})
	}
	return tab
}
