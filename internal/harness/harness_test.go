package harness

import (
	"strings"
	"testing"

	"repro/internal/gen"
)

// testRunner uses a small scale so the full figure set stays fast in CI.
func testRunner() *Runner {
	return NewRunner(RunConfig{Scale: 0.005, Seed: 7})
}

func TestBuildAllAlgorithms(t *testing.T) {
	names := []string{
		AlgoHK, AlgoHKMinimum, AlgoHKBasic, AlgoSS, AlgoLC, AlgoCSS,
		AlgoCM, AlgoFrequent, AlgoElastic, AlgoColdFilter, AlgoCounterTree,
		AlgoGuardian,
	}
	for _, name := range names {
		a, err := Build(name, 20*1024, 100, 1)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("Name() = %q want %q", a.Name(), name)
		}
		if a.MemoryBytes() <= 0 {
			t.Errorf("%s: MemoryBytes = %d", name, a.MemoryBytes())
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build("nope", 10240, 10, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Build(AlgoHK, 10, 10, 1); err == nil {
		t.Error("tiny budget accepted")
	}
	if _, err := Build(AlgoHK, 10240, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestMemoryBudgetsRespected(t *testing.T) {
	// Every algorithm's logical footprint must stay within ~15% of the
	// budget it was built for (the head-to-head fairness requirement of
	// §VI-A).
	names := []string{
		AlgoHK, AlgoHKMinimum, AlgoSS, AlgoLC, AlgoCSS, AlgoCM,
		AlgoElastic, AlgoColdFilter, AlgoCounterTree, AlgoGuardian,
	}
	for _, budget := range []int{10 * 1024, 50 * 1024} {
		for _, name := range names {
			a := MustBuild(name, budget, 100, 1)
			if name == AlgoLC {
				continue // LC's footprint is dynamic (entries live and die)
			}
			if got := a.MemoryBytes(); got > budget*115/100 {
				t.Errorf("%s at %dB: MemoryBytes = %d exceeds budget", name, budget, got)
			}
		}
	}
}

func TestAllAlgorithmsFindHeadFlow(t *testing.T) {
	tr := gen.MustGenerate(gen.Spec{Packets: 50000, Flows: 3000, Skew: 1.2, Kind: gen.IDWord, Seed: 9})
	head := string(tr.IDs[tr.TopK(1)[0]])
	names := []string{
		AlgoHK, AlgoHKMinimum, AlgoHKBasic, AlgoSS, AlgoLC, AlgoCSS,
		AlgoCM, AlgoFrequent, AlgoElastic, AlgoColdFilter, AlgoCounterTree,
		AlgoGuardian,
	}
	for _, name := range names {
		a := MustBuild(name, 50*1024, 20, 3)
		if cr, ok := a.(CandidateRanker); ok {
			cr.SetCandidates(tr.IDs)
		}
		tr.ForEach(a.Insert)
		found := false
		for _, e := range a.Top(20) {
			if e.Key == head {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: head flow missing from top-20", name)
		}
	}
}

func TestFigureIDsAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in short mode")
	}
	r := testRunner()
	for _, id := range FigureIDs() {
		tab, err := r.Figure(id)
		if err != nil {
			t.Fatalf("Figure(%s): %v", id, err)
		}
		if len(tab.XS) == 0 || len(tab.Columns) == 0 {
			t.Errorf("Figure(%s): empty table", id)
		}
		if s := tab.String(); !strings.Contains(s, tab.Title) {
			t.Errorf("Figure(%s): render missing title", id)
		}
	}
}

func TestFigureUnknown(t *testing.T) {
	if _, err := testRunner().Figure("999"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestAblationsAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in short mode")
	}
	r := testRunner()
	for _, id := range AblationIDs() {
		tab, err := r.Ablation(id)
		if err != nil {
			t.Fatalf("Ablation(%s): %v", id, err)
		}
		if len(tab.XS) == 0 {
			t.Errorf("Ablation(%s): empty table", id)
		}
	}
	if _, err := r.Ablation("nope"); err == nil {
		t.Error("unknown ablation accepted")
	}
}

// TestOptimizationsMatter pins the ablation's qualitative result: disabling
// both optimizations must inflate ARE by at least an order of magnitude
// when fingerprints are narrow enough to collide.
func TestOptimizationsMatter(t *testing.T) {
	r := NewRunner(RunConfig{Scale: 0.01, Seed: 31337})
	tab, err := r.Ablation("optimizations")
	if err != nil {
		t.Fatal(err)
	}
	are := tab.Column("ARE")
	if are[3] < are[0]*10 {
		t.Errorf("both-off ARE %v not >= 10x both-on ARE %v", are[3], are[0])
	}
}

// TestExpansionRecoversLateElephants pins the §III-F ablation: expansion on
// must find at least as many late-arriving elephants as expansion off.
func TestExpansionRecoversLateElephants(t *testing.T) {
	r := NewRunner(RunConfig{Scale: 0.01, Seed: 31337})
	tab, err := r.Ablation("expansion")
	if err != nil {
		t.Fatal(err)
	}
	late := tab.Column("Late flows found")
	if late[1] < late[0] {
		t.Errorf("expansion on found %v late elephants < off %v", late[1], late[0])
	}
	arrays := tab.Column("Arrays")
	if arrays[1] <= arrays[0] {
		t.Errorf("expansion did not add arrays: %v vs %v", arrays[1], arrays[0])
	}
}

// TestHeadlineResult is the paper's central claim on this reproduction's
// workloads: at tight memory HeavyKeeper's precision beats every classic
// baseline, and its ARE is orders of magnitude smaller.
func TestHeadlineResult(t *testing.T) {
	r := NewRunner(RunConfig{Scale: 0.02, Seed: 42})
	tr := r.trace(gen.Campus(42))
	hk := r.evaluate(tr, AlgoHK, 10*1024, 100)
	for _, base := range []string{AlgoSS, AlgoLC, AlgoCM} {
		b := r.evaluate(tr, base, 10*1024, 100)
		if hk.precision < b.precision {
			t.Errorf("precision: HK %v < %s %v at 10KB", hk.precision, base, b.precision)
		}
		if hk.are*10 > b.are && b.are > 0 {
			t.Errorf("ARE: HK %v not ≥10x better than %s %v", hk.are, base, b.are)
		}
	}
	if hk.precision < 0.8 {
		t.Errorf("HK precision %v at 10KB, expected high", hk.precision)
	}
}

// TestMinimumBeatsParallelShape is Fig 23's shape: under very tight memory
// the Minimum version's precision is at least the Parallel version's.
func TestMinimumBeatsParallelShape(t *testing.T) {
	r := NewRunner(RunConfig{Scale: 0.02, Seed: 11})
	tr := r.trace(gen.Campus(11))
	par := r.evaluate(tr, AlgoHK, 7*1024, 100)
	min := r.evaluate(tr, AlgoHKMinimum, 7*1024, 100)
	if min.precision+0.05 < par.precision {
		t.Errorf("Minimum precision %v clearly below Parallel %v at 7KB", min.precision, par.precision)
	}
}

// TestBoundHolds is Figs 35–36: the empirical exceedance probability never
// exceeds the theoretical bound.
func TestBoundHolds(t *testing.T) {
	r := testRunner()
	for _, id := range []string{"35", "36"} {
		tab, err := r.Figure(id)
		if err != nil {
			t.Fatal(err)
		}
		theory := tab.Column("Theoretical bound")
		emp := tab.Column("Empirical probability")
		for i := range theory {
			if emp[i] > theory[i] {
				t.Errorf("fig %s row %d: empirical %v > bound %v", id, i, emp[i], theory[i])
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("T", "X", []string{"A", "B"})
	tab.AddRow("1", []float64{0.5, 2})
	tab.AddRow("2", []float64{0.25, 4})
	s := tab.String()
	for _, want := range []string{"T", "X", "A", "B", "0.5", "0.25"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	if got := tab.Column("B"); len(got) != 2 || got[1] != 4 {
		t.Errorf("Column(B) = %v", got)
	}
	if tab.Column("nope") != nil {
		t.Error("Column of unknown series should be nil")
	}
}

func TestTableAddRowPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row accepted")
		}
	}()
	NewTable("T", "X", []string{"A"}).AddRow("1", []float64{1, 2})
}

func TestTraceCaching(t *testing.T) {
	r := testRunner()
	a := r.trace(gen.Campus(7))
	b := r.trace(gen.Campus(7))
	if a != b {
		t.Error("trace not cached")
	}
	oa := r.oracle(a)
	ob := r.oracle(b)
	if oa != ob {
		t.Error("oracle not cached")
	}
}
