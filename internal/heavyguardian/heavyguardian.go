// Package heavyguardian implements HeavyGuardian (Yang et al., "Heavy
// Guardian: Separate and Guard Hot Items in Data Streams", KDD 2018), the
// algorithm from which HeavyKeeper inherits the exponential-decay strategy
// (§I-B: "uses the similar strategy introduced from [HeavyGuardian], called
// count-with-exponential-decay").
//
// HeavyGuardian hashes each flow to exactly one bucket; a bucket contains a
// small "heavy part" of λh (key, count) cells guarding hot items and a tiny
// "light part" of small counters absorbing cold items. A packet whose flow
// occupies a heavy cell increments it; otherwise the weakest heavy cell is
// decayed with probability b^-C, and on reaching zero the newcomer takes the
// cell (inheriting nothing), with the displaced count's remainder flushed to
// the light part.
//
// The ingest path follows the repository's one-hash discipline: the key
// bytes are hashed exactly once per packet (KeyHash) and the bucket and
// light-slot indexes derive from that hash Kirsch–Mitzenmacher-style via
// hash.Mix, so a caller that already holds the hash (a sharded router) pays
// no key-bytes traversal at all through InsertHashed.
//
// The HeavyKeeper paper deliberately does not benchmark against
// HeavyGuardian (§VI-E lists three reasons); the implementation is provided
// as the lineage substrate and for the repository's extension benches.
package heavyguardian

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/xrand"
)

// Config parameterizes a HeavyGuardian.
type Config struct {
	// Buckets is the number of buckets. Required.
	Buckets int
	// HeavyCells is λh, heavy cells per bucket. Default 8.
	HeavyCells int
	// LightCells is λl, light 8-bit counters per bucket. Default 8.
	LightCells int
	// B is the decay base. Default 1.08.
	B float64
	// Seed makes hashing and decay deterministic.
	Seed uint64
}

func (c *Config) setDefaults() error {
	if c.Buckets < 1 {
		return fmt.Errorf("heavyguardian: Buckets = %d, must be >= 1", c.Buckets)
	}
	if c.HeavyCells == 0 {
		c.HeavyCells = 8
	}
	if c.LightCells == 0 {
		c.LightCells = 8
	}
	if c.HeavyCells < 1 || c.LightCells < 0 {
		return fmt.Errorf("heavyguardian: cells %d/%d invalid", c.HeavyCells, c.LightCells)
	}
	if c.B == 0 {
		c.B = 1.08
	}
	if c.B <= 1 {
		return fmt.Errorf("heavyguardian: B = %v, must be > 1", c.B)
	}
	return nil
}

type cell struct {
	key   string
	count uint32
}

type gbucket struct {
	heavy []cell
	light []uint8
}

// Guardian is a HeavyGuardian sketch.
type Guardian struct {
	cfg        Config
	buckets    []gbucket
	keySeed    uint64 // seed of the single per-key hash
	bucketSalt uint64 // Mix salt deriving the bucket index from KeyHash
	lightSalt  uint64 // Mix salt deriving the light slot from KeyHash
	rng        *xrand.Xorshift64Star
	decay      []uint64 // fixed-point decay thresholds, index C-1
	// hashScratch/bktScratch back InsertBatch's per-chunk staging (key hash
	// and bucket index per key) so batching allocates nothing.
	hashScratch []uint64
	bktScratch  []uint32
}

// CellBytes is the logical size of one heavy cell (key id 8B + count 4B).
const CellBytes = 12

// New returns a HeavyGuardian for the given configuration.
func New(cfg Config) (*Guardian, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	sm := xrand.NewSplitMix64(cfg.Seed)
	g := &Guardian{
		cfg:        cfg,
		buckets:    make([]gbucket, cfg.Buckets),
		keySeed:    sm.Next(),
		bucketSalt: sm.Next(),
		lightSalt:  sm.Next(),
		rng:        xrand.NewXorshift64Star(cfg.Seed ^ 0x1234abcd),
	}
	f := core.ExpDecay(cfg.B)
	for c := uint32(1); c < 1024; c++ {
		p := f(c)
		th := uint64(0)
		if p > 0 {
			th = uint64(p * (1 << 63) * 2)
		}
		if th == 0 {
			break
		}
		g.decay = append(g.decay, th)
	}
	for i := range g.buckets {
		g.buckets[i].heavy = make([]cell, cfg.HeavyCells)
		g.buckets[i].light = make([]uint8, cfg.LightCells)
	}
	return g, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Guardian {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// FromBytes builds a guardian from a byte budget.
func FromBytes(budget int, seed uint64) (*Guardian, error) {
	const perBucket = 8*CellBytes + 8 // default cells
	b := budget / perBucket
	if b < 1 {
		b = 1
	}
	return New(Config{Buckets: b, Seed: seed})
}

func (g *Guardian) shouldDecay(c uint32) bool {
	i := int(c) - 1
	if i < 0 || i >= len(g.decay) {
		return false
	}
	return g.rng.Next() < g.decay[i]
}

// KeyHash returns the single per-key hash the structure derives everything
// from; routers compute it once and feed InsertHashed/EstimateHashed.
func (g *Guardian) KeyHash(key []byte) uint64 { return hash.Sum64(g.keySeed, key) }

// bucketOf derives the owning bucket from the key's one hash.
func (g *Guardian) bucketOf(h uint64) *gbucket {
	return &g.buckets[hash.Reduce(hash.Mix(g.bucketSalt, h), uint64(len(g.buckets)))]
}

// lightOf derives the light-part slot from the key's one hash.
func (g *Guardian) lightOf(h uint64) int {
	return int(hash.Reduce(hash.Mix(g.lightSalt, h), uint64(g.cfg.LightCells)))
}

// Insert records one packet of flow key, hashing the key bytes exactly once.
func (g *Guardian) Insert(key []byte) { g.InsertHashed(key, g.KeyHash(key)) }

// InsertHashed is Insert with the key's precomputed KeyHash; no key bytes
// are traversed (the resident-cell comparison is a string equality on the
// guarded id, needed for correctness either way).
func (g *Guardian) InsertHashed(key []byte, h uint64) {
	g.insertBucket(key, h, g.bucketOf(h))
}

// insertBucket is the shared per-packet body once the owning bucket is
// known; the batch path precomputes bucket indexes per chunk and lands here
// with the exact same per-key sequence as the sequential path (including the
// decay RNG stream), so batch ≡ sequential holds by construction.
func (g *Guardian) insertBucket(key []byte, h uint64, b *gbucket) {
	weakest := -1
	var weakestC uint32
	for i := range b.heavy {
		c := &b.heavy[i]
		if c.count > 0 && c.key == string(key) {
			c.count++
			return
		}
		if c.count == 0 {
			// Free cell: claim it immediately.
			c.key, c.count = string(key), 1
			return
		}
		if weakest < 0 || c.count < weakestC {
			weakest, weakestC = i, c.count
		}
	}
	// All cells busy with other flows: decay the weakest.
	w := &b.heavy[weakest]
	if g.shouldDecay(w.count) {
		w.count--
		if w.count == 0 {
			w.key, w.count = string(key), 1
			return
		}
	}
	// Packet not absorbed by the heavy part: count it in the light part.
	if g.cfg.LightCells > 0 {
		slot := g.lightOf(h)
		if b.light[slot] < 255 {
			b.light[slot]++
		}
	}
}

// InsertBatch records one packet per key, equivalently to calling Insert on
// each key in order but batch-shaped: see InsertBatchHashed.
func (g *Guardian) InsertBatch(keys [][]byte) { g.InsertBatchHashed(keys, nil) }

// InsertBatchHashed is InsertBatch for a caller that already computed
// KeyHash for every key (hashes[i] must correspond to keys[i]; nil means
// hash here, exactly once per key). Each chunk runs a grouped two-pass
// probe: pass 1 derives every key's bucket index in one tight loop and
// touches the bucket's first heavy cell — independent loads the hardware
// overlaps, warming the cell lines — and pass 2 applies the shared
// insertBucket body in stream order, bit-identical to a sequential loop.
func (g *Guardian) InsertBatchHashed(keys [][]byte, hashes []uint64) {
	for off := 0; off < len(keys); off += core.BatchChunk {
		end := off + core.BatchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		hs, bis := g.stageChunk(chunk, hashes, off)
		for ci, key := range chunk {
			g.insertBucket(key, hs[ci], &g.buckets[bis[ci]])
		}
	}
}

// stageChunk fills the reusable per-chunk scratch with each key's hash and
// bucket index, touching each bucket's heavy slice as it goes.
func (g *Guardian) stageChunk(chunk [][]byte, hashes []uint64, off int) ([]uint64, []uint32) {
	if cap(g.hashScratch) < len(chunk) {
		g.hashScratch = make([]uint64, len(chunk))
		g.bktScratch = make([]uint32, len(chunk))
	}
	hs := g.hashScratch[:len(chunk)]
	bis := g.bktScratch[:len(chunk)]
	nb := uint64(len(g.buckets))
	for i, key := range chunk {
		var kh uint64
		if hashes != nil {
			kh = hashes[off+i]
		} else {
			kh = hash.Sum64(g.keySeed, key)
		}
		hs[i] = kh
		bi := uint32(hash.Reduce(hash.Mix(g.bucketSalt, kh), nb))
		bis[i] = bi
		_ = g.buckets[bi].heavy[0].count // touch: warm the heavy cells' line
	}
	return hs, bis
}

// InsertN records a weight-n arrival of flow key. A guarded flow's cell
// rises by n in one step (saturating at the counter width); an unguarded
// flow replays the per-packet contest n times, since each packet's decay
// trial is an independent event — O(n) for non-resident weighted arrivals,
// O(1) once the flow is guarded.
func (g *Guardian) InsertN(key []byte, n uint64) { g.InsertNHashed(key, g.KeyHash(key), n) }

// InsertNHashed is InsertN with the key's precomputed KeyHash.
func (g *Guardian) InsertNHashed(key []byte, h uint64, n uint64) {
	for ; n > 0; n-- {
		b := g.bucketOf(h)
		resident := false
		for i := range b.heavy {
			c := &b.heavy[i]
			if c.count > 0 && c.key == string(key) {
				// Guarded: absorb the whole remaining weight at once.
				if rest := uint64(c.count) + n; rest <= math.MaxUint32 {
					c.count = uint32(rest)
				} else {
					c.count = math.MaxUint32
				}
				resident = true
				break
			}
		}
		if resident {
			return
		}
		g.InsertHashed(key, h)
	}
}

// Estimate returns the size estimate for key: its heavy cell if guarded,
// otherwise its light counter.
func (g *Guardian) Estimate(key []byte) uint64 { return g.EstimateHashed(key, g.KeyHash(key)) }

// EstimateHashed is Estimate with the key's precomputed KeyHash.
func (g *Guardian) EstimateHashed(key []byte, h uint64) uint64 {
	b := g.bucketOf(h)
	for i := range b.heavy {
		if b.heavy[i].count > 0 && b.heavy[i].key == string(key) {
			return uint64(b.heavy[i].count)
		}
	}
	if g.cfg.LightCells == 0 {
		return 0
	}
	return uint64(b.light[g.lightOf(h)])
}

// Entry is one reported flow.
type Entry struct {
	Key   string
	Count uint64
}

// Top returns the k largest guarded flows.
func (g *Guardian) Top(k int) []Entry {
	var all []Entry
	for i := range g.buckets {
		for _, c := range g.buckets[i].heavy {
			if c.count > 0 {
				all = append(all, Entry{Key: c.key, Count: uint64(c.count)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// MemoryBytes reports the logical footprint.
func (g *Guardian) MemoryBytes() int {
	return g.cfg.Buckets * (g.cfg.HeavyCells*CellBytes + g.cfg.LightCells)
}
