// Package heavyguardian implements HeavyGuardian (Yang et al., "Heavy
// Guardian: Separate and Guard Hot Items in Data Streams", KDD 2018), the
// algorithm from which HeavyKeeper inherits the exponential-decay strategy
// (§I-B: "uses the similar strategy introduced from [HeavyGuardian], called
// count-with-exponential-decay").
//
// HeavyGuardian hashes each flow to exactly one bucket; a bucket contains a
// small "heavy part" of λh (key, count) cells guarding hot items and a tiny
// "light part" of small counters absorbing cold items. A packet whose flow
// occupies a heavy cell increments it; otherwise the weakest heavy cell is
// decayed with probability b^-C, and on reaching zero the newcomer takes the
// cell (inheriting nothing), with the displaced count's remainder flushed to
// the light part.
//
// The HeavyKeeper paper deliberately does not benchmark against
// HeavyGuardian (§VI-E lists three reasons); the implementation is provided
// as the lineage substrate and for the repository's extension benches.
package heavyguardian

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/xrand"
)

// Config parameterizes a HeavyGuardian.
type Config struct {
	// Buckets is the number of buckets. Required.
	Buckets int
	// HeavyCells is λh, heavy cells per bucket. Default 8.
	HeavyCells int
	// LightCells is λl, light 8-bit counters per bucket. Default 8.
	LightCells int
	// B is the decay base. Default 1.08.
	B float64
	// Seed makes hashing and decay deterministic.
	Seed uint64
}

func (c *Config) setDefaults() error {
	if c.Buckets < 1 {
		return fmt.Errorf("heavyguardian: Buckets = %d, must be >= 1", c.Buckets)
	}
	if c.HeavyCells == 0 {
		c.HeavyCells = 8
	}
	if c.LightCells == 0 {
		c.LightCells = 8
	}
	if c.HeavyCells < 1 || c.LightCells < 0 {
		return fmt.Errorf("heavyguardian: cells %d/%d invalid", c.HeavyCells, c.LightCells)
	}
	if c.B == 0 {
		c.B = 1.08
	}
	if c.B <= 1 {
		return fmt.Errorf("heavyguardian: B = %v, must be > 1", c.B)
	}
	return nil
}

type cell struct {
	key   string
	count uint32
}

type gbucket struct {
	heavy []cell
	light []uint8
}

// Guardian is a HeavyGuardian sketch.
type Guardian struct {
	cfg     Config
	buckets []gbucket
	family  *hash.Family
	rng     *xrand.Xorshift64Star
	decay   []uint64 // fixed-point decay thresholds, index C-1
}

// CellBytes is the logical size of one heavy cell (key id 8B + count 4B).
const CellBytes = 12

// New returns a HeavyGuardian for the given configuration.
func New(cfg Config) (*Guardian, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	g := &Guardian{
		cfg:     cfg,
		buckets: make([]gbucket, cfg.Buckets),
		family:  hash.NewFamily(cfg.Seed, 2), // [0] bucket, [1] light slot
		rng:     xrand.NewXorshift64Star(cfg.Seed ^ 0x1234abcd),
	}
	f := core.ExpDecay(cfg.B)
	for c := uint32(1); c < 1024; c++ {
		p := f(c)
		th := uint64(0)
		if p > 0 {
			th = uint64(p * (1 << 63) * 2)
		}
		if th == 0 {
			break
		}
		g.decay = append(g.decay, th)
	}
	for i := range g.buckets {
		g.buckets[i].heavy = make([]cell, cfg.HeavyCells)
		g.buckets[i].light = make([]uint8, cfg.LightCells)
	}
	return g, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Guardian {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// FromBytes builds a guardian from a byte budget.
func FromBytes(budget int, seed uint64) (*Guardian, error) {
	const perBucket = 8*CellBytes + 8 // default cells
	b := budget / perBucket
	if b < 1 {
		b = 1
	}
	return New(Config{Buckets: b, Seed: seed})
}

func (g *Guardian) shouldDecay(c uint32) bool {
	i := int(c) - 1
	if i < 0 || i >= len(g.decay) {
		return false
	}
	return g.rng.Next() < g.decay[i]
}

// Insert records one packet of flow key.
func (g *Guardian) Insert(key []byte) {
	b := &g.buckets[g.family.Index(0, key, g.cfg.Buckets)]
	ks := string(key)
	weakest := -1
	var weakestC uint32
	for i := range b.heavy {
		c := &b.heavy[i]
		if c.count > 0 && c.key == ks {
			c.count++
			return
		}
		if c.count == 0 {
			// Free cell: claim it immediately.
			c.key, c.count = ks, 1
			return
		}
		if weakest < 0 || c.count < weakestC {
			weakest, weakestC = i, c.count
		}
	}
	// All cells busy with other flows: decay the weakest.
	w := &b.heavy[weakest]
	if g.shouldDecay(w.count) {
		w.count--
		if w.count == 0 {
			w.key, w.count = ks, 1
			return
		}
	}
	// Packet not absorbed by the heavy part: count it in the light part.
	if g.cfg.LightCells > 0 {
		slot := g.family.Index(1, key, g.cfg.LightCells)
		if b.light[slot] < 255 {
			b.light[slot]++
		}
	}
}

// Estimate returns the size estimate for key: its heavy cell if guarded,
// otherwise its light counter.
func (g *Guardian) Estimate(key []byte) uint64 {
	b := &g.buckets[g.family.Index(0, key, g.cfg.Buckets)]
	ks := string(key)
	for i := range b.heavy {
		if b.heavy[i].count > 0 && b.heavy[i].key == ks {
			return uint64(b.heavy[i].count)
		}
	}
	if g.cfg.LightCells == 0 {
		return 0
	}
	return uint64(b.light[g.family.Index(1, key, g.cfg.LightCells)])
}

// Entry is one reported flow.
type Entry struct {
	Key   string
	Count uint64
}

// Top returns the k largest guarded flows.
func (g *Guardian) Top(k int) []Entry {
	var all []Entry
	for i := range g.buckets {
		for _, c := range g.buckets[i].heavy {
			if c.count > 0 {
				all = append(all, Entry{Key: c.key, Count: uint64(c.count)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// MemoryBytes reports the logical footprint.
func (g *Guardian) MemoryBytes() int {
	return g.cfg.Buckets * (g.cfg.HeavyCells*CellBytes + g.cfg.LightCells)
}
