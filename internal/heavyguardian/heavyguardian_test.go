package heavyguardian

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/streamtest"
)

func key(i int) []byte { return []byte(fmt.Sprintf("flow-%d", i)) }

func TestValidation(t *testing.T) {
	for i, cfg := range []Config{
		{Buckets: 0},
		{Buckets: 10, B: 0.5},
		{Buckets: 10, HeavyCells: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestExactWhenAlone(t *testing.T) {
	g := MustNew(Config{Buckets: 16, Seed: 1})
	for i := 0; i < 1000; i++ {
		g.Insert(key(1))
	}
	if got := g.Estimate(key(1)); got != 1000 {
		t.Errorf("estimate = %d want 1000", got)
	}
}

func TestGuardsHotItems(t *testing.T) {
	g := MustNew(Config{Buckets: 4, HeavyCells: 2, Seed: 2})
	const n = 10000
	for i := 0; i < n; i++ {
		g.Insert(key(0))
		if i%4 == 0 {
			g.Insert(key(1 + i)) // stream of mice contesting the buckets
		}
	}
	est := g.Estimate(key(0))
	if float64(est) < 0.95*float64(n) {
		t.Errorf("hot item estimate = %d want >= 95%% of %d", est, n)
	}
}

func TestLightPartHoldsCold(t *testing.T) {
	g := MustNew(Config{Buckets: 1, HeavyCells: 1, LightCells: 64, Seed: 3})
	// Fill the single heavy cell with an elephant, then send mice.
	for i := 0; i < 1000; i++ {
		g.Insert(key(0))
	}
	for i := 0; i < 3; i++ {
		g.Insert(key(42))
	}
	if got := g.Estimate(key(42)); got == 0 {
		t.Error("cold flow invisible; light part should count it")
	}
}

func TestFindsTopK(t *testing.T) {
	st := streamtest.Zipf(150000, 5000, 1.2, 13)
	g := MustNew(Config{Buckets: 128, Seed: 7})
	for _, p := range st.Packets {
		g.Insert(p)
	}
	var rep []streamtest.Reported
	for _, e := range g.Top(20) {
		rep = append(rep, streamtest.Reported{Key: e.Key, Count: e.Count})
	}
	if p := streamtest.Precision(rep, st.TrueTop(20)); p < 0.8 {
		t.Errorf("precision = %v want >= 0.8", p)
	}
}

func TestNoOverestimationWithoutCollisions(t *testing.T) {
	st := streamtest.Zipf(50000, 1000, 1.2, 17)
	g := MustNew(Config{Buckets: 256, Seed: 9})
	for _, p := range st.Packets {
		g.Insert(p)
	}
	for _, e := range g.Top(200) {
		if e.Count > st.Exact[e.Key] {
			t.Errorf("flow %s over-estimated: %d > %d", e.Key, e.Count, st.Exact[e.Key])
		}
	}
}

func TestFromBytes(t *testing.T) {
	g, err := FromBytes(10400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MemoryBytes(); got > 10400 {
		t.Errorf("MemoryBytes = %d exceeds budget", got)
	}
}

func BenchmarkInsert(b *testing.B) {
	g := MustNew(Config{Buckets: 1024, Seed: 1})
	st := streamtest.Zipf(1<<16, 10000, 1.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Insert(st.Packets[i&(len(st.Packets)-1)])
	}
}

// TestInsertBatchMatchesSequential: the staged batch path (key hash + bucket
// index per chunk, bucket head touched ahead) must be bit-identical to a
// loop over Insert — including the decay RNG stream, which both sides consume
// in stream order — with and without caller-precomputed hashes.
func TestInsertBatchMatchesSequential(t *testing.T) {
	cfg := Config{Buckets: 64, Seed: 5}
	seq := MustNew(cfg)
	bat := MustNew(cfg)
	pre := MustNew(cfg)
	st := streamtest.Zipf(20_000, 800, 1.2, 11)

	hashes := make([]uint64, len(st.Packets))
	for i, k := range st.Packets {
		hashes[i] = pre.KeyHash(k)
	}
	for _, k := range st.Packets {
		seq.Insert(k)
	}
	for off := 0; off < len(st.Packets); {
		n := 1 + (off*7)%600
		if off+n > len(st.Packets) {
			n = len(st.Packets) - off
		}
		bat.InsertBatch(st.Packets[off : off+n])
		off += n
	}
	pre.InsertBatchHashed(st.Packets, hashes)

	for name, got := range map[string]*Guardian{"self-hashing": bat, "prehashed": pre} {
		if !reflect.DeepEqual(got.Top(64), seq.Top(64)) {
			t.Fatalf("%s: Top diverges from sequential", name)
		}
		for f := range st.Exact {
			if a, b := seq.Estimate([]byte(f)), got.Estimate([]byte(f)); a != b {
				t.Fatalf("%s: Estimate(%q) = %d, sequential %d", name, f, b, a)
			}
		}
	}
}
