package gen

import (
	"math"
	"sort"
)

// sortSlice wraps sort.Slice; isolated here so gen.go reads without the
// dependency noise.
func sortSlice(idx []int, less func(a, b int) bool) {
	sort.Slice(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
}

// powSkew computes x^a for the Zipf weights, with the two common exponents
// special-cased for generation speed (the table is built once per trace, so
// this is a nicety, not a hot path).
func powSkew(x, a float64) float64 {
	switch a {
	case 0:
		return 1
	case 1:
		return x
	default:
		return math.Pow(x, a)
	}
}
