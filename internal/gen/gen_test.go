package gen

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func xrandNew(seed uint64) *xrand.Xorshift64Star { return xrand.NewXorshift64Star(seed) }

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Packets: 0, Flows: 1},
		{Packets: 10, Flows: 0},
		{Packets: 10, Flows: 20},
		{Packets: 10, Flows: 5, Skew: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, s)
		}
	}
	good := Spec{Packets: 100, Flows: 10, Skew: 1.0}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestIDKindSizes(t *testing.T) {
	if IDFiveTuple.Size() != 13 || IDTwoTuple.Size() != 8 || IDWord.Size() != 4 {
		t.Error("IDKind sizes wrong")
	}
}

func TestScale(t *testing.T) {
	s := Campus(1).Scale(0.01)
	if s.Packets != 100_000 || s.Flows != 10_000 {
		t.Errorf("Scale(0.01) = %d pkts / %d flows, want 100000/10000", s.Packets, s.Flows)
	}
	tiny := Spec{Packets: 10, Flows: 5, Skew: 1}.Scale(0.0001)
	if tiny.Packets < 1 || tiny.Flows < 1 || tiny.Flows > tiny.Packets {
		t.Errorf("tiny scale produced invalid spec: %+v", tiny)
	}
}

func TestGenerateBasicProperties(t *testing.T) {
	spec := Spec{Name: "t", Packets: 50000, Flows: 5000, Skew: 1.0, Kind: IDWord, Seed: 1}
	tr := MustGenerate(spec)
	if tr.Len() != spec.Packets {
		t.Fatalf("Len = %d want %d", tr.Len(), spec.Packets)
	}
	if tr.Flows() != spec.Flows {
		t.Fatalf("Flows = %d want %d", tr.Flows(), spec.Flows)
	}
	// Ground truth sums to N and every flow appears.
	var sum uint64
	for i := 0; i < tr.Flows(); i++ {
		c := tr.Count(i)
		if c == 0 {
			t.Fatalf("flow %d has zero packets", i)
		}
		sum += c
	}
	if sum != uint64(spec.Packets) {
		t.Fatalf("counts sum to %d want %d", sum, spec.Packets)
	}
	// Replaying the sequence reproduces the ground truth.
	replay := make([]uint64, tr.Flows())
	for p := 0; p < tr.Len(); p++ {
		_ = tr.Key(p)
		replay[tr.Seq[p]]++
	}
	for i := range replay {
		if replay[i] != tr.Count(i) {
			t.Fatalf("flow %d: replay %d, recorded %d", i, replay[i], tr.Count(i))
		}
	}
}

func TestFlowIDsUniqueAndSized(t *testing.T) {
	for _, kind := range []IDKind{IDFiveTuple, IDTwoTuple, IDWord} {
		tr := MustGenerate(Spec{Packets: 5000, Flows: 5000, Skew: 1, Kind: kind, Seed: 2})
		seen := make(map[string]bool, tr.Flows())
		for _, id := range tr.IDs {
			if len(id) != kind.Size() {
				t.Fatalf("kind %d: id length %d want %d", kind, len(id), kind.Size())
			}
			if seen[string(id)] {
				t.Fatalf("kind %d: duplicate flow id", kind)
			}
			seen[string(id)] = true
		}
	}
}

func TestZipfShape(t *testing.T) {
	// With skew 1.0 the head flow should hold roughly N/(δ(γ)·1) of the
	// drawn packets; check the rank-size relationship decays.
	spec := Spec{Packets: 200000, Flows: 2000, Skew: 1.0, Kind: IDWord, Seed: 3}
	tr := MustGenerate(spec)
	top := tr.TopK(10)
	c0 := float64(tr.Count(top[0]))
	c9 := float64(tr.Count(top[9]))
	if ratio := c0 / c9; ratio < 4 || ratio > 25 {
		t.Errorf("top1/top10 ratio = %v, want ~10 for zipf(1.0)", ratio)
	}
	// Harmonic-sum expectation for the head flow.
	h := 0.0
	for j := 1; j <= spec.Flows; j++ {
		h += 1 / float64(j)
	}
	expected := float64(spec.Packets-spec.Flows)/h + 1
	if math.Abs(c0-expected)/expected > 0.15 {
		t.Errorf("head flow count %v, expected ≈ %v", c0, expected)
	}
}

func TestHigherSkewMoreConcentrated(t *testing.T) {
	frac := func(skew float64) float64 {
		tr := MustGenerate(Spec{Packets: 100000, Flows: 5000, Skew: skew, Kind: IDWord, Seed: 4})
		top := tr.TopK(10)
		var s uint64
		for _, i := range top {
			s += tr.Count(i)
		}
		return float64(s) / 100000
	}
	lo, hi := frac(0.6), frac(2.0)
	if hi <= lo {
		t.Errorf("top-10 packet share: skew 2.0 (%v) <= skew 0.6 (%v)", hi, lo)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(Spec{Packets: 10000, Flows: 1000, Skew: 1, Kind: IDTwoTuple, Seed: 5})
	b := MustGenerate(Spec{Packets: 10000, Flows: 1000, Skew: 1, Kind: IDTwoTuple, Seed: 5})
	for p := 0; p < a.Len(); p++ {
		if string(a.Key(p)) != string(b.Key(p)) {
			t.Fatalf("traces diverge at packet %d", p)
		}
	}
	c := MustGenerate(Spec{Packets: 10000, Flows: 1000, Skew: 1, Kind: IDTwoTuple, Seed: 6})
	diff := 0
	for p := 0; p < a.Len(); p++ {
		if string(a.Key(p)) != string(c.Key(p)) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical traces")
	}
}

func TestTopKOrdering(t *testing.T) {
	tr := MustGenerate(Spec{Packets: 30000, Flows: 300, Skew: 1.2, Kind: IDWord, Seed: 7})
	top := tr.TopK(50)
	for i := 1; i < len(top); i++ {
		if tr.Count(top[i]) > tr.Count(top[i-1]) {
			t.Fatalf("TopK not descending at %d", i)
		}
	}
	if len(tr.TopK(100000)) != 300 {
		t.Error("TopK with k > M should return all flows")
	}
}

func TestExactCounts(t *testing.T) {
	tr := MustGenerate(Spec{Packets: 5000, Flows: 500, Skew: 1, Kind: IDWord, Seed: 8})
	exact := tr.ExactCounts()
	if len(exact) != 500 {
		t.Fatalf("ExactCounts has %d entries want 500", len(exact))
	}
	var sum uint64
	for _, v := range exact {
		sum += v
	}
	if sum != 5000 {
		t.Fatalf("ExactCounts sums to %d want 5000", sum)
	}
}

func TestPresetSpecs(t *testing.T) {
	c := Campus(1)
	if c.Packets != 10_000_000 || c.Flows != 1_000_000 || c.Kind != IDFiveTuple {
		t.Errorf("Campus spec wrong: %+v", c)
	}
	ca := CAIDA(1)
	if ca.Packets != 10_000_000 || ca.Flows != 4_200_000 || ca.Kind != IDTwoTuple {
		t.Errorf("CAIDA spec wrong: %+v", ca)
	}
	sy := Synthetic(1.5, 1)
	if sy.Packets != 32_000_000 || sy.Kind != IDWord || sy.Skew != 1.5 {
		t.Errorf("Synthetic spec wrong: %+v", sy)
	}
	if Synthetic(3.0, 1).Flows >= Synthetic(0.6, 1).Flows {
		t.Error("higher skew should mean fewer flows")
	}
	for _, s := range []Spec{c.Scale(0.001), ca.Scale(0.001), sy.Scale(0.001)} {
		if err := s.Validate(); err != nil {
			t.Errorf("scaled preset invalid: %v", err)
		}
	}
}

func TestAliasTableUniformSkewZero(t *testing.T) {
	tr := MustGenerate(Spec{Packets: 100000, Flows: 100, Skew: 0, Kind: IDWord, Seed: 9})
	// All flows should have ~1000 packets under zero skew.
	for i := 0; i < tr.Flows(); i++ {
		c := float64(tr.Count(i))
		if c < 700 || c > 1300 {
			t.Errorf("flow %d count %v, want ~1000 under uniform draws", i, c)
		}
	}
}

func BenchmarkGenerate100k(b *testing.B) {
	spec := Spec{Packets: 100000, Flows: 10000, Skew: 1, Kind: IDFiveTuple, Seed: 1}
	for i := 0; i < b.N; i++ {
		MustGenerate(spec)
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	z := newZipfAlias(1_000_000, 1.0, xrandNew(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.draw()
	}
}
