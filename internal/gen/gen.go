// Package gen generates the packet workloads of the HeavyKeeper paper's
// evaluation (§VI-A):
//
//   - a "campus" trace: 10M packets over 1M flows identified by 5-tuples;
//   - a "CAIDA" trace: 10M packets over ~4.2M flows identified by
//     source/destination IP pairs;
//   - synthetic Zipf traces: 32M packets with skew 0.6–3.0 and 4-byte
//     flow IDs, following the paper's skew definition
//     f_i = N / (i^γ · δ(γ)), δ(γ) = Σ_j 1/j^γ.
//
// The real captures are proprietary; these generators are the substitution
// documented in DESIGN.md §3: they reproduce the population statistics
// (packet count, flow count, ID format, heavy-tailed size distribution) that
// the measured algorithms are sensitive to. Every generator is deterministic
// under its seed. A Spec's Scale field shrinks packet and flow counts
// proportionally for laptop-speed runs while preserving the distribution
// shape.
package gen

import (
	"encoding/binary"
	"fmt"

	"repro/internal/xrand"
)

// IDKind selects the flow identifier format.
type IDKind int

const (
	// IDFiveTuple is a 13-byte src IP, dst IP, src port, dst port, protocol
	// identifier — the campus trace's flow definition.
	IDFiveTuple IDKind = iota
	// IDTwoTuple is an 8-byte source+destination IP pair — the CAIDA
	// trace's flow definition.
	IDTwoTuple
	// IDWord is a 4-byte synthetic identifier — the paper's synthetic
	// datasets use 4-byte packets.
	IDWord
)

// Size returns the identifier length in bytes.
func (k IDKind) Size() int {
	switch k {
	case IDFiveTuple:
		return 13
	case IDTwoTuple:
		return 8
	case IDWord:
		return 4
	default:
		panic(fmt.Sprintf("gen: unknown IDKind %d", int(k)))
	}
}

// Spec describes a workload.
type Spec struct {
	// Name labels the workload in reports.
	Name string
	// Packets is the total packet count N.
	Packets int
	// Flows is the flow population M. Every flow appears at least once.
	Flows int
	// Skew is the Zipf exponent γ applied to the flow-size distribution.
	Skew float64
	// Kind is the flow identifier format.
	Kind IDKind
	// Seed drives all randomness.
	Seed uint64
}

// Validate checks the spec for consistency.
func (s Spec) Validate() error {
	if s.Packets < 1 {
		return fmt.Errorf("gen: Packets = %d, must be >= 1", s.Packets)
	}
	if s.Flows < 1 {
		return fmt.Errorf("gen: Flows = %d, must be >= 1", s.Flows)
	}
	if s.Flows > s.Packets {
		return fmt.Errorf("gen: Flows = %d > Packets = %d; every flow needs a packet", s.Flows, s.Packets)
	}
	if s.Skew < 0 {
		return fmt.Errorf("gen: Skew = %v, must be >= 0", s.Skew)
	}
	return nil
}

// Scale returns a copy of the spec with packet and flow counts multiplied by
// f (minimum 1 each), for laptop-sized runs of the paper's 10M–32M packet
// experiments.
func (s Spec) Scale(f float64) Spec {
	out := s
	out.Packets = int(float64(s.Packets) * f)
	if out.Packets < 1 {
		out.Packets = 1
	}
	out.Flows = int(float64(s.Flows) * f)
	if out.Flows < 1 {
		out.Flows = 1
	}
	if out.Flows > out.Packets {
		out.Flows = out.Packets
	}
	return out
}

// Campus returns the campus-trace spec (§VI-A dataset 1): 10M packets, 1M
// flows, 5-tuple IDs. The skew 1.0 heavy tail matches campus-style traffic.
func Campus(seed uint64) Spec {
	return Spec{Name: "campus", Packets: 10_000_000, Flows: 1_000_000, Skew: 1.0, Kind: IDFiveTuple, Seed: seed}
}

// CAIDA returns the CAIDA-trace spec (§VI-A dataset 2): 10M packets, 4.2M
// flows, src/dst IP IDs. The lower skew reflects the much mousier backbone
// mix (2.4 packets per flow on average).
func CAIDA(seed uint64) Spec {
	return Spec{Name: "caida", Packets: 10_000_000, Flows: 4_200_000, Skew: 0.9, Kind: IDTwoTuple, Seed: seed}
}

// Synthetic returns a synthetic-dataset spec (§VI-A dataset 3): 32M packets
// with the given skew. The flow population shrinks as skew grows, mirroring
// the paper's "1∼10M flows depending on the skewness".
func Synthetic(skew float64, seed uint64) Spec {
	flows := int(10_000_000 / (1 + 3*skew))
	return Spec{
		Name:    fmt.Sprintf("zipf-%.1f", skew),
		Packets: 32_000_000,
		Flows:   flows,
		Skew:    skew,
		Kind:    IDWord,
		Seed:    seed,
	}
}

// Trace is a generated packet stream: a flow-ID table plus the packet
// sequence as indexes into it. Storing indexes keeps a 10M-packet trace at
// ~40 MB regardless of ID size.
type Trace struct {
	Spec   Spec
	IDs    [][]byte // flow index -> identifier bytes
	Seq    []uint32 // packet -> flow index
	counts []uint64 // flow index -> exact size (ground truth)
}

// Generate builds the workload: deterministic flow IDs, Zipf-distributed
// flow sizes (every flow gets one base packet; the remaining N−M packets are
// i.i.d. Zipf draws), and a uniformly shuffled packet order.
func Generate(spec Spec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sm := xrand.NewSplitMix64(spec.Seed)
	idRng := xrand.NewXorshift64Star(sm.Next())
	drawRng := xrand.NewXorshift64Star(sm.Next())
	shufRng := xrand.NewXorshift64Star(sm.Next())

	t := &Trace{
		Spec:   spec,
		IDs:    make([][]byte, spec.Flows),
		Seq:    make([]uint32, spec.Packets),
		counts: make([]uint64, spec.Flows),
	}
	seen := make(map[string]bool, spec.Flows)
	for i := range t.IDs {
		id := makeID(spec.Kind, idRng)
		for seen[string(id)] {
			id = makeID(spec.Kind, idRng)
		}
		seen[string(id)] = true
		t.IDs[i] = id
	}

	// One guaranteed packet per flow, then Zipf draws for the rest.
	pos := 0
	for i := 0; i < spec.Flows; i++ {
		t.Seq[pos] = uint32(i)
		t.counts[i] = 1
		pos++
	}
	z := newZipfAlias(spec.Flows, spec.Skew, drawRng)
	for ; pos < spec.Packets; pos++ {
		i := z.draw()
		t.Seq[pos] = uint32(i)
		t.counts[i]++
	}
	shufRng.Shuffle(len(t.Seq), func(a, b int) {
		t.Seq[a], t.Seq[b] = t.Seq[b], t.Seq[a]
	})
	return t, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(spec Spec) *Trace {
	t, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// makeID draws one identifier of the given kind.
func makeID(kind IDKind, rng *xrand.Xorshift64Star) []byte {
	b := make([]byte, kind.Size())
	switch kind {
	case IDFiveTuple:
		binary.LittleEndian.PutUint32(b[0:4], uint32(rng.Next()))   // src IP
		binary.LittleEndian.PutUint32(b[4:8], uint32(rng.Next()))   // dst IP
		binary.LittleEndian.PutUint16(b[8:10], uint16(rng.Next()))  // src port
		binary.LittleEndian.PutUint16(b[10:12], uint16(rng.Next())) // dst port
		b[12] = byte(6 + (rng.Next()&1)*11)                         // TCP or UDP
	case IDTwoTuple:
		binary.LittleEndian.PutUint32(b[0:4], uint32(rng.Next()))
		binary.LittleEndian.PutUint32(b[4:8], uint32(rng.Next()))
	case IDWord:
		binary.LittleEndian.PutUint32(b, uint32(rng.Next()))
	}
	return b
}

// Len returns the packet count.
func (t *Trace) Len() int { return len(t.Seq) }

// Key returns the flow identifier of packet p. The returned slice is shared;
// callers must not modify it.
func (t *Trace) Key(p int) []byte { return t.IDs[t.Seq[p]] }

// ForEach calls fn with each packet's flow identifier in order.
func (t *Trace) ForEach(fn func(key []byte)) {
	for _, i := range t.Seq {
		fn(t.IDs[i])
	}
}

// Count returns flow index i's exact size.
func (t *Trace) Count(i int) uint64 { return t.counts[i] }

// Flows returns the flow population size.
func (t *Trace) Flows() int { return len(t.IDs) }

// RebuildCounts recomputes the ground-truth counts from the sequence. It is
// used after deserializing a trace, whose persistent form stores only IDs
// and the packet sequence.
func (t *Trace) RebuildCounts() {
	t.counts = make([]uint64, len(t.IDs))
	for _, i := range t.Seq {
		t.counts[i]++
	}
}

// ExactCounts returns a key-indexed copy of the ground truth.
func (t *Trace) ExactCounts() map[string]uint64 {
	out := make(map[string]uint64, len(t.IDs))
	for i, id := range t.IDs {
		out[string(id)] = t.counts[i]
	}
	return out
}

// TopK returns the indexes of the k largest flows in descending exact size,
// ties broken by index for determinism.
func (t *Trace) TopK(k int) []int {
	idx := make([]int, len(t.counts))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort would be O(kM); use a full sort via the
	// standard library within a local closure.
	sortSlice(idx, func(a, b int) bool {
		if t.counts[a] != t.counts[b] {
			return t.counts[a] > t.counts[b]
		}
		return a < b
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	return idx
}

// zipfAlias samples from p_i ∝ (i+1)^-skew over [0, n) in O(1) per draw
// using Walker's alias method.
type zipfAlias struct {
	n     int
	prob  []float64 // acceptance probability per cell
	alias []int32
	rng   *xrand.Xorshift64Star
}

func newZipfAlias(n int, skew float64, rng *xrand.Xorshift64Star) *zipfAlias {
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 1 / powSkew(float64(i+1), skew)
		total += w[i]
	}
	z := &zipfAlias{
		n:     n,
		prob:  make([]float64, n),
		alias: make([]int32, n),
		rng:   rng,
	}
	// Standard alias-table construction with small/large worklists.
	scaled := w
	for i := range scaled {
		scaled[i] = scaled[i] * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		z.prob[s] = scaled[s]
		z.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		z.prob[i] = 1
	}
	for _, i := range small {
		z.prob[i] = 1
	}
	return z
}

func (z *zipfAlias) draw() int {
	cell := int(z.rng.Uint64n(uint64(z.n)))
	if z.rng.Float64() < z.prob[cell] {
		return cell
	}
	return int(z.alias[cell])
}
