// Package minheap implements a keyed binary min-heap of (flow, size) pairs.
//
// This is the top-k structure the HeavyKeeper paper uses for exposition
// (§III-C): it keeps the k largest flows seen so far, supports membership
// queries, "update size with max", and "expel root, insert new flow". All
// operations are O(log k) except membership, which is O(1) via the key index.
// The paper's implementation swaps in Stream-Summary for O(1) updates; the
// repository provides both behind one interface in internal/topk so the
// difference can be measured.
//
// Like internal/streamsummary, membership is resolved through a flat
// open-addressed table keyed by a 64-bit key hash rather than a Go map, so
// callers that already hold the key's hash (internal/topk reuses
// core.Sketch.KeyHash) probe without re-traversing the key bytes. Each slot
// stores the entry's full hash plus its heap position; sift swaps re-point
// the two affected slots by (hash, old position), which identifies them
// exactly even under full 64-bit hash collisions. Deletion backward-shifts
// the probe chain, so the table stays tombstone-free across any number of
// expel/insert cycles.
//
// The probing machinery (power-of-two sizing, linear probe, backward-shift
// delete, chain-integrity checks) is a deliberate twin of the one in
// internal/streamsummary — the slot payloads differ (heap position here,
// node pointer there) and both sit on per-packet paths, so they are kept
// concrete rather than shared through an abstraction. A fix to either
// copy's probe or shift logic must be mirrored in the other; each package's
// invariant checker and randomized tests police its own copy.
package minheap

import "repro/internal/hash"

// Heap is a keyed min-heap with fixed capacity.
type Heap struct {
	capacity int
	seed     uint64 // hash seed for keys arriving without a precomputed hash
	items    []entry
	table    []slot // open-addressed key index, power-of-two sized
	mask     uint64 // len(table) - 1
}

type entry struct {
	key string
	// hash is the heap's 64-bit hash of key, computed once on admission and
	// reused by every index fix-up.
	hash  uint64
	count uint64
}

// slot maps one entry's hash to its heap position. pos is the items index
// plus one; 0 marks the slot empty, so the zero value is an empty table.
type slot struct {
	h   uint64
	pos int32
}

// New returns an empty heap holding at most capacity entries, hashing keys
// under a fixed default seed. It panics if capacity < 1.
func New(capacity int) *Heap { return NewSeeded(capacity, 0) }

// NewSeeded is New with an explicit key-hash seed; an embedding sketch that
// feeds the *Hashed entry points must share its key-hash seed here so
// precomputed and internal hashes agree (internal/topk passes
// core.Sketch.KeySeed).
func NewSeeded(capacity int, seed uint64) *Heap {
	if capacity < 1 {
		panic("minheap: capacity must be >= 1")
	}
	size := 8
	for size < 2*capacity {
		size <<= 1
	}
	return &Heap{
		capacity: capacity,
		seed:     seed,
		items:    make([]entry, 0, capacity),
		table:    make([]slot, size),
		mask:     uint64(size - 1),
	}
}

// Hash returns the heap's 64-bit hash of key: the value the *Hashed entry
// points expect for that key.
func (h *Heap) Hash(key []byte) uint64 { return hash.Sum64(h.seed, key) }

// hashString is Hash for a string key; the []byte view does not escape into
// the hash, so the conversion stays on the stack.
func (h *Heap) hashString(key string) uint64 { return hash.Sum64(h.seed, []byte(key)) }

// Len returns the number of entries.
func (h *Heap) Len() int { return len(h.items) }

// Capacity returns the maximum number of entries.
func (h *Heap) Capacity() int { return h.capacity }

// Full reports whether the heap is at capacity.
func (h *Heap) Full() bool { return len(h.items) >= h.capacity }

// find returns the heap position of key (whose hash is hk), or -1. Probing
// stops at the first empty slot; backward-shift deletion keeps chains
// gapless.
func (h *Heap) find(hk uint64, key string) int {
	i := hk & h.mask
	for {
		sl := h.table[i]
		if sl.pos == 0 {
			return -1
		}
		if sl.h == hk {
			if p := int(sl.pos - 1); h.items[p].key == key {
				return p
			}
		}
		i = (i + 1) & h.mask
	}
}

// findBytes is find for a byte-slice key; the comparison compiles
// allocation-free.
func (h *Heap) findBytes(hk uint64, key []byte) int {
	i := hk & h.mask
	for {
		sl := h.table[i]
		if sl.pos == 0 {
			return -1
		}
		if sl.h == hk {
			if p := int(sl.pos - 1); h.items[p].key == string(key) {
				return p
			}
		}
		i = (i + 1) & h.mask
	}
}

// slotOf returns the table index of the slot holding (hk, pos). The pair is
// unique — two live entries can share a 64-bit hash, but not a heap
// position — so no key bytes are consulted.
func (h *Heap) slotOf(hk uint64, pos int) uint64 {
	i := hk & h.mask
	want := int32(pos + 1)
	for {
		if sl := h.table[i]; sl.h == hk && sl.pos == want {
			return i
		}
		i = (i + 1) & h.mask
	}
}

// indexInsert records that the entry with hash hk sits at heap position pos.
func (h *Heap) indexInsert(hk uint64, pos int) {
	i := hk & h.mask
	for h.table[i].pos != 0 {
		i = (i + 1) & h.mask
	}
	h.table[i] = slot{h: hk, pos: int32(pos + 1)}
}

// indexDelete removes the slot for (hk, pos) and backward-shifts the tail of
// its probe chain (same tombstone-free scheme as streamsummary).
func (h *Heap) indexDelete(hk uint64, pos int) {
	i := h.slotOf(hk, pos)
	for {
		h.table[i] = slot{}
		j := i
		for {
			j = (j + 1) & h.mask
			sl := h.table[j]
			if sl.pos == 0 {
				return
			}
			home := sl.h & h.mask
			if (j-home)&h.mask >= (j-i)&h.mask {
				h.table[i] = sl
				i = j
				break
			}
		}
	}
}

// Contains reports whether key is in the heap.
func (h *Heap) Contains(key string) bool {
	return h.find(h.hashString(key), key) >= 0
}

// ContainsKey is Contains for a byte-slice key, hashing it here.
func (h *Heap) ContainsKey(key []byte) bool {
	return h.findBytes(h.Hash(key), key) >= 0
}

// ContainsHashed reports whether key (whose precomputed hash is hk) is in
// the heap without re-hashing the key bytes.
func (h *Heap) ContainsHashed(key []byte, hk uint64) bool {
	return h.findBytes(hk, key) >= 0
}

// UpdateMaxKey sets key's size to max(current, count); absent keys are
// ignored.
func (h *Heap) UpdateMaxKey(key []byte, count uint64) {
	h.UpdateMaxHashed(key, h.Hash(key), count)
}

// UpdateMaxHashed is UpdateMaxKey with a precomputed key hash; absent keys
// are ignored.
func (h *Heap) UpdateMaxHashed(key []byte, hk uint64, count uint64) {
	i := h.findBytes(hk, key)
	if i < 0 {
		return
	}
	if count > h.items[i].count {
		h.items[i].count = count
		h.siftDown(i)
	}
}

// InsertKey is Insert for a byte-slice key; the string is materialized here,
// on admission, rather than once per packet.
func (h *Heap) InsertKey(key []byte, count uint64) {
	h.InsertHashed(key, h.Hash(key), count)
}

// InsertHashed is Insert with a precomputed key hash: it admits key with
// size count, evicting the root first when full. Inserting an existing key
// panics.
func (h *Heap) InsertHashed(key []byte, hk uint64, count uint64) (evictedKey string, evictedCount uint64, evicted bool) {
	if h.findBytes(hk, key) >= 0 {
		panic("minheap: Insert of existing key " + string(key))
	}
	return h.insertNew(entry{key: string(key), hash: hk, count: count})
}

// Count returns key's recorded size.
func (h *Heap) Count(key string) (uint64, bool) {
	i := h.find(h.hashString(key), key)
	if i < 0 {
		return 0, false
	}
	return h.items[i].count, true
}

// MinCount returns the smallest recorded size (the paper's n_min), or 0 when
// the heap is empty.
func (h *Heap) MinCount() uint64 {
	if len(h.items) == 0 {
		return 0
	}
	return h.items[0].count
}

// Min returns the key and size at the root. ok is false when empty.
func (h *Heap) Min() (key string, count uint64, ok bool) {
	if len(h.items) == 0 {
		return "", 0, false
	}
	return h.items[0].key, h.items[0].count, true
}

// Insert adds key with size count. If the heap is full it evicts the root
// first and returns it with evicted=true. Inserting an existing key panics;
// use Update.
func (h *Heap) Insert(key string, count uint64) (evictedKey string, evictedCount uint64, evicted bool) {
	hk := h.hashString(key)
	if h.find(hk, key) >= 0 {
		panic("minheap: Insert of existing key " + key)
	}
	return h.insertNew(entry{key: key, hash: hk, count: count})
}

// insertNew admits an already-hashed entry, evicting the root when full.
func (h *Heap) insertNew(e entry) (evictedKey string, evictedCount uint64, evicted bool) {
	if h.Full() {
		root := h.items[0]
		h.indexDelete(root.hash, 0)
		h.items[0] = e
		h.indexInsert(e.hash, 0)
		h.siftDown(0)
		return root.key, root.count, true
	}
	h.items = append(h.items, e)
	i := len(h.items) - 1
	h.indexInsert(e.hash, i)
	h.siftUp(i)
	return "", 0, false
}

// Update sets key's size to count (any direction) and restores heap order.
// It panics if key is absent.
func (h *Heap) Update(key string, count uint64) {
	i := h.find(h.hashString(key), key)
	if i < 0 {
		panic("minheap: Update of absent key " + key)
	}
	old := h.items[i].count
	h.items[i].count = count
	if count > old {
		h.siftDown(i)
	} else if count < old {
		h.siftUp(i)
	}
}

// UpdateMax sets key's size to max(current, count); this is the §III-C
// min-heap update rule. It panics if key is absent.
func (h *Heap) UpdateMax(key string, count uint64) {
	i := h.find(h.hashString(key), key)
	if i < 0 {
		panic("minheap: UpdateMax of absent key " + key)
	}
	if count > h.items[i].count {
		h.items[i].count = count
		h.siftDown(i)
	}
}

// Remove deletes key and reports whether it was present.
func (h *Heap) Remove(key string) bool {
	i := h.find(h.hashString(key), key)
	if i < 0 {
		return false
	}
	last := len(h.items) - 1
	h.swap(i, last)
	h.indexDelete(h.items[last].hash, last)
	h.items = h.items[:last]
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
	return true
}

// Entry is a (key, count) pair returned by Items.
type Entry struct {
	Key   string
	Count uint64
}

// Items returns all entries in descending count order.
func (h *Heap) Items() []Entry {
	out := make([]Entry, len(h.items))
	for i, e := range h.items {
		out[i] = Entry{Key: e.key, Count: e.count}
	}
	// Simple insertion-free sort: heaps are small (k entries), use stdlib.
	sortEntriesDesc(out)
	return out
}

// Top returns the k largest entries in descending order.
func (h *Heap) Top(k int) []Entry {
	items := h.Items()
	if len(items) > k {
		items = items[:k]
	}
	return items
}

func sortEntriesDesc(es []Entry) {
	// Shell sort keeps the package dependency-free and is plenty for k ≤ a
	// few thousand entries; called only at query time, never per packet.
	for gap := len(es) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(es); i++ {
			e := es[i]
			j := i
			for ; j >= gap && less(es[j-gap], e); j -= gap {
				es[j] = es[j-gap]
			}
			es[j] = e
		}
	}
}

// less orders descending by count, ascending by key for determinism.
func less(a, b Entry) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Key > b.Key
}

// swap exchanges heap positions i and j, re-pointing their index slots
// first: each slot is located by its (hash, pre-swap position) pair, which
// stays unambiguous even if the two keys collide on the full 64-bit hash.
func (h *Heap) swap(i, j int) {
	if i == j {
		return
	}
	si := h.slotOf(h.items[i].hash, i)
	sj := h.slotOf(h.items[j].hash, j)
	h.table[si].pos = int32(j + 1)
	h.table[sj].pos = int32(i + 1)
	h.items[i], h.items[j] = h.items[j], h.items[i]
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].count <= h.items[i].count {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.items)
	for {
		smallest := i
		if l := 2*i + 1; l < n && h.items[l].count < h.items[smallest].count {
			smallest = l
		}
		if r := 2*i + 2; r < n && h.items[r].count < h.items[smallest].count {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// checkInvariants panics if the heap property or the key index is violated.
func (h *Heap) checkInvariants() {
	for i := range h.items {
		if l := 2*i + 1; l < len(h.items) && h.items[l].count < h.items[i].count {
			panic("minheap: heap property violated (left child)")
		}
		if r := 2*i + 2; r < len(h.items) && h.items[r].count < h.items[i].count {
			panic("minheap: heap property violated (right child)")
		}
		e := h.items[i]
		if e.hash != h.hashString(e.key) {
			panic("minheap: stored hash mismatch for " + e.key)
		}
		if h.find(e.hash, e.key) != i {
			panic("minheap: index out of sync for " + e.key)
		}
	}
	occupied := 0
	for j, sl := range h.table {
		if sl.pos == 0 {
			continue
		}
		occupied++
		p := int(sl.pos - 1)
		if p >= len(h.items) {
			panic("minheap: index slot points past the heap")
		}
		if h.items[p].hash != sl.h {
			panic("minheap: slot hash disagrees with entry hash for " + h.items[p].key)
		}
		for i := sl.h & h.mask; i != uint64(j); i = (i + 1) & h.mask {
			if h.table[i].pos == 0 {
				panic("minheap: probe chain split by empty slot for " + h.items[p].key)
			}
		}
	}
	if occupied != len(h.items) {
		panic("minheap: index size mismatch")
	}
}

// BytesPerEntry estimates per-entry memory for the harness's byte budgeting,
// mirroring streamsummary.BytesPerEntry.
const BytesPerEntry = 32
