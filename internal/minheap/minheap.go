// Package minheap implements a keyed binary min-heap of (flow, size) pairs.
//
// This is the top-k structure the HeavyKeeper paper uses for exposition
// (§III-C): it keeps the k largest flows seen so far, supports membership
// queries, "update size with max", and "expel root, insert new flow". All
// operations are O(log k) except membership, which is O(1) via an index map.
// The paper's implementation swaps in Stream-Summary for O(1) updates; the
// repository provides both behind one interface in internal/topk so the
// difference can be measured.
package minheap

// Heap is a keyed min-heap with fixed capacity.
type Heap struct {
	capacity int
	items    []entry
	index    map[string]int // key -> position in items
}

type entry struct {
	key   string
	count uint64
}

// New returns an empty heap holding at most capacity entries. It panics if
// capacity < 1.
func New(capacity int) *Heap {
	if capacity < 1 {
		panic("minheap: capacity must be >= 1")
	}
	return &Heap{
		capacity: capacity,
		items:    make([]entry, 0, capacity),
		index:    make(map[string]int, capacity),
	}
}

// Len returns the number of entries.
func (h *Heap) Len() int { return len(h.items) }

// Capacity returns the maximum number of entries.
func (h *Heap) Capacity() int { return h.capacity }

// Full reports whether the heap is at capacity.
func (h *Heap) Full() bool { return len(h.items) >= h.capacity }

// Contains reports whether key is in the heap.
func (h *Heap) Contains(key string) bool {
	_, ok := h.index[key]
	return ok
}

// ContainsKey is Contains for a byte-slice key; the string([]byte) map index
// expression compiles to an allocation-free lookup.
func (h *Heap) ContainsKey(key []byte) bool {
	_, ok := h.index[string(key)]
	return ok
}

// UpdateMaxKey sets key's size to max(current, count) in a single
// allocation-free lookup; absent keys are ignored.
func (h *Heap) UpdateMaxKey(key []byte, count uint64) {
	i, ok := h.index[string(key)]
	if !ok {
		return
	}
	if count > h.items[i].count {
		h.items[i].count = count
		h.siftDown(i)
	}
}

// InsertKey is Insert for a byte-slice key; the string is materialized here,
// on admission, rather than once per packet.
func (h *Heap) InsertKey(key []byte, count uint64) {
	h.Insert(string(key), count)
}

// Count returns key's recorded size.
func (h *Heap) Count(key string) (uint64, bool) {
	i, ok := h.index[key]
	if !ok {
		return 0, false
	}
	return h.items[i].count, true
}

// MinCount returns the smallest recorded size (the paper's n_min), or 0 when
// the heap is empty.
func (h *Heap) MinCount() uint64 {
	if len(h.items) == 0 {
		return 0
	}
	return h.items[0].count
}

// Min returns the key and size at the root. ok is false when empty.
func (h *Heap) Min() (key string, count uint64, ok bool) {
	if len(h.items) == 0 {
		return "", 0, false
	}
	return h.items[0].key, h.items[0].count, true
}

// Insert adds key with size count. If the heap is full it evicts the root
// first and returns it with evicted=true. Inserting an existing key panics;
// use Update.
func (h *Heap) Insert(key string, count uint64) (evictedKey string, evictedCount uint64, evicted bool) {
	if _, ok := h.index[key]; ok {
		panic("minheap: Insert of existing key " + key)
	}
	if h.Full() {
		evictedKey, evictedCount = h.items[0].key, h.items[0].count
		evicted = true
		delete(h.index, evictedKey)
		h.items[0] = entry{key: key, count: count}
		h.index[key] = 0
		h.siftDown(0)
		return evictedKey, evictedCount, evicted
	}
	h.items = append(h.items, entry{key: key, count: count})
	i := len(h.items) - 1
	h.index[key] = i
	h.siftUp(i)
	return "", 0, false
}

// Update sets key's size to count (any direction) and restores heap order.
// It panics if key is absent.
func (h *Heap) Update(key string, count uint64) {
	i, ok := h.index[key]
	if !ok {
		panic("minheap: Update of absent key " + key)
	}
	old := h.items[i].count
	h.items[i].count = count
	if count > old {
		h.siftDown(i)
	} else if count < old {
		h.siftUp(i)
	}
}

// UpdateMax sets key's size to max(current, count); this is the §III-C
// min-heap update rule. It panics if key is absent.
func (h *Heap) UpdateMax(key string, count uint64) {
	i, ok := h.index[key]
	if !ok {
		panic("minheap: UpdateMax of absent key " + key)
	}
	if count > h.items[i].count {
		h.items[i].count = count
		h.siftDown(i)
	}
}

// Remove deletes key and reports whether it was present.
func (h *Heap) Remove(key string) bool {
	i, ok := h.index[key]
	if !ok {
		return false
	}
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	delete(h.index, key)
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
	return true
}

// Entry is a (key, count) pair returned by Items.
type Entry struct {
	Key   string
	Count uint64
}

// Items returns all entries in descending count order.
func (h *Heap) Items() []Entry {
	out := make([]Entry, len(h.items))
	for i, e := range h.items {
		out[i] = Entry{Key: e.key, Count: e.count}
	}
	// Simple insertion-free sort: heaps are small (k entries), use stdlib.
	sortEntriesDesc(out)
	return out
}

// Top returns the k largest entries in descending order.
func (h *Heap) Top(k int) []Entry {
	items := h.Items()
	if len(items) > k {
		items = items[:k]
	}
	return items
}

func sortEntriesDesc(es []Entry) {
	// Shell sort keeps the package dependency-free and is plenty for k ≤ a
	// few thousand entries; called only at query time, never per packet.
	for gap := len(es) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(es); i++ {
			e := es[i]
			j := i
			for ; j >= gap && less(es[j-gap], e); j -= gap {
				es[j] = es[j-gap]
			}
			es[j] = e
		}
	}
}

// less orders descending by count, ascending by key for determinism.
func less(a, b Entry) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Key > b.Key
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.index[h.items[i].key] = i
	h.index[h.items[j].key] = j
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].count <= h.items[i].count {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.items)
	for {
		smallest := i
		if l := 2*i + 1; l < n && h.items[l].count < h.items[smallest].count {
			smallest = l
		}
		if r := 2*i + 2; r < n && h.items[r].count < h.items[smallest].count {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// checkInvariants panics if the heap property or index map is violated.
func (h *Heap) checkInvariants() {
	for i := range h.items {
		if l := 2*i + 1; l < len(h.items) && h.items[l].count < h.items[i].count {
			panic("minheap: heap property violated (left child)")
		}
		if r := 2*i + 2; r < len(h.items) && h.items[r].count < h.items[i].count {
			panic("minheap: heap property violated (right child)")
		}
		if h.index[h.items[i].key] != i {
			panic("minheap: index map out of sync for " + h.items[i].key)
		}
	}
	if len(h.index) != len(h.items) {
		panic("minheap: index size mismatch")
	}
}

// BytesPerEntry estimates per-entry memory for the harness's byte budgeting,
// mirroring streamsummary.BytesPerEntry.
const BytesPerEntry = 32
