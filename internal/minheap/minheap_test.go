package minheap

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/xrand"
)

func (h *Heap) mustCheck(t *testing.T) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("invariant violation: %v", r)
		}
	}()
	h.checkInvariants()
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestInsertBelowCapacity(t *testing.T) {
	h := New(4)
	for i, c := range []uint64{5, 3, 8, 1} {
		if _, _, ev := h.Insert(fmt.Sprintf("k%d", i), c); ev {
			t.Fatalf("unexpected eviction inserting below capacity")
		}
	}
	h.mustCheck(t)
	if h.MinCount() != 1 {
		t.Errorf("MinCount = %d want 1", h.MinCount())
	}
	if !h.Full() {
		t.Error("heap should be full")
	}
}

func TestInsertEvictsRootWhenFull(t *testing.T) {
	h := New(2)
	h.Insert("a", 10)
	h.Insert("b", 20)
	k, c, ev := h.Insert("c", 15)
	if !ev || k != "a" || c != 10 {
		t.Fatalf("Insert evicted %q,%d,%v want a,10,true", k, c, ev)
	}
	if h.Contains("a") {
		t.Error("evicted key still present")
	}
	if h.MinCount() != 15 {
		t.Errorf("MinCount = %d want 15", h.MinCount())
	}
	h.mustCheck(t)
}

func TestInsertDuplicatePanics(t *testing.T) {
	h := New(2)
	h.Insert("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Insert did not panic")
		}
	}()
	h.Insert("a", 2)
}

func TestUpdateBothDirections(t *testing.T) {
	h := New(4)
	h.Insert("a", 10)
	h.Insert("b", 20)
	h.Insert("c", 30)
	h.Update("c", 5)
	if h.MinCount() != 5 {
		t.Errorf("MinCount after decrease = %d want 5", h.MinCount())
	}
	h.Update("c", 40)
	if h.MinCount() != 10 {
		t.Errorf("MinCount after increase = %d want 10", h.MinCount())
	}
	h.mustCheck(t)
}

func TestUpdateMaxOnlyIncreases(t *testing.T) {
	h := New(2)
	h.Insert("a", 10)
	h.UpdateMax("a", 5)
	if c, _ := h.Count("a"); c != 10 {
		t.Errorf("UpdateMax decreased count to %d", c)
	}
	h.UpdateMax("a", 50)
	if c, _ := h.Count("a"); c != 50 {
		t.Errorf("UpdateMax did not increase count, got %d", c)
	}
	h.mustCheck(t)
}

func TestUpdateAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Update of absent key did not panic")
		}
	}()
	New(2).Update("ghost", 1)
}

func TestRemove(t *testing.T) {
	h := New(8)
	for i := 0; i < 8; i++ {
		h.Insert(fmt.Sprintf("k%d", i), uint64(i*3+1))
	}
	if !h.Remove("k3") {
		t.Fatal("Remove(k3) = false")
	}
	if h.Remove("k3") {
		t.Fatal("second Remove(k3) = true")
	}
	if h.Len() != 7 {
		t.Errorf("Len = %d want 7", h.Len())
	}
	h.mustCheck(t)
	// Remove the root.
	if !h.Remove("k0") {
		t.Fatal("Remove(k0) = false")
	}
	h.mustCheck(t)
}

func TestMinOnEmpty(t *testing.T) {
	h := New(2)
	if _, _, ok := h.Min(); ok {
		t.Error("Min on empty heap reported ok")
	}
	if h.MinCount() != 0 {
		t.Errorf("MinCount on empty = %d want 0", h.MinCount())
	}
}

func TestItemsDescendingAndComplete(t *testing.T) {
	h := New(16)
	want := map[string]uint64{}
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("k%d", i)
		c := uint64((i * 37) % 11)
		h.Insert(k, c)
		want[k] = c
	}
	items := h.Items()
	if len(items) != 16 {
		t.Fatalf("Items len = %d want 16", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].Count > items[i-1].Count {
			t.Fatalf("Items not descending at %d", i)
		}
	}
	for _, e := range items {
		if want[e.Key] != e.Count {
			t.Errorf("item %s count %d want %d", e.Key, e.Count, want[e.Key])
		}
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	h := New(4)
	h.Insert("b", 5)
	h.Insert("a", 5)
	h.Insert("c", 5)
	items := h.Items()
	if items[0].Key != "a" || items[1].Key != "b" || items[2].Key != "c" {
		t.Errorf("ties not broken by key: %v", items)
	}
}

func TestTopKMatchesSortedTruth(t *testing.T) {
	// Insert a stream with evictions; the heap must end up holding exactly
	// the capacity largest values when values arrive in random order and we
	// only insert when count > min (the top-k usage pattern).
	const cap = 10
	h := New(cap)
	rng := xrand.NewXorshift64Star(5)
	var all []uint64
	for i := 0; i < 500; i++ {
		c := rng.Uint64n(100000)
		all = append(all, c)
		key := fmt.Sprintf("k%d", i)
		if !h.Full() {
			h.Insert(key, c)
		} else if c > h.MinCount() {
			h.Insert(key, c)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	items := h.Items()
	for i := 0; i < cap; i++ {
		if items[i].Count != all[i] {
			t.Fatalf("top-%d count = %d want %d", i, items[i].Count, all[i])
		}
	}
}

func TestRandomizedInvariants(t *testing.T) {
	rng := xrand.NewXorshift64Star(99)
	h := New(32)
	live := map[string]bool{}
	for step := 0; step < 20000; step++ {
		key := fmt.Sprintf("k%d", rng.Uint64n(64))
		switch rng.Uint64n(4) {
		case 0:
			if !live[key] {
				ek, _, ev := h.Insert(key, rng.Uint64n(1000))
				live[key] = true
				if ev {
					delete(live, ek)
				}
			}
		case 1:
			if live[key] {
				h.Update(key, rng.Uint64n(1000))
			}
		case 2:
			if live[key] {
				h.UpdateMax(key, rng.Uint64n(1000))
			}
		case 3:
			if h.Remove(key) {
				delete(live, key)
			}
		}
		if h.Len() != len(live) {
			t.Fatalf("step %d: Len=%d live=%d", step, h.Len(), len(live))
		}
		if step%500 == 0 {
			h.mustCheck(t)
		}
	}
	h.mustCheck(t)
}

func BenchmarkInsertEvict(b *testing.B) {
	h := New(100)
	for i := 0; i < 100; i++ {
		h.Insert(fmt.Sprintf("k%d", i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(fmt.Sprintf("n%d", i), uint64(i%1000)+100)
	}
}

func BenchmarkUpdateMax(b *testing.B) {
	h := New(100)
	for i := 0; i < 100; i++ {
		h.Insert(fmt.Sprintf("k%d", i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.UpdateMax("k50", uint64(i%200))
	}
}

// TestHashedOpsMatchStringOps drives two heaps with the same op stream — one
// through the string/byte entry points (which hash internally), one through
// the *Hashed entry points with precomputed hashes — and requires identical
// state throughout. This pins that the open-addressed index treats a
// caller-supplied hash exactly like its own, including across the
// evict/insert and sift churn that re-points index slots.
func TestHashedOpsMatchStringOps(t *testing.T) {
	const cap = 16
	a := New(cap)
	b := New(cap)
	rng := xrand.NewXorshift64Star(17)
	for step := 0; step < 30000; step++ {
		key := fmt.Sprintf("k%d", rng.Uint64n(48))
		kb := []byte(key)
		h := b.Hash(kb)
		switch rng.Uint64n(4) {
		case 0:
			if a.ContainsKey(kb) != b.ContainsHashed(kb, h) {
				t.Fatalf("step %d: membership diverged for %s", step, key)
			}
		case 1:
			if !a.Contains(key) {
				a.InsertKey(kb, uint64(step%97)+1)
				b.InsertHashed(kb, h, uint64(step%97)+1)
			}
		case 2:
			v := rng.Uint64n(200) + 1
			a.UpdateMaxKey(kb, v)
			b.UpdateMaxHashed(kb, h, v)
		default:
			if a.Remove(key) != b.Remove(key) {
				t.Fatalf("step %d: Remove diverged for %s", step, key)
			}
		}
		if a.Len() != b.Len() || a.MinCount() != b.MinCount() {
			t.Fatalf("step %d: state diverged: Len %d/%d MinCount %d/%d",
				step, a.Len(), b.Len(), a.MinCount(), b.MinCount())
		}
		if step%1000 == 0 {
			a.mustCheck(t)
			b.mustCheck(t)
			ai, bi := a.Items(), b.Items()
			for i := range ai {
				if ai[i] != bi[i] {
					t.Fatalf("step %d: Items[%d] diverged: %+v vs %+v", step, i, ai[i], bi[i])
				}
			}
		}
	}
	a.mustCheck(t)
	b.mustCheck(t)
}
