// Package streamtest provides deterministic skewed packet streams and
// accuracy helpers shared by the test suites of the sketch packages. It is
// test support code, kept out of _test files so every baseline package can
// reuse it without duplication.
package streamtest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Stream is a generated packet stream with ground truth.
type Stream struct {
	Packets [][]byte
	Exact   map[string]uint64
}

// Zipf generates npkts packets over nflows flows with Zipf-like weights
// (flow i has weight 1/(i+1)^alpha) in deterministic shuffled order.
func Zipf(npkts, nflows int, alpha float64, seed uint64) *Stream {
	rng := xrand.NewXorshift64Star(seed)
	cdf := make([]float64, nflows)
	total := 0.0
	for i := range cdf {
		total += 1.0 / powf(float64(i+1), alpha)
		cdf[i] = total
	}
	s := &Stream{
		Packets: make([][]byte, npkts),
		Exact:   make(map[string]uint64),
	}
	for p := 0; p < npkts; p++ {
		x := rng.Float64() * total
		i := sort.SearchFloat64s(cdf, x)
		if i >= nflows {
			i = nflows - 1
		}
		k := []byte(fmt.Sprintf("flow-%d", i))
		s.Packets[p] = k
		s.Exact[string(k)]++
	}
	return s
}

func powf(x, a float64) float64 {
	if a == 1 {
		return x
	}
	return math.Pow(x, a)
}

// TrueTop returns the key set of the k largest flows by exact count, with
// deterministic tie-breaking.
func (s *Stream) TrueTop(k int) map[string]bool {
	type kv struct {
		k string
		v uint64
	}
	all := make([]kv, 0, len(s.Exact))
	for k, v := range s.Exact {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	out := make(map[string]bool, k)
	for i := 0; i < k && i < len(all); i++ {
		out[all[i].k] = true
	}
	return out
}

// Reported is any algorithm's top-k output in (key, count) form.
type Reported struct {
	Key   string
	Count uint64
}

// Precision returns |reported ∩ trueTop| / k, the paper's §VI-B metric.
func Precision(reported []Reported, trueTop map[string]bool) float64 {
	if len(trueTop) == 0 {
		return 0
	}
	hit := 0
	for _, e := range reported {
		if trueTop[e.Key] {
			hit++
		}
	}
	return float64(hit) / float64(len(trueTop))
}

// ARE returns the average relative error of reported counts against truth.
func (s *Stream) ARE(reported []Reported) float64 {
	if len(reported) == 0 {
		return 0
	}
	var sum float64
	for _, e := range reported {
		truth := float64(s.Exact[e.Key])
		if truth == 0 {
			truth = 1 // a reported flow that never occurred: full error vs 1
		}
		d := float64(e.Count) - truth
		if d < 0 {
			d = -d
		}
		sum += d / truth
	}
	return sum / float64(len(reported))
}
