package elastic

import (
	"fmt"
	"testing"

	"repro/internal/streamtest"
)

func key(i int) []byte { return []byte(fmt.Sprintf("flow-%d", i)) }

func TestValidation(t *testing.T) {
	for i, cfg := range []Config{
		{HeavyBuckets: 0, LightCounters: 10},
		{HeavyBuckets: 10, LightCounters: 0},
		{HeavyBuckets: 10, LightCounters: 10, Lambda: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestExactWhenAlone(t *testing.T) {
	s := MustNew(Config{HeavyBuckets: 64, LightCounters: 64, Seed: 1})
	for i := 0; i < 1000; i++ {
		s.Insert(key(5))
	}
	if got := s.Estimate(key(5)); got != 1000 {
		t.Errorf("estimate = %d want 1000", got)
	}
}

func TestVotingEvictsWeakResident(t *testing.T) {
	// One bucket: a mouse takes it, then an elephant out-votes it λ:1.
	s := MustNew(Config{HeavyBuckets: 1, LightCounters: 16, Lambda: 8, Seed: 2})
	s.Insert(key(1)) // mouse resident, vote+ = 1
	for i := 0; i < 100; i++ {
		s.Insert(key(2))
	}
	if s.heavy[0].key != string(key(2)) {
		t.Errorf("heavy bucket still held by %q, want takeover by flow-2", s.heavy[0].key)
	}
	est := s.Estimate(key(2))
	if est < 80 || est > 100 {
		t.Errorf("elephant estimate = %d, want close to 100", est)
	}
	// The mouse's single packet lives on in the light part.
	if got := s.Estimate(key(1)); got == 0 {
		t.Error("evicted mouse lost entirely; light part should hold it")
	}
}

func TestLightPartCatchesMice(t *testing.T) {
	s := MustNew(Config{HeavyBuckets: 1, LightCounters: 256, Seed: 3})
	// Resident elephant plus many distinct mice.
	for i := 0; i < 500; i++ {
		s.Insert(key(0))
	}
	for i := 1; i <= 50; i++ {
		s.Insert(key(i))
	}
	miceSeen := 0
	for i := 1; i <= 50; i++ {
		if s.Estimate(key(i)) > 0 {
			miceSeen++
		}
	}
	if miceSeen < 40 {
		t.Errorf("only %d/50 mice visible in light part", miceSeen)
	}
}

func TestFindsTopK(t *testing.T) {
	st := streamtest.Zipf(150000, 5000, 1.0, 13)
	s := MustNew(Config{HeavyBuckets: 1024, LightCounters: 4096, Seed: 7})
	for _, p := range st.Packets {
		s.Insert(p)
	}
	var rep []streamtest.Reported
	for _, e := range s.Top(20) {
		rep = append(rep, streamtest.Reported{Key: e.Key, Count: e.Count})
	}
	if p := streamtest.Precision(rep, st.TrueTop(20)); p < 0.8 {
		t.Errorf("precision = %v want >= 0.8", p)
	}
}

func TestFromBytesSplit(t *testing.T) {
	s, err := FromBytes(17000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.HeavyBuckets < 600 || s.cfg.HeavyBuckets > 800 {
		t.Errorf("heavy buckets = %d, want ~750 (75%% of 17kB / 17B)", s.cfg.HeavyBuckets)
	}
	if got := s.MemoryBytes(); got > 17000+BucketBytes {
		t.Errorf("MemoryBytes = %d exceeds budget", got)
	}
}

func TestTopDescending(t *testing.T) {
	st := streamtest.Zipf(50000, 2000, 1.2, 9)
	s := MustNew(Config{HeavyBuckets: 256, LightCounters: 1024, Seed: 5})
	for _, p := range st.Packets {
		s.Insert(p)
	}
	top := s.Top(50)
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("Top not descending at %d", i)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	s := MustNew(Config{HeavyBuckets: 4096, LightCounters: 16384, Seed: 1})
	st := streamtest.Zipf(1<<16, 10000, 1.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(st.Packets[i&(len(st.Packets)-1)])
	}
}
