// Package elastic implements the Elastic sketch (Yang et al., "Elastic
// Sketch: Adaptive and Fast Network-wide Measurements", SIGCOMM 2018), one
// of the recent-work baselines in the HeavyKeeper paper's §VI-E comparison.
//
// The Elastic sketch splits memory into a heavy part and a light part. The
// heavy part is a hash table of buckets, each holding one candidate heavy
// flow with a positive vote (its count) and a negative vote (count of other
// flows hashed there). When negative/positive exceeds the eviction threshold
// λ, the resident flow is evicted into the light part — a one-array
// count-min of small counters — and the challenger takes the bucket. The
// estimate of a heavy-part flow whose bucket was ever recycled adds the
// light-part estimate back in.
package elastic

import (
	"fmt"
	"sort"

	"repro/internal/hash"
)

// Config parameterizes an Elastic sketch.
type Config struct {
	// HeavyBuckets is the number of heavy-part buckets. Required.
	HeavyBuckets int
	// LightCounters is the number of light-part 8-bit counters. Required.
	LightCounters int
	// Lambda is the eviction threshold (vote-/vote+ ratio). Default 8, the
	// Elastic paper's recommendation.
	Lambda int
	// Seed makes hashing deterministic.
	Seed uint64
}

func (c *Config) setDefaults() error {
	if c.HeavyBuckets < 1 {
		return fmt.Errorf("elastic: HeavyBuckets = %d, must be >= 1", c.HeavyBuckets)
	}
	if c.LightCounters < 1 {
		return fmt.Errorf("elastic: LightCounters = %d, must be >= 1", c.LightCounters)
	}
	if c.Lambda == 0 {
		c.Lambda = 8
	}
	if c.Lambda < 1 {
		return fmt.Errorf("elastic: Lambda = %d, must be >= 1", c.Lambda)
	}
	return nil
}

// heavyBucket holds one candidate heavy flow.
type heavyBucket struct {
	key     string
	votePos uint32
	voteNeg uint32
	ejected bool // true if this bucket ever evicted a flow to the light part
}

// Sketch is an Elastic sketch.
type Sketch struct {
	cfg    Config
	heavy  []heavyBucket
	light  []uint8
	family *hash.Family
}

// BucketBytes is the logical size of one heavy bucket (key 8B truncated id +
// two 32-bit votes + flag), used for byte budgeting; the light part costs
// one byte per counter.
const BucketBytes = 17

// New returns an Elastic sketch for the given configuration.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return &Sketch{
		cfg:    cfg,
		heavy:  make([]heavyBucket, cfg.HeavyBuckets),
		light:  make([]uint8, cfg.LightCounters),
		family: hash.NewFamily(cfg.Seed, 2), // [0] heavy, [1] light
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Sketch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// FromBytes builds a sketch from a byte budget with the Elastic paper's
// recommended 75%/25% heavy/light split.
func FromBytes(budget int, seed uint64) (*Sketch, error) {
	heavyBytes := budget * 3 / 4
	hb := heavyBytes / BucketBytes
	if hb < 1 {
		hb = 1
	}
	lc := budget - heavyBytes
	if lc < 1 {
		lc = 1
	}
	return New(Config{HeavyBuckets: hb, LightCounters: lc, Seed: seed})
}

// lightInsert adds v to key's light-part counter with saturation.
func (s *Sketch) lightInsert(key string, v uint32) {
	c := &s.light[s.family.Index(1, []byte(key), s.cfg.LightCounters)]
	nv := uint32(*c) + v
	if nv > 255 {
		nv = 255
	}
	*c = uint8(nv)
}

// lightEstimate returns key's light-part counter.
func (s *Sketch) lightEstimate(key string) uint32 {
	return uint32(s.light[s.family.Index(1, []byte(key), s.cfg.LightCounters)])
}

// Insert records one packet of flow key.
func (s *Sketch) Insert(key []byte) {
	b := &s.heavy[s.family.Index(0, key, s.cfg.HeavyBuckets)]
	ks := string(key)
	switch {
	case b.votePos == 0:
		*b = heavyBucket{key: ks, votePos: 1}
	case b.key == ks:
		b.votePos++
	default:
		b.voteNeg++
		if int(b.voteNeg) >= s.cfg.Lambda*int(b.votePos) {
			// Evict the resident to the light part; challenger takes over.
			s.lightInsert(b.key, b.votePos)
			*b = heavyBucket{key: ks, votePos: 1, voteNeg: 0, ejected: true}
		} else {
			// The challenger's packet is recorded in the light part.
			s.lightInsert(ks, 1)
		}
	}
}

// Estimate returns the sketch's size estimate for key.
func (s *Sketch) Estimate(key []byte) uint64 {
	b := &s.heavy[s.family.Index(0, key, s.cfg.HeavyBuckets)]
	ks := string(key)
	if b.votePos > 0 && b.key == ks {
		est := uint64(b.votePos)
		if b.ejected {
			est += uint64(s.lightEstimate(ks))
		}
		return est
	}
	return uint64(s.lightEstimate(ks))
}

// Entry is one reported flow.
type Entry struct {
	Key   string
	Count uint64
}

// Top returns the k largest heavy-part flows by estimate — the Elastic
// sketch's heavy-hitter report.
func (s *Sketch) Top(k int) []Entry {
	all := make([]Entry, 0, len(s.heavy))
	for i := range s.heavy {
		b := &s.heavy[i]
		if b.votePos == 0 {
			continue
		}
		est := uint64(b.votePos)
		if b.ejected {
			est += uint64(s.lightEstimate(b.key))
		}
		all = append(all, Entry{Key: b.key, Count: est})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// MemoryBytes reports the logical footprint.
func (s *Sketch) MemoryBytes() int {
	return s.cfg.HeavyBuckets*BucketBytes + s.cfg.LightCounters
}
