// Package countsketch implements the Count sketch of Charikar, Chen and
// Farach-Colton ("Finding frequent items in data streams", ICALP 2002),
// the second count-all sketch the HeavyKeeper paper cites (§II-B).
//
// Each of d arrays holds w signed counters; flow f updates counter
// h_j(f) by s_j(f) ∈ {−1, +1}, and the estimate is the median of
// s_j(f)·C_j[h_j(f)]. Unlike Count-Min, the estimate is unbiased but can
// under- as well as over-estimate.
package countsketch

import (
	"fmt"
	"sort"

	"repro/internal/hash"
	"repro/internal/xrand"
)

// Config parameterizes a Sketch.
type Config struct {
	// D is the number of arrays; odd values give a well-defined median.
	// Default 3.
	D int
	// W is the number of counters per array. Required.
	W int
	// CounterBits is the counter width for memory accounting (<= 32).
	// Default 32.
	CounterBits uint
	// Seed makes hashing deterministic.
	Seed uint64
}

func (c *Config) setDefaults() error {
	if c.D == 0 {
		c.D = 3
	}
	if c.D < 1 {
		return fmt.Errorf("countsketch: D = %d, must be >= 1", c.D)
	}
	if c.W < 1 {
		return fmt.Errorf("countsketch: W = %d, must be >= 1", c.W)
	}
	if c.CounterBits == 0 {
		c.CounterBits = 32
	}
	if c.CounterBits > 32 {
		return fmt.Errorf("countsketch: CounterBits = %d, must be <= 32", c.CounterBits)
	}
	return nil
}

// Sketch is a Count sketch.
type Sketch struct {
	cfg       Config
	rows      [][]int64
	family    *hash.Family
	signSeeds []uint64
}

// New returns a Count sketch for the given configuration.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	s := &Sketch{
		cfg:       cfg,
		rows:      make([][]int64, cfg.D),
		family:    hash.NewFamily(cfg.Seed, cfg.D),
		signSeeds: make([]uint64, cfg.D),
	}
	sm := xrand.NewSplitMix64(cfg.Seed ^ 0xabcdef)
	for j := range s.rows {
		s.rows[j] = make([]int64, cfg.W)
		s.signSeeds[j] = sm.Next()
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Sketch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// sign returns +1 or -1 for key in array j.
func (s *Sketch) sign(j int, key []byte) int64 {
	if hash.Sum64(s.signSeeds[j], key)&1 == 0 {
		return 1
	}
	return -1
}

// Insert records one packet of flow key.
func (s *Sketch) Insert(key []byte) {
	for j := range s.rows {
		s.rows[j][s.family.Index(j, key, s.cfg.W)] += s.sign(j, key)
	}
}

// Estimate returns the median estimator for key's size. The result is
// clamped at zero: flow sizes are non-negative.
func (s *Sketch) Estimate(key []byte) int64 {
	ests := make([]int64, len(s.rows))
	for j := range s.rows {
		ests[j] = s.sign(j, key) * s.rows[j][s.family.Index(j, key, s.cfg.W)]
	}
	sort.Slice(ests, func(a, b int) bool { return ests[a] < ests[b] })
	var med int64
	if n := len(ests); n%2 == 1 {
		med = ests[n/2]
	} else {
		med = (ests[n/2-1] + ests[n/2]) / 2
	}
	if med < 0 {
		med = 0
	}
	return med
}

// MemoryBytes returns the sketch's logical footprint.
func (s *Sketch) MemoryBytes() int {
	bits := int(s.cfg.CounterBits) * s.cfg.W * s.cfg.D
	return (bits + 7) / 8
}

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	for j := range s.rows {
		clear(s.rows[j])
	}
}
