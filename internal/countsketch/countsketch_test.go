package countsketch

import (
	"fmt"
	"testing"
)

func key(i int) []byte { return []byte(fmt.Sprintf("flow-%d", i)) }

func TestConfigValidation(t *testing.T) {
	for i, cfg := range []Config{{W: 0}, {W: 10, D: -2}, {W: 10, CounterBits: 64}} {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestExactWhenAlone(t *testing.T) {
	s := MustNew(Config{W: 1024, Seed: 1})
	for i := 0; i < 500; i++ {
		s.Insert(key(3))
	}
	if got := s.Estimate(key(3)); got != 500 {
		t.Errorf("estimate = %d want 500", got)
	}
}

func TestEstimateNonNegative(t *testing.T) {
	s := MustNew(Config{W: 8, Seed: 2})
	for i := 0; i < 10000; i++ {
		s.Insert(key(i % 100))
	}
	for i := 0; i < 200; i++ {
		if got := s.Estimate(key(i)); got < 0 {
			t.Errorf("estimate of flow %d is negative: %d", i, got)
		}
	}
}

func TestUnbiasedOnAverage(t *testing.T) {
	// Count sketch is unbiased: mean signed error across many flows ≈ 0.
	s := MustNew(Config{W: 128, D: 1, Seed: 3}) // d=1 exposes raw bias
	const flows = 500
	const perFlow = 20
	for i := 0; i < flows; i++ {
		for j := 0; j < perFlow; j++ {
			s.Insert(key(i))
		}
	}
	var sum float64
	for i := 0; i < flows; i++ {
		// Raw (unclamped) estimate via the single row.
		j := s.family.Index(0, key(i), s.cfg.W)
		raw := s.sign(0, key(i)) * s.rows[0][j]
		sum += float64(raw) - perFlow
	}
	mean := sum / flows
	if mean > 5 || mean < -5 {
		t.Errorf("mean signed error = %v, want ≈ 0 (unbiased estimator)", mean)
	}
}

func TestMedianReducesVariance(t *testing.T) {
	// More rows should not increase the average absolute error.
	errFor := func(d int) float64 {
		s := MustNew(Config{W: 64, D: d, Seed: 9})
		const flows = 300
		for i := 0; i < flows; i++ {
			for j := 0; j <= i%7; j++ {
				s.Insert(key(i))
			}
		}
		var sum float64
		for i := 0; i < flows; i++ {
			truth := int64(i%7 + 1)
			d := s.Estimate(key(i)) - truth
			if d < 0 {
				d = -d
			}
			sum += float64(d)
		}
		return sum / flows
	}
	if e1, e5 := errFor(1), errFor(5); e5 > e1*1.5 {
		t.Errorf("d=5 error %v much worse than d=1 error %v", e5, e1)
	}
}

func TestReset(t *testing.T) {
	s := MustNew(Config{W: 32, Seed: 1})
	s.Insert(key(1))
	s.Reset()
	if got := s.Estimate(key(1)); got != 0 {
		t.Errorf("estimate after Reset = %d want 0", got)
	}
}

func TestMemoryBytes(t *testing.T) {
	s := MustNew(Config{W: 100, D: 3, CounterBits: 32})
	if got := s.MemoryBytes(); got != 1200 {
		t.Errorf("MemoryBytes = %d want 1200", got)
	}
}

func TestEvenDMedian(t *testing.T) {
	s := MustNew(Config{W: 1024, D: 4, Seed: 6})
	for i := 0; i < 100; i++ {
		s.Insert(key(1))
	}
	got := s.Estimate(key(1))
	if got != 100 {
		t.Errorf("even-d median estimate = %d want 100 (no collisions at this scale)", got)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := MustNew(Config{W: 4096, Seed: 1})
	keys := make([][]byte, 1<<12)
	for i := range keys {
		keys[i] = key(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(keys[i&(len(keys)-1)])
	}
}
