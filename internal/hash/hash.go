// Package hash implements the seeded 64-bit hash family shared by every
// sketch in this repository.
//
// The HeavyKeeper paper (§III-B) requires d hash functions h1..hd that are
// 2-way independent, plus a separate fingerprint hash hf. We provide one
// xxHash64-style function parameterized by a 64-bit seed; distinct seeds
// derived through SplitMix64 give the d array hashes and the fingerprint
// hash. xxHash64 passes SMHasher's avalanche and independence tests, which
// is the practical standard the paper's C++ implementation (BOB hash) also
// relies on.
//
// The package deliberately exposes a tiny surface: Sum64 for one-shot
// hashing and Family for the "one seed in, many independent functions out"
// pattern the sketches use.
package hash

import (
	"math/bits"

	"repro/internal/xrand"
)

// xxHash64 prime constants, from the reference specification.
const (
	prime1 uint64 = 0x9e3779b185ebca87
	prime2 uint64 = 0xc2b2ae3d27d4eb4f
	prime3 uint64 = 0x165667b19e3779f9
	prime4 uint64 = 0x85ebca77c2b2ae63
	prime5 uint64 = 0x27d4eb2f165667c5
)

// keyHashCount, when non-nil, is incremented on every Sum64 call. It backs
// the one-hash-per-packet regression tests; see CountCalls.
var keyHashCount *uint64

// CountCalls directs Sum64 to increment *c on every invocation until called
// again with nil. It exists so tests can prove hot paths traverse the key
// bytes exactly once per packet. Counting is not synchronized; enable it only
// around single-goroutine sections. The production cost is one load of a
// cached global and a perfectly-predicted branch per call — measured as noise
// next to the hash itself, and accepted so the one-hash invariant stays
// testable from ordinary `go test` without build tags.
func CountCalls(c *uint64) { keyHashCount = c }

// Sum64 returns the 64-bit xxHash64 of data under seed.
func Sum64(seed uint64, data []byte) uint64 {
	if c := keyHashCount; c != nil {
		*c++
	}
	n := len(data)
	var h uint64

	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(data) >= 32 {
			v1 = round(v1, le64(data[0:8]))
			v2 = round(v2, le64(data[8:16]))
			v3 = round(v3, le64(data[16:24]))
			v4 = round(v4, le64(data[24:32]))
			data = data[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}

	h += uint64(n)

	for len(data) >= 8 {
		h ^= round(0, le64(data[0:8]))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		data = data[8:]
	}
	if len(data) >= 4 {
		h ^= uint64(le32(data[0:4])) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		data = data[4:]
	}
	for _, b := range data {
		h ^= uint64(b) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}

	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Sum64Uint64 hashes a single 64-bit key. It is the fast path for workloads
// whose flow IDs already fit in a word (the synthetic Zipf traces); it mixes
// the key and seed through the xxHash64 finalizer twice, which is enough to
// decorrelate distinct seeds.
func Sum64Uint64(seed, key uint64) uint64 {
	h := seed + prime5 + 8
	h ^= round(0, key)
	h = bits.RotateLeft64(h, 27)*prime1 + prime4
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Mix derives a new 64-bit value from an already well-mixed hash h and a
// seed, via the xxHash64 avalanche finalizer. It is the one-hash hot path's
// derive step: a sketch hashes the key bytes once (Sum64) and then Mixes the
// result under per-purpose seeds to obtain the fingerprint and the
// Kirsch–Mitzenmacher double-hashing increments, instead of re-walking the
// key once per array. Mix is a bijection of h for fixed seed, so it preserves
// the full entropy of the underlying hash.
func Mix(seed, h uint64) uint64 {
	h ^= seed
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Reduce maps a 64-bit hash uniformly onto [0, n) via the high word of the
// 128-bit product (Lemire's fastrange), avoiding the hardware divide a %
// would cost on every packet.
func Reduce(h, n uint64) uint64 {
	hi, _ := bits.Mul64(h, n)
	return hi
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime1
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	return acc*prime1 + prime4
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Family is a set of independently seeded hash functions: d array hashes and
// one fingerprint hash, all derived from a single master seed. Every sketch
// in the repository builds its hashing from a Family so that experiment
// seeds propagate deterministically.
type Family struct {
	arraySeeds []uint64
	fpSeed     uint64
}

// NewFamily derives d array-hash seeds and one fingerprint seed from seed.
func NewFamily(seed uint64, d int) *Family {
	if d < 1 {
		panic("hash: family size must be >= 1")
	}
	sm := xrand.NewSplitMix64(seed)
	f := &Family{arraySeeds: make([]uint64, d)}
	for i := range f.arraySeeds {
		f.arraySeeds[i] = sm.Next()
	}
	f.fpSeed = sm.Next()
	return f
}

// D returns the number of array hash functions in the family.
func (f *Family) D() int { return len(f.arraySeeds) }

// Index returns h_j(key) mod w: the bucket index of key in array j.
func (f *Family) Index(j int, key []byte, w int) int {
	return int(Sum64(f.arraySeeds[j], key) % uint64(w))
}

// Fingerprint returns the fingerprint of key truncated to bitWidth bits.
// A fingerprint of zero is remapped to one so that zero can mean "empty
// bucket" in sketch storage.
func (f *Family) Fingerprint(key []byte, bitWidth uint) uint32 {
	fp := uint32(Sum64(f.fpSeed, key) & ((1 << bitWidth) - 1))
	if fp == 0 {
		fp = 1
	}
	return fp
}

// Seeds exposes the derived array seeds (for sketches that stream-hash the
// key once per array themselves).
func (f *Family) Seeds() []uint64 { return f.arraySeeds }

// FingerprintSeed exposes the fingerprint seed.
func (f *Family) FingerprintSeed() uint64 { return f.fpSeed }
