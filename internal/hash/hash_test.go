package hash

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// TestSum64KnownVectors checks the implementation against the published
// xxHash64 test vectors.
func TestSum64KnownVectors(t *testing.T) {
	cases := []struct {
		seed uint64
		data string
		want uint64
	}{
		{0, "", 0xef46db3751d8e999},
		{0, "a", 0xd24ec4f1a98c6e5b},
		{0, "abc", 0x44bc2cf5ad770999},
		{0, "Nobody inspects the spammish repetition", 0xfbcea83c8a378bf1},
	}
	for _, c := range cases {
		if got := Sum64(c.seed, []byte(c.data)); got != c.want {
			t.Errorf("Sum64(%d, %q) = %#x, want %#x", c.seed, c.data, got, c.want)
		}
	}
}

func TestSum64LongInput(t *testing.T) {
	// Exercise the 32-byte block loop plus every tail length.
	base := make([]byte, 0, 128)
	for i := 0; i < 128; i++ {
		base = append(base, byte(i*7+3))
	}
	seen := make(map[uint64]int)
	for n := 0; n <= 128; n++ {
		h := Sum64(1, base[:n])
		if prev, dup := seen[h]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[h] = n
	}
}

func TestSum64Deterministic(t *testing.T) {
	f := func(seed uint64, data []byte) bool {
		return Sum64(seed, data) == Sum64(seed, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum64SeedSeparation(t *testing.T) {
	// Different seeds should behave like independent functions: over many
	// keys, the fraction mapping to the same bucket under two seeds should
	// be ~1/w.
	const w = 64
	const keys = 20000
	same := 0
	var buf [8]byte
	for i := 0; i < keys; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		a := Sum64(111, buf[:]) % w
		b := Sum64(222, buf[:]) % w
		if a == b {
			same++
		}
	}
	frac := float64(same) / keys
	if math.Abs(frac-1.0/w) > 0.01 {
		t.Errorf("same-bucket fraction = %v, want ~%v", frac, 1.0/w)
	}
}

func TestSum64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 of the 64 output bits.
	var buf [8]byte
	var totalFlips, trials int
	for i := 0; i < 500; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(i)*0x12345)
		h0 := Sum64(7, buf[:])
		for bit := 0; bit < 64; bit++ {
			buf2 := buf
			buf2[bit/8] ^= 1 << (bit % 8)
			h1 := Sum64(7, buf2[:])
			totalFlips += popcount(h0 ^ h1)
			trials++
		}
	}
	mean := float64(totalFlips) / float64(trials)
	if mean < 30 || mean > 34 {
		t.Errorf("avalanche mean = %v output-bit flips, want ~32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestSum64Uint64MatchesDistribution(t *testing.T) {
	// Sum64Uint64 is a distinct fast path, not required to equal Sum64 on
	// the encoded bytes, but it must be deterministic and well distributed.
	const w = 32
	counts := make([]int, w)
	for i := 0; i < 32000; i++ {
		counts[Sum64Uint64(5, uint64(i))%w]++
	}
	expected := 32000.0 / w
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 31 dof, 99.9th percentile ~61.1
	if chi2 > 61.1 {
		t.Errorf("chi-squared = %v, fast-path distribution looks non-uniform", chi2)
	}
}

func TestSum64Uint64SeedSeparation(t *testing.T) {
	f := func(key uint64) bool {
		return Sum64Uint64(1, key) != Sum64Uint64(2, key) || key == 0x7fffffffffffffff
	}
	// Not literally impossible to collide, but over quick's default 100
	// samples a collision would indicate broken seed mixing.
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFamilyIndexInRange(t *testing.T) {
	fam := NewFamily(42, 4)
	for w := 1; w <= 100; w += 7 {
		for j := 0; j < fam.D(); j++ {
			for i := 0; i < 50; i++ {
				key := []byte(fmt.Sprintf("key-%d", i))
				if idx := fam.Index(j, key, w); idx < 0 || idx >= w {
					t.Fatalf("Index(%d, %q, %d) = %d out of range", j, key, w, idx)
				}
			}
		}
	}
}

func TestFamilyArraysIndependent(t *testing.T) {
	fam := NewFamily(9, 2)
	const w = 128
	same := 0
	const keys = 20000
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("flow-%d", i))
		if fam.Index(0, key, w) == fam.Index(1, key, w) {
			same++
		}
	}
	frac := float64(same) / keys
	if math.Abs(frac-1.0/w) > 0.005 {
		t.Errorf("arrays collide on %v of keys, want ~%v", frac, 1.0/w)
	}
}

func TestFingerprintNeverZero(t *testing.T) {
	fam := NewFamily(3, 1)
	for i := 0; i < 100000; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if fam.Fingerprint(key, 16) == 0 {
			t.Fatalf("fingerprint of %q is zero; zero is reserved for empty buckets", key)
		}
	}
}

func TestFingerprintWidth(t *testing.T) {
	fam := NewFamily(3, 1)
	for _, width := range []uint{8, 12, 16, 24, 32} {
		limit := uint32(1)<<width - 1
		for i := 0; i < 1000; i++ {
			key := []byte(fmt.Sprintf("k%d", i))
			if fp := fam.Fingerprint(key, width); fp > limit && width != 32 {
				t.Fatalf("fingerprint %#x exceeds %d-bit width", fp, width)
			}
		}
	}
}

func TestFingerprintCollisionRate(t *testing.T) {
	// With 16-bit fingerprints, two random distinct keys collide with
	// probability ~2^-16. Over 200k pairs we expect ~3; allow up to 20.
	fam := NewFamily(77, 1)
	collisions := 0
	const pairs = 200000
	for i := 0; i < pairs; i++ {
		a := fam.Fingerprint([]byte(fmt.Sprintf("a%d", i)), 16)
		b := fam.Fingerprint([]byte(fmt.Sprintf("b%d", i)), 16)
		if a == b {
			collisions++
		}
	}
	if collisions > 20 {
		t.Errorf("%d fingerprint collisions in %d pairs; expected ~%d", collisions, pairs, pairs/65536)
	}
}

func TestNewFamilyPanicsOnBadD(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFamily(seed, 0) did not panic")
		}
	}()
	NewFamily(1, 0)
}

func TestFamilyDeterministicAcrossConstruction(t *testing.T) {
	a := NewFamily(123, 3)
	b := NewFamily(123, 3)
	key := []byte("determinism")
	for j := 0; j < 3; j++ {
		if a.Index(j, key, 997) != b.Index(j, key, 997) {
			t.Fatalf("family not deterministic for array %d", j)
		}
	}
	if a.Fingerprint(key, 16) != b.Fingerprint(key, 16) {
		t.Fatal("fingerprint not deterministic")
	}
}

func BenchmarkSum64_8B(b *testing.B) {
	data := []byte("12345678")
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		Sum64(1, data)
	}
}

func BenchmarkSum64_13B(b *testing.B) {
	data := []byte("5-tuple-flow!") // typical 13-byte 5-tuple key
	b.SetBytes(13)
	for i := 0; i < b.N; i++ {
		Sum64(1, data)
	}
}

func BenchmarkSum64Uint64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Sum64Uint64(1, uint64(i))
	}
}
