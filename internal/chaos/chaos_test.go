package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// TestRandDeterminism: two Rands with the same seed emit identical
// decision streams; Split children are independent of the parent's
// subsequent draws.
func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
	c1 := NewRand(7).Split()
	c2 := NewRand(7).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split children diverge at draw %d", i)
		}
	}
}

func TestRandBounds(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
	always, never := 0, 0
	for i := 0; i < 1000; i++ {
		if r.Bool(1.0) {
			always++
		}
		if r.Bool(0.0) {
			never++
		}
	}
	if always != 1000 || never != 0 {
		t.Fatalf("Bool(1)=%d/1000, Bool(0)=%d/1000", always, never)
	}
}

// TestWriterBudget: the faulty writer forwards exactly FailAfter bytes,
// fails past the budget with ErrInjected, and honors the short-write and
// never-fail modes.
func TestWriterBudget(t *testing.T) {
	var sink bytes.Buffer
	w := &Writer{W: &sink, FailAfter: 10}
	if n, err := w.Write(make([]byte, 8)); n != 8 || err != nil {
		t.Fatalf("within budget: (%d, %v)", n, err)
	}
	if _, err := w.Write(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("past budget: %v", err)
	}
	if sink.Len() != 8 {
		t.Fatalf("clean failure leaked %d bytes past the first write", sink.Len()-8)
	}

	sink.Reset()
	sw := &Writer{W: &sink, FailAfter: 10, Short: true}
	if _, err := sw.Write(make([]byte, 64)); !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: %v", err)
	}
	if sink.Len() == 0 || sink.Len() >= 64 {
		t.Fatalf("short write wrote %d bytes, want a strict prefix", sink.Len())
	}

	sink.Reset()
	ok := &Writer{W: &sink, FailAfter: -1}
	if _, err := ok.Write(make([]byte, 1<<16)); err != nil {
		t.Fatalf("never-fail writer: %v", err)
	}

	zero := &Writer{W: io.Discard}
	if _, err := zero.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("zero writer should fail immediately: %v", err)
	}
}

// pipeConn returns a connected pair backed by net.Pipe with a reader
// goroutine draining one side into a buffer.
func drainingPipe(t *testing.T) (client net.Conn, received *bytes.Buffer, done chan struct{}) {
	t.Helper()
	c, s := net.Pipe()
	received = &bytes.Buffer{}
	done = make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for {
			n, err := s.Read(buf)
			received.Write(buf[:n])
			if err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() { c.Close(); s.Close(); <-done })
	return c, received, done
}

// TestConnFaultsDeterministic: the same seed produces the same fault
// sequence; a severed connection stays severed with ErrInjected.
func TestConnFaultsDeterministic(t *testing.T) {
	run := func(seed uint64) (outcomes []string, delivered int) {
		client, received, done := drainingPipe(t)
		conn := WrapConn(client, NewRand(seed), ConnPlan{
			ResetProb:   0.2,
			PartialProb: 0.2,
			GarbageProb: 0.2,
		})
		payload := bytes.Repeat([]byte("frame"), 10)
		for i := 0; i < 50; i++ {
			_, err := conn.Write(payload)
			switch {
			case err == nil:
				outcomes = append(outcomes, "ok")
			case errors.Is(err, ErrInjected):
				outcomes = append(outcomes, "fault")
			default:
				outcomes = append(outcomes, "other:"+err.Error())
			}
			if conn.Severed() {
				break
			}
		}
		client.Close()
		<-done
		return outcomes, received.Len()
	}
	o1, d1 := run(99)
	o2, d2 := run(99)
	if len(o1) != len(o2) || d1 != d2 {
		t.Fatalf("same seed diverged: %d/%d outcomes, %d/%d bytes", len(o1), len(o2), d1, d2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d: %q vs %q", i, o1[i], o2[i])
		}
	}
	// After severance every write fails with ErrInjected.
	client, _, _ := drainingPipe(t)
	conn := WrapConn(client, NewRand(1), ConnPlan{ResetProb: 1})
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first write: %v", err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-severance write: %v", err)
	}
}

// TestListenerDelays: a wrapped listener still accepts every connection;
// delays only reorder time, not outcomes.
func TestListenerDelays(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := WrapListener(raw, NewRand(5), 0.5, time.Millisecond)
	defer ln.Close()
	const conns = 8
	go func() {
		for i := 0; i < conns; i++ {
			c, err := net.Dial("tcp", ln.Addr().String())
			if err == nil {
				c.Close()
			}
		}
	}()
	for i := 0; i < conns; i++ {
		c, err := ln.Accept()
		if err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
		c.Close()
	}
}

func TestLeakCheck(t *testing.T) {
	base := countGoroutines()
	if err := LeakCheck(base, 2, time.Second); err != nil {
		t.Fatalf("clean state reported as leak: %v", err)
	}
	stop := make(chan struct{})
	for i := 0; i < 5; i++ {
		go func() { <-stop }()
	}
	if err := LeakCheck(base, 2, 50*time.Millisecond); err == nil {
		t.Fatal("5 stranded goroutines not detected")
	}
	close(stop)
	if err := LeakCheck(base, 2, time.Second); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// countGoroutines samples the goroutine count after a short settle so
// freshly-exited goroutines don't inflate the baseline.
func countGoroutines() int {
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

// TestTransportFaults drives every Transport fault class against a real
// HTTP server: outright request errors, context-respecting stalls, and
// both truncation flavors (clean early EOF vs injected read error). With
// the zero plan the wrapper must be transparent.
func TestTransportFaults(t *testing.T) {
	payload := bytes.Repeat([]byte("snapshot-bytes."), 1<<10) // ~15 KiB
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()

	fetch := func(tr *Transport, ctx context.Context) ([]byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := tr.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return io.ReadAll(resp.Body)
	}

	t.Run("transparent", func(t *testing.T) {
		tr := WrapTransport(nil, NewRand(1), TransportPlan{})
		for i := 0; i < 10; i++ {
			body, err := fetch(tr, context.Background())
			if err != nil || !bytes.Equal(body, payload) {
				t.Fatalf("zero plan not transparent: %d bytes, err %v", len(body), err)
			}
		}
		if tr.Injected() != 0 {
			t.Fatalf("zero plan injected %d faults", tr.Injected())
		}
	})

	t.Run("errors", func(t *testing.T) {
		tr := WrapTransport(nil, NewRand(2), TransportPlan{ErrorProb: 1})
		if _, err := fetch(tr, context.Background()); !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v want ErrInjected", err)
		}
		if tr.Injected() != 1 {
			t.Fatalf("injected = %d want 1", tr.Injected())
		}
	})

	t.Run("stall respects context", func(t *testing.T) {
		tr := WrapTransport(nil, NewRand(3), TransportPlan{StallProb: 1, MaxStall: time.Minute})
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, err := fetch(tr, ctx)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("stalled fetch err = %v want deadline exceeded", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Fatalf("stall ignored the context (%v elapsed)", time.Since(start))
		}
	})

	t.Run("truncation", func(t *testing.T) {
		tr := WrapTransport(nil, NewRand(4), TransportPlan{TruncateProb: 1, MaxKeep: 64})
		sawClean, sawError := false, false
		for i := 0; i < 64 && !(sawClean && sawError); i++ {
			body, err := fetch(tr, context.Background())
			switch {
			case err == nil:
				sawClean = true
				if len(body) == 0 || len(body) > 64 {
					t.Fatalf("clean truncation kept %d bytes, want 1..64", len(body))
				}
			case errors.Is(err, ErrInjected):
				sawError = true
			default:
				t.Fatalf("unexpected truncation error: %v", err)
			}
		}
		if !sawClean || !sawError {
			t.Fatalf("truncation flavors: clean=%v error=%v, want both", sawClean, sawError)
		}
	})

	t.Run("SetPlan swaps mid-run", func(t *testing.T) {
		tr := WrapTransport(nil, NewRand(5), TransportPlan{ErrorProb: 1})
		if _, err := fetch(tr, context.Background()); !errors.Is(err, ErrInjected) {
			t.Fatalf("pre-swap err = %v want ErrInjected", err)
		}
		tr.SetPlan(TransportPlan{})
		if body, err := fetch(tr, context.Background()); err != nil || !bytes.Equal(body, payload) {
			t.Fatalf("post-swap fetch: %d bytes, err %v", len(body), err)
		}
	})

	// Determinism: same seed, same plan, same fault sequence.
	outcomes := func(seed uint64) []bool {
		tr := WrapTransport(nil, NewRand(seed), TransportPlan{ErrorProb: 0.5})
		var seq []bool
		for i := 0; i < 32; i++ {
			_, err := fetch(tr, context.Background())
			seq = append(seq, err != nil)
		}
		return seq
	}
	a, b := outcomes(99), outcomes(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at request %d", i)
		}
	}
}
