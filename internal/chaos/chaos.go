// Package chaos is a deterministic fault-injection harness for the hkd
// resilience tests. It wraps the seams a daemon actually fails at —
// network connections, disk writers, accept loops, HTTP transports —
// with seed-driven
// fault decisions, so a chaos run is exactly reproducible: the same seed
// produces the same sequence of resets, partial frames, stalls and
// failed writes every time, and a failing seed is a one-line repro.
//
// Nothing in this package touches global randomness or wall-clock
// entropy; every decision flows from an explicit Rand.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/xrand"
)

// ErrInjected is the base error for every injected fault, so tests can
// tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Rand is the seed-driven decision source behind every wrapper. It is a
// thin deterministic PRNG (SplitMix64) with the few sampling helpers the
// fault plans need. Not safe for concurrent use: give each goroutine its
// own Rand (Split derives one).
type Rand struct {
	s xrand.SplitMix64
}

// NewRand returns a Rand seeded with seed; any seed is valid.
func NewRand(seed uint64) *Rand {
	return &Rand{s: *xrand.NewSplitMix64(seed)}
}

// Uint64 returns the next 64-bit value.
func (r *Rand) Uint64() uint64 { return r.s.Next() }

// Intn returns a value in [0, n); n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("chaos: Intn bound must be positive")
	}
	return int(r.s.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.s.Next()>>11) / (1 << 53)
}

// Bool reports true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Split derives an independent child generator, so per-connection or
// per-goroutine decision streams don't perturb each other's sequences.
func (r *Rand) Split() *Rand { return NewRand(r.s.Next()) }

// ConnPlan configures the fault mix a wrapped connection injects on its
// write path. Probabilities are per Write call; zero values disable a
// fault, so the zero ConnPlan is a transparent wrapper.
type ConnPlan struct {
	// StallProb is the chance of sleeping up to MaxStall before a write
	// (a stalled or congested peer).
	StallProb float64
	// MaxStall bounds an injected stall (default 2ms when StallProb > 0).
	MaxStall time.Duration
	// PartialProb is the chance of writing only a prefix of the buffer
	// and then severing the connection — a torn frame on the wire.
	PartialProb float64
	// ResetProb is the chance of severing the connection instead of
	// writing at all — a peer crash between frames.
	ResetProb float64
	// GarbageProb is the chance of flipping bytes in the buffer before
	// writing it — a corrupting middlebox or a buggy peer.
	GarbageProb float64
}

// Conn wraps a net.Conn with seed-driven write-path faults per its plan.
// Read passes through untouched. After an injected severance every
// subsequent operation fails with ErrInjected.
type Conn struct {
	net.Conn
	rng  *Rand
	plan ConnPlan
	dead bool
}

// WrapConn returns c with plan's faults injected from rng.
func WrapConn(c net.Conn, rng *Rand, plan ConnPlan) *Conn {
	if plan.MaxStall <= 0 {
		plan.MaxStall = 2 * time.Millisecond
	}
	return &Conn{Conn: c, rng: rng, plan: plan}
}

// Write applies the fault plan, then forwards whatever survives to the
// underlying connection.
func (c *Conn) Write(p []byte) (int, error) {
	if c.dead {
		return 0, fmt.Errorf("%w: connection severed", ErrInjected)
	}
	if c.rng.Bool(c.plan.StallProb) {
		time.Sleep(time.Duration(c.rng.Intn(int(c.plan.MaxStall))))
	}
	if c.rng.Bool(c.plan.ResetProb) {
		c.sever()
		return 0, fmt.Errorf("%w: reset before write", ErrInjected)
	}
	if len(p) > 1 && c.rng.Bool(c.plan.PartialProb) {
		n, _ := c.Conn.Write(p[:1+c.rng.Intn(len(p)-1)])
		c.sever()
		return n, fmt.Errorf("%w: partial frame then reset", ErrInjected)
	}
	if c.plan.GarbageProb > 0 && c.rng.Bool(c.plan.GarbageProb) {
		mut := append([]byte(nil), p...)
		for i := 0; i < 1+c.rng.Intn(3); i++ {
			mut[c.rng.Intn(len(mut))] ^= byte(1 + c.rng.Intn(255))
		}
		return c.Conn.Write(mut)
	}
	return c.Conn.Write(p)
}

// sever closes the underlying connection and poisons the wrapper.
func (c *Conn) sever() {
	c.dead = true
	c.Conn.Close()
}

// Severed reports whether an injected fault has torn the connection down.
func (c *Conn) Severed() bool { return c.dead }

// Writer injects disk-write faults: it forwards to W until FailAfter
// bytes have been written, then fails — with a short write first when
// Short is set (a torn file tail), or cleanly at the boundary otherwise.
// A FailAfter below zero never fails. The zero Writer fails immediately,
// which is the "disk full from the first byte" case.
type Writer struct {
	W io.Writer
	// FailAfter is the byte budget before the injected failure.
	FailAfter int64
	// Short makes the failing write a short write of half the remaining
	// budget instead of an immediate error.
	Short   bool
	written int64
}

// Write forwards to W within the byte budget and fails past it.
func (w *Writer) Write(p []byte) (int, error) {
	if w.FailAfter < 0 {
		return w.W.Write(p)
	}
	remaining := w.FailAfter - w.written
	if remaining >= int64(len(p)) {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	if w.Short && remaining > 0 {
		n, err := w.W.Write(p[:remaining])
		w.written += int64(n)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: short disk write after %d bytes", ErrInjected, w.written)
	}
	w.written = w.FailAfter
	return 0, fmt.Errorf("%w: disk write failed at %d bytes", ErrInjected, w.FailAfter)
}

// Listener wraps a net.Listener with seed-driven accept delays (a
// saturated accept queue). Accepted connections are returned untouched;
// wrap them with WrapConn for connection-level faults.
type Listener struct {
	net.Listener
	rng *Rand
	// DelayProb is the chance an Accept sleeps before returning.
	DelayProb float64
	// MaxDelay bounds an injected accept delay.
	MaxDelay time.Duration
}

// WrapListener returns ln with accept delays injected from rng.
func WrapListener(ln net.Listener, rng *Rand, delayProb float64, maxDelay time.Duration) *Listener {
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	return &Listener{Listener: ln, rng: rng, DelayProb: delayProb, MaxDelay: maxDelay}
}

// Accept delays per the plan, then accepts from the wrapped listener.
func (l *Listener) Accept() (net.Conn, error) {
	if l.rng.Bool(l.DelayProb) {
		time.Sleep(time.Duration(l.rng.Intn(int(l.MaxDelay))))
	}
	return l.Listener.Accept()
}

// TransportPlan configures the fault mix a wrapped HTTP transport
// injects per round trip. Probabilities are per request; zero values
// disable a fault, so the zero TransportPlan is a transparent wrapper.
type TransportPlan struct {
	// ErrorProb is the chance a request fails outright without reaching
	// the network — a refused connection or a mid-dial peer crash.
	ErrorProb float64
	// StallProb is the chance the round trip sleeps up to MaxStall
	// before being attempted — a wedged peer or a congested path. The
	// stall respects the request context, so a client deadline still
	// fires on time.
	StallProb float64
	// MaxStall bounds an injected stall (default 2ms when StallProb > 0).
	MaxStall time.Duration
	// TruncateProb is the chance the response body is cut after a short
	// prefix: half the time with a clean early EOF (a torn payload the
	// caller must catch by checksum), half with an explicit ErrInjected
	// read error (a connection dropped mid-body).
	TruncateProb float64
	// MaxKeep bounds the body prefix that survives a truncation
	// (default 4096 bytes when TruncateProb > 0).
	MaxKeep int
}

// Transport wraps an http.RoundTripper with seed-driven request faults
// per its plan. Unlike Conn it is safe for concurrent use — HTTP clients
// share transports across goroutines — with the rng and plan guarded by
// a mutex; decisions are sampled under the lock, network I/O happens
// outside it. SetPlan swaps the fault mix mid-run, which is how a chaos
// script turns faults on for one phase and off for the next.
type Transport struct {
	base http.RoundTripper

	mu       sync.Mutex
	rng      *Rand
	plan     TransportPlan
	injected uint64
}

// WrapTransport returns base with plan's faults injected from rng. A nil
// base uses http.DefaultTransport.
func WrapTransport(base http.RoundTripper, rng *Rand, plan TransportPlan) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, rng: rng, plan: normalizeTransportPlan(plan)}
}

func normalizeTransportPlan(plan TransportPlan) TransportPlan {
	if plan.MaxStall <= 0 {
		plan.MaxStall = 2 * time.Millisecond
	}
	if plan.MaxKeep <= 0 {
		plan.MaxKeep = 4096
	}
	return plan
}

// SetPlan replaces the fault mix for subsequent round trips.
func (t *Transport) SetPlan(plan TransportPlan) {
	t.mu.Lock()
	t.plan = normalizeTransportPlan(plan)
	t.mu.Unlock()
}

// Injected reports how many round trips have had a fault injected.
func (t *Transport) Injected() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// RoundTrip samples the fault plan, then forwards to the wrapped
// transport with whatever faults apply.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	plan := t.plan
	fail := t.rng.Bool(plan.ErrorProb)
	stall := time.Duration(0)
	if t.rng.Bool(plan.StallProb) {
		stall = time.Duration(1 + t.rng.Intn(int(plan.MaxStall)))
	}
	truncateAt, truncateClean := 0, false
	if t.rng.Bool(plan.TruncateProb) {
		truncateAt = 1 + t.rng.Intn(plan.MaxKeep)
		truncateClean = t.rng.Bool(0.5)
	}
	if fail || stall > 0 || truncateAt > 0 {
		t.injected++
	}
	t.mu.Unlock()

	if stall > 0 {
		select {
		case <-time.After(stall):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if fail {
		return nil, fmt.Errorf("%w: request refused", ErrInjected)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || truncateAt == 0 || resp.Body == nil {
		return resp, err
	}
	resp.Body = &truncatedBody{rc: resp.Body, remaining: truncateAt, clean: truncateClean}
	return resp, nil
}

// truncatedBody cuts a response body after remaining bytes: with a clean
// EOF (the caller sees a short but well-formed read sequence and must
// catch the damage by checksum) or an explicit injected error.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
	clean     bool
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		if b.clean {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("%w: body severed mid-stream", ErrInjected)
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// LeakCheck polls until the process goroutine count settles back to at
// most baseline+slack, returning an error with a full stack dump when it
// does not within the deadline. Chaos runs call it after shutdown: a
// fault mix must never strand an ingest or snapshot goroutine.
func LeakCheck(baseline, slack int, within time.Duration) error {
	deadline := time.Now().Add(within)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("goroutine leak: %d live, baseline %d (+%d slack)\n%s",
				n, baseline, slack, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
