package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	heavykeeper "repro"
	"repro/client"
	"repro/internal/collector"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/xrand"
)

// HealthState is the aggregator's judgment of one hkd node, a three-state
// machine with hysteresis so one dropped fetch doesn't flap the global
// answer in and out of "degraded":
//
//	healthy --SuspectAfter consecutive failures--> suspect
//	suspect --DownAfter total consecutive failures--> down
//	suspect --RecoverAfter consecutive successes--> healthy
//	down    --one success--> suspect (must still earn healthy)
//
// Entering suspect already backs collection off; only down excludes the
// node from the coverage fraction. The asymmetry (one failure is enough
// to suspect, several successes to trust again) mirrors the hkd server's
// degraded-mode exit hysteresis.
type HealthState int32

const (
	Healthy HealthState = iota
	Suspect
	Down
)

// String returns the lowercase state name used in JSON and metrics.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int32(h))
	}
}

// Aggregator defaults. The health thresholds are deliberately quick to
// suspect and slow to trust: Suspect after the first failure, Down after
// three in a row, Healthy again only after two consecutive successes.
const (
	DefaultInterval     = 2 * time.Second
	DefaultTimeout      = 5 * time.Second
	DefaultBackoffBase  = 100 * time.Millisecond
	DefaultBackoffMax   = 5 * time.Second
	DefaultSuspectAfter = 1
	DefaultDownAfter    = 3
	DefaultRecoverAfter = 2
)

// Config parameterizes an Aggregator.
type Config struct {
	// Nodes is the hkd member list: HTTP base URLs ("http://host:port")
	// or bare "host:port" addresses. Required, at least one.
	Nodes []string
	// Policy selects the fold. Max treats the nodes as replicas — every
	// packet of a flow reached each node that owns it, so per-node counts
	// are duplicates and the global count is the per-flow maximum; this is
	// the ring-replicated deployment and is exact under single-node loss.
	// Sum treats the nodes as partitions (disjoint traffic) and folds the
	// raw same-seed sketches bucket by bucket via Merge, recovering flows
	// spread too thin for any single node's report.
	Policy collector.Policy
	// Interval is the per-node collection cadence while healthy (default
	// 2s). Failures back off exponentially from BackoffBase to BackoffMax
	// with ±50% jitter instead.
	Interval time.Duration
	// Timeout bounds one snapshot fetch end to end, connect through body
	// (default 5s) — a stalled node must not wedge its collection loop.
	Timeout time.Duration
	// BackoffBase/BackoffMax shape the failure backoff (defaults 100ms/5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// SuspectAfter/DownAfter/RecoverAfter are the health-machine
	// thresholds, in consecutive failures (respectively successes); zero
	// selects the defaults 1/3/2.
	SuspectAfter int
	DownAfter    int
	RecoverAfter int
	// Live requests ?live=1 snapshots (serialized on demand) instead of
	// the node's newest on-disk generation. Fresh answers for a live
	// cluster; leave false to observe exactly what would survive a crash.
	Live bool
	// Seed parameterizes the backoff jitter (deterministic in tests).
	Seed uint64
	// Client performs the fetches; nil builds one from Timeout. Tests
	// inject fault-wrapped transports here. It is handed to the SDK
	// query client wholesale, so custom round-trippers see every fetch.
	Client *http.Client
	// Token authenticates snapshot fetches against token-protected hkd
	// members (sent as a bearer token by the SDK client).
	Token string
	// CACertFile trusts the PEM certificate(s) in this file for members
	// serving their API over TLS.
	CACertFile string
	// Logger receives structured operational logs (component=cluster).
	// Nil falls back to Logf; when both are nil logs are discarded.
	Logger *slog.Logger
	// Logf receives printf-style log lines when Logger is nil — the
	// legacy seam the chaos tests hook.
	Logf func(format string, args ...any)
}

// node is the aggregator's per-member record: identity, health machine
// and the last-good snapshot it answers from while the member is away.
type node struct {
	name string // as configured, the stable identity in stats and metrics
	url  string // resolved base URL
	api  *client.Client
	lat  obs.Histogram // collect latency: fetch + CRC verification

	mu          sync.Mutex
	state       HealthState
	consecFails int
	consecOKs   int
	lastGood    []byte    // newest verified snapshot envelope
	lastFetch   time.Time // when lastGood was fetched
	lastSeq     string    // X-Snapshot-Seq of lastGood, "" for live serves
	collects    uint64    // successful fetches
	failures    uint64    // failed fetches
	transitions uint64    // health-state changes
}

// Aggregator maintains the member list, collects snapshots on a per-node
// loop, and folds the last-good set into the global top-k on demand. It
// is the collector of the paper's footnote-2 deployment, hardened for
// partial failure: a dead member costs staleness and coverage, never an
// error, and the HTTP tier (Handler) annotates every answer with both so
// callers can tell a degraded global answer from a complete one.
type Aggregator struct {
	cfg     Config
	nodes   []*node
	log     *slog.Logger // component=cluster
	started time.Time

	stop chan struct{}
	done sync.WaitGroup

	// foldMu serializes folds; folds decode O(sketch) bytes, so concurrent
	// /topk storms should share one result rather than decode in parallel.
	foldMu sync.Mutex
}

// New validates cfg and returns an Aggregator. Start launches collection.
func New(cfg Config) (*Aggregator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: aggregator needs at least one node")
	}
	if cfg.Policy != collector.Sum && cfg.Policy != collector.Max {
		return nil, fmt.Errorf("cluster: unknown fold policy %d", int(cfg.Policy))
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.SuspectAfter == 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.DownAfter == 0 {
		cfg.DownAfter = DefaultDownAfter
	}
	if cfg.RecoverAfter == 0 {
		cfg.RecoverAfter = DefaultRecoverAfter
	}
	if cfg.Interval < 0 || cfg.Timeout < 0 || cfg.BackoffBase < 0 || cfg.BackoffMax < cfg.BackoffBase {
		return nil, fmt.Errorf("cluster: invalid timing (interval %v, timeout %v, backoff %v..%v)",
			cfg.Interval, cfg.Timeout, cfg.BackoffBase, cfg.BackoffMax)
	}
	if cfg.SuspectAfter < 1 || cfg.DownAfter < cfg.SuspectAfter || cfg.RecoverAfter < 1 {
		return nil, fmt.Errorf("cluster: invalid health thresholds (suspect %d, down %d, recover %d)",
			cfg.SuspectAfter, cfg.DownAfter, cfg.RecoverAfter)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.Timeout}
	}
	base := cfg.Logger
	if base == nil {
		base = obs.LogfLogger(cfg.Logf) // discards when Logf is nil too
	}
	a := &Aggregator{
		cfg:     cfg,
		log:     obs.Component(base, "cluster"),
		started: time.Now(),
		stop:    make(chan struct{}),
	}
	seen := map[string]struct{}{}
	for _, raw := range cfg.Nodes {
		if raw == "" {
			return nil, errors.New("cluster: empty node address")
		}
		if _, dup := seen[raw]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", raw)
		}
		seen[raw] = struct{}{}
		url := raw
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		opts := []client.Option{client.WithHTTPClient(cfg.Client)}
		if cfg.Token != "" {
			opts = append(opts, client.WithToken(cfg.Token))
		}
		if cfg.CACertFile != "" {
			opts = append(opts, client.WithCACertFile(cfg.CACertFile))
		}
		api, err := client.New(url, opts...)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", raw, err)
		}
		a.nodes = append(a.nodes, &node{name: raw, url: strings.TrimRight(url, "/"), api: api})
	}
	return a, nil
}

// Start launches one collection loop per node. Each loop makes its first
// fetch immediately, so a freshly started aggregator converges after one
// round trip per healthy node.
func (a *Aggregator) Start() {
	for i, n := range a.nodes {
		a.done.Add(1)
		go a.collectLoop(n, xrand.NewSplitMix64(a.cfg.Seed+uint64(i)))
	}
}

// Stop terminates the collection loops and waits for them to exit. The
// last-good state remains queryable after Stop.
func (a *Aggregator) Stop() {
	close(a.stop)
	a.done.Wait()
}

// collectLoop drives one node: fetch, apply the health machine, sleep
// Interval while healthy or an exponentially backed-off, jittered delay
// while failing, until Stop.
func (a *Aggregator) collectLoop(n *node, rng *xrand.SplitMix64) {
	defer a.done.Done()
	for {
		err := a.collectOnce(n)
		delay := a.nextDelay(n, rng, err)
		select {
		case <-a.stop:
			return
		case <-time.After(delay):
		}
	}
}

// nextDelay picks the sleep before n's next fetch: the steady cadence
// after a success, exponential backoff with ±50% jitter after a failure
// (so a dead node isn't hammered, and restarts aren't greeted by every
// aggregator loop at once).
func (a *Aggregator) nextDelay(n *node, rng *xrand.SplitMix64, lastErr error) time.Duration {
	if lastErr == nil {
		return a.cfg.Interval
	}
	n.mu.Lock()
	fails := n.consecFails
	n.mu.Unlock()
	d := a.cfg.BackoffBase
	for i := 1; i < fails && d < a.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > a.cfg.BackoffMax {
		d = a.cfg.BackoffMax
	}
	// Jitter to d/2 + [0, d): expected d, never zero.
	return d/2 + time.Duration(rng.Next()%uint64(d))
}

// CollectNow fetches from every node once, concurrently, and returns when
// all fetches have settled — the deterministic collection step tests and
// the smoke harness use instead of waiting out the cadence. It runs the
// same fetch+health path as the background loops.
func (a *Aggregator) CollectNow() {
	var wg sync.WaitGroup
	for _, n := range a.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			a.collectOnce(n)
		}(n)
	}
	wg.Wait()
}

// collectOnce fetches one snapshot from n, verifies the CRC envelope end
// to end before trusting a byte, and feeds the outcome to the health
// machine. The fetched bytes replace n's last-good snapshot only after
// verification — a torn serve can never overwrite good state.
//
// Each collect carries its own request ID: the SDK stamps it as
// X-Request-Id on the fan-out fetch and the hkd member access-logs it,
// so one logical collection is greppable across both processes.
func (a *Aggregator) collectOnce(n *node) error {
	reqID := obs.NewRequestID()
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.Timeout)
	defer cancel()
	ctx = obs.WithRequestID(ctx, reqID)
	start := time.Now()
	body, seq, err := n.api.Snapshot(ctx, a.cfg.Live)
	if err == nil {
		if verr := heavykeeper.VerifySnapshot(bytes.NewReader(body)); verr != nil {
			err = fmt.Errorf("snapshot failed verification: %w", verr)
		}
	}
	d := time.Since(start)
	n.lat.Observe(d)
	if err != nil {
		a.log.Debug("collect failed", "request_id", reqID, "node", n.name, "duration_us", d.Microseconds(), "err", err)
		return a.recordFailure(n, err)
	}
	a.log.Debug("collect", "request_id", reqID, "node", n.name, "duration_us", d.Microseconds(), "seq", seq, "bytes", len(body))
	a.recordSuccess(n, body, seq)
	return nil
}

// recordFailure advances the health machine on a failed fetch.
func (a *Aggregator) recordFailure(n *node, err error) error {
	n.mu.Lock()
	n.failures++
	n.consecFails++
	n.consecOKs = 0
	prev := n.state
	switch {
	case n.consecFails >= a.cfg.DownAfter:
		n.state = Down
	case n.consecFails >= a.cfg.SuspectAfter:
		if n.state == Healthy {
			n.state = Suspect
		}
	}
	changed := n.state != prev
	if changed {
		n.transitions++
	}
	state := n.state
	n.mu.Unlock()
	if changed {
		a.log.Warn("node health transition", "node", n.name, "from", prev.String(), "to", state.String(), "err", err)
	}
	return err
}

// recordSuccess stores the verified snapshot and advances the health
// machine on a successful fetch. Down demotes only to Suspect — a node
// must string RecoverAfter successes together before it counts toward
// coverage again (hysteresis against a flapping member).
func (a *Aggregator) recordSuccess(n *node, body []byte, seq string) {
	n.mu.Lock()
	n.collects++
	n.consecFails = 0
	n.consecOKs++
	n.lastGood = body
	n.lastFetch = time.Now()
	n.lastSeq = seq
	prev := n.state
	switch n.state {
	case Down:
		n.state = Suspect
		n.consecOKs = 1
	case Suspect:
		if n.consecOKs >= a.cfg.RecoverAfter {
			n.state = Healthy
		}
	}
	changed := n.state != prev
	if changed {
		n.transitions++
	}
	state := n.state
	n.mu.Unlock()
	if changed {
		a.log.Info("node health transition", "node", n.name, "from", prev.String(), "to", state.String())
	}
}

// NodeStatus is one member's externally visible condition.
type NodeStatus struct {
	Name             string  `json:"name"`
	State            string  `json:"state"`
	StalenessSeconds float64 `json:"staleness_seconds"` // age of last-good data; -1 before any
	SnapshotSeq      string  `json:"snapshot_seq,omitempty"`
	Collects         uint64  `json:"collects"`
	Failures         uint64  `json:"failures"`
	Transitions      uint64  `json:"transitions"`
	HasData          bool    `json:"has_data"`
}

// Status reports every member's condition plus the coverage fraction:
// the share of members currently in the Healthy state. Coverage < 1
// means the global answer leans on last-good (stale) data for at least
// one vantage point.
func (a *Aggregator) Status() (nodes []NodeStatus, coverage float64) {
	healthy := 0
	now := time.Now()
	for _, n := range a.nodes {
		n.mu.Lock()
		st := NodeStatus{
			Name:             n.name,
			State:            n.state.String(),
			StalenessSeconds: -1,
			SnapshotSeq:      n.lastSeq,
			Collects:         n.collects,
			Failures:         n.failures,
			Transitions:      n.transitions,
			HasData:          n.lastGood != nil,
		}
		if !n.lastFetch.IsZero() {
			st.StalenessSeconds = now.Sub(n.lastFetch).Seconds()
		}
		if n.state == Healthy {
			healthy++
		}
		n.mu.Unlock()
		nodes = append(nodes, st)
	}
	return nodes, float64(healthy) / float64(len(a.nodes))
}

// GlobalTopK folds every member's last-good snapshot into the global
// top-k. Members without any data yet contribute nothing (and are visible
// as HasData=false in Status); a fold over zero snapshots returns an
// empty report, not an error — the degraded-answer contract is that the
// caller learns about gaps from coverage and staleness, never from a
// refusal to answer.
func (a *Aggregator) GlobalTopK() ([]heavykeeper.Flow, error) {
	a.foldMu.Lock()
	defer a.foldMu.Unlock()
	// Snapshot the byte slices under each node lock; decode outside.
	var bodies [][]byte
	for _, n := range a.nodes {
		n.mu.Lock()
		if n.lastGood != nil {
			bodies = append(bodies, n.lastGood)
		}
		n.mu.Unlock()
	}
	if len(bodies) == 0 {
		return nil, nil
	}
	sums := make([]heavykeeper.Summarizer, 0, len(bodies))
	for _, b := range bodies {
		s, err := heavykeeper.ReadSnapshot(bytes.NewReader(b))
		if err != nil {
			// Can't happen for bytes that passed VerifySnapshot + a CRC
			// over the container; surface it rather than silently drop.
			return nil, fmt.Errorf("cluster: decoding stored snapshot: %w", err)
		}
		sums = append(sums, s)
	}
	switch a.cfg.Policy {
	case collector.Max:
		return foldMax(sums)
	default:
		return foldSum(sums)
	}
}

// foldMax folds replica summaries: every packet of a flow reached each
// replica that owns it, so candidate counts are duplicates and the
// per-flow maximum reconstructs the true count. Exact whenever at least
// one replica per flow survives, which is precisely the ring's guarantee
// under single-node loss.
func foldMax(sums []heavykeeper.Summarizer) ([]heavykeeper.Flow, error) {
	k := 0
	reports := make([][]metrics.Entry, 0, len(sums))
	for _, s := range sums {
		if s.K() > k {
			k = s.K()
		}
		var rep []metrics.Entry
		for _, f := range s.List() {
			rep = append(rep, metrics.Entry{Key: string(f.ID), Count: f.Count})
		}
		reports = append(reports, rep)
	}
	merged, err := collector.MergeReports(k, collector.Max, reports...)
	if err != nil {
		return nil, err
	}
	out := make([]heavykeeper.Flow, len(merged))
	for i, e := range merged {
		out[i] = heavykeeper.Flow{ID: []byte(e.Key), Count: e.Count}
	}
	return out, nil
}

// foldSum folds partition sketches bucket by bucket via the public Merge
// path. The first decoded summarizer is a throwaway copy, so mutating it
// as the accumulator is safe.
func foldSum(sums []heavykeeper.Summarizer) ([]heavykeeper.Flow, error) {
	acc := sums[0]
	for _, s := range sums[1:] {
		if err := acc.Merge(s); err != nil {
			return nil, fmt.Errorf("cluster: folding snapshots: %w", err)
		}
	}
	return acc.List(), nil
}
