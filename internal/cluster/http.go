package cluster

import (
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/collector"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// The aggregator's HTTP API mirrors hkd's shape so existing tooling (the
// hkbench verifier, curl muscle memory) works against either tier, with
// one addition everywhere: degraded-answer annotations. Every /topk and
// /stats response carries the coverage fraction and per-node staleness,
// and /healthz speaks 503 whenever coverage < 1, so a caller can always
// tell a complete global answer from one leaning on last-good data.
//
//	GET /topk?n=K  global top-n flows + coverage + per-node status
//	GET /stats     aggregator counters, health machine states, staleness
//	GET /healthz   JSON liveness; 200 at full coverage, 503 + Retry-After otherwise
//	GET /metrics   Prometheus text (hkagg_* series)
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topk", a.handleTopK)
	mux.HandleFunc("GET /stats", a.handleStats)
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	return a.withObs(mux)
}

// withObs echoes (or assigns) the X-Request-Id header and access-logs
// every aggregator request, mirroring hkd's middleware so one global
// query is traceable across tiers.
func (a *Aggregator) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(obs.WithRequestID(r.Context(), id)))
		a.log.Debug("http request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"duration_us", time.Since(start).Microseconds())
	})
}

// flowJSON matches hkd's /topk flow encoding: id hex, count decimal.
type flowJSON struct {
	ID    string `json:"id"`
	Count uint64 `json:"count"`
}

// globalTopKResponse is the aggregator's /topk document.
type globalTopKResponse struct {
	Coverage float64      `json:"coverage"`
	Nodes    []NodeStatus `json:"nodes"`
	Flows    []flowJSON   `json:"flows"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (a *Aggregator) handleTopK(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	flows, err := a.GlobalTopK()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if n > 0 && len(flows) > n {
		flows = flows[:n]
	}
	nodes, coverage := a.Status()
	resp := globalTopKResponse{Coverage: coverage, Nodes: nodes, Flows: make([]flowJSON, len(flows))}
	for i, f := range flows {
		resp.Flows[i] = flowJSON{ID: hex.EncodeToString(f.ID), Count: f.Count}
	}
	writeJSON(w, resp)
}

// StatsSchemaVersion is the schema_version stamped into the /stats and
// /healthz JSON documents, matching hkd's versioning convention so SDK
// decoding can evolve against either tier.
const StatsSchemaVersion = 2

// statsResponse is the aggregator's /stats document.
type statsResponse struct {
	SchemaVersion int          `json:"schema_version"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Policy        string       `json:"policy"`
	Coverage      float64      `json:"coverage"`
	NodesTotal    int          `json:"nodes_total"`
	NodesHealthy  int          `json:"nodes_healthy"`
	Nodes         []NodeStatus `json:"nodes"`
}

func (a *Aggregator) statsSnapshot() statsResponse {
	nodes, coverage := a.Status()
	healthy := 0
	for _, n := range nodes {
		if n.State == Healthy.String() {
			healthy++
		}
	}
	policy := "sum"
	if a.cfg.Policy == collector.Max {
		policy = "max"
	}
	return statsResponse{
		SchemaVersion: StatsSchemaVersion,
		UptimeSeconds: time.Since(a.started).Seconds(),
		Policy:        policy,
		Coverage:      coverage,
		NodesTotal:    len(nodes),
		NodesHealthy:  healthy,
		Nodes:         nodes,
	}
}

func (a *Aggregator) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, a.statsSnapshot())
}

// healthzResponse is the /healthz JSON document, schema-versioned like
// hkd's so the SDK decodes either tier.
type healthzResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Status        string `json:"status"`
}

// handleHealthz reports cluster-level health: 200 only at full coverage.
// Retry-After is the collection interval — one more cadence is the
// soonest the picture can improve.
func (a *Aggregator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	_, coverage := a.Status()
	if coverage < 1 {
		retry := int64(a.cfg.Interval / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(retry, 10))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(healthzResponse{SchemaVersion: StatsSchemaVersion, Status: "degraded"})
		return
	}
	writeJSON(w, healthzResponse{SchemaVersion: StatsSchemaVersion, Status: "ok"})
}

func (a *Aggregator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := a.statsSnapshot()
	var p metrics.PromText
	p.Gauge("hkagg_uptime_seconds", "Seconds since the aggregator started.", st.UptimeSeconds)
	p.Gauge("hkagg_nodes_total", "Configured hkd members.", float64(st.NodesTotal))
	p.Gauge("hkagg_nodes_healthy", "Members currently in the healthy state.", float64(st.NodesHealthy))
	p.Gauge("hkagg_coverage", "Healthy members / total members; < 1 means degraded answers.", st.Coverage)
	for _, n := range st.Nodes {
		labels := map[string]string{"node": n.Name}
		p.CounterLabeled("hkagg_collects_total", "Successful snapshot collections.", labels, float64(n.Collects))
		p.CounterLabeled("hkagg_collect_failures_total", "Failed snapshot collections.", labels, float64(n.Failures))
		p.CounterLabeled("hkagg_health_transitions_total", "Health-machine state changes.", labels, float64(n.Transitions))
		p.GaugeLabeled("hkagg_staleness_seconds", "Age of the member's last-good snapshot (-1 before any).", labels, n.StalenessSeconds)
		state := 0.0
		switch n.State {
		case Suspect.String():
			state = 1
		case Down.String():
			state = 2
		}
		p.GaugeLabeled("hkagg_node_state", "Health state: 0 healthy, 1 suspect, 2 down.", labels, state)
	}
	bounds := obs.PromBounds()
	for _, n := range a.nodes {
		sn := n.lat.Snapshot()
		p.Histogram("hkagg_collect_seconds", "Per-node snapshot collect latency (fetch + CRC verify).",
			map[string]string{"node": n.name}, bounds, sn.PromCumulative(), sn.SumSeconds(), sn.Count)
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	p.WriteTo(w)
}
