package cluster

// Multi-node chaos: the aggregator's acceptance test. Each seeded run
// boots a 3-node hkd cluster with MaxReplica=2 ring-replicated ingest,
// collects through a fault-injecting HTTP transport (request errors,
// stalls past the fetch timeout, truncated snapshot bodies), kills one
// node mid-epoch, keeps ingesting into the survivors, then restarts the
// victim from its shutdown snapshot and waits for it to rejoin. The
// invariants under test are the tentpole's core claims:
//
//   - killing any one node never drops a true top-k flow from the global
//     answer, and with the Max fold the surviving replica keeps every
//     count exact — even for traffic ingested while the victim is down;
//   - degradation is observable (coverage < 1, victim down, staleness
//     measured) but never an error or an empty answer;
//   - a restarted node restores from its snapshot, rejoins through the
//     recovery hysteresis, and coverage returns to 1;
//   - per-node counters stay consistent through the whole lifecycle;
//   - nothing leaks (TestMain runs chaos.LeakCheck over the package).
//
// Every decision flows from the sub-test seed, so a failing seed is a
// one-line repro: go test -run 'TestClusterChaos/seed-7' ./internal/cluster

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/collector"
	"repro/server"
)

const chaosSeeds = 16

// startNodeAt boots an hkd member pinned to explicit addresses with a
// snapshot path, restoring prior state when any exists. Pinned restarts
// race the kernel's ephemeral-port reuse, so binding retries briefly.
func startNodeAt(t *testing.T, tcpAddr, httpAddr, snapPath string) *server.Server {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 40; attempt++ {
		sum, err := server.LoadSnapshot(snapPath)
		if err != nil {
			t.Fatalf("LoadSnapshot(%s): %v", snapPath, err)
		}
		if sum == nil {
			sum = newNodeSummarizer()
		}
		srv, err := server.New(server.Config{
			Summarizer:   sum,
			TCPAddr:      tcpAddr,
			HTTPAddr:     httpAddr,
			SnapshotPath: snapPath,
		})
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		if lastErr = srv.Start(); lastErr == nil {
			t.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			})
			return srv
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("could not bind %s/%s: %v", tcpAddr, httpAddr, lastErr)
	return nil
}

// collectUntil drives CollectNow rounds until cond holds, failing the
// test when it never does within the deadline. Chaos collection is
// probabilistic per round but must always converge.
func collectUntil(t *testing.T, a *Aggregator, what string, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for rounds := 0; ; rounds++ {
		a.CollectNow()
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			st, coverage := a.Status()
			t.Fatalf("never converged: %s (%d rounds, coverage %.2f, nodes %+v)", what, rounds, coverage, st)
		}
	}
}

// assertGlobalExact folds the global top-k and checks every true flow is
// present with its exact count — the Max-fold guarantee whenever at
// least one replica per flow holds the flow's full history.
func assertGlobalExact(t *testing.T, a *Aggregator, truth map[string]uint64, phase string) {
	t.Helper()
	flows, err := a.GlobalTopK()
	if err != nil {
		t.Fatalf("%s: GlobalTopK: %v", phase, err)
	}
	got := map[string]uint64{}
	for _, f := range flows {
		got[string(f.ID)] = f.Count
	}
	for flow, want := range truth {
		if got[flow] != want {
			t.Errorf("%s: flow %s global count %d, truth %d", phase, flow, got[flow], want)
		}
	}
}

// globalMatches reports whether the fold currently equals truth, for use
// as a convergence condition before the hard assertion.
func globalMatches(a *Aggregator, truth map[string]uint64) bool {
	flows, err := a.GlobalTopK()
	if err != nil {
		return false
	}
	got := map[string]uint64{}
	for _, f := range flows {
		got[string(f.ID)] = f.Count
	}
	for flow, want := range truth {
		if got[flow] != want {
			return false
		}
	}
	return true
}

func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos suite skipped in -short mode")
	}
	for seed := uint64(0); seed < chaosSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			chaosRun(t, seed)
		})
	}
}

func chaosRun(t *testing.T, seed uint64) {
	dir := t.TempDir()
	snapPath := func(i int) string { return filepath.Join(dir, fmt.Sprintf("node%d.hks", i)) }
	nodes := make([]*server.Server, 3)
	for i := range nodes {
		nodes[i] = startNodeAt(t, "127.0.0.1:0", "127.0.0.1:0", snapPath(i))
	}
	urls := nodeURLs(nodes)
	ring, err := NewRing(RingConfig{MaxReplica: 2, Seed: seed}, urls)
	if err != nil {
		t.Fatal(err)
	}

	// Epoch 1: replicated ingest of a skewed flow set, counts varied by
	// seed so distinct seeds exercise distinct sketch states.
	wave1 := testFlows(8, 120+int(seed%5)*17)
	truth := replicatedIngest(t, ring, nodes, wave1)

	// Collection runs through a seed-driven fault plan: outright request
	// errors, stalls that can outlive the fetch timeout, and snapshot
	// bodies truncated mid-stream (which the CRC envelope must catch).
	rng := chaos.NewRand(seed)
	tr := chaos.WrapTransport(nil, rng, chaos.TransportPlan{
		ErrorProb:    0.10 + float64(seed%3)*0.05,
		StallProb:    0.20,
		MaxStall:     400 * time.Millisecond,
		TruncateProb: 0.15 + float64(seed%2)*0.10,
		MaxKeep:      2048,
	})
	a, err := New(Config{
		Nodes:        urls,
		Policy:       collector.Max,
		Live:         true,
		Timeout:      250 * time.Millisecond,
		SuspectAfter: 1,
		DownAfter:    3,
		RecoverAfter: 2,
		Seed:         seed,
		Client:       &http.Client{Transport: tr},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Through the fault mix, every member must eventually hand over one
	// verified snapshot, and the fold must be exact.
	collectUntil(t, a, "all members collected through faults", 30*time.Second, func() bool {
		st, _ := a.Status()
		for _, n := range st {
			if !n.HasData {
				return false
			}
		}
		return globalMatches(a, truth)
	})
	assertGlobalExact(t, a, truth, "epoch 1 (faulty collection)")

	// Kill one node mid-epoch — which one is the seed's choice, so the
	// suite covers "killing ANY one node" across its 16 runs. Shutdown
	// persists a final snapshot generation for the later restart.
	victim := int(seed % 3)
	victimTCP := nodes[victim].TCPAddr().String()
	victimHTTP := nodes[victim].HTTPAddr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = nodes[victim].Shutdown(ctx)
	cancel()
	if err != nil {
		t.Fatalf("victim shutdown: %v", err)
	}

	// Epoch 2: survivors keep ingesting their replicated shares while the
	// victim is dead. Every flow keeps at least one replica that has seen
	// its full history, so the Max fold must stay exact for the combined
	// epochs even though the victim's last-good snapshot is now stale.
	wave2 := testFlows(8, 60+int(seed%7)*11)
	var buf [8]int
	perNode := make([][][]byte, len(nodes))
	for flow, count := range wave2 {
		truth[flow] += uint64(count)
		for i := 0; i < count; i++ {
			for _, n := range ring.Locations(buf[:0], []byte(flow)) {
				if n != victim {
					perNode[n] = append(perNode[n], []byte(flow))
				}
			}
		}
	}
	before := make([]uint64, len(nodes))
	for i, srv := range nodes {
		if i == victim || len(perNode[i]) == 0 {
			continue
		}
		before[i] = serverRecords(t, srv)
		sendKeys(t, srv.TCPAddr(), perNode[i])
	}
	for i, srv := range nodes {
		if i == victim || len(perNode[i]) == 0 {
			continue
		}
		waitIngested(t, srv, before[i]+uint64(len(perNode[i])))
	}

	collectUntil(t, a, "survivors re-collected and victim detected down", 30*time.Second, func() bool {
		st, coverage := a.Status()
		return st[victim].State == Down.String() && coverage < 1 && globalMatches(a, truth)
	})
	st, coverage := a.Status()
	if coverage >= 1 {
		t.Errorf("coverage = %.2f with a dead member", coverage)
	}
	if !st[victim].HasData || st[victim].StalenessSeconds < 0 {
		t.Errorf("victim's last-good snapshot not retained: %+v", st[victim])
	}
	assertGlobalExact(t, a, truth, "epoch 2 (one node dead)")

	// Restart the victim pinned to its old addresses; it restores the
	// shutdown snapshot and must rejoin through the recovery hysteresis
	// (down -> suspect -> healthy) until coverage returns to 1. Faults
	// stay off for this phase so rejoin latency is the machine's, not the
	// fault plan's.
	tr.SetPlan(chaos.TransportPlan{})
	nodes[victim] = startNodeAt(t, victimTCP, victimHTTP, snapPath(victim))
	collectUntil(t, a, "restarted victim rejoined", 30*time.Second, func() bool {
		_, coverage := a.Status()
		return coverage == 1
	})

	// The rejoined member serves its restored (pre-kill) state; the
	// surviving replicas still hold the full history, so the global
	// answer stays exact across the whole kill/restart cycle.
	assertGlobalExact(t, a, truth, "epoch 3 (victim rejoined)")

	// Counter consistency across the lifecycle: the victim walked
	// healthy->suspect->down->suspect->healthy (at least 4 transitions,
	// at least DownAfter consecutive failures recorded), every member
	// collected at least once, and staleness is measured everywhere.
	st, coverage = a.Status()
	if coverage != 1 {
		t.Errorf("final coverage = %.2f", coverage)
	}
	if st[victim].Transitions < 4 {
		t.Errorf("victim transitions = %d, want >= 4 for a full down/up cycle", st[victim].Transitions)
	}
	if st[victim].Failures < 3 {
		t.Errorf("victim failures = %d, want >= DownAfter", st[victim].Failures)
	}
	for i, n := range st {
		if n.Collects < 1 {
			t.Errorf("node %d collects = %d", i, n.Collects)
		}
		if n.State != Healthy.String() {
			t.Errorf("node %d final state = %s", i, n.State)
		}
		if !n.HasData || n.StalenessSeconds < 0 {
			t.Errorf("node %d missing data or staleness: %+v", i, n)
		}
	}
}

// serverRecords reads one node's ingested-record counter.
func serverRecords(t *testing.T, srv *server.Server) uint64 {
	t.Helper()
	var st struct {
		Server struct {
			Records uint64 `json:"records"`
		} `json:"server"`
	}
	getTestJSON(t, "http://"+srv.HTTPAddr().String()+"/stats", &st)
	return st.Server.Records
}

// TestClusterChaosLifecycleLoops runs the background collection loops
// (not CollectNow) against a faulty transport through a kill/restart,
// covering the loops' backoff path and clean Stop under load.
func TestClusterChaosLifecycleLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos lifecycle skipped in -short mode")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "node.hks")
	node := startNodeAt(t, "127.0.0.1:0", "127.0.0.1:0", snap)
	sendKeys(t, node.TCPAddr(), [][]byte{[]byte("alpha"), []byte("alpha"), []byte("beta")})
	waitIngested(t, node, 3)

	tr := chaos.WrapTransport(nil, chaos.NewRand(1234), chaos.TransportPlan{
		ErrorProb:    0.2,
		TruncateProb: 0.2,
	})
	a, err := New(Config{
		Nodes:       []string{node.HTTPAddr().String()},
		Policy:      collector.Max,
		Live:        true,
		Interval:    10 * time.Millisecond,
		Timeout:     250 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		Seed:        1234,
		Client:      &http.Client{Transport: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	defer a.Stop()

	waitStatus := func(what string, cond func(NodeStatus, float64) bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			st, coverage := a.Status()
			if cond(st[0], coverage) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("loops never reached: %s (node %+v)", what, st[0])
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitStatus("data collected through faults", func(n NodeStatus, _ float64) bool {
		return n.HasData && n.Collects >= 2
	})

	tcp, httpAddr := node.TCPAddr().String(), node.HTTPAddr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	node.Shutdown(ctx)
	cancel()
	waitStatus("victim marked down via backoff loop", func(n NodeStatus, coverage float64) bool {
		return n.State == Down.String() && coverage < 1
	})

	startNodeAt(t, tcp, httpAddr, snap)
	waitStatus("victim rejoined via loop", func(n NodeStatus, coverage float64) bool {
		return coverage == 1
	})

	flows, err := a.GlobalTopK()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]uint64{}
	for _, f := range flows {
		got[string(f.ID)] = f.Count
	}
	if got["alpha"] != 2 || got["beta"] != 1 {
		t.Errorf("restored global answer = %v", got)
	}
}
