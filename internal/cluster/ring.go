// Package cluster implements the fault-tolerant tier above hkd: a
// consistent-hash ring that replicates flow ingest across nodes, and an
// aggregator that pulls per-node sketch snapshots and folds them into a
// failure-aware global top-k (doc/cluster.md).
//
// The deployment model is the HeavyKeeper paper's footnote 2 — many
// measurement points, one collector — hardened for node death: every flow
// is routed to MaxReplica nodes, so losing any single node leaves at least
// one complete view of each flow, and the aggregator's Max-policy fold
// (see internal/collector) reconstructs the exact global answer from the
// survivors.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/hash"
)

// Ring defaults. MaxReplica 3 follows the hashring convention of the
// kraken exemplar (SNIPPETS.md): tolerate two losses per key at 3x ingest
// cost. VirtualNodes 64 keeps per-node load within a few percent of even
// for small clusters while the ring stays a few KB.
const (
	DefaultMaxReplica   = 3
	DefaultVirtualNodes = 64
)

// RingConfig parameterizes a Ring.
type RingConfig struct {
	// MaxReplica is the number of distinct nodes each key is routed to.
	// If MaxReplica >= the number of nodes, every node owns every key.
	// 0 means DefaultMaxReplica.
	MaxReplica int
	// VirtualNodes is the number of ring points per node; more points
	// smooth the load split at the cost of ring size. 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
	// Seed parameterizes both the point placement and the key hash. All
	// parties routing for the same cluster must agree on it, exactly like
	// a shared sketch seed.
	Seed uint64
}

// ringPoint is one virtual node: a position on the 64-bit ring and the
// index of the owning member.
type ringPoint struct {
	hash uint64
	node int
}

// Ring is an immutable consistent-hash ring over a fixed member list.
// Lookups walk clockwise from the key's position collecting the first
// MaxReplica distinct members. Because membership changes move only the
// keys adjacent to the affected points, a node that dies and rejoins (the
// chaos suite's kill/restart cycle) keeps its key ownership — the ring is
// not rebuilt around failures; replication absorbs them instead.
//
// Ring is safe for concurrent use: all state is fixed at construction.
type Ring struct {
	nodes    []string
	points   []ringPoint
	replicas int
	seed     uint64
}

// NewRing builds a ring over nodes. Node names must be non-empty and
// unique; order does not affect key placement (points are derived from
// names, not indices).
func NewRing(cfg RingConfig, nodes []string) (*Ring, error) {
	if cfg.MaxReplica == 0 {
		cfg.MaxReplica = DefaultMaxReplica
	}
	if cfg.VirtualNodes == 0 {
		cfg.VirtualNodes = DefaultVirtualNodes
	}
	if cfg.MaxReplica < 1 {
		return nil, fmt.Errorf("cluster: MaxReplica must be >= 1, got %d", cfg.MaxReplica)
	}
	if cfg.VirtualNodes < 1 {
		return nil, fmt.Errorf("cluster: VirtualNodes must be >= 1, got %d", cfg.VirtualNodes)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	seen := make(map[string]struct{}, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if _, dup := seen[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = struct{}{}
	}
	r := &Ring{
		nodes:    append([]string(nil), nodes...),
		points:   make([]ringPoint, 0, len(nodes)*cfg.VirtualNodes),
		replicas: cfg.MaxReplica,
		seed:     cfg.Seed,
	}
	for i, n := range r.nodes {
		// One walk of the name, then derive each virtual point from the
		// well-mixed base — same derive pattern as the sketch hot path.
		base := hash.Sum64(r.seed, []byte(n))
		for v := 0; v < cfg.VirtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash.Sum64Uint64(base, uint64(v)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Full-width 64-bit collisions are vanishingly rare; break them by
		// node so the ring order is deterministic regardless of input order.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the member list in construction order. Callers must not
// modify the returned slice.
func (r *Ring) Nodes() []string { return r.nodes }

// Replicas returns how many distinct nodes each key routes to: the
// configured MaxReplica clamped to the cluster size.
func (r *Ring) Replicas() int {
	if r.replicas > len(r.nodes) {
		return len(r.nodes)
	}
	return r.replicas
}

// Locations appends the indices (into Nodes) of the replica set for key to
// dst and returns it. The first index is the key's primary owner; the rest
// follow in ring order. Reusing dst across calls makes the per-packet
// routing step allocation-free in the bench fan-out path.
func (r *Ring) Locations(dst []int, key []byte) []int {
	return r.locations(dst, hash.Sum64(r.seed, key))
}

// LocationsHashed is Locations for a key hashed by the caller (with the
// ring's seed), for paths that already paid the key walk.
func (r *Ring) LocationsHashed(dst []int, keyHash uint64) []int {
	return r.locations(dst, keyHash)
}

func (r *Ring) locations(dst []int, kh uint64) []int {
	want := r.Replicas()
	// First point clockwise of the key, wrapping at the top of the ring.
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= kh
	})
	for i := 0; len(dst) < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !containsInt(dst, p.node) {
			dst = append(dst, p.node)
		}
	}
	return dst
}

// Owns reports whether node (an index into Nodes) is in key's replica set.
func (r *Ring) Owns(node int, key []byte) bool {
	var buf [DefaultMaxReplica]int
	for _, n := range r.locations(buf[:0], hash.Sum64(r.seed, key)) {
		if n == node {
			return true
		}
	}
	return false
}

// containsInt is a linear scan; replica sets are tiny (typically 2-3).
func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
