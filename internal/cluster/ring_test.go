package cluster

import (
	"fmt"
	"testing"
)

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node-%d", i)
	}
	return nodes
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(RingConfig{}, nil); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRing(RingConfig{}, []string{"a", ""}); err == nil {
		t.Error("empty node name accepted")
	}
	if _, err := NewRing(RingConfig{}, []string{"a", "a"}); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := NewRing(RingConfig{MaxReplica: -1}, []string{"a"}); err == nil {
		t.Error("negative MaxReplica accepted")
	}
	if _, err := NewRing(RingConfig{VirtualNodes: -1}, []string{"a"}); err == nil {
		t.Error("negative VirtualNodes accepted")
	}
}

func TestRingDefaults(t *testing.T) {
	r, err := NewRing(RingConfig{}, testNodes(5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Replicas() != DefaultMaxReplica {
		t.Errorf("Replicas = %d want default %d", r.Replicas(), DefaultMaxReplica)
	}
	// MaxReplica >= cluster size: every node owns every key.
	r, err = NewRing(RingConfig{MaxReplica: 10}, testNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Replicas() != 3 {
		t.Errorf("clamped Replicas = %d want 3", r.Replicas())
	}
	locs := r.Locations(nil, []byte("any-key"))
	if len(locs) != 3 {
		t.Fatalf("Locations = %v want all 3 nodes", locs)
	}
}

func TestRingReplicaSetsDistinctAndDeterministic(t *testing.T) {
	r, err := NewRing(RingConfig{MaxReplica: 2, Seed: 7}, testNodes(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf [2]int
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("flow-%d", i))
		a := r.Locations(buf[:0], key)
		if len(a) != 2 || a[0] == a[1] {
			t.Fatalf("key %d: replica set %v not 2 distinct nodes", i, a)
		}
		b := r.Locations(nil, key)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("key %d: lookup not deterministic: %v vs %v", i, a, b)
		}
		if !r.Owns(a[0], key) || !r.Owns(a[1], key) {
			t.Fatalf("key %d: Owns disagrees with Locations %v", i, a)
		}
	}
}

func TestRingPlacementIgnoresMemberOrder(t *testing.T) {
	fwd := []string{"a", "b", "c", "d"}
	rev := []string{"d", "c", "b", "a"}
	r1, _ := NewRing(RingConfig{MaxReplica: 2, Seed: 3}, fwd)
	r2, _ := NewRing(RingConfig{MaxReplica: 2, Seed: 3}, rev)
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("flow-%d", i))
		a := r1.Locations(nil, key)
		b := r2.Locations(nil, key)
		for j := range a {
			if r1.Nodes()[a[j]] != r2.Nodes()[b[j]] {
				t.Fatalf("key %d: placement depends on member order: %v vs %v", i, a, b)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	const nodes, keys = 5, 20000
	r, err := NewRing(RingConfig{MaxReplica: 1, Seed: 11}, testNodes(nodes))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, nodes)
	for i := 0; i < keys; i++ {
		locs := r.Locations(nil, []byte(fmt.Sprintf("flow-%d", i)))
		counts[locs[0]]++
	}
	// With 64 virtual nodes the primary-owner split should be within ~2x
	// of even; we assert a loose band so the test is not placement-exact.
	want := keys / nodes
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %d owns %d keys, want within [%d, %d]", i, c, want/2, want*2)
		}
	}
}

// TestRingConsistency is the property that gives the ring its name: adding
// a node moves only the keys that now route to it — every key's replica
// set in the larger ring is either unchanged or differs only by the new
// node's insertion.
func TestRingConsistency(t *testing.T) {
	small, _ := NewRing(RingConfig{MaxReplica: 2, Seed: 5}, testNodes(4))
	big, _ := NewRing(RingConfig{MaxReplica: 2, Seed: 5}, testNodes(5))
	moved := 0
	const keys = 5000
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("flow-%d", i))
		a := small.Locations(nil, key)
		b := big.Locations(nil, key)
		for _, n := range b {
			if big.Nodes()[n] == "node-4" {
				continue // the new node may appear anywhere
			}
			if !containsName(small, a, big.Nodes()[n]) {
				t.Fatalf("key %d: node %s entered the replica set without node-4 joining it", i, big.Nodes()[n])
			}
		}
		if big.Nodes()[b[0]] != small.Nodes()[a[0]] {
			moved++
		}
	}
	// Roughly 1/5 of primaries should move to the new node, not ~all.
	if moved > keys/2 {
		t.Errorf("%d/%d primaries moved after adding one node; ring is not consistent", moved, keys)
	}
}

func containsName(r *Ring, locs []int, name string) bool {
	for _, n := range locs {
		if r.Nodes()[n] == name {
			return true
		}
	}
	return false
}

func BenchmarkRingLocations(b *testing.B) {
	r, _ := NewRing(RingConfig{MaxReplica: 2, Seed: 1}, testNodes(8))
	key := []byte("10.0.0.1:443->10.0.0.2:55221")
	var buf [2]int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Locations(buf[:0], key)
	}
}
