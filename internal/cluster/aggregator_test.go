package cluster

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	heavykeeper "repro"
	"repro/internal/collector"
	"repro/server"
	"repro/wire"
)

// newNodeSummarizer builds the summarizer every test node runs: same
// seed, so Sum-policy sketch folds are bucket-compatible across nodes.
func newNodeSummarizer() heavykeeper.Summarizer {
	return heavykeeper.MustNew(20, heavykeeper.WithConcurrency(),
		heavykeeper.WithSeed(42), heavykeeper.WithMemory(32<<10))
}

// startNode boots one hkd member on ephemeral loopback ports.
func startNode(t *testing.T, opts ...func(*server.Config)) *server.Server {
	t.Helper()
	cfg := server.Config{
		Summarizer: newNodeSummarizer(),
		TCPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
	}
	for _, o := range opts {
		o(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// sendKeys streams keys to a node's TCP ingest as one wire frame per 64.
func sendKeys(t *testing.T, addr net.Addr, keys [][]byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial %v: %v", addr, err)
	}
	defer conn.Close()
	var frame []byte
	for lo := 0; lo < len(keys); lo += 64 {
		hi := min(lo+64, len(keys))
		frame, err = wire.AppendFrame(frame[:0], keys[lo:hi], nil)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
}

// waitIngested polls a node's /stats until it has ingested want records.
func waitIngested(t *testing.T, srv *server.Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st struct {
			Server struct {
				Records uint64 `json:"records"`
			} `json:"server"`
		}
		resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/stats")
		if err == nil {
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if st.Server.Records >= want {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("node never ingested %d records", want)
}

// replicatedIngest routes every key through the ring to its replica set
// and returns the exact per-flow truth counts. keysFor[i] collects node
// i's share for one sendKeys call per node.
func replicatedIngest(t *testing.T, ring *Ring, nodes []*server.Server, flows map[string]int) map[string]uint64 {
	t.Helper()
	truth := map[string]uint64{}
	perNode := make([][][]byte, len(nodes))
	var buf [8]int
	for flow, count := range flows {
		truth[flow] = uint64(count)
		locs := ring.Locations(buf[:0], []byte(flow))
		for i := 0; i < count; i++ {
			for _, n := range locs {
				perNode[n] = append(perNode[n], []byte(flow))
			}
		}
	}
	var want []uint64
	for i, srv := range nodes {
		want = append(want, uint64(len(perNode[i])))
		sendKeys(t, srv.TCPAddr(), perNode[i])
	}
	for i, srv := range nodes {
		waitIngested(t, srv, want[i])
	}
	return truth
}

// testFlows builds a skewed flow set: flow-0 largest, descending.
func testFlows(n, base int) map[string]int {
	flows := map[string]int{}
	for i := 0; i < n; i++ {
		flows[fmt.Sprintf("flow-%02d", i)] = base - i*base/(n+1)
	}
	return flows
}

func nodeURLs(nodes []*server.Server) []string {
	urls := make([]string, len(nodes))
	for i, s := range nodes {
		urls[i] = s.HTTPAddr().String()
	}
	return urls
}

// TestAggregatorReplicatedFoldExact is the tentpole's core correctness
// claim: with ring-replicated ingest and the Max fold, the aggregator's
// global top-k equals the exact per-flow truth — every replica of a flow
// saw all of its packets, so the fold reconstructs true counts, not
// approximations of split ones.
func TestAggregatorReplicatedFoldExact(t *testing.T) {
	nodes := []*server.Server{startNode(t), startNode(t), startNode(t)}
	ring, err := NewRing(RingConfig{MaxReplica: 2, Seed: 9}, nodeURLs(nodes))
	if err != nil {
		t.Fatal(err)
	}
	truth := replicatedIngest(t, ring, nodes, testFlows(10, 300))

	a, err := New(Config{
		Nodes:  nodeURLs(nodes),
		Policy: collector.Max,
		Live:   true,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.CollectNow()
	flows, err := a.GlobalTopK()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]uint64{}
	for _, f := range flows {
		got[string(f.ID)] = f.Count
	}
	for flow, want := range truth {
		if got[flow] != want {
			t.Errorf("flow %s: global count %d, truth %d", flow, got[flow], want)
		}
	}
	if _, coverage := a.Status(); coverage != 1 {
		t.Errorf("coverage = %v with all nodes up", coverage)
	}
}

// TestAggregatorSumFold: partitioned (unreplicated) ingest with the Sum
// policy folds raw same-seed sketches via Merge; per-flow counts add up.
func TestAggregatorSumFold(t *testing.T) {
	nodes := []*server.Server{startNode(t), startNode(t)}
	var keys0, keys1 [][]byte
	for i := 0; i < 200; i++ {
		keys0 = append(keys0, []byte("shared-flow"))
	}
	for i := 0; i < 150; i++ {
		keys1 = append(keys1, []byte("shared-flow"))
	}
	keys1 = append(keys1, []byte("only-node1"))
	sendKeys(t, nodes[0].TCPAddr(), keys0)
	sendKeys(t, nodes[1].TCPAddr(), keys1)
	waitIngested(t, nodes[0], uint64(len(keys0)))
	waitIngested(t, nodes[1], uint64(len(keys1)))

	a, err := New(Config{Nodes: nodeURLs(nodes), Policy: collector.Sum, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	a.CollectNow()
	flows, err := a.GlobalTopK()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]uint64{}
	for _, f := range flows {
		got[string(f.ID)] = f.Count
	}
	if got["shared-flow"] != 350 {
		t.Errorf("summed count = %d want 350", got["shared-flow"])
	}
	if got["only-node1"] != 1 {
		t.Errorf("single-node flow = %d want 1", got["only-node1"])
	}
}

// TestAggregatorPartialFailure: killing one of three nodes degrades
// coverage and health but never the answer — the survivors still cover
// every flow (MaxReplica=2), and the dead node's last-good snapshot keeps
// answering for anything only it would have seen.
func TestAggregatorPartialFailure(t *testing.T) {
	nodes := []*server.Server{startNode(t), startNode(t), startNode(t)}
	ring, err := NewRing(RingConfig{MaxReplica: 2, Seed: 4}, nodeURLs(nodes))
	if err != nil {
		t.Fatal(err)
	}
	truth := replicatedIngest(t, ring, nodes, testFlows(10, 200))

	a, err := New(Config{
		Nodes:        nodeURLs(nodes),
		Policy:       collector.Max,
		Live:         true,
		Timeout:      2 * time.Second,
		DownAfter:    2,
		RecoverAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.CollectNow()

	// Kill node 0 hard.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	nodes[0].Shutdown(ctx)
	cancel()

	// Enough failed rounds to drive it to Down.
	a.CollectNow()
	a.CollectNow()

	statuses, coverage := a.Status()
	if coverage >= 1 {
		t.Errorf("coverage = %v after killing a node", coverage)
	}
	if statuses[0].State != Down.String() {
		t.Errorf("killed node state = %s want down", statuses[0].State)
	}
	if !statuses[0].HasData {
		t.Error("killed node's last-good snapshot was discarded")
	}
	if statuses[0].StalenessSeconds < 0 {
		t.Error("killed node has no staleness measurement")
	}

	flows, err := a.GlobalTopK()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]uint64{}
	for _, f := range flows {
		got[string(f.ID)] = f.Count
	}
	for flow, want := range truth {
		if got[flow] != want {
			t.Errorf("flow %s after node death: global count %d, truth %d", flow, got[flow], want)
		}
	}
}

// TestAggregatorHTTPSurface drives the handler tier: /topk carries
// coverage + flows, /stats the per-node machine, /healthz flips 200/503
// with Retry-After, /metrics exposes the hkagg_* series.
func TestAggregatorHTTPSurface(t *testing.T) {
	nodes := []*server.Server{startNode(t), startNode(t)}
	sendKeys(t, nodes[0].TCPAddr(), [][]byte{[]byte("f1"), []byte("f1"), []byte("f2")})
	waitIngested(t, nodes[0], 3)

	a, err := New(Config{Nodes: nodeURLs(nodes), Policy: collector.Max, Live: true, DownAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.CollectNow()
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()

	var top struct {
		Coverage float64      `json:"coverage"`
		Nodes    []NodeStatus `json:"nodes"`
		Flows    []struct {
			ID    string `json:"id"`
			Count uint64 `json:"count"`
		} `json:"flows"`
	}
	getTestJSON(t, ts.URL+"/topk", &top)
	if top.Coverage != 1 {
		t.Errorf("coverage = %v", top.Coverage)
	}
	if len(top.Flows) == 0 {
		t.Fatal("no flows in global /topk")
	}
	id, _ := hex.DecodeString(top.Flows[0].ID)
	if string(id) != "f1" || top.Flows[0].Count != 2 {
		t.Errorf("top flow = %s/%d want f1/2", id, top.Flows[0].Count)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz with full coverage = %d", resp.StatusCode)
	}

	// Degrade: kill node 1, collect until down.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	nodes[1].Shutdown(ctx)
	cancel()
	a.CollectNow()
	a.CollectNow()

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz degraded = %d want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded /healthz missing Retry-After")
	}

	var st statsResponse
	getTestJSON(t, ts.URL+"/stats", &st)
	if st.NodesHealthy != 1 || st.NodesTotal != 2 {
		t.Errorf("stats nodes = %d/%d want 1/2", st.NodesHealthy, st.NodesTotal)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, series := range []string{
		"hkagg_nodes_healthy 1",
		"hkagg_collect_failures_total",
		"hkagg_staleness_seconds",
		"hkagg_coverage 0.5",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}

// TestAggregatorHealthMachineHysteresis walks the full state machine
// against a fake member whose /snapshot can be switched between serving
// and failing: healthy -> suspect -> down -> suspect -> healthy, with
// RecoverAfter successes required before trust returns.
func TestAggregatorHealthMachineHysteresis(t *testing.T) {
	sum := newNodeSummarizer()
	sum.Add([]byte("flow"))
	var fail atomic.Bool
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		heavykeeper.WriteSnapshot(w, sum.(heavykeeper.SnapshotWriter))
	}))
	defer fake.Close()

	a, err := New(Config{
		Nodes:        []string{fake.URL},
		Policy:       collector.Max,
		SuspectAfter: 1,
		DownAfter:    3,
		RecoverAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	state := func() string {
		st, _ := a.Status()
		return st[0].State
	}
	a.CollectNow()
	if state() != "healthy" {
		t.Fatalf("initial state %s", state())
	}

	fail.Store(true)
	a.CollectNow()
	if state() != "suspect" {
		t.Errorf("after 1 failure: %s want suspect", state())
	}
	a.CollectNow()
	if state() != "suspect" {
		t.Errorf("after 2 failures: %s want suspect (down needs 3)", state())
	}
	a.CollectNow()
	if state() != "down" {
		t.Errorf("after 3 failures: %s want down", state())
	}

	fail.Store(false)
	a.CollectNow()
	if state() != "suspect" {
		t.Errorf("first success from down: %s want suspect (hysteresis)", state())
	}
	a.CollectNow()
	if state() != "healthy" {
		t.Errorf("after %d successes: %s want healthy", 2, state())
	}
	if _, coverage := a.Status(); coverage != 1 {
		t.Errorf("recovered coverage = %v", coverage)
	}
}

// TestAggregatorRejectsCorruptSnapshot: a member serving bytes that fail
// CRC verification is a collection failure, and the previous last-good
// snapshot survives.
func TestAggregatorRejectsCorruptSnapshot(t *testing.T) {
	sum := newNodeSummarizer()
	for i := 0; i < 50; i++ {
		sum.Add([]byte("flow"))
	}
	var corrupt atomic.Bool
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if corrupt.Load() {
			w.Write([]byte("HKC1 this is not a valid envelope"))
			return
		}
		heavykeeper.WriteSnapshot(w, sum.(heavykeeper.SnapshotWriter))
	}))
	defer fake.Close()

	a, err := New(Config{Nodes: []string{fake.URL}, Policy: collector.Max})
	if err != nil {
		t.Fatal(err)
	}
	a.CollectNow()
	corrupt.Store(true)
	a.CollectNow()

	st, _ := a.Status()
	if st[0].Failures != 1 {
		t.Errorf("corrupt serve not counted as failure: %+v", st[0])
	}
	flows, err := a.GlobalTopK()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 || string(flows[0].ID) != "flow" || flows[0].Count != 50 {
		t.Errorf("last-good answer lost after corrupt serve: %v", flows)
	}
}

// TestAggregatorValidation covers Config rejection paths.
func TestAggregatorValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no nodes":       {Policy: collector.Max},
		"empty node":     {Nodes: []string{""}},
		"duplicate node": {Nodes: []string{"a:1", "a:1"}},
		"bad policy":     {Nodes: []string{"a:1"}, Policy: collector.Policy(9)},
		"bad thresholds": {Nodes: []string{"a:1"}, SuspectAfter: 3, DownAfter: 1},
		"bad backoff":    {Nodes: []string{"a:1"}, BackoffBase: time.Second, BackoffMax: time.Millisecond},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestAggregatorLifecycle: Start/Stop cycles cleanly with a mix of live
// and dead members, and the loops make progress without CollectNow.
func TestAggregatorLifecycle(t *testing.T) {
	node := startNode(t)
	sendKeys(t, node.TCPAddr(), [][]byte{[]byte("x")})
	waitIngested(t, node, 1)
	a, err := New(Config{
		Nodes:    []string{node.HTTPAddr().String(), "127.0.0.1:1"}, // second is dead
		Policy:   collector.Max,
		Live:     true,
		Interval: 20 * time.Millisecond,
		Timeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := a.Status()
		if st[0].Collects >= 2 && st[1].Failures >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loops made no progress: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	a.Stop()
	// After Stop the last-good state still answers.
	flows, err := a.GlobalTopK()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Error("no answer after Stop")
	}
}

func getTestJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
