package cluster

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestMain holds the whole package — aggregator lifecycles, the chaos
// suite's kill/restart cycles, every httptest member — to the no-leak
// acceptance bar: any collection loop, fetch, or server goroutine left
// running after the full run fails it, even when no individual test
// checked.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	// Idle keep-alive connections from the tests' HTTP clients park a
	// goroutine each; they are the client's, not the aggregator's.
	http.DefaultClient.CloseIdleConnections()
	if err := chaos.LeakCheck(baseline, 4, 5*time.Second); err != nil && code == 0 {
		fmt.Fprintf(os.Stderr, "goroutine leak after test run: %v\n", err)
		code = 1
	}
	os.Exit(code)
}
