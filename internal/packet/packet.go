// Package packet parses and synthesizes the network packet headers the
// measurement pipeline consumes. The paper's OVS deployment (§VII) parses
// each incoming packet's flow identifier in the datapath before handing it
// to the user-space sketch; this package is that parsing step, implemented
// for Ethernet II / IPv4 / TCP-UDP — the header stack of the paper's
// traces.
//
// The extracted 5-tuple is laid out exactly as gen.IDFiveTuple (src IP,
// dst IP, src port, dst port, protocol = 13 bytes) so parsed traffic and
// synthetic traces hash identically.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes and offsets for the supported stack.
const (
	ethHeaderLen  = 14
	vlanHeaderLen = 4
	ipv4MinLen    = 20
	l4PortsLen    = 4

	etherTypeIPv4 = 0x0800
	etherTypeVLAN = 0x8100

	// ProtoTCP and ProtoUDP are the IPv4 protocol numbers with L4 ports.
	ProtoTCP = 6
	ProtoUDP = 17
)

// FiveTupleLen is the flow key length (matches gen.IDFiveTuple.Size()).
const FiveTupleLen = 13

// Parsing errors.
var (
	ErrTruncated    = errors.New("packet: truncated")
	ErrNotIPv4      = errors.New("packet: not IPv4")
	ErrBadIPHeader  = errors.New("packet: bad IPv4 header")
	ErrBadEtherType = errors.New("packet: unsupported ethertype")
)

// FiveTuple is a parsed flow identifier.
type FiveTuple struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Key encodes the tuple into the canonical 13-byte flow key, appending to
// dst (which may be nil).
func (ft FiveTuple) Key(dst []byte) []byte {
	dst = append(dst, ft.SrcIP[:]...)
	dst = append(dst, ft.DstIP[:]...)
	var p [4]byte
	binary.LittleEndian.PutUint16(p[0:2], ft.SrcPort)
	binary.LittleEndian.PutUint16(p[2:4], ft.DstPort)
	dst = append(dst, p[:]...)
	return append(dst, ft.Proto)
}

// KeyFromBytes decodes a canonical 13-byte key back into a FiveTuple.
func KeyFromBytes(key []byte) (FiveTuple, error) {
	if len(key) != FiveTupleLen {
		return FiveTuple{}, fmt.Errorf("packet: key length %d, want %d", len(key), FiveTupleLen)
	}
	var ft FiveTuple
	copy(ft.SrcIP[:], key[0:4])
	copy(ft.DstIP[:], key[4:8])
	ft.SrcPort = binary.LittleEndian.Uint16(key[8:10])
	ft.DstPort = binary.LittleEndian.Uint16(key[10:12])
	ft.Proto = key[12]
	return ft, nil
}

// String renders the tuple in the usual a.b.c.d:p -> a.b.c.d:p/proto form.
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d/%d",
		ft.SrcIP[0], ft.SrcIP[1], ft.SrcIP[2], ft.SrcIP[3], ft.SrcPort,
		ft.DstIP[0], ft.DstIP[1], ft.DstIP[2], ft.DstIP[3], ft.DstPort,
		ft.Proto)
}

// Parse extracts the 5-tuple from a raw Ethernet frame. It accepts plain
// Ethernet II and single-tagged 802.1Q frames carrying IPv4; TCP and UDP
// yield ports, any other IP protocol yields zero ports (the flow is then
// identified by addresses and protocol alone, as OVS does).
func Parse(frame []byte) (FiveTuple, error) {
	var ft FiveTuple
	if len(frame) < ethHeaderLen {
		return ft, ErrTruncated
	}
	etherType := binary.BigEndian.Uint16(frame[12:14])
	l3 := frame[ethHeaderLen:]
	if etherType == etherTypeVLAN {
		if len(frame) < ethHeaderLen+vlanHeaderLen {
			return ft, ErrTruncated
		}
		etherType = binary.BigEndian.Uint16(frame[16:18])
		l3 = frame[ethHeaderLen+vlanHeaderLen:]
	}
	if etherType != etherTypeIPv4 {
		return ft, ErrBadEtherType
	}
	return parseIPv4(l3)
}

// parseIPv4 extracts the 5-tuple from an IPv4 packet (no link header).
func parseIPv4(p []byte) (FiveTuple, error) {
	var ft FiveTuple
	if len(p) < ipv4MinLen {
		return ft, ErrTruncated
	}
	if p[0]>>4 != 4 {
		return ft, ErrNotIPv4
	}
	ihl := int(p[0]&0x0f) * 4
	if ihl < ipv4MinLen {
		return ft, ErrBadIPHeader
	}
	if len(p) < ihl {
		return ft, ErrTruncated
	}
	ft.Proto = p[9]
	copy(ft.SrcIP[:], p[12:16])
	copy(ft.DstIP[:], p[16:20])

	if ft.Proto != ProtoTCP && ft.Proto != ProtoUDP {
		return ft, nil
	}
	// Fragments past the first carry no L4 header.
	fragOffset := binary.BigEndian.Uint16(p[6:8]) & 0x1fff
	if fragOffset != 0 {
		return ft, nil
	}
	l4 := p[ihl:]
	if len(l4) < l4PortsLen {
		return ft, ErrTruncated
	}
	ft.SrcPort = binary.BigEndian.Uint16(l4[0:2])
	ft.DstPort = binary.BigEndian.Uint16(l4[2:4])
	return ft, nil
}

// ParseIPv4 extracts the 5-tuple from a bare IPv4 packet (no Ethernet
// header) — the shape of many capture formats.
func ParseIPv4(p []byte) (FiveTuple, error) { return parseIPv4(p) }

// Build synthesizes a minimal Ethernet II + IPv4 + TCP/UDP frame carrying
// the tuple, with payload bytes appended. It is the inverse of Parse, used
// by the vswitch tests and the trafficgen path to exercise the real parsing
// code instead of pre-extracted keys.
func Build(ft FiveTuple, payload []byte) []byte {
	hasL4 := ft.Proto == ProtoTCP || ft.Proto == ProtoUDP
	l4len := 0
	if hasL4 {
		l4len = 8 // ports + minimal stub (len/checksum or seq stub)
	}
	total := ethHeaderLen + ipv4MinLen + l4len + len(payload)
	f := make([]byte, total)
	// Ethernet: zero MACs, IPv4 ethertype.
	binary.BigEndian.PutUint16(f[12:14], etherTypeIPv4)
	ip := f[ethHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipv4MinLen+l4len+len(payload)))
	ip[8] = 64 // TTL
	ip[9] = ft.Proto
	copy(ip[12:16], ft.SrcIP[:])
	copy(ip[16:20], ft.DstIP[:])
	if hasL4 {
		l4 := ip[ipv4MinLen:]
		binary.BigEndian.PutUint16(l4[0:2], ft.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], ft.DstPort)
	}
	copy(f[ethHeaderLen+ipv4MinLen+l4len:], payload)
	return f
}
