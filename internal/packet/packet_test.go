package packet

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func sample() FiveTuple {
	return FiveTuple{
		SrcIP:   [4]byte{10, 1, 2, 3},
		DstIP:   [4]byte{192, 168, 0, 9},
		SrcPort: 443,
		DstPort: 51234,
		Proto:   ProtoTCP,
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	for _, proto := range []uint8{ProtoTCP, ProtoUDP} {
		ft := sample()
		ft.Proto = proto
		frame := Build(ft, []byte("payload"))
		got, err := Parse(frame)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		if got != ft {
			t.Errorf("round trip: got %+v want %+v", got, ft)
		}
	}
}

func TestBuildParseNonL4(t *testing.T) {
	ft := sample()
	ft.Proto = 1 // ICMP: no ports
	ft.SrcPort, ft.DstPort = 0, 0
	got, err := Parse(Build(ft, nil))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got != ft {
		t.Errorf("got %+v want %+v", got, ft)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i byte, sp, dp uint16, proto uint8) bool {
		ft := FiveTuple{
			SrcIP: [4]byte{a, b, c, d}, DstIP: [4]byte{e, g, h, i},
			SrcPort: sp, DstPort: dp, Proto: proto,
		}
		key := ft.Key(nil)
		if len(key) != FiveTupleLen {
			return false
		}
		back, err := KeyFromBytes(key)
		return err == nil && back == ft
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyFromBytesRejectsBadLength(t *testing.T) {
	if _, err := KeyFromBytes(make([]byte, 12)); err == nil {
		t.Error("12-byte key accepted")
	}
	if _, err := KeyFromBytes(make([]byte, 14)); err == nil {
		t.Error("14-byte key accepted")
	}
}

func TestParseVLAN(t *testing.T) {
	ft := sample()
	frame := Build(ft, nil)
	// Splice in a VLAN tag after the MACs.
	tagged := make([]byte, 0, len(frame)+4)
	tagged = append(tagged, frame[:12]...)
	tagged = append(tagged, 0x81, 0x00, 0x00, 0x2a) // TPID 8100, VID 42
	tagged = append(tagged, frame[12:]...)
	got, err := Parse(tagged)
	if err != nil {
		t.Fatalf("Parse(vlan): %v", err)
	}
	if got != ft {
		t.Errorf("got %+v want %+v", got, ft)
	}
}

func TestParseRejectsTruncated(t *testing.T) {
	frame := Build(sample(), nil)
	for _, n := range []int{0, 5, 13, 20, 30, len(frame) - len("") - 5} {
		if n >= len(frame) {
			continue
		}
		if _, err := Parse(frame[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestParseRejectsNonIPv4EtherType(t *testing.T) {
	frame := Build(sample(), nil)
	binary.BigEndian.PutUint16(frame[12:14], 0x86dd) // IPv6
	if _, err := Parse(frame); err != ErrBadEtherType {
		t.Errorf("err = %v want ErrBadEtherType", err)
	}
}

func TestParseRejectsIPv6Version(t *testing.T) {
	frame := Build(sample(), nil)
	frame[14] = 0x65 // version 6
	if _, err := Parse(frame); err != ErrNotIPv4 {
		t.Errorf("err = %v want ErrNotIPv4", err)
	}
}

func TestParseRejectsBadIHL(t *testing.T) {
	frame := Build(sample(), nil)
	frame[14] = 0x41 // IHL 1 word
	if _, err := Parse(frame); err != ErrBadIPHeader {
		t.Errorf("err = %v want ErrBadIPHeader", err)
	}
}

func TestParseIPOptions(t *testing.T) {
	// Hand-build an IPv4 header with IHL 6 (one option word).
	ft := sample()
	ip := make([]byte, 24+4)
	ip[0] = 0x46
	ip[9] = ft.Proto
	copy(ip[12:16], ft.SrcIP[:])
	copy(ip[16:20], ft.DstIP[:])
	binary.BigEndian.PutUint16(ip[24:26], ft.SrcPort)
	binary.BigEndian.PutUint16(ip[26:28], ft.DstPort)
	got, err := ParseIPv4(ip)
	if err != nil {
		t.Fatalf("ParseIPv4: %v", err)
	}
	if got != ft {
		t.Errorf("got %+v want %+v", got, ft)
	}
}

func TestFragmentHasNoPorts(t *testing.T) {
	frame := Build(sample(), nil)
	// Set a non-zero fragment offset.
	binary.BigEndian.PutUint16(frame[14+6:14+8], 0x0010)
	got, err := Parse(frame)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.SrcPort != 0 || got.DstPort != 0 {
		t.Errorf("fragment yielded ports %d/%d, want 0/0", got.SrcPort, got.DstPort)
	}
}

func TestStringFormat(t *testing.T) {
	want := "10.1.2.3:443->192.168.0.9:51234/6"
	if got := sample().String(); got != want {
		t.Errorf("String = %q want %q", got, want)
	}
}

func BenchmarkParse(b *testing.B) {
	frame := Build(sample(), make([]byte, 64))
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeyEncode(b *testing.B) {
	ft := sample()
	var buf [FiveTupleLen]byte
	for i := 0; i < b.N; i++ {
		ft.Key(buf[:0])
	}
}
