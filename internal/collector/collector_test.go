package collector

import (
	"errors"
	"fmt"
	"testing"

	heavykeeper "repro"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/xrand"
)

func TestMergeReportsValidation(t *testing.T) {
	if _, err := MergeReports(0, Sum); !errors.Is(err, ErrInvalidK) {
		t.Errorf("k=0: err = %v want ErrInvalidK", err)
	}
	if _, err := MergeReports(5, Policy(9)); !errors.Is(err, ErrInvalidPolicy) {
		t.Errorf("bad policy: err = %v want ErrInvalidPolicy", err)
	}
	if _, err := New(0, Sum); !errors.Is(err, ErrInvalidK) {
		t.Errorf("New k=0: err = %v want ErrInvalidK", err)
	}
	if _, err := New(5, Policy(9)); !errors.Is(err, ErrInvalidPolicy) {
		t.Errorf("New bad policy: err = %v want ErrInvalidPolicy", err)
	}
}

func TestMergeReportsSum(t *testing.T) {
	a := []metrics.Entry{{Key: "f1", Count: 100}, {Key: "f2", Count: 50}}
	b := []metrics.Entry{{Key: "f1", Count: 30}, {Key: "f3", Count: 90}}
	got, err := MergeReports(2, Sum, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []metrics.Entry{{Key: "f1", Count: 130}, {Key: "f3", Count: 90}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMergeReportsMax(t *testing.T) {
	a := []metrics.Entry{{Key: "f1", Count: 100}}
	b := []metrics.Entry{{Key: "f1", Count: 70}, {Key: "f2", Count: 80}}
	got, err := MergeReports(5, Max, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Key != "f1" || got[0].Count != 100 {
		t.Errorf("Max policy produced %v", got[0])
	}
	if got[1].Key != "f2" || got[1].Count != 80 {
		t.Errorf("second entry %v", got[1])
	}
}

func TestCollectorEpochs(t *testing.T) {
	c, err := New(3, Sum)
	if err != nil {
		t.Fatal(err)
	}
	mustReport(t, c, "sw1", []metrics.Entry{{Key: "a", Count: 5}})
	mustReport(t, c, "sw2", []metrics.Entry{{Key: "a", Count: 7}, {Key: "b", Count: 3}})
	mustReport(t, c, "sw1", []metrics.Entry{{Key: "a", Count: 6}}) // resend replaces
	if c.Agents() != 2 {
		t.Fatalf("Agents = %d want 2", c.Agents())
	}
	top, err := c.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Key != "a" || top[0].Count != 13 {
		t.Errorf("epoch report %v", top)
	}
	if c.Epoch() != 1 || c.Agents() != 0 {
		t.Errorf("epoch state not advanced: epoch=%d agents=%d", c.Epoch(), c.Agents())
	}
}

func mustReport(t *testing.T, c *Collector, agent string, rep []metrics.Entry) {
	t.Helper()
	if err := c.Report(agent, rep); err != nil {
		t.Fatalf("Report(%q): %v", agent, err)
	}
}

// TestCollectorEpochAlignment exercises the two-pane staging: an agent that
// rotates ahead of the collector lands in the staged pane and surfaces in
// the next epoch; agents further askew are rejected with ErrEpochSkew.
func TestCollectorEpochAlignment(t *testing.T) {
	c, _ := New(3, Sum)
	mustReport(t, c, "sw1", []metrics.Entry{{Key: "a", Count: 5}})
	// sw2 already rotated into epoch 1: staged, not part of epoch 0.
	if err := c.ReportAt("sw2", 1, []metrics.Entry{{Key: "b", Count: 9}}); err != nil {
		t.Fatalf("epoch+1 report rejected: %v", err)
	}
	if err := c.ReportAt("sw3", 2, nil); !errors.Is(err, ErrEpochSkew) {
		t.Errorf("epoch+2: err = %v want ErrEpochSkew", err)
	}
	top, err := c.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Key != "a" {
		t.Errorf("epoch 0 report %v want only flow a", top)
	}
	// The staged pane became active: sw2's report belongs to epoch 1.
	if c.Agents() != 1 {
		t.Fatalf("staged report not promoted: Agents = %d", c.Agents())
	}
	// A stale report for the finished epoch 0 is now behind the collector.
	if err := c.ReportAt("sw4", 0, nil); !errors.Is(err, ErrEpochSkew) {
		t.Errorf("stale epoch: err = %v want ErrEpochSkew", err)
	}
	top, err = c.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Key != "b" || top[0].Count != 9 {
		t.Errorf("epoch 1 report %v want flow b=9", top)
	}
}

func TestCollectorEmptyReports(t *testing.T) {
	c, _ := New(3, Sum)
	mustReport(t, c, "sw1", nil)
	mustReport(t, c, "sw2", []metrics.Entry{})
	if c.Agents() != 2 {
		t.Fatalf("empty reports not recorded: Agents = %d", c.Agents())
	}
	top, err := c.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 0 {
		t.Errorf("empty epoch produced %v", top)
	}
	// An epoch with no reports at all is also fine.
	if top, err = c.Rotate(); err != nil || len(top) != 0 {
		t.Errorf("reportless epoch: top=%v err=%v", top, err)
	}
}

func TestCollectorDuplicateFlowInReport(t *testing.T) {
	c, _ := New(3, Sum)
	err := c.Report("sw1", []metrics.Entry{{Key: "a", Count: 1}, {Key: "a", Count: 2}})
	if !errors.Is(err, heavykeeper.ErrMergeMismatch) {
		t.Errorf("duplicate flow: err = %v want ErrMergeMismatch", err)
	}
	// The malformed report must not have been recorded.
	if c.Agents() != 0 {
		t.Errorf("malformed report recorded: Agents = %d", c.Agents())
	}
}

func TestCollectorCloseIsTerminal(t *testing.T) {
	c, _ := New(2, Sum)
	mustReport(t, c, "sw1", []metrics.Entry{{Key: "a", Count: 4}})
	top, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Count != 4 {
		t.Errorf("final epoch %v", top)
	}
	if _, err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close: err = %v want ErrClosed", err)
	}
	if _, err := c.Rotate(); !errors.Is(err, ErrClosed) {
		t.Errorf("Rotate after Close: err = %v want ErrClosed", err)
	}
	if err := c.Report("sw1", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Report after Close: err = %v want ErrClosed", err)
	}
}

func TestMergeReportsMaxTies(t *testing.T) {
	// Equal combined counts break by ascending key, regardless of report
	// arrival order, so the global report is deterministic.
	a := []metrics.Entry{{Key: "zz", Count: 10}, {Key: "mm", Count: 10}}
	b := []metrics.Entry{{Key: "aa", Count: 10}, {Key: "zz", Count: 7}}
	for _, order := range [][][]metrics.Entry{{a, b}, {b, a}} {
		got, err := MergeReports(2, Max, order...)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0].Key != "aa" || got[1].Key != "mm" {
			t.Errorf("tie-break order %v", got)
		}
		for _, e := range got {
			if e.Count != 10 {
				t.Errorf("Max tie entry %v want count 10", e)
			}
		}
	}
}

func TestReportMutationIsolation(t *testing.T) {
	c, _ := New(2, Sum)
	rep := []metrics.Entry{{Key: "a", Count: 1}}
	c.Report("sw", rep)
	rep[0].Count = 999
	top, _ := c.Close()
	if top[0].Count != 1 {
		t.Error("collector aliased the caller's slice")
	}
}

// TestDistributedTopK runs the full pattern: traffic split across three
// simulated switches, each with its own HeavyKeeper, reports merged with
// Sum. The global top-k must match the whole-stream ground truth.
func TestDistributedTopK(t *testing.T) {
	const k = 20
	const switches = 3
	trackers := make([]*topk.Tracker, switches)
	for i := range trackers {
		trackers[i] = topk.MustNew(topk.Options{
			K: k, Sketch: core.Config{W: 1024, Seed: uint64(100 + i)},
		})
	}
	rng := xrand.NewXorshift64Star(77)
	exact := map[string]uint64{}
	for p := 0; p < 150000; p++ {
		f := int(rng.Uint64n(rng.Uint64n(5000) + 1))
		key := fmt.Sprintf("flow-%d", f)
		exact[key]++
		// Flows are pinned to switches by hash — disjoint traffic.
		trackers[f%switches].Insert([]byte(key))
	}
	c, _ := New(k, Sum)
	for i, tr := range trackers {
		var rep []metrics.Entry
		for _, e := range tr.Top() {
			rep = append(rep, metrics.Entry{Key: e.Key, Count: e.Count})
		}
		c.Report(fmt.Sprintf("sw%d", i), rep)
	}
	global, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	o := metrics.FromCounts(exact)
	if p := metrics.PrecisionAtK(global, o, k); p < 0.9 {
		t.Errorf("distributed precision = %v want >= 0.9", p)
	}
}

// TestSketchMergeMatchesCombinedStream checks core.Sketch.Merge: two
// same-seed sketches over halves of a stream, merged, must agree closely
// with one sketch over the whole stream.
func TestSketchMergeMatchesCombinedStream(t *testing.T) {
	cfg := core.Config{W: 2048, Seed: 9}
	whole := core.MustNew(cfg)
	half1 := core.MustNew(cfg)
	half2 := core.MustNew(cfg)
	rng := xrand.NewXorshift64Star(13)
	exact := map[int]uint64{}
	for p := 0; p < 100000; p++ {
		f := int(rng.Uint64n(rng.Uint64n(3000) + 1))
		exact[f]++
		key := []byte(fmt.Sprintf("flow-%d", f))
		whole.InsertBasic(key)
		if p%2 == 0 {
			half1.InsertBasic(key)
		} else {
			half2.InsertBasic(key)
		}
	}
	if err := half1.Merge(half2); err != nil {
		t.Fatal(err)
	}
	// Elephants must agree within a small margin and never over-estimate.
	for f := 0; f < 20; f++ {
		key := []byte(fmt.Sprintf("flow-%d", f))
		m := uint64(half1.Query(key))
		truth := exact[f]
		if m > truth {
			t.Errorf("flow %d: merged %d > true %d", f, m, truth)
		}
		if truth > 1000 && float64(m) < 0.9*float64(truth) {
			t.Errorf("flow %d: merged %d < 90%% of true %d", f, m, truth)
		}
	}
}

func TestSketchMergeRejectsMismatch(t *testing.T) {
	a := core.MustNew(core.Config{W: 64, Seed: 1})
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
	b := core.MustNew(core.Config{W: 128, Seed: 1})
	if err := a.Merge(b); err == nil {
		t.Error("shape mismatch accepted")
	}
	c := core.MustNew(core.Config{W: 64, Seed: 2})
	if err := a.Merge(c); err == nil {
		t.Error("seed mismatch accepted")
	}
}

func TestSketchMergeContestedBuckets(t *testing.T) {
	// Force different flows into the same bucket of two sketches: the
	// merge's majority rule must keep the larger and subtract the smaller.
	cfg := core.Config{W: 1, D: 1, Seed: 3}
	a := core.MustNew(cfg)
	b := core.MustNew(cfg)
	for i := 0; i < 100; i++ {
		a.InsertBasic([]byte("heavy"))
	}
	for i := 0; i < 30; i++ {
		b.InsertBasic([]byte("light"))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Query([]byte("heavy")); got != 70 {
		t.Errorf("contested merge: heavy = %d want 70", got)
	}
	if got := a.Query([]byte("light")); got != 0 {
		t.Errorf("contested merge: light = %d want 0", got)
	}
}
