package collector

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/xrand"
)

func TestMergeReportsValidation(t *testing.T) {
	if _, err := MergeReports(0, Sum); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := MergeReports(5, Policy(9)); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := New(0, Sum); err == nil {
		t.Error("New k=0 accepted")
	}
	if _, err := New(5, Policy(9)); err == nil {
		t.Error("New bad policy accepted")
	}
}

func TestMergeReportsSum(t *testing.T) {
	a := []metrics.Entry{{Key: "f1", Count: 100}, {Key: "f2", Count: 50}}
	b := []metrics.Entry{{Key: "f1", Count: 30}, {Key: "f3", Count: 90}}
	got, err := MergeReports(2, Sum, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []metrics.Entry{{Key: "f1", Count: 130}, {Key: "f3", Count: 90}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMergeReportsMax(t *testing.T) {
	a := []metrics.Entry{{Key: "f1", Count: 100}}
	b := []metrics.Entry{{Key: "f1", Count: 70}, {Key: "f2", Count: 80}}
	got, err := MergeReports(5, Max, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Key != "f1" || got[0].Count != 100 {
		t.Errorf("Max policy produced %v", got[0])
	}
	if got[1].Key != "f2" || got[1].Count != 80 {
		t.Errorf("second entry %v", got[1])
	}
}

func TestCollectorEpochs(t *testing.T) {
	c, err := New(3, Sum)
	if err != nil {
		t.Fatal(err)
	}
	c.Report("sw1", []metrics.Entry{{Key: "a", Count: 5}})
	c.Report("sw2", []metrics.Entry{{Key: "a", Count: 7}, {Key: "b", Count: 3}})
	c.Report("sw1", []metrics.Entry{{Key: "a", Count: 6}}) // resend replaces
	if c.Agents() != 2 {
		t.Fatalf("Agents = %d want 2", c.Agents())
	}
	top, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Key != "a" || top[0].Count != 13 {
		t.Errorf("epoch report %v", top)
	}
	if c.Epoch() != 1 || c.Agents() != 0 {
		t.Errorf("epoch state not advanced: epoch=%d agents=%d", c.Epoch(), c.Agents())
	}
}

func TestReportMutationIsolation(t *testing.T) {
	c, _ := New(2, Sum)
	rep := []metrics.Entry{{Key: "a", Count: 1}}
	c.Report("sw", rep)
	rep[0].Count = 999
	top, _ := c.Close()
	if top[0].Count != 1 {
		t.Error("collector aliased the caller's slice")
	}
}

// TestDistributedTopK runs the full pattern: traffic split across three
// simulated switches, each with its own HeavyKeeper, reports merged with
// Sum. The global top-k must match the whole-stream ground truth.
func TestDistributedTopK(t *testing.T) {
	const k = 20
	const switches = 3
	trackers := make([]*topk.Tracker, switches)
	for i := range trackers {
		trackers[i] = topk.MustNew(topk.Options{
			K: k, Sketch: core.Config{W: 1024, Seed: uint64(100 + i)},
		})
	}
	rng := xrand.NewXorshift64Star(77)
	exact := map[string]uint64{}
	for p := 0; p < 150000; p++ {
		f := int(rng.Uint64n(rng.Uint64n(5000) + 1))
		key := fmt.Sprintf("flow-%d", f)
		exact[key]++
		// Flows are pinned to switches by hash — disjoint traffic.
		trackers[f%switches].Insert([]byte(key))
	}
	c, _ := New(k, Sum)
	for i, tr := range trackers {
		var rep []metrics.Entry
		for _, e := range tr.Top() {
			rep = append(rep, metrics.Entry{Key: e.Key, Count: e.Count})
		}
		c.Report(fmt.Sprintf("sw%d", i), rep)
	}
	global, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	o := metrics.FromCounts(exact)
	if p := metrics.PrecisionAtK(global, o, k); p < 0.9 {
		t.Errorf("distributed precision = %v want >= 0.9", p)
	}
}

// TestSketchMergeMatchesCombinedStream checks core.Sketch.Merge: two
// same-seed sketches over halves of a stream, merged, must agree closely
// with one sketch over the whole stream.
func TestSketchMergeMatchesCombinedStream(t *testing.T) {
	cfg := core.Config{W: 2048, Seed: 9}
	whole := core.MustNew(cfg)
	half1 := core.MustNew(cfg)
	half2 := core.MustNew(cfg)
	rng := xrand.NewXorshift64Star(13)
	exact := map[int]uint64{}
	for p := 0; p < 100000; p++ {
		f := int(rng.Uint64n(rng.Uint64n(3000) + 1))
		exact[f]++
		key := []byte(fmt.Sprintf("flow-%d", f))
		whole.InsertBasic(key)
		if p%2 == 0 {
			half1.InsertBasic(key)
		} else {
			half2.InsertBasic(key)
		}
	}
	if err := half1.Merge(half2); err != nil {
		t.Fatal(err)
	}
	// Elephants must agree within a small margin and never over-estimate.
	for f := 0; f < 20; f++ {
		key := []byte(fmt.Sprintf("flow-%d", f))
		m := uint64(half1.Query(key))
		truth := exact[f]
		if m > truth {
			t.Errorf("flow %d: merged %d > true %d", f, m, truth)
		}
		if truth > 1000 && float64(m) < 0.9*float64(truth) {
			t.Errorf("flow %d: merged %d < 90%% of true %d", f, m, truth)
		}
	}
}

func TestSketchMergeRejectsMismatch(t *testing.T) {
	a := core.MustNew(core.Config{W: 64, Seed: 1})
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
	b := core.MustNew(core.Config{W: 128, Seed: 1})
	if err := a.Merge(b); err == nil {
		t.Error("shape mismatch accepted")
	}
	c := core.MustNew(core.Config{W: 64, Seed: 2})
	if err := a.Merge(c); err == nil {
		t.Error("seed mismatch accepted")
	}
}

func TestSketchMergeContestedBuckets(t *testing.T) {
	// Force different flows into the same bucket of two sketches: the
	// merge's majority rule must keep the larger and subtract the smaller.
	cfg := core.Config{W: 1, D: 1, Seed: 3}
	a := core.MustNew(cfg)
	b := core.MustNew(cfg)
	for i := 0; i < 100; i++ {
		a.InsertBasic([]byte("heavy"))
	}
	for i := 0; i < 30; i++ {
		b.InsertBasic([]byte("light"))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Query([]byte("heavy")); got != 70 {
		t.Errorf("contested merge: heavy = %d want 70", got)
	}
	if got := a.Query([]byte("light")); got != 0 {
		t.Errorf("contested merge: light = %d want 0", got)
	}
}
