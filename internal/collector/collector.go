// Package collector implements network-wide top-k aggregation, the
// deployment pattern of the HeavyKeeper paper's footnote 2: measurement
// points (switches) each run their own sketch over their share of the
// traffic and periodically report to a central collector, which folds the
// reports — or the raw sketches — into a global top-k per epoch.
//
// Two aggregation modes are provided:
//
//   - report merging (MergeReports): each agent ships only its k-entry
//     report, a few KB; the collector combines entries by flow with a
//     Sum or Max policy depending on whether the measurement points see
//     disjoint traffic (Sum) or the same packets at different hops (Max);
//   - sketch merging (via core.Sketch.Merge): agents ship whole sketch
//     snapshots built with a shared seed, the collector folds them bucket
//     by bucket and re-extracts the top-k, recovering flows whose traffic
//     was spread so thin that no single agent reported them.
package collector

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Policy selects how per-agent counts of the same flow combine.
type Policy int

const (
	// Sum adds counts: measurement points observe disjoint packet sets
	// (e.g. edge switches, each seeing its own hosts' traffic).
	Sum Policy = iota
	// Max keeps the largest count: measurement points observe the same
	// packets (e.g. switches along a path), so counts are duplicates.
	Max
)

// MergeReports folds per-agent top-k reports into a global top-k of size k.
func MergeReports(k int, policy Policy, reports ...[]metrics.Entry) ([]metrics.Entry, error) {
	if k < 1 {
		return nil, fmt.Errorf("collector: k = %d, must be >= 1", k)
	}
	switch policy {
	case Sum, Max:
	default:
		return nil, fmt.Errorf("collector: unknown policy %d", int(policy))
	}
	merged := map[string]uint64{}
	for _, rep := range reports {
		for _, e := range rep {
			switch policy {
			case Sum:
				merged[e.Key] += e.Count
			case Max:
				if e.Count > merged[e.Key] {
					merged[e.Key] = e.Count
				}
			}
		}
	}
	out := make([]metrics.Entry, 0, len(merged))
	for key, c := range merged {
		out = append(out, metrics.Entry{Key: key, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// Collector accumulates per-epoch agent reports and produces global top-k
// snapshots. It is a bookkeeping convenience over MergeReports for
// long-running deployments.
type Collector struct {
	k      int
	policy Policy
	epoch  uint64
	// pending holds the reports received for the current epoch, by agent.
	pending map[string][]metrics.Entry
}

// New returns a Collector producing global top-k of size k.
func New(k int, policy Policy) (*Collector, error) {
	if k < 1 {
		return nil, fmt.Errorf("collector: k = %d, must be >= 1", k)
	}
	if policy != Sum && policy != Max {
		return nil, fmt.Errorf("collector: unknown policy %d", int(policy))
	}
	return &Collector{k: k, policy: policy, pending: map[string][]metrics.Entry{}}, nil
}

// Report records agent's top-k for the current epoch, replacing any earlier
// report from the same agent in this epoch (agents may resend).
func (c *Collector) Report(agent string, report []metrics.Entry) {
	cp := make([]metrics.Entry, len(report))
	copy(cp, report)
	c.pending[agent] = cp
}

// Agents returns how many agents have reported this epoch.
func (c *Collector) Agents() int { return len(c.pending) }

// Epoch returns the number of completed epochs.
func (c *Collector) Epoch() uint64 { return c.epoch }

// Close finishes the epoch: it merges all pending reports into the global
// top-k, clears the pending set and advances the epoch counter.
func (c *Collector) Close() ([]metrics.Entry, error) {
	reports := make([][]metrics.Entry, 0, len(c.pending))
	for _, r := range c.pending {
		reports = append(reports, r)
	}
	merged, err := MergeReports(c.k, c.policy, reports...)
	if err != nil {
		return nil, err
	}
	c.pending = map[string][]metrics.Entry{}
	c.epoch++
	return merged, nil
}
