// Package collector implements network-wide top-k aggregation, the
// deployment pattern of the HeavyKeeper paper's footnote 2: measurement
// points (switches) each run their own sketch over their share of the
// traffic and periodically report to a central collector, which folds the
// reports — or the raw sketches — into a global top-k per epoch.
//
// Two aggregation modes are provided:
//
//   - report merging (MergeReports): each agent ships only its k-entry
//     report, a few KB; the collector combines entries by flow with a
//     Sum or Max policy depending on whether the measurement points see
//     disjoint traffic (Sum) or the same packets at different hops (Max);
//   - sketch merging (via core.Sketch.Merge): agents ship whole sketch
//     snapshots built with a shared seed, the collector folds them bucket
//     by bucket and re-extracts the top-k, recovering flows whose traffic
//     was spread so thin that no single agent reported them.
//
// The stateful Collector aligns asynchronous agents on epoch boundaries
// with two panes, mirroring the two-pane Window frontend on the agents:
// reports for the current epoch land in the active pane, reports for the
// next epoch (an agent that rotated before the collector did) are staged
// in the second pane and become active at Rotate. An agent more than one
// epoch ahead — or any epoch behind — is rejected, so a wedged clock
// cannot silently smear two measurement periods together.
package collector

import (
	"errors"
	"fmt"
	"sort"

	heavykeeper "repro"
	"repro/internal/metrics"
)

// Policy selects how per-agent counts of the same flow combine.
type Policy int

const (
	// Sum adds counts: measurement points observe disjoint packet sets
	// (e.g. edge switches, each seeing its own hosts' traffic).
	Sum Policy = iota
	// Max keeps the largest count: measurement points observe the same
	// packets (e.g. switches along a path, or replicas that each ingest
	// every packet of the flows routed to them), so counts are duplicates.
	Max
)

// Typed validation and lifecycle errors; callers branch with errors.Is.
// Malformed report shapes reuse heavykeeper.ErrMergeMismatch, the same
// error the Summarizer merge path reports for incompatible inputs.
var (
	// ErrInvalidK is returned for a global report size below 1.
	ErrInvalidK = errors.New("collector: k must be >= 1")
	// ErrInvalidPolicy is returned for a Policy that is neither Sum nor Max.
	ErrInvalidPolicy = errors.New("collector: unknown policy")
	// ErrClosed is returned by Report, Rotate and Close once the collector
	// has been closed.
	ErrClosed = errors.New("collector: closed")
	// ErrEpochSkew is returned by ReportAt for an epoch the two panes
	// cannot hold: behind the current epoch, or more than one ahead.
	ErrEpochSkew = errors.New("collector: report epoch out of range")
)

// validate checks the shared k/policy parameters.
func validate(k int, policy Policy) error {
	if k < 1 {
		return fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	if policy != Sum && policy != Max {
		return fmt.Errorf("%w: %d", ErrInvalidPolicy, int(policy))
	}
	return nil
}

// MergeReports folds per-agent top-k reports into a global top-k of size
// k. Ties (equal combined counts) break by ascending key, so the global
// report is deterministic regardless of agent arrival order.
func MergeReports(k int, policy Policy, reports ...[]metrics.Entry) ([]metrics.Entry, error) {
	if err := validate(k, policy); err != nil {
		return nil, err
	}
	merged := map[string]uint64{}
	for _, rep := range reports {
		for _, e := range rep {
			switch policy {
			case Sum:
				merged[e.Key] += e.Count
			case Max:
				if e.Count > merged[e.Key] {
					merged[e.Key] = e.Count
				}
			}
		}
	}
	out := make([]metrics.Entry, 0, len(merged))
	for key, c := range merged {
		out = append(out, metrics.Entry{Key: key, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// Collector accumulates per-epoch agent reports and produces global top-k
// snapshots. It is a bookkeeping convenience over MergeReports for
// long-running deployments; see the package comment for the two-pane
// epoch-alignment contract. Not safe for concurrent use.
type Collector struct {
	k      int
	policy Policy
	epoch  uint64
	closed bool
	// pending[0] holds the current epoch's reports by agent; pending[1]
	// stages reports from agents that already rotated into epoch+1.
	pending [2]map[string][]metrics.Entry
}

// New returns a Collector producing global top-k of size k.
func New(k int, policy Policy) (*Collector, error) {
	if err := validate(k, policy); err != nil {
		return nil, err
	}
	c := &Collector{k: k, policy: policy}
	c.pending[0] = map[string][]metrics.Entry{}
	c.pending[1] = map[string][]metrics.Entry{}
	return c, nil
}

// Report records agent's top-k for the current epoch, replacing any earlier
// report from the same agent in this epoch (agents may resend).
func (c *Collector) Report(agent string, report []metrics.Entry) error {
	return c.ReportAt(agent, c.epoch, report)
}

// ReportAt records agent's top-k for an explicit epoch: the current epoch
// lands in the active pane, epoch+1 is staged for the next Rotate (the
// agent's window rotated before the collector closed this epoch), and
// anything else is rejected with ErrEpochSkew. A report naming the same
// flow twice is malformed — its counts cannot be combined unambiguously —
// and is rejected with an error matching heavykeeper.ErrMergeMismatch.
func (c *Collector) ReportAt(agent string, epoch uint64, report []metrics.Entry) error {
	if c.closed {
		return ErrClosed
	}
	var pane int
	switch epoch {
	case c.epoch:
		pane = 0
	case c.epoch + 1:
		pane = 1
	default:
		return fmt.Errorf("%w: agent %q reported epoch %d, collector is at %d",
			ErrEpochSkew, agent, epoch, c.epoch)
	}
	seen := make(map[string]struct{}, len(report))
	for _, e := range report {
		if _, dup := seen[e.Key]; dup {
			return fmt.Errorf("%w: agent %q report names flow %q twice",
				heavykeeper.ErrMergeMismatch, agent, e.Key)
		}
		seen[e.Key] = struct{}{}
	}
	cp := make([]metrics.Entry, len(report))
	copy(cp, report)
	c.pending[pane][agent] = cp
	return nil
}

// Agents returns how many agents have reported this epoch.
func (c *Collector) Agents() int { return len(c.pending[0]) }

// Epoch returns the number of completed epochs.
func (c *Collector) Epoch() uint64 { return c.epoch }

// Rotate finishes the current epoch: it merges the active pane's reports
// into the global top-k, promotes the staged pane (reports already
// received for the next epoch) to active, and advances the epoch counter.
func (c *Collector) Rotate() ([]metrics.Entry, error) {
	if c.closed {
		return nil, ErrClosed
	}
	merged, err := c.mergePending()
	if err != nil {
		return nil, err
	}
	c.pending[0] = c.pending[1]
	c.pending[1] = map[string][]metrics.Entry{}
	c.epoch++
	return merged, nil
}

// Close finishes the final epoch and retires the collector: it merges the
// active pane like Rotate, then marks the collector closed so any further
// Report, Rotate or Close returns ErrClosed. Staged next-epoch reports are
// discarded — their epoch will never complete.
func (c *Collector) Close() ([]metrics.Entry, error) {
	if c.closed {
		return nil, ErrClosed
	}
	merged, err := c.mergePending()
	if err != nil {
		return nil, err
	}
	c.closed = true
	c.pending[0] = nil
	c.pending[1] = nil
	return merged, nil
}

// mergePending folds the active pane through MergeReports.
func (c *Collector) mergePending() ([]metrics.Entry, error) {
	reports := make([][]metrics.Entry, 0, len(c.pending[0]))
	for _, r := range c.pending[0] {
		reports = append(reports, r)
	}
	return MergeReports(c.k, c.policy, reports...)
}
