// Package spacesaving implements the Space-Saving algorithm of Metwally,
// Agrawal and El Abbadi (ICDT 2005), the canonical admit-all-count-some
// baseline in the HeavyKeeper paper (§II-B).
//
// Space-Saving monitors m flows in a Stream-Summary. Every new flow is
// admitted: if the summary is full, the minimum flow is expelled and the
// newcomer starts at n̂_min + 1 with recorded error n̂_min. This guarantees
// no under-estimation but — as the paper's running example shows — lets a
// single-packet mouse inherit a 10,000-packet count, which is the
// over-estimation failure mode HeavyKeeper's evaluation quantifies.
//
// The ingest path follows the repository's one-hash discipline: Insert
// hashes the key bytes exactly once and InsertHashed accepts a hash the
// caller already computed (a sharded router, a batch pre-pass), feeding the
// Stream-Summary's open-addressed index through its *Hashed entry points so
// the key bytes are never traversed again.
package spacesaving

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/streamsummary"
)

// SpaceSaving monitors the m most frequent flows.
type SpaceSaving struct {
	sum *streamsummary.Summary
	// hashScratch backs InsertBatch's per-chunk key hashes so steady-state
	// batch ingestion allocates nothing.
	hashScratch []uint64
}

// New returns a Space-Saving instance monitoring at most m flows.
func New(m int) (*SpaceSaving, error) { return NewSeeded(m, 0) }

// NewSeeded is New with an explicit key-hash seed. Callers that precompute
// key hashes for InsertHashed/EstimateHashed must construct the instance
// with the seed those hashes were computed under (or use KeyHash).
func NewSeeded(m int, seed uint64) (*SpaceSaving, error) {
	if m < 1 {
		return nil, fmt.Errorf("spacesaving: m = %d, must be >= 1", m)
	}
	return &SpaceSaving{sum: streamsummary.NewSeeded(m, seed)}, nil
}

// MustNew is New that panics on error.
func MustNew(m int) *SpaceSaving {
	s, err := New(m)
	if err != nil {
		panic(err)
	}
	return s
}

// FromBytes sizes m from a byte budget using the same per-entry accounting
// the paper applies in §VI-A ("the number of buckets m is determined by the
// memory size").
func FromBytes(budget int) (*SpaceSaving, error) { return FromBytesSeeded(budget, 0) }

// FromBytesSeeded is FromBytes with an explicit key-hash seed.
func FromBytesSeeded(budget int, seed uint64) (*SpaceSaving, error) {
	m := budget / streamsummary.BytesPerEntry
	if m < 1 {
		m = 1
	}
	return NewSeeded(m, seed)
}

// KeyHash returns the single per-key hash the structure derives everything
// from; routers compute it once and feed InsertHashed/EstimateHashed.
func (s *SpaceSaving) KeyHash(key []byte) uint64 { return s.sum.Hash(key) }

// Insert records one packet of flow key, hashing the key bytes exactly once.
func (s *SpaceSaving) Insert(key []byte) { s.InsertNHashed(key, s.sum.Hash(key), 1) }

// InsertHashed is Insert with the key's precomputed KeyHash.
func (s *SpaceSaving) InsertHashed(key []byte, h uint64) { s.InsertNHashed(key, h, 1) }

// InsertN records a weight-n arrival of flow key (n packets at once, or n
// bytes when ranking by volume): a monitored flow's count rises by n, and an
// unmonitored one inherits n̂_min + n with recorded error n̂_min — the
// natural weighted extension of the admit-all rule.
func (s *SpaceSaving) InsertN(key []byte, n uint64) { s.InsertNHashed(key, s.sum.Hash(key), n) }

// InsertNHashed is InsertN with the key's precomputed KeyHash.
func (s *SpaceSaving) InsertNHashed(key []byte, h uint64, n uint64) {
	if n == 0 {
		return
	}
	if _, ok := s.sum.IncrHashed(key, h, n); ok {
		return
	}
	if !s.sum.Full() {
		s.sum.InsertHashed(key, h, n, 0)
		return
	}
	_, minC, _ := s.sum.EvictMin()
	s.sum.InsertHashed(key, h, minC+n, minC)
}

// InsertBatch records one packet per key, equivalently to calling Insert on
// each key in order but with the work batch-shaped: see InsertBatchHashed.
func (s *SpaceSaving) InsertBatch(keys [][]byte) { s.InsertBatchHashed(keys, nil) }

// InsertBatchHashed is InsertBatch for a caller that already computed
// KeyHash for every key (hashes[i] must correspond to keys[i]; nil means
// hash here, exactly once per key). Each chunk is a grouped two-pass probe:
// pass 1 hashes the chunk in one tight loop (when needed) and touches every
// key's home Stream-Summary index slot (Prefetch) — independent loads the
// hardware overlaps — and pass 2 applies the per-key admit-all rule in
// stream order through the same InsertNHashed body the sequential path
// uses, so results are bit-identical to a sequential Insert loop.
func (s *SpaceSaving) InsertBatchHashed(keys [][]byte, hashes []uint64) {
	for off := 0; off < len(keys); off += core.BatchChunk {
		end := off + core.BatchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		hs := hashes
		if hs != nil {
			hs = hashes[off:end]
		} else {
			hs = s.hashChunk(chunk)
		}
		s.sum.Prefetch(hs)
		for ci, key := range chunk {
			s.InsertNHashed(key, hs[ci], 1)
		}
	}
}

// hashChunk hashes every key of one chunk once into the reusable scratch.
func (s *SpaceSaving) hashChunk(chunk [][]byte) []uint64 {
	if cap(s.hashScratch) < len(chunk) {
		s.hashScratch = make([]uint64, len(chunk))
	}
	hs := s.hashScratch[:len(chunk)]
	for i, key := range chunk {
		hs[i] = s.sum.Hash(key)
	}
	return hs
}

// Estimate returns the recorded count for key (0 if unmonitored). Recorded
// counts never under-estimate the true count.
func (s *SpaceSaving) Estimate(key []byte) uint64 {
	return s.EstimateHashed(key, s.sum.Hash(key))
}

// EstimateHashed is Estimate with the key's precomputed KeyHash.
func (s *SpaceSaving) EstimateHashed(key []byte, h uint64) uint64 {
	c, _ := s.sum.CountHashed(key, h)
	return c
}

// GuaranteedCount returns the collision-free lower bound, count − error.
func (s *SpaceSaving) GuaranteedCount(key []byte) uint64 {
	ks := string(key)
	c, ok := s.sum.Count(ks)
	if !ok {
		return 0
	}
	return c - s.sum.Error(ks)
}

// Entry is one reported flow.
type Entry struct {
	Key   string
	Count uint64
}

// Top returns the k largest monitored flows in descending recorded count.
func (s *SpaceSaving) Top(k int) []Entry {
	items := s.sum.Top(k)
	out := make([]Entry, len(items))
	for i, e := range items {
		out[i] = Entry{Key: e.Key, Count: e.Count}
	}
	return out
}

// Len returns the number of monitored flows.
func (s *SpaceSaving) Len() int { return s.sum.Len() }

// Capacity returns m.
func (s *SpaceSaving) Capacity() int { return s.sum.Capacity() }

// MemoryBytes reports the logical footprint under the paper's accounting.
func (s *SpaceSaving) MemoryBytes() int {
	return s.sum.Capacity() * streamsummary.BytesPerEntry
}
