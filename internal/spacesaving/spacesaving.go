// Package spacesaving implements the Space-Saving algorithm of Metwally,
// Agrawal and El Abbadi (ICDT 2005), the canonical admit-all-count-some
// baseline in the HeavyKeeper paper (§II-B).
//
// Space-Saving monitors m flows in a Stream-Summary. Every new flow is
// admitted: if the summary is full, the minimum flow is expelled and the
// newcomer starts at n̂_min + 1 with recorded error n̂_min. This guarantees
// no under-estimation but — as the paper's running example shows — lets a
// single-packet mouse inherit a 10,000-packet count, which is the
// over-estimation failure mode HeavyKeeper's evaluation quantifies.
package spacesaving

import (
	"fmt"

	"repro/internal/streamsummary"
)

// SpaceSaving monitors the m most frequent flows.
type SpaceSaving struct {
	sum *streamsummary.Summary
}

// New returns a Space-Saving instance monitoring at most m flows.
func New(m int) (*SpaceSaving, error) {
	if m < 1 {
		return nil, fmt.Errorf("spacesaving: m = %d, must be >= 1", m)
	}
	return &SpaceSaving{sum: streamsummary.New(m)}, nil
}

// MustNew is New that panics on error.
func MustNew(m int) *SpaceSaving {
	s, err := New(m)
	if err != nil {
		panic(err)
	}
	return s
}

// FromBytes sizes m from a byte budget using the same per-entry accounting
// the paper applies in §VI-A ("the number of buckets m is determined by the
// memory size").
func FromBytes(budget int) (*SpaceSaving, error) {
	m := budget / streamsummary.BytesPerEntry
	if m < 1 {
		m = 1
	}
	return New(m)
}

// Insert records one packet of flow key.
func (s *SpaceSaving) Insert(key []byte) {
	ks := string(key)
	if s.sum.Contains(ks) {
		s.sum.Incr(ks)
		return
	}
	if !s.sum.Full() {
		s.sum.Insert(ks, 1, 0)
		return
	}
	_, minC, _ := s.sum.EvictMin()
	s.sum.Insert(ks, minC+1, minC)
}

// Estimate returns the recorded count for key (0 if unmonitored). Recorded
// counts never under-estimate the true count.
func (s *SpaceSaving) Estimate(key []byte) uint64 {
	c, _ := s.sum.Count(string(key))
	return c
}

// GuaranteedCount returns the collision-free lower bound, count − error.
func (s *SpaceSaving) GuaranteedCount(key []byte) uint64 {
	ks := string(key)
	c, ok := s.sum.Count(ks)
	if !ok {
		return 0
	}
	return c - s.sum.Error(ks)
}

// Entry is one reported flow.
type Entry struct {
	Key   string
	Count uint64
}

// Top returns the k largest monitored flows in descending recorded count.
func (s *SpaceSaving) Top(k int) []Entry {
	items := s.sum.Top(k)
	out := make([]Entry, len(items))
	for i, e := range items {
		out[i] = Entry{Key: e.Key, Count: e.Count}
	}
	return out
}

// Len returns the number of monitored flows.
func (s *SpaceSaving) Len() int { return s.sum.Len() }

// Capacity returns m.
func (s *SpaceSaving) Capacity() int { return s.sum.Capacity() }

// MemoryBytes reports the logical footprint under the paper's accounting.
func (s *SpaceSaving) MemoryBytes() int {
	return s.sum.Capacity() * streamsummary.BytesPerEntry
}
