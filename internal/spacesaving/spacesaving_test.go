package spacesaving

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/streamtest"
)

func key(i int) []byte { return []byte(fmt.Sprintf("flow-%d", i)) }

func TestValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("m=0 accepted")
	}
	if s, err := FromBytes(1); err != nil || s.Capacity() != 1 {
		t.Errorf("FromBytes(1) = %v cap %d, want cap 1", err, s.Capacity())
	}
}

func TestNeverUnderestimates(t *testing.T) {
	s := MustNew(64)
	truth := map[string]uint64{}
	st := streamtest.Zipf(30000, 2000, 1.0, 5)
	for _, p := range st.Packets {
		truth[string(p)]++
		s.Insert(p)
	}
	for _, e := range s.Top(64) {
		if e.Count < truth[e.Key] {
			t.Errorf("flow %s: %d < true %d", e.Key, e.Count, truth[e.Key])
		}
	}
}

func TestOverestimationExample(t *testing.T) {
	// The paper's §II-B running example: a full summary with n̂_min = X
	// assigns a brand-new mouse flow count X+1.
	s := MustNew(2)
	for i := 0; i < 100; i++ {
		s.Insert(key(1))
		s.Insert(key(2))
	}
	s.Insert(key(3)) // never seen before
	if got := s.Estimate(key(3)); got != 101 {
		t.Errorf("new mouse estimate = %d want 101 (n̂_min + 1)", got)
	}
	if got := s.GuaranteedCount(key(3)); got != 1 {
		t.Errorf("guaranteed count = %d want 1", got)
	}
}

func TestEveryFlowAdmitted(t *testing.T) {
	// admit-all: a new flow always displaces the min when full.
	s := MustNew(4)
	for i := 0; i < 100; i++ {
		s.Insert(key(i))
	}
	if got := s.Estimate(key(99)); got == 0 {
		t.Error("latest flow not monitored; admit-all violated")
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d want 4", s.Len())
	}
}

func TestFindsTopKWithAmpleMemory(t *testing.T) {
	st := streamtest.Zipf(150000, 5000, 1.2, 13)
	s := MustNew(2000)
	for _, p := range st.Packets {
		s.Insert(p)
	}
	var rep []streamtest.Reported
	for _, e := range s.Top(20) {
		rep = append(rep, streamtest.Reported{Key: e.Key, Count: e.Count})
	}
	if p := streamtest.Precision(rep, st.TrueTop(20)); p < 0.9 {
		t.Errorf("precision = %v want >= 0.9 with m >> k", p)
	}
}

func TestPoorUnderTightMemory(t *testing.T) {
	// The failure mode HeavyKeeper exploits: with small m on a heavy-tailed
	// stream, Space-Saving's report is badly over-estimated.
	st := streamtest.Zipf(100000, 30000, 1.0, 21)
	s := MustNew(120)
	for _, p := range st.Packets {
		s.Insert(p)
	}
	var rep []streamtest.Reported
	for _, e := range s.Top(100) {
		rep = append(rep, streamtest.Reported{Key: e.Key, Count: e.Count})
	}
	if are := st.ARE(rep); are < 0.1 {
		t.Errorf("ARE = %v unexpectedly small for tight-memory Space-Saving", are)
	}
}

func TestMemoryBytes(t *testing.T) {
	s := MustNew(100)
	if got := s.MemoryBytes(); got != 4800 {
		t.Errorf("MemoryBytes = %d want 4800", got)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := MustNew(1024)
	st := streamtest.Zipf(1<<16, 10000, 1.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(st.Packets[i&(len(st.Packets)-1)])
	}
}

// TestInsertBatchMatchesSequential: the prefetch-staged batch path must be
// bit-identical to a loop over Insert — same summary contents, same
// estimates — across ragged batch sizes straddling the chunk boundary, and
// whether the caller supplies precomputed hashes or lets the batch hash.
func TestInsertBatchMatchesSequential(t *testing.T) {
	const m = 64
	seq, _ := NewSeeded(m, 5)
	bat, _ := NewSeeded(m, 5)
	pre, _ := NewSeeded(m, 5)
	st := streamtest.Zipf(20_000, 800, 1.2, 11)

	hashes := make([]uint64, len(st.Packets))
	for i, k := range st.Packets {
		hashes[i] = pre.KeyHash(k)
	}
	for _, k := range st.Packets {
		seq.Insert(k)
	}
	for off := 0; off < len(st.Packets); {
		n := 1 + (off*7)%600 // ragged sizes, some > the internal chunk
		if off+n > len(st.Packets) {
			n = len(st.Packets) - off
		}
		bat.InsertBatch(st.Packets[off : off+n])
		off += n
	}
	pre.InsertBatchHashed(st.Packets, hashes)

	for name, got := range map[string]*SpaceSaving{"self-hashing": bat, "prehashed": pre} {
		if got.Len() != seq.Len() {
			t.Fatalf("%s: Len = %d, sequential %d", name, got.Len(), seq.Len())
		}
		if !reflect.DeepEqual(got.Top(m), seq.Top(m)) {
			t.Fatalf("%s: Top diverges from sequential", name)
		}
		for f := range st.Exact {
			if a, b := seq.Estimate([]byte(f)), got.Estimate([]byte(f)); a != b {
				t.Fatalf("%s: Estimate(%q) = %d, sequential %d", name, f, b, a)
			}
		}
	}
}
