// Package window provides approximate sliding-window top-k on top of
// HeavyKeeper, using the classic two-pane construction: items are inserted
// into a current pane; every W/2 items the panes rotate and the oldest pane
// is discarded. A report merges the live panes, so it always covers at
// least the last W/2 and at most the last W items — the windowed variant
// of the paper's per-epoch reporting (footnote 2), and the setting CSS
// (Ben-Basat et al., INFOCOM 2016) targets natively.
package window

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/topk"
)

// TopK tracks the top-k flows of (approximately) the last W items.
type TopK struct {
	k       int
	pane    int // items per pane = W/2
	opts    topk.Options
	seq     uint64 // items inserted into the current pane
	current *topk.Tracker
	prev    *topk.Tracker // nil before the first rotation
	rotates uint64
}

// New returns a sliding-window tracker covering windowSize items, with the
// given per-pane HeavyKeeper options (opts.K is overridden with k).
func New(k, windowSize int, opts topk.Options) (*TopK, error) {
	if k < 1 {
		return nil, fmt.Errorf("window: k = %d, must be >= 1", k)
	}
	if windowSize < 2 {
		return nil, fmt.Errorf("window: windowSize = %d, must be >= 2", windowSize)
	}
	opts.K = k
	cur, err := topk.New(opts)
	if err != nil {
		return nil, err
	}
	return &TopK{
		k:       k,
		pane:    windowSize / 2,
		opts:    opts,
		current: cur,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(k, windowSize int, opts topk.Options) *TopK {
	w, err := New(k, windowSize, opts)
	if err != nil {
		panic(err)
	}
	return w
}

// Add records one item and rotates the panes at pane boundaries.
func (w *TopK) Add(key []byte) {
	w.current.Insert(key)
	w.seq++
	if w.seq >= uint64(w.pane) {
		w.rotate()
	}
}

// rotate retires the previous pane and opens a fresh one. Pane sketches
// reuse the same options (and hence seed); determinism is preserved and
// panes never merge, so identical seeding is harmless.
func (w *TopK) rotate() {
	w.prev = w.current
	w.current = topk.MustNew(w.opts)
	w.seq = 0
	w.rotates++
}

// Top reports the top-k flows over the live panes (covering the last W/2
// to W items), combining per-pane estimates by sum: a flow active in both
// panes accrued its count across them.
func (w *TopK) Top() []metrics.Entry {
	cur := toEntries(w.current.Top())
	if w.prev == nil {
		if len(cur) > w.k {
			cur = cur[:w.k]
		}
		return cur
	}
	merged := map[string]uint64{}
	for _, e := range cur {
		merged[e.Key] += e.Count
	}
	for _, e := range toEntries(w.prev.Top()) {
		merged[e.Key] += e.Count
	}
	out := make([]metrics.Entry, 0, len(merged))
	for k, c := range merged {
		out = append(out, metrics.Entry{Key: k, Count: c})
	}
	sortEntries(out)
	if len(out) > w.k {
		out = out[:w.k]
	}
	return out
}

// Query returns the windowed estimate for key (sum of live panes).
func (w *TopK) Query(key []byte) uint64 {
	est := w.current.Query(key)
	if w.prev != nil {
		est += w.prev.Query(key)
	}
	return est
}

// Rotations returns the number of pane rotations, for tests and monitoring.
func (w *TopK) Rotations() uint64 { return w.rotates }

// WindowSize returns the nominal window coverage in items.
func (w *TopK) WindowSize() int { return 2 * w.pane }

func toEntries(in []topk.Entry) []metrics.Entry {
	out := make([]metrics.Entry, len(in))
	for i, e := range in {
		out[i] = metrics.Entry{Key: e.Key, Count: e.Count}
	}
	return out
}

func sortEntries(es []metrics.Entry) {
	// Insertion sort: reports are k-sized.
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for ; j >= 0 && less(es[j], e); j-- {
			es[j+1] = es[j]
		}
		es[j+1] = e
	}
}

func less(a, b metrics.Entry) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Key > b.Key
}
