// Package window provides approximate sliding-window top-k on top of
// HeavyKeeper, using the classic two-pane construction: items are inserted
// into a current pane; every W/2 items the panes rotate and the oldest pane
// is discarded. A report merges the live panes, so it always covers at
// least the last W/2 and at most the last W items — the windowed variant
// of the paper's per-epoch reporting (footnote 2), and the setting CSS
// (Ben-Basat et al., INFOCOM 2016) targets natively.
package window

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topk"
)

// TopK tracks the top-k flows of (approximately) the last W items.
type TopK struct {
	k       int
	pane    int // items per pane = W/2
	opts    topk.Options
	seq     uint64 // items inserted into the current pane
	current *topk.Tracker
	prev    *topk.Tracker // nil before the first rotation
	rotates uint64
}

// New returns a sliding-window tracker covering windowSize items, with the
// given per-pane HeavyKeeper options (opts.K is overridden with k).
func New(k, windowSize int, opts topk.Options) (*TopK, error) {
	if k < 1 {
		return nil, fmt.Errorf("window: k = %d, must be >= 1", k)
	}
	if windowSize < 2 {
		return nil, fmt.Errorf("window: windowSize = %d, must be >= 2", windowSize)
	}
	opts.K = k
	cur, err := topk.New(opts)
	if err != nil {
		return nil, err
	}
	return &TopK{
		k:       k,
		pane:    windowSize / 2,
		opts:    opts,
		current: cur,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(k, windowSize int, opts topk.Options) *TopK {
	w, err := New(k, windowSize, opts)
	if err != nil {
		panic(err)
	}
	return w
}

// Add records one item and rotates the panes at pane boundaries.
func (w *TopK) Add(key []byte) {
	w.current.Insert(key)
	w.seq++
	if w.seq >= uint64(w.pane) {
		w.rotate()
	}
}

// AddN records one weight-n arrival (n packets folded into one item, or n
// bytes when ranking by volume). It advances the window by a single item:
// the two-pane construction counts arrivals, not weight, so a weighted
// arrival ages the window exactly like a unit one.
func (w *TopK) AddN(key []byte, n uint64) {
	if n == 0 {
		return
	}
	w.current.InsertN(key, n)
	w.seq++
	if w.seq >= uint64(w.pane) {
		w.rotate()
	}
}

// AddBatch records one item per key in stream order. Pane rotation must be
// checked at every item, so the batch flows down the current pane's batched
// sketch path a rotation-free run at a time — results are identical to a
// loop over Add.
func (w *TopK) AddBatch(keys [][]byte) {
	for len(keys) > 0 {
		room := uint64(w.pane) - w.seq
		run := uint64(len(keys))
		if run > room {
			run = room
		}
		w.current.InsertBatch(keys[:run])
		w.seq += run
		keys = keys[run:]
		if w.seq >= uint64(w.pane) {
			w.rotate()
		}
	}
}

// Rotate forces a pane rotation now, regardless of how many items the
// current pane holds: the previous pane's counts are discarded and the
// current pane becomes the previous one. Operators use this to start a
// fresh epoch on demand (hkd hot reconfig) without waiting for the
// arrival-driven boundary.
func (w *TopK) Rotate() { w.rotate() }

// rotate retires the previous pane and opens a fresh one. Pane sketches
// reuse the same options (and hence seed); determinism is preserved and
// panes never merge, so identical seeding is harmless.
func (w *TopK) rotate() {
	w.prev = w.current
	w.current = topk.MustNew(w.opts)
	w.seq = 0
	w.rotates++
}

// Top reports the top-k flows over the live panes (covering the last W/2
// to W items), combining per-pane estimates by sum: a flow active in both
// panes accrued its count across them.
func (w *TopK) Top() []metrics.Entry {
	cur := toEntries(w.current.Top())
	if w.prev == nil {
		if len(cur) > w.k {
			cur = cur[:w.k]
		}
		return cur
	}
	merged := map[string]uint64{}
	for _, e := range cur {
		merged[e.Key] += e.Count
	}
	for _, e := range toEntries(w.prev.Top()) {
		merged[e.Key] += e.Count
	}
	out := make([]metrics.Entry, 0, len(merged))
	for k, c := range merged {
		out = append(out, metrics.Entry{Key: k, Count: c})
	}
	sortEntries(out)
	if len(out) > w.k {
		out = out[:w.k]
	}
	return out
}

// Query returns the windowed estimate for key (sum of live panes).
func (w *TopK) Query(key []byte) uint64 {
	est := w.current.Query(key)
	if w.prev != nil {
		est += w.prev.Query(key)
	}
	return est
}

// Rotations returns the number of pane rotations, for tests and monitoring.
func (w *TopK) Rotations() uint64 { return w.rotates }

// K returns the configured report size.
func (w *TopK) K() int { return w.k }

// Stats sums the live panes' ingest event counters. Retired panes'
// counters are discarded with their pane, so totals cover at most the
// last W items — the same horizon the report does.
func (w *TopK) Stats() core.Stats {
	st := w.current.Sketch().Stats()
	if w.prev != nil {
		p := w.prev.Sketch().Stats()
		st.Packets += p.Packets
		st.Increments += p.Increments
		st.EmptyTakes += p.EmptyTakes
		st.DecayProbes += p.DecayProbes
		st.Decays += p.Decays
		st.Replacements += p.Replacements
		st.Overflows += p.Overflows
		st.Expansions += p.Expansions
	}
	return st
}

// MemoryBytes is the logical footprint of the live panes.
func (w *TopK) MemoryBytes() int {
	total := w.current.MemoryBytes()
	if w.prev != nil {
		total += w.prev.MemoryBytes()
	}
	return total
}

// WindowSize returns the nominal window coverage in items.
func (w *TopK) WindowSize() int { return 2 * w.pane }

func toEntries(in []topk.Entry) []metrics.Entry {
	out := make([]metrics.Entry, len(in))
	for i, e := range in {
		out[i] = metrics.Entry{Key: e.Key, Count: e.Count}
	}
	return out
}

func sortEntries(es []metrics.Entry) {
	// Insertion sort: reports are k-sized.
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for ; j >= 0 && less(es[j], e); j-- {
			es[j+1] = es[j]
		}
		es[j+1] = e
	}
}

func less(a, b metrics.Entry) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Key > b.Key
}
