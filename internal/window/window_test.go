package window

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/topk"
	"repro/internal/xrand"
)

func opts() topk.Options {
	return topk.Options{Sketch: core.Config{W: 512, Seed: 3}}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 100, opts()); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(5, 1, opts()); err == nil {
		t.Error("windowSize=1 accepted")
	}
	if _, err := New(5, 100, topk.Options{Sketch: core.Config{W: 0}}); err == nil {
		t.Error("bad sketch options accepted")
	}
}

func TestRotationCadence(t *testing.T) {
	w := MustNew(5, 100, opts()) // pane = 50
	for i := 0; i < 49; i++ {
		w.Add([]byte("x"))
	}
	if w.Rotations() != 0 {
		t.Fatalf("rotated after %d items", 49)
	}
	w.Add([]byte("x"))
	if w.Rotations() != 1 {
		t.Fatalf("no rotation at pane boundary")
	}
	if w.WindowSize() != 100 {
		t.Errorf("WindowSize = %d want 100", w.WindowSize())
	}
}

func TestOldTrafficExpires(t *testing.T) {
	w := MustNew(3, 1000, opts()) // pane = 500
	// An old elephant entirely in the first pane.
	for i := 0; i < 400; i++ {
		w.Add([]byte("old"))
	}
	if got := w.Query([]byte("old")); got != 400 {
		t.Fatalf("fresh query = %d want 400", got)
	}
	// Two panes of fresh traffic push it out of the window.
	for i := 0; i < 1100; i++ {
		w.Add([]byte(fmt.Sprintf("fresh-%d", i%5)))
	}
	if got := w.Query([]byte("old")); got != 0 {
		t.Errorf("expired flow still reports %d", got)
	}
	for _, e := range w.Top() {
		if e.Key == "old" {
			t.Error("expired flow still in the windowed top-k")
		}
	}
}

func TestWindowCountsSpanPanes(t *testing.T) {
	w := MustNew(3, 200, opts()) // pane = 100
	// A flow active across the rotation keeps its combined count.
	for i := 0; i < 150; i++ {
		w.Add([]byte("span"))
	}
	got := w.Query([]byte("span"))
	if got != 150 {
		t.Errorf("spanning flow reports %d want 150", got)
	}
	top := w.Top()
	if len(top) == 0 || top[0].Key != "span" || top[0].Count != 150 {
		t.Errorf("Top = %v", top)
	}
}

func TestWindowedTopKTracksRecentElephants(t *testing.T) {
	const pane = 5000
	w := MustNew(5, 2*pane, opts())
	rng := xrand.NewXorshift64Star(9)
	// Phase 1: elephants A0..A4 dominate.
	for i := 0; i < 2*pane; i++ {
		if i%3 == 0 {
			w.Add([]byte(fmt.Sprintf("A%d", i%5)))
		} else {
			w.Add([]byte(fmt.Sprintf("m%d", rng.Uint64n(3000))))
		}
	}
	// Phase 2: elephants B0..B4 take over for two full panes.
	for i := 0; i < 2*pane; i++ {
		if i%3 == 0 {
			w.Add([]byte(fmt.Sprintf("B%d", i%5)))
		} else {
			w.Add([]byte(fmt.Sprintf("m%d", rng.Uint64n(3000))))
		}
	}
	top := w.Top()
	bs := 0
	for _, e := range top {
		if e.Key[0] == 'B' {
			bs++
		}
		if e.Key[0] == 'A' {
			t.Errorf("stale elephant %s still reported", e.Key)
		}
	}
	if bs < 4 {
		t.Errorf("only %d/5 recent elephants reported: %v", bs, top)
	}
}

func TestTopBeforeFirstRotation(t *testing.T) {
	w := MustNew(2, 1000, opts())
	w.Add([]byte("a"))
	w.Add([]byte("a"))
	w.Add([]byte("b"))
	top := w.Top()
	if len(top) != 2 || top[0].Key != "a" || top[0].Count != 2 {
		t.Errorf("Top = %v", top)
	}
}

func BenchmarkWindowAdd(b *testing.B) {
	w := MustNew(100, 1<<16, topk.Options{Sketch: core.Config{W: 4096, Seed: 1}})
	keys := make([][]byte, 1<<12)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Add(keys[i&(len(keys)-1)])
	}
}
