package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the published splitmix64 algorithm.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("Next() #%d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64DifferentSeedsDiverge(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestXorshiftZeroSeedRemapped(t *testing.T) {
	x := NewXorshift64Star(0)
	if x.state == 0 {
		t.Fatal("zero seed left state zero; generator would be stuck")
	}
	if x.Next() == 0 {
		t.Fatal("xorshift64* must never emit zero")
	}
}

func TestXorshiftNeverZero(t *testing.T) {
	x := NewXorshift64Star(12345)
	for i := 0; i < 100000; i++ {
		if x.Next() == 0 {
			t.Fatalf("emitted zero at step %d", i)
		}
	}
}

func TestXorshiftDeterministic(t *testing.T) {
	a := NewXorshift64Star(7)
	b := NewXorshift64Star(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXorshift64Star(99)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := NewXorshift64Star(4242)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of %d uniform draws = %v, want ~0.5", n, mean)
	}
}

func TestUint64nRange(t *testing.T) {
	x := NewXorshift64Star(1)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nOneAlwaysZero(t *testing.T) {
	x := NewXorshift64Star(8)
	for i := 0; i < 100; i++ {
		if v := x.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", v)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewXorshift64Star(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			NewXorshift64Star(1).Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared smoke test over 16 buckets.
	x := NewXorshift64Star(31337)
	const buckets = 16
	const draws = 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[x.Uint64n(buckets)]++
	}
	expected := float64(draws) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 37.7 {
		t.Errorf("chi-squared = %v, distribution looks non-uniform", chi2)
	}
}

func TestUint64nBoundProperty(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		x := NewXorshift64Star(seed)
		for i := 0; i < 32; i++ {
			if x.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestShufflePermutes(t *testing.T) {
	x := NewXorshift64Star(5)
	const n = 100
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	x.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool, n)
	for _, v := range vals {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("shuffle broke permutation invariant at value %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func() []int {
		x := NewXorshift64Star(77)
		v := make([]int, 50)
		for i := range v {
			v[i] = i
		}
		x.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
		return v
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shuffle not deterministic at index %d", i)
		}
	}
}

func BenchmarkXorshiftNext(b *testing.B) {
	x := NewXorshift64Star(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = x.Next()
	}
	_ = sink
}

func BenchmarkSplitMixNext(b *testing.B) {
	s := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Next()
	}
	_ = sink
}
