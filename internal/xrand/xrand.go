// Package xrand provides small, fast, deterministic pseudo-random number
// generators used on the hot path of the sketches in this repository.
//
// The sketches need two things math/rand does not give cheaply:
//
//   - a raw 64-bit word per coin flip with no locking and no interface calls,
//     so that an exponential-decay probe costs a handful of instructions; and
//   - bit-for-bit reproducibility under an explicit seed, so that every
//     experiment in the paper reproduction can be replayed exactly.
//
// Two generators are provided: SplitMix64, used to derive seeds and to
// bootstrap other generators, and Xorshift64Star, used for per-packet decay
// coin flips. Neither is cryptographically secure; both pass the statistical
// smoke tests in this package's test file, which is all a measurement sketch
// requires.
package xrand

import "math/bits"

// SplitMix64 is the seed-expansion generator from Steele, Lea and Flood,
// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014). It is used
// to turn one user-provided seed into the many internal seeds a sketch needs
// (one per array, one for fingerprints, one for decay flips) without the
// correlations that naive seed arithmetic introduces.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed. Any seed, including
// zero, is valid.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xorshift64Star is Marsaglia's xorshift generator with a multiplicative
// output scramble (Vigna, "An experimental exploration of Marsaglia's
// xorshift generators, scrambled"). One Next call is three shifts, three
// xors and one multiply — cheap enough to run once per mismatched bucket on
// the packet-insertion path.
//
// The zero state is invalid for raw xorshift; the constructor remaps it.
type Xorshift64Star struct {
	state uint64
}

// NewXorshift64Star returns a generator seeded with seed. A zero seed is
// remapped through SplitMix64 so the state is never zero.
func NewXorshift64Star(seed uint64) *Xorshift64Star {
	if seed == 0 {
		seed = NewSplitMix64(0xdeadbeefcafef00d).Next()
	}
	return &Xorshift64Star{state: seed}
}

// Next returns the next 64-bit value in the sequence. It is never zero.
func (x *Xorshift64Star) Next() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform float64 in [0, 1) derived from the top 53 bits
// of Next. It is used where a probability comparison genuinely needs a
// float; the sketches themselves compare raw words against fixed-point
// thresholds instead.
func (x *Xorshift64Star) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n). It panics if n is zero.
// The implementation uses the widening-multiply trick (Lemire, "Fast random
// integer generation in an interval") without the rejection step; the bias
// is below 2^-32 for the n values used in this repository (trace shuffling,
// workload generation) and irrelevant for measurement workloads.
func (x *Xorshift64Star) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, _ := bits.Mul64(x.Next(), n)
	return hi
}

// Intn returns a uniform value in [0, n) as an int. It panics if n <= 0.
func (x *Xorshift64Star) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
// It mirrors math/rand's Shuffle contract.
func (x *Xorshift64Star) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}
