// Package countertree implements a Counter Tree estimator in the spirit of
// Min Chen and Shigang Chen, "Counter Tree: A Scalable Counter Architecture
// for Per-Flow Traffic Measurement" (ToN 2017), the third recent-work
// baseline in the HeavyKeeper paper's §VI-E comparison.
//
// Counter Tree organizes physical counters in a tree: each flow owns a
// small leaf counter chosen by hash; when a leaf overflows, the overflow is
// carried into a parent counter that is *shared* by many leaves
// (two-dimensional counter sharing). A flow's size is estimated as its leaf
// value plus a de-biased share of its parent chain — following the paper,
// the estimate subtracts the expected contribution of the other flows
// sharing the parent.
//
// This reproduction implements a two-level tree (leaves + one shared parent
// layer), the configuration whose behaviour the HeavyKeeper evaluation
// exercises: estimates from shared counters carry substantial variance on
// skewed traffic, which is why Counter Tree trails HeavyKeeper in Figs
// 20–22. Counter Tree estimates sizes only; to report top-k the harness
// queries the estimator over the candidate flow universe, the same protocol
// the HeavyKeeper authors describe ("we use the formulas derived from its
// author to estimate frequencies of flows").
package countertree

import (
	"fmt"
	"sort"

	"repro/internal/hash"
)

// Config parameterizes a Tree.
type Config struct {
	// Leaves is the number of leaf counters. Required.
	Leaves int
	// Parents is the number of shared parent counters. Required.
	Parents int
	// LeafBits is the leaf counter width (default 8): leaves overflow at
	// 2^LeafBits - 1 and carry into a parent.
	LeafBits uint
	// Degree is how many parents each leaf may carry into (the "virtual
	// counter" spread). Default 2.
	Degree int
	// Seed makes hashing deterministic.
	Seed uint64
}

func (c *Config) setDefaults() error {
	if c.Leaves < 1 {
		return fmt.Errorf("countertree: Leaves = %d, must be >= 1", c.Leaves)
	}
	if c.Parents < 1 {
		return fmt.Errorf("countertree: Parents = %d, must be >= 1", c.Parents)
	}
	if c.LeafBits == 0 {
		c.LeafBits = 8
	}
	if c.LeafBits > 16 {
		return fmt.Errorf("countertree: LeafBits = %d, must be <= 16", c.LeafBits)
	}
	if c.Degree == 0 {
		c.Degree = 2
	}
	if c.Degree < 1 || c.Degree > 8 {
		return fmt.Errorf("countertree: Degree = %d, must be in [1, 8]", c.Degree)
	}
	return nil
}

// Tree is a two-level counter tree.
type Tree struct {
	cfg       Config
	leaves    []uint16 // saturate at leafMax, carry resets to 0
	parents   []uint64
	carries   uint64 // total carries performed
	packets   uint64
	leafMax   uint32
	leafFam   *hash.Family
	parentFam *hash.Family
}

// New returns a Tree for the given configuration.
func New(cfg Config) (*Tree, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return &Tree{
		cfg:       cfg,
		leaves:    make([]uint16, cfg.Leaves),
		parents:   make([]uint64, cfg.Parents),
		leafMax:   uint32((uint64(1) << cfg.LeafBits) - 1),
		leafFam:   hash.NewFamily(cfg.Seed, 1),
		parentFam: hash.NewFamily(cfg.Seed^0x77aa77aa, cfg.Degree),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// FromBytes builds a tree from a byte budget with a 2:1 leaf:parent byte
// split (leaves are 1 byte at the default width, parents 4 bytes).
func FromBytes(budget int, seed uint64) (*Tree, error) {
	leafBytes := budget * 2 / 3
	leaves := leafBytes
	if leaves < 1 {
		leaves = 1
	}
	parents := (budget - leafBytes) / 4
	if parents < 1 {
		parents = 1
	}
	return New(Config{Leaves: leaves, Parents: parents, Seed: seed})
}

// leafIndex returns key's leaf.
func (t *Tree) leafIndex(key []byte) int {
	return t.leafFam.Index(0, key, t.cfg.Leaves)
}

// parentIndex returns the parent a given leaf carries into on its c-th
// carry; spreading carries across Degree parents per leaf implements the
// two-dimensional sharing.
func (t *Tree) parentIndex(leaf int, carry uint64) int {
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(leaf >> (8 * i))
	}
	j := int(carry) % t.cfg.Degree
	return t.parentFam.Index(j, buf[:8], t.cfg.Parents)
}

// Insert records one packet of flow key.
func (t *Tree) Insert(key []byte) {
	t.packets++
	li := t.leafIndex(key)
	if uint32(t.leaves[li]) < t.leafMax {
		t.leaves[li]++
		return
	}
	// Leaf overflow: carry leafMax into a parent and restart the leaf at 1.
	t.parents[t.parentIndex(li, t.carries)] += uint64(t.leafMax)
	t.carries++
	t.leaves[li] = 1
}

// Estimate returns the de-biased size estimate for key: leaf value plus the
// leaf's share of its parents, minus the expected contribution of other
// leaves (total carried volume spread uniformly over parents, scaled by the
// leaf's parent fan-in).
func (t *Tree) Estimate(key []byte) uint64 {
	li := t.leafIndex(key)
	est := float64(t.leaves[li])
	if t.carries == 0 {
		return uint64(est)
	}
	// Sum the parents this leaf feeds.
	var parentSum float64
	seen := map[int]bool{}
	for j := 0; j < t.cfg.Degree; j++ {
		pi := t.parentIndex(li, uint64(j))
		if !seen[pi] {
			seen[pi] = true
			parentSum += float64(t.parents[pi])
		}
	}
	// Expected noise: carried volume from all leaves lands uniformly on
	// parents; this leaf's parents hold |seen|/Parents of it in expectation.
	carried := float64(t.carries) * float64(t.leafMax)
	noise := carried * float64(len(seen)) / float64(t.cfg.Parents)
	own := parentSum - noise
	if own < 0 {
		own = 0
	}
	return uint64(est + own)
}

// Entry is one reported flow.
type Entry struct {
	Key   string
	Count uint64
}

// TopOf estimates every candidate flow and returns the k largest — the
// evaluation protocol for an estimator without an ID store.
func (t *Tree) TopOf(candidates [][]byte, k int) []Entry {
	all := make([]Entry, 0, len(candidates))
	for _, c := range candidates {
		all = append(all, Entry{Key: string(c), Count: t.Estimate(c)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// MemoryBytes reports the logical footprint: LeafBits per leaf and 32 bits
// per parent.
func (t *Tree) MemoryBytes() int {
	leafBits := int(t.cfg.LeafBits) * t.cfg.Leaves
	return (leafBits+7)/8 + 4*t.cfg.Parents
}

// Carries returns the number of leaf overflows so far.
func (t *Tree) Carries() uint64 { return t.carries }
