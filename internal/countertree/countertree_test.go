package countertree

import (
	"fmt"
	"testing"

	"repro/internal/streamtest"
)

func key(i int) []byte { return []byte(fmt.Sprintf("flow-%d", i)) }

func TestValidation(t *testing.T) {
	for i, cfg := range []Config{
		{Leaves: 0, Parents: 10},
		{Leaves: 10, Parents: 0},
		{Leaves: 10, Parents: 10, LeafBits: 20},
		{Leaves: 10, Parents: 10, Degree: 100},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSmallFlowExactInLeaf(t *testing.T) {
	tr := MustNew(Config{Leaves: 1024, Parents: 64, Seed: 1})
	for i := 0; i < 100; i++ { // below the 255 leaf limit
		tr.Insert(key(3))
	}
	if got := tr.Estimate(key(3)); got != 100 {
		t.Errorf("estimate = %d want 100", got)
	}
	if tr.Carries() != 0 {
		t.Errorf("unexpected carries: %d", tr.Carries())
	}
}

func TestOverflowCarriesToParent(t *testing.T) {
	tr := MustNew(Config{Leaves: 1024, Parents: 256, Seed: 2})
	const n = 2000 // forces multiple carries past the 255 leaf limit
	for i := 0; i < n; i++ {
		tr.Insert(key(9))
	}
	if tr.Carries() == 0 {
		t.Fatal("no carries despite overflow")
	}
	est := tr.Estimate(key(9))
	if est < n*80/100 || est > n*120/100 {
		t.Errorf("estimate = %d want within 20%% of %d", est, n)
	}
}

func TestSharedParentNoiseSubtracted(t *testing.T) {
	// Two elephants sharing the parent pool: each estimate should stay in
	// the right ballpark because expected noise is subtracted.
	tr := MustNew(Config{Leaves: 4096, Parents: 512, Seed: 3})
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Insert(key(1))
		tr.Insert(key(2))
	}
	for _, k := range []int{1, 2} {
		est := tr.Estimate(key(k))
		if est < n*70/100 || est > n*130/100 {
			t.Errorf("flow %d estimate = %d want within 30%% of %d", k, est, n)
		}
	}
}

func TestTopOfRanksElephantsFirst(t *testing.T) {
	st := streamtest.Zipf(100000, 2000, 1.5, 13)
	tr := MustNew(Config{Leaves: 8192, Parents: 1024, Seed: 7})
	candidates := make([][]byte, 0, len(st.Exact))
	for k := range st.Exact {
		candidates = append(candidates, []byte(k))
	}
	for _, p := range st.Packets {
		tr.Insert(p)
	}
	var rep []streamtest.Reported
	for _, e := range tr.TopOf(candidates, 10) {
		rep = append(rep, streamtest.Reported{Key: e.Key, Count: e.Count})
	}
	// Counter Tree's shared parents give mice that alias an elephant's
	// parent a huge estimate, so top-k precision is poor by design — this
	// is exactly the behaviour Fig 20 of the HeavyKeeper paper reports.
	// Require only that the estimator is clearly better than chance
	// (chance ≈ 10/2000 = 0.005) and that the single heaviest flow is found.
	p := streamtest.Precision(rep, st.TrueTop(10))
	if p < 0.1 {
		t.Errorf("precision = %v, want >= 0.1 (better than chance)", p)
	}
	top1 := st.TrueTop(1)
	found := false
	for _, e := range rep {
		if top1[e.Key] {
			found = true
		}
	}
	if !found {
		t.Error("heaviest flow missing from Counter Tree's top-10")
	}
}

func TestMemoryBytes(t *testing.T) {
	tr := MustNew(Config{Leaves: 800, Parents: 100})
	if got := tr.MemoryBytes(); got != 800+400 {
		t.Errorf("MemoryBytes = %d want 1200", got)
	}
}

func TestFromBytes(t *testing.T) {
	tr, err := FromBytes(1200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.MemoryBytes(); got > 1300 {
		t.Errorf("MemoryBytes = %d exceeds budget", got)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := MustNew(Config{Leaves: 65536, Parents: 8192, Seed: 1})
	st := streamtest.Zipf(1<<16, 10000, 1.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(st.Packets[i&(len(st.Packets)-1)])
	}
}
