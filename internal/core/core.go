// Package core implements the HeavyKeeper sketch from Yang et al.,
// "HeavyKeeper: An Accurate Algorithm for Finding Top-k Elephant Flows"
// (USENIX ATC 2018; extended in IEEE/ACM ToN).
//
// HeavyKeeper is d arrays of w buckets; each bucket stores a flow
// fingerprint and a counter (§III-B). A packet of flow f maps to one bucket
// per array. If the bucket is empty the flow takes it; if the bucket's
// fingerprint matches, the counter increments; otherwise the counter is
// decayed by one with probability b^-C (count-with-exponential-decay), and a
// counter that reaches zero hands its bucket to the new flow. Mouse flows
// decay away quickly; elephant flows, once resident, are nearly immune
// because b^-C vanishes as C grows.
//
// Three insertion disciplines are provided, matching the paper:
//
//   - Basic (§III-C): every mapped bucket is processed, no top-k feedback.
//   - Parallel (§III-E, Algorithm 1): every mapped bucket is processed
//     independently — implementable in parallel hardware — with
//     Optimization II (selective increment) gated by the caller-supplied
//     min-heap state.
//   - Minimum (§IV, Algorithm 2): at most one bucket is modified per packet
//     (minimum decay), trading the parallel property for accuracy.
//
// The sketch is deliberately single-writer (the paper's model); wrap it for
// concurrent use at a higher layer.
package core

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/hash"
	"repro/internal/xrand"
)

// Default parameter values, chosen to match the paper's evaluation setup
// (§VI-A): d = 2 arrays, decay base b = 1.08, 16-bit fingerprints.
const (
	DefaultD               = 2
	DefaultB               = 1.08
	DefaultFingerprintBits = 16
	DefaultCounterBits     = 32
	DefaultLargeC          = 50 // §III-F: counter value treated as "too large to decay"
)

// Config parameterizes a Sketch.
type Config struct {
	// D is the number of bucket arrays (hash functions). Default 2.
	D int
	// W is the number of buckets per array. Required, >= 1.
	W int
	// B is the exponential decay base (> 1). Default 1.08.
	B float64
	// Decay optionally overrides the decay probability function. When nil,
	// exponential decay b^-C is used. See decay.go for alternatives
	// (§III-B discusses C^-b and sigmoid-style functions).
	Decay DecayFunc
	// FingerprintBits is the fingerprint width in bits (1..32). Default 16.
	FingerprintBits uint
	// CounterBits is the counter width in bits (1..32) used for saturation
	// and for memory accounting. Default 32.
	CounterBits uint
	// Seed makes all hashing and decay coin flips deterministic.
	Seed uint64
	// ExpandThreshold, when > 0, enables the §III-F auto-expansion: a global
	// counter tracks arrivals that found every mapped bucket occupied by a
	// large counter (>= LargeC); when the counter exceeds the threshold a
	// (d+1)-th array is appended and the counter resets.
	ExpandThreshold uint64
	// MaxArrays caps expansion. 0 means no cap beyond memory.
	MaxArrays int
	// LargeC is the counter value beyond which decay is considered futile
	// for the purpose of the expansion trigger. Default 50.
	LargeC uint32
}

func (c *Config) setDefaults() error {
	if c.D == 0 {
		c.D = DefaultD
	}
	if c.D < 1 {
		return fmt.Errorf("core: D = %d, must be >= 1", c.D)
	}
	if c.W < 1 {
		return fmt.Errorf("core: W = %d, must be >= 1", c.W)
	}
	if c.B == 0 {
		c.B = DefaultB
	}
	if c.B <= 1 {
		return fmt.Errorf("core: B = %v, must be > 1", c.B)
	}
	if c.FingerprintBits == 0 {
		c.FingerprintBits = DefaultFingerprintBits
	}
	if c.FingerprintBits > 32 {
		return fmt.Errorf("core: FingerprintBits = %d, must be <= 32", c.FingerprintBits)
	}
	if c.CounterBits == 0 {
		c.CounterBits = DefaultCounterBits
	}
	if c.CounterBits > 32 {
		return fmt.Errorf("core: CounterBits = %d, must be <= 32", c.CounterBits)
	}
	if c.LargeC == 0 {
		c.LargeC = DefaultLargeC
	}
	if c.MaxArrays != 0 && c.MaxArrays < c.D {
		return fmt.Errorf("core: MaxArrays = %d < D = %d", c.MaxArrays, c.D)
	}
	if c.Decay == nil {
		c.Decay = ExpDecay(c.B)
	}
	return nil
}

// bucket is one (fingerprint, counter) cell. Fingerprint 0 means empty; the
// hash layer never emits a zero fingerprint.
type bucket struct {
	fp uint32
	c  uint32
}

// Stats counts the sketch's internal events; useful in tests, ablations and
// the EXPERIMENTS write-up.
type Stats struct {
	Packets      uint64 // insertions processed
	Increments   uint64 // case-2 counter increments
	EmptyTakes   uint64 // case-1 takeovers of an empty bucket
	DecayProbes  uint64 // case-3 coin flips attempted
	Decays       uint64 // counters actually decremented
	Replacements uint64 // counters decayed to zero and rebound to a new flow
	Overflows    uint64 // arrivals blocked by d large counters (§III-F)
	Expansions   uint64 // arrays added by auto-expansion
}

// Sketch is a HeavyKeeper. Create one with New.
type Sketch struct {
	cfg     Config
	arrays  [][]bucket // arrays[j][i]
	seeds   []uint64   // hash seed per array
	fpSeed  uint64
	seedGen *xrand.SplitMix64 // source of future array seeds (expansion)
	rng     *xrand.Xorshift64Star
	decay   decayTable
	maxC    uint32 // counter saturation value
	fpMask  uint32
	stats   Stats
	// overflow is the §III-F global counter since the last expansion.
	overflow uint64
	// scratch backs the batch insert path (batch.go); single-writer like the
	// rest of the sketch.
	scratch batchScratch
}

// New returns a HeavyKeeper for the given configuration.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	sm := xrand.NewSplitMix64(cfg.Seed)
	s := &Sketch{
		cfg:     cfg,
		arrays:  make([][]bucket, cfg.D),
		seeds:   make([]uint64, cfg.D),
		seedGen: sm,
		decay:   buildDecayTable(cfg.Decay),
		maxC:    uint32((uint64(1) << cfg.CounterBits) - 1),
		fpMask:  uint32((uint64(1) << cfg.FingerprintBits) - 1),
	}
	for j := range s.arrays {
		s.arrays[j] = make([]bucket, cfg.W)
		s.seeds[j] = sm.Next()
	}
	s.fpSeed = sm.Next()
	s.rng = xrand.NewXorshift64Star(sm.Next())
	return s, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Sketch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// D returns the current number of arrays (may grow via expansion).
func (s *Sketch) D() int { return len(s.arrays) }

// W returns the number of buckets per array.
func (s *Sketch) W() int { return s.cfg.W }

// Stats returns a copy of the event counters.
func (s *Sketch) Stats() Stats { return s.stats }

// Config returns the sketch's (defaulted) configuration.
func (s *Sketch) Config() Config { return s.cfg }

// MemoryBytes returns the sketch's logical memory footprint: buckets times
// (fingerprint + counter) bits, the accounting the paper uses in §VI-A.
func (s *Sketch) MemoryBytes() int {
	bits := int(s.cfg.FingerprintBits+s.cfg.CounterBits) * s.cfg.W * len(s.arrays)
	return (bits + 7) / 8
}

// BucketBytes returns the logical size of one bucket in bytes for the given
// fingerprint/counter widths; the harness uses it to convert byte budgets
// into W.
func BucketBytes(fingerprintBits, counterBits uint) float64 {
	if fingerprintBits == 0 {
		fingerprintBits = DefaultFingerprintBits
	}
	if counterBits == 0 {
		counterBits = DefaultCounterBits
	}
	return float64(fingerprintBits+counterBits) / 8
}

// Fingerprint returns the sketch's fingerprint for key.
func (s *Sketch) Fingerprint(key []byte) uint32 {
	fp := uint32(hash.Sum64(s.fpSeed, key)) & s.fpMask
	if fp == 0 {
		fp = 1
	}
	return fp
}

func (s *Sketch) index(j int, key []byte) int {
	return fastRange(hash.Sum64(s.seeds[j], key), uint64(s.cfg.W))
}

// fastRange maps a 64-bit hash uniformly onto [0, w) via the high word of
// the 128-bit product (Lemire's fastrange), avoiding the hardware divide a
// % would cost on every packet-array pair.
func fastRange(h, w uint64) int {
	hi, _ := bits.Mul64(h, w)
	return int(hi)
}

// shouldDecay performs one exponential-decay coin flip for counter value c.
func (s *Sketch) shouldDecay(c uint32) bool {
	s.stats.DecayProbes++
	th := s.decay.threshold(c)
	if th == 0 {
		return false
	}
	return s.rng.Next() < th
}

// InsertBasic records one packet of flow key using the basic discipline
// (§III-B/C): all d mapped buckets are processed with no top-k feedback.
// It returns the sketch's estimate for key after the insertion.
func (s *Sketch) InsertBasic(key []byte) uint32 {
	s.stats.Packets++
	fp := s.Fingerprint(key)
	var est uint32
	blocked := true
	for j := range s.arrays {
		b := &s.arrays[j][s.index(j, key)]
		switch {
		case b.c == 0:
			// Case 1: empty bucket — take it.
			b.fp, b.c = fp, 1
			s.stats.EmptyTakes++
			blocked = false
			if est < 1 {
				est = 1
			}
		case b.fp == fp:
			// Case 2: our bucket — increment (saturating).
			if b.c < s.maxC {
				b.c++
			}
			s.stats.Increments++
			blocked = false
			if est < b.c {
				est = b.c
			}
		default:
			// Case 3: someone else's bucket — exponential-weakening decay.
			if b.c < s.cfg.LargeC {
				blocked = false
			}
			if s.shouldDecay(b.c) {
				b.c--
				s.stats.Decays++
				if b.c == 0 {
					b.fp, b.c = fp, 1
					s.stats.Replacements++
					if est < 1 {
						est = 1
					}
				}
			}
		}
	}
	s.noteBlocked(blocked)
	return est
}

// InsertParallel records one packet of flow key using the Hardware Parallel
// discipline (§III-E, Algorithm 1 lines 4–22). inHeap and nmin carry the
// top-k structure's state for Optimization II (selective increment): a
// matching counter is incremented only when the flow is already monitored
// (inHeap) or its counter is still below nmin. The return value is
// Algorithm 1's HeavyK_V: the estimate established by this insertion, and 0
// if no bucket accepted the flow.
func (s *Sketch) InsertParallel(key []byte, inHeap bool, nmin uint32) uint32 {
	s.stats.Packets++
	fp := s.Fingerprint(key)
	var est uint32
	blocked := true
	for j := range s.arrays {
		b := &s.arrays[j][s.index(j, key)]
		switch {
		case b.c == 0:
			b.fp, b.c = fp, 1
			s.stats.EmptyTakes++
			blocked = false
			if est < 1 {
				est = 1
			}
		case b.fp == fp:
			blocked = false
			// Optimization II: if the flow is not monitored and this counter
			// already exceeds nmin, it cannot legitimately belong to the
			// flow (Theorem 1) — leave it untouched. The gate admits
			// C <= nmin so a legitimate flow can reach exactly nmin+1, the
			// value Optimization I's admission rule requires.
			if inHeap || b.c <= nmin {
				if b.c < s.maxC {
					b.c++
				}
				s.stats.Increments++
				if est < b.c {
					est = b.c
				}
			}
		default:
			if b.c < s.cfg.LargeC {
				blocked = false
			}
			if s.shouldDecay(b.c) {
				b.c--
				s.stats.Decays++
				if b.c == 0 {
					b.fp, b.c = fp, 1
					s.stats.Replacements++
					if est < 1 {
						est = 1
					}
				}
			}
		}
	}
	s.noteBlocked(blocked)
	return est
}

// InsertMinimum records one packet of flow key using the Software Minimum
// discipline (§IV, Algorithm 2): at most one mapped bucket changes.
//
// Situation 1: a mapped bucket already holds key's fingerprint — increment
// it (subject to Optimization II gating). Situation 2: no match but an empty
// bucket exists — take the first one. Situation 3: all full, no match —
// decay only the smallest mapped counter.
//
// The return value is Algorithm 2's HeavyK_V (0 when nothing was updated).
func (s *Sketch) InsertMinimum(key []byte, inHeap bool, nmin uint32) uint32 {
	s.stats.Packets++
	fp := s.Fingerprint(key)

	firstEmpty := -1
	minArray := -1
	var minCount uint32
	matched := false

	for j := range s.arrays {
		b := &s.arrays[j][s.index(j, key)]
		if b.c != 0 && b.fp == fp {
			matched = true
			// Situation 1 (with Optimization II gating as in Algorithm 2
			// line 11): increment only when monitored or not yet past nmin,
			// so an unmonitored flow can reach exactly nmin+1 and qualify
			// for Optimization I's admission rule.
			if inHeap || b.c <= nmin {
				if b.c < s.maxC {
					b.c++
				}
				s.stats.Increments++
				return b.c
			}
			// Matching but frozen: Algorithm 2 leaves this bucket alone and
			// keeps scanning; the flow may still claim an empty bucket or
			// decay a minimum elsewhere.
			continue
		}
		if b.c == 0 {
			if firstEmpty < 0 {
				firstEmpty = j
			}
			continue
		}
		if minArray < 0 || b.c < minCount {
			minArray, minCount = j, b.c
		}
	}

	if firstEmpty >= 0 {
		// Situation 2: claim the first empty bucket.
		b := &s.arrays[firstEmpty][s.index(firstEmpty, key)]
		b.fp, b.c = fp, 1
		s.stats.EmptyTakes++
		return 1
	}
	if minArray < 0 {
		// Every mapped bucket matched but was frozen; nothing to do.
		return 0
	}

	// Situation 3: decay the single smallest mapped counter.
	if !matched {
		s.noteBlocked(minCount >= s.cfg.LargeC)
	}
	b := &s.arrays[minArray][s.index(minArray, key)]
	if s.shouldDecay(b.c) {
		b.c--
		s.stats.Decays++
		if b.c == 0 {
			b.fp, b.c = fp, 1
			s.stats.Replacements++
			return 1
		}
	}
	return 0
}

// Query returns the sketch's size estimate for key: the maximum counter
// among mapped buckets whose fingerprint matches (§III-B Query). A flow held
// in no bucket reports 0 — "it is a mouse flow".
func (s *Sketch) Query(key []byte) uint32 {
	fp := s.Fingerprint(key)
	var est uint32
	for j := range s.arrays {
		b := &s.arrays[j][s.index(j, key)]
		if b.c != 0 && b.fp == fp && b.c > est {
			est = b.c
		}
	}
	return est
}

// noteBlocked implements the §III-F global counter and expansion trigger:
// blocked is true when an arriving flow found every mapped bucket holding a
// foreign fingerprint with a large (>= LargeC) counter.
func (s *Sketch) noteBlocked(blocked bool) {
	if !blocked || s.cfg.ExpandThreshold == 0 {
		return
	}
	s.stats.Overflows++
	s.overflow++
	if s.overflow <= s.cfg.ExpandThreshold {
		return
	}
	if s.cfg.MaxArrays > 0 && len(s.arrays) >= s.cfg.MaxArrays {
		return
	}
	s.arrays = append(s.arrays, make([]bucket, s.cfg.W))
	s.seeds = append(s.seeds, s.seedGen.Next())
	s.overflow = 0
	s.stats.Expansions++
}

// OverflowCount returns the current value of the §III-F global counter.
func (s *Sketch) OverflowCount() uint64 { return s.overflow }

// Reset clears all buckets and statistics while keeping configuration,
// seeds and any expanded arrays.
func (s *Sketch) Reset() {
	for j := range s.arrays {
		clear(s.arrays[j])
	}
	s.stats = Stats{}
	s.overflow = 0
}

// ErrCorrupt is returned by decoding when the byte stream is not a valid
// sketch snapshot.
var ErrCorrupt = errors.New("core: corrupt sketch encoding")
