// Package core implements the HeavyKeeper sketch from Yang et al.,
// "HeavyKeeper: An Accurate Algorithm for Finding Top-k Elephant Flows"
// (USENIX ATC 2018; extended in IEEE/ACM ToN).
//
// HeavyKeeper is d arrays of w buckets; each bucket stores a flow
// fingerprint and a counter (§III-B). A packet of flow f maps to one bucket
// per array. If the bucket is empty the flow takes it; if the bucket's
// fingerprint matches, the counter increments; otherwise the counter is
// decayed by one with probability b^-C (count-with-exponential-decay), and a
// counter that reaches zero hands its bucket to the new flow. Mouse flows
// decay away quickly; elephant flows, once resident, are nearly immune
// because b^-C vanishes as C grows.
//
// Three insertion disciplines are provided, matching the paper:
//
//   - Basic (§III-C): every mapped bucket is processed, no top-k feedback.
//   - Parallel (§III-E, Algorithm 1): every mapped bucket is processed
//     independently — implementable in parallel hardware — with
//     Optimization II (selective increment) gated by the caller-supplied
//     min-heap state.
//   - Minimum (§IV, Algorithm 2): at most one bucket is modified per packet
//     (minimum decay), trading the parallel property for accuracy.
//
// # One hash per packet
//
// The hot path hashes the key bytes exactly once (KeyHash). The fingerprint
// and every array index derive from that single 64-bit value by cheap
// register mixing: fp = Mix(fpSeed, h) and, Kirsch–Mitzenmacher style,
// idx_j = reduce(h1 + j·h2, W) with h1 = Mix(h1Seed, h), h2 = Mix(h2Seed, h)|1.
// This matches the paper's hardware variants, which assume a single hash
// unit feeding all d arrays, and removes d of the d+1 key traversals the
// textbook formulation pays. Callers that already hold the key's hash (the
// batch scratch, the sharded router) pass it to the *Hashed entry points so
// nothing is hashed twice.
//
// Buckets live in one contiguous packed []uint64 slab (fingerprint in the
// high 32 bits, counter in the low 32, row-major by array), so each probe is
// a single aligned load with no outer-slice indirection.
//
// The sketch is deliberately single-writer (the paper's model); wrap it for
// concurrent use at a higher layer.
package core

import (
	"errors"
	"fmt"

	"repro/internal/hash"
	"repro/internal/xrand"
)

// Default parameter values, chosen to match the paper's evaluation setup
// (§VI-A): d = 2 arrays, decay base b = 1.08, 16-bit fingerprints.
const (
	DefaultD               = 2
	DefaultB               = 1.08
	DefaultFingerprintBits = 16
	DefaultCounterBits     = 32
	DefaultLargeC          = 50 // §III-F: counter value treated as "too large to decay"
)

// Config parameterizes a Sketch.
type Config struct {
	// D is the number of bucket arrays (hash functions). Default 2.
	D int
	// W is the number of buckets per array. Required, >= 1.
	W int
	// B is the exponential decay base (> 1). Default 1.08.
	B float64
	// Decay optionally overrides the decay probability function. When nil,
	// exponential decay b^-C is used. See decay.go for alternatives
	// (§III-B discusses C^-b and sigmoid-style functions).
	Decay DecayFunc
	// FingerprintBits is the fingerprint width in bits (1..32). Default 16.
	FingerprintBits uint
	// CounterBits is the counter width in bits (1..32) used for saturation
	// and for memory accounting. Default 32.
	CounterBits uint
	// Seed makes all hashing and decay coin flips deterministic.
	Seed uint64
	// ExpandThreshold, when > 0, enables the §III-F auto-expansion: a global
	// counter tracks arrivals that found every mapped bucket occupied by a
	// large counter (>= LargeC); when the counter exceeds the threshold a
	// (d+1)-th array is appended and the counter resets.
	ExpandThreshold uint64
	// MaxArrays caps expansion. 0 means no cap beyond memory.
	MaxArrays int
	// LargeC is the counter value beyond which decay is considered futile
	// for the purpose of the expansion trigger. Default 50.
	LargeC uint32
}

func (c *Config) setDefaults() error {
	if c.D == 0 {
		c.D = DefaultD
	}
	if c.D < 1 {
		return fmt.Errorf("core: D = %d, must be >= 1", c.D)
	}
	if c.W < 1 {
		return fmt.Errorf("core: W = %d, must be >= 1", c.W)
	}
	if c.B == 0 {
		c.B = DefaultB
	}
	if c.B <= 1 {
		return fmt.Errorf("core: B = %v, must be > 1", c.B)
	}
	if c.FingerprintBits == 0 {
		c.FingerprintBits = DefaultFingerprintBits
	}
	if c.FingerprintBits > 32 {
		return fmt.Errorf("core: FingerprintBits = %d, must be <= 32", c.FingerprintBits)
	}
	if c.CounterBits == 0 {
		c.CounterBits = DefaultCounterBits
	}
	if c.CounterBits > 32 {
		return fmt.Errorf("core: CounterBits = %d, must be <= 32", c.CounterBits)
	}
	if c.LargeC == 0 {
		c.LargeC = DefaultLargeC
	}
	if c.MaxArrays != 0 && c.MaxArrays < c.D {
		return fmt.Errorf("core: MaxArrays = %d < D = %d", c.MaxArrays, c.D)
	}
	return nil
}

// A cell is one packed (fingerprint, counter) bucket: fingerprint in the
// high 32 bits, counter in the low 32. A zero counter means empty, so a
// matching increment below saturation is a bare cell+1. Fingerprints are
// remapped away from 0 on creation, but an all-zero cell is the canonical
// empty state.
func packCell(fp, c uint32) uint64 { return uint64(fp)<<32 | uint64(c) }

func cellFP(cell uint64) uint32 { return uint32(cell >> 32) }
func cellC(cell uint64) uint32  { return uint32(cell) }

// Stats counts the sketch's internal events; useful in tests, ablations and
// the EXPERIMENTS write-up.
type Stats struct {
	Packets      uint64 // insertions processed
	Increments   uint64 // case-2 counter increments
	EmptyTakes   uint64 // case-1 takeovers of an empty bucket
	DecayProbes  uint64 // case-3 coin flips attempted
	Decays       uint64 // counters actually decremented
	Replacements uint64 // counters decayed to zero and rebound to a new flow
	Overflows    uint64 // arrivals blocked by d large counters (§III-F)
	Expansions   uint64 // arrays added by auto-expansion
}

// legacyV2 carries the per-array hash seeds of a sketch restored from a
// version-2 snapshot. v2 writers placed flows with d+1 independent xxHash64
// passes (one per array plus the fingerprint); those placements cannot be
// reproduced by the one-hash derivation, so a restored sketch keeps hashing
// the old way — correct, at the old d+1-hashes-per-packet cost. Freshly
// constructed sketches never enter this mode.
type legacyV2 struct {
	seeds  []uint64 // per-array hash seed
	fpSeed uint64   // fingerprint hash seed
}

// Sketch is a HeavyKeeper. Create one with New.
type Sketch struct {
	cfg  Config
	d    int      // current number of arrays (>= cfg.D; expansion grows it)
	w    uint64   // cfg.W, pre-widened for index reduction
	slab []uint64 // packed cells, row-major: cell (j,i) at slab[j*cfg.W+i]

	// One-hash derivation seeds: the key bytes are hashed once under
	// keySeed; fingerprint and double-hashing increments mix that value
	// under fpSeed / h1Seed / h2Seed.
	keySeed uint64
	h1Seed  uint64
	h2Seed  uint64
	fpSeed  uint64

	legacy  *legacyV2         // non-nil only after restoring a v2 snapshot
	seedGen *xrand.SplitMix64 // source of legacy expansion seeds
	rng     *xrand.Xorshift64Star
	decay   decayTable
	maxC    uint32 // counter saturation value
	fpMask  uint32
	stats   Stats
	// overflow is the §III-F global counter since the last expansion.
	overflow uint64
	// pos is the per-insert scratch of flat cell positions, one per array;
	// single-writer like the rest of the sketch.
	pos []int
	// scratch backs the batch insert path (batch.go).
	scratch batchScratch
}

// New returns a HeavyKeeper for the given configuration.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	decay := tableFor(&cfg)
	sm := xrand.NewSplitMix64(cfg.Seed)
	s := &Sketch{
		cfg:     cfg,
		d:       cfg.D,
		w:       uint64(cfg.W),
		slab:    make([]uint64, cfg.D*cfg.W),
		keySeed: sm.Next(),
		h1Seed:  sm.Next(),
		h2Seed:  sm.Next(),
		fpSeed:  sm.Next(),
		decay:   decay,
		maxC:    uint32((uint64(1) << cfg.CounterBits) - 1),
		fpMask:  uint32((uint64(1) << cfg.FingerprintBits) - 1),
		pos:     make([]int, cfg.D),
	}
	s.rng = xrand.NewXorshift64Star(sm.Next())
	s.seedGen = xrand.NewSplitMix64(sm.Next())
	return s, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Sketch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// D returns the current number of arrays (may grow via expansion).
func (s *Sketch) D() int { return s.d }

// W returns the number of buckets per array.
func (s *Sketch) W() int { return s.cfg.W }

// Stats returns a copy of the event counters.
func (s *Sketch) Stats() Stats { return s.stats }

// Config returns the sketch's (defaulted) configuration.
func (s *Sketch) Config() Config { return s.cfg }

// MemoryBytes returns the sketch's logical memory footprint: buckets times
// (fingerprint + counter) bits, the accounting the paper uses in §VI-A.
func (s *Sketch) MemoryBytes() int {
	bits := int(s.cfg.FingerprintBits+s.cfg.CounterBits) * s.cfg.W * s.d
	return (bits + 7) / 8
}

// BucketBytes returns the logical size of one bucket in bytes for the given
// fingerprint/counter widths; the harness uses it to convert byte budgets
// into W.
func BucketBytes(fingerprintBits, counterBits uint) float64 {
	if fingerprintBits == 0 {
		fingerprintBits = DefaultFingerprintBits
	}
	if counterBits == 0 {
		counterBits = DefaultCounterBits
	}
	return float64(fingerprintBits+counterBits) / 8
}

// KeyHash returns the sketch's single 64-bit hash of key, the one pass over
// the key bytes from which the fingerprint and every bucket index derive.
// Callers that route or batch keys compute it once and hand it to the
// *Hashed entry points, keeping the whole stack at one hash per packet.
func (s *Sketch) KeyHash(key []byte) uint64 { return hash.Sum64(s.keySeed, key) }

// KeySeed returns the seed under which KeyHash hashes key bytes. The top-k
// store layer (internal/topk) builds its open-addressed key index with this
// seed so KeyHash values computed here index the store directly — one hash
// per packet across sketch, router and store. The seed is fixed for the
// sketch's lifetime except by snapshot restore (ReadFrom), after which any
// external structure keyed by old KeyHash values must be rebuilt.
func (s *Sketch) KeySeed() uint64 { return s.keySeed }

// LegacyHashing reports whether the sketch was restored from a v2 snapshot
// and therefore places flows with the legacy per-array hashes, ignoring
// KeyHash values. Callers that pay for KeyHash precomputation purely to
// speed up placement can skip it in this mode; note that KeyHash itself
// remains valid (the key seed survives a v2 restore), which is what lets
// the topk store index keep working over a legacy sketch.
func (s *Sketch) LegacyHashing() bool { return s.legacy != nil }

// locateHash fills s.pos with key's flat cell position in every array,
// derived from the single key hash h, and returns the positions and the
// fingerprint. Indexes follow Kirsch–Mitzenmacher double hashing
// (idx_j = reduce(h1 + j·h2, W)); h2 is forced odd so consecutive arrays
// never collapse onto one stride.
func (s *Sketch) locateHash(h uint64) ([]int, uint32) {
	d := s.d
	if cap(s.pos) < d {
		s.pos = make([]int, d)
	}
	pos := s.pos[:d]
	h1 := hash.Mix(s.h1Seed, h)
	h2 := hash.Mix(s.h2Seed, h) | 1
	base := 0
	for j := range pos {
		pos[j] = base + int(hash.Reduce(h1, s.w))
		h1 += h2
		base += s.cfg.W
	}
	fp := uint32(hash.Mix(s.fpSeed, h)) & s.fpMask
	if fp == 0 {
		fp = 1
	}
	return pos, fp
}

// locateLegacy is locateHash for v2-restored sketches: placement and
// fingerprint come from the snapshot's per-array seeds (d+1 key hashes).
func (s *Sketch) locateLegacy(key []byte) ([]int, uint32) {
	lg := s.legacy
	d := s.d
	if cap(s.pos) < d {
		s.pos = make([]int, d)
	}
	pos := s.pos[:d]
	base := 0
	for j := range pos {
		pos[j] = base + int(hash.Reduce(hash.Sum64(lg.seeds[j], key), s.w))
		base += s.cfg.W
	}
	fp := uint32(hash.Sum64(lg.fpSeed, key)) & s.fpMask
	if fp == 0 {
		fp = 1
	}
	return pos, fp
}

// locateKey locates key with exactly one pass over its bytes (modern
// sketches) or the legacy d+1 passes (v2-restored sketches).
func (s *Sketch) locateKey(key []byte) ([]int, uint32) {
	if s.legacy != nil {
		return s.locateLegacy(key)
	}
	return s.locateHash(hash.Sum64(s.keySeed, key))
}

// locateFor locates key given its precomputed KeyHash h; v2-restored
// sketches ignore h and re-hash with their legacy seeds.
func (s *Sketch) locateFor(key []byte, h uint64) ([]int, uint32) {
	if s.legacy != nil {
		return s.locateLegacy(key)
	}
	return s.locateHash(h)
}

// Fingerprint returns the sketch's fingerprint for key.
func (s *Sketch) Fingerprint(key []byte) uint32 {
	var fp uint32
	if lg := s.legacy; lg != nil {
		fp = uint32(hash.Sum64(lg.fpSeed, key)) & s.fpMask
	} else {
		fp = uint32(hash.Mix(s.fpSeed, hash.Sum64(s.keySeed, key))) & s.fpMask
	}
	if fp == 0 {
		fp = 1
	}
	return fp
}

// shouldDecay performs one exponential-decay coin flip for counter value c.
// The zero-probability region — the paper's "regard the probability as 0"
// acceleration — is a single compare against the table's cutoff, with no
// table load and no RNG draw; live counters compare an RNG word against the
// fixed-point threshold (table-free for power-of-two bases).
//
// The draw is deliberately lazy, one rng.Next() per live probe: a
// refill-ahead buffer of pre-generated words was built and measured here
// and came out ~30% slower on the contested-insert microbenchmark — the
// xorshift chain is six register ops the out-of-order core hides under the
// slab cell loads, while a buffer adds L1 traffic, a cursor store-load
// dependency and a bounds check per draw (see doc/performance.md, negative
// results).
func (s *Sketch) shouldDecay(c uint32) bool {
	s.stats.DecayProbes++
	if c == 0 || c >= s.decay.cut {
		return false
	}
	return s.rng.Next() < s.decay.thresholdLive(c)
}

// InsertBasic records one packet of flow key using the basic discipline
// (§III-B/C): all d mapped buckets are processed with no top-k feedback.
// It returns the sketch's estimate for key after the insertion.
func (s *Sketch) InsertBasic(key []byte) uint32 {
	pos, fp := s.locateKey(key)
	return s.insertBasicAt(pos, fp)
}

// InsertBasicHashed is InsertBasic for a caller that precomputed KeyHash.
func (s *Sketch) InsertBasicHashed(key []byte, h uint64) uint32 {
	pos, fp := s.locateFor(key, h)
	return s.insertBasicAt(pos, fp)
}

// insertBasicAt is the basic discipline: the same case analysis as the
// Parallel discipline with the Optimization II gate permanently open (the
// relationship InsertBasicBatch already exploits), so it delegates rather
// than duplicating the packed-cell switch.
func (s *Sketch) insertBasicAt(pos []int, fp uint32) uint32 {
	return s.insertParallelAt(pos, fp, true, 0)
}

// InsertParallel records one packet of flow key using the Hardware Parallel
// discipline (§III-E, Algorithm 1 lines 4–22). inHeap and nmin carry the
// top-k structure's state for Optimization II (selective increment): a
// matching counter is incremented only when the flow is already monitored
// (inHeap) or its counter is still below nmin. The return value is
// Algorithm 1's HeavyK_V: the estimate established by this insertion, and 0
// if no bucket accepted the flow.
func (s *Sketch) InsertParallel(key []byte, inHeap bool, nmin uint32) uint32 {
	pos, fp := s.locateKey(key)
	return s.insertParallelAt(pos, fp, inHeap, nmin)
}

// InsertParallelHashed is InsertParallel for a caller that precomputed
// KeyHash. Semantics, statistics and RNG consumption are identical to
// InsertParallel(key, inHeap, nmin). The common shape — a modern sketch at
// the default d = 2 — derives both cell positions in registers with the
// locate arithmetic inlined, skipping the s.pos scratch round-trip the
// general locate path pays, and enters the two-cell update body directly;
// the positions and fingerprint are the same values locateHash would
// produce, so results are bit-identical.
func (s *Sketch) InsertParallelHashed(key []byte, h uint64, inHeap bool, nmin uint32) uint32 {
	if s.legacy == nil && s.d == 2 {
		h1 := hash.Mix(s.h1Seed, h)
		h2 := hash.Mix(s.h2Seed, h) | 1
		p0 := int(hash.Reduce(h1, s.w))
		p1 := s.cfg.W + int(hash.Reduce(h1+h2, s.w))
		fp := uint32(hash.Mix(s.fpSeed, h)) & s.fpMask
		if fp == 0 {
			fp = 1
		}
		return s.insertParallel2At(p0, p1, fp, inHeap, nmin)
	}
	pos, fp := s.locateFor(key, h)
	return s.insertParallelAt(pos, fp, inHeap, nmin)
}

// decayContested runs the contested-arm case for the foreign live cell at
// flat position p: one exponential-decay coin flip (§III-B
// count-with-exponential-decay), the decrement, and the takeover when the
// counter reaches zero. It returns this arm's estimate contribution: 1 on a
// takeover, 0 otherwise. The zero-probability region is a single compare
// against the compiled cutoff — no table load, no RNG draw — so a resident
// elephant's bucket costs one branch here; live counters draw exactly one
// RNG word (batch.go's bit-for-bit contract pins the stream, so the draw
// cannot be hoisted or batched; a refill-ahead buffer of pre-generated words
// was also measured ~30% slower than the lazy draw — the xorshift chain is
// six register ops the out-of-order core hides under the slab loads, while
// a buffer adds L1 traffic, a cursor store-load dependency and a bounds
// check per draw; see doc/performance.md, negative results).
func (s *Sketch) decayContested(p int, cell uint64, fp uint32) uint32 {
	c := cellC(cell)
	s.stats.DecayProbes++
	if c < s.decay.cut && s.rng.Next() < s.decay.thresholdLive(c) {
		cell--
		s.stats.Decays++
		if cellC(cell) == 0 {
			cell = packCell(fp, 1)
			s.stats.Replacements++
			s.slab[p] = cell
			return 1
		}
		s.slab[p] = cell
	}
	return 0
}

// insertParallelAt is the Parallel-discipline cell update: the three-way case
// analysis (empty-take / fingerprint-hit / decay-probe) per mapped cell. The
// common shape — the default d = 2 — takes insertParallel2At, which hoists
// both slab loads ahead of the case analysis; d != 2 (expanded sketches)
// walks the general loop. Semantics, statistics and RNG consumption are
// identical between the two shapes and to the single fused switch they
// replace; TestInsertParallelAtMatchesReference pins that.
func (s *Sketch) insertParallelAt(pos []int, fp uint32, inHeap bool, nmin uint32) uint32 {
	if len(pos) == 2 {
		return s.insertParallel2At(pos[0], pos[1], fp, inHeap, nmin)
	}
	s.stats.Packets++
	var est uint32
	blocked := true
	for _, p := range pos {
		cell := s.slab[p]
		c := cellC(cell)
		switch {
		case c == 0:
			s.slab[p] = packCell(fp, 1)
			s.stats.EmptyTakes++
			blocked = false
			if est < 1 {
				est = 1
			}
		case cellFP(cell) == fp:
			blocked = false
			// Optimization II: if the flow is not monitored and this counter
			// already exceeds nmin, it cannot legitimately belong to the
			// flow (Theorem 1) — leave it untouched. The gate admits
			// C <= nmin so a legitimate flow can reach exactly nmin+1, the
			// value Optimization I's admission rule requires.
			if inHeap || c <= nmin {
				if c < s.maxC {
					c++
					s.slab[p] = cell + 1
				}
				s.stats.Increments++
				if est < c {
					est = c
				}
			}
		default:
			if c < s.cfg.LargeC {
				blocked = false
			}
			if r := s.decayContested(p, cell, fp); est < r {
				est = r
			}
		}
	}
	s.noteBlocked(blocked)
	return est
}

// insertParallel2At is insertParallelAt for the default two-array shape. The
// two flat positions live in disjoint slab rows (locateHash offsets each
// array by W), so the loads are independent and neither case body's store
// can alias the other cell; issuing both loads before any case analysis lets
// them overlap their cache latency instead of serializing behind the first
// cell's branches. The per-cell bodies are the same case analysis as the
// general loop, in the same order, so statistics and the decay RNG stream
// are consumed identically.
func (s *Sketch) insertParallel2At(p0, p1 int, fp uint32, inHeap bool, nmin uint32) uint32 {
	s.stats.Packets++
	cell0 := s.slab[p0]
	cell1 := s.slab[p1]
	var est uint32
	blocked := true

	c := cellC(cell0)
	switch {
	case c == 0:
		s.slab[p0] = packCell(fp, 1)
		s.stats.EmptyTakes++
		blocked = false
		est = 1
	case cellFP(cell0) == fp:
		blocked = false
		if inHeap || c <= nmin {
			if c < s.maxC {
				c++
				s.slab[p0] = cell0 + 1
			}
			s.stats.Increments++
			est = c
		}
	default:
		blocked = c >= s.cfg.LargeC
		s.stats.DecayProbes++
		if c < s.decay.cut && s.rng.Next() < s.decay.thresholdLive(c) {
			cell0--
			s.stats.Decays++
			if cellC(cell0) == 0 {
				cell0 = packCell(fp, 1)
				s.stats.Replacements++
				est = 1
			}
			s.slab[p0] = cell0
		}
	}

	c = cellC(cell1)
	switch {
	case c == 0:
		s.slab[p1] = packCell(fp, 1)
		s.stats.EmptyTakes++
		blocked = false
		if est < 1 {
			est = 1
		}
	case cellFP(cell1) == fp:
		blocked = false
		if inHeap || c <= nmin {
			if c < s.maxC {
				c++
				s.slab[p1] = cell1 + 1
			}
			s.stats.Increments++
			if est < c {
				est = c
			}
		}
	default:
		blocked = blocked && c >= s.cfg.LargeC
		s.stats.DecayProbes++
		if c < s.decay.cut && s.rng.Next() < s.decay.thresholdLive(c) {
			cell1--
			s.stats.Decays++
			if cellC(cell1) == 0 {
				cell1 = packCell(fp, 1)
				s.stats.Replacements++
				if est < 1 {
					est = 1
				}
			}
			s.slab[p1] = cell1
		}
	}

	s.noteBlocked(blocked)
	return est
}

// InsertMinimum records one packet of flow key using the Software Minimum
// discipline (§IV, Algorithm 2): at most one mapped bucket changes.
//
// Situation 1: a mapped bucket already holds key's fingerprint — increment
// it (subject to Optimization II gating). Situation 2: no match but an empty
// bucket exists — take the first one. Situation 3: all full, no match —
// decay only the smallest mapped counter.
//
// The return value is Algorithm 2's HeavyK_V (0 when nothing was updated).
func (s *Sketch) InsertMinimum(key []byte, inHeap bool, nmin uint32) uint32 {
	pos, fp := s.locateKey(key)
	return s.insertMinimumAt(pos, fp, inHeap, nmin)
}

// InsertMinimumHashed is InsertMinimum for a caller that precomputed KeyHash.
func (s *Sketch) InsertMinimumHashed(key []byte, h uint64, inHeap bool, nmin uint32) uint32 {
	pos, fp := s.locateFor(key, h)
	return s.insertMinimumAt(pos, fp, inHeap, nmin)
}

func (s *Sketch) insertMinimumAt(pos []int, fp uint32, inHeap bool, nmin uint32) uint32 {
	s.stats.Packets++

	firstEmpty := -1
	minPos := -1
	var minCount uint32
	matched := false

	for _, p := range pos {
		cell := s.slab[p]
		c := cellC(cell)
		if c != 0 && cellFP(cell) == fp {
			matched = true
			// Situation 1 (with Optimization II gating as in Algorithm 2
			// line 11): increment only when monitored or not yet past nmin,
			// so an unmonitored flow can reach exactly nmin+1 and qualify
			// for Optimization I's admission rule.
			if inHeap || c <= nmin {
				if c < s.maxC {
					c++
					s.slab[p] = cell + 1
				}
				s.stats.Increments++
				return c
			}
			// Matching but frozen: Algorithm 2 leaves this bucket alone and
			// keeps scanning; the flow may still claim an empty bucket or
			// decay a minimum elsewhere.
			continue
		}
		if c == 0 {
			if firstEmpty < 0 {
				firstEmpty = p
			}
			continue
		}
		if minPos < 0 || c < minCount {
			minPos, minCount = p, c
		}
	}

	if firstEmpty >= 0 {
		// Situation 2: claim the first empty bucket.
		s.slab[firstEmpty] = packCell(fp, 1)
		s.stats.EmptyTakes++
		return 1
	}
	if minPos < 0 {
		// Every mapped bucket matched but was frozen; nothing to do.
		return 0
	}

	// Situation 3: decay the single smallest mapped counter.
	if !matched {
		s.noteBlocked(minCount >= s.cfg.LargeC)
	}
	cell := s.slab[minPos]
	if s.shouldDecay(cellC(cell)) {
		cell--
		s.stats.Decays++
		if cellC(cell) == 0 {
			s.slab[minPos] = packCell(fp, 1)
			s.stats.Replacements++
			return 1
		}
		s.slab[minPos] = cell
	}
	return 0
}

// Query returns the sketch's size estimate for key: the maximum counter
// among mapped buckets whose fingerprint matches (§III-B Query). A flow held
// in no bucket reports 0 — "it is a mouse flow".
func (s *Sketch) Query(key []byte) uint32 {
	pos, fp := s.locateKey(key)
	return s.queryAt(pos, fp)
}

// QueryHashed is Query for a caller that precomputed KeyHash.
func (s *Sketch) QueryHashed(key []byte, h uint64) uint32 {
	pos, fp := s.locateFor(key, h)
	return s.queryAt(pos, fp)
}

func (s *Sketch) queryAt(pos []int, fp uint32) uint32 {
	var est uint32
	for _, p := range pos {
		cell := s.slab[p]
		if c := cellC(cell); c != 0 && cellFP(cell) == fp && c > est {
			est = c
		}
	}
	return est
}

// noteBlocked implements the §III-F global counter and expansion trigger:
// blocked is true when an arriving flow found every mapped bucket holding a
// foreign fingerprint with a large (>= LargeC) counter.
func (s *Sketch) noteBlocked(blocked bool) {
	if !blocked || s.cfg.ExpandThreshold == 0 {
		return
	}
	s.stats.Overflows++
	s.overflow++
	if s.overflow <= s.cfg.ExpandThreshold {
		return
	}
	if s.cfg.MaxArrays > 0 && s.d >= s.cfg.MaxArrays {
		return
	}
	s.slab = append(s.slab, make([]uint64, s.cfg.W)...)
	s.d++
	if s.legacy != nil {
		s.legacy.seeds = append(s.legacy.seeds, s.seedGen.Next())
	}
	s.overflow = 0
	s.stats.Expansions++
}

// OverflowCount returns the current value of the §III-F global counter.
func (s *Sketch) OverflowCount() uint64 { return s.overflow }

// Reset clears all buckets and statistics while keeping configuration,
// seeds and any expanded arrays.
func (s *Sketch) Reset() {
	clear(s.slab)
	s.stats = Stats{}
	s.overflow = 0
}

// ErrCorrupt is returned by decoding when the byte stream is not a valid
// sketch snapshot.
var ErrCorrupt = errors.New("core: corrupt sketch encoding")
