package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/xrand"
)

func key(i int) []byte { return []byte(fmt.Sprintf("flow-%d", i)) }

func TestConfigDefaults(t *testing.T) {
	s := MustNew(Config{W: 100})
	cfg := s.Config()
	if cfg.D != DefaultD || cfg.B != DefaultB ||
		cfg.FingerprintBits != DefaultFingerprintBits ||
		cfg.CounterBits != DefaultCounterBits || cfg.LargeC != DefaultLargeC {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{W: 0},
		{W: 10, D: -1},
		{W: 10, B: 0.9},
		{W: 10, B: 1.0},
		{W: 10, FingerprintBits: 33},
		{W: 10, CounterBits: 40},
		{W: 10, D: 4, MaxArrays: 2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) accepted invalid config", i, cfg)
		}
	}
}

func TestSingleFlowCountsExactly(t *testing.T) {
	// One flow alone in the sketch is never decayed, so every version must
	// count it exactly.
	for _, version := range []string{"basic", "parallel", "minimum"} {
		s := MustNew(Config{W: 64, Seed: 1})
		k := key(7)
		const n = 1000
		for i := 0; i < n; i++ {
			switch version {
			case "basic":
				s.InsertBasic(k)
			case "parallel":
				s.InsertParallel(k, true, 0)
			case "minimum":
				s.InsertMinimum(k, true, 0)
			}
		}
		got := s.Query(k)
		switch version {
		case "basic", "parallel":
			if got != n {
				t.Errorf("%s: Query = %d want %d", version, got, n)
			}
		case "minimum":
			// Minimum touches one bucket only; still exact.
			if got != n {
				t.Errorf("%s: Query = %d want %d", version, got, n)
			}
		}
	}
}

func TestQueryUnknownFlowIsZero(t *testing.T) {
	s := MustNew(Config{W: 64, Seed: 1})
	s.InsertBasic(key(1))
	if got := s.Query(key(999)); got != 0 {
		t.Errorf("Query(unknown) = %d want 0 (mouse-flow report)", got)
	}
}

// TestNoOverestimation verifies Theorem 2: with no fingerprint collision,
// the reported size never exceeds the true size. We use 32-bit fingerprints
// over a tiny keyspace so collisions are (with overwhelming probability)
// absent, and check all three disciplines.
func TestNoOverestimation(t *testing.T) {
	for _, version := range []string{"basic", "parallel", "minimum"} {
		t.Run(version, func(t *testing.T) {
			s := MustNew(Config{W: 32, Seed: 42, FingerprintBits: 32})
			truth := map[int]uint32{}
			rng := xrand.NewXorshift64Star(7)
			for i := 0; i < 50000; i++ {
				f := int(rng.Uint64n(rng.Uint64n(300) + 1)) // skewed
				truth[uint32OK(f)]++
				switch version {
				case "basic":
					s.InsertBasic(key(f))
				case "parallel":
					s.InsertParallel(key(f), false, math.MaxUint32)
				case "minimum":
					s.InsertMinimum(key(f), false, math.MaxUint32)
				}
			}
			for f, n := range truth {
				if got := s.Query(key(f)); got > n {
					t.Errorf("flow %d: estimate %d > true %d (Theorem 2 violated)", f, got, n)
				}
			}
		})
	}
}

func uint32OK(f int) int { return f }

// TestElephantSurvivesMice is the paper's core behavioural claim (§III-B
// Analysis): an elephant flow stays resident and nearly exact even when many
// mouse flows share its buckets.
func TestElephantSurvivesMice(t *testing.T) {
	s := MustNew(Config{W: 16, Seed: 3}) // tiny: heavy collisions guaranteed
	rng := xrand.NewXorshift64Star(11)
	elephant := key(0)
	const n = 20000
	mice := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s.InsertBasic(elephant)
		} else {
			// Each mouse appears about once.
			s.InsertBasic(key(1 + int(rng.Uint64n(5000))))
			mice++
		}
	}
	got := s.Query(elephant)
	want := uint32(n / 2)
	if got == 0 {
		t.Fatal("elephant was evicted entirely")
	}
	if float64(got) < 0.95*float64(want) {
		t.Errorf("elephant estimate %d < 95%% of true %d", got, want)
	}
	if got > want {
		t.Errorf("elephant estimate %d > true %d", got, want)
	}
}

// TestMouseDecaysAway: a flow with one packet mapped to a contested bucket
// should be replaced quickly — the count-with-exponential-decay strategy.
func TestMouseDecaysAway(t *testing.T) {
	s := MustNew(Config{W: 1, D: 1, Seed: 5}) // one bucket: maximal contention
	s.InsertBasic(key(1))
	if got := s.Query(key(1)); got != 1 {
		t.Fatalf("mouse not recorded, Query = %d", got)
	}
	// A stream of a different flow decays the mouse (P = b^-1 ≈ 0.926 per
	// probe) and takes over.
	for i := 0; i < 100; i++ {
		s.InsertBasic(key(2))
	}
	if got := s.Query(key(1)); got != 0 {
		t.Errorf("mouse still resident with count %d after takeover", got)
	}
	if got := s.Query(key(2)); got == 0 {
		t.Error("replacement flow not resident")
	}
}

func TestCounterNeverZeroOnceMapped(t *testing.T) {
	// §III-B: "as long as flows are mapped to a bucket, its counter field
	// will never be 0" — a decay to zero immediately rebinds with C=1.
	s := MustNew(Config{W: 4, D: 1, Seed: 9})
	rng := xrand.NewXorshift64Star(2)
	for i := 0; i < 20000; i++ {
		s.InsertBasic(key(int(rng.Uint64n(50))))
	}
	touched := 0
	for _, cell := range s.slab[:s.cfg.W] {
		if cellFP(cell) != 0 {
			touched++
			if cellC(cell) == 0 {
				t.Error("bucket holds a fingerprint with zero counter")
			}
		}
	}
	if touched == 0 {
		t.Fatal("no buckets were ever occupied")
	}
}

func TestParallelSelectiveIncrement(t *testing.T) {
	// Optimization II: an unmonitored flow's matching counter may grow to
	// exactly nmin+1 and is then frozen.
	s := MustNew(Config{W: 8, Seed: 1})
	k := key(3)
	s.InsertParallel(k, true, 0) // establish with C=1
	for i := 0; i < 10; i++ {
		s.InsertParallel(k, false, 1) // gate: C <= 1 allows one increment to 2
	}
	if got := s.Query(k); got != 2 {
		t.Errorf("counter = %d, want frozen at nmin+1 = 2", got)
	}
	// Monitored flows are never gated.
	s.InsertParallel(k, true, 1)
	if got := s.Query(k); got != 3 {
		t.Errorf("monitored increment failed: counter = %d want 3", got)
	}
	// With a generous nmin the increment proceeds too.
	s.InsertParallel(k, false, 100)
	if got := s.Query(k); got != 4 {
		t.Errorf("increment under nmin failed: counter = %d want 4", got)
	}
}

func TestMinimumTouchesAtMostOneBucket(t *testing.T) {
	s := MustNew(Config{W: 64, D: 4, Seed: 21})
	rng := xrand.NewXorshift64Star(3)
	// Preload some state.
	for i := 0; i < 5000; i++ {
		s.InsertMinimum(key(int(rng.Uint64n(500))), true, 0)
	}
	for trial := 0; trial < 2000; trial++ {
		before := s.snapshotBuckets()
		s.InsertMinimum(key(int(rng.Uint64n(1000))), true, 0)
		changed := 0
		after := s.snapshotBuckets()
		for i := range before {
			if before[i] != after[i] {
				changed++
			}
		}
		if changed > 1 {
			t.Fatalf("InsertMinimum changed %d buckets, want <= 1", changed)
		}
	}
}

func (s *Sketch) snapshotBuckets() []uint64 {
	return append([]uint64(nil), s.slab...)
}

// indexOf returns key's bucket index within array j, for tests that need to
// steer keys onto specific buckets.
func (s *Sketch) indexOf(j int, key []byte) int {
	pos, _ := s.locateKey(key)
	return pos[j] - j*s.cfg.W
}

func TestMinimumPrefersEmptyBucket(t *testing.T) {
	// Situation 2: when a mapped bucket is empty the flow must take it
	// rather than decaying anyone.
	s := MustNew(Config{W: 256, D: 2, Seed: 8})
	v := s.InsertMinimum(key(1), true, 0)
	if v != 1 {
		t.Fatalf("InsertMinimum returned %d want 1", v)
	}
	st := s.Stats()
	if st.EmptyTakes != 1 || st.Decays != 0 {
		t.Errorf("stats = %+v, want exactly one empty take and no decay", st)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := MustNew(Config{W: 2, D: 1, Seed: 4})
	for i := 0; i < 1000; i++ {
		s.InsertBasic(key(i % 50))
	}
	st := s.Stats()
	if st.Packets != 1000 {
		t.Errorf("Packets = %d want 1000", st.Packets)
	}
	if st.DecayProbes == 0 || st.Decays == 0 || st.Replacements == 0 {
		t.Errorf("expected decay activity on a contended sketch, got %+v", st)
	}
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Error("Reset did not clear stats")
	}
	if got := s.Query(key(1)); got != 0 {
		t.Errorf("Reset did not clear buckets, Query = %d", got)
	}
}

func TestExpansion(t *testing.T) {
	s := MustNew(Config{
		W: 2, D: 1, Seed: 6,
		ExpandThreshold: 10,
		MaxArrays:       3,
		LargeC:          5,
	})
	// Fill both buckets of the single array with large counters.
	heavyA, heavyB := 0, 0
	for i := 0; i < 1000 && (heavyA == 0 || heavyB == 0); i++ {
		if s.indexOf(0, key(i)) == 0 && heavyA == 0 {
			heavyA = i + 1 // avoid key(0) colliding with sentinel 0
		}
		if s.indexOf(0, key(i)) == 1 && heavyB == 0 {
			heavyB = i + 1
		}
	}
	for i := 0; i < 100; i++ {
		s.InsertBasic(key(heavyA - 1))
		s.InsertBasic(key(heavyB - 1))
	}
	if s.D() != 1 {
		t.Fatalf("premature expansion to %d arrays", s.D())
	}
	// Now hammer with new flows that find only large counters.
	for i := 10000; i < 10400; i++ {
		s.InsertBasic(key(i))
	}
	if s.D() < 2 {
		t.Errorf("expected expansion, still %d arrays (overflows=%d)", s.D(), s.Stats().Overflows)
	}
	if s.D() > 3 {
		t.Errorf("expansion exceeded MaxArrays: %d", s.D())
	}
	if s.Stats().Expansions == 0 {
		t.Error("Expansions stat not recorded")
	}
}

func TestExpansionDisabledByDefault(t *testing.T) {
	s := MustNew(Config{W: 1, D: 1, Seed: 6, LargeC: 2})
	for i := 0; i < 10000; i++ {
		s.InsertBasic(key(i % 3))
	}
	if s.D() != 1 {
		t.Errorf("sketch expanded without ExpandThreshold: D = %d", s.D())
	}
	if s.Stats().Overflows != 0 {
		t.Errorf("overflow counted while expansion disabled: %d", s.Stats().Overflows)
	}
}

func TestCounterSaturation(t *testing.T) {
	s := MustNew(Config{W: 8, CounterBits: 4, Seed: 1}) // max count 15
	k := key(1)
	for i := 0; i < 100; i++ {
		s.InsertBasic(k)
	}
	if got := s.Query(k); got != 15 {
		t.Errorf("saturated counter = %d want 15", got)
	}
}

func TestMemoryBytes(t *testing.T) {
	s := MustNew(Config{W: 1000, D: 2, FingerprintBits: 16, CounterBits: 16})
	if got := s.MemoryBytes(); got != 8000 {
		t.Errorf("MemoryBytes = %d want 8000 (2 arrays × 1000 × 4B)", got)
	}
	if got := BucketBytes(16, 16); got != 4 {
		t.Errorf("BucketBytes(16,16) = %v want 4", got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() uint32 {
		s := MustNew(Config{W: 32, Seed: 1234})
		rng := xrand.NewXorshift64Star(99)
		for i := 0; i < 10000; i++ {
			s.InsertBasic(key(int(rng.Uint64n(200))))
		}
		return s.Query(key(5))
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different sketches: %d vs %d", a, b)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	mk := func(seed uint64) *Sketch {
		s := MustNew(Config{W: 32, Seed: seed})
		for i := 0; i < 1000; i++ {
			s.InsertBasic(key(i % 100))
		}
		return s
	}
	a, b := mk(1), mk(2)
	same := true
	for i := 0; i < 100; i++ {
		if a.Query(key(i)) != b.Query(key(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical estimates for 100 flows")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := MustNew(Config{W: 64, Seed: 77})
	rng := xrand.NewXorshift64Star(5)
	for i := 0; i < 20000; i++ {
		s.InsertBasic(key(int(rng.Uint64n(300))))
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	restored := MustNew(Config{W: 64, Seed: 0}) // different seed on purpose
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	for i := 0; i < 300; i++ {
		if a, b := s.Query(key(i)), restored.Query(key(i)); a != b {
			t.Fatalf("flow %d: original %d, restored %d", i, a, b)
		}
	}
}

func TestSnapshotRejectsCorrupt(t *testing.T) {
	s := MustNew(Config{W: 8, Seed: 1})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0xff // clobber version
	r := MustNew(Config{W: 8, Seed: 1})
	if _, err := r.ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Error("corrupt snapshot accepted")
	}
	// Truncated stream.
	r2 := MustNew(Config{W: 8, Seed: 1})
	if _, err := r2.ReadFrom(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Error("truncated snapshot accepted")
	}
	// Mismatched W.
	r3 := MustNew(Config{W: 16, Seed: 1})
	if _, err := r3.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("snapshot with wrong W accepted")
	}
}

func TestFingerprintStability(t *testing.T) {
	s := MustNew(Config{W: 8, Seed: 1})
	k := key(42)
	fp := s.Fingerprint(k)
	if fp == 0 {
		t.Fatal("zero fingerprint emitted")
	}
	for i := 0; i < 100; i++ {
		if s.Fingerprint(k) != fp {
			t.Fatal("fingerprint not stable")
		}
	}
	if fp > 0xffff {
		t.Errorf("16-bit fingerprint out of range: %#x", fp)
	}
}

func BenchmarkInsertBasic(b *testing.B) {
	s := MustNew(Config{W: 4096, Seed: 1})
	keys := makeKeys(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InsertBasic(keys[i&(len(keys)-1)])
	}
}

func BenchmarkInsertParallel(b *testing.B) {
	s := MustNew(Config{W: 4096, Seed: 1})
	keys := makeKeys(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InsertParallel(keys[i&(len(keys)-1)], false, 10)
	}
}

// BenchmarkInsertParallelHit isolates the fingerprint-hit path: one resident
// flow incremented repeatedly, the steady state of a zipfian stream's
// elephants. BenchmarkInsertParallel above is its contested complement
// (uniform keys over a small slab, decay-probe dominated).
func BenchmarkInsertParallelHit(b *testing.B) {
	s := MustNew(Config{W: 4096, Seed: 1})
	k := []byte("elephant-flow")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InsertParallel(k, true, 10)
	}
}

func BenchmarkInsertMinimum(b *testing.B) {
	s := MustNew(Config{W: 4096, Seed: 1})
	keys := makeKeys(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InsertMinimum(keys[i&(len(keys)-1)], false, 10)
	}
}

func BenchmarkQuery(b *testing.B) {
	s := MustNew(Config{W: 4096, Seed: 1})
	keys := makeKeys(1 << 16)
	for _, k := range keys {
		s.InsertBasic(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(keys[i&(len(keys)-1)])
	}
}

func makeKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	return keys
}
