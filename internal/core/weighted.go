package core

// Weighted insertion. The paper notes (§III-F) that HeavyKeeper "cannot
// support weighted updates"; this file implements the natural extension
// used by follow-on systems: a weight-w arrival behaves like w unit
// arrivals of the same flow. Owned and empty buckets take the whole weight
// in O(1); a contested bucket runs per-unit decay trials, with an early
// exit once the counter is large enough that the decay probability is
// exactly zero (the same §III-B cutoff as the unit path), so the worst case
// is O(min(w, C)) trials rather than O(w).
//
// Theorem 1 does not survive weighting — a newly admitted flow's estimate
// can exceed n_min+1 by up to w — so the weighted top-k path in
// internal/topk admits on n̂ > n_min instead of Optimization I's equality
// rule.

// addSaturating adds w to c with saturation at the configured counter max.
func (s *Sketch) addSaturating(c uint32, w uint64) uint32 {
	nv := uint64(c) + w
	if nv > uint64(s.maxC) {
		return s.maxC
	}
	return uint32(nv)
}

// contested runs weight decay trials against the foreign cell at flat
// position p. It returns the weight remaining after the cell (possibly)
// reaches zero and is taken over; taken reports whether the takeover
// happened (the cell then holds fp with counter 0, for the caller to top
// up).
func (s *Sketch) contested(p int, fp uint32, weight uint64) (remaining uint64, taken bool) {
	cell := s.slab[p]
	for u := uint64(0); u < weight; u++ {
		th := s.decay.threshold(cellC(cell))
		if th == 0 {
			// Decay probability is exactly zero and the counter can only
			// grow from here; no further trial can change anything.
			s.slab[p] = cell
			return 0, false
		}
		s.stats.DecayProbes++
		if s.rng.Next() < th {
			cell--
			s.stats.Decays++
			if cellC(cell) == 0 {
				s.slab[p] = packCell(fp, 0)
				s.stats.Replacements++
				return weight - u - 1, true
			}
		}
	}
	s.slab[p] = cell
	return 0, false
}

// InsertBasicN records a weight-n arrival of flow key with the basic
// discipline and returns the post-insertion estimate. InsertBasicN(key, 1)
// is equivalent to InsertBasic(key).
func (s *Sketch) InsertBasicN(key []byte, n uint64) uint32 {
	if n == 0 {
		return s.Query(key)
	}
	pos, fp := s.locateKey(key)
	return s.insertBasicNAt(pos, fp, n)
}

// InsertBasicNHashed is InsertBasicN for a caller that precomputed KeyHash.
func (s *Sketch) InsertBasicNHashed(key []byte, h uint64, n uint64) uint32 {
	if n == 0 {
		return s.QueryHashed(key, h)
	}
	pos, fp := s.locateFor(key, h)
	return s.insertBasicNAt(pos, fp, n)
}

func (s *Sketch) insertBasicNAt(pos []int, fp uint32, n uint64) uint32 {
	s.stats.Packets++
	var est uint32
	blocked := true
	for _, p := range pos {
		cell := s.slab[p]
		c := cellC(cell)
		switch {
		case c == 0:
			s.slab[p] = packCell(fp, s.addSaturating(0, n))
			s.stats.EmptyTakes++
			blocked = false
		case cellFP(cell) == fp:
			s.slab[p] = packCell(fp, s.addSaturating(c, n))
			s.stats.Increments++
			blocked = false
		default:
			if c < s.cfg.LargeC {
				blocked = false
			}
			if rem, taken := s.contested(p, fp, n); taken {
				s.slab[p] = packCell(fp, s.addSaturating(1, rem))
			}
		}
		cell = s.slab[p]
		if cellFP(cell) == fp && cellC(cell) > est {
			est = cellC(cell)
		}
	}
	s.noteBlocked(blocked)
	return est
}

// InsertParallelN is the weighted Hardware Parallel insertion. The
// selective-increment gate applies as in the unit path: an unmonitored
// flow's matching counter grows only while at or below nmin, and then by at
// most the weight.
func (s *Sketch) InsertParallelN(key []byte, inHeap bool, nmin uint32, n uint64) uint32 {
	if n == 0 {
		return s.Query(key)
	}
	pos, fp := s.locateKey(key)
	return s.insertParallelNAt(pos, fp, inHeap, nmin, n)
}

// InsertParallelNHashed is InsertParallelN for a caller that precomputed
// KeyHash.
func (s *Sketch) InsertParallelNHashed(key []byte, h uint64, inHeap bool, nmin uint32, n uint64) uint32 {
	if n == 0 {
		return s.QueryHashed(key, h)
	}
	pos, fp := s.locateFor(key, h)
	return s.insertParallelNAt(pos, fp, inHeap, nmin, n)
}

func (s *Sketch) insertParallelNAt(pos []int, fp uint32, inHeap bool, nmin uint32, n uint64) uint32 {
	s.stats.Packets++
	var est uint32
	blocked := true
	for _, p := range pos {
		cell := s.slab[p]
		c := cellC(cell)
		switch {
		case c == 0:
			nc := s.addSaturating(0, n)
			s.slab[p] = packCell(fp, nc)
			s.stats.EmptyTakes++
			blocked = false
			if nc > est {
				est = nc
			}
		case cellFP(cell) == fp:
			blocked = false
			if inHeap || c <= nmin {
				nc := s.addSaturating(c, n)
				s.slab[p] = packCell(fp, nc)
				s.stats.Increments++
				if nc > est {
					est = nc
				}
			}
		default:
			if c < s.cfg.LargeC {
				blocked = false
			}
			if rem, taken := s.contested(p, fp, n); taken {
				nc := s.addSaturating(1, rem)
				s.slab[p] = packCell(fp, nc)
				if nc > est {
					est = nc
				}
			}
		}
	}
	s.noteBlocked(blocked)
	return est
}

// InsertMinimumN is the weighted Software Minimum insertion: at most one
// bucket changes, as in the unit path.
func (s *Sketch) InsertMinimumN(key []byte, inHeap bool, nmin uint32, n uint64) uint32 {
	if n == 0 {
		return s.Query(key)
	}
	pos, fp := s.locateKey(key)
	return s.insertMinimumNAt(pos, fp, inHeap, nmin, n)
}

// InsertMinimumNHashed is InsertMinimumN for a caller that precomputed
// KeyHash.
func (s *Sketch) InsertMinimumNHashed(key []byte, h uint64, inHeap bool, nmin uint32, n uint64) uint32 {
	if n == 0 {
		return s.QueryHashed(key, h)
	}
	pos, fp := s.locateFor(key, h)
	return s.insertMinimumNAt(pos, fp, inHeap, nmin, n)
}

func (s *Sketch) insertMinimumNAt(pos []int, fp uint32, inHeap bool, nmin uint32, n uint64) uint32 {
	s.stats.Packets++

	firstEmpty := -1
	minPos := -1
	var minCount uint32
	matched := false

	for _, p := range pos {
		cell := s.slab[p]
		c := cellC(cell)
		if c != 0 && cellFP(cell) == fp {
			matched = true
			if inHeap || c <= nmin {
				nc := s.addSaturating(c, n)
				s.slab[p] = packCell(fp, nc)
				s.stats.Increments++
				return nc
			}
			continue
		}
		if c == 0 {
			if firstEmpty < 0 {
				firstEmpty = p
			}
			continue
		}
		if minPos < 0 || c < minCount {
			minPos, minCount = p, c
		}
	}

	if firstEmpty >= 0 {
		nc := s.addSaturating(0, n)
		s.slab[firstEmpty] = packCell(fp, nc)
		s.stats.EmptyTakes++
		return nc
	}
	if minPos < 0 {
		return 0
	}
	if !matched {
		s.noteBlocked(minCount >= s.cfg.LargeC)
	}
	if rem, taken := s.contested(minPos, fp, n); taken {
		nc := s.addSaturating(1, rem)
		s.slab[minPos] = packCell(fp, nc)
		return nc
	}
	return 0
}
