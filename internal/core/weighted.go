package core

// Weighted insertion. The paper notes (§III-F) that HeavyKeeper "cannot
// support weighted updates"; this file implements the natural extension
// used by follow-on systems: a weight-w arrival behaves like w unit
// arrivals of the same flow. Owned and empty buckets take the whole weight
// in O(1); a contested bucket runs per-unit decay trials, with an early
// exit once the counter is large enough that the decay probability is
// exactly zero (the same §III-B cutoff as the unit path), so the worst case
// is O(min(w, C)) trials rather than O(w).
//
// Theorem 1 does not survive weighting — a newly admitted flow's estimate
// can exceed n_min+1 by up to w — so the weighted top-k path in
// internal/topk admits on n̂ > n_min instead of Optimization I's equality
// rule.

// addSaturating adds w to c with saturation at the configured counter max.
func (s *Sketch) addSaturating(c uint32, w uint64) uint32 {
	nv := uint64(c) + w
	if nv > uint64(s.maxC) {
		return s.maxC
	}
	return uint32(nv)
}

// contested runs weight decay trials against a foreign bucket. It returns
// the weight remaining after the bucket (possibly) reaches zero and is
// taken over; taken reports whether the takeover happened.
func (s *Sketch) contested(b *bucket, fp uint32, weight uint64) (remaining uint64, taken bool) {
	for u := uint64(0); u < weight; u++ {
		th := s.decay.threshold(b.c)
		if th == 0 {
			// Decay probability is exactly zero and the counter can only
			// grow from here; no further trial can change anything.
			return 0, false
		}
		s.stats.DecayProbes++
		if s.rng.Next() < th {
			b.c--
			s.stats.Decays++
			if b.c == 0 {
				b.fp = fp
				s.stats.Replacements++
				return weight - u - 1, true
			}
		}
	}
	return 0, false
}

// InsertBasicN records a weight-n arrival of flow key with the basic
// discipline and returns the post-insertion estimate. InsertBasicN(key, 1)
// is equivalent to InsertBasic(key).
func (s *Sketch) InsertBasicN(key []byte, n uint64) uint32 {
	if n == 0 {
		return s.Query(key)
	}
	s.stats.Packets++
	fp := s.Fingerprint(key)
	var est uint32
	blocked := true
	for j := range s.arrays {
		b := &s.arrays[j][s.index(j, key)]
		switch {
		case b.c == 0:
			b.fp = fp
			b.c = s.addSaturating(0, n)
			s.stats.EmptyTakes++
			blocked = false
		case b.fp == fp:
			b.c = s.addSaturating(b.c, n)
			s.stats.Increments++
			blocked = false
		default:
			if b.c < s.cfg.LargeC {
				blocked = false
			}
			if rem, taken := s.contested(b, fp, n); taken {
				b.c = s.addSaturating(1, rem)
			}
		}
		if b.fp == fp && b.c > est {
			est = b.c
		}
	}
	s.noteBlocked(blocked)
	return est
}

// InsertParallelN is the weighted Hardware Parallel insertion. The
// selective-increment gate applies as in the unit path: an unmonitored
// flow's matching counter grows only while at or below nmin, and then by at
// most the weight.
func (s *Sketch) InsertParallelN(key []byte, inHeap bool, nmin uint32, n uint64) uint32 {
	if n == 0 {
		return s.Query(key)
	}
	s.stats.Packets++
	fp := s.Fingerprint(key)
	var est uint32
	blocked := true
	for j := range s.arrays {
		b := &s.arrays[j][s.index(j, key)]
		switch {
		case b.c == 0:
			b.fp = fp
			b.c = s.addSaturating(0, n)
			s.stats.EmptyTakes++
			blocked = false
			if b.c > est {
				est = b.c
			}
		case b.fp == fp:
			blocked = false
			if inHeap || b.c <= nmin {
				b.c = s.addSaturating(b.c, n)
				s.stats.Increments++
				if b.c > est {
					est = b.c
				}
			}
		default:
			if b.c < s.cfg.LargeC {
				blocked = false
			}
			if rem, taken := s.contested(b, fp, n); taken {
				b.c = s.addSaturating(1, rem)
				if b.c > est {
					est = b.c
				}
			}
		}
	}
	s.noteBlocked(blocked)
	return est
}

// InsertMinimumN is the weighted Software Minimum insertion: at most one
// bucket changes, as in the unit path.
func (s *Sketch) InsertMinimumN(key []byte, inHeap bool, nmin uint32, n uint64) uint32 {
	if n == 0 {
		return s.Query(key)
	}
	s.stats.Packets++
	fp := s.Fingerprint(key)

	firstEmpty := -1
	minArray := -1
	var minCount uint32
	matched := false

	for j := range s.arrays {
		b := &s.arrays[j][s.index(j, key)]
		if b.c != 0 && b.fp == fp {
			matched = true
			if inHeap || b.c <= nmin {
				b.c = s.addSaturating(b.c, n)
				s.stats.Increments++
				return b.c
			}
			continue
		}
		if b.c == 0 {
			if firstEmpty < 0 {
				firstEmpty = j
			}
			continue
		}
		if minArray < 0 || b.c < minCount {
			minArray, minCount = j, b.c
		}
	}

	if firstEmpty >= 0 {
		b := &s.arrays[firstEmpty][s.index(firstEmpty, key)]
		b.fp = fp
		b.c = s.addSaturating(0, n)
		s.stats.EmptyTakes++
		return b.c
	}
	if minArray < 0 {
		return 0
	}
	if !matched {
		s.noteBlocked(minCount >= s.cfg.LargeC)
	}
	b := &s.arrays[minArray][s.index(minArray, key)]
	if rem, taken := s.contested(b, fp, n); taken {
		b.c = s.addSaturating(1, rem)
		return b.c
	}
	return 0
}
