package core

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode throws arbitrary byte streams at the snapshot decoder. The
// contract: a frame either decodes into a usable sketch or fails with
// ErrCorrupt — never a panic, never another error class, never a
// pathological allocation. Both v2 (legacy per-array seeds) and v3 (packed
// one-hash) frames are in the seed corpus, plus truncations and header
// mutations of each.
func FuzzDecode(f *testing.F) {
	v3 := func() []byte {
		s := MustNew(Config{W: 8, Seed: 1})
		for i := 0; i < 500; i++ {
			s.InsertBasic(key(i % 30))
		}
		var buf bytes.Buffer
		s.WriteTo(&buf)
		return buf.Bytes()
	}()
	v2 := encodeV2Empty(2, 8, 42)

	f.Add(v3)
	f.Add(v2)
	f.Add(v3[:9])
	f.Add(v2[:25])
	f.Add([]byte{})
	for _, frame := range [][]byte{v3, v2} {
		for _, cut := range []int{1, 8, 16, 24, 31, len(frame) - 1} {
			if cut < len(frame) {
				f.Add(frame[:cut])
			}
		}
		mutated := append([]byte(nil), frame...)
		mutated[0] ^= 0xff
		f.Add(mutated)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s := MustNew(Config{W: 8, Seed: 1})
		if _, err := s.ReadFrom(bytes.NewReader(data)); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v is not ErrCorrupt", err)
			}
			return
		}
		// A frame that decoded must leave the sketch fully usable.
		k := []byte("probe-flow")
		before := s.Query(k)
		est := s.InsertBasic(k)
		if est == 0 && s.Query(k) > before+1 {
			t.Fatalf("restored sketch inconsistent: insert est 0 but query grew %d -> %d",
				before, s.Query(k))
		}
		s.InsertParallel(k, true, 0)
		s.InsertMinimum(k, true, 0)
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode of restored sketch failed: %v", err)
		}
	})
}
