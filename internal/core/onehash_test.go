package core

import (
	"bytes"
	"testing"

	"repro/internal/hash"
)

// countHashes returns how many key-bytes hashes (hash.Sum64 calls) fn makes.
func countHashes(fn func()) uint64 {
	var n uint64
	hash.CountCalls(&n)
	defer hash.CountCalls(nil)
	fn()
	return n
}

// TestOneHashPerInsert pins the tentpole invariant: every insert discipline,
// the query path and the weighted variants traverse the key bytes exactly
// once. The fingerprint and all d bucket indexes derive from that single
// 64-bit hash.
func TestOneHashPerInsert(t *testing.T) {
	s := MustNew(Config{W: 256, D: 3, Seed: 1})
	k := key(42)
	cases := map[string]func(){
		"InsertBasic":    func() { s.InsertBasic(k) },
		"InsertParallel": func() { s.InsertParallel(k, false, 10) },
		"InsertMinimum":  func() { s.InsertMinimum(k, false, 10) },
		"Query":          func() { s.Query(k) },
		"InsertBasicN":   func() { s.InsertBasicN(k, 3) },
		"InsertParallelN": func() {
			s.InsertParallelN(k, true, 0, 3)
		},
		"InsertMinimumN": func() { s.InsertMinimumN(k, true, 0, 3) },
		"Fingerprint":    func() { s.Fingerprint(k) },
		"KeyHash":        func() { s.KeyHash(k) },
	}
	for name, fn := range cases {
		if got := countHashes(fn); got != 1 {
			t.Errorf("%s: %d key hashes, want exactly 1", name, got)
		}
	}
}

// TestOneHashPerBatchKey: a batch of n keys hashes exactly n times, and the
// *Hashed entry points hash zero times.
func TestOneHashPerBatchKey(t *testing.T) {
	s := MustNew(Config{W: 256, Seed: 2})
	stream := batchStream(1000, 100, 5)
	if got := countHashes(func() { s.AddBatch(stream) }); got != uint64(len(stream)) {
		t.Errorf("AddBatch(%d keys): %d key hashes, want %d", len(stream), got, len(stream))
	}
	k := key(7)
	h := s.KeyHash(k)
	for name, fn := range map[string]func(){
		"InsertBasicHashed":    func() { s.InsertBasicHashed(k, h) },
		"InsertParallelHashed": func() { s.InsertParallelHashed(k, h, true, 0) },
		"InsertMinimumHashed":  func() { s.InsertMinimumHashed(k, h, true, 0) },
		"QueryHashed":          func() { s.QueryHashed(k, h) },
		"InsertBasicNHashed":   func() { s.InsertBasicNHashed(k, h, 2) },
	} {
		if got := countHashes(fn); got != 0 {
			t.Errorf("%s: %d key hashes, want 0 (hash was precomputed)", name, got)
		}
	}
}

// TestLegacySketchHashesPerArray documents the v2-shim cost model: a sketch
// restored from a v2 snapshot keeps the old placement and therefore the old
// d+1 hashes per packet.
func TestLegacySketchHashesPerArray(t *testing.T) {
	s := legacySketch(t, Config{W: 64, Seed: 3}, 2)
	d := uint64(s.D())
	if got := countHashes(func() { s.InsertBasic(key(1)) }); got != d+1 {
		t.Errorf("legacy InsertBasic: %d key hashes, want d+1 = %d", got, d+1)
	}
	if got := countHashes(func() { s.Query(key(1)) }); got != d+1 {
		t.Errorf("legacy Query: %d key hashes, want d+1 = %d", got, d+1)
	}
	// A sketch-only batch (no gate/report consuming the hashes) must not
	// waste a KeyHash pass the legacy placement would then discard. Batches
	// driven through internal/topk do hash once per key regardless — the
	// store index is keyed by KeyHash, which stays valid after a v2
	// restore — putting those at d+2 passes per key.
	stream := batchStream(500, 50, 4)
	want := uint64(len(stream)) * (d + 1)
	if got := countHashes(func() { s.AddBatch(stream) }); got != want {
		t.Errorf("legacy AddBatch(%d keys): %d key hashes, want (d+1)·n = %d", len(stream), got, want)
	}
}

// legacySketch builds a sketch in v2 compatibility mode by decoding an empty
// v2 frame with the given array count.
func legacySketch(t *testing.T, cfg Config, d int) *Sketch {
	t.Helper()
	s := MustNew(cfg)
	frame := encodeV2Empty(d, s.W(), 99)
	if _, err := s.ReadFrom(bytes.NewReader(frame)); err != nil {
		t.Fatalf("decoding synthetic v2 frame: %v", err)
	}
	if s.legacy == nil {
		t.Fatal("v2 decode did not enter legacy mode")
	}
	return s
}
