package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestExpDecayValues(t *testing.T) {
	f := ExpDecay(1.08)
	cases := []struct {
		c    uint32
		want float64
	}{
		{1, 1 / 1.08},
		{2, 1 / (1.08 * 1.08)},
		{21, math.Pow(1.08, -21)},
	}
	for _, tc := range cases {
		if got := f(tc.c); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ExpDecay(1.08)(%d) = %v want %v", tc.c, got, tc.want)
		}
	}
}

func TestDecayFuncsMonotoneDecreasing(t *testing.T) {
	funcs := map[string]DecayFunc{
		"exp":     ExpDecay(1.08),
		"poly":    PolyDecay(1.08),
		"sigmoid": SigmoidDecay(8),
	}
	for name, f := range funcs {
		prev := math.Inf(1)
		for c := uint32(1); c < 500; c++ {
			p := f(c)
			if p < 0 || p > 1 {
				t.Errorf("%s(%d) = %v out of [0,1]", name, c, p)
			}
			if p > prev {
				t.Errorf("%s not decreasing at C=%d: %v > %v", name, c, p, prev)
			}
			prev = p
		}
	}
}

func TestDecayConstructorsValidate(t *testing.T) {
	for _, fn := range []func(){
		func() { ExpDecay(1.0) },
		func() { ExpDecay(0.5) },
		func() { PolyDecay(0) },
		func() { SigmoidDecay(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid decay parameter did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDecayTableMatchesFunction(t *testing.T) {
	f := ExpDecay(1.08)
	table := buildDecayTable(f)
	for c := uint32(1); c < 100; c++ {
		want := f(c)
		got := float64(table.threshold(c)) / math.Ldexp(1, 64)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("threshold(%d)/2^64 = %v want %v", c, got, want)
		}
	}
}

func TestDecayTableLargeCZero(t *testing.T) {
	// §III-B property 2: for large C the probability is treated as exactly
	// zero. For b = 1.08, b^-C < 2^-64 needs C ≈ 577; beyond the table every
	// threshold must be 0.
	table := buildDecayTable(ExpDecay(1.08))
	if table.threshold(maxDecayTable+100) != 0 {
		t.Error("threshold beyond table not zero")
	}
	if table.threshold(0) != 0 {
		t.Error("threshold(0) should be zero (counters are >= 1 in case 3)")
	}
	// A very aggressive base truncates the table early.
	small := buildDecayTable(ExpDecay(4.0))
	if len(small.thresholds) >= 64 {
		t.Errorf("b=4 table has %d entries, expected far fewer (4^-32 < 2^-64)", len(small.thresholds))
	}
}

func TestProbToThresholdBounds(t *testing.T) {
	if got := probToThreshold(1.0); got != math.MaxUint64 {
		t.Errorf("probToThreshold(1) = %d want MaxUint64", got)
	}
	if got := probToThreshold(0); got != 0 {
		t.Errorf("probToThreshold(0) = %d want 0", got)
	}
	if got := probToThreshold(-0.5); got != 0 {
		t.Errorf("probToThreshold(-0.5) = %d want 0", got)
	}
	if got := probToThreshold(2.0); got != math.MaxUint64 {
		t.Errorf("probToThreshold(2) = %d want MaxUint64", got)
	}
	f := func(p float64) bool {
		p = math.Abs(p)
		p -= math.Floor(p) // into [0,1)
		th := probToThreshold(p)
		back := float64(th) / math.Ldexp(1, 64)
		return math.Abs(back-p) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEmpiricalDecayRate drives the coin flip through the sketch plumbing
// and verifies the observed decay frequency matches b^-C.
func TestEmpiricalDecayRate(t *testing.T) {
	s := MustNew(Config{W: 4, Seed: 123})
	for _, c := range []uint32{1, 3, 8, 20} {
		want := math.Pow(1.08, -float64(c))
		hits := 0
		const trials = 200000
		for i := 0; i < trials; i++ {
			if s.shouldDecay(c) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical decay rate for C=%d: %v want %v", c, got, want)
		}
	}
}

// TestDecayFunctionsAllFindTopFlows is the §III-B claim that any reasonable
// decreasing decay function performs similarly: with each provided function
// the sketch must still rank a clear elephant above the mice.
func TestDecayFunctionsAllFindTopFlows(t *testing.T) {
	for name, f := range map[string]DecayFunc{
		"exp":     ExpDecay(1.08),
		"poly":    PolyDecay(1.08),
		"sigmoid": SigmoidDecay(8),
	} {
		t.Run(name, func(t *testing.T) {
			s := MustNew(Config{W: 64, Seed: 9, Decay: f})
			rng := xrand.NewXorshift64Star(10)
			const n = 30000
			for i := 0; i < n; i++ {
				if i%3 == 0 {
					s.InsertBasic(key(0)) // elephant: 1/3 of traffic
				} else {
					s.InsertBasic(key(1 + int(rng.Uint64n(2000))))
				}
			}
			est := s.Query(key(0))
			if float64(est) < 0.9*float64(n/3) {
				t.Errorf("%s decay: elephant estimate %d, want >= 90%% of %d", name, est, n/3)
			}
		})
	}
}
