package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestExpDecayValues(t *testing.T) {
	f := ExpDecay(1.08)
	cases := []struct {
		c    uint32
		want float64
	}{
		{1, 1 / 1.08},
		{2, 1 / (1.08 * 1.08)},
		{21, math.Pow(1.08, -21)},
	}
	for _, tc := range cases {
		if got := f(tc.c); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ExpDecay(1.08)(%d) = %v want %v", tc.c, got, tc.want)
		}
	}
}

func TestDecayFuncsMonotoneDecreasing(t *testing.T) {
	funcs := map[string]DecayFunc{
		"exp":     ExpDecay(1.08),
		"poly":    PolyDecay(1.08),
		"sigmoid": SigmoidDecay(8),
	}
	for name, f := range funcs {
		prev := math.Inf(1)
		for c := uint32(1); c < 500; c++ {
			p := f(c)
			if p < 0 || p > 1 {
				t.Errorf("%s(%d) = %v out of [0,1]", name, c, p)
			}
			if p > prev {
				t.Errorf("%s not decreasing at C=%d: %v > %v", name, c, p, prev)
			}
			prev = p
		}
	}
}

func TestDecayConstructorsValidate(t *testing.T) {
	for _, fn := range []func(){
		func() { ExpDecay(1.0) },
		func() { ExpDecay(0.5) },
		func() { PolyDecay(0) },
		func() { SigmoidDecay(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid decay parameter did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDecayTableMatchesFunction(t *testing.T) {
	f := ExpDecay(1.08)
	table := buildDecayTable(f)
	for c := uint32(1); c < 100; c++ {
		want := f(c)
		got := float64(table.threshold(c)) / math.Ldexp(1, 64)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("threshold(%d)/2^64 = %v want %v", c, got, want)
		}
	}
}

func TestDecayTableLargeCZero(t *testing.T) {
	// §III-B property 2: for large C the probability is treated as exactly
	// zero. For b = 1.08, b^-C < 2^-64 needs C ≈ 577; beyond the table every
	// threshold must be 0.
	table := buildDecayTable(ExpDecay(1.08))
	if table.threshold(maxDecayTable+100) != 0 {
		t.Error("threshold beyond table not zero")
	}
	if table.threshold(0) != 0 {
		t.Error("threshold(0) should be zero (counters are >= 1 in case 3)")
	}
	// A very aggressive base truncates the table early.
	small := buildDecayTable(ExpDecay(4.0))
	if len(small.thresholds) >= 64 {
		t.Errorf("b=4 table has %d entries, expected far fewer (4^-32 < 2^-64)", len(small.thresholds))
	}
}

func TestProbToThresholdBounds(t *testing.T) {
	if got := probToThreshold(1.0); got != math.MaxUint64 {
		t.Errorf("probToThreshold(1) = %d want MaxUint64", got)
	}
	if got := probToThreshold(0); got != 0 {
		t.Errorf("probToThreshold(0) = %d want 0", got)
	}
	if got := probToThreshold(-0.5); got != 0 {
		t.Errorf("probToThreshold(-0.5) = %d want 0", got)
	}
	if got := probToThreshold(2.0); got != math.MaxUint64 {
		t.Errorf("probToThreshold(2) = %d want MaxUint64", got)
	}
	f := func(p float64) bool {
		p = math.Abs(p)
		p -= math.Floor(p) // into [0,1)
		th := probToThreshold(p)
		back := float64(th) / math.Ldexp(1, 64)
		return math.Abs(back-p) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEmpiricalDecayRate drives the coin flip through the sketch plumbing
// and verifies the observed decay frequency matches b^-C.
func TestEmpiricalDecayRate(t *testing.T) {
	s := MustNew(Config{W: 4, Seed: 123})
	for _, c := range []uint32{1, 3, 8, 20} {
		want := math.Pow(1.08, -float64(c))
		hits := 0
		const trials = 200000
		for i := 0; i < trials; i++ {
			if s.shouldDecay(c) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical decay rate for C=%d: %v want %v", c, got, want)
		}
	}
}

func TestExactPow2(t *testing.T) {
	for b, want := range map[float64]uint32{
		2: 1, 4: 2, 8: 3, 1024: 10, math.Ldexp(1, 64): 64,
		1.08: 0, 1.5: 0, 3: 0, 6: 0, math.Sqrt2: 0, math.Ldexp(1, 65): 0,
	} {
		if got := exactPow2(b); got != want {
			t.Errorf("exactPow2(%v) = %d want %d", b, got, want)
		}
	}
}

// TestPow2TableMatchesClosedForm pins the table-free thresholds to the exact
// fixed-point value of 2^-jC: probToThreshold over math.Ldexp(1, -jC), which
// involves no transcendental functions and is therefore exact. This is the
// equivalence the hot path's `1 << (64 - j*c)` shortcut relies on.
func TestPow2TableMatchesClosedForm(t *testing.T) {
	for _, j := range []uint32{1, 2, 3, 7, 10, 64} {
		tbl := pow2Table(j)
		if tbl.cut != 64/j+1 {
			t.Errorf("j=%d: cut = %d want %d", j, tbl.cut, 64/j+1)
		}
		for c := uint32(1); c < tbl.cut+16; c++ {
			want := probToThreshold(math.Ldexp(1, -int(j*c)))
			if got := tbl.threshold(c); got != want {
				t.Errorf("j=%d: threshold(%d) = %#x want %#x", j, c, got, want)
			}
		}
	}
}

// TestThresholdCutConsistency: for every kind of table — built from a decay
// function or compiled to the power-of-two closed form — threshold(c) is zero
// exactly outside 1 <= c < cut, and thresholdLive agrees with threshold on
// the live range. The hot path tests against cut and then calls thresholdLive
// directly, so this is what keeps the shortcut honest.
func TestThresholdCutConsistency(t *testing.T) {
	tables := map[string]decayTable{
		"exp-1.08": buildDecayTable(ExpDecay(1.08)),
		"exp-4":    buildDecayTable(ExpDecay(4)),
		"poly":     buildDecayTable(PolyDecay(1.08)),
		"sigmoid":  buildDecayTable(SigmoidDecay(8)),
		"pow2-1":   pow2Table(1),
		"pow2-64":  pow2Table(64),
	}
	for name, tbl := range tables {
		if tbl.cut < 2 {
			t.Errorf("%s: cut = %d, even C=1 could not decay", name, tbl.cut)
		}
		for c := uint32(1); c < tbl.cut; c++ {
			th := tbl.threshold(c)
			if th == 0 {
				t.Errorf("%s: threshold(%d) = 0 inside live range (cut %d)", name, c, tbl.cut)
			}
			if live := tbl.thresholdLive(c); live != th {
				t.Errorf("%s: thresholdLive(%d) = %#x but threshold = %#x", name, c, live, th)
			}
		}
		for _, c := range []uint32{0, tbl.cut, tbl.cut + 1, tbl.cut + 1000} {
			if th := tbl.threshold(c); th != 0 {
				t.Errorf("%s: threshold(%d) = %#x want 0 (cut %d)", name, c, th, tbl.cut)
			}
		}
	}
}

// TestTableForSelectsPow2 verifies config plumbing: an exact power-of-two
// base compiles to the table-free form, anything else to the materialized
// table, and a custom decay function is never misrouted to the closed form.
func TestTableForSelectsPow2(t *testing.T) {
	if s := MustNew(Config{W: 4, Seed: 1, B: 2}); s.decay.pow2 != 1 || s.decay.thresholds != nil {
		t.Errorf("B=2: pow2 = %d, %d thresholds; want table-free", s.decay.pow2, len(s.decay.thresholds))
	}
	if s := MustNew(Config{W: 4, Seed: 1}); s.decay.pow2 != 0 || len(s.decay.thresholds) == 0 {
		t.Errorf("default base: pow2 = %d, %d thresholds; want materialized table", s.decay.pow2, len(s.decay.thresholds))
	}
	if s := MustNew(Config{W: 4, Seed: 1, B: 2, Decay: ExpDecay(2)}); s.decay.pow2 != 0 {
		t.Error("explicit Decay func must compile through buildDecayTable, not the closed form")
	}
}

// TestEmpiricalDecayRatePow2 is TestEmpiricalDecayRate for the table-free
// path: observed decay frequency through the sketch plumbing must match 2^-C.
func TestEmpiricalDecayRatePow2(t *testing.T) {
	s := MustNew(Config{W: 4, Seed: 123, B: 2})
	for _, c := range []uint32{1, 2, 5} {
		want := math.Ldexp(1, -int(c))
		hits := 0
		const trials = 200000
		for i := 0; i < trials; i++ {
			if s.shouldDecay(c) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical pow2 decay rate for C=%d: %v want %v", c, got, want)
		}
	}
	// Past the cutoff the flip is free and always false.
	if s.shouldDecay(65) || s.shouldDecay(0) {
		t.Error("out-of-range counters must never decay")
	}
}

// TestDecayFunctionsAllFindTopFlows is the §III-B claim that any reasonable
// decreasing decay function performs similarly: with each provided function
// the sketch must still rank a clear elephant above the mice.
func TestDecayFunctionsAllFindTopFlows(t *testing.T) {
	for name, f := range map[string]DecayFunc{
		"exp":     ExpDecay(1.08),
		"poly":    PolyDecay(1.08),
		"sigmoid": SigmoidDecay(8),
	} {
		t.Run(name, func(t *testing.T) {
			s := MustNew(Config{W: 64, Seed: 9, Decay: f})
			rng := xrand.NewXorshift64Star(10)
			const n = 30000
			for i := 0; i < n; i++ {
				if i%3 == 0 {
					s.InsertBasic(key(0)) // elephant: 1/3 of traffic
				} else {
					s.InsertBasic(key(1 + int(rng.Uint64n(2000))))
				}
			}
			est := s.Query(key(0))
			if float64(est) < 0.9*float64(n/3) {
				t.Errorf("%s decay: elephant estimate %d, want >= 90%% of %d", name, est, n/3)
			}
		})
	}
}
