package core

import "fmt"

// Merge folds other into s, bucket by bucket. Both sketches must share the
// same configuration and seeds (i.e. be constructed with identical Config
// including Seed, or restored from snapshots of such sketches) so that a
// flow maps to the same buckets in both; Merge returns an error otherwise.
//
// Merging is the network-wide pattern of the paper's footnote 2: each
// switch runs its own HeavyKeeper over its share of the traffic and a
// collector folds them per epoch. The merge rule per bucket pair:
//
//   - both empty → empty;
//   - one occupied → copy it;
//   - same fingerprint → counters add (the flow's packets were split
//     across the two measurement points), saturating;
//   - different fingerprints → the larger counter wins and the smaller is
//     subtracted from it, mirroring what exponential decay would have done
//     had the two streams been interleaved (the standard merge rule for
//     majority-style counters).
//
// The result is an over-approximation-free summary of the combined stream:
// a merged counter never exceeds the flow's total count across both inputs
// (each input obeys Theorem 2 and both rules only add counts attributed to
// the same fingerprint or shrink them).
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("core: merge with nil sketch")
	}
	if len(s.arrays) != len(other.arrays) || s.cfg.W != other.cfg.W {
		return fmt.Errorf("core: merge shape mismatch: %dx%d vs %dx%d",
			len(s.arrays), s.cfg.W, len(other.arrays), other.cfg.W)
	}
	if s.fpSeed != other.fpSeed {
		return fmt.Errorf("core: merge fingerprint-seed mismatch")
	}
	for j := range s.arrays {
		if s.seeds[j] != other.seeds[j] {
			return fmt.Errorf("core: merge seed mismatch in array %d", j)
		}
	}
	for j := range s.arrays {
		for i := range s.arrays[j] {
			a := &s.arrays[j][i]
			b := other.arrays[j][i]
			switch {
			case b.c == 0:
				// Nothing to fold in.
			case a.c == 0:
				*a = b
			case a.fp == b.fp:
				a.c = s.addSaturating(a.c, uint64(b.c))
			case b.c > a.c:
				a.fp = b.fp
				a.c = b.c - a.c
			default:
				a.c -= b.c
				if a.c == 0 {
					// Contest ended in a tie; the bucket returns to empty.
					a.fp = 0
				}
			}
		}
	}
	return nil
}
