package core

import "fmt"

// hashCompatible reports whether two sketches place flows identically: same
// derivation seeds, and both on the same hashing scheme (modern one-hash or
// legacy v2 per-array).
func (s *Sketch) hashCompatible(other *Sketch) bool {
	if (s.legacy == nil) != (other.legacy == nil) {
		return false
	}
	if s.legacy != nil {
		if s.legacy.fpSeed != other.legacy.fpSeed || len(s.legacy.seeds) != len(other.legacy.seeds) {
			return false
		}
		for j := range s.legacy.seeds {
			if s.legacy.seeds[j] != other.legacy.seeds[j] {
				return false
			}
		}
		return true
	}
	return s.keySeed == other.keySeed && s.h1Seed == other.h1Seed &&
		s.h2Seed == other.h2Seed && s.fpSeed == other.fpSeed
}

// Merge folds other into s, bucket by bucket. Both sketches must share the
// same configuration and seeds (i.e. be constructed with identical Config
// including Seed, or restored from snapshots of such sketches) so that a
// flow maps to the same buckets in both; Merge returns an error otherwise.
//
// Merging is the network-wide pattern of the paper's footnote 2: each
// switch runs its own HeavyKeeper over its share of the traffic and a
// collector folds them per epoch. The merge rule per bucket pair:
//
//   - both empty → empty;
//   - one occupied → copy it;
//   - same fingerprint → counters add (the flow's packets were split
//     across the two measurement points), saturating;
//   - different fingerprints → the larger counter wins and the smaller is
//     subtracted from it, mirroring what exponential decay would have done
//     had the two streams been interleaved (the standard merge rule for
//     majority-style counters).
//
// The result is an over-approximation-free summary of the combined stream:
// a merged counter never exceeds the flow's total count across both inputs
// (each input obeys Theorem 2 and both rules only add counts attributed to
// the same fingerprint or shrink them).
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("core: merge with nil sketch")
	}
	if s.d != other.d || s.cfg.W != other.cfg.W {
		return fmt.Errorf("core: merge shape mismatch: %dx%d vs %dx%d",
			s.d, s.cfg.W, other.d, other.cfg.W)
	}
	if !s.hashCompatible(other) {
		return fmt.Errorf("core: merge hash-seed mismatch")
	}
	for i, b := range other.slab {
		a := s.slab[i]
		ac, bc := cellC(a), cellC(b)
		switch {
		case bc == 0:
			// Nothing to fold in.
		case ac == 0:
			s.slab[i] = b
		case cellFP(a) == cellFP(b):
			s.slab[i] = packCell(cellFP(a), s.addSaturating(ac, uint64(bc)))
		case bc > ac:
			s.slab[i] = packCell(cellFP(b), bc-ac)
		default:
			ac -= bc
			if ac == 0 {
				// Contest ended in a tie; the bucket returns to empty.
				s.slab[i] = 0
			} else {
				s.slab[i] = packCell(cellFP(a), ac)
			}
		}
	}
	return nil
}
