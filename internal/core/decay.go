package core

import (
	"math"
	"sync"
)

// DecayFunc maps a counter value C >= 1 to the probability, in [0, 1], of
// decrementing that counter when a foreign flow probes its bucket. The paper
// requires only that the probability be decreasing in C (§III-B "Decay
// probability"); it settles on the exponential b^-C and notes that C^-b and
// sigmoid-shaped alternatives perform similarly — all three are provided so
// the ablation bench can compare them.
type DecayFunc func(c uint32) float64

// ExpDecay returns the paper's default decay function, P = b^-C with b > 1
// and b ≈ 1 (e.g. 1.08).
func ExpDecay(b float64) DecayFunc {
	if b <= 1 {
		panic("core: ExpDecay base must be > 1")
	}
	logb := math.Log(b)
	return func(c uint32) float64 {
		return math.Exp(-float64(c) * logb)
	}
}

// PolyDecay returns the polynomial alternative P = C^-b mentioned in §III-B.
// P(1) = 1 as with the exponential family.
func PolyDecay(b float64) DecayFunc {
	if b <= 0 {
		panic("core: PolyDecay exponent must be > 0")
	}
	return func(c uint32) float64 {
		return math.Pow(float64(c), -b)
	}
}

// SigmoidDecay returns the sigmoid-shaped alternative from §III-B,
// normalized so it is a decreasing probability: P = 1 / (1 + e^(C/scale)),
// doubled so P(0+) ≈ 1 like the others. scale stretches the transition.
func SigmoidDecay(scale float64) DecayFunc {
	if scale <= 0 {
		panic("core: SigmoidDecay scale must be > 0")
	}
	return func(c uint32) float64 {
		return 2 / (1 + math.Exp(float64(c)/scale))
	}
}

// decayTable is a DecayFunc compiled to fixed-point thresholds so the hot
// path never touches floating point: a decay happens when a uniform 64-bit
// word is below threshold[C]. Entries beyond the table are exactly zero,
// implementing the paper's "when the value is large enough, regard the
// probability as 0" acceleration (§III-B property 2).
type decayTable struct {
	thresholds []uint64
}

// maxDecayTable bounds the table. For b = 1.08, b^-C falls below 2^-64
// around C ≈ 577, so 1024 entries cover every useful base.
const maxDecayTable = 1024

func buildDecayTable(f DecayFunc) decayTable {
	t := decayTable{thresholds: make([]uint64, 0, 64)}
	for c := uint32(1); c < maxDecayTable; c++ {
		p := f(c)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		th := probToThreshold(p)
		if th == 0 {
			break
		}
		t.thresholds = append(t.thresholds, th)
	}
	return t
}

// expTables caches compiled tables for the default exponential decay, keyed
// by base. Every shard of a Sharded (and every sketch of a fleet built with
// the same base) shares one immutable table instead of recompiling ~600
// math.Exp calls per sketch; the table is read-only after construction so
// sharing is safe.
var expTables sync.Map // float64 (base) -> decayTable

// tableFor returns the compiled decay table for cfg, reusing the shared
// per-base cache when the decay function is the default exponential. It also
// fills cfg.Decay for the default case so Config() round-trips.
func tableFor(cfg *Config) decayTable {
	if cfg.Decay != nil {
		return buildDecayTable(cfg.Decay)
	}
	cfg.Decay = ExpDecay(cfg.B)
	if t, ok := expTables.Load(cfg.B); ok {
		return t.(decayTable)
	}
	t, _ := expTables.LoadOrStore(cfg.B, buildDecayTable(cfg.Decay))
	return t.(decayTable)
}

// probToThreshold converts a probability to the 64-bit comparison threshold:
// P(rand64 < th) = th / 2^64 ≈ p.
func probToThreshold(p float64) uint64 {
	if p >= 1 {
		return math.MaxUint64
	}
	if p <= 0 {
		return 0
	}
	// Ldexp scales by a power of two exactly, so for p <= 1-2^-53 the result
	// is strictly below 2^64 and converts to uint64 without overflow.
	return uint64(math.Ldexp(p, 64))
}

// threshold returns the comparison threshold for counter value c (c >= 1).
func (t decayTable) threshold(c uint32) uint64 {
	i := int(c) - 1
	if i < 0 || i >= len(t.thresholds) {
		return 0
	}
	return t.thresholds[i]
}
