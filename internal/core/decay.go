package core

import (
	"math"
	"sync"
)

// DecayFunc maps a counter value C >= 1 to the probability, in [0, 1], of
// decrementing that counter when a foreign flow probes its bucket. The paper
// requires only that the probability be decreasing in C (§III-B "Decay
// probability"); it settles on the exponential b^-C and notes that C^-b and
// sigmoid-shaped alternatives perform similarly — all three are provided so
// the ablation bench can compare them.
type DecayFunc func(c uint32) float64

// ExpDecay returns the paper's default decay function, P = b^-C with b > 1
// and b ≈ 1 (e.g. 1.08).
func ExpDecay(b float64) DecayFunc {
	if b <= 1 {
		panic("core: ExpDecay base must be > 1")
	}
	logb := math.Log(b)
	return func(c uint32) float64 {
		return math.Exp(-float64(c) * logb)
	}
}

// PolyDecay returns the polynomial alternative P = C^-b mentioned in §III-B.
// P(1) = 1 as with the exponential family.
func PolyDecay(b float64) DecayFunc {
	if b <= 0 {
		panic("core: PolyDecay exponent must be > 0")
	}
	return func(c uint32) float64 {
		return math.Pow(float64(c), -b)
	}
}

// SigmoidDecay returns the sigmoid-shaped alternative from §III-B,
// normalized so it is a decreasing probability: P = 1 / (1 + e^(C/scale)),
// doubled so P(0+) ≈ 1 like the others. scale stretches the transition.
func SigmoidDecay(scale float64) DecayFunc {
	if scale <= 0 {
		panic("core: SigmoidDecay scale must be > 0")
	}
	return func(c uint32) float64 {
		return 2 / (1 + math.Exp(float64(c)/scale))
	}
}

// decayTable is a DecayFunc compiled to fixed-point thresholds so the hot
// path never touches floating point: a decay happens when a uniform 64-bit
// word is below threshold[C]. Entries beyond the table are exactly zero,
// implementing the paper's "when the value is large enough, regard the
// probability as 0" acceleration (§III-B property 2).
//
// Two hot-path shortcuts are precompiled alongside the table. cut is the
// first counter value whose decay probability is exactly zero, so the
// zero-probability region — the common case for resident elephants — is a
// single register compare instead of a bounds-checked table load. pow2 marks
// bases that are an exact power of two, b = 2^j: for those, b^-C scaled to
// fixed point is exactly 1 << (64 - j·C), so the threshold is computed in
// registers and the table is never materialized at all (table-free decay).
type decayTable struct {
	thresholds []uint64
	cut        uint32 // first C with zero threshold; decay possible iff 1 <= C < cut
	pow2       uint32 // j when the base is exactly 2^j, else 0
}

// maxDecayTable bounds the table. For b = 1.08, b^-C falls below 2^-64
// around C ≈ 577, so 1024 entries cover every useful base.
const maxDecayTable = 1024

func buildDecayTable(f DecayFunc) decayTable {
	t := decayTable{thresholds: make([]uint64, 0, 64)}
	for c := uint32(1); c < maxDecayTable; c++ {
		p := f(c)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		th := probToThreshold(p)
		if th == 0 {
			break
		}
		t.thresholds = append(t.thresholds, th)
	}
	t.cut = uint32(len(t.thresholds)) + 1
	return t
}

// exactPow2 reports the integer j >= 1 with b == 2^j exactly, or 0 when b is
// not an exact power of two. Frexp decomposes b = frac·2^exp with
// frac ∈ [0.5, 1); an exact power of two has frac == 0.5 exactly.
func exactPow2(b float64) uint32 {
	frac, exp := math.Frexp(b)
	if frac != 0.5 || exp < 2 || exp > 65 {
		return 0
	}
	return uint32(exp - 1)
}

// pow2Table returns the table-free decay table for base 2^j: no thresholds
// slice, thresholds computed on demand from the closed form. b^-C falls to
// exactly zero in 64-bit fixed point once j·C > 64.
func pow2Table(j uint32) decayTable {
	return decayTable{cut: 64/j + 1, pow2: j}
}

// expTables caches compiled tables for the default exponential decay, keyed
// by base. Every shard of a Sharded (and every sketch of a fleet built with
// the same base) shares one immutable table instead of recompiling ~600
// math.Exp calls per sketch; the table is read-only after construction so
// sharing is safe.
var expTables sync.Map // float64 (base) -> decayTable

// tableFor returns the compiled decay table for cfg, reusing the shared
// per-base cache when the decay function is the default exponential. It also
// fills cfg.Decay for the default case so Config() round-trips. Exact
// power-of-two bases compile to the table-free closed form; for those the
// thresholds are exact (ExpDecay's math.Exp can be off by an ulp, which
// probToThreshold would round into a slightly different fixed-point word).
func tableFor(cfg *Config) decayTable {
	if cfg.Decay != nil {
		return buildDecayTable(cfg.Decay)
	}
	cfg.Decay = ExpDecay(cfg.B)
	if t, ok := expTables.Load(cfg.B); ok {
		return t.(decayTable)
	}
	var built decayTable
	if j := exactPow2(cfg.B); j != 0 {
		built = pow2Table(j)
	} else {
		built = buildDecayTable(cfg.Decay)
	}
	t, _ := expTables.LoadOrStore(cfg.B, built)
	return t.(decayTable)
}

// probToThreshold converts a probability to the 64-bit comparison threshold:
// P(rand64 < th) = th / 2^64 ≈ p.
func probToThreshold(p float64) uint64 {
	if p >= 1 {
		return math.MaxUint64
	}
	if p <= 0 {
		return 0
	}
	// Ldexp scales by a power of two exactly, so for p <= 1-2^-53 the result
	// is strictly below 2^64 and converts to uint64 without overflow.
	return uint64(math.Ldexp(p, 64))
}

// threshold returns the comparison threshold for counter value c (c >= 1).
func (t decayTable) threshold(c uint32) uint64 {
	if c == 0 || c >= t.cut {
		return 0
	}
	return t.thresholdLive(c)
}

// thresholdLive is threshold for a counter already known to be live
// (1 <= c < t.cut), skipping the zero-region checks: the table-free closed
// form for power-of-two bases, one table load otherwise. The hot path tests
// against cut first and calls this only on the live side.
func (t *decayTable) thresholdLive(c uint32) uint64 {
	if j := t.pow2; j != 0 {
		return 1 << (64 - j*c)
	}
	return t.thresholds[c-1]
}
