package core

import (
	"fmt"
	"testing"

	"repro/internal/xrand"
)

// batchStream returns a deterministic stream with heavy repetition so every
// insert case (empty take, increment, decay, replacement) is exercised.
func batchStream(npkts, nflows int, seed uint64) [][]byte {
	rng := xrand.NewXorshift64Star(seed)
	stream := make([][]byte, npkts)
	for p := range stream {
		// Square the draw to skew toward low flow indexes.
		i := rng.Uint64n(uint64(nflows))
		i = i * i / uint64(nflows)
		stream[p] = []byte(fmt.Sprintf("flow-%d", i))
	}
	return stream
}

func requireEqualState(t *testing.T, seq, bat *Sketch, keys [][]byte) {
	t.Helper()
	if seq.Stats() != bat.Stats() {
		t.Fatalf("stats diverge:\nsequential %+v\nbatch      %+v", seq.Stats(), bat.Stats())
	}
	if seq.D() != bat.D() {
		t.Fatalf("array count diverges: %d vs %d", seq.D(), bat.D())
	}
	for _, k := range keys {
		if a, b := seq.Query(k), bat.Query(k); a != b {
			t.Fatalf("Query(%q) diverges: sequential %d, batch %d", k, a, b)
		}
	}
}

// TestAddBatchMatchesSequential verifies the batch path is bit-for-bit
// equivalent to a loop over InsertBasic, across ragged batch sizes that
// straddle the chunk boundary.
func TestAddBatchMatchesSequential(t *testing.T) {
	cfg := Config{W: 64, Seed: 1}
	seq := MustNew(cfg)
	bat := MustNew(cfg)
	stream := batchStream(20_000, 500, 42)

	for _, k := range stream {
		seq.InsertBasic(k)
	}
	for off := 0; off < len(stream); {
		n := 1 + (off*7)%(2*BatchChunk+5) // ragged sizes, some > BatchChunk
		if off+n > len(stream) {
			n = len(stream) - off
		}
		bat.AddBatch(stream[off : off+n])
		off += n
	}
	requireEqualState(t, seq, bat, stream)
}

// TestInsertBasicBatchReportsEstimates verifies the per-key estimates match
// the sequential return values.
func TestInsertBasicBatchReportsEstimates(t *testing.T) {
	cfg := Config{W: 32, Seed: 3}
	seq := MustNew(cfg)
	bat := MustNew(cfg)
	stream := batchStream(5_000, 200, 7)

	want := make([]uint32, len(stream))
	for i, k := range stream {
		want[i] = seq.InsertBasic(k)
	}
	got := make([]uint32, len(stream))
	bat.InsertBasicBatch(stream, func(i int, est uint32) { got[i] = est })
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("estimate %d diverges: sequential %d, batch %d", i, want[i], got[i])
		}
	}
}

// TestInsertParallelBatchMatchesSequential drives both paths with an
// identical, state-dependent gate sequence and checks full equivalence.
func TestInsertParallelBatchMatchesSequential(t *testing.T) {
	cfg := Config{W: 64, Seed: 9}
	seq := MustNew(cfg)
	bat := MustNew(cfg)
	stream := batchStream(20_000, 500, 1234)

	gate := func(i int) (bool, uint32) { return i%3 == 0, uint32(i % 11) }
	want := make([]uint32, len(stream))
	for i, k := range stream {
		inHeap, nmin := gate(i)
		want[i] = seq.InsertParallel(k, inHeap, nmin)
	}
	got := make([]uint32, len(stream))
	bat.InsertParallelBatch(stream, nil,
		func(i int, _ uint64) (bool, uint32) { return gate(i) },
		func(i int, _ uint64, est uint32) { got[i] = est })
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("estimate %d diverges: sequential %d, batch %d", i, want[i], got[i])
		}
	}
	requireEqualState(t, seq, bat, stream)
}

// TestInsertParallelBatchPrehashed: a caller that already computed KeyHash
// per key (the sharded router) passes the hashes through and gets the exact
// same result as the self-hashing batch.
func TestInsertParallelBatchPrehashed(t *testing.T) {
	cfg := Config{W: 64, Seed: 13}
	self := MustNew(cfg)
	pre := MustNew(cfg)
	stream := batchStream(20_000, 500, 321)

	hashes := make([]uint64, len(stream))
	for i, k := range stream {
		hashes[i] = pre.KeyHash(k)
	}
	self.InsertParallelBatch(stream, nil, nil, nil)
	pre.InsertParallelBatch(stream, hashes, nil, nil)
	requireEqualState(t, self, pre, stream)
}

// TestAddBatchMatchesSequentialPow2 is the batch-equivalence contract over
// the table-free power-of-two decay path: the RNG stream must line up draw
// for draw there too, since the decay cutoff (and therefore which probes
// consume a word) comes from the closed form instead of the table.
func TestAddBatchMatchesSequentialPow2(t *testing.T) {
	cfg := Config{W: 64, Seed: 17, B: 2}
	seq := MustNew(cfg)
	bat := MustNew(cfg)
	stream := batchStream(20_000, 500, 271)

	for _, k := range stream {
		seq.InsertBasic(k)
	}
	bat.AddBatch(stream)
	if seq.Stats().Decays == 0 {
		t.Fatal("stream produced no decays; the pow2 RNG path went unexercised")
	}
	requireEqualState(t, seq, bat, stream)
}

// TestBatchExpansionMidChunk forces §III-F auto-expansion while a batch is
// in flight: arrays appended mid-chunk must be hashed on demand and the
// result must still match the sequential path.
func TestBatchExpansionMidChunk(t *testing.T) {
	cfg := Config{W: 2, Seed: 5, LargeC: 1, ExpandThreshold: 3, MaxArrays: 6}
	seq := MustNew(cfg)
	bat := MustNew(cfg)
	stream := batchStream(10_000, 300, 99)

	for _, k := range stream {
		seq.InsertBasic(k)
	}
	bat.AddBatch(stream)
	if seq.Stats().Expansions == 0 {
		t.Fatalf("test did not trigger expansion; tighten the config")
	}
	requireEqualState(t, seq, bat, stream)
}
