package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestWeightedEquivalentToUnitWhenOwned(t *testing.T) {
	a := MustNew(Config{W: 64, Seed: 1})
	b := MustNew(Config{W: 64, Seed: 1})
	k := key(5)
	for i := 0; i < 100; i++ {
		a.InsertBasic(k)
	}
	b.InsertBasicN(k, 100)
	if qa, qb := a.Query(k), b.Query(k); qa != qb {
		t.Errorf("unit loop %d != weighted %d for sole flow", qa, qb)
	}
}

func TestWeightedZeroIsQuery(t *testing.T) {
	s := MustNew(Config{W: 64, Seed: 2})
	s.InsertBasicN(key(1), 7)
	if got := s.InsertBasicN(key(1), 0); got != 7 {
		t.Errorf("weight-0 insert returned %d want 7", got)
	}
	if s.Stats().Packets != 1 {
		t.Errorf("weight-0 insert counted as a packet")
	}
}

func TestWeightedNoOverestimation(t *testing.T) {
	for _, version := range []string{"basic", "parallel", "minimum"} {
		s := MustNew(Config{W: 32, Seed: 7, FingerprintBits: 32})
		truth := map[int]uint64{}
		rng := xrand.NewXorshift64Star(3)
		for i := 0; i < 5000; i++ {
			f := int(rng.Uint64n(rng.Uint64n(200) + 1))
			w := rng.Uint64n(20) + 1
			truth[f] += w
			switch version {
			case "basic":
				s.InsertBasicN(key(f), w)
			case "parallel":
				s.InsertParallelN(key(f), false, math.MaxUint32, w)
			case "minimum":
				s.InsertMinimumN(key(f), false, math.MaxUint32, w)
			}
		}
		for f, n := range truth {
			if got := uint64(s.Query(key(f))); got > n {
				t.Errorf("%s: flow %d estimate %d > true %d", version, f, got, n)
			}
		}
	}
}

func TestWeightedElephantSurvives(t *testing.T) {
	s := MustNew(Config{W: 16, Seed: 9})
	rng := xrand.NewXorshift64Star(4)
	var truth uint64
	for i := 0; i < 5000; i++ {
		if i%2 == 0 {
			w := rng.Uint64n(10) + 1
			truth += w
			s.InsertBasicN(key(0), w)
		} else {
			s.InsertBasicN(key(1+int(rng.Uint64n(2000))), rng.Uint64n(3)+1)
		}
	}
	got := uint64(s.Query(key(0)))
	if float64(got) < 0.95*float64(truth) {
		t.Errorf("weighted elephant estimate %d < 95%% of %d", got, truth)
	}
}

func TestWeightedTakeoverKeepsRemainder(t *testing.T) {
	// One bucket with a weak resident (C=1): a huge weighted arrival must
	// take it over and bank nearly all of its weight.
	s := MustNew(Config{W: 1, D: 1, Seed: 11})
	s.InsertBasicN(key(1), 1)
	s.InsertBasicN(key(2), 1000)
	got := uint64(s.Query(key(2)))
	// The takeover consumes a handful of trials (P(decay at C=1) ≈ 0.926),
	// so at least 900 of the 1000 units must survive.
	if got < 900 || got > 1000 {
		t.Errorf("takeover kept %d of 1000 units", got)
	}
}

func TestWeightedContestEarlyExit(t *testing.T) {
	// A resident beyond the decay table's cutoff cannot be decayed; the
	// trial loop must exit immediately rather than run `weight` iterations.
	s := MustNew(Config{W: 1, D: 1, Seed: 12, B: 4.0}) // tiny table (~32 entries)
	k1 := key(1)
	s.InsertBasicN(k1, 100) // resident C=100, beyond b=4 cutoff
	before := s.Stats().DecayProbes
	s.InsertBasicN(key(2), 1<<40) // absurd weight must return promptly
	if probes := s.Stats().DecayProbes - before; probes != 0 {
		t.Errorf("early exit failed: %d probes for an undecayable bucket", probes)
	}
	if got := s.Query(k1); got != 100 {
		t.Errorf("resident disturbed: %d", got)
	}
}

func TestWeightedSaturation(t *testing.T) {
	s := MustNew(Config{W: 8, CounterBits: 8, Seed: 1})
	s.InsertBasicN(key(1), 1_000_000)
	if got := s.Query(key(1)); got != 255 {
		t.Errorf("saturated counter = %d want 255", got)
	}
}

func TestWeightedParallelGate(t *testing.T) {
	s := MustNew(Config{W: 8, Seed: 3})
	k := key(1)
	s.InsertParallelN(k, true, 0, 5) // owned, C=5
	// Unmonitored with nmin=3: C=5 > 3 ⇒ frozen even for weighted adds.
	s.InsertParallelN(k, false, 3, 100)
	if got := s.Query(k); got != 5 {
		t.Errorf("gate bypassed: C = %d want 5", got)
	}
	// Monitored: the whole weight lands.
	s.InsertParallelN(k, true, 3, 100)
	if got := s.Query(k); got != 105 {
		t.Errorf("monitored weighted add: C = %d want 105", got)
	}
}

func TestWeightedMinimumSingleBucket(t *testing.T) {
	s := MustNew(Config{W: 64, D: 4, Seed: 21})
	rng := xrand.NewXorshift64Star(5)
	for i := 0; i < 2000; i++ {
		s.InsertMinimumN(key(int(rng.Uint64n(300))), true, 0, rng.Uint64n(5)+1)
	}
	for trial := 0; trial < 500; trial++ {
		before := s.snapshotBuckets()
		s.InsertMinimumN(key(int(rng.Uint64n(600))), true, 0, rng.Uint64n(10)+1)
		after := s.snapshotBuckets()
		changed := 0
		for i := range before {
			if before[i] != after[i] {
				changed++
			}
		}
		if changed > 1 {
			t.Fatalf("weighted InsertMinimum changed %d buckets", changed)
		}
	}
}

func BenchmarkInsertBasicWeighted(b *testing.B) {
	s := MustNew(Config{W: 4096, Seed: 1})
	keys := makeKeys(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InsertBasicN(keys[i&(len(keys)-1)], 64)
	}
}
