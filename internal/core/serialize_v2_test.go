package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/xrand"
)

// encodeV2Empty builds a syntactically valid, all-empty version-2 snapshot
// frame: [version=2, d, w, fpSeed, seeds[d], d*w × (fp uint32, c uint32)],
// little-endian, with seeds drawn from a SplitMix64 stream — exactly what
// the PR 1 era WriteTo produced for a freshly constructed sketch.
func encodeV2Empty(d, w int, seed uint64) []byte {
	var buf bytes.Buffer
	sm := xrand.NewSplitMix64(seed)
	seeds := make([]uint64, d)
	for i := range seeds {
		seeds[i] = sm.Next()
	}
	fpSeed := sm.Next()
	for _, v := range []uint64{2, uint64(d), uint64(w), fpSeed} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	binary.Write(&buf, binary.LittleEndian, seeds)
	binary.Write(&buf, binary.LittleEndian, make([]uint32, 2*d*w))
	return buf.Bytes()
}

// TestSnapshotV2Shim: a v2 frame decodes into a working sketch — inserts,
// queries and all three disciplines behave, estimates stay exact for a lone
// flow — and re-encodes as v2 so its legacy placements round-trip.
func TestSnapshotV2Shim(t *testing.T) {
	cfg := Config{W: 64, Seed: 7}
	s := legacySketch(t, cfg, 2)

	rng := xrand.NewXorshift64Star(3)
	for i := 0; i < 20000; i++ {
		s.InsertBasic(key(int(rng.Uint64n(300))))
	}
	lone := key(100000)
	for i := 0; i < 500; i++ {
		s.InsertParallel(lone, true, 0)
	}
	if got := s.Query(lone); got != 500 {
		t.Errorf("legacy-mode lone flow Query = %d want 500", got)
	}

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo on legacy sketch: %v", err)
	}
	if v := binary.LittleEndian.Uint64(buf.Bytes()[:8]); v != 2 {
		t.Fatalf("legacy sketch re-encoded as version %d, want 2", v)
	}
	restored := MustNew(cfg)
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	for i := 0; i < 300; i++ {
		if a, b := s.Query(key(i)), restored.Query(key(i)); a != b {
			t.Fatalf("flow %d: legacy original %d, restored %d", i, a, b)
		}
	}
	if a, b := s.Query(lone), restored.Query(lone); a != b {
		t.Fatalf("lone flow: legacy original %d, restored %d", a, b)
	}
}

// TestSnapshotV2ShimMinimumAndWeighted drives the remaining disciplines
// through a legacy-mode sketch so the shim's placement is exercised on every
// path.
func TestSnapshotV2ShimMinimumAndWeighted(t *testing.T) {
	s := legacySketch(t, Config{W: 32, Seed: 9}, 2)
	k := key(5)
	for i := 0; i < 100; i++ {
		s.InsertMinimum(k, true, 0)
	}
	if got := s.Query(k); got != 100 {
		t.Errorf("legacy InsertMinimum lone flow = %d want 100", got)
	}
	s.InsertBasicN(k, 50)
	if got := s.Query(k); got != 150 {
		t.Errorf("legacy weighted insert = %d want 150", got)
	}
}

// TestSnapshotV2Corrupt: malformed v2 frames must return ErrCorrupt, not
// panic and not partially apply.
func TestSnapshotV2Corrupt(t *testing.T) {
	frame := encodeV2Empty(2, 8, 1)
	s := MustNew(Config{W: 8, Seed: 1})
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated-header": func(b []byte) []byte { return b[:12] },
		"truncated-seeds":  func(b []byte) []byte { return b[:40] },
		"truncated-cells":  func(b []byte) []byte { return b[:len(b)-5] },
		"huge-d": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint64(c[8:16], 1<<40)
			return c
		},
		"zero-d": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint64(c[8:16], 0)
			return c
		},
		"wrong-w": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint64(c[16:24], 9)
			return c
		},
	} {
		if _, err := s.ReadFrom(bytes.NewReader(mutate(frame))); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
		if s.legacy != nil {
			t.Fatalf("%s: failed decode left sketch in legacy mode", name)
		}
	}
}

// TestSnapshotV3VersionTag pins the on-wire version of freshly written
// snapshots.
func TestSnapshotV3VersionTag(t *testing.T) {
	s := MustNew(Config{W: 8, Seed: 1})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint64(buf.Bytes()[:8]); v != 3 {
		t.Errorf("fresh snapshot version = %d, want 3", v)
	}
}
