package core

import (
	"encoding/binary"
	"io"
)

// snapshot format version; bump on layout changes. Version 2: bucket
// indexing switched from modulo to Lemire fast-range reduction, so v1
// snapshots' bucket placements no longer match what this code computes for
// the same seeds and must be rejected.
const snapshotVersion = 2

// WriteTo serializes the sketch's bucket contents and structural parameters
// to w. Configuration closures (the decay function) are not serialized; the
// reader must construct a sketch with the same Config and call ReadFrom.
// The format is little-endian: version, d, w, seeds, fpSeed, then buckets.
func (s *Sketch) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	header := []uint64{
		snapshotVersion,
		uint64(len(s.arrays)),
		uint64(s.cfg.W),
		s.fpSeed,
	}
	for _, h := range header {
		if err := write(h); err != nil {
			return n, err
		}
	}
	if err := write(s.seeds); err != nil {
		return n, err
	}
	for j := range s.arrays {
		for i := range s.arrays[j] {
			if err := write(s.arrays[j][i].fp); err != nil {
				return n, err
			}
			if err := write(s.arrays[j][i].c); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// ReadFrom restores bucket contents and seeds previously written by WriteTo
// into s. The receiving sketch must have been constructed with a matching W;
// arrays are grown if the snapshot had expanded. The stored seeds replace
// the receiver's so that queries hash identically to the snapshot's writer.
func (s *Sketch) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	read := func(v any) error {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	var version, d, w, fpSeed uint64
	for _, p := range []*uint64{&version, &d, &w, &fpSeed} {
		if err := read(p); err != nil {
			return n, err
		}
	}
	if version != snapshotVersion {
		return n, ErrCorrupt
	}
	if d == 0 || w == 0 || int(w) != s.cfg.W {
		return n, ErrCorrupt
	}
	seeds := make([]uint64, d)
	if err := read(seeds); err != nil {
		return n, err
	}
	arrays := make([][]bucket, d)
	for j := range arrays {
		arrays[j] = make([]bucket, w)
		for i := range arrays[j] {
			if err := read(&arrays[j][i].fp); err != nil {
				return n, err
			}
			if err := read(&arrays[j][i].c); err != nil {
				return n, err
			}
		}
	}
	s.arrays = arrays
	s.seeds = seeds
	s.fpSeed = fpSeed
	return n, nil
}
