package core

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot format versions. Version 2 (the per-array-seed era) stored one
// hash seed per array plus a fingerprint seed and split (fp, counter) pairs;
// version 3 stores the one-hash derivation seeds and the packed []uint64
// cell slab verbatim. v3 is what WriteTo emits; ReadFrom decodes both — a v2
// frame flips the restored sketch into legacy hashing mode (see legacyV2) so
// the snapshot's bucket placements stay valid. v1 snapshots (modulo bucket
// indexing) remain rejected.
const (
	snapshotV2      = 2
	snapshotVersion = 3
)

// maxSnapshotArrays bounds the array count a snapshot may declare. Real
// sketches hold a handful of arrays (expansion adds them one at a time, and
// every insert walks all of them, so thousands would be unusable anyway).
// Together with the row-at-a-time cell reads below — which keep the decoder's
// allocation proportional to bytes actually received rather than to the
// declared d·W — the bound stops a corrupt or adversarial header from
// provoking work the stream never backs up.
const maxSnapshotArrays = 1 << 12

// WriteTo serializes the sketch's bucket contents and structural parameters
// to w. Configuration closures (the decay function) are not serialized; the
// reader must construct a sketch with the same Config and call ReadFrom.
// The format is little-endian: version, d, w, seeds, then cells. A sketch
// restored from a v2 snapshot re-encodes as v2, since its placements depend
// on the legacy seeds.
func (s *Sketch) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if lg := s.legacy; lg != nil {
		header := []uint64{snapshotV2, uint64(s.d), uint64(s.cfg.W), lg.fpSeed}
		for _, h := range header {
			if err := write(h); err != nil {
				return n, err
			}
		}
		if err := write(lg.seeds); err != nil {
			return n, err
		}
		for _, cell := range s.slab {
			if err := write(cellFP(cell)); err != nil {
				return n, err
			}
			if err := write(cellC(cell)); err != nil {
				return n, err
			}
		}
		return n, nil
	}
	header := []uint64{
		snapshotVersion,
		uint64(s.d),
		uint64(s.cfg.W),
		s.keySeed,
		s.h1Seed,
		s.h2Seed,
		s.fpSeed,
	}
	for _, h := range header {
		if err := write(h); err != nil {
			return n, err
		}
	}
	if err := write(s.slab); err != nil {
		return n, err
	}
	return n, nil
}

// ReadFrom restores bucket contents and seeds previously written by WriteTo
// into s. The receiving sketch must have been constructed with a matching W;
// arrays are grown if the snapshot had expanded. The stored seeds replace
// the receiver's so that queries hash identically to the snapshot's writer;
// a v2 frame additionally switches the sketch to legacy per-array hashing.
// Any malformed, truncated or oversized frame returns an error matching
// ErrCorrupt (errors.Is), wrapping the underlying reader error when there
// was one so transient I/O causes stay diagnosable — decoding never panics
// and never partially mutates s. Cells are read one array row at a time, so
// a frame whose header declares more data than the stream carries fails
// without the decoder ever allocating ahead of the bytes actually received.
func (s *Sketch) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	var readErr error
	read := func(v any) bool {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			readErr = err
			return false
		}
		n += int64(binary.Size(v))
		return true
	}
	// corrupt reports decode failure, preserving the reader's own error (if
	// any) underneath ErrCorrupt.
	corrupt := func() error {
		if readErr != nil {
			return fmt.Errorf("%w: %w", ErrCorrupt, readErr)
		}
		return ErrCorrupt
	}
	var version, d, w uint64
	for _, p := range []*uint64{&version, &d, &w} {
		if !read(p) {
			return n, corrupt()
		}
	}
	if version != snapshotVersion && version != snapshotV2 {
		return n, corrupt()
	}
	if d == 0 || d > maxSnapshotArrays || w == 0 || int(w) != s.cfg.W {
		return n, corrupt()
	}

	if version == snapshotV2 {
		var fpSeed uint64
		if !read(&fpSeed) {
			return n, corrupt()
		}
		seeds := make([]uint64, d)
		if !read(seeds) {
			return n, corrupt()
		}
		slab := make([]uint64, 0, s.cfg.W)
		pairs := make([]uint32, 2*s.cfg.W) // one row of (fp, c) pairs
		for j := 0; j < int(d); j++ {
			if !read(pairs) {
				return n, corrupt()
			}
			for i := 0; i < s.cfg.W; i++ {
				slab = append(slab, packCell(pairs[2*i], pairs[2*i+1]))
			}
		}
		s.slab = slab
		s.d = int(d)
		s.legacy = &legacyV2{seeds: seeds, fpSeed: fpSeed}
		return n, nil
	}

	var keySeed, h1Seed, h2Seed, fpSeed uint64
	for _, p := range []*uint64{&keySeed, &h1Seed, &h2Seed, &fpSeed} {
		if !read(p) {
			return n, corrupt()
		}
	}
	slab := make([]uint64, 0, s.cfg.W)
	row := make([]uint64, s.cfg.W)
	for j := 0; j < int(d); j++ {
		if !read(row) {
			return n, corrupt()
		}
		slab = append(slab, row...)
	}
	s.slab = slab
	s.d = int(d)
	s.keySeed, s.h1Seed, s.h2Seed, s.fpSeed = keySeed, h1Seed, h2Seed, fpSeed
	s.legacy = nil
	return n, nil
}
