package core

import (
	"fmt"
	"testing"

	"repro/internal/xrand"
)

// insertParallelAtReference is the three-way case switch (empty-take /
// fingerprint-hit / decay-probe) that insertParallelAt replaced with its
// predicated form, kept verbatim as the behavioral oracle. Any change to the
// hot path must stay bit-identical to this — state, statistics, return value
// and RNG consumption.
func insertParallelAtReference(s *Sketch, pos []int, fp uint32, inHeap bool, nmin uint32) uint32 {
	s.stats.Packets++
	var est uint32
	blocked := true
	for _, p := range pos {
		cell := s.slab[p]
		c := cellC(cell)
		switch {
		case c == 0:
			s.slab[p] = packCell(fp, 1)
			s.stats.EmptyTakes++
			blocked = false
			if est < 1 {
				est = 1
			}
		case cellFP(cell) == fp:
			blocked = false
			if inHeap || c <= nmin {
				if c < s.maxC {
					c++
					s.slab[p] = cell + 1
				}
				s.stats.Increments++
				if est < c {
					est = c
				}
			}
		default:
			if c < s.cfg.LargeC {
				blocked = false
			}
			if s.shouldDecay(c) {
				cell--
				s.stats.Decays++
				if cellC(cell) == 0 {
					cell = packCell(fp, 1)
					s.stats.Replacements++
					if est < 1 {
						est = 1
					}
				}
				s.slab[p] = cell
			}
		}
	}
	s.noteBlocked(blocked)
	return est
}

// TestInsertParallelAtMatchesReference drives the predicated insertParallelAt
// and the reference switch over identical streams on twin sketches and
// requires bit-identical slabs, statistics, estimates and RNG positions. The
// configs cover the default base, a table-free power-of-two base, a custom
// decay function, counter saturation (CounterBits: 4 saturates fast) and
// §III-F expansion (which exercises the blocked bookkeeping).
func TestInsertParallelAtMatchesReference(t *testing.T) {
	configs := map[string]Config{
		"default":    {W: 16, Seed: 7},
		"pow2-base":  {W: 16, Seed: 7, B: 2},
		"poly-decay": {W: 16, Seed: 7, Decay: PolyDecay(1.08)},
		"saturating": {W: 8, Seed: 11, CounterBits: 4},
		"expanding":  {W: 4, Seed: 3, LargeC: 2, ExpandThreshold: 5, MaxArrays: 5},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			got := MustNew(cfg)
			want := MustNew(cfg)
			gen := xrand.NewXorshift64Star(99)
			const packets = 30_000
			for i := 0; i < packets; i++ {
				r := gen.Next()
				k := []byte(fmt.Sprintf("flow-%d", r%97))
				inHeap := r&(1<<40) != 0
				nmin := uint32(r>>41) % 19
				g := got.InsertParallel(k, inHeap, nmin)
				pos, fp := want.locateKey(k)
				w := insertParallelAtReference(want, pos, fp, inHeap, nmin)
				if g != w {
					t.Fatalf("packet %d (%s): estimate %d, reference %d", i, k, g, w)
				}
			}
			requireEqualState(t, want, got, nil)
			for i := 0; i < len(want.slab); i++ {
				if want.slab[i] != got.slab[i] {
					t.Fatalf("slab[%d] diverges: reference %x, predicated %x", i, want.slab[i], got.slab[i])
				}
			}
			// Equal RNG positions after the fact prove the predicated form
			// consumed exactly one draw per live contested probe, no more.
			if want.rng.Next() != got.rng.Next() {
				t.Fatal("RNG streams diverged: decay draw count differs")
			}
			if cfg.ExpandThreshold != 0 && got.Stats().Expansions == 0 {
				t.Fatal("expanding config did not expand; tighten it")
			}
			if cfg.CounterBits == 4 && got.Stats().Increments < packets/97 {
				t.Fatal("saturating config did not saturate counters")
			}
		})
	}
}
