package core

import "repro/internal/hash"

// BatchChunk is the number of keys whose hashes are precomputed at a time by
// the batch insert path. It bounds the scratch footprint — one 64-bit key
// hash per key under the one-hash scheme, so 256 keys is 2 KB, well inside
// L1 — while staying large enough to amortize per-loop setup. Callers
// driving HashBatch themselves chunk by this size.
const BatchChunk = 256

// batchScratch holds the precomputed key hashes for one chunk of keys. It
// lives on the Sketch (which is single-writer by contract) so steady-state
// batch ingestion allocates nothing. Fingerprints and bucket indexes are not
// staged here: both derive from the key hash in registers at apply time,
// which measured faster than staging them through memory (see ROADMAP's
// PR 3 entry), so the scratch is 8 bytes per key.
type batchScratch struct {
	hashes []uint64
}

// HashBatch hashes every key once into the sketch's scratch and returns the
// hash slice, valid until the next HashBatch call. The tight loop loads the
// seed once for the whole batch; this is the batch path's only pass over key
// bytes. Callers pass hashes[i] to the *Hashed entry points.
func (s *Sketch) HashBatch(keys [][]byte) []uint64 {
	b := &s.scratch
	n := len(keys)
	if cap(b.hashes) < n {
		b.hashes = make([]uint64, n)
	}
	hs := b.hashes[:n]
	seed := s.keySeed
	for i, key := range keys {
		hs[i] = hash.Sum64(seed, key)
	}
	b.hashes = hs
	return hs
}

// InsertParallelBatch is InsertParallel over a batch of keys. hashes, when
// non-nil, must hold KeyHash(keys[i]) for every i (a router that already
// hashed each key passes them through so nothing is hashed twice); when nil
// the batch hashes each key once itself — including on a v2-restored sketch,
// whose own placement ignores KeyHash but whose callers key their store
// index by it, so the hash must exist and be real either way. gate, when
// non-nil, is invoked per key in stream order immediately before that key's
// buckets change, and report (when non-nil) immediately after — so a caller
// updating a top-k structure from report sees exactly the interleaving of a
// sequential loop over InsertParallel; both receive the key's hash so store
// probes need not re-derive it. Only hashing is done ahead of time, and
// hashing depends on no mutable state, so the batch is bit-for-bit
// equivalent to the sequential path (including the decay RNG stream, which
// is consumed lazily in probe order either way; pre-generating it per chunk
// was measured slower — see doc/performance.md). A nil
// gate means no Optimization II gating (every matching counter may
// increment), which is the basic discipline.
func (s *Sketch) InsertParallelBatch(keys [][]byte, hashes []uint64, gate func(i int, h uint64) (inHeap bool, nmin uint32), report func(i int, h uint64, est uint32)) {
	// A v2-restored sketch ignores KeyHash for placement, so the hash pass
	// is only worth paying when a gate or report callback will consume the
	// values (topk keys its store index by them); a sketch-only legacy
	// batch skips it and hands the (ignored) zero hash down.
	skipHash := s.legacy != nil && gate == nil && report == nil
	for off := 0; off < len(keys); off += BatchChunk {
		end := off + BatchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		hs := hashes
		if hs != nil {
			hs = hashes[off:end]
		} else if !skipHash {
			hs = s.HashBatch(chunk)
		}
		for ci, key := range chunk {
			var h uint64
			if hs != nil {
				h = hs[ci]
			}
			inHeap, nmin := true, uint32(0xffffffff)
			if gate != nil {
				inHeap, nmin = gate(off+ci, h)
			}
			est := s.InsertParallelHashed(key, h, inHeap, nmin)
			if report != nil {
				report(off+ci, h, est)
			}
		}
	}
}

// InsertBasicBatch is InsertBasic over a batch of keys, reporting each key's
// post-insertion estimate to report when non-nil.
func (s *Sketch) InsertBasicBatch(keys [][]byte, report func(i int, est uint32)) {
	var rep func(i int, h uint64, est uint32)
	if report != nil {
		rep = func(i int, _ uint64, est uint32) { report(i, est) }
	}
	s.InsertParallelBatch(keys, nil, nil, rep)
}

// AddBatch records one basic-discipline packet per key. It is the
// fire-and-forget batch entry point for callers that use the sketch without
// a top-k structure on top.
func (s *Sketch) AddBatch(keys [][]byte) {
	s.InsertBasicBatch(keys, nil)
}
