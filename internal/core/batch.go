package core

import "repro/internal/hash"

// BatchChunk is the number of keys whose hashes are precomputed at a time by
// the batch insert path. It bounds the scratch footprint (one fingerprint and
// d bucket indexes per key) while staying large enough to amortize per-loop
// setup; 256 keys at d = 2 is ~3 KB of scratch, well inside L1. Callers
// driving PrecomputeBatch/ApplyHashed themselves chunk by this size.
const BatchChunk = 256

// batchScratch holds the precomputed hashing for one chunk of keys. It lives
// on the Sketch (which is single-writer by contract) so steady-state batch
// ingestion allocates nothing.
type batchScratch struct {
	fp  []uint32
	idx [][]int32 // idx[j][i] = bucket index of chunk key i in array j
}

// precompute fills the scratch with fingerprints and bucket indexes for keys
// (at most BatchChunk of them) and returns the number of arrays covered.
// Hashing is done in tight per-array loops: the seed and width load once per
// array instead of once per (key, array) pair, which is where the batch
// path's amortization comes from.
func (s *Sketch) precompute(keys [][]byte) int {
	b := &s.scratch
	n := len(keys)
	if cap(b.fp) < n {
		b.fp = make([]uint32, n)
	}
	b.fp = b.fp[:n]
	fpSeed, fpMask := s.fpSeed, s.fpMask
	for i, key := range keys {
		fp := uint32(hash.Sum64(fpSeed, key)) & fpMask
		if fp == 0 {
			fp = 1
		}
		b.fp[i] = fp
	}
	d := len(s.arrays)
	for len(b.idx) < d {
		b.idx = append(b.idx, make([]int32, 0, BatchChunk))
	}
	w := uint64(s.cfg.W)
	for j := 0; j < d; j++ {
		if cap(b.idx[j]) < n {
			b.idx[j] = make([]int32, n)
		}
		row := b.idx[j][:n]
		seed := s.seeds[j]
		for i, key := range keys {
			row[i] = int32(fastRange(hash.Sum64(seed, key), w))
		}
		b.idx[j] = row
	}
	return d
}

// applyHashed performs one Parallel-discipline insertion of chunk key i using
// the precomputed hashes. preD is the array count covered by precompute; any
// array appended by auto-expansion mid-chunk is hashed on demand so the
// result is identical to the unbatched path. The basic discipline (§III-C)
// is the same case analysis with the Optimization II gate always open, so
// callers express it as inHeap = true.
func (s *Sketch) applyHashed(key []byte, i, preD int, inHeap bool, nmin uint32) uint32 {
	s.stats.Packets++
	fp := s.scratch.fp[i]
	var est uint32
	blocked := true
	for j := range s.arrays {
		var bi int
		if j < preD {
			bi = int(s.scratch.idx[j][i])
		} else {
			bi = s.index(j, key)
		}
		b := &s.arrays[j][bi]
		switch {
		case b.c == 0:
			b.fp, b.c = fp, 1
			s.stats.EmptyTakes++
			blocked = false
			if est < 1 {
				est = 1
			}
		case b.fp == fp:
			blocked = false
			if inHeap || b.c <= nmin {
				if b.c < s.maxC {
					b.c++
				}
				s.stats.Increments++
				if est < b.c {
					est = b.c
				}
			}
		default:
			if b.c < s.cfg.LargeC {
				blocked = false
			}
			if s.shouldDecay(b.c) {
				b.c--
				s.stats.Decays++
				if b.c == 0 {
					b.fp, b.c = fp, 1
					s.stats.Replacements++
					if est < 1 {
						est = 1
					}
				}
			}
		}
	}
	s.noteBlocked(blocked)
	return est
}

// PrecomputeBatch fills the sketch's scratch with hashes for keys (at most
// BatchChunk of them) and returns the array count covered; pass the result
// to ApplyHashed as preD. It exists so that a caller owning the per-key
// control flow (e.g. topk's fused batch loop, which interleaves top-k store
// reads and writes between keys without closure indirection) can still use
// the amortized hashing path.
func (s *Sketch) PrecomputeBatch(keys [][]byte) int {
	return s.precompute(keys)
}

// ApplyHashed performs one Parallel-discipline insertion of chunk key i
// using the hashes precomputed by PrecomputeBatch. Semantics, statistics and
// RNG consumption are identical to InsertParallel(key, inHeap, nmin).
func (s *Sketch) ApplyHashed(key []byte, i, preD int, inHeap bool, nmin uint32) uint32 {
	return s.applyHashed(key, i, preD, inHeap, nmin)
}

// InsertParallelBatch is InsertParallel over a batch of keys. gate, when
// non-nil, is invoked per key in stream order immediately before that key's
// buckets change, and report (when non-nil) immediately after — so a caller
// updating a top-k structure from report sees exactly the interleaving of a
// sequential loop over InsertParallel. Only hashing is done ahead of time,
// and hashing depends on no mutable state, so the batch is bit-for-bit
// equivalent to the sequential path (including the decay RNG stream).
// A nil gate means no Optimization II gating (every matching counter may
// increment), which is the basic discipline.
func (s *Sketch) InsertParallelBatch(keys [][]byte, gate func(i int) (inHeap bool, nmin uint32), report func(i int, est uint32)) {
	for off := 0; off < len(keys); off += BatchChunk {
		end := off + BatchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		preD := s.precompute(chunk)
		for ci, key := range chunk {
			inHeap, nmin := true, uint32(0xffffffff)
			if gate != nil {
				inHeap, nmin = gate(off + ci)
			}
			est := s.applyHashed(key, ci, preD, inHeap, nmin)
			if report != nil {
				report(off+ci, est)
			}
		}
	}
}

// InsertBasicBatch is InsertBasic over a batch of keys, reporting each key's
// post-insertion estimate to report when non-nil.
func (s *Sketch) InsertBasicBatch(keys [][]byte, report func(i int, est uint32)) {
	s.InsertParallelBatch(keys, nil, report)
}

// AddBatch records one basic-discipline packet per key. It is the
// fire-and-forget batch entry point for callers that use the sketch without
// a top-k structure on top.
func (s *Sketch) AddBatch(keys [][]byte) {
	s.InsertBasicBatch(keys, nil)
}
