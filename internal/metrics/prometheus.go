package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromText accumulates metrics in the Prometheus text exposition format
// (version 0.0.4): one HELP and TYPE comment pair per metric family,
// then the sample lines. It is the rendering layer behind hkd's /metrics
// endpoint — deliberately tiny, no client library, because the daemon
// only exports counters and gauges it already holds.
//
// Usage:
//
//	var p PromText
//	p.Counter("hkd_ingest_records_total", "Arrival records ingested.", float64(n))
//	p.GaugeLabeled("hkd_topk_count", "Current count per top-k flow.",
//	    map[string]string{"flow": id}, float64(c))
//	p.WriteTo(w)
//
// Families render in the order first added; labels render sorted, so
// output is deterministic and diffable in tests.
type PromText struct {
	families []*promFamily
	index    map[string]*promFamily
}

type promFamily struct {
	name, help, typ string
	samples         []promSample
}

type promSample struct {
	labels string // pre-rendered {k="v",...} or ""
	value  float64
}

// Counter adds a sample to a counter family.
func (p *PromText) Counter(name, help string, v float64) {
	p.add(name, help, "counter", "", v)
}

// Gauge adds a sample to a gauge family.
func (p *PromText) Gauge(name, help string, v float64) {
	p.add(name, help, "gauge", "", v)
}

// GaugeLabeled adds a labeled sample to a gauge family.
func (p *PromText) GaugeLabeled(name, help string, labels map[string]string, v float64) {
	p.add(name, help, "gauge", renderLabels(labels), v)
}

// CounterLabeled adds a labeled sample to a counter family.
func (p *PromText) CounterLabeled(name, help string, labels map[string]string, v float64) {
	p.add(name, help, "counter", renderLabels(labels), v)
}

func (p *PromText) add(name, help, typ, labels string, v float64) {
	fam := p.index[name]
	if fam == nil {
		fam = &promFamily{name: name, help: help, typ: typ}
		if p.index == nil {
			p.index = map[string]*promFamily{}
		}
		p.index[name] = fam
		p.families = append(p.families, fam)
	}
	fam.samples = append(fam.samples, promSample{labels: labels, value: v})
}

// WriteTo renders the accumulated families.
func (p *PromText) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, fam := range p.families {
		n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		total += int64(n)
		if err != nil {
			return total, err
		}
		for _, s := range fam.samples {
			n, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, s.labels, formatPromValue(s.value))
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// renderLabels renders a label set as {k="v",...} with keys sorted and
// values escaped per the exposition format (backslash, quote, newline).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatPromValue renders integers without an exponent (the common case
// for counters) and everything else in Go's shortest float form.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
