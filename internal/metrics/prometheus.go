package metrics

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ContentType is the Content-Type header value for the Prometheus text
// exposition format rendered by PromText. Every /metrics handler in the
// tree uses this constant so the version string cannot drift.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromText accumulates metrics in the Prometheus text exposition format
// (version 0.0.4): one HELP and TYPE comment pair per metric family,
// then the sample lines. It is the rendering layer behind hkd's /metrics
// endpoint — deliberately tiny, no client library, because the daemon
// only exports counters and gauges it already holds.
//
// Usage:
//
//	var p PromText
//	p.Counter("hkd_ingest_records_total", "Arrival records ingested.", float64(n))
//	p.GaugeLabeled("hkd_topk_count", "Current count per top-k flow.",
//	    map[string]string{"flow": id}, float64(c))
//	p.WriteTo(w)
//
// Families render in the order first added; labels render sorted, so
// output is deterministic and diffable in tests.
type PromText struct {
	families []*promFamily
	index    map[string]*promFamily
	lintErrs []error
}

type promFamily struct {
	name, help, typ string
	samples         []promSample
}

type promSample struct {
	suffix string // "_bucket", "_sum", "_count" for histograms, else ""
	labels string // pre-rendered {k="v",...} or ""
	value  float64
}

// Counter adds a sample to a counter family.
func (p *PromText) Counter(name, help string, v float64) {
	p.add(name, help, "counter", "", v)
}

// Gauge adds a sample to a gauge family.
func (p *PromText) Gauge(name, help string, v float64) {
	p.add(name, help, "gauge", "", v)
}

// GaugeLabeled adds a labeled sample to a gauge family.
func (p *PromText) GaugeLabeled(name, help string, labels map[string]string, v float64) {
	p.add(name, help, "gauge", renderLabels(labels), v)
}

// CounterLabeled adds a labeled sample to a counter family.
func (p *PromText) CounterLabeled(name, help string, labels map[string]string, v float64) {
	p.add(name, help, "counter", renderLabels(labels), v)
}

// Histogram adds one labeled series to a histogram family in the
// canonical _bucket/_sum/_count shape. bounds are the finite upper
// bounds in ascending order and cum the cumulative counts aligned with
// them (observations <= bound); the +Inf bucket is emitted from count.
// Call repeatedly with the same name and different labels to expose
// per-route / per-node series under one family.
func (p *PromText) Histogram(name, help string, labels map[string]string, bounds []float64, cum []uint64, sum float64, count uint64) {
	fam := p.family(name, help, "histogram")
	if len(bounds) != len(cum) {
		p.lintErrs = append(p.lintErrs, fmt.Errorf("metric %s: %d bounds but %d cumulative counts", name, len(bounds), len(cum)))
		return
	}
	base := renderLabels(labels)
	prevBound := math.Inf(-1)
	prevCum := uint64(0)
	for i, b := range bounds {
		if b <= prevBound {
			p.lintErrs = append(p.lintErrs, fmt.Errorf("metric %s: bucket bounds not increasing at %v", name, b))
		}
		if cum[i] < prevCum {
			p.lintErrs = append(p.lintErrs, fmt.Errorf("metric %s: cumulative counts decrease at le=%v", name, b))
		}
		prevBound, prevCum = b, cum[i]
		fam.samples = append(fam.samples, promSample{
			suffix: "_bucket",
			labels: appendLabel(base, "le", formatPromValue(b)),
			value:  float64(cum[i]),
		})
	}
	if count < prevCum {
		p.lintErrs = append(p.lintErrs, fmt.Errorf("metric %s: count %d below last bucket %d", name, count, prevCum))
	}
	fam.samples = append(fam.samples,
		promSample{suffix: "_bucket", labels: appendLabel(base, "le", "+Inf"), value: float64(count)},
		promSample{suffix: "_sum", labels: base, value: sum},
		promSample{suffix: "_count", labels: base, value: float64(count)},
	)
}

func (p *PromText) add(name, help, typ, labels string, v float64) {
	fam := p.family(name, help, typ)
	fam.samples = append(fam.samples, promSample{labels: labels, value: v})
}

func (p *PromText) family(name, help, typ string) *promFamily {
	fam := p.index[name]
	if fam == nil {
		if !validMetricName(name) {
			p.lintErrs = append(p.lintErrs, fmt.Errorf("invalid metric name %q", name))
		}
		fam = &promFamily{name: name, help: help, typ: typ}
		if p.index == nil {
			p.index = map[string]*promFamily{}
		}
		p.index[name] = fam
		p.families = append(p.families, fam)
		return fam
	}
	if fam.typ != typ {
		p.lintErrs = append(p.lintErrs, fmt.Errorf("metric %s re-registered as %s (was %s)", name, typ, fam.typ))
	}
	if fam.help != help {
		p.lintErrs = append(p.lintErrs, fmt.Errorf("metric %s re-registered with different help text", name))
	}
	return fam
}

// Lint reports every malformation recorded while accumulating samples:
// invalid family names (must match [a-zA-Z_:][a-zA-Z0-9_:]*), a family
// re-registered under a conflicting type or help string, and histogram
// series whose bounds or cumulative counts are out of order. Returns
// nil when the page is clean.
func (p *PromText) Lint() error {
	return errors.Join(p.lintErrs...)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// appendLabel splices one more label pair into a pre-rendered label
// string, keeping the exposition's {k="v",...} shape.
func appendLabel(rendered, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

// WriteTo renders the accumulated families.
func (p *PromText) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, fam := range p.families {
		n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		total += int64(n)
		if err != nil {
			return total, err
		}
		for _, s := range fam.samples {
			n, err := fmt.Fprintf(w, "%s%s%s %s\n", fam.name, s.suffix, s.labels, formatPromValue(s.value))
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// renderLabels renders a label set as {k="v",...} with keys sorted and
// values escaped per the exposition format (backslash, quote, newline).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatPromValue renders integers without an exponent (the common case
// for counters) and everything else in Go's shortest float form.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
