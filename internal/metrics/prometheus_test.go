package metrics

import (
	"strings"
	"testing"
)

func TestPromTextRendering(t *testing.T) {
	var p PromText
	p.Counter("hkd_frames_total", "Frames decoded.", 42)
	p.Gauge("hkd_topk_size", "Current report size.", 100)
	p.GaugeLabeled("hkd_flow_count", "Per-flow count.",
		map[string]string{"flow": "ab\"c\\d\ne", "rank": "1"}, 7)
	p.Counter("hkd_frames_total", "Frames decoded.", 1) // same family, second sample

	var b strings.Builder
	if _, err := p.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := b.String()

	want := []string{
		"# HELP hkd_frames_total Frames decoded.\n# TYPE hkd_frames_total counter\nhkd_frames_total 42\nhkd_frames_total 1\n",
		"# TYPE hkd_topk_size gauge\nhkd_topk_size 100\n",
		`hkd_flow_count{flow="ab\"c\\d\ne",rank="1"} 7`,
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	if strings.Count(out, "# HELP hkd_frames_total") != 1 {
		t.Error("family header repeated for second sample")
	}
}

func TestPromValueFormat(t *testing.T) {
	if got := formatPromValue(1 << 40); got != "1099511627776" {
		t.Errorf("large int: %q", got)
	}
	if got := formatPromValue(0.25); got != "0.25" {
		t.Errorf("fraction: %q", got)
	}
}
