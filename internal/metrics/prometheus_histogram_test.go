package metrics

import (
	"bufio"

	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestPromHistogramConformance renders a real obs.Histogram through the
// writer and checks the text-exposition contract: `le` bounds strictly
// increasing per series, bucket counts cumulative, and the +Inf bucket
// equal to _count.
func TestPromHistogramConformance(t *testing.T) {
	var h obs.Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(5 * time.Second))))
	}
	s := h.Snapshot()

	var p PromText
	p.Histogram("hkd_ingest_batch_seconds", "Per-batch ingest latency.",
		nil, obs.PromBounds(), s.PromCumulative(), s.SumSeconds(), s.Count)
	p.Histogram("hkd_http_request_seconds", "HTTP latency.",
		map[string]string{"route": "topk"}, obs.PromBounds(), s.PromCumulative(), s.SumSeconds(), s.Count)
	if err := p.Lint(); err != nil {
		t.Fatalf("lint: %v", err)
	}
	var b strings.Builder
	if _, err := p.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if !strings.Contains(out, "# TYPE hkd_ingest_batch_seconds histogram") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}

	type series struct {
		les      []float64
		counts   []uint64
		inf      uint64
		hasInf   bool
		count    uint64
		hasCount bool
		hasSum   bool
	}
	byKey := map[string]*series{}
	get := func(k string) *series {
		if byKey[k] == nil {
			byKey[k] = &series{}
		}
		return byKey[k]
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		name, rest, _ := strings.Cut(line, " ")
		base, labels := name, ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			base, labels = name[:i], name[i:]
		}
		switch {
		case strings.HasSuffix(base, "_bucket"):
			key := strings.TrimSuffix(base, "_bucket") + stripLe(labels, t)
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", rest, err)
			}
			le := leOf(labels, t)
			sr := get(key)
			if le == "+Inf" {
				sr.inf, sr.hasInf = v, true
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("le %q: %v", le, err)
				}
				sr.les = append(sr.les, f)
				sr.counts = append(sr.counts, v)
			}
		case strings.HasSuffix(base, "_count"):
			v, _ := strconv.ParseUint(rest, 10, 64)
			sr := get(strings.TrimSuffix(base, "_count") + labels)
			sr.count, sr.hasCount = v, true
		case strings.HasSuffix(base, "_sum"):
			get(strings.TrimSuffix(base, "_sum") + labels).hasSum = true
		}
	}
	if len(byKey) != 2 {
		t.Fatalf("expected 2 series, parsed %d: %v", len(byKey), byKey)
	}
	for key, sr := range byKey {
		if !sr.hasInf || !sr.hasCount || !sr.hasSum {
			t.Fatalf("%s: missing +Inf/_count/_sum (inf=%v count=%v sum=%v)", key, sr.hasInf, sr.hasCount, sr.hasSum)
		}
		if len(sr.les) == 0 {
			t.Fatalf("%s: no finite buckets", key)
		}
		for i := 1; i < len(sr.les); i++ {
			if sr.les[i] <= sr.les[i-1] {
				t.Errorf("%s: le not increasing at %v", key, sr.les[i])
			}
			if sr.counts[i] < sr.counts[i-1] {
				t.Errorf("%s: buckets not cumulative at le=%v", key, sr.les[i])
			}
		}
		if last := sr.counts[len(sr.counts)-1]; last > sr.inf {
			t.Errorf("%s: last finite bucket %d exceeds +Inf %d", key, last, sr.inf)
		}
		if sr.inf != sr.count {
			t.Errorf("%s: +Inf bucket %d != _count %d", key, sr.inf, sr.count)
		}
		if sr.count != s.Count {
			t.Errorf("%s: _count %d != recorded %d", key, sr.count, s.Count)
		}
	}
}

func stripLe(labels string, t *testing.T) string {
	t.Helper()
	if labels == "" {
		t.Fatal("bucket sample without le label")
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var keep []string
	for _, pair := range strings.Split(inner, ",") {
		if !strings.HasPrefix(pair, `le="`) {
			keep = append(keep, pair)
		}
	}
	if len(keep) == 0 {
		return ""
	}
	return "{" + strings.Join(keep, ",") + "}"
}

func leOf(labels string, t *testing.T) string {
	t.Helper()
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for _, pair := range strings.Split(inner, ",") {
		if v, ok := strings.CutPrefix(pair, `le="`); ok {
			return strings.TrimSuffix(v, `"`)
		}
	}
	t.Fatalf("no le label in %q", labels)
	return ""
}

func TestPromLint(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		var p PromText
		p.Counter("ok_total", "h", 1)
		p.Counter("ok_total", "h", 2)
		p.Gauge("also:ok_1", "h", 3)
		if err := p.Lint(); err != nil {
			t.Fatalf("clean page flagged: %v", err)
		}
	})
	t.Run("invalid-name", func(t *testing.T) {
		var p PromText
		p.Counter("1bad", "h", 1)
		p.Gauge("bad-dash", "h", 1)
		p.Gauge("", "h", 1)
		err := p.Lint()
		if err == nil {
			t.Fatal("invalid names passed lint")
		}
		for _, want := range []string{`"1bad"`, `"bad-dash"`, `""`} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("lint error missing %s: %v", want, err)
			}
		}
	})
	t.Run("type-conflict", func(t *testing.T) {
		var p PromText
		p.Counter("dup_total", "h", 1)
		p.Gauge("dup_total", "h", 2)
		if err := p.Lint(); err == nil || !strings.Contains(err.Error(), "re-registered") {
			t.Fatalf("type conflict not flagged: %v", err)
		}
	})
	t.Run("help-conflict", func(t *testing.T) {
		var p PromText
		p.Counter("x_total", "one", 1)
		p.Counter("x_total", "two", 2)
		if err := p.Lint(); err == nil {
			t.Fatal("help conflict not flagged")
		}
	})
	t.Run("histogram-shape", func(t *testing.T) {
		var p PromText
		p.Histogram("h_seconds", "h", nil, []float64{0.1, 0.1}, []uint64{5, 4}, 1, 3)
		err := p.Lint()
		if err == nil {
			t.Fatal("bad histogram passed lint")
		}
		if !strings.Contains(err.Error(), "not increasing") || !strings.Contains(err.Error(), "decrease") {
			t.Fatalf("unexpected lint detail: %v", err)
		}
		var q PromText
		q.Histogram("h_seconds", "h", nil, []float64{0.1}, []uint64{5, 6}, 1, 7)
		if err := q.Lint(); err == nil || !strings.Contains(err.Error(), "cumulative counts") {
			t.Fatalf("length mismatch not flagged: %v", err)
		}
	})
}

func TestAppendLabel(t *testing.T) {
	if got := appendLabel("", "le", "+Inf"); got != `{le="+Inf"}` {
		t.Fatalf("empty base: %q", got)
	}
	if got := appendLabel(`{route="topk"}`, "le", "0.25"); got != `{route="topk",le="0.25"}` {
		t.Fatalf("non-empty base: %q", got)
	}
}
