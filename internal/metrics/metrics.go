// Package metrics implements the evaluation metrics of the HeavyKeeper
// paper (§VI-B): Precision, Average Relative Error (ARE), Average Absolute
// Error (AAE) and throughput, plus the exact-counting oracle used to
// establish ground truth.
package metrics

import (
	"sort"
	"time"
)

// Entry is one reported flow.
type Entry struct {
	Key   string
	Count uint64
}

// Oracle counts every flow exactly; it provides the ground truth against
// which the approximate algorithms are scored.
type Oracle struct {
	counts map[string]uint64
	total  uint64
	sorted []uint64 // lazily built descending counts; nil when stale
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{counts: make(map[string]uint64)}
}

// FromCounts wraps an existing exact-count table (e.g. a generated trace's
// ground truth) as an oracle.
func FromCounts(counts map[string]uint64) *Oracle {
	var total uint64
	for _, v := range counts {
		total += v
	}
	return &Oracle{counts: counts, total: total}
}

// Insert records one packet of flow key.
func (o *Oracle) Insert(key []byte) {
	o.counts[string(key)]++
	o.total++
	o.sorted = nil // invalidate the rank cache
}

// Count returns key's exact size.
func (o *Oracle) Count(key string) uint64 { return o.counts[key] }

// Total returns the number of packets recorded.
func (o *Oracle) Total() uint64 { return o.total }

// Flows returns the number of distinct flows.
func (o *Oracle) Flows() int { return len(o.counts) }

// TopK returns the exact k largest flows in descending size, ties broken by
// key for determinism.
func (o *Oracle) TopK(k int) []Entry {
	all := make([]Entry, 0, len(o.counts))
	for key, c := range o.counts {
		all = append(all, Entry{Key: key, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TopKSet returns the exact top-k as a membership set.
func (o *Oracle) TopKSet(k int) map[string]bool {
	top := o.TopK(k)
	out := make(map[string]bool, len(top))
	for _, e := range top {
		out[e.Key] = true
	}
	return out
}

// KthCount returns the k-th largest exact flow size (0 when fewer than k
// flows exist). The descending count ranking is cached across calls and
// invalidated by Insert.
func (o *Oracle) KthCount(k int) uint64 {
	if k < 1 {
		return 0
	}
	if o.sorted == nil {
		o.sorted = make([]uint64, 0, len(o.counts))
		for _, c := range o.counts {
			o.sorted = append(o.sorted, c)
		}
		sort.Slice(o.sorted, func(i, j int) bool { return o.sorted[i] > o.sorted[j] })
	}
	if k > len(o.sorted) {
		return 0
	}
	return o.sorted[k-1]
}

// PrecisionAtK is the tie-tolerant form of the paper's precision metric: a
// reported flow counts as correct when its true size is at least the k-th
// largest true size. When many flows tie at the top-k boundary (synthetic
// high-skew streams where the boundary sits in a mass of one-packet flows),
// the exact-set metric punishes every algorithm for an arbitrary tie-break;
// this form matches the quantity the paper's figures actually convey.
func PrecisionAtK(reported []Entry, o *Oracle, k int) float64 {
	if k < 1 {
		return 0
	}
	threshold := o.KthCount(k)
	if threshold == 0 {
		return Precision(reported, o.TopKSet(k))
	}
	hit := 0
	for i, e := range reported {
		if i >= k {
			break
		}
		if o.Count(e.Key) >= threshold {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// Precision is §VI-B: C/k, where C of the reported flows belong to the real
// top-k. k is taken from the size of trueTop.
func Precision(reported []Entry, trueTop map[string]bool) float64 {
	if len(trueTop) == 0 {
		return 0
	}
	hit := 0
	for _, e := range reported {
		if trueTop[e.Key] {
			hit++
		}
	}
	return float64(hit) / float64(len(trueTop))
}

// Recall returns the fraction of true top-k flows present in the report.
// With |reported| = k it equals Precision; it diverges when an algorithm
// reports fewer than k flows.
func Recall(reported []Entry, trueTop map[string]bool) float64 {
	return Precision(reported, trueTop)
}

// ARE is §VI-B: (1/|Ψ|) Σ |n̂i − ni| / ni over the reported set Ψ.
// Reported flows that never occurred contribute |n̂i − 0| / 1.
func ARE(reported []Entry, o *Oracle) float64 {
	if len(reported) == 0 {
		return 0
	}
	var sum float64
	for _, e := range reported {
		truth := float64(o.Count(e.Key))
		diff := float64(e.Count) - truth
		if diff < 0 {
			diff = -diff
		}
		if truth == 0 {
			truth = 1
		}
		sum += diff / truth
	}
	return sum / float64(len(reported))
}

// AAE is §VI-B: (1/|Ψ|) Σ |n̂i − ni| over the reported set Ψ.
func AAE(reported []Entry, o *Oracle) float64 {
	if len(reported) == 0 {
		return 0
	}
	var sum float64
	for _, e := range reported {
		truth := float64(o.Count(e.Key))
		diff := float64(e.Count) - truth
		if diff < 0 {
			diff = -diff
		}
		sum += diff
	}
	return sum / float64(len(reported))
}

// Throughput measures million insertions per second (Mps, §VI-B): it runs
// insert over every packet and divides by elapsed wall time.
func Throughput(packets [][]byte, insert func(key []byte)) float64 {
	start := time.Now()
	for _, p := range packets {
		insert(p)
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(len(packets)) / elapsed.Seconds() / 1e6
}

// ThroughputN is Throughput for index-driven iteration, avoiding a
// materialized [][]byte when the trace stores indexes.
func ThroughputN(n int, key func(i int) []byte, insert func(key []byte)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		insert(key(i))
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds() / 1e6
}
