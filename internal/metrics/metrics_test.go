package metrics

import (
	"fmt"
	"testing"
)

func TestOracleCounts(t *testing.T) {
	o := NewOracle()
	for i := 0; i < 10; i++ {
		o.Insert([]byte("a"))
	}
	o.Insert([]byte("b"))
	if o.Count("a") != 10 || o.Count("b") != 1 || o.Count("c") != 0 {
		t.Error("oracle counts wrong")
	}
	if o.Total() != 11 || o.Flows() != 2 {
		t.Errorf("Total=%d Flows=%d want 11, 2", o.Total(), o.Flows())
	}
}

func TestFromCounts(t *testing.T) {
	o := FromCounts(map[string]uint64{"x": 5, "y": 3})
	if o.Total() != 8 || o.Count("x") != 5 {
		t.Error("FromCounts wrong")
	}
}

func TestTopKOrderAndTies(t *testing.T) {
	o := FromCounts(map[string]uint64{"a": 5, "b": 9, "c": 5, "d": 1})
	top := o.TopK(3)
	want := []Entry{{"b", 9}, {"a", 5}, {"c", 5}}
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top))
	}
	for i := range want {
		if top[i] != want[i] {
			t.Errorf("TopK[%d] = %v want %v", i, top[i], want[i])
		}
	}
	if got := len(o.TopK(100)); got != 4 {
		t.Errorf("TopK(100) = %d entries want 4", got)
	}
}

func TestPrecision(t *testing.T) {
	trueTop := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	rep := []Entry{{"a", 1}, {"b", 1}, {"x", 1}, {"y", 1}}
	if got := Precision(rep, trueTop); got != 0.5 {
		t.Errorf("Precision = %v want 0.5", got)
	}
	if got := Precision(nil, trueTop); got != 0 {
		t.Errorf("Precision(nil) = %v want 0", got)
	}
	if got := Precision(rep, nil); got != 0 {
		t.Errorf("Precision with empty truth = %v want 0", got)
	}
}

func TestAREAndAAE(t *testing.T) {
	o := FromCounts(map[string]uint64{"a": 100, "b": 50})
	rep := []Entry{{"a", 90}, {"b", 60}}
	// ARE = (10/100 + 10/50) / 2 = 0.15; AAE = 10.
	if got := ARE(rep, o); got < 0.1499999 || got > 0.1500001 {
		t.Errorf("ARE = %v want 0.15", got)
	}
	if got := AAE(rep, o); got != 10 {
		t.Errorf("AAE = %v want 10", got)
	}
	if ARE(nil, o) != 0 || AAE(nil, o) != 0 {
		t.Error("empty report should score 0")
	}
}

func TestAREGhostFlow(t *testing.T) {
	o := FromCounts(map[string]uint64{})
	rep := []Entry{{"ghost", 7}}
	if got := ARE(rep, o); got != 7 {
		t.Errorf("ARE for never-seen flow = %v want 7 (|7-0|/1)", got)
	}
}

func TestPerfectReportScoresZeroError(t *testing.T) {
	o := NewOracle()
	for i := 0; i < 100; i++ {
		for j := 0; j <= i%10; j++ {
			o.Insert([]byte(fmt.Sprintf("k%d", i)))
		}
	}
	top := o.TopK(10)
	if ARE(top, o) != 0 || AAE(top, o) != 0 {
		t.Error("exact report should have zero ARE/AAE")
	}
	if got := Precision(top, o.TopKSet(10)); got != 1 {
		t.Errorf("Precision of exact report = %v want 1", got)
	}
}

func TestThroughputPositive(t *testing.T) {
	packets := make([][]byte, 10000)
	for i := range packets {
		packets[i] = []byte{byte(i), byte(i >> 8)}
	}
	n := 0
	mps := Throughput(packets, func(key []byte) { n++ })
	if n != len(packets) {
		t.Fatalf("insert called %d times want %d", n, len(packets))
	}
	if mps <= 0 {
		t.Errorf("throughput = %v want > 0", mps)
	}
	n = 0
	mps2 := ThroughputN(5000, func(i int) []byte { return packets[i] }, func(key []byte) { n++ })
	if n != 5000 || mps2 <= 0 {
		t.Errorf("ThroughputN: n=%d mps=%v", n, mps2)
	}
}

func TestKthCount(t *testing.T) {
	o := FromCounts(map[string]uint64{"a": 9, "b": 5, "c": 5, "d": 1})
	cases := []struct {
		k    int
		want uint64
	}{{1, 9}, {2, 5}, {3, 5}, {4, 1}, {5, 0}, {0, 0}}
	for _, c := range cases {
		if got := o.KthCount(c.k); got != c.want {
			t.Errorf("KthCount(%d) = %d want %d", c.k, got, c.want)
		}
	}
	// Cache invalidation on Insert.
	o.Insert([]byte("e"))
	o.Insert([]byte("e"))
	if got := o.KthCount(4); got != 2 {
		t.Errorf("KthCount(4) after inserts = %d want 2", got)
	}
}

func TestPrecisionAtKTieTolerant(t *testing.T) {
	// Five flows tie at count 5; k = 3. Any three of them are a perfect
	// answer under the tie-tolerant metric.
	o := FromCounts(map[string]uint64{
		"a": 5, "b": 5, "c": 5, "d": 5, "e": 5, "x": 1,
	})
	rep := []Entry{{"d", 5}, {"e", 5}, {"a", 5}}
	if got := PrecisionAtK(rep, o, 3); got != 1 {
		t.Errorf("PrecisionAtK with ties = %v want 1", got)
	}
	// The exact-set metric would have punished d and e.
	if got := Precision(rep, o.TopKSet(3)); got == 1 {
		t.Error("exact-set precision unexpectedly tie-tolerant; test premise broken")
	}
	// A genuinely wrong flow still counts against.
	rep2 := []Entry{{"a", 5}, {"x", 9}, {"b", 5}}
	want := 2.0 / 3.0
	if got := PrecisionAtK(rep2, o, 3); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("PrecisionAtK = %v want %v", got, want)
	}
	// Only the first k reported flows are considered.
	rep3 := []Entry{{"x", 1}, {"a", 5}, {"b", 5}, {"c", 5}}
	if got := PrecisionAtK(rep3, o, 2); got != 0.5 {
		t.Errorf("PrecisionAtK(k=2) = %v want 0.5", got)
	}
	if got := PrecisionAtK(rep, o, 0); got != 0 {
		t.Errorf("PrecisionAtK(k=0) = %v want 0", got)
	}
}

func TestRecallEqualsPrecisionAtFullK(t *testing.T) {
	trueTop := map[string]bool{"a": true, "b": true}
	rep := []Entry{{"a", 1}, {"z", 1}}
	if Recall(rep, trueTop) != Precision(rep, trueTop) {
		t.Error("Recall != Precision for |rep| = k")
	}
}
