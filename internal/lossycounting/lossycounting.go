// Package lossycounting implements the Lossy Counting algorithm of Manku
// and Motwani ("Approximate Frequency Counts over Data Streams", VLDB 2002),
// an admit-all-count-some baseline in the HeavyKeeper paper (§II-B).
//
// The stream is processed in windows of ⌈1/ε⌉ packets. Every flow is
// admitted when first seen, tagged with the current window id minus one as
// its maximum possible undercount Δ. At each window boundary, entries whose
// count + Δ no longer exceeds the window id are pruned. Counts
// over-estimate by at most Δ ≤ εN.
package lossycounting

import (
	"fmt"
	"sort"
)

// entry is one monitored flow.
type entry struct {
	count uint64
	delta uint64
}

// LossyCounting is a lossy-counting frequency tracker.
type LossyCounting struct {
	epsilon float64
	window  uint64 // packets per window = ceil(1/epsilon)
	current uint64 // current window id (b_current)
	seen    uint64 // packets processed
	flows   map[string]entry
}

// New returns a tracker with error bound epsilon (0 < epsilon < 1).
func New(epsilon float64) (*LossyCounting, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("lossycounting: epsilon = %v, must be in (0, 1)", epsilon)
	}
	w := uint64(1 / epsilon)
	if float64(w) < 1/epsilon {
		w++
	}
	return &LossyCounting{
		epsilon: epsilon,
		window:  w,
		current: 1,
		flows:   make(map[string]entry),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(epsilon float64) *LossyCounting {
	l, err := New(epsilon)
	if err != nil {
		panic(err)
	}
	return l
}

// FromBytes derives epsilon from a byte budget: lossy counting holds at most
// (1/ε)·log(εN) entries, but the paper's head-to-head setup simply sizes the
// table to the memory (§VI-A); we bound live entries at m = budget/entry and
// set ε = 1/m so a full window fits.
func FromBytes(budget int) (*LossyCounting, error) {
	m := budget / BytesPerEntry
	if m < 2 {
		m = 2
	}
	return New(1 / float64(m))
}

// BytesPerEntry models one table entry (key pointer, count, delta) for the
// harness's byte budgeting, comparable to the other baselines' accounting.
const BytesPerEntry = 32

// Insert records one packet of flow key.
func (l *LossyCounting) Insert(key []byte) {
	l.seen++
	ks := string(key)
	if e, ok := l.flows[ks]; ok {
		e.count++
		l.flows[ks] = e
	} else {
		l.flows[ks] = entry{count: 1, delta: l.current - 1}
	}
	if l.seen%l.window == 0 {
		l.prune()
		l.current++
	}
}

// InsertN records a weight-n arrival of flow key: the entry's count rises
// by n and every window boundary the n arrivals cross triggers the usual
// prune. The whole weight lands before the boundary pruning, so an entry
// can survive a boundary that n interleaved unit inserts would have pruned
// it at — a conservative (never-losing) difference.
func (l *LossyCounting) InsertN(key []byte, n uint64) {
	if n == 0 {
		return
	}
	ks := string(key)
	if e, ok := l.flows[ks]; ok {
		e.count += n
		l.flows[ks] = e
	} else {
		l.flows[ks] = entry{count: n, delta: l.current - 1}
	}
	boundaries := (l.seen+n)/l.window - l.seen/l.window
	l.seen += n
	for ; boundaries > 0; boundaries-- {
		l.prune()
		l.current++
	}
}

// prune drops entries with count + delta <= current window id.
func (l *LossyCounting) prune() {
	for k, e := range l.flows {
		if e.count+e.delta <= l.current {
			delete(l.flows, k)
		}
	}
}

// Estimate returns the recorded count for key (0 if not monitored).
func (l *LossyCounting) Estimate(key []byte) uint64 {
	return l.flows[string(key)].count
}

// EstimateUpper returns count + Δ, the upper bound on the true count.
func (l *LossyCounting) EstimateUpper(key []byte) uint64 {
	e := l.flows[string(key)]
	return e.count + e.delta
}

// Entry is one reported flow.
type Entry struct {
	Key   string
	Count uint64
}

// Top returns the k largest monitored flows by count + Δ (the algorithm's
// frequent-item report uses the upper bound to avoid false negatives),
// reporting count + Δ as the size estimate.
func (l *LossyCounting) Top(k int) []Entry {
	all := make([]Entry, 0, len(l.flows))
	for key, e := range l.flows {
		all = append(all, Entry{Key: key, Count: e.count + e.delta})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Len returns the number of currently monitored flows.
func (l *LossyCounting) Len() int { return len(l.flows) }

// Epsilon returns the configured error bound.
func (l *LossyCounting) Epsilon() float64 { return l.epsilon }

// MemoryBytes reports the current logical footprint.
func (l *LossyCounting) MemoryBytes() int { return len(l.flows) * BytesPerEntry }
