package lossycounting

import (
	"fmt"
	"testing"

	"repro/internal/streamtest"
)

func key(i int) []byte { return []byte(fmt.Sprintf("flow-%d", i)) }

func TestValidation(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5, 2} {
		if _, err := New(eps); err == nil {
			t.Errorf("epsilon %v accepted", eps)
		}
	}
	if l, err := New(0.01); err != nil || l.window != 100 {
		t.Errorf("New(0.01): err=%v window=%d want 100", err, l.window)
	}
}

func TestUndercountBounded(t *testing.T) {
	// Lossy counting guarantee: true − recorded <= εN for surviving flows,
	// and any flow with true count > εN survives.
	l := MustNew(0.01)
	truth := map[string]uint64{}
	st := streamtest.Zipf(50000, 3000, 1.0, 3)
	for _, p := range st.Packets {
		truth[string(p)]++
		l.Insert(p)
	}
	n := uint64(50000)
	epsN := uint64(float64(n) * 0.01)
	for k, tc := range truth {
		got := l.Estimate([]byte(k))
		if tc > epsN && got == 0 {
			t.Errorf("flow %s with true count %d > εN=%d was dropped", k, tc, epsN)
		}
		if got > 0 && tc-min64(got, tc) > epsN {
			t.Errorf("flow %s undercounted by more than εN: got %d true %d", k, got, tc)
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func TestUpperBoundHolds(t *testing.T) {
	l := MustNew(0.02)
	truth := map[string]uint64{}
	st := streamtest.Zipf(20000, 1000, 1.2, 7)
	for _, p := range st.Packets {
		truth[string(p)]++
		l.Insert(p)
	}
	for k, tc := range truth {
		if up := l.EstimateUpper([]byte(k)); up > 0 && up < l.Estimate([]byte(k)) {
			t.Errorf("upper bound %d < estimate for %s", up, k)
		}
		_ = tc
	}
}

func TestPruningShrinksTable(t *testing.T) {
	l := MustNew(0.01) // window 100
	// 10k distinct single-packet flows: nearly all should be pruned.
	for i := 0; i < 10000; i++ {
		l.Insert(key(i))
	}
	if l.Len() > 400 {
		t.Errorf("table holds %d entries after all-mice stream; pruning ineffective", l.Len())
	}
}

func TestElephantSurvivesPruning(t *testing.T) {
	l := MustNew(0.01)
	for i := 0; i < 10000; i++ {
		if i%2 == 0 {
			l.Insert(key(0))
		} else {
			l.Insert(key(1 + i))
		}
	}
	if got := l.Estimate(key(0)); got < 4900 {
		t.Errorf("elephant estimate = %d want ~5000", got)
	}
}

func TestTopDescending(t *testing.T) {
	l := MustNew(0.005)
	st := streamtest.Zipf(30000, 500, 1.5, 9)
	for _, p := range st.Packets {
		l.Insert(p)
	}
	top := l.Top(20)
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("Top not descending at %d", i)
		}
	}
}

func TestFindsTopK(t *testing.T) {
	st := streamtest.Zipf(100000, 3000, 1.2, 31)
	l := MustNew(0.0005)
	for _, p := range st.Packets {
		l.Insert(p)
	}
	var rep []streamtest.Reported
	for _, e := range l.Top(20) {
		rep = append(rep, streamtest.Reported{Key: e.Key, Count: e.Count})
	}
	if p := streamtest.Precision(rep, st.TrueTop(20)); p < 0.85 {
		t.Errorf("precision = %v want >= 0.85 with small epsilon", p)
	}
}

func TestFromBytes(t *testing.T) {
	l, err := FromBytes(3200)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epsilon() != 0.01 {
		t.Errorf("epsilon = %v want 0.01 (m=100)", l.Epsilon())
	}
}

func BenchmarkInsert(b *testing.B) {
	l := MustNew(0.001)
	st := streamtest.Zipf(1<<16, 10000, 1.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(st.Packets[i&(len(st.Packets)-1)])
	}
}
