package topk

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestInsertBatchMatchesSequential checks InsertBatch against a sequential
// Insert loop for every version × store combination: identical top-k output
// and identical sketch statistics.
func TestInsertBatchMatchesSequential(t *testing.T) {
	stream, _ := zipfStream(t, 50_000, 2_000, 77)
	for _, version := range []Version{Basic, Parallel, Minimum} {
		for _, store := range []StoreKind{StoreSummary, StoreHeap, StoreSummaryRef} {
			t.Run(fmt.Sprintf("%s/store=%d", version, store), func(t *testing.T) {
				opts := Options{K: 32, Version: version, Store: store, Sketch: core.Config{W: 256, Seed: 11}}
				seq := MustNew(opts)
				bat := MustNew(opts)
				for _, k := range stream {
					seq.Insert(k)
				}
				for off := 0; off < len(stream); {
					n := 1 + (off*13)%997
					if off+n > len(stream) {
						n = len(stream) - off
					}
					bat.InsertBatch(stream[off : off+n])
					off += n
				}
				if seq.Sketch().Stats() != bat.Sketch().Stats() {
					t.Fatalf("sketch stats diverge:\nsequential %+v\nbatch      %+v",
						seq.Sketch().Stats(), bat.Sketch().Stats())
				}
				if !reflect.DeepEqual(seq.Top(), bat.Top()) {
					t.Fatalf("top-k diverges:\nsequential %v\nbatch      %v", seq.Top(), bat.Top())
				}
			})
		}
	}
}

// TestMergeFrom folds two trackers fed disjoint halves of one stream and
// checks the merged result against a single tracker that saw everything.
func TestMergeFrom(t *testing.T) {
	stream, exact := zipfStream(t, 60_000, 2_000, 123)
	opts := Options{K: 16, Sketch: core.Config{W: 512, Seed: 21}}
	whole := MustNew(opts)
	left := MustNew(opts)
	right := MustNew(opts)
	for i, k := range stream {
		whole.Insert(k)
		if i%2 == 0 {
			left.Insert(k)
		} else {
			right.Insert(k)
		}
	}
	if err := left.MergeFrom(right); err != nil {
		t.Fatalf("MergeFrom: %v", err)
	}

	// The merged tracker must find (nearly) the same elephants as the
	// single-instance run; with this much headroom the overlap is exact.
	want := map[string]bool{}
	for _, e := range whole.Top() {
		want[e.Key] = true
	}
	matched := 0
	for _, e := range left.Top() {
		if want[e.Key] {
			matched++
		}
	}
	if matched < opts.K-2 {
		t.Fatalf("merged top-k overlaps single-instance in only %d/%d entries", matched, opts.K)
	}
	// Merged estimates must not exceed the true counts (Theorem 2 survives
	// the merge rule) and should be near them for the biggest flows.
	for _, e := range left.Top()[:5] {
		truth := exact[e.Key]
		if e.Count > truth {
			t.Fatalf("merged estimate for %q overshoots: %d > true %d", e.Key, e.Count, truth)
		}
		if e.Count < truth*8/10 {
			t.Fatalf("merged estimate for %q badly undershoots: %d < 80%% of %d", e.Key, e.Count, truth)
		}
	}
}

// TestMergeFromErrors covers the rejection paths.
func TestMergeFromErrors(t *testing.T) {
	a := MustNew(Options{K: 4, Sketch: core.Config{W: 64, Seed: 1}})
	if err := a.MergeFrom(nil); err == nil {
		t.Fatal("merge with nil must fail")
	}
	if err := a.MergeFrom(a); err == nil {
		t.Fatal("merge with self must fail")
	}
	b := MustNew(Options{K: 4, Sketch: core.Config{W: 64, Seed: 2}})
	if err := a.MergeFrom(b); err == nil {
		t.Fatal("merge across seeds must fail")
	}
}

// TestOpenStoreMatchesRefStore is the tracker-level differential test for
// the open-addressed store index: the same stream through StoreSummary
// (KeyHash-indexed flat table) and StoreSummaryRef (retained map index)
// must produce identical top-k reports and sketch statistics on both the
// sequential and the batched ingest path, for every discipline.
func TestOpenStoreMatchesRefStore(t *testing.T) {
	stream, _ := zipfStream(t, 60_000, 2_500, 41)
	for _, version := range []Version{Basic, Parallel, Minimum} {
		t.Run(version.String(), func(t *testing.T) {
			mk := func(store StoreKind) Options {
				return Options{K: 24, Version: version, Store: store, Sketch: core.Config{W: 256, Seed: 7}}
			}
			open := MustNew(mk(StoreSummary))
			ref := MustNew(mk(StoreSummaryRef))
			openB := MustNew(mk(StoreSummary))
			refB := MustNew(mk(StoreSummaryRef))
			for _, k := range stream {
				open.Insert(k)
				ref.Insert(k)
			}
			for off := 0; off < len(stream); off += 300 {
				end := off + 300
				if end > len(stream) {
					end = len(stream)
				}
				openB.InsertBatch(stream[off:end])
				refB.InsertBatch(stream[off:end])
			}
			if open.Sketch().Stats() != ref.Sketch().Stats() {
				t.Fatalf("sequential sketch stats diverge:\nopen %+v\nref  %+v",
					open.Sketch().Stats(), ref.Sketch().Stats())
			}
			if !reflect.DeepEqual(open.Top(), ref.Top()) {
				t.Fatalf("sequential top-k diverges:\nopen %v\nref  %v", open.Top(), ref.Top())
			}
			if !reflect.DeepEqual(openB.Top(), refB.Top()) {
				t.Fatalf("batched top-k diverges:\nopen %v\nref  %v", openB.Top(), refB.Top())
			}
			if !reflect.DeepEqual(open.Top(), openB.Top()) {
				t.Fatalf("open store: sequential vs batch diverges:\nseq   %v\nbatch %v",
					open.Top(), openB.Top())
			}
		})
	}
}
